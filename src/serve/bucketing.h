/**
 * @file
 * Sequence-length bucketing for the serving runtime. Requests are
 * grouped by the smallest bucket boundary that fits them and padded
 * only to that boundary, never to the model's maximum — the paper's
 * input-size sweep (Fig. 8) shows encoder cost scales superlinearly
 * with sequence length, so padding a 40-token query to 512 wastes an
 * order of magnitude of compute. The default grid follows the sweep's
 * sequence-length ladder.
 */

#ifndef BERTPROF_SERVE_BUCKETING_H
#define BERTPROF_SERVE_BUCKETING_H

#include <cstdint>
#include <vector>

namespace bertprof {

/** An ascending ladder of padded sequence lengths. */
class BucketSpec
{
  public:
    /** Boundaries must be positive and strictly ascending. */
    explicit BucketSpec(std::vector<std::int64_t> boundaries);

    /**
     * The ladder used by the benches: {32, 64, 128, 256, 384, 512}
     * clipped to max_positions, with max_positions itself as the top
     * boundary so every admissible sequence has a bucket.
     */
    static BucketSpec defaultSpec(std::int64_t max_positions);

    /**
     * Index of the smallest bucket that fits a sequence of `len`
     * tokens, or -1 when len is out of range (<= 0 or longer than the
     * top boundary).
     */
    int bucketFor(std::int64_t len) const;

    /** Padded length of bucket `b`. */
    std::int64_t boundary(int b) const;

    int numBuckets() const { return static_cast<int>(boundaries_.size()); }

    /** The top boundary = longest admissible sequence. */
    std::int64_t maxLen() const { return boundaries_.back(); }

    const std::vector<std::int64_t> &boundaries() const
    {
        return boundaries_;
    }

  private:
    std::vector<std::int64_t> boundaries_;
};

} // namespace bertprof

#endif // BERTPROF_SERVE_BUCKETING_H
