#include "serve/engine.h"

#include "graph/encoder_exec.h"
#include "util/logging.h"

namespace bertprof {

namespace {

/**
 * Flatten a batch into padded [B*seq] token/segment vectors plus the
 * per-sequence real lengths the attention mask is built from.
 */
void
packBatch(const Batch &batch, std::int64_t pad_id,
          std::vector<std::int64_t> &tokens,
          std::vector<std::int64_t> &segments,
          std::vector<std::int64_t> &lengths)
{
    const std::int64_t seq = batch.paddedLen;
    const std::int64_t b_count =
        static_cast<std::int64_t>(batch.requests.size());
    tokens.assign(static_cast<std::size_t>(b_count * seq), pad_id);
    segments.assign(static_cast<std::size_t>(b_count * seq), 0);
    lengths.resize(static_cast<std::size_t>(b_count));
    for (std::int64_t b = 0; b < b_count; ++b) {
        const InferRequest &req =
            batch.requests[static_cast<std::size_t>(b)].request;
        const std::int64_t len =
            static_cast<std::int64_t>(req.tokenIds.size());
        BP_REQUIRE(len >= 1 && len <= seq);
        BP_REQUIRE(req.segmentIds.size() == req.tokenIds.size());
        lengths[static_cast<std::size_t>(b)] = len;
        const std::size_t base = static_cast<std::size_t>(b * seq);
        for (std::int64_t t = 0; t < len; ++t) {
            tokens[base + static_cast<std::size_t>(t)] =
                req.tokenIds[static_cast<std::size_t>(t)];
            segments[base + static_cast<std::size_t>(t)] =
                req.segmentIds[static_cast<std::size_t>(t)];
        }
    }
}

/** Copy `rows` consecutive logit rows into one reply. */
void
fillReply(const Tensor &logits, std::int64_t first_row,
          std::int64_t rows, InferReply &reply)
{
    const std::int64_t cols = logits.shape().dim(1);
    reply.ok = true;
    reply.rows = rows;
    reply.cols = cols;
    reply.logits.resize(static_cast<std::size_t>(rows * cols));
    const float *src = logits.data() + first_row * cols;
    for (std::int64_t i = 0; i < rows * cols; ++i)
        reply.logits[static_cast<std::size_t>(i)] = src[i];
}

} // namespace

ClassifierEngine::ClassifierEngine(BertClassifier &model,
                                   std::int64_t pad_id)
    : model_(model), padId_(pad_id)
{
    BP_REQUIRE(!model_.isTraining());
    // Register the graph executor so eval forwards can take the
    // planned-arena path when BERTPROF_FUSION=on.
    graph::ensureEncoderGraphExecInstalled();
}

std::int64_t
ClassifierEngine::maxPositions() const
{
    return model_.config().maxPositions;
}

void
ClassifierEngine::run(const Batch &batch,
                      std::vector<InferReply> &replies)
{
    const std::int64_t b_count =
        static_cast<std::int64_t>(batch.requests.size());
    BP_REQUIRE(b_count >= 1);
    replies.resize(static_cast<std::size_t>(b_count));

    std::vector<std::int64_t> tokens, segments, lengths;
    packBatch(batch, padId_, tokens, segments, lengths);
    Tensor logits = model_.forwardLogitsEval(tokens, segments, b_count,
                                             batch.paddedLen, lengths);
    for (std::int64_t b = 0; b < b_count; ++b) {
        InferReply &reply = replies[static_cast<std::size_t>(b)];
        reply.id = batch.requests[static_cast<std::size_t>(b)].request.id;
        fillReply(logits, b, 1, reply);
    }
}

MlmEngine::MlmEngine(BertPretrainer &model, std::int64_t pad_id)
    : model_(model), padId_(pad_id)
{
    BP_REQUIRE(!model_.isTraining());
    graph::ensureEncoderGraphExecInstalled();
}

std::int64_t
MlmEngine::maxPositions() const
{
    return model_.config().maxPositions;
}

void
MlmEngine::run(const Batch &batch, std::vector<InferReply> &replies)
{
    const std::int64_t b_count =
        static_cast<std::int64_t>(batch.requests.size());
    BP_REQUIRE(b_count >= 1);
    replies.resize(static_cast<std::size_t>(b_count));

    std::vector<std::int64_t> tokens, segments, lengths;
    packBatch(batch, padId_, tokens, segments, lengths);

    // Flatten the per-request masked positions into batch-relative
    // indices, remembering each request's slice of the logit rows.
    std::vector<std::int64_t> positions;
    std::vector<std::int64_t> first_row(
        static_cast<std::size_t>(b_count));
    for (std::int64_t b = 0; b < b_count; ++b) {
        const InferRequest &req =
            batch.requests[static_cast<std::size_t>(b)].request;
        first_row[static_cast<std::size_t>(b)] =
            static_cast<std::int64_t>(positions.size());
        const std::int64_t len = lengths[static_cast<std::size_t>(b)];
        for (std::int64_t pos : req.mlmPositions) {
            BP_REQUIRE(pos >= 0 && pos < len);
            positions.push_back(b * batch.paddedLen + pos);
        }
    }
    for (std::int64_t b = 0; b < b_count; ++b) {
        InferReply &reply = replies[static_cast<std::size_t>(b)];
        reply.id = batch.requests[static_cast<std::size_t>(b)].request.id;
    }
    if (positions.empty()) {
        // Nothing to decode anywhere in the batch: every reply is an
        // empty (0-row) success without touching the model.
        for (auto &reply : replies) {
            reply.ok = true;
            reply.rows = 0;
            reply.cols = 0;
        }
        return;
    }

    Tensor logits = model_.mlmLogitsEval(tokens, segments, b_count,
                                         batch.paddedLen, lengths,
                                         positions);
    for (std::int64_t b = 0; b < b_count; ++b) {
        const std::int64_t start = first_row[static_cast<std::size_t>(b)];
        const std::int64_t end =
            b + 1 < b_count ? first_row[static_cast<std::size_t>(b + 1)]
                            : static_cast<std::int64_t>(positions.size());
        InferReply &reply = replies[static_cast<std::size_t>(b)];
        if (end > start) {
            fillReply(logits, start, end - start, reply);
        } else {
            reply.ok = true;
            reply.rows = 0;
            reply.cols = 0;
        }
    }
}

} // namespace bertprof
