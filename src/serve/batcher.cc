#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "runtime/fault_injection.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "util/logging.h"

namespace bertprof {

namespace {

/** EWMA smoothing: new = old + kAlpha * (sample - old). */
constexpr double kEwmaAlpha = 0.25;

void
sleepMicros(std::int64_t us)
{
    if (us > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(us));
}

} // namespace

DynamicBatcher::DynamicBatcher(const BucketSpec &spec,
                               const ResolvedServePolicy &policy)
    : spec_(spec), policy_(policy),
      totalCap_(static_cast<std::size_t>(policy.queueCap) *
                static_cast<std::size_t>(spec.numBuckets())),
      queue_(spec.numBuckets()),
      ewmaNanos_(new std::atomic<std::int64_t>[static_cast<std::size_t>(
          spec.numBuckets())])
{
    BP_REQUIRE(policy_.maxBatch >= 1);
    BP_REQUIRE(policy_.maxWaitUs >= 0);
    BP_REQUIRE(policy_.queueCap >= 1);
    BP_REQUIRE(policy_.queuePolicy != QueuePolicy::Default);
    for (int b = 0; b < spec_.numBuckets(); ++b)
        ewmaNanos_[static_cast<std::size_t>(b)].store(
            0, std::memory_order_relaxed);
}

std::size_t
DynamicBatcher::enterThreshold(int level) const
{
    // 1/2, 3/4, 7/8 of total capacity, kept strictly ascending so a
    // tiny capacity still yields a well-ordered (if partly
    // unreachable) ladder.
    const std::size_t half = std::max<std::size_t>(1, totalCap_ / 2);
    const std::size_t three_q =
        std::max(half + 1, 3 * totalCap_ / 4);
    const std::size_t seven_e =
        std::max(three_q + 1, 7 * totalCap_ / 8);
    switch (level) {
    case 1:
        return half;
    case 2:
        return three_q;
    default:
        return seven_e;
    }
}

void
DynamicBatcher::updateLadderLocked()
{
    if (!policy_.degrade)
        return;
    const std::size_t depth = queue_.size();
    const int level = level_.load(std::memory_order_relaxed);
    int next = level;
    while (next < 3 && depth >= enterThreshold(next + 1))
        ++next;
    if (next == level) {
        // Hysteresis: step down only once depth falls to half the
        // level's entry threshold, so the ladder cannot flap.
        while (next > 0 && depth <= enterThreshold(next) / 2)
            --next;
    }
    if (next != level) {
        level_.store(next, std::memory_order_relaxed);
        auto &metrics = MetricsRegistry::instance();
        metrics.counter("serve.degrade.shifts").add(1);
        metrics.gauge("serve.degrade.level")
            .set(static_cast<double>(next));
        TraceRecorder::instance().counter("serve.degrade.shifts", 1);
        TraceRecorder::instance().gauge("serve.degrade.level",
                                        static_cast<double>(next));
    }
}

void
DynamicBatcher::resolveRejected(PendingRequest &pending,
                                RejectReason reason)
{
    BP_REQUIRE(reason != RejectReason::None);
    rejected_[static_cast<std::size_t>(reason)].fetch_add(
        1, std::memory_order_relaxed);
    const std::string counter_name =
        std::string("serve.rejected.") + rejectReasonName(reason);
    MetricsRegistry::instance().counter(counter_name).add(1);
    TraceRecorder::instance().counter(counter_name, 1);
    InferReply reply;
    reply.id = pending.request.id;
    reply.ok = false;
    reply.reject = reason;
    pending.promise.set_value(std::move(reply));
}

RejectReason
DynamicBatcher::submit(PendingRequest &req)
{
    // Chaos admission gate: counts every submission attempt. The
    // stall runs before any lock so a slow client path cannot hold
    // the batcher hostage.
    std::int64_t slow_us = 0;
    const FaultKind fault = faultAt("serve.submit", &slow_us);
    if (fault == FaultKind::Reject)
        return RejectReason::QueueFull;
    if (fault == FaultKind::Slow)
        sleepMicros(slow_us);

    const std::int64_t len =
        static_cast<std::int64_t>(req.request.tokenIds.size());
    BP_REQUIRE(req.request.segmentIds.size() ==
               req.request.tokenIds.size());
    const int bucket = spec_.bucketFor(len);
    if (bucket < 0)
        return RejectReason::Overlong;

    if (policy_.shedExpired &&
        req.request.deadline <= req.request.arrival) {
        // Dead on arrival: the deadline passed before the request
        // reached the queue.
        return RejectReason::Expired;
    }

    PendingRequest evicted;
    bool have_evicted = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_)
            return RejectReason::Shutdown;
        if (policy_.admission) {
            // Admission estimate: the request needs its own bucket
            // service time, plus one service time per batch already
            // queued ahead of it (the single executor drains them
            // one forward pass at a time). Buckets with no EWMA
            // measurement yet contribute nothing, so the gate stays
            // open until the server has seen real service times —
            // after that, a deadline below the estimate is refused
            // at submit instead of queueing dead work.
            const std::int64_t own_ns =
                ewmaNanos_[static_cast<std::size_t>(bucket)].load(
                    std::memory_order_relaxed);
            if (own_ns > 0) {
                std::int64_t est_ns = own_ns;
                for (int b = 0; b < spec_.numBuckets(); ++b) {
                    const std::int64_t b_ns =
                        ewmaNanos_[static_cast<std::size_t>(b)].load(
                            std::memory_order_relaxed);
                    if (b_ns <= 0)
                        continue;
                    const auto queued =
                        static_cast<std::int64_t>(queue_.count(b));
                    const std::int64_t batches =
                        (queued + policy_.maxBatch - 1) /
                        policy_.maxBatch;
                    est_ns += batches * b_ns;
                }
                if (req.request.deadline <
                    req.request.arrival +
                        std::chrono::nanoseconds(est_ns))
                    return RejectReason::Expired;
            }
        }
        if (queue_.count(bucket) >=
            static_cast<std::size_t>(policy_.queueCap)) {
            if (policy_.queuePolicy == QueuePolicy::RejectNew)
                return RejectReason::QueueFull;
            evicted = queue_.popOldest(bucket);
            have_evicted = true;
        }
        queue_.push(bucket, std::move(req));
        updateLadderLocked();
    }
    cv_.notify_all();
    if (have_evicted)
        resolveRejected(evicted, RejectReason::QueueFull);
    return RejectReason::None;
}

bool
DynamicBatcher::shedExpiredLocked(std::unique_lock<std::mutex> &lock)
{
    if (!policy_.shedExpired || queue_.empty())
        return false;
    std::vector<PendingRequest> dead = queue_.dropExpired(monoNow());
    if (dead.empty())
        return false;
    updateLadderLocked();
    lock.unlock();
    MetricsRegistry::instance()
        .counter("serve.shed.dequeue")
        .add(static_cast<std::int64_t>(dead.size()));
    TraceRecorder::instance().counter(
        "serve.shed.dequeue", static_cast<std::int64_t>(dead.size()));
    for (PendingRequest &p : dead)
        resolveRejected(p, RejectReason::Expired);
    lock.lock();
    return true;
}

bool
DynamicBatcher::shedUrgencyLocked(std::unique_lock<std::mutex> &lock)
{
    if (!policy_.degrade ||
        level_.load(std::memory_order_relaxed) < 3)
        return false;
    const std::size_t target = enterThreshold(3) - 1;
    if (queue_.size() <= target)
        return false;
    std::vector<PendingRequest> shed =
        queue_.shedLowestUrgency(target);
    updateLadderLocked();
    lock.unlock();
    MetricsRegistry::instance()
        .counter("serve.shed.urgency")
        .add(static_cast<std::int64_t>(shed.size()));
    TraceRecorder::instance().counter(
        "serve.shed.urgency", static_cast<std::int64_t>(shed.size()));
    for (PendingRequest &p : shed)
        resolveRejected(p, RejectReason::QueueFull);
    lock.lock();
    return true;
}

bool
DynamicBatcher::nextBatch(Batch &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        // Shed dead and lowest-urgency work before looking at the
        // lead: an expired head must never define the flush time,
        // and level-3 pressure relief happens on the executor, off
        // the clients' submit path.
        if (shedExpiredLocked(lock))
            continue;
        if (shedUrgencyLocked(lock))
            continue;
        if (queue_.empty()) {
            if (closed_)
                return false;
            cv_.wait(lock);
            continue;
        }

        // Degradation effects: level 1 shrinks the batching window,
        // level 2+ closes it and halves the per-flush fan-out so a
        // flush never builds the biggest (slowest) batches while the
        // queue is drowning.
        const int level =
            policy_.degrade ? level_.load(std::memory_order_relaxed)
                            : 0;
        std::int64_t wait_us = policy_.maxWaitUs;
        int batch_cap = policy_.maxBatch;
        if (level == 1)
            wait_us /= 4;
        else if (level >= 2)
            wait_us = 0;
        if (level >= 2)
            batch_cap = std::max(1, policy_.maxBatch / 2);

        const int lead = queue_.leadBucket();
        const InferRequest &head = queue_.head(lead);
        const MonoTime flush_at = std::min(
            monoAddMicros(head.arrival, wait_us), head.deadline);
        if (closed_ ||
            queue_.count(lead) >=
                static_cast<std::size_t>(batch_cap) ||
            monoNow() >= flush_at) {
            out.bucket = lead;
            out.paddedLen = spec_.boundary(lead);
            out.requests = queue_.popUpTo(lead, batch_cap);
            updateLadderLocked();

            // Chaos batch-forming site: reject sheds the formed
            // batch wholesale (every member resolves, typed), slow
            // stalls dispatch with no lock held.
            std::int64_t slow_us = 0;
            const FaultKind fault = faultAt("serve.batch", &slow_us);
            if (fault == FaultKind::Reject) {
                lock.unlock();
                for (PendingRequest &p : out.requests)
                    resolveRejected(p, RejectReason::QueueFull);
                out.requests.clear();
                lock.lock();
                continue;
            }
            if (fault == FaultKind::Slow) {
                lock.unlock();
                sleepMicros(slow_us);
                return true;
            }
            return true;
        }
        // A saturated deadline (monoAddMicros clamp) means "wait for
        // company or a new lead": wait_until(max) can overflow the
        // underlying timespec and spin, so use an untimed wait.
        if (flush_at == MonoTime::max())
            cv_.wait(lock);
        else
            cv_.wait_until(lock, flush_at);
    }
}

void
DynamicBatcher::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::size_t
DynamicBatcher::pendingCount()
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

void
DynamicBatcher::recordServiceTime(int bucket, double seconds)
{
    BP_REQUIRE(bucket >= 0 && bucket < spec_.numBuckets());
    if (seconds <= 0.0)
        return;
    const std::int64_t sample_ns =
        static_cast<std::int64_t>(seconds * 1e9);
    std::atomic<std::int64_t> &cell =
        ewmaNanos_[static_cast<std::size_t>(bucket)];
    const std::int64_t old = cell.load(std::memory_order_relaxed);
    const std::int64_t next =
        old == 0 ? sample_ns
                 : old + static_cast<std::int64_t>(
                             kEwmaAlpha *
                             static_cast<double>(sample_ns - old));
    cell.store(next, std::memory_order_relaxed);
}

double
DynamicBatcher::serviceEwmaSeconds(int bucket) const
{
    BP_REQUIRE(bucket >= 0 && bucket < spec_.numBuckets());
    return static_cast<double>(
               ewmaNanos_[static_cast<std::size_t>(bucket)].load(
                   std::memory_order_relaxed)) *
           1e-9;
}

int
DynamicBatcher::degradeLevel() const
{
    return level_.load(std::memory_order_relaxed);
}

std::int64_t
DynamicBatcher::rejectedCount(RejectReason reason) const
{
    return rejected_[static_cast<std::size_t>(reason)].load(
        std::memory_order_relaxed);
}

} // namespace bertprof
