#include "serve/batcher.h"

#include <algorithm>

#include "util/logging.h"

namespace bertprof {

DynamicBatcher::DynamicBatcher(const BucketSpec &spec, int max_batch,
                               std::int64_t max_wait_us)
    : spec_(spec), maxBatch_(max_batch), maxWaitUs_(max_wait_us),
      queue_(spec.numBuckets())
{
    BP_REQUIRE(max_batch >= 1);
    BP_REQUIRE(max_wait_us >= 0);
}

bool
DynamicBatcher::submit(PendingRequest &req)
{
    const std::int64_t len =
        static_cast<std::int64_t>(req.request.tokenIds.size());
    BP_REQUIRE(req.request.segmentIds.size() ==
               req.request.tokenIds.size());
    const int bucket = spec_.bucketFor(len);
    if (bucket < 0)
        return false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_)
            return false;
        queue_.push(bucket, std::move(req));
    }
    cv_.notify_all();
    return true;
}

bool
DynamicBatcher::nextBatch(Batch &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (queue_.empty()) {
            if (closed_)
                return false;
            cv_.wait(lock);
            continue;
        }
        const int lead = queue_.leadBucket();
        const InferRequest &head = queue_.head(lead);
        const MonoTime flush_at = std::min(
            monoAddMicros(head.arrival, maxWaitUs_), head.deadline);
        if (closed_ ||
            queue_.count(lead) >= static_cast<std::size_t>(maxBatch_) ||
            monoNow() >= flush_at) {
            out.bucket = lead;
            out.paddedLen = spec_.boundary(lead);
            out.requests = queue_.popUpTo(lead, maxBatch_);
            return true;
        }
        cv_.wait_until(lock, flush_at);
    }
}

void
DynamicBatcher::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::size_t
DynamicBatcher::pendingCount()
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

} // namespace bertprof
