/**
 * @file
 * Open-loop traffic generation for the serving benches: a Poisson
 * arrival schedule computed up front (absolute offsets, so the load
 * generator never closes the loop on service latency — a slow server
 * cannot slow the offered load, which is what makes tail-latency
 * numbers honest) plus deterministic synthetic request bodies drawn
 * from a length mix.
 */

#ifndef BERTPROF_SERVE_TRAFFIC_H
#define BERTPROF_SERVE_TRAFFIC_H

#include <cstdint>
#include <vector>

#include "serve/request.h"
#include "util/rng.h"

namespace bertprof {

/** One open-loop run's offered load. */
struct TrafficConfig {
    /** Offered arrival rate, requests per second. */
    double qps = 100.0;
    /** Total requests in the run. */
    int count = 100;
    /** Seed for arrivals and request bodies (fixed = reproducible). */
    std::uint64_t seed = 0x7aff1cULL;
    /**
     * Real-length mix to draw from, uniformly. Mimics the skew of
     * serving traffic: mostly short queries, a long tail.
     */
    std::vector<std::int64_t> lengthMix;
};

/**
 * Absolute arrival offsets in seconds (ascending, count entries):
 * exponential inter-arrival gaps at rate qps, from a fresh Rng
 * seeded with `seed`.
 */
std::vector<double> poissonSchedule(double qps, int count,
                                    std::uint64_t seed);

/**
 * A deterministic synthetic request: `len` tokens uniform in
 * [4, vocab) (skipping the reserved special ids), segment ids 0,
 * no MLM positions, no timing stamps (the server stamps arrival).
 */
InferRequest syntheticRequest(Rng &rng, std::uint64_t id,
                              std::int64_t len, std::int64_t vocab);

} // namespace bertprof

#endif // BERTPROF_SERVE_TRAFFIC_H
