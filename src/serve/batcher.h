/**
 * @file
 * The dynamic batcher: the thread-safe meeting point between client
 * threads submitting requests and the executor thread draining
 * batches. Policy (max-batch / max-wait, deadline-aware, bounded):
 *
 *  - The *lead* is the most urgent pending request (earliest
 *    deadline, FIFO within its bucket). Only same-bucket requests
 *    coalesce — members share one padded forward pass, so mixing
 *    buckets would re-introduce the padding waste bucketing removes.
 *  - A batch ships as soon as the lead's bucket holds maxBatch
 *    requests, or when now reaches min(lead.arrival + maxWaitUs,
 *    lead.deadline) — i.e. a lone request waits at most maxWaitUs
 *    for company, and never waits past its own deadline.
 *  - Admission control: each bucket holds at most queueCap pending
 *    requests. At cap, the policy either refuses the arriving
 *    request (reject-new) or evicts the bucket's oldest to admit it
 *    (drop-oldest). A request whose deadline has already passed — or
 *    falls below the admission estimate (its bucket's service-time
 *    EWMA plus one EWMA service time per batch already queued ahead
 *    of it) — is refused at submit instead of queueing dead work.
 *  - Load shedding: expired requests are dropped at dequeue and
 *    batch-forming time; every dropped/refused request resolves its
 *    future with a typed RejectReason, so no promise ever leaks.
 *  - Degradation ladder (hysteretic, driven by total queue depth):
 *    level 1 shrinks the batching window (maxWaitUs/4), level 2
 *    closes it and halves the per-flush fan-out cap so batches ship
 *    immediately and head-of-line compute stays short, level 3
 *    additionally sheds the lowest-urgency queued work. Levels step
 *    down only after depth falls to half the level's entry
 *    threshold, so the ladder cannot flap at a boundary.
 *  - close() drains: pending requests still ship (flushed
 *    immediately, minus expired ones), new submissions are refused.
 *
 * Chaos sites (runtime/fault_injection.h): `serve.submit` fires once
 * per submission (reject = admission refusal, slow = stalled client
 * path), `serve.batch` once per formed batch (reject = batch shed
 * wholesale, slow = stalled dispatch).
 */

#ifndef BERTPROF_SERVE_BATCHER_H
#define BERTPROF_SERVE_BATCHER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "serve/bucketing.h"
#include "serve/request_queue.h"
#include "serve/serve_config.h"

namespace bertprof {

/** Thread-safe deadline-aware request batcher with admission
 *  control and graceful degradation. */
class DynamicBatcher
{
  public:
    DynamicBatcher(const BucketSpec &spec,
                   const ResolvedServePolicy &policy);

    /**
     * Enqueue a request (any thread). Returns RejectReason::None on
     * success, with `req` moved from. On refusal — closed
     * (Shutdown), empty or longer than the top bucket (Overlong),
     * dead-on-arrival or unmeetable deadline (Expired), bucket at
     * cap under reject-new (QueueFull) — `req` is left untouched and
     * the caller resolves its promise with the returned reason.
     * Under drop-oldest the evicted request is resolved (QueueFull)
     * in here.
     */
    RejectReason submit(PendingRequest &req);

    /**
     * Dequeue the next batch (executor thread). Blocks until a batch
     * is ready under the policy above; false once closed and fully
     * drained.
     */
    bool nextBatch(Batch &out);

    /** Refuse new submissions; pending work still drains. */
    void close();

    /** Requests currently queued (diagnostic). */
    std::size_t pendingCount();

    /**
     * Fold one measured per-batch service time into `bucket`'s EWMA
     * (executor thread, after each engine run). The EWMA feeds the
     * admission gate's time-to-complete estimate.
     */
    void recordServiceTime(int bucket, double seconds);

    /** Current EWMA service time for `bucket`; 0 before the first
     *  measurement. */
    double serviceEwmaSeconds(int bucket) const;

    /** Current degradation-ladder level (0 = normal .. 3 = shedding). */
    int degradeLevel() const;

    /** Requests refused or shed with `reason` so far (this batcher). */
    std::int64_t rejectedCount(RejectReason reason) const;

    /**
     * Resolve `pending`'s future as rejected with `reason` and count
     * it (per-reason atomic + the process-wide
     * serve.rejected.<reason> counter). Used by the batcher's own
     * eviction/shedding paths and by the server for submit-time
     * refusals, so every typed rejection funnels through one place.
     */
    void resolveRejected(PendingRequest &pending, RejectReason reason);

    const BucketSpec &spec() const { return spec_; }
    const ResolvedServePolicy &policy() const { return policy_; }
    int maxBatch() const { return policy_.maxBatch; }
    std::int64_t maxWaitUs() const { return policy_.maxWaitUs; }

  private:
    /** Depth at which level `level` (1-based) engages. */
    std::size_t enterThreshold(int level) const;
    /** Recompute the ladder level from queue depth (mu_ held). */
    void updateLadderLocked();
    /** Drop expired queued work; true when something was shed
     *  (mu_ held on entry and exit, released to resolve). */
    bool shedExpiredLocked(std::unique_lock<std::mutex> &lock);
    /** Level-3 urgency shedding down to the entry threshold
     *  (mu_ held on entry and exit, released to resolve). */
    bool shedUrgencyLocked(std::unique_lock<std::mutex> &lock);

    const BucketSpec spec_;
    const ResolvedServePolicy policy_;
    const std::size_t totalCap_;

    std::mutex mu_;
    std::condition_variable cv_;
    PendingQueue queue_;
    bool closed_ = false;

    std::atomic<int> level_{0};
    std::unique_ptr<std::atomic<std::int64_t>[]> ewmaNanos_;
    std::atomic<std::int64_t> rejected_[5] = {};
};

} // namespace bertprof

#endif // BERTPROF_SERVE_BATCHER_H
