/**
 * @file
 * The dynamic batcher: the thread-safe meeting point between client
 * threads submitting requests and the executor thread draining
 * batches. Policy (max-batch / max-wait, deadline-aware):
 *
 *  - The *lead* is the most urgent pending request (earliest
 *    deadline, FIFO within its bucket). Only same-bucket requests
 *    coalesce — members share one padded forward pass, so mixing
 *    buckets would re-introduce the padding waste bucketing removes.
 *  - A batch ships as soon as the lead's bucket holds maxBatch
 *    requests, or when now reaches min(lead.arrival + maxWaitUs,
 *    lead.deadline) — i.e. a lone request waits at most maxWaitUs
 *    for company, and never waits past its own deadline.
 *  - close() drains: pending requests still ship (flushed
 *    immediately), new submissions are refused.
 */

#ifndef BERTPROF_SERVE_BATCHER_H
#define BERTPROF_SERVE_BATCHER_H

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "serve/bucketing.h"
#include "serve/request_queue.h"

namespace bertprof {

/** Thread-safe deadline-aware request batcher. */
class DynamicBatcher
{
  public:
    DynamicBatcher(const BucketSpec &spec, int max_batch,
                   std::int64_t max_wait_us);

    /**
     * Enqueue a request (any thread). On success `req` is moved
     * from; on failure — batcher closed, sequence empty or longer
     * than the top bucket — `req` is left untouched (false is
     * returned) and the caller resolves its promise as rejected.
     */
    bool submit(PendingRequest &req);

    /**
     * Dequeue the next batch (executor thread). Blocks until a batch
     * is ready under the policy above; false once closed and fully
     * drained.
     */
    bool nextBatch(Batch &out);

    /** Refuse new submissions; pending work still drains. */
    void close();

    /** Requests currently queued (diagnostic). */
    std::size_t pendingCount();

    const BucketSpec &spec() const { return spec_; }
    int maxBatch() const { return maxBatch_; }
    std::int64_t maxWaitUs() const { return maxWaitUs_; }

  private:
    const BucketSpec spec_;
    const int maxBatch_;
    const std::int64_t maxWaitUs_;

    std::mutex mu_;
    std::condition_variable cv_;
    PendingQueue queue_;
    bool closed_ = false;
};

} // namespace bertprof

#endif // BERTPROF_SERVE_BATCHER_H
