#include "serve/traffic.h"

#include <cmath>

#include "util/logging.h"

namespace bertprof {

std::vector<double>
poissonSchedule(double qps, int count, std::uint64_t seed)
{
    BP_REQUIRE(qps > 0.0);
    BP_REQUIRE(count >= 0);
    Rng rng(seed);
    std::vector<double> offsets;
    offsets.reserve(static_cast<std::size_t>(count));
    double t = 0.0;
    for (int i = 0; i < count; ++i) {
        // Inverse-CDF exponential gap; clamp the uniform draw away
        // from 0 so log() stays finite.
        const double u = rng.uniform(1e-12, 1.0);
        t += -std::log(u) / qps;
        offsets.push_back(t);
    }
    return offsets;
}

InferRequest
syntheticRequest(Rng &rng, std::uint64_t id, std::int64_t len,
                 std::int64_t vocab)
{
    BP_REQUIRE(len >= 1);
    BP_REQUIRE(vocab > 4);
    InferRequest req;
    req.id = id;
    req.tokenIds.resize(static_cast<std::size_t>(len));
    req.segmentIds.assign(static_cast<std::size_t>(len), 0);
    for (std::int64_t t = 0; t < len; ++t)
        req.tokenIds[static_cast<std::size_t>(t)] =
            rng.uniformInt(4, vocab - 1);
    return req;
}

} // namespace bertprof
