#include "serve/bucketing.h"

#include "util/logging.h"

namespace bertprof {

BucketSpec::BucketSpec(std::vector<std::int64_t> boundaries)
    : boundaries_(std::move(boundaries))
{
    BP_REQUIRE(!boundaries_.empty());
    std::int64_t prev = 0;
    for (std::int64_t b : boundaries_) {
        BP_REQUIRE(b > prev);
        prev = b;
    }
}

BucketSpec
BucketSpec::defaultSpec(std::int64_t max_positions)
{
    BP_REQUIRE(max_positions >= 1);
    static const std::int64_t kLadder[] = {32, 64, 128, 256, 384, 512};
    std::vector<std::int64_t> boundaries;
    for (std::int64_t b : kLadder)
        if (b < max_positions)
            boundaries.push_back(b);
    boundaries.push_back(max_positions);
    return BucketSpec(std::move(boundaries));
}

int
BucketSpec::bucketFor(std::int64_t len) const
{
    if (len <= 0 || len > boundaries_.back())
        return -1;
    for (int b = 0; b < numBuckets(); ++b)
        if (len <= boundaries_[static_cast<std::size_t>(b)])
            return b;
    return -1; // unreachable
}

std::int64_t
BucketSpec::boundary(int b) const
{
    BP_REQUIRE(b >= 0 && b < numBuckets());
    return boundaries_[static_cast<std::size_t>(b)];
}

} // namespace bertprof
