#include "serve/serve_config.h"

#include <atomic>

#include "runtime/env.h"
#include "util/logging.h"

namespace bertprof {

namespace {

std::atomic<bool> g_warned_bad_batch_env{false};
std::atomic<bool> g_warned_bad_wait_env{false};

} // namespace

int
configuredServeMaxBatch()
{
    return static_cast<int>(envInt("BERTPROF_SERVE_MAX_BATCH", 1, 1024,
                                   /*fallback=*/8,
                                   g_warned_bad_batch_env));
}

std::int64_t
configuredServeMaxWaitUs()
{
    return envInt("BERTPROF_SERVE_MAX_WAIT_US", 0, 1000000000,
                  /*fallback=*/2000, g_warned_bad_wait_env);
}

int
ServeOptions::resolvedMaxBatch() const
{
    if (maxBatch > 0)
        return maxBatch;
    return configuredServeMaxBatch();
}

std::int64_t
ServeOptions::resolvedMaxWaitUs() const
{
    if (maxWaitUs >= 0)
        return maxWaitUs;
    return configuredServeMaxWaitUs();
}

} // namespace bertprof
