#include "serve/serve_config.h"

#include <atomic>

#include "runtime/env.h"
#include "util/logging.h"

namespace bertprof {

namespace {

std::atomic<bool> g_warned_bad_batch_env{false};
std::atomic<bool> g_warned_bad_wait_env{false};
std::atomic<bool> g_warned_bad_cap_env{false};
std::atomic<bool> g_warned_bad_policy_env{false};
std::atomic<bool> g_warned_bad_degrade_env{false};

} // namespace

int
configuredServeMaxBatch()
{
    return static_cast<int>(envInt("BERTPROF_SERVE_MAX_BATCH", 1, 1024,
                                   /*fallback=*/8,
                                   g_warned_bad_batch_env));
}

std::int64_t
configuredServeMaxWaitUs()
{
    return envInt("BERTPROF_SERVE_MAX_WAIT_US", 0, 1000000000,
                  /*fallback=*/2000, g_warned_bad_wait_env);
}

int
configuredServeQueueCap()
{
    return static_cast<int>(envInt("BERTPROF_SERVE_QUEUE_CAP", 1,
                                   1 << 20,
                                   /*fallback=*/64,
                                   g_warned_bad_cap_env));
}

QueuePolicy
configuredServeQueuePolicy()
{
    const std::string v =
        envString("BERTPROF_SERVE_QUEUE_POLICY", "reject-new");
    if (v == "reject-new")
        return QueuePolicy::RejectNew;
    if (v == "drop-oldest")
        return QueuePolicy::DropOldest;
    if (!g_warned_bad_policy_env.exchange(true)) {
        BP_LOG(Warn) << "BERTPROF_SERVE_QUEUE_POLICY='" << v
                     << "' is not reject-new|drop-oldest; using "
                        "reject-new";
    }
    return QueuePolicy::RejectNew;
}

bool
configuredServeDegrade()
{
    const std::string v = envString("BERTPROF_SERVE_DEGRADE", "on");
    if (v == "on")
        return true;
    if (v == "off")
        return false;
    if (!g_warned_bad_degrade_env.exchange(true)) {
        BP_LOG(Warn) << "BERTPROF_SERVE_DEGRADE='" << v
                     << "' is not on|off; using on";
    }
    return true;
}

int
ServeOptions::resolvedMaxBatch() const
{
    if (maxBatch > 0)
        return maxBatch;
    return configuredServeMaxBatch();
}

std::int64_t
ServeOptions::resolvedMaxWaitUs() const
{
    if (maxWaitUs >= 0)
        return maxWaitUs;
    return configuredServeMaxWaitUs();
}

int
ServeOptions::resolvedQueueCap() const
{
    if (queueCap > 0)
        return queueCap;
    return configuredServeQueueCap();
}

QueuePolicy
ServeOptions::resolvedQueuePolicy() const
{
    if (queuePolicy != QueuePolicy::Default)
        return queuePolicy;
    return configuredServeQueuePolicy();
}

bool
ServeOptions::resolvedDegrade() const
{
    if (degrade >= 0)
        return degrade > 0;
    return configuredServeDegrade();
}

ResolvedServePolicy
ServeOptions::resolve() const
{
    ResolvedServePolicy p;
    p.maxBatch = resolvedMaxBatch();
    p.maxWaitUs = resolvedMaxWaitUs();
    p.queueCap = resolvedQueueCap();
    p.queuePolicy = resolvedQueuePolicy();
    p.degrade = resolvedDegrade();
    p.admission = admission;
    p.shedExpired = shedExpired;
    return p;
}

} // namespace bertprof
