#include "serve/request_queue.h"

#include "util/logging.h"

namespace bertprof {

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
    case RejectReason::None:
        return "none";
    case RejectReason::Expired:
        return "expired";
    case RejectReason::QueueFull:
        return "queue-full";
    case RejectReason::Shutdown:
        return "shutdown";
    case RejectReason::Overlong:
        return "overlong";
    }
    return "none";
}

PendingQueue::PendingQueue(int num_buckets)
    : buckets_(static_cast<std::size_t>(num_buckets))
{
    BP_REQUIRE(num_buckets >= 1);
}

void
PendingQueue::push(int bucket, PendingRequest req)
{
    BP_REQUIRE(bucket >= 0 &&
               bucket < static_cast<int>(buckets_.size()));
    buckets_[static_cast<std::size_t>(bucket)].push_back(std::move(req));
    ++size_;
}

std::size_t
PendingQueue::count(int bucket) const
{
    BP_REQUIRE(bucket >= 0 &&
               bucket < static_cast<int>(buckets_.size()));
    return buckets_[static_cast<std::size_t>(bucket)].size();
}

int
PendingQueue::leadBucket() const
{
    BP_REQUIRE(size_ > 0);
    int lead = -1;
    for (int b = 0; b < static_cast<int>(buckets_.size()); ++b) {
        const auto &q = buckets_[static_cast<std::size_t>(b)];
        if (q.empty())
            continue;
        if (lead < 0) {
            lead = b;
            continue;
        }
        const InferRequest &cur = q.front().request;
        const InferRequest &best =
            buckets_[static_cast<std::size_t>(lead)].front().request;
        if (cur.deadline < best.deadline ||
            (cur.deadline == best.deadline && cur.arrival < best.arrival))
            lead = b;
    }
    return lead;
}

const InferRequest &
PendingQueue::head(int bucket) const
{
    BP_REQUIRE(count(bucket) > 0);
    return buckets_[static_cast<std::size_t>(bucket)].front().request;
}

std::vector<PendingRequest>
PendingQueue::popUpTo(int bucket, int max_batch)
{
    BP_REQUIRE(max_batch >= 1);
    BP_REQUIRE(count(bucket) > 0);
    auto &q = buckets_[static_cast<std::size_t>(bucket)];
    std::vector<PendingRequest> out;
    while (!q.empty() && static_cast<int>(out.size()) < max_batch) {
        out.push_back(std::move(q.front()));
        q.pop_front();
        --size_;
    }
    return out;
}

PendingRequest
PendingQueue::popOldest(int bucket)
{
    BP_REQUIRE(count(bucket) > 0);
    auto &q = buckets_[static_cast<std::size_t>(bucket)];
    PendingRequest out = std::move(q.front());
    q.pop_front();
    --size_;
    return out;
}

std::vector<PendingRequest>
PendingQueue::dropExpired(MonoTime now)
{
    std::vector<PendingRequest> dropped;
    for (auto &q : buckets_) {
        for (std::size_t i = 0; i < q.size();) {
            if (q[i].request.deadline <= now) {
                dropped.push_back(std::move(q[i]));
                q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
                --size_;
            } else {
                ++i;
            }
        }
    }
    return dropped;
}

std::vector<PendingRequest>
PendingQueue::shedLowestUrgency(std::size_t target)
{
    std::vector<PendingRequest> shed;
    while (size_ > target) {
        std::deque<PendingRequest> *victim = nullptr;
        for (auto &q : buckets_) {
            if (q.empty())
                continue;
            if (victim == nullptr) {
                victim = &q;
                continue;
            }
            const InferRequest &cur = q.back().request;
            const InferRequest &best = victim->back().request;
            if (cur.deadline > best.deadline ||
                (cur.deadline == best.deadline &&
                 cur.arrival > best.arrival)) {
                victim = &q;
            }
        }
        BP_REQUIRE(victim != nullptr);
        shed.push_back(std::move(victim->back()));
        victim->pop_back();
        --size_;
    }
    return shed;
}

} // namespace bertprof
