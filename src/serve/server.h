/**
 * @file
 * The request-level inference server: client threads submit
 * variable-length requests and get back futures; a single executor
 * thread drains the dynamic batcher and runs each coalesced batch
 * through the engine's forward-only eval path. One executor because
 * the model's forward is not reentrant — parallelism inside the
 * forward comes from the substrate's thread pool, and batching (not
 * model replication) is the concurrency story this subsystem
 * measures, mirroring the paper's single-device serving setup.
 */

#ifndef BERTPROF_SERVE_SERVER_H
#define BERTPROF_SERVE_SERVER_H

#include <future>
#include <mutex>
#include <thread>

#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/latency.h"
#include "serve/serve_config.h"

namespace bertprof {

/** Dynamic-batching, bucket-padding inference front end. */
class InferenceServer
{
  public:
    /**
     * Starts the executor thread. The engine (and the model behind
     * it) must outlive the server and must not be used elsewhere
     * while the server runs.
     */
    InferenceServer(InferenceEngine &engine, const BucketSpec &buckets,
                    const ServeOptions &options = ServeOptions());

    /** Joins the executor (drains pending work first). */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Submit a request from any thread. Stamps the arrival time; a
     * default-constructed deadline becomes arrival +
     * defaultDeadlineUs. The future resolves with ok=false when the
     * request is rejected (server shut down, empty, or longer than
     * the top bucket).
     */
    std::future<InferReply> submit(InferRequest req);

    /**
     * Stop accepting requests, drain everything already queued, and
     * join the executor. Idempotent; the destructor calls it.
     */
    void shutdown();

    /** End-to-end (submit -> reply) latency over completed requests. */
    LatencySummary latencySummary();

    /** Completed requests so far. */
    std::int64_t completedCount();

    const BucketSpec &buckets() const { return batcher_.spec(); }
    const ServeOptions &options() const { return options_; }

  private:
    void executorLoop();

    InferenceEngine &engine_;
    ServeOptions options_;
    DynamicBatcher batcher_;

    std::mutex statsMu_;
    LatencyRecorder recorder_;

    std::mutex lifecycleMu_;
    bool shutDown_ = false;
    std::thread executor_;
};

} // namespace bertprof

#endif // BERTPROF_SERVE_SERVER_H
