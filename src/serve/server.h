/**
 * @file
 * The request-level inference server: client threads submit
 * variable-length requests and get back futures; a single executor
 * thread drains the dynamic batcher and runs each coalesced batch
 * through the engine's forward-only eval path. One executor because
 * the model's forward is not reentrant — parallelism inside the
 * forward comes from the substrate's thread pool, and batching (not
 * model replication) is the concurrency story this subsystem
 * measures, mirroring the paper's single-device serving setup.
 */

#ifndef BERTPROF_SERVE_SERVER_H
#define BERTPROF_SERVE_SERVER_H

#include <future>
#include <mutex>
#include <thread>

#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/latency.h"
#include "serve/serve_config.h"

namespace bertprof {

/** One server's overload/outcome accounting (all requests ever
 *  submitted resolve into exactly one of these rows). */
struct ServerStats {
    std::int64_t completed = 0;          ///< accepted, computed
    std::int64_t completedInDeadline = 0; ///< ... before the deadline
    std::int64_t rejectedExpired = 0;
    std::int64_t rejectedQueueFull = 0;
    std::int64_t rejectedShutdown = 0;
    std::int64_t rejectedOverlong = 0;
    int degradeLevel = 0; ///< ladder level at snapshot time

    std::int64_t
    rejectedTotal() const
    {
        return rejectedExpired + rejectedQueueFull + rejectedShutdown +
               rejectedOverlong;
    }
};

/** Dynamic-batching, bucket-padding inference front end. */
class InferenceServer
{
  public:
    /**
     * Starts the executor thread. The engine (and the model behind
     * it) must outlive the server and must not be used elsewhere
     * while the server runs.
     */
    InferenceServer(InferenceEngine &engine, const BucketSpec &buckets,
                    const ServeOptions &options = ServeOptions());

    /** Joins the executor (drains pending work first). */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Submit a request from any thread. Stamps the arrival time; a
     * default-constructed deadline becomes arrival +
     * defaultDeadlineUs (saturating). The future always resolves
     * exactly once: with ok=true and logits on success, or ok=false
     * and a typed InferReply::reject reason — Expired (deadline
     * already past at submit, unmeetable under the bucket's measured
     * service time, or shed before compute), QueueFull (bucket at
     * cap under reject-new, evicted under drop-oldest, or shed by
     * the ladder), Shutdown, Overlong.
     */
    std::future<InferReply> submit(InferRequest req);

    /**
     * Stop accepting requests, drain everything already queued, and
     * join the executor. Idempotent; the destructor calls it.
     */
    void shutdown();

    /** End-to-end (submit -> reply) latency over completed requests. */
    LatencySummary latencySummary();

    /** Completed requests so far. */
    std::int64_t completedCount();

    /** Outcome accounting snapshot (completions, typed rejections,
     *  current ladder level). Callable from any thread. */
    ServerStats stats();

    /** Discard latency samples and completion counts accumulated so
     *  far — benchmarks call this after a warm-up phase so measured
     *  percentiles exclude cold-cache / cold-EWMA traffic. Batcher
     *  state (service-time EWMAs, rejection counters) is preserved:
     *  warming those is the point of a warm-up. */
    void resetStats();

    const BucketSpec &buckets() const { return batcher_.spec(); }
    const ServeOptions &options() const { return options_; }

  private:
    void executorLoop();

    InferenceEngine &engine_;
    ServeOptions options_;
    DynamicBatcher batcher_;

    std::mutex statsMu_;
    LatencyRecorder recorder_;
    std::int64_t completedInDeadline_ = 0;

    std::mutex lifecycleMu_;
    bool shutDown_ = false;
    std::thread executor_;
};

} // namespace bertprof

#endif // BERTPROF_SERVE_SERVER_H
