#include "serve/latency.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace bertprof {

double
sortedPercentile(const std::vector<double> &sorted, double q)
{
    BP_REQUIRE(q >= 0.0 && q <= 1.0);
    if (sorted.empty())
        return 0.0;
    const auto n = static_cast<std::int64_t>(sorted.size());
    std::int64_t rank =
        static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    return sorted[static_cast<std::size_t>(rank - 1)];
}

LatencySummary
LatencyRecorder::summary() const
{
    LatencySummary s;
    s.count = count();
    if (samples_.empty())
        return s;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double v : sorted)
        sum += v;
    s.meanSeconds = sum / static_cast<double>(sorted.size());
    s.p50Seconds = sortedPercentile(sorted, 0.50);
    s.p90Seconds = sortedPercentile(sorted, 0.90);
    s.p99Seconds = sortedPercentile(sorted, 0.99);
    s.p999Seconds = sortedPercentile(sorted, 0.999);
    s.maxSeconds = sorted.back();
    return s;
}

} // namespace bertprof
