#include "serve/server.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "nn/graph_hook.h"
#include "runtime/fault_injection.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "util/logging.h"

namespace bertprof {

InferenceServer::InferenceServer(InferenceEngine &engine,
                                 const BucketSpec &buckets,
                                 const ServeOptions &options)
    : engine_(engine), options_(options),
      batcher_(buckets, options.resolve())
{
    BP_REQUIRE(buckets.maxLen() <= engine.maxPositions());
    BP_REQUIRE(options_.defaultDeadlineUs >= 0);
    executor_ = std::thread([this] { executorLoop(); });
}

InferenceServer::~InferenceServer()
{
    shutdown();
}

std::future<InferReply>
InferenceServer::submit(InferRequest req)
{
    req.arrival = monoNow();
    if (req.deadline == MonoTime{})
        req.deadline = monoAddMicros(req.arrival,
                                     options_.defaultDeadlineUs);

    PendingRequest pending;
    pending.request = std::move(req);
    std::future<InferReply> future = pending.promise.get_future();
    // submit() leaves `pending` untouched on refusal, so rejection
    // resolves the same future a success would — through the
    // batcher's funnel, which types and counts it.
    const RejectReason reason = batcher_.submit(pending);
    if (reason != RejectReason::None)
        batcher_.resolveRejected(pending, reason);
    return future;
}

void
InferenceServer::shutdown()
{
    std::lock_guard<std::mutex> lock(lifecycleMu_);
    if (shutDown_)
        return;
    shutDown_ = true;
    batcher_.close();
    if (executor_.joinable())
        executor_.join();
}

LatencySummary
InferenceServer::latencySummary()
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return recorder_.summary();
}

std::int64_t
InferenceServer::completedCount()
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return recorder_.count();
}

ServerStats
InferenceServer::stats()
{
    ServerStats out;
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        out.completed = recorder_.count();
        out.completedInDeadline = completedInDeadline_;
    }
    out.rejectedExpired = batcher_.rejectedCount(RejectReason::Expired);
    out.rejectedQueueFull =
        batcher_.rejectedCount(RejectReason::QueueFull);
    out.rejectedShutdown =
        batcher_.rejectedCount(RejectReason::Shutdown);
    out.rejectedOverlong =
        batcher_.rejectedCount(RejectReason::Overlong);
    out.degradeLevel = batcher_.degradeLevel();
    return out;
}

void
InferenceServer::resetStats()
{
    std::lock_guard<std::mutex> lock(statsMu_);
    recorder_.reset();
    completedInDeadline_ = 0;
}

namespace {

std::int64_t
nanosBetween(MonoTime a, MonoTime b)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
        .count();
}

} // namespace

void
InferenceServer::executorLoop()
{
    auto &metrics = MetricsRegistry::instance();
    Batch batch;
    std::vector<InferReply> replies;
    while (batcher_.nextBatch(batch)) {
        // Pre-compute shed: a batch can sit formed (chaos stall,
        // slow predecessor) long enough for members to expire — drop
        // them now rather than burn a forward pass on dead work. A
        // member whose deadline lands inside the forward pass about
        // to start (deadline < now + bucket EWMA) is equally doomed:
        // its reply would arrive late no matter what, so shedding it
        // here is what keeps the accepted-request tail bounded by
        // the deadline instead of deadline + service time.
        if (batcher_.policy().shedExpired) {
            const MonoTime now = monoNow();
            const auto ewma_ns = static_cast<std::int64_t>(
                batcher_.serviceEwmaSeconds(batch.bucket) * 1e9);
            const MonoTime done_by =
                now + std::chrono::nanoseconds(ewma_ns);
            std::size_t live = 0;
            for (std::size_t i = 0; i < batch.requests.size(); ++i) {
                PendingRequest &pending = batch.requests[i];
                if (pending.request.deadline < done_by ||
                    pending.request.deadline <= now) {
                    metrics.counter("serve.shed.precompute").add(1);
                    TraceRecorder::instance().counter(
                        "serve.shed.precompute", 1);
                    batcher_.resolveRejected(pending,
                                             RejectReason::Expired);
                } else {
                    if (live != i)
                        batch.requests[live] =
                            std::move(batch.requests[i]);
                    ++live;
                }
            }
            batch.requests.resize(live);
            if (batch.requests.empty()) {
                batch = Batch();
                continue;
            }
        }

        // Chaos compute site: `slow` stalls inside the timed window
        // (so the service-time EWMA sees the stall and admission
        // tightens), `nan` poisons the produced logits.
        std::int64_t slow_us = 0;
        const FaultKind fault = faultAt("serve.compute", &slow_us);

        const MonoTime start = monoNow();
        if (fault == FaultKind::Slow && slow_us > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(slow_us));
        engine_.run(batch, replies);
        const MonoTime end = monoNow();
        BP_REQUIRE(replies.size() == batch.requests.size());
        if (fault == FaultKind::NaN) {
            for (InferReply &reply : replies)
                for (float &v : reply.logits)
                    v = std::numeric_limits<float>::quiet_NaN();
        }
        const double compute_seconds = secondsBetween(start, end);
        batcher_.recordServiceTime(batch.bucket, compute_seconds);

        const auto batch_size =
            static_cast<std::int64_t>(batch.requests.size());
        MonoTime oldestArrival = start;
        std::int64_t in_deadline = 0;
        for (std::size_t i = 0; i < batch.requests.size(); ++i) {
            PendingRequest &pending = batch.requests[i];
            InferReply &reply = replies[i];
            if (pending.request.arrival < oldestArrival)
                oldestArrival = pending.request.arrival;
            reply.queueSeconds =
                secondsBetween(pending.request.arrival, start);
            reply.computeSeconds = compute_seconds;
            reply.totalSeconds =
                secondsBetween(pending.request.arrival, end);
            reply.batchSize = batch_size;
            reply.paddedLen = batch.paddedLen;
            if (end <= pending.request.deadline)
                ++in_deadline;
            {
                std::lock_guard<std::mutex> lock(statsMu_);
                recorder_.add(reply.totalSeconds);
                if (end <= pending.request.deadline)
                    ++completedInDeadline_;
            }
            metrics.histogram("serve.queue_seconds")
                .record(reply.queueSeconds);
            metrics.histogram("serve.compute_seconds")
                .record(reply.computeSeconds);
            metrics.histogram("serve.total_seconds")
                .record(reply.totalSeconds);
            pending.promise.set_value(std::move(reply));
        }

        const std::int64_t depth =
            static_cast<std::int64_t>(batcher_.pendingCount());
        metrics.counter("serve.batches").add(1);
        metrics.counter("serve.requests").add(batch_size);
        metrics.counter("serve.completed.in_deadline").add(in_deadline);
        metrics.counter("serve.completed.late")
            .add(batch_size - in_deadline);
        metrics.histogram("serve.batch_occupancy")
            .record(static_cast<double>(batch_size));
        metrics.gauge("serve.queue_depth")
            .set(static_cast<double>(depth));
        metrics.gauge("serve.degrade.level")
            .set(static_cast<double>(batcher_.degradeLevel()));
        TraceRecorder::instance().onServeBatch(
            nanosBetween(oldestArrival, start),
            nanosBetween(start, end), batch_size, batch.paddedLen,
            depth);
        // Arena footprint of the graph executor, when engaged: the
        // high-water mark shows up in bptrace --stats next to the
        // serving gauges.
        if (EncoderGraphExec *exec = encoderGraphExec()) {
            const std::int64_t arena_peak = exec->arenaPeakBytes();
            if (arena_peak > 0) {
                metrics.gauge("graph.arena_peak_bytes")
                    .set(static_cast<double>(arena_peak));
                TraceRecorder::instance().gauge(
                    "graph.arena_peak_bytes",
                    static_cast<double>(arena_peak));
            }
        }

        batch.requests.clear();
        replies.clear();
    }
}

} // namespace bertprof
