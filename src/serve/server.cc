#include "serve/server.h"

#include <chrono>

#include "nn/graph_hook.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "util/logging.h"

namespace bertprof {

InferenceServer::InferenceServer(InferenceEngine &engine,
                                 const BucketSpec &buckets,
                                 const ServeOptions &options)
    : engine_(engine), options_(options),
      batcher_(buckets, options.resolvedMaxBatch(),
               options.resolvedMaxWaitUs())
{
    BP_REQUIRE(buckets.maxLen() <= engine.maxPositions());
    BP_REQUIRE(options_.defaultDeadlineUs >= 0);
    executor_ = std::thread([this] { executorLoop(); });
}

InferenceServer::~InferenceServer()
{
    shutdown();
}

std::future<InferReply>
InferenceServer::submit(InferRequest req)
{
    req.arrival = monoNow();
    if (req.deadline == MonoTime{})
        req.deadline = monoAddMicros(req.arrival,
                                     options_.defaultDeadlineUs);

    PendingRequest pending;
    pending.request = std::move(req);
    std::future<InferReply> future = pending.promise.get_future();
    // submit() leaves `pending` untouched on refusal, so rejection
    // resolves the same future a success would.
    if (!batcher_.submit(pending)) {
        InferReply reply;
        reply.id = pending.request.id;
        reply.ok = false;
        pending.promise.set_value(std::move(reply));
    }
    return future;
}

void
InferenceServer::shutdown()
{
    std::lock_guard<std::mutex> lock(lifecycleMu_);
    if (shutDown_)
        return;
    shutDown_ = true;
    batcher_.close();
    if (executor_.joinable())
        executor_.join();
}

LatencySummary
InferenceServer::latencySummary()
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return recorder_.summary();
}

std::int64_t
InferenceServer::completedCount()
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return recorder_.count();
}

namespace {

std::int64_t
nanosBetween(MonoTime a, MonoTime b)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
        .count();
}

} // namespace

void
InferenceServer::executorLoop()
{
    auto &metrics = MetricsRegistry::instance();
    Batch batch;
    std::vector<InferReply> replies;
    while (batcher_.nextBatch(batch)) {
        const MonoTime start = monoNow();
        engine_.run(batch, replies);
        const MonoTime end = monoNow();
        BP_REQUIRE(replies.size() == batch.requests.size());
        const auto batch_size =
            static_cast<std::int64_t>(batch.requests.size());
        MonoTime oldestArrival = start;
        for (std::size_t i = 0; i < batch.requests.size(); ++i) {
            PendingRequest &pending = batch.requests[i];
            InferReply &reply = replies[i];
            if (pending.request.arrival < oldestArrival)
                oldestArrival = pending.request.arrival;
            reply.queueSeconds =
                secondsBetween(pending.request.arrival, start);
            reply.computeSeconds = secondsBetween(start, end);
            reply.totalSeconds =
                secondsBetween(pending.request.arrival, end);
            reply.batchSize = batch_size;
            reply.paddedLen = batch.paddedLen;
            {
                std::lock_guard<std::mutex> lock(statsMu_);
                recorder_.add(reply.totalSeconds);
            }
            metrics.histogram("serve.queue_seconds")
                .record(reply.queueSeconds);
            metrics.histogram("serve.compute_seconds")
                .record(reply.computeSeconds);
            metrics.histogram("serve.total_seconds")
                .record(reply.totalSeconds);
            pending.promise.set_value(std::move(reply));
        }

        const std::int64_t depth =
            static_cast<std::int64_t>(batcher_.pendingCount());
        metrics.counter("serve.batches").add(1);
        metrics.counter("serve.requests").add(batch_size);
        metrics.histogram("serve.batch_occupancy")
            .record(static_cast<double>(batch_size));
        metrics.gauge("serve.queue_depth")
            .set(static_cast<double>(depth));
        TraceRecorder::instance().onServeBatch(
            nanosBetween(oldestArrival, start),
            nanosBetween(start, end), batch_size, batch.paddedLen,
            depth);
        // Arena footprint of the graph executor, when engaged: the
        // high-water mark shows up in bptrace --stats next to the
        // serving gauges.
        if (EncoderGraphExec *exec = encoderGraphExec()) {
            const std::int64_t arena_peak = exec->arenaPeakBytes();
            if (arena_peak > 0) {
                metrics.gauge("graph.arena_peak_bytes")
                    .set(static_cast<double>(arena_peak));
                TraceRecorder::instance().gauge(
                    "graph.arena_peak_bytes",
                    static_cast<double>(arena_peak));
            }
        }

        batch.requests.clear();
        replies.clear();
    }
}

} // namespace bertprof
