/**
 * @file
 * Inference engines: adapters that run one coalesced Batch through a
 * model's forward-only eval path and split the result back into
 * per-request replies. The executor thread is the only caller — the
 * eval forwards are not reentrant (intra-op parallelism comes from
 * the substrate's thread pool underneath the single forward).
 */

#ifndef BERTPROF_SERVE_ENGINE_H
#define BERTPROF_SERVE_ENGINE_H

#include <cstdint>
#include <vector>

#include "nn/bert_classifier.h"
#include "nn/bert_pretrainer.h"
#include "serve/request_queue.h"

namespace bertprof {

/** Runs batches; one concrete engine per serveable head. */
class InferenceEngine
{
  public:
    virtual ~InferenceEngine() = default;

    /** Longest admissible sequence (bucket grids clip to this). */
    virtual std::int64_t maxPositions() const = 0;

    /**
     * Execute `batch` at its bucket's padded length and fill
     * `replies` (same order as batch.requests) with ok/logits/
     * rows/cols. Timing fields are the server's job.
     */
    virtual void run(const Batch &batch,
                     std::vector<InferReply> &replies) = 0;
};

/**
 * Serves BertClassifier::forwardLogitsEval: one row of class logits
 * per request. The model must be in eval mode and not be used by any
 * other thread while the server lives.
 */
class ClassifierEngine : public InferenceEngine
{
  public:
    /** pad_id fills padded token slots (segment slots pad with 0). */
    ClassifierEngine(BertClassifier &model, std::int64_t pad_id);

    std::int64_t maxPositions() const override;
    void run(const Batch &batch,
             std::vector<InferReply> &replies) override;

  private:
    BertClassifier &model_;
    std::int64_t padId_;
};

/**
 * Serves BertPretrainer::mlmLogitsEval: one row of vocabulary logits
 * per requested masked position. Same single-caller contract as
 * ClassifierEngine.
 */
class MlmEngine : public InferenceEngine
{
  public:
    MlmEngine(BertPretrainer &model, std::int64_t pad_id);

    std::int64_t maxPositions() const override;
    void run(const Batch &batch,
             std::vector<InferReply> &replies) override;

  private:
    BertPretrainer &model_;
    std::int64_t padId_;
};

} // namespace bertprof

#endif // BERTPROF_SERVE_ENGINE_H
