/**
 * @file
 * Serving-runtime knobs, resolved the same way as the substrate's
 * thread/GEMM knobs (runtime/config.h): an explicit field in
 * ServeOptions wins, otherwise the BERTPROF_SERVE_* environment
 * variable, otherwise the baked-in default.
 *
 *   BERTPROF_SERVE_MAX_BATCH    max requests coalesced per forward
 *                               (default 8, range [1, 1024])
 *   BERTPROF_SERVE_MAX_WAIT_US  max microseconds the batcher holds
 *                               the most urgent pending request open
 *                               for company (default 2000,
 *                               range [0, 10^9])
 */

#ifndef BERTPROF_SERVE_SERVE_CONFIG_H
#define BERTPROF_SERVE_SERVE_CONFIG_H

#include <cstdint>

namespace bertprof {

/** BERTPROF_SERVE_MAX_BATCH or the default (8). */
int configuredServeMaxBatch();

/** BERTPROF_SERVE_MAX_WAIT_US or the default (2000). */
std::int64_t configuredServeMaxWaitUs();

/** Batching policy for one server instance. */
struct ServeOptions {
    /** Max requests per coalesced batch; <= 0 = use the env knob. */
    int maxBatch = 0;
    /** Max hold time before a lone request ships; < 0 = env knob. */
    std::int64_t maxWaitUs = -1;
    /**
     * Deadline assigned on submit when a request carries none, in
     * microseconds after arrival. Deadlines only accelerate flushes
     * (a batch never waits past its most urgent member's deadline);
     * nothing is dropped for missing one.
     */
    std::int64_t defaultDeadlineUs = 100000;

    /** The policy with env/default fallbacks applied. */
    int resolvedMaxBatch() const;
    std::int64_t resolvedMaxWaitUs() const;
};

} // namespace bertprof

#endif // BERTPROF_SERVE_SERVE_CONFIG_H
