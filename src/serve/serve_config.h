/**
 * @file
 * Serving-runtime knobs, resolved the same way as the substrate's
 * thread/GEMM knobs (runtime/config.h): an explicit field in
 * ServeOptions wins, otherwise the BERTPROF_SERVE_* environment
 * variable, otherwise the baked-in default.
 *
 *   BERTPROF_SERVE_MAX_BATCH    max requests coalesced per forward
 *                               (default 8, range [1, 1024])
 *   BERTPROF_SERVE_MAX_WAIT_US  max microseconds the batcher holds
 *                               the most urgent pending request open
 *                               for company (default 2000,
 *                               range [0, 10^9])
 *   BERTPROF_SERVE_QUEUE_CAP    admission control: max pending
 *                               requests per bucket (default 64,
 *                               range [1, 2^20])
 *   BERTPROF_SERVE_QUEUE_POLICY what happens when a bucket is at cap:
 *                               `reject-new` (default) refuses the
 *                               arriving request, `drop-oldest`
 *                               evicts the bucket's oldest pending
 *                               request to admit the new one
 *   BERTPROF_SERVE_DEGRADE      graceful-degradation ladder under
 *                               sustained queue pressure: `on`
 *                               (default) or `off`
 */

#ifndef BERTPROF_SERVE_SERVE_CONFIG_H
#define BERTPROF_SERVE_SERVE_CONFIG_H

#include <cstdint>

namespace bertprof {

/** Behavior of a full per-bucket queue at submit. */
enum class QueuePolicy {
    Default,    ///< resolve via BERTPROF_SERVE_QUEUE_POLICY
    RejectNew,  ///< refuse the arriving request (QueueFull)
    DropOldest, ///< evict the bucket's oldest request, admit the new
};

/** BERTPROF_SERVE_MAX_BATCH or the default (8). */
int configuredServeMaxBatch();

/** BERTPROF_SERVE_MAX_WAIT_US or the default (2000). */
std::int64_t configuredServeMaxWaitUs();

/** BERTPROF_SERVE_QUEUE_CAP or the default (64). */
int configuredServeQueueCap();

/** BERTPROF_SERVE_QUEUE_POLICY or the default (RejectNew). */
QueuePolicy configuredServeQueuePolicy();

/** BERTPROF_SERVE_DEGRADE or the default (true). */
bool configuredServeDegrade();

/**
 * The batcher's fully-resolved overload policy: every env/default
 * fallback applied, plus the shedding switches the overload bench
 * flips to reproduce the pre-admission-control behavior as its
 * baseline.
 */
struct ResolvedServePolicy {
    int maxBatch = 8;
    std::int64_t maxWaitUs = 2000;
    int queueCap = 64;
    QueuePolicy queuePolicy = QueuePolicy::RejectNew;
    /** Arm the hysteretic degradation ladder. */
    bool degrade = true;
    /** Reject at submit when the deadline is provably unmeetable
     *  (needs a per-bucket service-time EWMA measurement first). */
    bool admission = true;
    /** Drop expired requests at every stage instead of computing
     *  them (submit, dequeue, batch-forming, pre-compute). */
    bool shedExpired = true;
};

/** Batching policy for one server instance. */
struct ServeOptions {
    /** Max requests per coalesced batch; <= 0 = use the env knob. */
    int maxBatch = 0;
    /** Max hold time before a lone request ships; < 0 = env knob. */
    std::int64_t maxWaitUs = -1;
    /** Per-bucket pending cap; <= 0 = env knob. */
    int queueCap = 0;
    /** Full-queue behavior; Default = env knob. */
    QueuePolicy queuePolicy = QueuePolicy::Default;
    /** Degradation ladder: <0 = env knob, 0 = off, >0 = on. */
    int degrade = -1;
    /** EWMA-based unmeetable-deadline rejection at submit. */
    bool admission = true;
    /** Shed expired requests instead of computing them. The overload
     *  bench's no-shedding baseline sets this false, restoring the
     *  old burn-compute-on-dead-work behavior. */
    bool shedExpired = true;
    /**
     * Deadline assigned on submit when a request carries none, in
     * microseconds after arrival. Deadlines accelerate flushes (a
     * batch never waits past its most urgent member's deadline) and,
     * with shedExpired, bound how long a request may be computed at
     * all.
     */
    std::int64_t defaultDeadlineUs = 100000;

    /** The policy with env/default fallbacks applied. */
    int resolvedMaxBatch() const;
    std::int64_t resolvedMaxWaitUs() const;
    int resolvedQueueCap() const;
    QueuePolicy resolvedQueuePolicy() const;
    bool resolvedDegrade() const;

    /** Everything resolved at once (what the batcher runs on). */
    ResolvedServePolicy resolve() const;
};

} // namespace bertprof

#endif // BERTPROF_SERVE_SERVE_CONFIG_H
