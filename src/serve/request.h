/**
 * @file
 * Request/reply types for the inference serving runtime. A request is
 * one variable-length sequence (plus optional masked-LM positions);
 * the reply carries the logits and the latency breakdown the serving
 * benchmarks aggregate (queue wait vs. compute, batch size, bucket).
 */

#ifndef BERTPROF_SERVE_REQUEST_H
#define BERTPROF_SERVE_REQUEST_H

#include <cstdint>
#include <vector>

#include "util/stopwatch.h"

namespace bertprof {

/**
 * Why a request was refused or shed. `None` means the request was
 * accepted and computed; everything else resolves the future with
 * ok=false and this typed reason, so clients and the overload bench
 * can tell dead work (Expired) from back-pressure (QueueFull) from
 * lifecycle refusals (Shutdown) from malformed input (Overlong).
 */
enum class RejectReason : std::uint8_t {
    None = 0,  ///< accepted (reply carries logits)
    Expired,   ///< deadline already passed or provably unmeetable
    QueueFull, ///< admission control / load shedding under pressure
    Shutdown,  ///< server closed before the request could queue
    Overlong,  ///< empty or longer than the top bucket
};

/** Short name: "none" / "expired" / "queue-full" / "shutdown" /
 *  "overlong". */
const char *rejectReasonName(RejectReason reason);

/** One inference request: a single unpadded sequence. */
struct InferRequest {
    /** Caller-chosen id, echoed in the reply. */
    std::uint64_t id = 0;
    /** Token ids, one per real token (no padding). */
    std::vector<std::int64_t> tokenIds;
    /** Segment ids, same length as tokenIds. */
    std::vector<std::int64_t> segmentIds;
    /**
     * Positions (relative to this sequence, in [0, len)) to decode
     * with the masked-LM head. Empty = classification request.
     */
    std::vector<std::int64_t> mlmPositions;
    /** Monotonic arrival instant (stamped by the server on submit). */
    MonoTime arrival{};
    /**
     * Absolute monotonic deadline. The batcher flushes a waiting
     * batch early rather than let its most urgent request pass this.
     */
    MonoTime deadline{};
};

/** The answer to one request. */
struct InferReply {
    std::uint64_t id = 0;
    /** False when the request was rejected (see `reject`). */
    bool ok = false;
    /** Why ok is false; None on accepted replies. */
    RejectReason reject = RejectReason::None;
    /** Row-major logits: rows x cols. Classification: 1 x numClasses;
     * MLM: |mlmPositions| x vocabSize. */
    std::vector<float> logits;
    std::int64_t rows = 0;
    std::int64_t cols = 0;

    // Latency breakdown (seconds, monotonic clock).
    double queueSeconds = 0.0; ///< submit -> batch execution start
    double computeSeconds = 0.0; ///< model forward for the batch
    double totalSeconds = 0.0; ///< submit -> reply ready
    /** How many requests shared the forward pass. */
    std::int64_t batchSize = 0;
    /** Padded sequence length the batch ran at (bucket boundary). */
    std::int64_t paddedLen = 0;
};

} // namespace bertprof

#endif // BERTPROF_SERVE_REQUEST_H
