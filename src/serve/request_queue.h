/**
 * @file
 * Per-bucket FIFO store for pending requests. Pure data structure —
 * DynamicBatcher owns one and accesses it under its own lock; keeping
 * the bookkeeping lock-free here keeps the batcher's critical
 * sections short and the policy logic testable single-threaded.
 */

#ifndef BERTPROF_SERVE_REQUEST_QUEUE_H
#define BERTPROF_SERVE_REQUEST_QUEUE_H

#include <cstddef>
#include <deque>
#include <future>
#include <vector>

#include "serve/request.h"

namespace bertprof {

/** A queued request plus the promise its reply resolves. */
struct PendingRequest {
    InferRequest request;
    std::promise<InferReply> promise;
};

/** One coalesced unit of work: same-bucket requests, FIFO order. */
struct Batch {
    int bucket = -1;
    /** Sequence length every member is padded to (bucket boundary). */
    std::int64_t paddedLen = 0;
    std::vector<PendingRequest> requests;
};

/** Pending requests, FIFO within each bucket. Not thread-safe. */
class PendingQueue
{
  public:
    explicit PendingQueue(int num_buckets);

    void push(int bucket, PendingRequest req);

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t count(int bucket) const;

    /**
     * The bucket whose oldest request is most urgent: earliest
     * deadline, ties broken by earliest arrival. Requires !empty().
     */
    int leadBucket() const;

    /** The oldest request in `bucket` (must be non-empty). */
    const InferRequest &head(int bucket) const;

    /** Pop up to max_batch requests from `bucket`, FIFO order. */
    std::vector<PendingRequest> popUpTo(int bucket, int max_batch);

    /** Pop the oldest request in `bucket` (must be non-empty) — the
     *  drop-oldest admission policy's eviction primitive. */
    PendingRequest popOldest(int bucket);

    /**
     * Remove every request whose deadline is at or before `now` and
     * return them (the caller resolves their futures as Expired).
     * Dead work never reaches a batch, so the executor stops burning
     * compute on requests nobody is waiting for.
     */
    std::vector<PendingRequest> dropExpired(MonoTime now);

    /**
     * Shed until at most `target` requests remain, returning the
     * removed ones. Candidates are the bucket tails (the newest
     * request of each bucket — the last in FIFO line anyway); among
     * them the latest deadline (lowest urgency) goes first, ties by
     * latest arrival. The degradation ladder's final rung.
     */
    std::vector<PendingRequest> shedLowestUrgency(std::size_t target);

  private:
    std::vector<std::deque<PendingRequest>> buckets_;
    std::size_t size_ = 0;
};

} // namespace bertprof

#endif // BERTPROF_SERVE_REQUEST_QUEUE_H
