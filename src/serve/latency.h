/**
 * @file
 * Latency aggregation for the serving runtime: per-request samples in,
 * tail percentiles out. Serving quality is a tail story — the paper's
 * system-design lens makes p99/p99.9, not the mean, the numbers the
 * batching knobs trade against throughput.
 */

#ifndef BERTPROF_SERVE_LATENCY_H
#define BERTPROF_SERVE_LATENCY_H

#include <cstdint>
#include <vector>

namespace bertprof {

/** Summary statistics over recorded latency samples (seconds). */
struct LatencySummary {
    std::int64_t count = 0;
    double meanSeconds = 0.0;
    double p50Seconds = 0.0;
    double p90Seconds = 0.0;
    double p99Seconds = 0.0;
    double p999Seconds = 0.0;
    double maxSeconds = 0.0;
};

/**
 * Accumulates latency samples; summary() sorts a copy, so record on
 * the hot path stays O(1). Not thread-safe — callers that record
 * from multiple threads wrap it in their own lock (InferenceServer
 * records from the single executor thread under one mutex).
 */
class LatencyRecorder
{
  public:
    void add(double seconds) { samples_.push_back(seconds); }

    /** Discard all samples (e.g. after a warm-up phase). */
    void reset() { samples_.clear(); }

    std::int64_t count() const
    {
        return static_cast<std::int64_t>(samples_.size());
    }

    /** Nearest-rank percentiles over all samples so far. */
    LatencySummary summary() const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

/**
 * Nearest-rank percentile (q in [0, 1]) of an ascending-sorted
 * sample vector; 0 when empty.
 */
double sortedPercentile(const std::vector<double> &sorted, double q);

} // namespace bertprof

#endif // BERTPROF_SERVE_LATENCY_H
