#include "dist/tensor_slicing.h"

#include <string>

#include "trace/bert_trace_builder.h"
#include "util/logging.h"

namespace bertprof {

namespace {

bool
endsWith(const std::string &name, const std::string &suffix)
{
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

bool
endsWithAny(const std::string &name,
            std::initializer_list<const char *> suffixes)
{
    for (const char *suffix : suffixes)
        if (endsWith(name, suffix))
            return true;
    return false;
}

/** Scale an element-wise op's work and traffic by 1/ways. */
void
shrinkEw(OpDesc &op, int ways)
{
    op.numel /= ways;
    op.stats.flops /= ways;
    op.stats.bytesRead /= ways;
    op.stats.bytesWritten /= ways;
}

/** Recompute a GEMM op's stats after its dims changed. */
void
refreshGemm(OpDesc &op)
{
    op.stats = gemmStats(op.gemm.m, op.gemm.n, op.gemm.k, op.gemm.batch,
                         dtypeBytes(op.dtype));
}

OpDesc
makeAllReduce(const std::string &name, Phase phase, std::int64_t bytes)
{
    OpDesc op;
    op.name = name;
    op.kind = OpKind::Comm;
    op.phase = phase;
    op.scope = LayerScope::Network;
    op.sub = SubLayer::AllReduce;
    op.commBytes = bytes;
    return op;
}

} // namespace

OpTrace
TensorSlicingModel::buildSlicedTrace(const BertConfig &config, int ways,
                                     TraceOptions options)
{
    BP_REQUIRE(ways >= 1);
    BP_REQUIRE(config.numHeads % ways == 0);
    BP_REQUIRE(config.dModel % ways == 0 && config.dFf % ways == 0);

    BertTraceBuilder builder(config, options);
    OpTrace full = builder.buildIteration();
    if (ways == 1)
        return full;

    const std::int64_t activation_bytes =
        config.tokens() * config.dModel * config.activationBytes();

    OpTrace sliced;
    for (OpDesc op : full.ops) {
        const std::string &name = op.name;
        bool emit_fwd_allreduce = false;
        bool emit_bwd_allreduce = false;

        if (op.scope == LayerScope::Optimizer) {
            // LAMB work is split with the parameters (Takeaway 12).
            shrinkEw(op, ways);
        } else if (op.kind == OpKind::Gemm ||
                   op.kind == OpKind::BatchedGemm) {
            if (op.sub == SubLayer::AttnBGemm) {
                // Heads are divided among devices.
                op.gemm.batch /= ways;
                refreshGemm(op);
            } else if (endsWithAny(name, {"attn.q.fwd", "attn.k.fwd",
                                          "attn.v.fwd", "attn.qkv.fwd",
                                          "fc1.fwd"})) {
                // Column-parallel forward: output features split.
                op.gemm.m /= ways;
                refreshGemm(op);
            } else if (endsWithAny(name, {"attn.q.wgrad", "attn.k.wgrad",
                                          "attn.v.wgrad",
                                          "attn.qkv.wgrad"})) {
                op.gemm.m /= ways;
                refreshGemm(op);
            } else if (endsWith(name, "fc1.wgrad")) {
                op.gemm.n /= ways;
                refreshGemm(op);
            } else if (endsWithAny(name, {"attn.q.dgrad", "attn.k.dgrad",
                                          "attn.v.dgrad",
                                          "attn.qkv.dgrad",
                                          "fc1.dgrad"})) {
                // Column-parallel backward produces a partial [T, d]
                // that must be all-reduced; the last such GEMM in the
                // group triggers the collective.
                op.gemm.k /= ways;
                refreshGemm(op);
                if (endsWithAny(name,
                                {"attn.q.dgrad", "attn.qkv.dgrad",
                                 "fc1.dgrad"})) {
                    emit_bwd_allreduce = true;
                }
            } else if (endsWithAny(name, {"attn.out.fwd", "fc2.fwd"})) {
                // Row-parallel forward: K split, output is a partial
                // sum that is all-reduced before bias/dropout.
                op.gemm.k /= ways;
                refreshGemm(op);
                emit_fwd_allreduce = true;
            } else if (endsWith(name, "attn.out.wgrad")) {
                op.gemm.n /= ways;
                refreshGemm(op);
            } else if (endsWithAny(name,
                                   {"attn.out.dgrad", "fc2.dgrad"})) {
                op.gemm.m /= ways;
                refreshGemm(op);
            } else if (endsWith(name, "fc2.wgrad")) {
                op.gemm.m /= ways;
                refreshGemm(op);
            }
            // Embedding/output GEMMs: replicated, unchanged.
        } else if (op.sub == SubLayer::AttnScaleMaskDrSm ||
                   op.sub == SubLayer::FcGelu) {
            // These operate on per-head scores / split d_ff features.
            shrinkEw(op, ways);
        } else if (op.sub == SubLayer::AttnLinear &&
                   (endsWithAny(name,
                                {"attn.q.bias", "attn.k.bias",
                                 "attn.v.bias", "attn.qkv.bias",
                                 "attn.q.bias.bwd", "attn.k.bias.bwd",
                                 "attn.v.bias.bwd",
                                 "attn.qkv.bias.bwd"}))) {
            shrinkEw(op, ways);
        } else if (op.sub == SubLayer::FcGemm &&
                   endsWithAny(name, {"fc1.bias", "fc1.bias.bwd"})) {
            shrinkEw(op, ways);
        }
        // DR+RC+LN, embedding, output head: replicated, unchanged
        // (Takeaway: their share grows with device count).

        const int layer = op.layerIndex;
        const Phase phase = op.phase;
        sliced.add(std::move(op));
        if (emit_fwd_allreduce) {
            OpDesc comm = makeAllReduce("ts.allreduce.fwd", phase,
                                        activation_bytes);
            comm.layerIndex = layer;
            sliced.add(std::move(comm));
        }
        if (emit_bwd_allreduce) {
            OpDesc comm = makeAllReduce("ts.allreduce.bwd", Phase::Comm,
                                        activation_bytes);
            comm.layerIndex = layer;
            sliced.add(std::move(comm));
        }
    }
    return sliced;
}

DistributedProfile
TensorSlicingModel::evaluate(const BertConfig &config, int ways,
                             TraceOptions options) const
{
    OpTrace trace = buildSlicedTrace(config, ways, options);
    TraceExecutor executor(spec_);

    DistributedProfile profile;
    profile.timed = executor.execute(trace);
    // Re-time the AllReduce ops with the collective model (the
    // executor's per-op link model is point-to-point).
    for (auto &timed : profile.timed.ops) {
        if (timed.op.kind != OpKind::Comm)
            continue;
        timed.time = KernelTime{};
        timed.time.link = comm_.allReduceTime(timed.op.commBytes, ways);
        profile.totalCommSeconds += timed.time.link;
    }
    // Tensor slicing's communication is serialized with compute.
    profile.exposedCommSeconds = profile.totalCommSeconds;
    profile.computeSeconds =
        profile.timed.totalSeconds() - profile.totalCommSeconds;
    return profile;
}

} // namespace bertprof
