#include "dist/pipeline.h"

#include <algorithm>
#include <vector>

#include "trace/bert_trace_builder.h"
#include "util/logging.h"

namespace bertprof {

PipelineProfile
PipelineModel::evaluate(const BertConfig &config, int stages,
                        int micro_batches, TraceOptions options) const
{
    BP_REQUIRE(stages >= 1 && micro_batches >= 1);
    BP_REQUIRE(config.numLayers % stages == 0);
    BP_REQUIRE(config.batch % micro_batches == 0);

    // Per-micro-batch trace.
    BertConfig micro = config;
    micro.batch = config.batch / micro_batches;
    BertTraceBuilder builder(micro, options);
    TraceExecutor executor(spec_);

    OpTrace fwd_bwd = builder.buildForward();
    fwd_bwd.append(builder.buildBackward());
    const TimedTrace timed = executor.execute(fwd_bwd);

    // Time per transformer layer plus the embedding (stage 0) and
    // output head (last stage) extras.
    std::vector<Seconds> layer_time(
        static_cast<std::size_t>(config.numLayers), 0.0);
    Seconds embedding_time = 0.0, output_time = 0.0;
    for (const auto &op : timed.ops) {
        if (op.op.layerIndex >= 0) {
            layer_time[static_cast<std::size_t>(op.op.layerIndex)] +=
                op.time.total();
        } else if (op.op.scope == LayerScope::Embedding) {
            embedding_time += op.time.total();
        } else if (op.op.scope == LayerScope::Output) {
            output_time += op.time.total();
        }
    }

    const int layers_per_stage = config.numLayers / stages;
    Seconds max_slot = 0.0;
    for (int stage = 0; stage < stages; ++stage) {
        Seconds slot = 0.0;
        for (int l = stage * layers_per_stage;
             l < (stage + 1) * layers_per_stage; ++l)
            slot += layer_time[static_cast<std::size_t>(l)];
        if (stage == 0)
            slot += embedding_time;
        if (stage == stages - 1)
            slot += output_time;
        max_slot = std::max(max_slot, slot);
    }

    PipelineProfile profile;
    profile.stageSeconds = max_slot * micro_batches;
    profile.bubbleFraction =
        static_cast<double>(stages - 1) /
        static_cast<double>(micro_batches + stages - 1);

    // Activation + gradient transfers across each boundary, per
    // micro-batch; only the (S-1) fill/drain hops sit on the critical
    // path (steady-state transfers overlap with compute).
    const std::int64_t boundary_bytes =
        micro.tokens() * config.dModel * config.activationBytes();
    const Seconds hop = comm_.transferTime(boundary_bytes);
    profile.commSeconds =
        2.0 * hop * static_cast<double>((stages - 1) * micro_batches);
    const Seconds exposed_comm =
        2.0 * hop * static_cast<double>(stages - 1);

    // Optimizer: parameters split across stages; every stage updates
    // its shard concurrently, so the slowest (1/S of the work plus
    // the fixed grad-norm) gates.
    const TimedTrace update = executor.execute(builder.buildUpdate());
    profile.updateSeconds =
        stages > 1 ? update.totalSeconds() / stages
                   : update.totalSeconds();

    profile.totalSeconds =
        static_cast<double>(micro_batches + stages - 1) * max_slot +
        exposed_comm + profile.updateSeconds;
    return profile;
}

} // namespace bertprof
