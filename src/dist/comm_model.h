/**
 * @file
 * Communication cost model for multi-device training (Sec. 5.1 of the
 * paper). The paper estimates AllReduce time by dividing gradient
 * bytes by the PCIe 4.0 link bandwidth; a Ring-AllReduce variant
 * (Gibiansky/Baidu, the algorithm the paper cites) is also provided.
 */

#ifndef BERTPROF_DIST_COMM_MODEL_H
#define BERTPROF_DIST_COMM_MODEL_H

#include <cstdint>

#include "perf/device.h"

namespace bertprof {

/** How AllReduce time is estimated. */
enum class AllReduceAlgo {
    /** bytes / link bandwidth (the paper's Sec. 5.1 model). */
    Simple,
    /** Ring: 2*(D-1)/D * bytes / bw + per-step latency. */
    Ring,
};

/** Multi-device link/collective cost model. */
class CommModel
{
  public:
    CommModel(double link_bandwidth, Seconds link_latency,
              AllReduceAlgo algo = AllReduceAlgo::Simple)
        : linkBandwidth_(link_bandwidth), linkLatency_(link_latency),
          algo_(algo)
    {
    }

    /** Construct from a device spec's link parameters. */
    explicit CommModel(const DeviceSpec &spec,
                       AllReduceAlgo algo = AllReduceAlgo::Simple)
        : CommModel(spec.linkBandwidth, spec.linkLatency, algo)
    {
    }

    /** Time to all-reduce `bytes` across `devices` devices. */
    Seconds allReduceTime(std::int64_t bytes, int devices) const;

    /** Time for a point-to-point transfer of `bytes`. */
    Seconds transferTime(std::int64_t bytes) const;

    AllReduceAlgo algo() const { return algo_; }

  private:
    double linkBandwidth_;
    Seconds linkLatency_;
    AllReduceAlgo algo_;
};

} // namespace bertprof

#endif // BERTPROF_DIST_COMM_MODEL_H
