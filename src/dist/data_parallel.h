/**
 * @file
 * Data-parallel training model (Sec. 5.1/5.2 of the paper): each
 * device holds a model replica and computes the full iteration;
 * per-layer gradient AllReduces can be overlapped with the backprop
 * of earlier layers. The exposed (non-overlapped) communication is
 * what appears in the per-GPU breakdown of Fig. 11 (D1 vs D2).
 */

#ifndef BERTPROF_DIST_DATA_PARALLEL_H
#define BERTPROF_DIST_DATA_PARALLEL_H

#include "dist/comm_model.h"
#include "perf/executor.h"
#include "trace/bert_config.h"
#include "trace/trace_options.h"

namespace bertprof {

/** Result of evaluating a distributed configuration. */
struct DistributedProfile {
    /** Per-device timed trace, Network ops included. */
    TimedTrace timed;
    /** Device-side compute time (no communication). */
    Seconds computeSeconds = 0.0;
    /** Communication time not hidden behind compute. */
    Seconds exposedCommSeconds = 0.0;
    /** Total communication issued (hidden + exposed). */
    Seconds totalCommSeconds = 0.0;

    /** Modeled iteration time on each device. */
    Seconds totalSeconds() const
    {
        return computeSeconds + exposedCommSeconds;
    }
};

/** Models data-parallel training of a BERT configuration. */
class DataParallelModel
{
  public:
    DataParallelModel(const DeviceSpec &spec, CommModel comm)
        : spec_(spec), comm_(comm)
    {
    }

    /**
     * Evaluate per-device behaviour with `devices` replicas.
     *
     * @param config Per-device model/input configuration (B is the
     *        per-device mini-batch).
     * @param devices Replica count D.
     * @param overlap Whether per-layer gradient communication is
     *        overlapped with backprop of the next layers (D2) or
     *        serialized after the whole backprop (D1).
     */
    DistributedProfile evaluate(const BertConfig &config, int devices,
                                bool overlap,
                                TraceOptions options = {}) const;

  private:
    DeviceSpec spec_;
    CommModel comm_;
};

} // namespace bertprof

#endif // BERTPROF_DIST_DATA_PARALLEL_H
