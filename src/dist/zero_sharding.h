/**
 * @file
 * ZeRO-style optimizer-sharded data parallelism — the optimization the
 * paper's Sec. 5.2 discusses (Rajbhandari et al. [69]): each of the D
 * replicas keeps only 1/D of the optimizer state, reduce-scatters
 * gradients instead of all-reducing them, updates its parameter shard,
 * and all-gathers the updated parameters. The paper's caveat is
 * modeled too: LAMB's global gradient L2 norm still needs a full view
 * of all gradients before any shard can update, adding a small
 * serialized collective.
 */

#ifndef BERTPROF_DIST_ZERO_SHARDING_H
#define BERTPROF_DIST_ZERO_SHARDING_H

#include "dist/comm_model.h"
#include "dist/data_parallel.h"
#include "trace/bert_config.h"
#include "trace/trace_options.h"

namespace bertprof {

/** Models ZeRO-style sharded-optimizer data parallelism. */
class ZeroShardingModel
{
  public:
    ZeroShardingModel(const DeviceSpec &spec, CommModel comm)
        : spec_(spec), comm_(comm)
    {
    }

    /**
     * Evaluate per-device behaviour with `devices` replicas. The
     * gradient reduce-scatter overlaps with backprop (like DP-overlap)
     * but the post-update parameter all-gather is serialized: nothing
     * can hide behind it.
     */
    DistributedProfile evaluate(const BertConfig &config, int devices,
                                TraceOptions options = {}) const;

    /** Time of a ring reduce-scatter (or all-gather) of `bytes`. */
    Seconds shardCollectiveTime(std::int64_t bytes, int devices) const;

  private:
    DeviceSpec spec_;
    CommModel comm_;
};

} // namespace bertprof

#endif // BERTPROF_DIST_ZERO_SHARDING_H
