/**
 * @file
 * Megatron-LM-style tensor slicing (Sec. 5.1 of the paper): each
 * transformer layer's weight matrices are split m ways (Q/K/V and
 * FC-1 column-parallel, output projection and FC-2 row-parallel),
 * DR+RC+LN and the embedding/output layers are replicated, the
 * optimizer is split m ways, and four serialized AllReduces of the
 * [B*n, d_model] activations/gradients run per layer per iteration
 * (two forward, two backward). Unlike data parallelism these cannot
 * be overlapped (data dependencies).
 */

#ifndef BERTPROF_DIST_TENSOR_SLICING_H
#define BERTPROF_DIST_TENSOR_SLICING_H

#include "dist/comm_model.h"
#include "dist/data_parallel.h"
#include "perf/executor.h"
#include "trace/bert_config.h"
#include "trace/trace_options.h"

namespace bertprof {

/** Models m-way tensor-sliced training of a BERT configuration. */
class TensorSlicingModel
{
  public:
    TensorSlicingModel(const DeviceSpec &spec, CommModel comm)
        : spec_(spec), comm_(comm)
    {
    }

    /**
     * Evaluate per-device behaviour with the model split `ways` ways.
     * `config.batch` is the global mini-batch (every device sees all
     * activations in tensor slicing).
     */
    DistributedProfile evaluate(const BertConfig &config, int ways,
                                TraceOptions options = {}) const;

    /**
     * The per-device kernel trace after an m-way split, including the
     * serialized AllReduce ops. Exposed for testing.
     */
    static OpTrace buildSlicedTrace(const BertConfig &config, int ways,
                                    TraceOptions options = {});

  private:
    DeviceSpec spec_;
    CommModel comm_;
};

} // namespace bertprof

#endif // BERTPROF_DIST_TENSOR_SLICING_H
