#include "dist/hierarchical_comm.h"

#include <algorithm>

#include "util/logging.h"

namespace bertprof {

HierarchicalCommModel::HierarchicalCommModel(double intra_bandwidth,
                                             double inter_bandwidth,
                                             int node_size,
                                             Seconds latency)
    : intraBandwidth_(intra_bandwidth), interBandwidth_(inter_bandwidth),
      nodeSize_(node_size), latency_(latency)
{
    BP_REQUIRE(intra_bandwidth > 0.0 && inter_bandwidth > 0.0);
    BP_REQUIRE(node_size >= 1);
}

Seconds
HierarchicalCommModel::intraNodeTime(std::int64_t bytes, int devices) const
{
    const int local = std::min(devices, nodeSize_);
    if (local <= 1 || bytes == 0)
        return 0.0;
    const double s = static_cast<double>(local);
    // Reduce-scatter + all-gather = a full ring all-reduce's traffic.
    return 2.0 * (s - 1.0) * latency_ +
           2.0 * ((s - 1.0) / s) * static_cast<double>(bytes) /
               intraBandwidth_;
}

Seconds
HierarchicalCommModel::interNodeTime(std::int64_t bytes, int devices) const
{
    if (devices <= nodeSize_ || bytes == 0)
        return 0.0;
    const int nodes = (devices + nodeSize_ - 1) / nodeSize_;
    const double m = static_cast<double>(nodes);
    const int local = std::min(devices, nodeSize_);
    // Each device carries a 1/local shard across the node ring.
    const double shard =
        static_cast<double>(bytes) / static_cast<double>(local);
    return 2.0 * (m - 1.0) * latency_ +
           2.0 * ((m - 1.0) / m) * shard / interBandwidth_;
}

Seconds
HierarchicalCommModel::allReduceTime(std::int64_t bytes, int devices) const
{
    BP_REQUIRE(devices >= 1);
    if (devices == 1 || bytes == 0)
        return 0.0;
    return intraNodeTime(bytes, devices) + interNodeTime(bytes, devices);
}

} // namespace bertprof
