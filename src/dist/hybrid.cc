#include "dist/hybrid.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace bertprof {

DistributedProfile
HybridModel::evaluate(const BertConfig &config, int ts_ways,
                      int dp_replicas, TraceOptions options) const
{
    BP_REQUIRE(ts_ways >= 1 && dp_replicas >= 1);
    DistributedProfile profile = ts_.evaluate(config, ts_ways, options);
    if (dp_replicas == 1)
        return profile;

    // Per-layer gradient bytes of this device's shard (1/ts_ways of
    // the layer parameters; shared tensors are replicated and must be
    // fully exchanged).
    const std::int64_t grad_elem_bytes = config.activationBytes();
    std::map<int, std::int64_t> layer_bytes;
    std::int64_t shared_bytes = 0;
    for (const auto &param : config.parameterTensors()) {
        const std::int64_t bytes = param.numel * grad_elem_bytes;
        if (param.layerIndex >= 0)
            layer_bytes[param.layerIndex] += bytes / ts_ways;
        else
            shared_bytes += bytes;
    }

    // Backprop compute windows per layer (includes the serialized TS
    // all-reduces, which the DP exchange can also hide behind).
    std::map<int, Seconds> layer_bwd;
    for (const auto &timed : profile.timed.ops) {
        if (timed.op.layerIndex >= 0 &&
            (timed.op.phase == Phase::Bwd ||
             timed.op.phase == Phase::Recompute ||
             timed.op.phase == Phase::Comm)) {
            layer_bwd[timed.op.layerIndex] += timed.time.total();
        }
    }

    Seconds total_comm = 0.0;
    Seconds exposed = 0.0;
    for (const auto &[layer, bytes] : layer_bytes) {
        const Seconds comm = comm_.allReduceTime(bytes, dp_replicas);
        total_comm += comm;
        if (layer == 0) {
            exposed += comm;
        } else {
            auto it = layer_bwd.find(layer - 1);
            const Seconds window =
                it != layer_bwd.end() ? it->second : 0.0;
            exposed += std::max<Seconds>(0.0, comm - window);
        }
    }
    const Seconds shared_comm =
        comm_.allReduceTime(shared_bytes, dp_replicas);
    total_comm += shared_comm;
    exposed += shared_comm;

    profile.totalCommSeconds += total_comm;
    profile.exposedCommSeconds += exposed;

    OpDesc comm_op;
    comm_op.name = "hybrid.dp.allreduce.exposed";
    comm_op.kind = OpKind::Comm;
    comm_op.phase = Phase::Comm;
    comm_op.scope = LayerScope::Network;
    comm_op.sub = SubLayer::AllReduce;
    KernelTime time;
    time.link = exposed;
    profile.timed.ops.push_back({comm_op, time});
    return profile;
}

} // namespace bertprof
