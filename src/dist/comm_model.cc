#include "dist/comm_model.h"

#include "util/logging.h"

namespace bertprof {

Seconds
CommModel::allReduceTime(std::int64_t bytes, int devices) const
{
    BP_REQUIRE(devices >= 1);
    if (devices == 1 || bytes == 0)
        return 0.0;
    const double b = static_cast<double>(bytes);
    switch (algo_) {
      case AllReduceAlgo::Simple:
        return linkLatency_ + b / linkBandwidth_;
      case AllReduceAlgo::Ring: {
        const double d = static_cast<double>(devices);
        const double steps = 2.0 * (d - 1.0);
        return steps * linkLatency_ +
               (2.0 * (d - 1.0) / d) * b / linkBandwidth_;
      }
    }
    return 0.0;
}

Seconds
CommModel::transferTime(std::int64_t bytes) const
{
    return linkLatency_ + static_cast<double>(bytes) / linkBandwidth_;
}

} // namespace bertprof
