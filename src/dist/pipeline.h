/**
 * @file
 * Pipeline parallelism (GPipe-style): the other form of model
 * parallelism Sec. 2.5 alludes to. The N transformer layers are split
 * into S stages on S devices; a mini-batch is cut into M micro-batches
 * that flow through the pipeline. Utilization is bounded by the bubble
 * fraction (S-1)/(M+S-1); activations cross stage boundaries once per
 * micro-batch per direction.
 */

#ifndef BERTPROF_DIST_PIPELINE_H
#define BERTPROF_DIST_PIPELINE_H

#include "dist/comm_model.h"
#include "perf/executor.h"
#include "trace/bert_config.h"
#include "trace/trace_options.h"

namespace bertprof {

/** Modeled behaviour of one pipeline-parallel iteration. */
struct PipelineProfile {
    /** Per-stage compute time for the whole mini-batch (max stage). */
    Seconds stageSeconds = 0.0;
    /** Pipeline bubble fraction: (S-1)/(M+S-1). */
    double bubbleFraction = 0.0;
    /** Activation transfer time across stage boundaries (total). */
    Seconds commSeconds = 0.0;
    /** Optimizer time on the slowest stage (parameters split /S). */
    Seconds updateSeconds = 0.0;
    /** Modeled iteration time. */
    Seconds totalSeconds = 0.0;
};

/** Models S-stage pipeline-parallel training. */
class PipelineModel
{
  public:
    PipelineModel(const DeviceSpec &spec, CommModel comm)
        : spec_(spec), comm_(comm)
    {
    }

    /**
     * Evaluate `stages`-deep pipelining of the configuration with
     * `micro_batches` micro-batches per mini-batch (config.batch is
     * the global mini-batch; each micro-batch is batch/micro_batches,
     * which must divide evenly, as must numLayers/stages).
     */
    PipelineProfile evaluate(const BertConfig &config, int stages,
                             int micro_batches,
                             TraceOptions options = {}) const;

  private:
    DeviceSpec spec_;
    CommModel comm_;
};

} // namespace bertprof

#endif // BERTPROF_DIST_PIPELINE_H
