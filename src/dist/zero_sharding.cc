#include "dist/zero_sharding.h"

#include <algorithm>

#include "perf/executor.h"
#include "trace/bert_trace_builder.h"
#include "util/logging.h"

namespace bertprof {

Seconds
ZeroShardingModel::shardCollectiveTime(std::int64_t bytes,
                                       int devices) const
{
    if (devices <= 1 || bytes == 0)
        return 0.0;
    // Ring reduce-scatter / all-gather each move (D-1)/D of the data
    // (half of a ring all-reduce).
    const double d = static_cast<double>(devices);
    return spec_.linkLatency * (d - 1.0) +
           ((d - 1.0) / d) * static_cast<double>(bytes) /
               spec_.linkBandwidth;
}

DistributedProfile
ZeroShardingModel::evaluate(const BertConfig &config, int devices,
                            TraceOptions options) const
{
    BP_REQUIRE(devices >= 1);
    BertTraceBuilder builder(config, options);
    TraceExecutor executor(spec_);

    // Per-device compute: full FWD+BWD, optimizer work divided D ways.
    OpTrace trace = builder.buildForward();
    trace.append(builder.buildBackward());
    OpTrace update = builder.buildUpdate();
    for (OpDesc op : update.ops) {
        if (devices > 1 && op.sub != SubLayer::GradNorm) {
            op.numel /= devices;
            op.stats.flops /= devices;
            op.stats.bytesRead /= devices;
            op.stats.bytesWritten /= devices;
        }
        trace.add(std::move(op));
    }

    DistributedProfile profile;
    profile.timed = executor.execute(trace);
    profile.computeSeconds = profile.timed.totalSeconds();
    if (devices <= 1)
        return profile;

    const std::int64_t grad_bytes =
        config.parameterCount() * config.activationBytes();

    // Gradient reduce-scatter: overlappable with backprop like DP;
    // conservatively expose only the final layer's share plus the
    // LAMB grad-norm all-reduce of per-shard partial norms (tiny but
    // serialized — the paper's caveat that at least one device must
    // see every gradient's contribution).
    const Seconds reduce_scatter =
        shardCollectiveTime(grad_bytes, devices);
    const std::int64_t per_layer_bytes =
        grad_bytes / std::max(1, config.numLayers);
    const Seconds exposed_rs =
        shardCollectiveTime(per_layer_bytes, devices);
    const Seconds norm_allreduce =
        comm_.allReduceTime(static_cast<std::int64_t>(devices) * 8,
                            devices);

    // Parameter all-gather after the (sharded) update: fully exposed.
    const Seconds all_gather = shardCollectiveTime(grad_bytes, devices);

    profile.totalCommSeconds = reduce_scatter + norm_allreduce +
                               all_gather;
    profile.exposedCommSeconds = exposed_rs + norm_allreduce + all_gather;

    OpDesc comm_op;
    comm_op.name = "zero.collectives.exposed";
    comm_op.kind = OpKind::Comm;
    comm_op.phase = Phase::Comm;
    comm_op.scope = LayerScope::Network;
    comm_op.sub = SubLayer::AllReduce;
    KernelTime time;
    time.link = profile.exposedCommSeconds;
    profile.timed.ops.push_back({comm_op, time});
    return profile;
}

} // namespace bertprof
