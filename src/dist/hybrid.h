/**
 * @file
 * Hybrid parallelism (Sec. 2.5: "models also use a hybrid approach,
 * where the model is split between M devices in a cluster, and
 * replicated across D such clusters"): tensor slicing inside a group,
 * data parallelism across groups. The per-device profile is the
 * tensor-sliced iteration plus a data-parallel exchange of the
 * sliced gradients (1/M of the model per device).
 */

#ifndef BERTPROF_DIST_HYBRID_H
#define BERTPROF_DIST_HYBRID_H

#include "dist/comm_model.h"
#include "dist/data_parallel.h"
#include "dist/tensor_slicing.h"

namespace bertprof {

/** Models M-way tensor slicing x D-way data parallelism. */
class HybridModel
{
  public:
    HybridModel(const DeviceSpec &spec, CommModel comm)
        : spec_(spec), comm_(comm), ts_(spec, comm)
    {
    }

    /**
     * Evaluate `ts_ways` x `dp_replicas` training. `config.batch` is
     * the per-group mini-batch (each group of ts_ways devices shares
     * it; the global batch is config.batch * dp_replicas). The DP
     * gradient all-reduce covers each device's 1/ts_ways parameter
     * shard and runs across the dp_replicas peer devices holding the
     * same shard; like plain DP it can overlap with backprop, so
     * only the tail is exposed.
     */
    DistributedProfile evaluate(const BertConfig &config, int ts_ways,
                                int dp_replicas,
                                TraceOptions options = {}) const;

  private:
    DeviceSpec spec_;
    CommModel comm_;
    TensorSlicingModel ts_;
};

} // namespace bertprof

#endif // BERTPROF_DIST_HYBRID_H
