/**
 * @file
 * Two-level (non-homogeneous) network model: fast links within a node
 * (e.g. xGMI/NVLink-class) and slower links across nodes (PCIe/NIC
 * class). Sec. 5.2 of the paper argues its distributed-training
 * takeaways survive non-homogeneous networks — the absolute cost is
 * bottlenecked by the slowest hop but the trends stand. This model
 * lets the benchmarks demonstrate that claim quantitatively.
 */

#ifndef BERTPROF_DIST_HIERARCHICAL_COMM_H
#define BERTPROF_DIST_HIERARCHICAL_COMM_H

#include <cstdint>

#include "util/units.h"

namespace bertprof {

/** Hierarchical ring AllReduce over intra-node + inter-node links. */
class HierarchicalCommModel
{
  public:
    /**
     * @param intra_bandwidth Per-link bandwidth within a node.
     * @param inter_bandwidth Per-node bandwidth across nodes.
     * @param node_size Devices per node.
     * @param latency Per-hop message latency.
     */
    HierarchicalCommModel(double intra_bandwidth, double inter_bandwidth,
                          int node_size, Seconds latency = 5e-6);

    /**
     * AllReduce of `bytes` across `devices` devices: ring
     * reduce-scatter within each node, ring all-reduce of the
     * node-local shards across nodes, then intra-node all-gather.
     */
    Seconds allReduceTime(std::int64_t bytes, int devices) const;

    /** Time of the intra-node portion alone. */
    Seconds intraNodeTime(std::int64_t bytes, int devices) const;

    /** Time of the inter-node portion alone. */
    Seconds interNodeTime(std::int64_t bytes, int devices) const;

    int nodeSize() const { return nodeSize_; }

  private:
    double intraBandwidth_;
    double interBandwidth_;
    int nodeSize_;
    Seconds latency_;
};

} // namespace bertprof

#endif // BERTPROF_DIST_HIERARCHICAL_COMM_H
