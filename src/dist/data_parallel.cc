#include "dist/data_parallel.h"

#include <algorithm>
#include <map>

#include "trace/bert_trace_builder.h"
#include "util/logging.h"

namespace bertprof {

DistributedProfile
DataParallelModel::evaluate(const BertConfig &config, int devices,
                            bool overlap, TraceOptions options) const
{
    BP_REQUIRE(devices >= 1);
    BertTraceBuilder builder(config, options);
    TraceExecutor executor(spec_);

    DistributedProfile profile;
    profile.timed = executor.execute(builder.buildIteration());
    profile.computeSeconds = profile.timed.totalSeconds();

    // Gradient bytes per transformer layer and for the shared
    // (embedding/output) tensors. MP training communicates
    // reduced-precision gradients.
    const std::int64_t grad_elem_bytes = config.activationBytes();
    std::map<int, std::int64_t> layer_bytes;
    std::int64_t shared_bytes = 0;
    for (const auto &param : config.parameterTensors()) {
        const std::int64_t bytes = param.numel * grad_elem_bytes;
        if (param.layerIndex >= 0)
            layer_bytes[param.layerIndex] += bytes;
        else
            shared_bytes += bytes;
    }

    // Per-layer backward compute available for overlap.
    std::map<int, Seconds> layer_bwd;
    for (const auto &timed : profile.timed.ops) {
        if (timed.op.layerIndex >= 0 &&
            (timed.op.phase == Phase::Bwd ||
             timed.op.phase == Phase::Recompute)) {
            layer_bwd[timed.op.layerIndex] += timed.time.total();
        }
    }

    if (!overlap) {
        // Gradients are communicated after the whole backprop as one
        // fused collective over the full model.
        std::int64_t all_bytes = shared_bytes;
        for (const auto &[layer, bytes] : layer_bytes)
            all_bytes += bytes;
        const Seconds comm = comm_.allReduceTime(all_bytes, devices);
        profile.totalCommSeconds = comm;
        profile.exposedCommSeconds = devices > 1 ? comm : 0.0;
        if (devices > 1 && comm > 0.0) {
            OpDesc comm_op;
            comm_op.name = "dp.allreduce.serial";
            comm_op.kind = OpKind::Comm;
            comm_op.phase = Phase::Comm;
            comm_op.scope = LayerScope::Network;
            comm_op.sub = SubLayer::AllReduce;
            comm_op.commBytes = all_bytes;
            KernelTime time;
            time.link = comm;
            profile.timed.ops.push_back({comm_op, time});
        }
        return profile;
    }

    Seconds total_comm = 0.0;
    Seconds exposed = 0.0;
    for (const auto &[layer, bytes] : layer_bytes) {
        const Seconds comm = comm_.allReduceTime(bytes, devices);
        total_comm += comm;
        // Layer l's gradients are communicated while layer l-1 is
        // backpropagated; layer 0 has nothing left to hide behind
        // (the paper's "except for the first layer").
        if (layer == 0) {
            exposed += comm;
        } else {
            auto it = layer_bwd.find(layer - 1);
            const Seconds window =
                it != layer_bwd.end() ? it->second : 0.0;
            exposed += std::max<Seconds>(0.0, comm - window);
        }
    }
    const Seconds shared_comm = comm_.allReduceTime(shared_bytes, devices);
    total_comm += shared_comm;
    // Embedding gradients materialize at the very end of backprop, so
    // their communication is always exposed.
    exposed += shared_comm;

    profile.totalCommSeconds = total_comm;
    profile.exposedCommSeconds = devices > 1 ? exposed : 0.0;

    if (devices > 1 && profile.exposedCommSeconds > 0.0) {
        OpDesc comm_op;
        comm_op.name = "dp.allreduce.exposed";
        comm_op.kind = OpKind::Comm;
        comm_op.phase = Phase::Comm;
        comm_op.scope = LayerScope::Network;
        comm_op.sub = SubLayer::AllReduce;
        KernelTime time;
        time.link = profile.exposedCommSeconds;
        profile.timed.ops.push_back({comm_op, time});
    }
    return profile;
}

} // namespace bertprof
