#include "nmc/dram.h"

namespace bertprof {

DramSpec
hbm2BankNmc()
{
    return DramSpec{};
}

DramSpec
hbm2SharedAluNmc()
{
    DramSpec spec;
    spec.name = "hbm2-nmc-shared4";
    // One ALU group serves four banks: same streaming bandwidth per
    // active bank but a quarter of the parallelism.
    spec.perBankBandwidth /= 4.0;
    spec.perBankFlops /= 4.0;
    return spec;
}

} // namespace bertprof
