/**
 * @file
 * DramSpec: the memory-device parameters behind the near-memory
 * compute model of Sec. 6.2.1. The paper considers a balanced design
 * with ALUs at each DRAM bank (as in recent vendor proposals
 * [46,53,54]): aggregate internal bank bandwidth is several times the
 * external interface bandwidth, which is where the speedup for
 * streaming element-wise work comes from.
 */

#ifndef BERTPROF_NMC_DRAM_H
#define BERTPROF_NMC_DRAM_H

#include <string>

#include "util/units.h"

namespace bertprof {

/** HBM2-like stacked-DRAM parameters with per-bank ALUs. */
struct DramSpec {
    std::string name = "hbm2-nmc";

    /** Pseudo-channels across the stacks (MI100 HBM2: 32). */
    int channels = 32;

    /** Banks per channel. */
    int banksPerChannel = 16;

    /**
     * Sustained per-bank internal bandwidth available to the in-bank
     * ALU (row-buffer streaming, tCCD limited).
     */
    double perBankBandwidth = 9.6e9;

    /**
     * FP32 throughput of one in-bank ALU group — provisioned so
     * streaming element-wise chains stay bandwidth-bound rather than
     * ALU-bound (multiple ops per fetched element per cycle).
     */
    double perBankFlops = 19.2e9;

    /**
     * Per-kernel command broadcast / setup overhead from the host.
     * NMC ops are broadcast commands, far cheaper than GPU kernel
     * launches.
     */
    Seconds commandOverhead = 0.2e-6;

    /** External interface bandwidth (for reference / comparisons). */
    double externalBandwidth = 1.23e12;

    /** Total banks. */
    int totalBanks() const { return channels * banksPerChannel; }

    /** Aggregate internal bandwidth across all banks. */
    double
    internalBandwidth() const
    {
        return static_cast<double>(totalBanks()) * perBankBandwidth;
    }

    /** Aggregate ALU throughput across all banks. */
    double
    aggregateFlops() const
    {
        return static_cast<double>(totalBanks()) * perBankFlops;
    }
};

/** Balanced bank-level design calibrated to MI100's HBM2. */
DramSpec hbm2BankNmc();

/** A cheaper design sharing one ALU among four banks. */
DramSpec hbm2SharedAluNmc();

} // namespace bertprof

#endif // BERTPROF_NMC_DRAM_H
