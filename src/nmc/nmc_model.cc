#include "nmc/nmc_model.h"

#include <algorithm>

namespace bertprof {

bool
NmcModel::offloadable(const OpDesc &op)
{
    return op.kind == OpKind::Elementwise || op.kind == OpKind::Reduction;
}

Seconds
NmcModel::timeFor(const OpDesc &op) const
{
    const double bytes = static_cast<double>(op.stats.bytesTotal());
    const double flops = static_cast<double>(op.stats.flops);
    const Seconds stream = bytes / dram_.internalBandwidth();
    const Seconds compute = flops / dram_.aggregateFlops();
    return std::max(stream, compute) + dram_.commandOverhead;
}

NmcOffloadResult
NmcOffloadEvaluator::evaluate(const TimedTrace &iteration) const
{
    NmcOffloadResult result;
    result.iterationGpuSeconds = iteration.totalSeconds();
    result.iterationNmcSeconds = 0.0;
    for (const auto &timed : iteration.ops) {
        const bool is_update = timed.op.phase == Phase::Update;
        if (is_update && NmcModel::offloadable(timed.op)) {
            const Seconds nmc_time = nmc_.timeFor(timed.op);
            result.nmcSeconds += nmc_time;
            result.gpuModeledSeconds += timed.time.total();
            // Optimistic GPU bound: only the minimal reads/writes at
            // the full external interface bandwidth, no overheads.
            result.gpuOptimisticSeconds +=
                static_cast<double>(timed.op.stats.bytesTotal()) /
                device_.memBandwidth;
            result.iterationNmcSeconds += nmc_time;
        } else {
            if (is_update)
                result.gpuModeledSeconds += timed.time.total();
            result.iterationNmcSeconds += timed.time.total();
        }
    }
    return result;
}

} // namespace bertprof
