/**
 * @file
 * Near-memory compute model (Sec. 6.2.1): element-wise kernels
 * execute on in-bank ALUs at aggregate internal bank bandwidth,
 * avoiding the external memory interface entirely. GEMMs stay on the
 * host accelerator. The evaluator compares LAMB on NMC against an
 * optimistic GPU bound (pure reads/writes at full external peak — the
 * paper's baseline) and reports the end-to-end training impact.
 */

#ifndef BERTPROF_NMC_NMC_MODEL_H
#define BERTPROF_NMC_NMC_MODEL_H

#include "nmc/dram.h"
#include "perf/executor.h"
#include "trace/op.h"

namespace bertprof {

/** Times element-wise/reduction ops on the in-memory ALUs. */
class NmcModel
{
  public:
    explicit NmcModel(const DramSpec &dram) : dram_(dram) {}

    /** True if the op can be offloaded (streaming EW/reduction). */
    static bool offloadable(const OpDesc &op);

    /** Modeled NMC execution time of one offloadable op. */
    Seconds timeFor(const OpDesc &op) const;

    const DramSpec &dram() const { return dram_; }

  private:
    DramSpec dram_;
};

/** Outcome of offloading the optimizer phase to NMC. */
struct NmcOffloadResult {
    /** Optimizer time under the optimistic GPU bound (paper's ref). */
    Seconds gpuOptimisticSeconds = 0.0;
    /** Optimizer time as actually modeled on the GPU. */
    Seconds gpuModeledSeconds = 0.0;
    /** Optimizer time on the NMC units. */
    Seconds nmcSeconds = 0.0;
    /** Iteration time with the optimizer on the GPU (modeled). */
    Seconds iterationGpuSeconds = 0.0;
    /** Iteration time with the optimizer offloaded to NMC. */
    Seconds iterationNmcSeconds = 0.0;

    /** LAMB speedup vs. the optimistic GPU bound (paper: ~3.8x). */
    double
    optimizerSpeedup() const
    {
        return nmcSeconds > 0.0 ? gpuOptimisticSeconds / nmcSeconds : 0.0;
    }

    /** End-to-end improvement (paper: 5-22%). */
    double
    endToEndImprovement() const
    {
        return iterationGpuSeconds > 0.0
                   ? 1.0 - iterationNmcSeconds / iterationGpuSeconds
                   : 0.0;
    }
};

/** Evaluates optimizer offload over a timed iteration trace. */
class NmcOffloadEvaluator
{
  public:
    NmcOffloadEvaluator(const DramSpec &dram, const DeviceSpec &device)
        : nmc_(dram), device_(device)
    {
    }

    /**
     * Offload every Update-phase kernel of the timed iteration to
     * NMC and compare. The optimistic GPU bound prices each update
     * kernel as pure data movement at full external bandwidth.
     */
    NmcOffloadResult evaluate(const TimedTrace &iteration) const;

  private:
    NmcModel nmc_;
    DeviceSpec device_;
};

} // namespace bertprof

#endif // BERTPROF_NMC_NMC_MODEL_H
