/**
 * @file
 * Shared parsing for BERTPROF_* environment knobs. Every knob in the
 * runtime resolves the same way: a well-formed value in range wins,
 * anything else warns once per process and falls back — so a typo'd
 * knob degrades to the default instead of silently changing behavior.
 */

#ifndef BERTPROF_RUNTIME_ENV_H
#define BERTPROF_RUNTIME_ENV_H

#include <atomic>
#include <cstdint>
#include <string>

namespace bertprof {

/**
 * Read an integer environment knob. Returns `fallback` when `name` is
 * unset or empty; when set but malformed or outside [lo, hi], logs a
 * warning through `warned` (at most once per flag — callers keep one
 * static flag per knob) and returns `fallback`. The environment is
 * re-read on every call, matching the existing knobs' semantics.
 */
std::int64_t envInt(const char *name, std::int64_t lo, std::int64_t hi,
                    std::int64_t fallback, std::atomic<bool> &warned);

/**
 * Read a string environment knob. Returns `fallback` when `name` is
 * unset or empty; any non-empty value is taken verbatim.
 */
std::string envString(const char *name, const std::string &fallback);

} // namespace bertprof

#endif // BERTPROF_RUNTIME_ENV_H
