/**
 * @file
 * Lazily-initialized work-stealing thread pool. One process-wide pool
 * executes the chunk sets produced by parallelFor (see
 * runtime/parallel_for.h): each run() splits its task indices into
 * contiguous per-lane ranges; a lane pops tasks from the front of its
 * own range and, when empty, steals from the back of a victim's range.
 * The calling thread participates as lane 0, so a pool of N lanes
 * spawns only N-1 workers and run() never blocks a free core.
 *
 * Guarantees:
 *  - Tasks execute exactly once; run() returns only after every task
 *    has finished and every worker has detached from the region.
 *  - The first exception thrown by a task is captured and rethrown
 *    from run(); remaining tasks are drained without executing.
 *  - run() called from inside a pool worker (nested parallelism)
 *    executes serially inline — no deadlock, no oversubscription.
 *  - With 1 configured lane no threads are spawned and run() is a
 *    plain serial loop.
 */

#ifndef BERTPROF_RUNTIME_THREAD_POOL_H
#define BERTPROF_RUNTIME_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bertprof {

class ThreadPool
{
  public:
    /** The process-wide pool, created on first use with the
     * configured thread count (runtime/config.h). */
    static ThreadPool &instance();

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution lanes, including the calling thread. */
    int numThreads() const { return num_threads_; }

    /**
     * Execute fn(i) for every i in [0, count), distributed over the
     * pool, and block until all invocations complete. Serial when the
     * pool has one lane or when called from a pool worker.
     */
    void run(std::int64_t count, const std::function<void(std::int64_t)> &fn);

    /** True inside a pool execution context: on threads owned by the
     * pool, and on the caller while it executes its share of a
     * region. Drives the nested-parallelism serial fallback. */
    static bool inWorker();

    /** Join all workers and respawn with a new lane count (>= 1). */
    void resize(int num_threads);

  private:
    explicit ThreadPool(int num_threads);

    struct Region;

    void spawnWorkers();
    void joinWorkers();
    void workerLoop();
    /** Run region tasks until none are claimable from any lane. */
    void drain(Region &region, int lane);

    int num_threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_cv_; ///< workers: a region is ready
    std::condition_variable done_cv_; ///< caller: region fully drained
    Region *region_ = nullptr;        ///< active region, guarded by mutex_
    std::uint64_t epoch_ = 0;         ///< bumped once per region
    bool shutdown_ = false;

    std::mutex run_mutex_; ///< serializes concurrent run() callers
};

} // namespace bertprof

#endif // BERTPROF_RUNTIME_THREAD_POOL_H
