/**
 * @file
 * Runtime configuration for the CPU substrate's execution engine.
 *
 * Thread count resolution order: programmatic override
 * (setNumThreads) > BERTPROF_NUM_THREADS environment variable >
 * hardware concurrency. A count of 1 selects the pure serial path,
 * which executes exactly the same instruction sequence as the
 * pre-runtime substrate.
 *
 * GEMM implementation resolution order mirrors it: programmatic
 * override (setGemmImpl) > BERTPROF_GEMM_IMPL environment variable
 * ("packed" or "reference") > the packed default. "reference"
 * selects the original blocked triple-loop kernel bit-for-bit.
 *
 * Fusion resolution order is the same shape: programmatic override
 * (setFusionMode) > BERTPROF_FUSION environment variable ("on" or
 * "off") > Off. Off keeps the original per-op kernel schedule as the
 * oracle; On enables the fused kernels and the graph executor
 * (src/graph) where one is installed.
 */

#ifndef BERTPROF_RUNTIME_CONFIG_H
#define BERTPROF_RUNTIME_CONFIG_H

namespace bertprof {

/**
 * Number of execution lanes the runtime should use (always >= 1).
 * Resolved once per change: an explicit setNumThreads() override wins,
 * then BERTPROF_NUM_THREADS, then std::thread::hardware_concurrency().
 */
int configuredNumThreads();

/**
 * Override the thread count programmatically (benches and tests
 * sweep this). Resizes the live pool if one exists; n < 1 clears the
 * override and re-resolves from the environment.
 */
void setNumThreads(int n);

/** Which GEMM engine gemm()/batchedGemm() dispatch to. */
enum class GemmImpl {
    /** BLIS-style packed, register-blocked microkernel (default). */
    Packed,
    /** Original blocked triple loop — the cross-check oracle; exactly
     * the pre-microkernel code path. */
    Reference,
};

/** Short name: "packed" / "reference". */
const char *gemmImplName(GemmImpl impl);

/**
 * The GEMM engine in effect: an explicit setGemmImpl() override wins,
 * then BERTPROF_GEMM_IMPL ("packed" | "reference"), then Packed.
 */
GemmImpl configuredGemmImpl();

/** Override the GEMM engine programmatically (tests and benches
 * sweep both). Cleared by clearGemmImplOverride(). */
void setGemmImpl(GemmImpl impl);

/** Drop the programmatic override and re-resolve from the
 * environment. */
void clearGemmImplOverride();

/** Whether fused kernels / graph scheduling are in effect. */
enum class FusionMode {
    /** Per-op kernel schedule, exactly the pre-fusion code path — the
     * parity oracle. The default. */
    Off,
    /** Fused kernels (bias+GeLU, residual+LN, one-pass attention,
     * packed QKV) and, where installed, the graph executor. */
    On,
};

/** Short name: "off" / "on". */
const char *fusionModeName(FusionMode mode);

/**
 * The fusion mode in effect: an explicit setFusionMode() override
 * wins, then BERTPROF_FUSION ("on" | "off"), then Off.
 */
FusionMode configuredFusionMode();

/** True when configuredFusionMode() == FusionMode::On. */
bool fusionEnabled();

/** Override the fusion mode programmatically (tests and benches
 * sweep both). Cleared by clearFusionModeOverride(). */
void setFusionMode(FusionMode mode);

/** Drop the programmatic override and re-resolve from the
 * environment. */
void clearFusionModeOverride();

} // namespace bertprof

#endif // BERTPROF_RUNTIME_CONFIG_H
