/**
 * @file
 * Runtime configuration for the parallel execution engine. Thread
 * count resolution order: programmatic override (setNumThreads) >
 * BERTPROF_NUM_THREADS environment variable > hardware concurrency.
 * A count of 1 selects the pure serial path, which executes exactly
 * the same instruction sequence as the pre-runtime substrate.
 */

#ifndef BERTPROF_RUNTIME_CONFIG_H
#define BERTPROF_RUNTIME_CONFIG_H

namespace bertprof {

/**
 * Number of execution lanes the runtime should use (always >= 1).
 * Resolved once per change: an explicit setNumThreads() override wins,
 * then BERTPROF_NUM_THREADS, then std::thread::hardware_concurrency().
 */
int configuredNumThreads();

/**
 * Override the thread count programmatically (benches and tests
 * sweep this). Resizes the live pool if one exists; n < 1 clears the
 * override and re-resolves from the environment.
 */
void setNumThreads(int n);

} // namespace bertprof

#endif // BERTPROF_RUNTIME_CONFIG_H
