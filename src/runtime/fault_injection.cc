#include "runtime/fault_injection.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace bertprof {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::None:
        return "none";
    case FaultKind::TornWrite:
        return "torn";
    case FaultKind::IoError:
        return "ioerr";
    case FaultKind::NaN:
        return "nan";
    case FaultKind::Inf:
        return "inf";
    case FaultKind::Kill:
        return "kill";
    case FaultKind::Reject:
        return "reject";
    case FaultKind::Slow:
        return "slow";
    }
    return "none";
}

namespace {

FaultKind
kindFromName(const std::string &name)
{
    if (name == "torn")
        return FaultKind::TornWrite;
    if (name == "ioerr")
        return FaultKind::IoError;
    if (name == "nan")
        return FaultKind::NaN;
    if (name == "inf")
        return FaultKind::Inf;
    if (name == "kill")
        return FaultKind::Kill;
    if (name == "reject")
        return FaultKind::Reject;
    if (name == "slow")
        return FaultKind::Slow;
    return FaultKind::None;
}

std::string
trimmed(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    std::size_t e = s.find_last_not_of(" \t");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

/** Strict non-negative integer parse; *ok cleared on any junk. */
std::int64_t
parseCount(const std::string &s, bool *ok)
{
    if (s.empty()) {
        *ok = false;
        return 0;
    }
    std::int64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9') {
            *ok = false;
            return 0;
        }
        v = v * 10 + (c - '0');
    }
    return v;
}

} // namespace

FaultSpec
FaultInjector::parseClause(const std::string &clause, bool *ok)
{
    *ok = true;
    FaultSpec spec;
    const std::string c = trimmed(clause);
    const std::size_t at = c.find('@');
    const std::size_t colon = c.rfind(':');
    if (at == std::string::npos || colon == std::string::npos ||
        colon < at) {
        *ok = false;
        return spec;
    }
    std::string kind_name = trimmed(c.substr(0, at));
    // "slow" takes an optional stall length: slow=<us>.
    const std::size_t eq = kind_name.find('=');
    if (eq != std::string::npos) {
        const std::string param = trimmed(kind_name.substr(eq + 1));
        kind_name = trimmed(kind_name.substr(0, eq));
        if (kind_name != "slow") {
            *ok = false;
            return spec;
        }
        spec.slowUs = parseCount(param, ok);
        if (spec.slowUs < 1)
            *ok = false;
    }
    spec.kind = kindFromName(kind_name);
    if (spec.kind == FaultKind::None) {
        *ok = false;
        return spec;
    }
    spec.site = trimmed(c.substr(at + 1, colon - at - 1));
    if (spec.site.empty()) {
        *ok = false;
        return spec;
    }
    std::string occ = trimmed(c.substr(colon + 1));
    const std::size_t plus = occ.find('+');
    if (plus != std::string::npos) {
        spec.count = parseCount(trimmed(occ.substr(plus + 1)), ok);
        occ = trimmed(occ.substr(0, plus));
    }
    spec.first = parseCount(occ, ok);
    if (spec.first < 1 || spec.count < 1)
        *ok = false;
    return spec;
}

FaultInjector::FaultInjector()
{
    const char *env = std::getenv("BERTPROF_FAULT");
    if (env != nullptr && env[0] != '\0')
        configure(env);
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::configure(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(mu_);
    specs_.clear();
    hits_.clear();
    injected_ = 0;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(';', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string clause =
            trimmed(spec.substr(start, end - start));
        start = end + 1;
        if (clause.empty())
            continue;
        bool ok = true;
        FaultSpec parsed = parseClause(clause, &ok);
        if (!ok) {
            BP_FATAL() << "BERTPROF_FAULT: malformed clause '" << clause
                       << "' (expected kind@site:first[+count] with "
                          "kind in torn|ioerr|nan|inf|kill|reject|"
                          "slow[=us])";
        }
        specs_.push_back(std::move(parsed));
    }
    enabled_.store(!specs_.empty(), std::memory_order_relaxed);
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    specs_.clear();
    hits_.clear();
    injected_ = 0;
    enabled_.store(false, std::memory_order_relaxed);
}

FaultKind
FaultInjector::check(const std::string &site, std::int64_t *slow_us)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::int64_t occurrence = ++hits_[site];
    for (const FaultSpec &spec : specs_) {
        if (spec.site != site || occurrence < spec.first ||
            occurrence >= spec.first + spec.count) {
            continue;
        }
        if (spec.kind == FaultKind::Kill) {
            // Simulated preemption: no cleanup, no atexit — the same
            // abrupt death a SIGKILLed trainer suffers. 137 mirrors
            // the shell's 128+SIGKILL convention.
            std::fprintf(stderr,
                         "bertprof: fault injection: kill at site '%s' "
                         "(occurrence %lld)\n",
                         site.c_str(),
                         static_cast<long long>(occurrence));
            std::fflush(stderr);
            std::_Exit(137);
        }
        ++injected_;
        if (spec.kind == FaultKind::Slow && slow_us != nullptr)
            *slow_us = spec.slowUs;
        BP_LOG(Warn) << "fault injection: " << faultKindName(spec.kind)
                     << " at site '" << site << "' (occurrence "
                     << occurrence << ")";
        return spec.kind;
    }
    return FaultKind::None;
}

std::int64_t
FaultInjector::hits(const std::string &site) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = hits_.find(site);
    return it == hits_.end() ? 0 : it->second;
}

std::int64_t
FaultInjector::injectedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return injected_;
}

} // namespace bertprof
