/**
 * @file
 * Chunked parallel-loop primitives over the work-stealing thread pool.
 *
 * Determinism policy: chunk boundaries are a pure function of the
 * iteration range and the requested grain — never of the thread
 * count — and every chunk writes a disjoint slice of the output with
 * the same per-element arithmetic as the serial loop. Kernels built
 * on parallelFor/parallelFor2d are therefore bitwise identical for
 * every thread count. parallelReduceOrdered carries reductions the
 * same way: chunk-local partial sums merged in chunk-index order, so
 * any parallel thread count (2, 4, 8, ...) produces identical bits;
 * with 1 thread it degenerates to the plain sequential accumulation,
 * exactly recovering the pre-runtime serial behaviour.
 *
 * Nested use (a body invoking another parallel loop) falls back to
 * serial execution inside the worker — no deadlock, no
 * oversubscription.
 */

#ifndef BERTPROF_RUNTIME_PARALLEL_FOR_H
#define BERTPROF_RUNTIME_PARALLEL_FOR_H

#include <algorithm>
#include <cstdint>
#include <functional>

namespace bertprof {

/** Default grain (elements per chunk) for flat element-wise loops. */
inline constexpr std::int64_t kElementwiseGrain = 8192;

/** Grain for row loops: chunk rows so a chunk spans roughly
 * kElementwiseGrain elements of `cols`-wide rows. */
inline std::int64_t
rowGrain(std::int64_t cols)
{
    return std::max<std::int64_t>(
        1, kElementwiseGrain / std::max<std::int64_t>(1, cols));
}

/**
 * Invoke body(lo, hi) over disjoint sub-ranges covering [begin, end).
 * Chunks are `grain` wide (last one ragged), capped at a fixed chunk
 * count by growing the grain. Serial path (1 thread, single chunk, or
 * nested call) invokes body(begin, end) once — the unmodified serial
 * loop. Exceptions thrown by body propagate to the caller.
 */
void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)> &body);

/**
 * Two-dimensional variant: body(i0_lo, i0_hi, i1_lo, i1_hi) over a
 * deterministic grid of [0, n0) x [0, n1) blocks. Serial path invokes
 * body(0, n0, 0, n1) once.
 */
void parallelFor2d(
    std::int64_t n0, std::int64_t n1, std::int64_t grain0,
    std::int64_t grain1,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t,
                             std::int64_t)> &body);

/**
 * Ordered parallel sum: body(lo, hi) returns the partial sum of its
 * chunk; partials are merged in chunk-index order. Identical bits for
 * any parallel thread count; with 1 thread returns body(begin, end)
 * directly (the sequential accumulation order).
 */
double parallelReduceOrdered(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<double(std::int64_t, std::int64_t)> &body);

} // namespace bertprof

#endif // BERTPROF_RUNTIME_PARALLEL_FOR_H
