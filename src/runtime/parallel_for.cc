#include "runtime/parallel_for.h"

#include <vector>

#include "runtime/thread_pool.h"

namespace bertprof {

namespace {

/** Upper bound on chunks per flat loop: bounds scheduling overhead
 * while staying far above any realistic lane count, and is constant so
 * chunk grids never depend on the thread count. */
constexpr std::int64_t kMaxChunks = 256;

/** Per-dimension chunk cap for 2-D grids (16 x 16 = kMaxChunks). */
constexpr std::int64_t kMaxChunksPerDim = 16;

/** Deterministic effective grain: at least `grain`, grown so the
 * chunk count never exceeds `max_chunks`. Pure in (range, grain). */
std::int64_t
resolveGrain(std::int64_t range, std::int64_t grain, std::int64_t max_chunks)
{
    const std::int64_t g = std::max<std::int64_t>(1, grain);
    if ((range + g - 1) / g > max_chunks)
        return (range + max_chunks - 1) / max_chunks;
    return g;
}

} // namespace

void
parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
            const std::function<void(std::int64_t, std::int64_t)> &body)
{
    const std::int64_t range = end - begin;
    if (range <= 0)
        return;
    const std::int64_t g = resolveGrain(range, grain, kMaxChunks);
    const std::int64_t chunks = (range + g - 1) / g;
    ThreadPool &pool = ThreadPool::instance();
    if (chunks <= 1 || pool.numThreads() <= 1 || ThreadPool::inWorker()) {
        body(begin, end);
        return;
    }
    pool.run(chunks, [&](std::int64_t c) {
        const std::int64_t lo = begin + c * g;
        body(lo, std::min(lo + g, end));
    });
}

void
parallelFor2d(std::int64_t n0, std::int64_t n1, std::int64_t grain0,
              std::int64_t grain1,
              const std::function<void(std::int64_t, std::int64_t,
                                       std::int64_t, std::int64_t)> &body)
{
    if (n0 <= 0 || n1 <= 0)
        return;
    const std::int64_t g0 = resolveGrain(n0, grain0, kMaxChunksPerDim);
    const std::int64_t g1 = resolveGrain(n1, grain1, kMaxChunksPerDim);
    const std::int64_t c0 = (n0 + g0 - 1) / g0;
    const std::int64_t c1 = (n1 + g1 - 1) / g1;
    ThreadPool &pool = ThreadPool::instance();
    if (c0 * c1 <= 1 || pool.numThreads() <= 1 || ThreadPool::inWorker()) {
        body(0, n0, 0, n1);
        return;
    }
    pool.run(c0 * c1, [&](std::int64_t c) {
        const std::int64_t lo0 = (c / c1) * g0;
        const std::int64_t lo1 = (c % c1) * g1;
        body(lo0, std::min(lo0 + g0, n0), lo1, std::min(lo1 + g1, n1));
    });
}

double
parallelReduceOrdered(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<double(std::int64_t, std::int64_t)> &body)
{
    const std::int64_t range = end - begin;
    if (range <= 0)
        return 0.0;
    const std::int64_t g = resolveGrain(range, grain, kMaxChunks);
    const std::int64_t chunks = (range + g - 1) / g;
    ThreadPool &pool = ThreadPool::instance();
    if (chunks <= 1 || pool.numThreads() <= 1 || ThreadPool::inWorker())
        return body(begin, end);
    std::vector<double> partials(static_cast<std::size_t>(chunks), 0.0);
    pool.run(chunks, [&](std::int64_t c) {
        const std::int64_t lo = begin + c * g;
        partials[static_cast<std::size_t>(c)] =
            body(lo, std::min(lo + g, end));
    });
    double total = 0.0;
    for (const double p : partials)
        total += p;
    return total;
}

} // namespace bertprof
