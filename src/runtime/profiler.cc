#include "runtime/profiler.h"

#include <atomic>

#include "util/table.h"

namespace bertprof {

Seconds
Profiler::totalSeconds() const
{
    Seconds total = 0.0;
    for (const auto &rec : records_)
        total += rec.seconds;
    return total;
}

std::map<std::string, ProfileAggregate>
Profiler::byScope() const
{
    std::map<std::string, ProfileAggregate> agg;
    for (const auto &rec : records_)
        agg[layerScopeName(rec.scope)].add(rec);
    return agg;
}

std::map<std::string, ProfileAggregate>
Profiler::bySubLayer() const
{
    std::map<std::string, ProfileAggregate> agg;
    for (const auto &rec : records_)
        agg[subLayerName(rec.sub)].add(rec);
    return agg;
}

std::map<std::string, ProfileAggregate>
Profiler::byPhase() const
{
    std::map<std::string, ProfileAggregate> agg;
    for (const auto &rec : records_)
        agg[phaseName(rec.phase)].add(rec);
    return agg;
}

Table
Profiler::renderBreakdown(const std::map<std::string, ProfileAggregate> &agg,
                          Seconds total_seconds, const std::string &title)
{
    Table table(title);
    table.setHeader({"Group", "Kernels", "Time", "Share", "FLOPs",
                     "Bytes", "FLOP/B"});
    for (const auto &[name, a] : agg) {
        table.addRow({name, std::to_string(a.kernelCount),
                      formatSeconds(a.seconds),
                      formatPercent(total_seconds > 0
                                        ? a.seconds / total_seconds
                                        : 0.0),
                      formatFlops(static_cast<double>(a.stats.flops)),
                      formatBytes(static_cast<double>(a.stats.bytesTotal())),
                      std::to_string(a.stats.opsPerByte())});
    }
    return table;
}

namespace {

std::atomic<KernelEventSink *> g_kernelSink{nullptr};

} // namespace

void
installKernelSink(KernelEventSink *sink)
{
    g_kernelSink.store(sink, std::memory_order_release);
}

KernelEventSink *
kernelSink()
{
    return g_kernelSink.load(std::memory_order_acquire);
}

ScopedKernel::ScopedKernel(Profiler *profiler, std::string name, OpKind kind,
                           Phase phase, LayerScope scope, SubLayer sub)
    : profiler_(profiler),
      active_(profiler != nullptr || kernelSink() != nullptr)
{
    record_.name = std::move(name);
    record_.kind = kind;
    record_.phase = phase;
    record_.scope = scope;
    record_.sub = sub;
    if (active_)
        start_ = std::chrono::steady_clock::now();
}

ScopedKernel::~ScopedKernel()
{
    if (!active_)
        return;
    const auto end = std::chrono::steady_clock::now();
    // Derive seconds from the integer nanosecond duration so a trace
    // that stores ns replays to the bit-identical double.
    const std::int64_t durNs =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                             start_)
            .count();
    record_.seconds = static_cast<double>(durNs) * 1e-9;
    if (KernelEventSink *sink = kernelSink()) {
        const std::int64_t endNs =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end.time_since_epoch())
                .count();
        sink->onKernel(record_, endNs, durNs);
    }
    if (profiler_)
        profiler_->record(std::move(record_));
}

} // namespace bertprof
