#include "runtime/profiler.h"

#include "util/table.h"

namespace bertprof {

Seconds
Profiler::totalSeconds() const
{
    Seconds total = 0.0;
    for (const auto &rec : records_)
        total += rec.seconds;
    return total;
}

std::map<std::string, ProfileAggregate>
Profiler::byScope() const
{
    std::map<std::string, ProfileAggregate> agg;
    for (const auto &rec : records_)
        agg[layerScopeName(rec.scope)].add(rec);
    return agg;
}

std::map<std::string, ProfileAggregate>
Profiler::bySubLayer() const
{
    std::map<std::string, ProfileAggregate> agg;
    for (const auto &rec : records_)
        agg[subLayerName(rec.sub)].add(rec);
    return agg;
}

std::map<std::string, ProfileAggregate>
Profiler::byPhase() const
{
    std::map<std::string, ProfileAggregate> agg;
    for (const auto &rec : records_)
        agg[phaseName(rec.phase)].add(rec);
    return agg;
}

Table
Profiler::renderBreakdown(const std::map<std::string, ProfileAggregate> &agg,
                          Seconds total_seconds, const std::string &title)
{
    Table table(title);
    table.setHeader({"Group", "Kernels", "Time", "Share", "FLOPs",
                     "Bytes", "FLOP/B"});
    for (const auto &[name, a] : agg) {
        table.addRow({name, std::to_string(a.kernelCount),
                      formatSeconds(a.seconds),
                      formatPercent(total_seconds > 0
                                        ? a.seconds / total_seconds
                                        : 0.0),
                      formatFlops(static_cast<double>(a.stats.flops)),
                      formatBytes(static_cast<double>(a.stats.bytesTotal())),
                      std::to_string(a.stats.opsPerByte())});
    }
    return table;
}

ScopedKernel::ScopedKernel(Profiler *profiler, std::string name, OpKind kind,
                           Phase phase, LayerScope scope, SubLayer sub)
    : profiler_(profiler)
{
    record_.name = std::move(name);
    record_.kind = kind;
    record_.phase = phase;
    record_.scope = scope;
    record_.sub = sub;
    if (profiler_)
        start_ = std::chrono::steady_clock::now();
}

ScopedKernel::~ScopedKernel()
{
    if (!profiler_)
        return;
    const auto end = std::chrono::steady_clock::now();
    record_.seconds =
        std::chrono::duration<double>(end - start_).count();
    profiler_->record(std::move(record_));
}

} // namespace bertprof
