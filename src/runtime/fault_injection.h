/**
 * @file
 * Deterministic fault injector for robustness testing.
 *
 * Long BERT pre-training runs survive preemptions, torn writes, and
 * numeric blow-ups only if the recovery paths are exercised; this
 * injector makes every failure class reproducible. Faults are armed
 * via the BERTPROF_FAULT environment variable (or configure() in
 * tests) and fire at named sites threaded through the I/O layer, the
 * training step, and the optimizer step.
 *
 * Spec grammar (semicolon-separated list):
 *
 *   BERTPROF_FAULT="kind@site:first[+count]"
 *
 *   kind   torn | ioerr | nan | inf | kill | reject | slow[=us]
 *   site   a site name from the catalog below
 *   first  1-based occurrence of the site at which the fault fires
 *   count  number of consecutive occurrences faulted (default 1)
 *
 * Examples:
 *   torn@io.write:1          first checkpoint write is torn mid-body
 *   ioerr@io.read:2+3        reads 2..4 fail transiently (retry path)
 *   nan@nn.activations:5     step 5's encoder output is poisoned
 *   kill@optim.step:10       process exits (code 137) entering the
 *                            10th optimizer step, as if preempted
 *   reject@serve.submit:5+50 submissions 5..54 are refused at the
 *                            admission gate (chaos back-pressure)
 *   slow=3000@serve.compute:2+20
 *                            batches 2..21 take an extra 3ms, as if
 *                            the host were contended
 *
 * Site catalog (see DESIGN.md sections 10 and 15 for recovery
 * semantics):
 *   io.write        checkpoint temp-file write   (torn, ioerr)
 *   io.commit       between write and rename     (torn)
 *   io.read         checkpoint read              (ioerr)
 *   nn.activations  encoder output in the
 *                   pre-training step            (nan, inf)
 *   train.grad      parameter gradients after
 *                   backward                     (nan, inf)
 *   optim.step      optimizer step entry         (kill)
 *   serve.submit    server admission gate        (reject, slow)
 *   serve.batch     batch formed, pre-dispatch   (reject, slow)
 *   serve.compute   engine forward for a batch   (slow, nan)
 *
 * Occurrence counting is per site and strictly sequential, so a given
 * spec reproduces the same failure on every run. The disabled path is
 * a single relaxed atomic load, cheap enough for hot code.
 */

#ifndef BERTPROF_RUNTIME_FAULT_INJECTION_H
#define BERTPROF_RUNTIME_FAULT_INJECTION_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace bertprof {

/** Failure class a site can inject. */
enum class FaultKind {
    None,      ///< no fault at this occurrence
    TornWrite, ///< file truncated mid-write (crash mid-flush)
    IoError,   ///< transient I/O failure (retryable)
    NaN,       ///< poison a value with quiet NaN
    Inf,       ///< poison a value with +infinity
    Kill,      ///< hard process exit (code 137), as if preempted
    Reject,    ///< refuse the operation (serving admission gate)
    Slow,      ///< stall the site for `slowUs` microseconds
};

/** Short name: "torn" / "ioerr" / "nan" / "inf" / "kill" / "reject"
 *  / "slow" / "none". */
const char *faultKindName(FaultKind kind);

/** One armed fault: fire `kind` at `site` occurrences
 *  [first, first+count). */
struct FaultSpec {
    FaultKind kind = FaultKind::None;
    std::string site;
    std::int64_t first = 1;
    std::int64_t count = 1;
    /** Stall length for FaultKind::Slow ("slow=<us>", default 1ms). */
    std::int64_t slowUs = 1000;
};

/**
 * Process-wide deterministic fault injector. Sites call check() (or
 * the faultAt() helper) at the instant the fault would occur; the
 * injector consults the armed specs against that site's occurrence
 * counter. FaultKind::Kill is executed here (std::_Exit(137)) so
 * every site shares the same preemption semantics.
 */
class FaultInjector
{
  public:
    /** The singleton, configured from BERTPROF_FAULT on first use. */
    static FaultInjector &instance();

    /**
     * Replace the armed specs with a parsed spec string ("" disarms)
     * and reset all occurrence counters. Malformed specs are a user
     * error (BP_FATAL).
     */
    void configure(const std::string &spec);

    /** Disarm everything and reset counters. */
    void reset();

    /**
     * Record one occurrence of `site` and return the fault to inject
     * there (None almost always). Kill specs do not return: the
     * process exits with code 137. When `slow_us` is non-null and the
     * returned kind is Slow, it receives the stall length — the
     * caller performs the stall (the injector never sleeps under its
     * own lock).
     */
    FaultKind check(const std::string &site,
                    std::int64_t *slow_us = nullptr);

    /** Occurrences of `site` seen so far. */
    std::int64_t hits(const std::string &site) const;

    /** Total faults fired (excluding Kill, which never returns). */
    std::int64_t injectedCount() const;

    /** True when at least one spec is armed (relaxed, hot-path). */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Parse a single "kind@site:first[+count]" clause (testing). */
    static FaultSpec parseClause(const std::string &clause, bool *ok);

  private:
    FaultInjector();

    mutable std::mutex mu_;
    std::atomic<bool> enabled_{false};
    std::vector<FaultSpec> specs_;
    std::map<std::string, std::int64_t> hits_;
    std::int64_t injected_ = 0;
};

/**
 * Hot-path site check: one relaxed load when no fault is armed.
 * Returns the fault to inject at this occurrence of `site`; for
 * FaultKind::Slow the stall length lands in `*slow_us` when given.
 */
inline FaultKind
faultAt(const char *site, std::int64_t *slow_us = nullptr)
{
    FaultInjector &fi = FaultInjector::instance();
    if (!fi.enabled())
        return FaultKind::None;
    return fi.check(site, slow_us);
}

} // namespace bertprof

#endif // BERTPROF_RUNTIME_FAULT_INJECTION_H
