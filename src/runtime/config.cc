#include "runtime/config.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "runtime/env.h"
#include "runtime/thread_pool.h"
#include "util/logging.h"

namespace bertprof {

namespace {

// 0 means "no override"; read/written from multiple threads in tests.
std::atomic<int> g_override{0};

// The environment is re-read on every query; warn about a bad value
// only once per process instead of on each pool resize/lookup.
std::atomic<bool> g_warned_bad_env{false};

// GEMM engine override: -1 none, otherwise a GemmImpl enumerator.
std::atomic<int> g_gemm_override{-1};

std::atomic<bool> g_warned_bad_gemm_env{false};

// Fusion mode override: -1 none, otherwise a FusionMode enumerator.
std::atomic<int> g_fusion_override{-1};

std::atomic<bool> g_warned_bad_fusion_env{false};

int
threadsFromEnvironment()
{
    const std::int64_t v = envInt("BERTPROF_NUM_THREADS", 1, 1024,
                                  /*fallback=*/0, g_warned_bad_env);
    if (v > 0)
        return static_cast<int>(v);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace

int
configuredNumThreads()
{
    const int override_threads = g_override.load(std::memory_order_acquire);
    if (override_threads > 0)
        return override_threads;
    return threadsFromEnvironment();
}

void
setNumThreads(int n)
{
    g_override.store(n >= 1 ? n : 0, std::memory_order_release);
    ThreadPool::instance().resize(configuredNumThreads());
}

const char *
gemmImplName(GemmImpl impl)
{
    return impl == GemmImpl::Packed ? "packed" : "reference";
}

GemmImpl
configuredGemmImpl()
{
    const int override_impl = g_gemm_override.load(std::memory_order_acquire);
    if (override_impl >= 0)
        return static_cast<GemmImpl>(override_impl);
    const char *env = std::getenv("BERTPROF_GEMM_IMPL");
    if (env && *env) {
        if (std::strcmp(env, "packed") == 0)
            return GemmImpl::Packed;
        if (std::strcmp(env, "reference") == 0)
            return GemmImpl::Reference;
        if (!g_warned_bad_gemm_env.exchange(true))
            BP_LOG(Warn) << "ignoring invalid BERTPROF_GEMM_IMPL=\"" << env
                         << "\" (want \"packed\" or \"reference\")";
    }
    return GemmImpl::Packed;
}

void
setGemmImpl(GemmImpl impl)
{
    g_gemm_override.store(static_cast<int>(impl), std::memory_order_release);
}

void
clearGemmImplOverride()
{
    g_gemm_override.store(-1, std::memory_order_release);
}

const char *
fusionModeName(FusionMode mode)
{
    return mode == FusionMode::On ? "on" : "off";
}

FusionMode
configuredFusionMode()
{
    const int override_mode =
        g_fusion_override.load(std::memory_order_acquire);
    if (override_mode >= 0)
        return static_cast<FusionMode>(override_mode);
    const char *env = std::getenv("BERTPROF_FUSION");
    if (env && *env) {
        if (std::strcmp(env, "on") == 0)
            return FusionMode::On;
        if (std::strcmp(env, "off") == 0)
            return FusionMode::Off;
        if (!g_warned_bad_fusion_env.exchange(true))
            BP_LOG(Warn) << "ignoring invalid BERTPROF_FUSION=\"" << env
                         << "\" (want \"on\" or \"off\")";
    }
    return FusionMode::Off;
}

bool
fusionEnabled()
{
    return configuredFusionMode() == FusionMode::On;
}

void
setFusionMode(FusionMode mode)
{
    g_fusion_override.store(static_cast<int>(mode),
                            std::memory_order_release);
}

void
clearFusionModeOverride()
{
    g_fusion_override.store(-1, std::memory_order_release);
}

} // namespace bertprof
