/**
 * @file
 * CPU-side kernel profiler: wall-clock timing plus FLOP/byte stats for
 * every kernel the substrate executes, tagged with the same taxonomy
 * the analytical model uses (trace/taxonomy.h) so real and modeled
 * breakdowns are directly comparable — the role rocProf plays in the
 * paper's methodology.
 */

#ifndef BERTPROF_RUNTIME_PROFILER_H
#define BERTPROF_RUNTIME_PROFILER_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ops/kernel_stats.h"
#include "trace/taxonomy.h"
#include "util/units.h"

namespace bertprof {

class Table;

/** One profiled kernel invocation. */
struct ProfileRecord {
    std::string name;
    OpKind kind = OpKind::Elementwise;
    Phase phase = Phase::Fwd;
    LayerScope scope = LayerScope::Transformer;
    SubLayer sub = SubLayer::Other;
    KernelStats stats;
    Seconds seconds = 0.0;
};

/** Aggregate over a set of profile records. */
struct ProfileAggregate {
    Seconds seconds = 0.0;
    KernelStats stats;
    std::int64_t kernelCount = 0;

    void
    add(const ProfileRecord &rec)
    {
        seconds += rec.seconds;
        stats += rec.stats;
        ++kernelCount;
    }
};

/** Collects kernel records and produces breakdown aggregates. */
class Profiler
{
  public:
    /** Append a finished record. */
    void record(ProfileRecord rec) { records_.push_back(std::move(rec)); }

    /** All records in execution order. */
    const std::vector<ProfileRecord> &records() const { return records_; }

    /** Discard all records. */
    void clear() { records_.clear(); }

    /** Total wall time across all records. */
    Seconds totalSeconds() const;

    /** Aggregate by top-level layer scope (Fig. 3 axis). */
    std::map<std::string, ProfileAggregate> byScope() const;

    /** Aggregate by transformer sub-layer group (Fig. 4 axis). */
    std::map<std::string, ProfileAggregate> bySubLayer() const;

    /** Aggregate by training phase. */
    std::map<std::string, ProfileAggregate> byPhase() const;

    /** Render a proportions table for any aggregation. */
    static Table renderBreakdown(
        const std::map<std::string, ProfileAggregate> &agg,
        Seconds total_seconds, const std::string &title);

  private:
    std::vector<ProfileRecord> records_;
};

/**
 * Sink for finished kernel records, installed process-wide by the
 * telemetry recorder (src/telemetry/recorder.h). The runtime layer
 * cannot depend on telemetry, so the dependency is inverted: the
 * recorder registers itself here and ScopedKernel fires both the
 * in-memory Profiler (when attached) and the sink (when armed).
 * Callbacks arrive from whichever thread ran the kernel; the sink
 * must be internally synchronized.
 */
class KernelEventSink
{
  public:
    virtual ~KernelEventSink() = default;

    /**
     * One finished kernel. `endSteadyNs` is steady_clock at scope
     * exit (ns since the clock's epoch), `durNs` the integer
     * nanosecond duration `rec.seconds` was derived from — so a
     * recorded trace replays to bit-identical seconds.
     */
    virtual void onKernel(const ProfileRecord &rec,
                          std::int64_t endSteadyNs,
                          std::int64_t durNs) = 0;
};

/** Install (or with nullptr, remove) the process-wide kernel sink. */
void installKernelSink(KernelEventSink *sink);

/** The installed sink, or nullptr (relaxed; hot-path check). */
KernelEventSink *kernelSink();

/**
 * RAII timer: construct before running a kernel, call setStats() with
 * the kernel's KernelStats, and the record lands in the profiler (and
 * the installed KernelEventSink) at scope exit. With no profiler and
 * no sink armed it is a no-op, so the substrate can run unprofiled
 * with zero branching at call sites.
 */
class ScopedKernel
{
  public:
    ScopedKernel(Profiler *profiler, std::string name, OpKind kind,
                 Phase phase, LayerScope scope, SubLayer sub);
    ~ScopedKernel();

    ScopedKernel(const ScopedKernel &) = delete;
    ScopedKernel &operator=(const ScopedKernel &) = delete;

    /** Attach the kernel's FLOP/byte stats to the pending record. */
    void setStats(const KernelStats &stats) { record_.stats = stats; }

  private:
    Profiler *profiler_;
    bool active_; ///< latched at construction: someone wants the record
    ProfileRecord record_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace bertprof

#endif // BERTPROF_RUNTIME_PROFILER_H
