#include "runtime/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

#include "runtime/config.h"
#include "util/logging.h"

namespace bertprof {

namespace {

thread_local bool t_in_worker = false;

} // namespace

/**
 * One run() invocation. Task indices [0, count) are pre-split into
 * contiguous per-lane ranges; lanes pop from the front of their own
 * range and steal from the back of a victim's, so stolen work is the
 * work the owner would reach last.
 */
struct ThreadPool::Region {
    struct Lane {
        std::mutex mutex;
        std::int64_t next = 0; ///< front of the remaining range
        std::int64_t end = 0;  ///< one past the back
    };

    const std::function<void(std::int64_t)> *fn = nullptr;
    std::vector<std::unique_ptr<Lane>> lanes;
    std::atomic<std::int64_t> pending{0}; ///< tasks not yet finished
    std::atomic<bool> cancelled{false};   ///< set after the first error
    int visitors = 0; ///< attached workers, guarded by pool mutex_
    std::mutex error_mutex;
    std::exception_ptr error;
};

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool(configuredNumThreads());
    return pool;
}

ThreadPool::ThreadPool(int num_threads)
{
    num_threads_ = num_threads >= 1 ? num_threads : 1;
    spawnWorkers();
}

ThreadPool::~ThreadPool()
{
    joinWorkers();
}

bool
ThreadPool::inWorker()
{
    return t_in_worker;
}

void
ThreadPool::spawnWorkers()
{
    workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
    for (int i = 1; i < num_threads_; ++i)
        workers_.emplace_back(&ThreadPool::workerLoop, this);
}

void
ThreadPool::joinWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = false;
    }
}

void
ThreadPool::resize(int num_threads)
{
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    const int n = num_threads >= 1 ? num_threads : 1;
    if (n == num_threads_)
        return;
    joinWorkers();
    num_threads_ = n;
    spawnWorkers();
}

void
ThreadPool::run(std::int64_t count,
                const std::function<void(std::int64_t)> &fn)
{
    if (count <= 0)
        return;
    // Serial lanes and nested calls (a task spawning a parallel
    // region) execute inline: same thread, task order 0..count-1.
    if (num_threads_ <= 1 || inWorker()) {
        for (std::int64_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> run_lock(run_mutex_);
    Region region;
    region.fn = &fn;
    const std::int64_t lanes = num_threads_;
    region.lanes.reserve(static_cast<std::size_t>(lanes));
    for (std::int64_t l = 0; l < lanes; ++l) {
        auto lane = std::make_unique<Region::Lane>();
        lane->next = count * l / lanes;
        lane->end = count * (l + 1) / lanes;
        region.lanes.push_back(std::move(lane));
    }
    region.pending.store(count, std::memory_order_relaxed);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        region_ = &region;
        ++epoch_;
    }
    work_cv_.notify_all();

    // The caller participates as lane 0. Flag it as a pool execution
    // context for the duration: a task that itself calls run() (nested
    // parallelism) then takes the serial inline path instead of
    // re-locking run_mutex_ on this same thread.
    t_in_worker = true;
    drain(region, 0);
    t_in_worker = false;

    {
        // The region is a stack object: wait until every task has run
        // AND every worker has let go of it before leaving this frame.
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] {
            return region.pending.load(std::memory_order_acquire) == 0 &&
                   region.visitors == 0;
        });
        region_ = nullptr;
    }
    if (region.error)
        std::rethrow_exception(region.error);
}

void
ThreadPool::drain(Region &region, int lane)
{
    const int lanes = static_cast<int>(region.lanes.size());
    BP_ASSERT(lane < lanes);
    for (;;) {
        std::int64_t task = -1;
        {
            Region::Lane &own = *region.lanes[static_cast<std::size_t>(lane)];
            std::lock_guard<std::mutex> lock(own.mutex);
            if (own.next < own.end)
                task = own.next++;
        }
        for (int off = 1; off < lanes && task < 0; ++off) {
            Region::Lane &victim =
                *region.lanes[static_cast<std::size_t>((lane + off) % lanes)];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (victim.next < victim.end)
                task = --victim.end;
        }
        if (task < 0)
            return;

        if (!region.cancelled.load(std::memory_order_acquire)) {
            try {
                (*region.fn)(task);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(region.error_mutex);
                    if (!region.error)
                        region.error = std::current_exception();
                }
                region.cancelled.store(true, std::memory_order_release);
            }
        }
        if (region.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(mutex_);
            done_cv_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    t_in_worker = true;
    std::uint64_t seen_epoch = 0;
    for (;;) {
        Region *region = nullptr;
        int lane = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return shutdown_ || (region_ && epoch_ != seen_epoch);
            });
            if (shutdown_)
                return;
            seen_epoch = epoch_;
            region = region_;
            // Attach while holding the lock: the caller cannot destroy
            // the region until visitors drops back to zero.
            lane = ++region->visitors;
        }
        drain(*region, lane % static_cast<int>(region->lanes.size()));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--region->visitors == 0)
                done_cv_.notify_all();
        }
    }
}

} // namespace bertprof
