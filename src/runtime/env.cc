#include "runtime/env.h"

#include <cstdlib>

#include "util/logging.h"

namespace bertprof {

std::int64_t
envInt(const char *name, std::int64_t lo, std::int64_t hi,
       std::int64_t fallback, std::atomic<bool> &warned)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end && *end == '\0' && v >= lo && v <= hi)
        return static_cast<std::int64_t>(v);
    if (!warned.exchange(true))
        BP_LOG(Warn) << "ignoring invalid " << name << "=\"" << env
                     << "\" (want an integer in [" << lo << ", " << hi
                     << "])";
    return fallback;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    return env;
}

} // namespace bertprof
