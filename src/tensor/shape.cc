#include "tensor/shape.h"

#include <sstream>

#include "util/logging.h"

namespace bertprof {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims)
{
    for (auto d : dims_)
        BP_REQUIRE(d >= 0);
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims))
{
    for (auto d : dims_)
        BP_REQUIRE(d >= 0);
}

std::int64_t
Shape::dim(int i) const
{
    int r = rank();
    if (i < 0)
        i += r;
    BP_REQUIRE(i >= 0 && i < r);
    return dims_[static_cast<std::size_t>(i)];
}

std::int64_t
Shape::numel() const
{
    std::int64_t n = 1;
    for (auto d : dims_)
        n *= d;
    return n;
}

std::vector<std::int64_t>
Shape::strides() const
{
    std::vector<std::int64_t> s(dims_.size(), 1);
    for (int i = rank() - 2; i >= 0; --i)
        s[i] = s[i + 1] * dims_[i + 1];
    return s;
}

std::string
Shape::toString() const
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            os << ", ";
        os << dims_[i];
    }
    os << ']';
    return os.str();
}

} // namespace bertprof
