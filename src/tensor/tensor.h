/**
 * @file
 * Tensor: a row-major float buffer plus Shape. This is the data type
 * the CPU substrate computes on. Storage precision (FP32 vs FP16) is
 * tracked as metadata; mixed-precision experiments round values
 * through binary16 (see tensor/half.h) so numerics reflect reduced
 * precision while compute stays in float, mirroring how GPU tensor
 * cores accumulate FP16 products in FP32.
 */

#ifndef BERTPROF_TENSOR_TENSOR_H
#define BERTPROF_TENSOR_TENSOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/shape.h"

namespace bertprof {

class Rng;

/** Storage precision of a Tensor (affects bytes and rounding). */
enum class DType {
    F32,
    F16,
};

/** Size in bytes of one element of the given dtype. */
inline std::int64_t
dtypeBytes(DType dtype)
{
    return dtype == DType::F32 ? 4 : 2;
}

/** Short name: "fp32" / "fp16". */
const char *dtypeName(DType dtype);

/** Dense row-major float tensor. */
class Tensor
{
  public:
    /** An empty (rank-0, 1-element) tensor. */
    Tensor();

    /** Allocate a zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape, DType dtype = DType::F32);

    /** Allocate and fill from the given values (size must match). */
    Tensor(Shape shape, std::vector<float> values, DType dtype = DType::F32);

    /**
     * Non-owning view over external storage (the graph executor's
     * arena). The caller guarantees `storage` outlives the view and
     * holds shape.numel() floats. Copying the Tensor copies the
     * pointer, not the data; clone() materializes an owned copy.
     * Restricted to src/graph by the bplint arena-escape rule —
     * borrowed storage must not leak past the executor that owns it.
     */
    static Tensor borrow(float *storage, Shape shape,
                         DType dtype = DType::F32);

    /** True when this tensor borrows external storage. */
    bool isView() const { return view_ != nullptr; }

    /** The tensor's shape. */
    const Shape &shape() const { return shape_; }

    /** The tensor's storage precision. */
    DType dtype() const { return dtype_; }

    /** Total element count. */
    std::int64_t numel() const { return shape_.numel(); }

    /** Bytes this tensor occupies at its storage precision. */
    std::int64_t storageBytes() const
    {
        return numel() * dtypeBytes(dtype_);
    }

    /** Mutable flat data pointer. */
    float *data() { return view_ ? view_ : data_.data(); }

    /** Const flat data pointer. */
    const float *data() const { return view_ ? view_ : data_.data(); }

    /**
     * Element access by flat index. Bounds-checked in debug builds
     * (BP_ASSERT tier); the check compiles out under NDEBUG.
     */
    float &at(std::int64_t i);
    float at(std::int64_t i) const;

    /** Element access by (row, col) for rank-2 tensors. */
    float &at(std::int64_t r, std::int64_t c);
    float at(std::int64_t r, std::int64_t c) const;

    /** Call-operator aliases for at(), same debug bounds checks. */
    float &operator()(std::int64_t i) { return at(i); }
    float operator()(std::int64_t i) const { return at(i); }
    float &operator()(std::int64_t r, std::int64_t c) { return at(r, c); }
    float operator()(std::int64_t r, std::int64_t c) const
    {
        return at(r, c);
    }

    /** Fill every element with the given value. */
    void fill(float value);

    /** Fill with N(mean, stddev) samples from the given RNG. */
    void fillNormal(Rng &rng, float mean = 0.0f, float stddev = 1.0f);

    /** Fill with U[lo, hi) samples from the given RNG. */
    void fillUniform(Rng &rng, float lo = 0.0f, float hi = 1.0f);

    /**
     * Round every element through binary16 and mark the tensor F16.
     * Models casting an FP32 tensor to FP16 storage.
     */
    void castToHalfStorage();

    /** Mark the tensor F32 again (values are already exact floats). */
    void castToFloatStorage();

    /**
     * Reinterpret with a new shape of identical numel (metadata only;
     * no data movement since storage is row-major).
     */
    Tensor reshaped(Shape new_shape) const;

    /** Deep copy. */
    Tensor clone() const;

    /** Sum of all elements (in double for accuracy). */
    double sum() const;

    /** L2 norm of all elements (in double for accuracy). */
    double l2Norm() const;

    /** Max |element|. */
    float absMax() const;

    /** Short human-readable description, e.g. "Tensor[4, 8] fp32". */
    std::string toString() const;

  private:
    Shape shape_;
    DType dtype_;
    std::vector<float> data_;
    float *view_ = nullptr; ///< borrowed storage (null = owned data_)
};

/** Max |a-b| over two same-shaped tensors (testing helper). */
float maxAbsDiff(const Tensor &a, const Tensor &b);

} // namespace bertprof

#endif // BERTPROF_TENSOR_TENSOR_H
