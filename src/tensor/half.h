/**
 * @file
 * Software IEEE-754 binary16 ("half") conversion. The CPU substrate
 * computes in float, but mixed-precision experiments need faithful
 * FP16 rounding to reproduce reduced-precision storage behaviour
 * (the paper's MP training keeps FWD/BWD data in FP16 and optimizer
 * state in FP32).
 */

#ifndef BERTPROF_TENSOR_HALF_H
#define BERTPROF_TENSOR_HALF_H

#include <cstdint>

namespace bertprof {

/** Bit-accurate IEEE binary16 value stored as its 16-bit pattern. */
class Half
{
  public:
    Half() = default;

    /** Convert from float with round-to-nearest-even. */
    explicit Half(float value) : bits_(fromFloat(value)) {}

    /** Convert back to float exactly. */
    float toFloat() const { return toFloat(bits_); }

    /** Raw bit pattern. */
    std::uint16_t bits() const { return bits_; }

    /** Build from a raw bit pattern. */
    static Half
    fromBits(std::uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    /** float -> binary16 bits, round-to-nearest-even, with Inf/NaN. */
    static std::uint16_t fromFloat(float value);

    /** binary16 bits -> float, exact. */
    static float toFloat(std::uint16_t bits);

  private:
    std::uint16_t bits_ = 0;
};

/** Round a float through FP16 and back (simulates FP16 storage). */
inline float
roundToHalf(float value)
{
    return Half(value).toFloat();
}

} // namespace bertprof

#endif // BERTPROF_TENSOR_HALF_H
