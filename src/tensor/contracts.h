/**
 * @file
 * Shape / aliasing / finiteness contract macros for op entry points.
 *
 * Every public kernel in src/ops and src/optim states its
 * preconditions with these macros; tools/bplint enforces that
 * mechanically (rule op-entry-contract). Two check tiers:
 *
 *  - BP_CHECK_* build on BP_REQUIRE: always on, O(1), exit(1) with a
 *    message naming the violated contract and the offending shapes.
 *  - BP_DCHECK_* build on BP_ASSERT: debug-only (compile out under
 *    NDEBUG), may be O(n) — e.g. finiteness scans.
 *
 * Aliasing vocabulary: kernels that read input element i only to
 * produce output element i tolerate *exact* aliasing (out.data() ==
 * in.data(), in-place update) but are silently corrupted by *partial*
 * overlap; kernels that gather/scatter or re-read whole panels
 * (GEMM, transpose, embedding) require full disjointness.
 */

#ifndef BERTPROF_TENSOR_CONTRACTS_H
#define BERTPROF_TENSOR_CONTRACTS_H

#include <cmath>

#include "tensor/tensor.h"
#include "util/logging.h"

namespace bertprof {
namespace contracts {

/** True when a and b are the identical buffer (same base, same size). */
inline bool
sameStorage(const Tensor &a, const Tensor &b)
{
    return a.data() == b.data() && a.numel() == b.numel();
}

/** True when the storage ranges of a and b do not overlap at all. */
inline bool
storageDisjoint(const Tensor &a, const Tensor &b)
{
    const float *ab = a.data();
    const float *ae = ab + a.numel();
    const float *bb = b.data();
    const float *be = bb + b.numel();
    return ae <= bb || be <= ab;
}

/** True when a and b are either the same buffer or fully disjoint. */
inline bool
exactAliasOrDisjoint(const Tensor &a, const Tensor &b)
{
    return sameStorage(a, b) || storageDisjoint(a, b);
}

/** True when every element is finite (no NaN / +-inf). O(n). */
inline bool
allFinite(const Tensor &t)
{
    const float *p = t.data();
    const std::int64_t n = t.numel();
    for (std::int64_t i = 0; i < n; ++i)
        if (!std::isfinite(p[i]))
            return false;
    return true;
}

} // namespace contracts
} // namespace bertprof

/** Two tensors must have identical shapes. */
#define BP_CHECK_SAME_SHAPE(a, b)                                            \
    do {                                                                     \
        if (!((a).shape() == (b).shape())) {                                 \
            BP_FATAL() << "shape contract failed: " #a " "                   \
                       << (a).shape().toString() << " vs " #b " "            \
                       << (b).shape().toString();                            \
        }                                                                    \
    } while (0)

/** A tensor must have exactly the given rank. */
#define BP_CHECK_RANK(t, r)                                                  \
    do {                                                                     \
        if ((t).shape().rank() != (r)) {                                     \
            BP_FATAL() << "rank contract failed: " #t " is "                 \
                       << (t).shape().toString() << ", expected rank "       \
                       << (r);                                               \
        }                                                                    \
    } while (0)

/** Output storage must be fully disjoint from the input's. */
#define BP_CHECK_NO_ALIAS(out, in)                                           \
    do {                                                                     \
        if (!::bertprof::contracts::storageDisjoint((out), (in))) {          \
            BP_FATAL() << "alias contract failed: " #out                     \
                       << " overlaps " #in                                   \
                       << " (this kernel requires disjoint storage)";        \
        }                                                                    \
    } while (0)

/**
 * Output may be the same buffer as the input (in-place) or fully
 * disjoint, but never partially overlapping.
 */
#define BP_CHECK_NO_PARTIAL_ALIAS(out, in)                                   \
    do {                                                                     \
        if (!::bertprof::contracts::exactAliasOrDisjoint((out), (in))) {     \
            BP_FATAL() << "alias contract failed: " #out                     \
                       << " partially overlaps " #in                         \
                       << " (in-place is allowed only as an exact alias)";   \
        }                                                                    \
    } while (0)

/** Debug-only: every element of t is finite. O(n), NDEBUG-free. */
#define BP_DCHECK_FINITE(t)                                                  \
    BP_ASSERT(::bertprof::contracts::allFinite(t))

#endif // BERTPROF_TENSOR_CONTRACTS_H
