#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "tensor/half.h"
#include "util/logging.h"
#include "util/rng.h"

namespace bertprof {

const char *
dtypeName(DType dtype)
{
    return dtype == DType::F32 ? "fp32" : "fp16";
}

Tensor::Tensor() : shape_(), dtype_(DType::F32), data_(1, 0.0f) {}

Tensor::Tensor(Shape shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0f)
{
}

Tensor::Tensor(Shape shape, std::vector<float> values, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype), data_(std::move(values))
{
    BP_REQUIRE(static_cast<std::int64_t>(data_.size()) == shape_.numel());
}

Tensor
Tensor::borrow(float *storage, Shape shape, DType dtype)
{
    BP_REQUIRE(storage != nullptr);
    Tensor t;
    t.shape_ = std::move(shape);
    t.dtype_ = dtype;
    t.data_.clear();
    t.view_ = storage;
    return t;
}

float &
Tensor::at(std::int64_t i)
{
    BP_ASSERT(i >= 0 && i < numel());
    return data()[i];
}

float
Tensor::at(std::int64_t i) const
{
    BP_ASSERT(i >= 0 && i < numel());
    return data()[i];
}

float &
Tensor::at(std::int64_t r, std::int64_t c)
{
    BP_ASSERT(shape_.rank() == 2);
    BP_ASSERT(r >= 0 && r < shape_.dim(0) && c >= 0 && c < shape_.dim(1));
    return data()[r * shape_.dim(1) + c];
}

float
Tensor::at(std::int64_t r, std::int64_t c) const
{
    BP_ASSERT(shape_.rank() == 2);
    BP_ASSERT(r >= 0 && r < shape_.dim(0) && c >= 0 && c < shape_.dim(1));
    return data()[r * shape_.dim(1) + c];
}

void
Tensor::fill(float value)
{
    float *p = data();
    const std::int64_t n = numel();
    for (std::int64_t i = 0; i < n; ++i)
        p[i] = value;
}

void
Tensor::fillNormal(Rng &rng, float mean, float stddev)
{
    float *p = data();
    const std::int64_t n = numel();
    for (std::int64_t i = 0; i < n; ++i)
        p[i] = static_cast<float>(rng.normal(mean, stddev));
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    float *p = data();
    const std::int64_t n = numel();
    for (std::int64_t i = 0; i < n; ++i)
        p[i] = static_cast<float>(rng.uniform(lo, hi));
}

void
Tensor::castToHalfStorage()
{
    float *p = data();
    const std::int64_t n = numel();
    for (std::int64_t i = 0; i < n; ++i)
        p[i] = roundToHalf(p[i]);
    dtype_ = DType::F16;
}

void
Tensor::castToFloatStorage()
{
    dtype_ = DType::F32;
}

Tensor
Tensor::reshaped(Shape new_shape) const
{
    BP_REQUIRE(new_shape.numel() == numel());
    // Always materializes an owned copy, so reshaping a borrowed view
    // detaches it from the arena storage.
    Tensor out(std::move(new_shape),
               std::vector<float>(data(), data() + numel()), dtype_);
    return out;
}

Tensor
Tensor::clone() const
{
    return Tensor(shape_, std::vector<float>(data(), data() + numel()),
                  dtype_);
}

double
Tensor::sum() const
{
    const float *p = data();
    const std::int64_t n = numel();
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
        s += p[i];
    return s;
}

double
Tensor::l2Norm() const
{
    const float *p = data();
    const std::int64_t n = numel();
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
        s += static_cast<double>(p[i]) * p[i];
    return std::sqrt(s);
}

float
Tensor::absMax() const
{
    const float *p = data();
    const std::int64_t n = numel();
    float m = 0.0f;
    for (std::int64_t i = 0; i < n; ++i)
        m = std::max(m, std::fabs(p[i]));
    return m;
}

std::string
Tensor::toString() const
{
    std::ostringstream os;
    os << "Tensor" << shape_.toString() << ' ' << dtypeName(dtype_);
    return os.str();
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    BP_REQUIRE(a.shape() == b.shape());
    float m = 0.0f;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a.at(i) - b.at(i)));
    return m;
}

} // namespace bertprof
