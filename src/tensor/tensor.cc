#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "tensor/half.h"
#include "util/logging.h"
#include "util/rng.h"

namespace bertprof {

const char *
dtypeName(DType dtype)
{
    return dtype == DType::F32 ? "fp32" : "fp16";
}

Tensor::Tensor() : shape_(), dtype_(DType::F32), data_(1, 0.0f) {}

Tensor::Tensor(Shape shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0f)
{
}

Tensor::Tensor(Shape shape, std::vector<float> values, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype), data_(std::move(values))
{
    BP_REQUIRE(static_cast<std::int64_t>(data_.size()) == shape_.numel());
}

float &
Tensor::at(std::int64_t i)
{
    BP_ASSERT(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
}

float
Tensor::at(std::int64_t i) const
{
    BP_ASSERT(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
}

float &
Tensor::at(std::int64_t r, std::int64_t c)
{
    BP_ASSERT(shape_.rank() == 2);
    BP_ASSERT(r >= 0 && r < shape_.dim(0) && c >= 0 && c < shape_.dim(1));
    return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
}

float
Tensor::at(std::int64_t r, std::int64_t c) const
{
    BP_ASSERT(shape_.rank() == 2);
    BP_ASSERT(r >= 0 && r < shape_.dim(0) && c >= 0 && c < shape_.dim(1));
    return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
}

void
Tensor::fill(float value)
{
    for (auto &v : data_)
        v = value;
}

void
Tensor::fillNormal(Rng &rng, float mean, float stddev)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.normal(mean, stddev));
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.uniform(lo, hi));
}

void
Tensor::castToHalfStorage()
{
    for (auto &v : data_)
        v = roundToHalf(v);
    dtype_ = DType::F16;
}

void
Tensor::castToFloatStorage()
{
    dtype_ = DType::F32;
}

Tensor
Tensor::reshaped(Shape new_shape) const
{
    BP_REQUIRE(new_shape.numel() == numel());
    Tensor out(std::move(new_shape), data_, dtype_);
    return out;
}

Tensor
Tensor::clone() const
{
    return Tensor(shape_, data_, dtype_);
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float v : data_)
        s += v;
    return s;
}

double
Tensor::l2Norm() const
{
    double s = 0.0;
    for (float v : data_)
        s += static_cast<double>(v) * v;
    return std::sqrt(s);
}

float
Tensor::absMax() const
{
    float m = 0.0f;
    for (float v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

std::string
Tensor::toString() const
{
    std::ostringstream os;
    os << "Tensor" << shape_.toString() << ' ' << dtypeName(dtype_);
    return os.str();
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    BP_REQUIRE(a.shape() == b.shape());
    float m = 0.0f;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a.at(i) - b.at(i)));
    return m;
}

} // namespace bertprof
