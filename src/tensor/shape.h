/**
 * @file
 * Shape: the dimension vector of a Tensor, with row-major stride
 * helpers. Kept deliberately small; the ops layer works directly on
 * flat float buffers plus Shape metadata.
 */

#ifndef BERTPROF_TENSOR_SHAPE_H
#define BERTPROF_TENSOR_SHAPE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace bertprof {

/** Row-major tensor shape. An empty shape denotes a scalar. */
class Shape
{
  public:
    Shape() = default;

    /** Construct from a dim list, e.g. Shape({2, 3, 4}). */
    Shape(std::initializer_list<std::int64_t> dims);

    /** Construct from a vector of dims. */
    explicit Shape(std::vector<std::int64_t> dims);

    /** Number of dimensions. */
    int rank() const { return static_cast<int>(dims_.size()); }

    /** Size of dimension i; negative i counts from the back. */
    std::int64_t dim(int i) const;

    /** Total number of elements (1 for a scalar). */
    std::int64_t numel() const;

    /** Row-major strides, one per dimension. */
    std::vector<std::int64_t> strides() const;

    /** The raw dimension vector. */
    const std::vector<std::int64_t> &dims() const { return dims_; }

    /** Render like "[2, 3, 4]". */
    std::string toString() const;

    bool operator==(const Shape &other) const { return dims_ == other.dims_; }
    bool operator!=(const Shape &other) const { return !(*this == other); }

  private:
    std::vector<std::int64_t> dims_;
};

} // namespace bertprof

#endif // BERTPROF_TENSOR_SHAPE_H
