#include "tensor/half.h"

#include <cstring>

namespace bertprof {

std::uint16_t
Half::fromFloat(float value)
{
    std::uint32_t f;
    std::memcpy(&f, &value, sizeof(f));

    const std::uint32_t sign = (f >> 16) & 0x8000u;
    const std::int32_t exponent =
        static_cast<std::int32_t>((f >> 23) & 0xFF) - 127;
    std::uint32_t mantissa = f & 0x007FFFFFu;

    if (exponent == 128) {
        // Inf or NaN. Preserve NaN-ness with a quiet mantissa bit.
        if (mantissa)
            return static_cast<std::uint16_t>(sign | 0x7E00u);
        return static_cast<std::uint16_t>(sign | 0x7C00u);
    }

    if (exponent > 15) {
        // Overflow -> infinity.
        return static_cast<std::uint16_t>(sign | 0x7C00u);
    }

    if (exponent >= -14) {
        // Normal half. Round mantissa from 23 to 10 bits (RNE).
        std::uint32_t half_exp =
            static_cast<std::uint32_t>(exponent + 15) << 10;
        std::uint32_t half_man = mantissa >> 13;
        std::uint32_t round_bits = mantissa & 0x1FFFu;
        if (round_bits > 0x1000u ||
            (round_bits == 0x1000u && (half_man & 1u))) {
            // Carry may ripple into the exponent; that is correct
            // behaviour (e.g. rounding 2047.9999 up).
            return static_cast<std::uint16_t>(sign + half_exp + half_man + 1);
        }
        return static_cast<std::uint16_t>(sign | half_exp | half_man);
    }

    if (exponent >= -24) {
        // Subnormal half.
        mantissa |= 0x00800000u; // implicit leading one
        int shift = -exponent - 14 + 13; // down to 10-bit subnormal
        std::uint32_t half_man = mantissa >> shift;
        std::uint32_t round_mask = (1u << shift) - 1;
        std::uint32_t round_bits = mantissa & round_mask;
        std::uint32_t halfway = 1u << (shift - 1);
        if (round_bits > halfway ||
            (round_bits == halfway && (half_man & 1u))) {
            ++half_man;
        }
        return static_cast<std::uint16_t>(sign | half_man);
    }

    // Underflow -> signed zero.
    return static_cast<std::uint16_t>(sign);
}

float
Half::toFloat(std::uint16_t bits)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u)
                               << 16;
    const std::uint32_t exponent = (bits >> 10) & 0x1Fu;
    std::uint32_t mantissa = bits & 0x03FFu;

    std::uint32_t f;
    if (exponent == 0) {
        if (mantissa == 0) {
            f = sign; // signed zero
        } else {
            // Subnormal: normalize.
            int e = -1;
            do {
                ++e;
                mantissa <<= 1;
            } while ((mantissa & 0x0400u) == 0);
            mantissa &= 0x03FFu;
            f = sign | static_cast<std::uint32_t>(127 - 15 - e) << 23 |
                mantissa << 13;
        }
    } else if (exponent == 0x1F) {
        f = sign | 0x7F800000u | (mantissa << 13); // Inf / NaN
    } else {
        f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
    }

    float out;
    std::memcpy(&out, &f, sizeof(out));
    return out;
}

} // namespace bertprof
