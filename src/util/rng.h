/**
 * @file
 * Deterministic random-number utilities for synthetic data generation,
 * weight initialization, and dropout masks. Everything is seeded so
 * tests and experiments are reproducible.
 */

#ifndef BERTPROF_UTIL_RNG_H
#define BERTPROF_UTIL_RNG_H

#include <cstdint>
#include <random>
#include <sstream>
#include <string>

namespace bertprof {

/**
 * Thin deterministic wrapper around std::mt19937_64 with the sampling
 * helpers the library needs.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for repro). */
    explicit Rng(std::uint64_t seed = 0x5eed1234abcdULL) : engine_(seed) {}

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Gaussian with the given mean and standard deviation. */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Bernoulli trial with probability p of true. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Access the underlying engine (for std::shuffle etc.). */
    std::mt19937_64 &engine() { return engine_; }

    /**
     * The full engine state as text (the standard's textual
     * representation of mt19937_64). deserialize() restores it
     * exactly, so a checkpointed stream resumes on the same draw —
     * any distribution-internal caches are not part of engine state,
     * which is fine here: every helper constructs its distribution
     * per call.
     */
    std::string
    serialize() const
    {
        std::ostringstream os;
        os << engine_;
        return os.str();
    }

    /** Restore a serialize()d state; false (engine untouched) on a
     *  malformed string. */
    bool
    deserialize(const std::string &state)
    {
        std::istringstream is(state);
        std::mt19937_64 restored;
        is >> restored;
        if (is.fail())
            return false;
        engine_ = restored;
        return true;
    }

  private:
    std::mt19937_64 engine_;
};

} // namespace bertprof

#endif // BERTPROF_UTIL_RNG_H
