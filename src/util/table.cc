#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace bertprof {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    BP_REQUIRE(header_.empty() || row.size() == header_.size());
    rows_.push_back(std::move(row));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

std::size_t
Table::rowCount() const
{
    std::size_t n = 0;
    for (const auto &row : rows_)
        if (!row.empty())
            ++n;
    return n;
}

std::string
Table::render() const
{
    // Compute per-column widths across the header and all rows.
    std::vector<std::size_t> widths;
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    std::ostringstream os;
    auto emitSeparator = [&]() {
        os << '+';
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto emitRow = [&](const std::vector<std::string> &row) {
        os << '|';
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            os << ' ' << cell << std::string(widths[i] - cell.size(), ' ')
               << " |";
        }
        os << '\n';
    };

    if (!title_.empty())
        os << title_ << '\n';
    emitSeparator();
    if (!header_.empty()) {
        emitRow(header_);
        emitSeparator();
    }
    for (const auto &row : rows_) {
        if (row.empty())
            emitSeparator();
        else
            emitRow(row);
    }
    emitSeparator();
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    os << render();
}

} // namespace bertprof
