#include "util/csv.h"

// util sits below src/io in the layer DAG, so CsvWriter cannot route
// through the checked I/O layer without inverting the dependency; its
// one ofstream write is sanctioned here instead.
// bplint: allow-file(unchecked-io)

#include <fstream>
#include <sstream>

namespace bertprof {

void
CsvWriter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
CsvWriter::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
CsvWriter::escape(const std::string &cell)
{
    bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
CsvWriter::render() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ',';
            os << escape(row[i]);
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << render();
    return static_cast<bool>(out);
}

} // namespace bertprof
