/**
 * @file
 * Minimal CSV writer so benchmark harnesses can dump machine-readable
 * series next to the human-readable tables.
 */

#ifndef BERTPROF_UTIL_CSV_H
#define BERTPROF_UTIL_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace bertprof {

/**
 * Accumulates rows and writes RFC-4180-style CSV (quotes cells that
 * contain commas, quotes, or newlines).
 */
class CsvWriter
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append one data row. */
    void addRow(std::vector<std::string> row);

    /** Render all rows as CSV text. */
    std::string render() const;

    /** Write the CSV text to a file; returns false on I/O error. */
    bool writeFile(const std::string &path) const;

    /** Escape a single cell per RFC 4180. */
    static std::string escape(const std::string &cell);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace bertprof

#endif // BERTPROF_UTIL_CSV_H
