#include "util/units.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace bertprof {

namespace {

/** Scale a value into the largest unit <= value and render it. */
std::string
scaled(double value, double base, const char *const *suffixes,
       int suffix_count, const char *final_suffix)
{
    double v = value;
    int idx = 0;
    while (std::fabs(v) >= base && idx < suffix_count - 1) {
        v /= base;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s%s", v, suffixes[idx],
                  final_suffix);
    return buf;
}

} // namespace

std::string
formatBytes(double bytes)
{
    static const char *suffixes[] = {"", "Ki", "Mi", "Gi", "Ti", "Pi"};
    return scaled(bytes, 1024.0, suffixes, 6, "B");
}

std::string
formatFlops(double flops)
{
    static const char *suffixes[] = {"", "K", "M", "G", "T", "P"};
    return scaled(flops, 1000.0, suffixes, 6, "FLOP");
}

std::string
formatSeconds(double seconds)
{
    char buf[64];
    if (seconds >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    else if (seconds >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
    else if (seconds >= 1e-6)
        std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.3f ns", seconds * 1e9);
    return buf;
}

std::string
formatFlopRate(double flops_per_sec)
{
    static const char *suffixes[] = {"", "K", "M", "G", "T", "P"};
    return scaled(flops_per_sec, 1000.0, suffixes, 6, "FLOP/s");
}

std::string
formatByteRate(double bytes_per_sec)
{
    static const char *suffixes[] = {"", "K", "M", "G", "T", "P"};
    return scaled(bytes_per_sec, 1000.0, suffixes, 6, "B/s");
}

std::string
formatPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

} // namespace bertprof
