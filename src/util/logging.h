/**
 * @file
 * Logging and error-reporting primitives for the bertprof library.
 *
 * Follows the gem5 convention: fatal() is for user error (bad
 * configuration, invalid arguments) and exits cleanly; panic() is for
 * internal invariant violations (library bugs) and aborts.
 */

#ifndef BERTPROF_UTIL_LOGGING_H
#define BERTPROF_UTIL_LOGGING_H

#include <cstdlib>
#include <sstream>
#include <string>

namespace bertprof {

/** Severity of a log message. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/** Global minimum level that is actually emitted (default: Info). */
LogLevel logLevel();

/** Set the global minimum log level. */
void setLogLevel(LogLevel level);

/** Emit a message at the given level to stderr (if enabled). */
void logMessage(LogLevel level, const std::string &msg);

namespace detail {

/**
 * Stream-style message builder used by the LOG/FATAL/PANIC macros.
 * Accumulates into a string and dispatches on destruction.
 */
class LogStream
{
  public:
    enum class Action { Log, Fatal, Panic };

    LogStream(LogLevel level, Action action, const char *file, int line);
    ~LogStream();

    LogStream(const LogStream &) = delete;
    LogStream &operator=(const LogStream &) = delete;

    template <typename T>
    LogStream &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    Action action_;
    std::ostringstream stream_;
};

} // namespace detail

} // namespace bertprof

/** Log an informational message: BP_LOG(Info) << "x = " << x; */
#define BP_LOG(level)                                                        \
    ::bertprof::detail::LogStream(::bertprof::LogLevel::level,               \
                                  ::bertprof::detail::LogStream::Action::Log,\
                                  __FILE__, __LINE__)

/** Report a user error (bad config / arguments) and exit(1). */
#define BP_FATAL()                                                           \
    ::bertprof::detail::LogStream(                                           \
        ::bertprof::LogLevel::Error,                                         \
        ::bertprof::detail::LogStream::Action::Fatal, __FILE__, __LINE__)

/** Report an internal bug and abort(). */
#define BP_PANIC()                                                           \
    ::bertprof::detail::LogStream(                                           \
        ::bertprof::LogLevel::Error,                                         \
        ::bertprof::detail::LogStream::Action::Panic, __FILE__, __LINE__)

/**
 * Internal invariant check; aborts with a message when violated.
 *
 * Debug tier: compiles out entirely under NDEBUG (the condition is
 * never evaluated), so it is safe on hot paths — bounds checks in
 * Tensor::at, per-element invariants, and anything else too costly
 * for release builds. Preconditions that must hold in every build
 * (user-facing shape/alias contracts) belong in BP_REQUIRE or the
 * BP_CHECK_* macros (tensor/contracts.h) instead.
 */
#ifdef NDEBUG
#define BP_ASSERT(cond) ((void)sizeof((cond) ? 1 : 0))
#else
#define BP_ASSERT(cond)                                                      \
    do {                                                                     \
        if (!(cond)) {                                                       \
            BP_PANIC() << "assertion failed: " #cond;                        \
        }                                                                    \
    } while (0)
#endif

/** User-facing precondition check; exits with a message when violated. */
#define BP_REQUIRE(cond)                                                     \
    do {                                                                     \
        if (!(cond)) {                                                       \
            BP_FATAL() << "requirement failed: " #cond;                      \
        }                                                                    \
    } while (0)

#endif // BERTPROF_UTIL_LOGGING_H
