/**
 * @file
 * Unit helpers and human-readable formatting for FLOPs, bytes, time,
 * and rates. Used pervasively in reports and benchmarks.
 */

#ifndef BERTPROF_UTIL_UNITS_H
#define BERTPROF_UTIL_UNITS_H

#include <cstdint>
#include <string>

namespace bertprof {

/** Count of floating-point operations. */
using Flops = std::int64_t;

/** Count of bytes. */
using Bytes = std::int64_t;

/** Duration in seconds (double keeps the math simple). */
using Seconds = double;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * kKiB;
constexpr Bytes kGiB = 1024 * kMiB;

/** Format a byte count, e.g. "1.25 GiB". */
std::string formatBytes(double bytes);

/** Format an op count, e.g. "34.4 GFLOP". */
std::string formatFlops(double flops);

/** Format a duration, e.g. "12.3 ms". */
std::string formatSeconds(double seconds);

/** Format a rate in ops/s, e.g. "23.1 TFLOP/s". */
std::string formatFlopRate(double flops_per_sec);

/** Format a rate in bytes/s, e.g. "1.23 TB/s". */
std::string formatByteRate(double bytes_per_sec);

/** Format a fraction as a percentage, e.g. "42.0%". */
std::string formatPercent(double fraction, int precision = 1);

} // namespace bertprof

#endif // BERTPROF_UTIL_UNITS_H
