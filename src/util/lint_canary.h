/**
 * @file
 * bplint canary header — NOT compiled (deliberately omitted from
 * src/util/CMakeLists.txt). Together with lint_canary.cc this file
 * seeds one suppressed violation for each bplint v2 semantic rule,
 * so the `lint` CTest proves the rules keep firing on the real tree:
 * delete any suppression comment below and `bplint_tree` fails.
 *
 * This header carries the include-layer seeds: a util header
 * reaching up to train is a direct include-hygiene violation, and
 * every layer train drags in transitively becomes an include-dag
 * violation here and in the .cc that includes us.
 */

// bplint: allow-file(include-dag)

#ifndef BERTPROF_UTIL_LINT_CANARY_H
#define BERTPROF_UTIL_LINT_CANARY_H

// Seeded violation: util must not include the train layer.
// bplint: allow(include-hygiene)
#include "train/trainer.h"

namespace bertprof {

/** Exists so the canary TU has a namespace-scope definition. */
double lintCanaryAccumulate(int n);

} // namespace bertprof

#endif // BERTPROF_UTIL_LINT_CANARY_H
