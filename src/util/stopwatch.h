/**
 * @file
 * Monotonic stopwatch for benchmark harnesses. Built on
 * std::chrono::steady_clock — never the wall clock — so measured
 * intervals survive NTP slews and are safe to compare across the
 * thread-pool benches. This is the one sanctioned way to time code in
 * this repo; ScopedKernel (runtime/profiler.h) uses the same clock.
 */

#ifndef BERTPROF_UTIL_STOPWATCH_H
#define BERTPROF_UTIL_STOPWATCH_H

#include <chrono>
#include <cstdint>

#include "util/units.h"

namespace bertprof {

/**
 * Monotonic instant/arithmetic helpers for code that must compare
 * points in time rather than measure one interval (request arrival
 * stamps, batching deadlines). Same steady clock as Stopwatch, so the
 * wall-clock audit has a single sanctioned time source to check.
 */
using MonoClock = std::chrono::steady_clock;
using MonoTime = MonoClock::time_point;

/** The current monotonic instant. */
inline MonoTime
monoNow()
{
    return MonoClock::now();
}

/** Seconds from `from` to `to` (negative when `to` precedes it). */
inline Seconds
secondsBetween(MonoTime from, MonoTime to)
{
    return std::chrono::duration<double>(to - from).count();
}

/**
 * `t` advanced by a microsecond count (deadline arithmetic),
 * saturating at the clock's representable range instead of
 * overflowing — an extreme defaultDeadlineUs (say INT64_MAX) must
 * mean "effectively never", not a wrapped-around instant in the past.
 */
inline MonoTime
monoAddMicros(MonoTime t, std::int64_t us)
{
    // Compare in microseconds relative to the clock epoch: casting
    // `us` up to the clock's finer tick would overflow before any
    // clamp could run, and subtracting time_points directly
    // (MonoTime::min() - t) is signed overflow on the raw ticks.
    // Casting each endpoint down only truncates (conservative by
    // < 1us), and the epoch-relative values are ~9.2e12 us, so their
    // differences stay far inside the int64 range.
    const std::int64_t t_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            t.time_since_epoch())
            .count();
    const std::int64_t max_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            MonoTime::max().time_since_epoch())
            .count();
    const std::int64_t min_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            MonoTime::min().time_since_epoch())
            .count();
    if (us >= 0 && us >= max_us - t_us)
        return MonoTime::max();
    if (us < 0 && us <= min_us - t_us)
        return MonoTime::min();
    return t + std::chrono::microseconds(us);
}

/** Starts on construction; elapsed() reads without stopping. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds since construction or the last restart(). */
    Seconds
    elapsed() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Reset the origin to now. */
    void restart() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace bertprof

#endif // BERTPROF_UTIL_STOPWATCH_H
