/**
 * @file
 * Monotonic stopwatch for benchmark harnesses. Built on
 * std::chrono::steady_clock — never the wall clock — so measured
 * intervals survive NTP slews and are safe to compare across the
 * thread-pool benches. This is the one sanctioned way to time code in
 * this repo; ScopedKernel (runtime/profiler.h) uses the same clock.
 */

#ifndef BERTPROF_UTIL_STOPWATCH_H
#define BERTPROF_UTIL_STOPWATCH_H

#include <chrono>
#include <cstdint>

#include "util/units.h"

namespace bertprof {

/**
 * Monotonic instant/arithmetic helpers for code that must compare
 * points in time rather than measure one interval (request arrival
 * stamps, batching deadlines). Same steady clock as Stopwatch, so the
 * wall-clock audit has a single sanctioned time source to check.
 */
using MonoClock = std::chrono::steady_clock;
using MonoTime = MonoClock::time_point;

/** The current monotonic instant. */
inline MonoTime
monoNow()
{
    return MonoClock::now();
}

/** Seconds from `from` to `to` (negative when `to` precedes it). */
inline Seconds
secondsBetween(MonoTime from, MonoTime to)
{
    return std::chrono::duration<double>(to - from).count();
}

/** `t` advanced by a microsecond count (deadline arithmetic). */
inline MonoTime
monoAddMicros(MonoTime t, std::int64_t us)
{
    return t + std::chrono::microseconds(us);
}

/** Starts on construction; elapsed() reads without stopping. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds since construction or the last restart(). */
    Seconds
    elapsed() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Reset the origin to now. */
    void restart() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace bertprof

#endif // BERTPROF_UTIL_STOPWATCH_H
