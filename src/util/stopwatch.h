/**
 * @file
 * Monotonic stopwatch for benchmark harnesses. Built on
 * std::chrono::steady_clock — never the wall clock — so measured
 * intervals survive NTP slews and are safe to compare across the
 * thread-pool benches. This is the one sanctioned way to time code in
 * this repo; ScopedKernel (runtime/profiler.h) uses the same clock.
 */

#ifndef BERTPROF_UTIL_STOPWATCH_H
#define BERTPROF_UTIL_STOPWATCH_H

#include <chrono>

#include "util/units.h"

namespace bertprof {

/** Starts on construction; elapsed() reads without stopping. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds since construction or the last restart(). */
    Seconds
    elapsed() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Reset the origin to now. */
    void restart() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace bertprof

#endif // BERTPROF_UTIL_STOPWATCH_H
