/**
 * @file
 * Fixed-width ASCII table renderer used by the benchmark harnesses to
 * print the rows/series of each paper figure and table.
 */

#ifndef BERTPROF_UTIL_TABLE_H
#define BERTPROF_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace bertprof {

/**
 * A simple column-aligned table. Add a header once, then rows; cells
 * are pre-rendered strings (use util/units.h helpers for numbers).
 */
class Table
{
  public:
    /** Construct a table with an optional title printed above it. */
    explicit Table(std::string title = "");

    /** Set the header row; resets column count. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Number of data rows added so far (separators excluded). */
    std::size_t rowCount() const;

    /** Render the table to a string. */
    std::string render() const;

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    // Separator rows are represented as empty vectors.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace bertprof

#endif // BERTPROF_UTIL_TABLE_H
