#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <exception>

namespace bertprof {

namespace {

LogLevel globalLevel = LogLevel::Info;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(globalLevel))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

namespace detail {

LogStream::LogStream(LogLevel level, Action action, const char *file,
                     int line)
    : level_(level), action_(action)
{
    if (action_ != Action::Log)
        stream_ << file << ":" << line << ": ";
}

LogStream::~LogStream()
{
    switch (action_) {
      case Action::Log:
        logMessage(level_, stream_.str());
        break;
      case Action::Fatal:
        std::fprintf(stderr, "[FATAL] %s\n", stream_.str().c_str());
        // _Exit, not exit: a fatal contract violation must not run
        // static destructors — ~ThreadPool would try to join worker
        // threads that may be mid-kernel (or absent entirely in a
        // fork()ed death-test child, where joining SEGVs).
        std::fflush(nullptr);
        std::_Exit(1);
      case Action::Panic:
        std::fprintf(stderr, "[PANIC] %s\n", stream_.str().c_str());
        std::abort();
    }
}

} // namespace detail

} // namespace bertprof
