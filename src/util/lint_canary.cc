/**
 * @file
 * bplint canary TU — NOT compiled (deliberately omitted from
 * src/util/CMakeLists.txt; the code below would not survive a real
 * build and exists only as lint input). Each block seeds exactly one
 * violation of a bplint v2 semantic rule, suppressed with the
 * standard directives. The `lint` CTest therefore exercises every
 * rule against the real project model on every run: delete any
 * suppression comment and `bplint_tree` fails.
 */

// The util layer transitively reaches everything the seeded
// train include drags in; see lint_canary.h. The direct includes
// below (io/runtime/tensor, needed so the canary code is plausible)
// are likewise above util — the seeded direct violation lives in
// lint_canary.h, so a blanket allow keeps this file to one seed per
// rule.
// bplint: allow-file(include-dag)
// bplint: allow-file(include-hygiene)

#include "util/lint_canary.h"

#include "io/binary_io.h"
#include "runtime/env.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"

namespace bertprof {

double
lintCanaryAccumulate(int n)
{
    // Seeded violation: env knob read that the README table does not
    // document (env-registry, read side).
    // bplint: allow(env-registry)
    bool warned = false;
    const std::int64_t reps =
        // bplint: allow(env-registry)
        envInt("BERTPROF_LINT_CANARY", 1, 8, 1, &warned);

    double acc = 0.0;
    parallelFor(0, n * reps, 64, [&](std::int64_t lo, std::int64_t hi) {
        // Seeded violation: Tensor construction in a hot region.
        // bplint: allow(hot-loop-alloc)
        Tensor scratch(Shape({hi - lo}));
        for (std::int64_t i = lo; i < hi; ++i) {
            // Seeded violation: by-ref captured accumulator written
            // without a disjoint body-local subscript.
            // bplint: allow(parallel-capture-race)
            acc += scratch.data()[i - lo];
        }
    });

    // Seeded violation: IoStatus dropped on the floor.
    // bplint: allow(must-check-io)
    writeTextFile("/tmp/lint_canary.txt", "canary");
    return acc;
}

} // namespace bertprof
