/**
 * @file
 * The graph-level encoder executor: builds the unfused encoder-layer
 * op list, optionally applies the fusion pass, plans arena storage
 * for every intermediate, and interprets the result against an
 * EncoderLayer's parameters. Implements the nn/graph_hook.h seam and
 * is engaged by EncoderLayer::forward on the eval path when
 * BERTPROF_FUSION=on and ensureEncoderGraphExecInstalled() has run
 * (serve engines call it from their constructors).
 *
 * Plans are cached per (layer, batch, seq, mask kind): steady-state
 * serving re-plans nothing, it binds arena views and runs the ops.
 */

#ifndef BERTPROF_GRAPH_ENCODER_EXEC_H
#define BERTPROF_GRAPH_ENCODER_EXEC_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/arena.h"
#include "graph/graph.h"
#include "nn/graph_hook.h"

namespace bertprof {
namespace graph {

/**
 * Build the eval-mode encoder-layer graph (unfused form). Value 0 is
 * the external input x [B*n, d_model], value 1 the external additive
 * mask ([n, n] broadcast or [B, n, n] when per_seq_mask), and the
 * final LayerNorm writes the external output. With `fused`, the
 * fusion pass is applied before returning.
 */
GraphDef buildEncoderEvalGraph(std::int64_t d_model, int heads,
                               std::int64_t d_ff, std::int64_t batch,
                               std::int64_t seq, bool per_seq_mask,
                               bool fused);

/** Graph executor registered behind the nn hook. */
class EncoderExec : public EncoderGraphExec
{
  public:
    Tensor forwardEval(EncoderLayer &layer, const Tensor &x,
                       const Tensor &mask, std::int64_t batch,
                       std::int64_t seq) override;

    std::int64_t arenaPeakBytes() const override
    {
        return peakBytes_.load(std::memory_order_relaxed);
    }

    std::int64_t plannedSumBytes() const override
    {
        return lastSumBytes_.load(std::memory_order_relaxed);
    }

    /** Drop all cached plans (tests; weights are re-read each run so
     * plans never go stale from training steps). */
    void clearPlanCache();

  private:
    struct CachedPlan {
        GraphDef def;
        ArenaPlan plan;
        int out_id = -1;
    };

    const CachedPlan &planFor(EncoderLayer &layer, std::int64_t batch,
                              std::int64_t seq, bool per_seq_mask);

    std::mutex mu_;
    std::unordered_map<std::string, std::unique_ptr<CachedPlan>> cache_;
    std::atomic<std::int64_t> peakBytes_{0};
    std::atomic<std::int64_t> lastSumBytes_{0};
};

/**
 * Install the process-wide EncoderExec behind nn's graph hook.
 * Idempotent; returns the installed executor. Explicit rather than a
 * static initializer so static-library linking can't drop it.
 */
EncoderExec *ensureEncoderGraphExecInstalled();

} // namespace graph
} // namespace bertprof

#endif // BERTPROF_GRAPH_ENCODER_EXEC_H
