#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace bertprof {
namespace graph {

int
GraphDef::addValue(const std::string &name, Shape shape, bool external)
{
    ValueDesc v;
    v.name = name;
    v.shape = std::move(shape);
    v.external = external;
    values.push_back(std::move(v));
    return static_cast<int>(values.size()) - 1;
}

OpDesc &
GraphDef::addOp(OpTag tag, const std::string &name, SubLayer sub,
                std::vector<int> reads, std::vector<int> writes,
                std::int64_t param)
{
    OpDesc op;
    op.tag = tag;
    op.name = name;
    op.sub = sub;
    op.reads = std::move(reads);
    op.writes = std::move(writes);
    op.param = param;
    ops.push_back(std::move(op));
    return ops.back();
}

std::vector<Interval>
computeLiveness(const GraphDef &g)
{
    std::vector<Interval> live(g.values.size());
    for (std::size_t i = 0; i < g.ops.size(); ++i) {
        const int idx = static_cast<int>(i);
        for (int id : g.ops[i].writes) {
            BP_REQUIRE(id >= 0 &&
                       id < static_cast<int>(g.values.size()));
            if (live[id].start < 0)
                live[id].start = idx;
            // A write keeps the value live through this op.
            live[id].end = std::max(live[id].end, idx + 1);
        }
        for (int id : g.ops[i].reads) {
            BP_REQUIRE(id >= 0 &&
                       id < static_cast<int>(g.values.size()));
            // Conservative rule: a value read by op i stays live
            // through i (end = i + 1), so op i's outputs can never be
            // placed on top of its inputs.
            live[id].end = std::max(live[id].end, idx + 1);
        }
    }
    for (std::size_t id = 0; id < g.values.size(); ++id) {
        if (g.values[id].external)
            live[id] = Interval{-1, -1};
    }
    return live;
}

bool
onlyReadWithin(const GraphDef &g, int id, std::size_t lo, std::size_t hi)
{
    for (std::size_t i = 0; i < g.ops.size(); ++i) {
        if (i >= lo && i <= hi)
            continue;
        for (int r : g.ops[i].reads)
            if (r == id)
                return false;
    }
    return true;
}

namespace {

bool
tagsAt(const GraphDef &g, std::size_t i,
       const std::vector<OpTag> &pattern)
{
    if (i + pattern.size() > g.ops.size())
        return false;
    for (std::size_t j = 0; j < pattern.size(); ++j)
        if (g.ops[i + j].tag != pattern[j])
            return false;
    return true;
}

/** Replace ops [i, i+count) with one fused op. */
void
replaceChain(GraphDef &g, std::size_t i, std::size_t count, OpDesc fused)
{
    g.ops.erase(g.ops.begin() + static_cast<std::ptrdiff_t>(i),
                g.ops.begin() + static_cast<std::ptrdiff_t>(i + count));
    g.ops.insert(g.ops.begin() + static_cast<std::ptrdiff_t>(i),
                 std::move(fused));
}

/**
 * Match [Gemm, BiasAdd, SplitHeads] x3 where the three GEMMs read the
 * same input. Emits FusedQkv reading that input and the mask-free
 * operands, writing the three split 3-D outputs.
 */
bool
tryFuseQkv(GraphDef &g, std::size_t i)
{
    const std::vector<OpTag> unit = {OpTag::Gemm, OpTag::BiasAdd,
                                     OpTag::SplitHeads};
    for (int rep = 0; rep < 3; ++rep)
        if (!tagsAt(g, i + 3 * static_cast<std::size_t>(rep), unit))
            return false;
    const int x_id = g.ops[i].reads[0];
    std::vector<int> q3d_writes;
    for (int rep = 0; rep < 3; ++rep) {
        const std::size_t base = i + 3 * static_cast<std::size_t>(rep);
        const OpDesc &gemm_op = g.ops[base];
        const OpDesc &bias_op = g.ops[base + 1];
        const OpDesc &split_op = g.ops[base + 2];
        if (gemm_op.reads[0] != x_id)
            return false;
        const int y2d = gemm_op.writes[0];
        // Chain: GEMM out -> in-place bias -> split in; the 2-D
        // intermediate must die inside the chain.
        if (bias_op.reads[0] != y2d || bias_op.writes[0] != y2d)
            return false;
        if (split_op.reads[0] != y2d)
            return false;
        if (!onlyReadWithin(g, y2d, base, base + 2))
            return false;
        q3d_writes.push_back(split_op.writes[0]);
    }
    OpDesc fused;
    fused.tag = OpTag::FusedQkv;
    fused.name = "attn.qkv.fwd";
    fused.sub = SubLayer::AttnLinear;
    fused.reads = {x_id};
    fused.writes = q3d_writes;
    replaceChain(g, i, 9, std::move(fused));
    return true;
}

/**
 * Match [BatchedGemm, Scale, MaskAdd, Softmax, BatchedGemm]: the
 * score GEMM feeding the in-place scale/mask, the softmax, and the
 * context GEMM. Emits FusedAttention reading q/k/v/mask directly.
 */
bool
tryFuseAttention(GraphDef &g, std::size_t i)
{
    if (!tagsAt(g, i,
                {OpTag::BatchedGemm, OpTag::Scale, OpTag::MaskAdd,
                 OpTag::Softmax, OpTag::BatchedGemm}))
        return false;
    const OpDesc &score = g.ops[i];
    const OpDesc &scale = g.ops[i + 1];
    const OpDesc &mask = g.ops[i + 2];
    const OpDesc &softmax = g.ops[i + 3];
    const OpDesc &context = g.ops[i + 4];
    const int scores_id = score.writes[0];
    if (scale.reads[0] != scores_id || scale.writes[0] != scores_id)
        return false;
    if (mask.reads[0] != scores_id || mask.writes[0] != scores_id)
        return false;
    if (softmax.reads[0] != scores_id)
        return false;
    const int probs_id = softmax.writes[0];
    if (context.reads[0] != probs_id)
        return false;
    if (!onlyReadWithin(g, scores_id, i, i + 3) ||
        !onlyReadWithin(g, probs_id, i + 3, i + 4))
        return false;
    OpDesc fused;
    fused.tag = OpTag::FusedAttention;
    fused.name = "attn.fused.fwd";
    fused.sub = SubLayer::AttnBGemm;
    // q3d, k3d, v3d, mask — the values the chain actually consumes.
    fused.reads = {score.reads[0], score.reads[1], context.reads[1],
                   mask.reads[1]};
    fused.writes = context.writes;
    replaceChain(g, i, 5, std::move(fused));
    return true;
}

/** Match [BiasAdd, Gelu] -> FusedBiasGelu (the FC1 epilogue). */
bool
tryFuseBiasGelu(GraphDef &g, std::size_t i)
{
    if (!tagsAt(g, i, {OpTag::BiasAdd, OpTag::Gelu}))
        return false;
    const OpDesc &bias = g.ops[i];
    const OpDesc &gelu = g.ops[i + 1];
    const int pre_id = bias.writes[0];
    if (gelu.reads[0] != pre_id)
        return false;
    if (!onlyReadWithin(g, pre_id, i, i + 1))
        return false;
    OpDesc fused;
    fused.tag = OpTag::FusedBiasGelu;
    fused.name = "bias_gelu.fwd";
    fused.sub = SubLayer::FcGelu;
    fused.reads = {bias.reads[0]};
    fused.writes = gelu.writes;
    fused.param = bias.param;
    replaceChain(g, i, 2, std::move(fused));
    return true;
}

/** Match [Add, LayerNorm] -> FusedResidualLayerNorm. */
bool
tryFuseResidualLn(GraphDef &g, std::size_t i)
{
    if (!tagsAt(g, i, {OpTag::Add, OpTag::LayerNorm}))
        return false;
    const OpDesc &add = g.ops[i];
    const OpDesc &ln = g.ops[i + 1];
    const int sum_id = add.writes[0];
    if (ln.reads[0] != sum_id)
        return false;
    if (!onlyReadWithin(g, sum_id, i, i + 1))
        return false;
    OpDesc fused;
    fused.tag = OpTag::FusedResidualLayerNorm;
    fused.name = "res_ln.fwd";
    fused.sub = SubLayer::DrRcLn;
    fused.reads = add.reads;
    fused.writes = ln.writes;
    fused.param = ln.param;
    replaceChain(g, i, 2, std::move(fused));
    return true;
}

} // namespace

int
fuseEncoderPatterns(GraphDef &g)
{
    int rewritten = 0;
    std::size_t i = 0;
    while (i < g.ops.size()) {
        if (tryFuseQkv(g, i) || tryFuseAttention(g, i) ||
            tryFuseBiasGelu(g, i) || tryFuseResidualLn(g, i)) {
            ++rewritten;
            // Stay at i: the fused op's successor may start a new
            // fusible chain at the same index.
            continue;
        }
        ++i;
    }
    return rewritten;
}

} // namespace graph
} // namespace bertprof
