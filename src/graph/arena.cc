#include "graph/arena.h"

#include <algorithm>

#include "util/logging.h"

namespace bertprof {
namespace graph {

namespace {

struct FreeBlock {
    std::int64_t offset;
    std::int64_t size;
};

std::int64_t
alignUp(std::int64_t v)
{
    return (v + kArenaAlign - 1) / kArenaAlign * kArenaAlign;
}

/** Insert a block keeping the list offset-sorted, merging neighbors. */
void
releaseBlock(std::vector<FreeBlock> &free_list, std::int64_t offset,
             std::int64_t size)
{
    auto it = std::lower_bound(
        free_list.begin(), free_list.end(), offset,
        [](const FreeBlock &b, std::int64_t off) { return b.offset < off; });
    it = free_list.insert(it, FreeBlock{offset, size});
    // Merge with successor.
    auto next = it + 1;
    if (next != free_list.end() && it->offset + it->size == next->offset) {
        it->size += next->size;
        free_list.erase(next);
    }
    // Merge with predecessor.
    if (it != free_list.begin()) {
        auto prev = it - 1;
        if (prev->offset + prev->size == it->offset) {
            prev->size += it->size;
            free_list.erase(it);
        }
    }
}

} // namespace

ArenaPlan
planArena(const std::vector<Interval> &live,
          const std::vector<std::int64_t> &sizes)
{
    BP_REQUIRE(live.size() == sizes.size());
    ArenaPlan plan;
    plan.offsets.assign(live.size(), -1);

    int max_op = 0;
    for (const Interval &iv : live)
        max_op = std::max(max_op, iv.end);

    // Values grouped by def step; frees grouped by end step.
    std::vector<std::vector<int>> defs(
        static_cast<std::size_t>(max_op) + 1);
    std::vector<std::vector<int>> ends(
        static_cast<std::size_t>(max_op) + 1);
    for (std::size_t id = 0; id < live.size(); ++id) {
        if (live[id].start < 0)
            continue; // external or never defined
        BP_REQUIRE(live[id].end > live[id].start);
        defs[static_cast<std::size_t>(live[id].start)].push_back(
            static_cast<int>(id));
        ends[static_cast<std::size_t>(live[id].end - 1)].push_back(
            static_cast<int>(id));
        plan.sumBytes += alignUp(sizes[id]);
    }

    std::vector<FreeBlock> free_list;
    std::int64_t top = 0;

    for (int step = 0; step <= max_op; ++step) {
        // Place this step's definitions, largest first so big tensors
        // get the best shot at an exact-fit block.
        std::vector<int> to_place = defs[static_cast<std::size_t>(step)];
        std::sort(to_place.begin(), to_place.end(), [&](int a, int b) {
            if (sizes[a] != sizes[b])
                return sizes[a] > sizes[b];
            return a < b;
        });
        for (int id : to_place) {
            const std::int64_t need = alignUp(sizes[id]);
            // Best fit: smallest block that fits, lowest offset ties.
            std::size_t best = free_list.size();
            for (std::size_t i = 0; i < free_list.size(); ++i) {
                if (free_list[i].size < need)
                    continue;
                if (best == free_list.size() ||
                    free_list[i].size < free_list[best].size)
                    best = i;
            }
            if (best != free_list.size()) {
                FreeBlock &blk = free_list[best];
                plan.offsets[static_cast<std::size_t>(id)] = blk.offset;
                blk.offset += need;
                blk.size -= need;
                if (blk.size == 0)
                    free_list.erase(free_list.begin() +
                                    static_cast<std::ptrdiff_t>(best));
            } else {
                plan.offsets[static_cast<std::size_t>(id)] = top;
                top += need;
            }
        }
        plan.peakBytes = std::max(plan.peakBytes, top);
        // Return values that die after this step.
        for (int id : ends[static_cast<std::size_t>(step)]) {
            releaseBlock(free_list,
                         plan.offsets[static_cast<std::size_t>(id)],
                         alignUp(sizes[id]));
        }
    }
    return plan;
}

void
Arena::ensure(std::int64_t bytes)
{
    const std::size_t floats =
        static_cast<std::size_t>((bytes + 3) / 4);
    if (storage_.size() < floats)
        storage_.resize(floats);
}

} // namespace graph
} // namespace bertprof
