/**
 * @file
 * Arena buffer-reuse planner: maps per-value live intervals (from
 * graph::computeLiveness) to byte offsets in one backing buffer. Two
 * values share storage whenever their intervals are disjoint; the
 * greedy best-fit assignment keeps the high-water mark well below
 * the sum of all tensor sizes (the no-reuse footprint).
 */

#ifndef BERTPROF_GRAPH_ARENA_H
#define BERTPROF_GRAPH_ARENA_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace bertprof {
namespace graph {

/** Offsets are aligned to this many bytes (cache-line). */
inline constexpr std::int64_t kArenaAlign = 64;

/** Result of planning: one offset per value, plus footprints. */
struct ArenaPlan {
    /** Byte offset per value id; -1 for external / never-live. */
    std::vector<std::int64_t> offsets;
    /** High-water mark: the backing buffer size needed. */
    std::int64_t peakBytes = 0;
    /** Sum of all planned (non-external) tensor bytes — the no-reuse
     * footprint the peak is measured against. */
    std::int64_t sumBytes = 0;
};

/**
 * Greedy best-fit planner. Walks ops in schedule order; at each step
 * values whose interval ended are returned to a free list (adjacent
 * blocks merged), then values defined at this step are placed in the
 * smallest free block that fits (ties to the lowest offset), or at
 * the current top when none fits. sizes[id] is the value's bytes
 * (pre-alignment); external values (interval {-1,-1}) are skipped.
 */
ArenaPlan planArena(const std::vector<Interval> &live,
                    const std::vector<std::int64_t> &sizes);

/** The backing buffer a plan executes against. */
class Arena
{
  public:
    /** Grow storage to at least `bytes`; contents unspecified. */
    void ensure(std::int64_t bytes);

    /** Base pointer (valid until the next ensure()). */
    float *base() { return storage_.data(); }

    std::int64_t capacityBytes() const
    {
        return static_cast<std::int64_t>(storage_.size()) *
               static_cast<std::int64_t>(sizeof(float));
    }

  private:
    std::vector<float> storage_;
};

} // namespace graph
} // namespace bertprof

#endif // BERTPROF_GRAPH_ARENA_H
