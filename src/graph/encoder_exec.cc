#include "graph/encoder_exec.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "nn/encoder_layer.h"
#include "ops/activation.h"
#include "ops/elementwise.h"
#include "ops/fused.h"
#include "ops/gemm.h"
#include "ops/layernorm.h"
#include "ops/reshape.h"
#include "ops/softmax.h"
#include "runtime/profiler.h"
#include "util/logging.h"

namespace bertprof {
namespace graph {

GraphDef
buildEncoderEvalGraph(std::int64_t d_model, int heads, std::int64_t d_ff,
                      std::int64_t batch, std::int64_t seq,
                      bool per_seq_mask, bool fused)
{
    BP_REQUIRE(heads > 0 && d_model % heads == 0);
    const std::int64_t rows = batch * seq;
    const std::int64_t dh = d_model / heads;
    const std::int64_t bh = batch * heads;

    GraphDef g;
    const int x = g.addValue("x", Shape({rows, d_model}), true);
    const int mask = g.addValue("mask",
                                per_seq_mask ? Shape({batch, seq, seq})
                                             : Shape({seq, seq}),
                                true);

    // Q/K/V projections: GEMM + in-place bias + split-heads each.
    const char *proj[3] = {"wq", "wk", "wv"};
    const std::int64_t proj_param[3] = {kParamWq, kParamWk, kParamWv};
    int qkv3d[3];
    for (int p = 0; p < 3; ++p) {
        const std::string nm = proj[p];
        const int y2d = g.addValue(nm + "2d", Shape({rows, d_model}));
        qkv3d[p] = g.addValue(nm + "3d", Shape({bh, seq, dh}));
        g.addOp(OpTag::Gemm, nm + ".fwd", SubLayer::AttnLinear, {x},
                {y2d}, proj_param[p]);
        g.addOp(OpTag::BiasAdd, nm + ".bias", SubLayer::AttnLinear,
                {y2d}, {y2d}, proj_param[p]);
        g.addOp(OpTag::SplitHeads, nm + ".split", SubLayer::AttnLinear,
                {y2d}, {qkv3d[p]});
    }

    // Score -> scale -> mask -> softmax -> context.
    const int scores = g.addValue("scores", Shape({bh, seq, seq}));
    const int probs = g.addValue("probs", Shape({bh, seq, seq}));
    const int context = g.addValue("context", Shape({bh, seq, dh}));
    g.addOp(OpTag::BatchedGemm, "attn.score.fwd", SubLayer::AttnBGemm,
            {qkv3d[0], qkv3d[1]}, {scores});
    g.addOp(OpTag::Scale, "attn.scale", SubLayer::AttnScaleMaskDrSm,
            {scores}, {scores});
    g.addOp(OpTag::MaskAdd, "attn.mask", SubLayer::AttnScaleMaskDrSm,
            {scores, mask}, {scores});
    g.addOp(OpTag::Softmax, "attn.softmax", SubLayer::AttnScaleMaskDrSm,
            {scores}, {probs});
    g.addOp(OpTag::BatchedGemm, "attn.context.fwd", SubLayer::AttnBGemm,
            {probs, qkv3d[2]}, {context});

    // Output projection + attention-block residual + LN1.
    const int merged = g.addValue("merged", Shape({rows, d_model}));
    const int attn_out = g.addValue("attn_out", Shape({rows, d_model}));
    const int res1 = g.addValue("res1", Shape({rows, d_model}));
    const int normed = g.addValue("normed", Shape({rows, d_model}));
    const int mean1 = g.addValue("mean1", Shape({rows}));
    const int rstd1 = g.addValue("rstd1", Shape({rows}));
    g.addOp(OpTag::MergeHeads, "attn.merge", SubLayer::AttnBGemm,
            {context}, {merged});
    g.addOp(OpTag::Gemm, "wo.fwd", SubLayer::AttnLinear, {merged},
            {attn_out}, kParamWo);
    g.addOp(OpTag::BiasAdd, "wo.bias", SubLayer::AttnLinear, {attn_out},
            {attn_out}, kParamWo);
    g.addOp(OpTag::Add, "attn.block.residual", SubLayer::DrRcLn,
            {attn_out, x}, {res1});
    g.addOp(OpTag::LayerNorm, "ln1.fwd", SubLayer::DrRcLn, {res1},
            {normed, mean1, rstd1}, kParamLn1);

    // Feed-forward + residual + LN2 (writes the external output).
    const int pre = g.addValue("fc1_out", Shape({rows, d_ff}));
    const int act = g.addValue("gelu_out", Shape({rows, d_ff}));
    const int ff1 = g.addValue("fc2_out", Shape({rows, d_model}));
    const int res2 = g.addValue("res2", Shape({rows, d_model}));
    const int out = g.addValue("out", Shape({rows, d_model}), true);
    const int mean2 = g.addValue("mean2", Shape({rows}));
    const int rstd2 = g.addValue("rstd2", Shape({rows}));
    g.addOp(OpTag::Gemm, "fc1.fwd", SubLayer::FcGemm, {normed}, {pre},
            kParamFc1);
    g.addOp(OpTag::BiasAdd, "fc1.bias", SubLayer::FcGemm, {pre}, {pre},
            kParamFc1);
    g.addOp(OpTag::Gelu, "gelu.fwd", SubLayer::FcGelu, {pre}, {act});
    g.addOp(OpTag::Gemm, "fc2.fwd", SubLayer::FcGemm, {act}, {ff1},
            kParamFc2);
    g.addOp(OpTag::BiasAdd, "fc2.bias", SubLayer::FcGemm, {ff1}, {ff1},
            kParamFc2);
    g.addOp(OpTag::Add, "ff.block.residual", SubLayer::DrRcLn,
            {ff1, normed}, {res2});
    g.addOp(OpTag::LayerNorm, "ln2.fwd", SubLayer::DrRcLn, {res2},
            {out, mean2, rstd2}, kParamLn2);

    if (fused)
        fuseEncoderPatterns(g);
    return g;
}

namespace {

Linear &
paramLinear(EncoderLayer &layer, std::int64_t param)
{
    switch (param) {
    case kParamWq:
        return layer.attn().wq();
    case kParamWk:
        return layer.attn().wk();
    case kParamWv:
        return layer.attn().wv();
    case kParamWo:
        return layer.attn().wo();
    case kParamFc1:
        return layer.ff().fc1();
    case kParamFc2:
        return layer.ff().fc2();
    default:
        BP_PANIC() << "op does not reference a Linear parameter";
        std::abort();
    }
}

LayerNorm &
paramLayerNorm(EncoderLayer &layer, std::int64_t param)
{
    switch (param) {
    case kParamLn1:
        return layer.ln1();
    case kParamLn2:
        return layer.ln2();
    default:
        BP_PANIC() << "op does not reference a LayerNorm parameter";
        std::abort();
    }
}

OpKind
opKindFor(OpTag tag)
{
    switch (tag) {
    case OpTag::Gemm:
    case OpTag::FusedQkv:
        return OpKind::Gemm;
    case OpTag::BatchedGemm:
    case OpTag::FusedAttention:
        return OpKind::BatchedGemm;
    case OpTag::Softmax:
    case OpTag::LayerNorm:
    case OpTag::FusedResidualLayerNorm:
        return OpKind::Reduction;
    default:
        return OpKind::Elementwise;
    }
}

} // namespace

const EncoderExec::CachedPlan &
EncoderExec::planFor(EncoderLayer &layer, std::int64_t batch,
                     std::int64_t seq, bool per_seq_mask)
{
    std::ostringstream key;
    key << static_cast<const void *>(&layer) << ':' << batch << 'x' << seq
        << (per_seq_mask ? ":ps" : ":bc");
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key.str());
    if (it == cache_.end()) {
        auto plan = std::make_unique<CachedPlan>();
        plan->def = buildEncoderEvalGraph(
            layer.attn().dModel(), layer.attn().numHeads(),
            layer.ff().fc1().outDim(), batch, seq, per_seq_mask,
            /*fused=*/true);
        std::vector<std::int64_t> sizes(plan->def.values.size(), 0);
        for (std::size_t id = 0; id < plan->def.values.size(); ++id) {
            sizes[id] = plan->def.values[id].shape.numel() *
                        static_cast<std::int64_t>(sizeof(float));
            if (plan->def.values[id].external &&
                plan->def.values[id].name == "out")
                plan->out_id = static_cast<int>(id);
        }
        BP_REQUIRE(plan->out_id >= 0);
        plan->plan = planArena(computeLiveness(plan->def), sizes);
        it = cache_.emplace(key.str(), std::move(plan)).first;
    }
    return *it->second;
}

Tensor
EncoderExec::forwardEval(EncoderLayer &layer, const Tensor &x,
                         const Tensor &mask, std::int64_t batch,
                         std::int64_t seq)
{
    const std::int64_t d_model = layer.attn().dModel();
    const int heads = layer.attn().numHeads();
    const std::int64_t dh = d_model / heads;
    const bool per_seq_mask = mask.shape() == Shape({batch, seq, seq});
    BP_REQUIRE(per_seq_mask || mask.shape() == Shape({seq, seq}));
    BP_REQUIRE(x.shape() == Shape({batch * seq, d_model}));

    const CachedPlan &cached = planFor(layer, batch, seq, per_seq_mask);
    const GraphDef &g = cached.def;

    // Record footprints: peak is a process-lifetime high-water mark
    // (exported via the serve metrics gauge), sum is per-plan.
    std::int64_t prev = peakBytes_.load(std::memory_order_relaxed);
    while (prev < cached.plan.peakBytes &&
           !peakBytes_.compare_exchange_weak(prev, cached.plan.peakBytes,
                                             std::memory_order_relaxed)) {
    }
    lastSumBytes_.store(cached.plan.sumBytes, std::memory_order_relaxed);

    // Bind values: arena views for planned intermediates, the caller's
    // tensors for externals, an owned tensor for the output.
    Arena arena;
    arena.ensure(cached.plan.peakBytes);
    Tensor result(g.values[static_cast<std::size_t>(cached.out_id)].shape);
    std::vector<Tensor> slots(g.values.size());
    std::vector<Tensor *> bind(g.values.size(), nullptr);
    for (std::size_t id = 0; id < g.values.size(); ++id) {
        const ValueDesc &v = g.values[id];
        if (v.external)
            continue;
        const std::int64_t off = cached.plan.offsets[id];
        if (off < 0)
            continue; // dead value (fused away)
        slots[id] = Tensor::borrow(arena.base() + off / 4, v.shape);
        bind[id] = &slots[id];
    }
    bind[static_cast<std::size_t>(cached.out_id)] = &result;
    // x and mask are read-only by construction of the graph (no op
    // lists an external input among its writes); the const_cast never
    // feeds a mutating path.
    bind[0] = const_cast<Tensor *>(&x);
    bind[1] = const_cast<Tensor *>(&mask);

    Profiler *prof = layer.runtime()->profiler;
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    for (const OpDesc &op : g.ops) {
        for (int w : op.writes)
            BP_REQUIRE(w != 0 && w != 1); // never write an input
        ScopedKernel kern(prof, op.name, opKindFor(op.tag), Phase::Fwd,
                          LayerScope::Transformer, op.sub);
        switch (op.tag) {
        case OpTag::Gemm: {
            Linear &lin = paramLinear(layer, op.param);
            kern.setStats(gemm(*bind[op.reads[0]], lin.weight().value,
                               *bind[op.writes[0]], false, true));
            break;
        }
        case OpTag::BiasAdd: {
            Linear &lin = paramLinear(layer, op.param);
            kern.setStats(biasForward(*bind[op.reads[0]],
                                      lin.bias().value,
                                      *bind[op.writes[0]]));
            break;
        }
        case OpTag::SplitHeads:
            kern.setStats(splitHeads(*bind[op.reads[0]], batch, seq,
                                     heads, *bind[op.writes[0]]));
            break;
        case OpTag::MergeHeads:
            kern.setStats(mergeHeads(*bind[op.reads[0]], batch, seq,
                                     heads, *bind[op.writes[0]]));
            break;
        case OpTag::BatchedGemm: {
            // First B-GEMM (writes scores) is Q K^T; the second
            // (reads probs) is probs V.
            const bool trans_b = op.writes[0] != op.reads[0] &&
                                 op.name == "attn.score.fwd";
            kern.setStats(batchedGemm(*bind[op.reads[0]],
                                      *bind[op.reads[1]],
                                      *bind[op.writes[0]], false,
                                      trans_b));
            break;
        }
        case OpTag::Scale:
            kern.setStats(scaleForward(*bind[op.reads[0]], scale,
                                       *bind[op.writes[0]]));
            break;
        case OpTag::MaskAdd:
            if (per_seq_mask) {
                kern.setStats(batchMaskAddForward(*bind[op.reads[0]],
                                                  *bind[op.reads[1]],
                                                  heads,
                                                  *bind[op.writes[0]]));
            } else {
                kern.setStats(maskAddForward(*bind[op.reads[0]],
                                             *bind[op.reads[1]],
                                             *bind[op.writes[0]]));
            }
            break;
        case OpTag::Softmax:
            kern.setStats(softmaxForward(*bind[op.reads[0]],
                                         *bind[op.writes[0]]));
            break;
        case OpTag::Gelu:
            kern.setStats(geluForward(*bind[op.reads[0]],
                                      *bind[op.writes[0]]));
            break;
        case OpTag::Add:
            kern.setStats(addForward(*bind[op.reads[0]],
                                     *bind[op.reads[1]],
                                     *bind[op.writes[0]]));
            break;
        case OpTag::LayerNorm: {
            LayerNorm &ln = paramLayerNorm(layer, op.param);
            kern.setStats(layerNormForward(
                *bind[op.reads[0]], ln.gamma().value, ln.beta().value,
                *bind[op.writes[0]], *bind[op.writes[1]],
                *bind[op.writes[2]]));
            break;
        }
        case OpTag::FusedQkv: {
            MultiHeadAttention &attn = layer.attn();
            kern.setStats(fusedQkvForward(
                *bind[op.reads[0]], attn.wq().weight().value,
                attn.wk().weight().value, attn.wv().weight().value,
                attn.wq().bias().value, attn.wk().bias().value,
                attn.wv().bias().value, batch, seq, heads,
                *bind[op.writes[0]], *bind[op.writes[1]],
                *bind[op.writes[2]]));
            break;
        }
        case OpTag::FusedAttention:
            kern.setStats(fusedAttentionEvalForward(
                *bind[op.reads[0]], *bind[op.reads[1]],
                *bind[op.reads[2]], *bind[op.reads[3]], heads, scale,
                *bind[op.writes[0]]));
            break;
        case OpTag::FusedBiasGelu: {
            Linear &lin = paramLinear(layer, op.param);
            kern.setStats(fusedBiasGeluForward(*bind[op.reads[0]],
                                               lin.bias().value,
                                               *bind[op.writes[0]]));
            break;
        }
        case OpTag::FusedResidualLayerNorm: {
            LayerNorm &ln = paramLayerNorm(layer, op.param);
            kern.setStats(fusedResidualLayerNormForward(
                *bind[op.reads[0]], *bind[op.reads[1]],
                ln.gamma().value, ln.beta().value, *bind[op.writes[0]],
                *bind[op.writes[1]], *bind[op.writes[2]]));
            break;
        }
        }
    }
    return result;
}

void
EncoderExec::clearPlanCache()
{
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    peakBytes_.store(0, std::memory_order_relaxed);
    lastSumBytes_.store(0, std::memory_order_relaxed);
}

EncoderExec *
ensureEncoderGraphExecInstalled()
{
    static EncoderExec exec;
    if (encoderGraphExec() != &exec)
        installEncoderGraphExec(&exec);
    return &exec;
}

} // namespace graph
} // namespace bertprof
