/**
 * @file
 * Graph-level IR for the encoder-layer executor. Ops declare which
 * values they read and write; everything downstream is derived from
 * that declaration:
 *
 *  - fuseEncoderPatterns() pattern-matches fusible chains (bias+GeLU,
 *    residual+LayerNorm, score->softmax->context, the Q/K/V
 *    projection trio) and rewrites them into single fused ops. Fusion
 *    is a *scheduling decision*: the same builder output runs fused
 *    or unfused depending on whether the pass is applied.
 *  - computeLiveness() turns the scheduled op list into per-value
 *    [def, last_use+1) intervals. The +1 is the conservative rule
 *    that keeps an op's inputs alive while it runs, so its outputs
 *    can never be assigned storage that aliases them.
 *  - The arena planner (graph/arena.h) maps intervals to offsets in
 *    one backing buffer with reuse.
 *
 * The IR is declarative (no function pointers); graph/encoder_exec.cc
 * interprets it against an EncoderLayer's parameters. That keeps the
 * passes pure and unit-testable.
 */

#ifndef BERTPROF_GRAPH_GRAPH_H
#define BERTPROF_GRAPH_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "trace/taxonomy.h"

namespace bertprof {
namespace graph {

/** What an op computes; the interpreter switches on this. */
enum class OpTag {
    Gemm,        ///< y = x W^T against a layer parameter
    BiasAdd,     ///< y += b (in-place: reads and writes the value)
    SplitHeads,  ///< [B*n, H] -> [B*h, n, H/h]
    MergeHeads,  ///< inverse of SplitHeads
    BatchedGemm, ///< attention score / context B*h GEMMs
    Scale,       ///< scores *= 1/sqrt(d/h) (in-place)
    MaskAdd,     ///< scores += additive mask (in-place)
    Softmax,     ///< row softmax
    Gelu,        ///< elementwise GeLU
    Add,         ///< residual add
    LayerNorm,   ///< row layernorm, writes y + mean + rstd
    // Fused ops, produced only by fuseEncoderPatterns().
    FusedQkv,              ///< one packed GEMM + bias/split epilogue
    FusedAttention,        ///< score->softmax->context, no probs tensor
    FusedBiasGelu,         ///< bias + GeLU in one pass
    FusedResidualLayerNorm ///< add + layernorm in one pass
};

/** Which layer parameter an op consumes (resolved by the executor). */
enum ParamRef : std::int64_t {
    kParamNone = -1,
    kParamWq = 0,
    kParamWk,
    kParamWv,
    kParamWo,
    kParamFc1,
    kParamFc2,
    kParamLn1,
    kParamLn2,
};

/** One scheduled op: tag + declared reads/writes + metadata. */
struct OpDesc {
    OpTag tag;
    std::string name;        ///< profiler kernel name
    SubLayer sub;            ///< profiler sub-layer attribution
    std::vector<int> reads;  ///< value ids consumed
    std::vector<int> writes; ///< value ids produced (may repeat reads
                             ///< for in-place ops)
    std::int64_t param = kParamNone; ///< ParamRef, if any
};

/** One value: a tensor flowing between ops. */
struct ValueDesc {
    std::string name;
    Shape shape;
    bool external = false; ///< graph input/output; never arena-backed
};

/** A scheduled graph: values plus ops in execution order. */
struct GraphDef {
    std::vector<ValueDesc> values;
    std::vector<OpDesc> ops;

    int addValue(const std::string &name, Shape shape,
                 bool external = false);
    OpDesc &addOp(OpTag tag, const std::string &name, SubLayer sub,
                  std::vector<int> reads, std::vector<int> writes,
                  std::int64_t param = kParamNone);
};

/**
 * Per-value live interval in op indices: [start, end) with the
 * conservative end = last_use + 1. Values never defined (graph
 * inputs) start at -1; external values get {-1, -1} and are skipped
 * by the arena planner.
 */
struct Interval {
    int start = -1;
    int end = -1;
};

std::vector<Interval> computeLiveness(const GraphDef &g);

/**
 * Pattern-match and rewrite the four encoder fusion chains:
 *
 *  1. [Gemm, BiasAdd, SplitHeads] x3 off one input -> FusedQkv
 *  2. [BatchedGemm, Scale, MaskAdd, Softmax, BatchedGemm]
 *       -> FusedAttention
 *  3. [BiasAdd, Gelu] -> FusedBiasGelu
 *  4. [Add, LayerNorm] -> FusedResidualLayerNorm
 *
 * A chain only matches when the ops are adjacent in schedule order
 * and every intermediate value is consumed solely inside the chain
 * (checked against the whole op list), so the rewrite can never drop
 * a value some later op still needs. Returns the number of chains
 * rewritten.
 */
int fuseEncoderPatterns(GraphDef &g);

/**
 * True when no op outside [lo, hi] reads value id — the safety check
 * fusion uses before erasing an intermediate. Exposed for tests.
 */
bool onlyReadWithin(const GraphDef &g, int id, std::size_t lo,
                    std::size_t hi);

} // namespace graph
} // namespace bertprof

#endif // BERTPROF_GRAPH_GRAPH_H
