#include "nn/bert_classifier.h"

#include "ops/activation.h"
#include "ops/cross_entropy.h"
#include "ops/embedding.h"
#include "util/logging.h"

namespace bertprof {

BertClassifier::BertClassifier(const BertConfig &config, NnRuntime *rt)
    : config_(config), rt_(rt), model_(config, rt),
      pooler_("pooler", config.dModel, config.dModel, rt,
              LayerScope::Output, SubLayer::OutputOps),
      classifier_("classifier", config.dModel, config.numClasses, rt,
                  LayerScope::Output, SubLayer::OutputOps)
{
    BP_REQUIRE(config_.numClasses >= 2);
}

void
BertClassifier::initialize(Rng &rng, float stddev)
{
    model_.initialize(rng, stddev);
    pooler_.initialize(rng, stddev);
    classifier_.initialize(rng, stddev);
}

Tensor
BertClassifier::forwardLogits(const ClassificationBatch &batch,
                              Tensor &cls)
{
    Tensor hidden = model_.forward(batch.tokenIds, batch.segmentIds);
    std::vector<std::int64_t> cls_positions(
        static_cast<std::size_t>(config_.batch));
    for (std::int64_t b = 0; b < config_.batch; ++b)
        cls_positions[static_cast<std::size_t>(b)] = b * config_.seqLen;
    cls = Tensor(Shape({config_.batch, config_.dModel}));
    {
        ScopedKernel k(rt_->profiler, "cls.gather", OpKind::Gather,
                       Phase::Fwd, LayerScope::Output,
                       SubLayer::OutputOps);
        k.setStats(embeddingForward(hidden, cls_positions, cls));
    }
    Tensor pooled_pre = pooler_.forward(cls);
    savedPooled_ = Tensor(pooled_pre.shape());
    {
        ScopedKernel k(rt_->profiler, "pooler.tanh", OpKind::Elementwise,
                       Phase::Fwd, LayerScope::Output,
                       SubLayer::OutputOps);
        k.setStats(tanhForward(pooled_pre, savedPooled_));
    }
    return classifier_.forward(savedPooled_);
}

ClassificationStepResult
BertClassifier::forwardBackward(const ClassificationBatch &batch)
{
    BP_REQUIRE(static_cast<std::int64_t>(batch.labels.size()) ==
               config_.batch);
    Tensor cls;
    Tensor logits = forwardLogits(batch, cls);

    ClassificationStepResult result;
    Tensor dlogits(logits.shape());
    {
        ScopedKernel k(rt_->profiler, "classifier.loss",
                       OpKind::Reduction, Phase::Fwd, LayerScope::Output,
                       SubLayer::OutputOps);
        auto ce = softmaxCrossEntropy(logits, batch.labels, dlogits);
        k.setStats(ce.stats);
        result.loss = ce.loss;
    }
    std::int64_t correct = 0;
    for (std::int64_t b = 0; b < config_.batch; ++b) {
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < config_.numClasses; ++c)
            if (logits.at(b, c) > logits.at(b, best))
                best = c;
        correct += best == batch.labels[static_cast<std::size_t>(b)];
    }
    result.accuracy = static_cast<double>(correct) /
                      static_cast<double>(config_.batch);

    // Backward through the head and the encoder.
    Tensor dpooled = classifier_.backward(dlogits);
    Tensor dpooled_pre(dpooled.shape());
    {
        ScopedKernel k(rt_->profiler, "pooler.tanh.bwd",
                       OpKind::Elementwise, Phase::Bwd, LayerScope::Output,
                       SubLayer::OutputOps);
        k.setStats(tanhBackward(savedPooled_, dpooled, dpooled_pre));
    }
    Tensor dcls = pooler_.backward(dpooled_pre);

    Tensor dhidden(Shape({config_.tokens(), config_.dModel}));
    dhidden.fill(0.0f);
    std::vector<std::int64_t> cls_positions(
        static_cast<std::size_t>(config_.batch));
    for (std::int64_t b = 0; b < config_.batch; ++b)
        cls_positions[static_cast<std::size_t>(b)] = b * config_.seqLen;
    {
        ScopedKernel k(rt_->profiler, "cls.scatter", OpKind::Gather,
                       Phase::Bwd, LayerScope::Output,
                       SubLayer::OutputOps);
        k.setStats(embeddingBackward(dcls, cls_positions, dhidden));
    }
    model_.backward(dhidden);
    return result;
}

Tensor
BertClassifier::forwardLogitsEval(
    const std::vector<std::int64_t> &token_ids,
    const std::vector<std::int64_t> &segment_ids, std::int64_t batch,
    std::int64_t seq, const std::vector<std::int64_t> &lengths)
{
    BP_REQUIRE(!isTraining());
    Tensor hidden =
        model_.forwardEval(token_ids, segment_ids, batch, seq, lengths);
    std::vector<std::int64_t> cls_positions(
        static_cast<std::size_t>(batch));
    for (std::int64_t b = 0; b < batch; ++b)
        cls_positions[static_cast<std::size_t>(b)] = b * seq;
    Tensor cls(Shape({batch, config_.dModel}));
    {
        ScopedKernel k(rt_->profiler, "cls.gather", OpKind::Gather,
                       Phase::Fwd, LayerScope::Output,
                       SubLayer::OutputOps);
        k.setStats(embeddingForward(hidden, cls_positions, cls));
    }
    Tensor pooled_pre = pooler_.forward(cls);
    Tensor pooled(pooled_pre.shape());
    {
        ScopedKernel k(rt_->profiler, "pooler.tanh", OpKind::Elementwise,
                       Phase::Fwd, LayerScope::Output,
                       SubLayer::OutputOps);
        k.setStats(tanhForward(pooled_pre, pooled));
    }
    return classifier_.forward(pooled);
}

std::vector<std::int64_t>
BertClassifier::predict(const ClassificationBatch &batch)
{
    Tensor cls;
    Tensor logits = forwardLogits(batch, cls);
    std::vector<std::int64_t> predictions(
        static_cast<std::size_t>(config_.batch));
    for (std::int64_t b = 0; b < config_.batch; ++b) {
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < config_.numClasses; ++c)
            if (logits.at(b, c) > logits.at(b, best))
                best = c;
        predictions[static_cast<std::size_t>(b)] = best;
    }
    return predictions;
}

void
BertClassifier::collectParameters(std::vector<Parameter *> &out)
{
    model_.collectParameters(out);
    pooler_.collectParameters(out);
    classifier_.collectParameters(out);
}

void
BertClassifier::collectChildren(std::vector<Module *> &out)
{
    out.push_back(&model_);
    out.push_back(&pooler_);
    out.push_back(&classifier_);
}

} // namespace bertprof
