#include "nn/feedforward.h"

#include "ops/activation.h"
#include "ops/fused.h"
#include "runtime/config.h"
#include "util/logging.h"

namespace bertprof {

FeedForward::FeedForward(const std::string &name, std::int64_t d_model,
                         std::int64_t d_ff, NnRuntime *rt, int layer)
    : rt_(rt), layer_(layer),
      fc1_(name + ".fc1", d_model, d_ff, rt, LayerScope::Transformer,
           SubLayer::FcGemm, layer),
      fc2_(name + ".fc2", d_ff, d_model, rt, LayerScope::Transformer,
           SubLayer::FcGemm, layer)
{
}

void
FeedForward::initialize(Rng &rng, float stddev)
{
    fc1_.initialize(rng, stddev);
    fc2_.initialize(rng, stddev);
}

Tensor
FeedForward::forward(const Tensor &x)
{
    const bool training = isTraining();
    if (fusionEnabled()) {
        // FC1 GEMM without its bias epilogue; the bias rides along in
        // the fused bias+GeLU kernel (bitwise vs the unfused pair).
        Tensor pre_gemm = fc1_.forwardGemm(x);
        Tensor activated(pre_gemm.shape());
        if (training) {
            // Backward needs the post-bias pre-activation; the fused
            // kernel materializes it alongside the activation.
            savedPreGelu_ = Tensor(pre_gemm.shape());
            hasSaved_ = true;
        } else {
            savedPreGelu_ = Tensor();
            hasSaved_ = false;
        }
        {
            ScopedKernel k(rt_->profiler, "bias_gelu.fwd",
                           OpKind::Elementwise, Phase::Fwd,
                           LayerScope::Transformer, SubLayer::FcGelu);
            if (training) {
                k.setStats(fusedBiasGeluForwardWithPre(
                    pre_gemm, fc1_.bias().value, savedPreGelu_,
                    activated));
            } else {
                k.setStats(fusedBiasGeluForward(pre_gemm,
                                                fc1_.bias().value,
                                                activated));
            }
        }
        return fc2_.forward(activated);
    }

    Tensor pre = fc1_.forward(x);
    if (training) {
        savedPreGelu_ = pre.clone();
        hasSaved_ = true;
    } else {
        savedPreGelu_ = Tensor();
        hasSaved_ = false;
    }
    Tensor activated(pre.shape());
    {
        ScopedKernel k(rt_->profiler, "gelu.fwd", OpKind::Elementwise,
                       Phase::Fwd, LayerScope::Transformer,
                       SubLayer::FcGelu);
        k.setStats(geluForward(pre, activated));
    }
    return fc2_.forward(activated);
}

Tensor
FeedForward::backward(const Tensor &dout)
{
    BP_REQUIRE(hasSaved_);
    Tensor dactivated = fc2_.backward(dout);
    Tensor dpre(dactivated.shape());
    {
        ScopedKernel k(rt_->profiler, "gelu.bwd", OpKind::Elementwise,
                       Phase::Bwd, LayerScope::Transformer,
                       SubLayer::FcGelu);
        k.setStats(geluBackward(savedPreGelu_, dactivated, dpre));
    }
    return fc1_.backward(dpre);
}

void
FeedForward::collectParameters(std::vector<Parameter *> &out)
{
    fc1_.collectParameters(out);
    fc2_.collectParameters(out);
}

void
FeedForward::collectChildren(std::vector<Module *> &out)
{
    out.push_back(&fc1_);
    out.push_back(&fc2_);
}

} // namespace bertprof
