#include "nn/feedforward.h"

#include "ops/activation.h"
#include "util/logging.h"

namespace bertprof {

FeedForward::FeedForward(const std::string &name, std::int64_t d_model,
                         std::int64_t d_ff, NnRuntime *rt, int layer)
    : rt_(rt), layer_(layer),
      fc1_(name + ".fc1", d_model, d_ff, rt, LayerScope::Transformer,
           SubLayer::FcGemm, layer),
      fc2_(name + ".fc2", d_ff, d_model, rt, LayerScope::Transformer,
           SubLayer::FcGemm, layer)
{
}

void
FeedForward::initialize(Rng &rng, float stddev)
{
    fc1_.initialize(rng, stddev);
    fc2_.initialize(rng, stddev);
}

Tensor
FeedForward::forward(const Tensor &x)
{
    Tensor pre = fc1_.forward(x);
    if (isTraining()) {
        savedPreGelu_ = pre.clone();
        hasSaved_ = true;
    } else {
        savedPreGelu_ = Tensor();
        hasSaved_ = false;
    }
    Tensor activated(pre.shape());
    {
        ScopedKernel k(rt_->profiler, "gelu.fwd", OpKind::Elementwise,
                       Phase::Fwd, LayerScope::Transformer,
                       SubLayer::FcGelu);
        k.setStats(geluForward(pre, activated));
    }
    return fc2_.forward(activated);
}

Tensor
FeedForward::backward(const Tensor &dout)
{
    BP_REQUIRE(hasSaved_);
    Tensor dactivated = fc2_.backward(dout);
    Tensor dpre(dactivated.shape());
    {
        ScopedKernel k(rt_->profiler, "gelu.bwd", OpKind::Elementwise,
                       Phase::Bwd, LayerScope::Transformer,
                       SubLayer::FcGelu);
        k.setStats(geluBackward(savedPreGelu_, dactivated, dpre));
    }
    return fc1_.backward(dpre);
}

void
FeedForward::collectParameters(std::vector<Parameter *> &out)
{
    fc1_.collectParameters(out);
    fc2_.collectParameters(out);
}

void
FeedForward::collectChildren(std::vector<Module *> &out)
{
    out.push_back(&fc1_);
    out.push_back(&fc2_);
}

} // namespace bertprof
