#include "nn/attention.h"

#include <cmath>

#include "ops/dropout.h"
#include "ops/elementwise.h"
#include "ops/fused.h"
#include "ops/gemm.h"
#include "ops/reshape.h"
#include "ops/softmax.h"
#include "runtime/config.h"
#include "util/logging.h"

namespace bertprof {

MultiHeadAttention::MultiHeadAttention(const std::string &name,
                                       std::int64_t d_model, int num_heads,
                                       NnRuntime *rt, int layer)
    : dModel_(d_model), numHeads_(num_heads), rt_(rt), layer_(layer),
      wq_(name + ".wq", d_model, d_model, rt, LayerScope::Transformer,
          SubLayer::AttnLinear, layer),
      wk_(name + ".wk", d_model, d_model, rt, LayerScope::Transformer,
          SubLayer::AttnLinear, layer),
      wv_(name + ".wv", d_model, d_model, rt, LayerScope::Transformer,
          SubLayer::AttnLinear, layer),
      wo_(name + ".wo", d_model, d_model, rt, LayerScope::Transformer,
          SubLayer::AttnLinear, layer)
{
    BP_REQUIRE(d_model % num_heads == 0);
}

void
MultiHeadAttention::initialize(Rng &rng, float stddev)
{
    wq_.initialize(rng, stddev);
    wk_.initialize(rng, stddev);
    wv_.initialize(rng, stddev);
    wo_.initialize(rng, stddev);
}

Tensor
MultiHeadAttention::forward(const Tensor &x, const Tensor &mask,
                            std::int64_t batch, std::int64_t seq)
{
    BP_REQUIRE(x.shape().rank() == 2 && x.shape().dim(1) == dModel_);
    BP_REQUIRE(x.shape().dim(0) == batch * seq);
    const bool per_sequence_mask =
        mask.shape() == Shape({batch, seq, seq});
    BP_REQUIRE(per_sequence_mask || mask.shape() == Shape({seq, seq}));
    const bool training = isTraining();
    batch_ = training ? batch : 0;
    seq_ = training ? seq : 0;
    const std::int64_t dh = dModel_ / numHeads_;
    const std::int64_t bh = batch * numHeads_;

    const bool fused = fusionEnabled();
    usedFusedQkv_ = fused && training;

    Tensor q3d(Shape({bh, seq, dh}));
    Tensor k3d(Shape({bh, seq, dh}));
    Tensor v3d(Shape({bh, seq, dh}));
    if (fused) {
        // Single packed GEMM over [Wq; Wk; Wv] with a fused bias +
        // split-heads epilogue (Fig. 12b's QKV fusion, for real).
        if (training)
            xSaved_ = x.clone();
        else
            xSaved_ = Tensor();
        ScopedKernel kern(rt_->profiler, "attn.qkv.fwd", OpKind::Gemm,
                          Phase::Fwd, LayerScope::Transformer,
                          SubLayer::AttnLinear);
        kern.setStats(fusedQkvForward(
            x, wq_.weight().value, wk_.weight().value, wv_.weight().value,
            wq_.bias().value, wk_.bias().value, wv_.bias().value, batch,
            seq, numHeads_, q3d, k3d, v3d));
    } else {
        xSaved_ = Tensor();
        // Linear projections (the paper's "Linear" GEMMs).
        Tensor q = wq_.forward(x);
        Tensor k = wk_.forward(x);
        Tensor v = wv_.forward(x);

        // Rearrange into per-head batches for the B*h batched GEMM.
        splitHeads(q, batch, seq, numHeads_, q3d);
        splitHeads(k, batch, seq, numHeads_, k3d);
        splitHeads(v, batch, seq, numHeads_, v3d);
    }

    if (fused && !training) {
        // Eval-only fused attention: score -> softmax -> context in
        // one pass per query row; the [B*h, n, n] scores/probs
        // tensors are never materialized.
        const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
        Tensor context(Shape({bh, seq, dh}));
        {
            ScopedKernel kern(rt_->profiler, "attn.fused.fwd",
                              OpKind::BatchedGemm, Phase::Fwd,
                              LayerScope::Transformer,
                              SubLayer::AttnBGemm);
            kern.setStats(fusedAttentionEvalForward(
                q3d, k3d, v3d, mask, numHeads_, scale, context));
        }
        Tensor merged(Shape({batch * seq, dModel_}));
        mergeHeads(context, batch, seq, numHeads_, merged);
        q3d_ = Tensor();
        k3d_ = Tensor();
        v3d_ = Tensor();
        probs_ = Tensor();
        probsDropped_ = Tensor();
        dropMask_ = Tensor();
        return wo_.forward(merged);
    }

    // Attention scores: B*h GEMMs of n x n x d/h (Table 2b row 2).
    Tensor scores(Shape({bh, seq, seq}));
    {
        ScopedKernel kern(rt_->profiler, "attn.score.fwd",
                          OpKind::BatchedGemm, Phase::Fwd,
                          LayerScope::Transformer, SubLayer::AttnBGemm);
        kern.setStats(batchedGemm(q3d, k3d, scores, false, true));
    }

    // Scale, mask, softmax, dropout — each its own kernel, as in the
    // paper's Scale+Mask+DR+SM group.
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
    {
        ScopedKernel kern(rt_->profiler, "attn.scale", OpKind::Elementwise,
                          Phase::Fwd, LayerScope::Transformer,
                          SubLayer::AttnScaleMaskDrSm);
        kern.setStats(scaleForward(scores, scale, scores));
    }
    {
        ScopedKernel kern(rt_->profiler, "attn.mask", OpKind::Elementwise,
                          Phase::Fwd, LayerScope::Transformer,
                          SubLayer::AttnScaleMaskDrSm);
        if (per_sequence_mask) {
            kern.setStats(
                batchMaskAddForward(scores, mask, numHeads_, scores));
        } else {
            kern.setStats(maskAddForward(scores, mask, scores));
        }
    }
    Tensor probs(scores.shape());
    {
        ScopedKernel kern(rt_->profiler, "attn.softmax", OpKind::Reduction,
                          Phase::Fwd, LayerScope::Transformer,
                          SubLayer::AttnScaleMaskDrSm);
        kern.setStats(softmaxForward(scores, probs));
    }
    // Eval mode: dropout is an exact identity — no RNG draw, no mask
    // allocation — and the context GEMM reads the softmax output
    // directly. Training draws the mask and keeps it for backward.
    const Tensor *context_in = &probs;
    if (training) {
        probsDropped_ = Tensor(probs.shape());
        dropMask_ = Tensor(probs.shape());
        ScopedKernel kern(rt_->profiler, "attn.dropout",
                          OpKind::Elementwise, Phase::Fwd,
                          LayerScope::Transformer,
                          SubLayer::AttnScaleMaskDrSm);
        kern.setStats(dropoutForward(probs, rt_->effectiveDropout(),
                                     rt_->rng, probsDropped_, dropMask_));
        context_in = &probsDropped_;
    }

    // Attention context: B*h GEMMs (Table 2b row 3).
    Tensor context(Shape({bh, seq, dh}));
    {
        ScopedKernel kern(rt_->profiler, "attn.context.fwd",
                          OpKind::BatchedGemm, Phase::Fwd,
                          LayerScope::Transformer, SubLayer::AttnBGemm);
        kern.setStats(batchedGemm(*context_in, v3d, context));
    }

    Tensor merged(Shape({batch * seq, dModel_}));
    mergeHeads(context, batch, seq, numHeads_, merged);

    if (training) {
        q3d_ = std::move(q3d);
        k3d_ = std::move(k3d);
        v3d_ = std::move(v3d);
        probs_ = std::move(probs);
    } else {
        q3d_ = Tensor();
        k3d_ = Tensor();
        v3d_ = Tensor();
        probs_ = Tensor();
        probsDropped_ = Tensor();
        dropMask_ = Tensor();
    }

    // Output projection (the fourth "Linear" GEMM).
    return wo_.forward(merged);
}

Tensor
MultiHeadAttention::backward(const Tensor &dout)
{
    BP_REQUIRE(batch_ > 0);
    const std::int64_t dh = dModel_ / numHeads_;
    const std::int64_t bh = batch_ * numHeads_;

    Tensor dmerged = wo_.backward(dout);
    Tensor dcontext(Shape({bh, seq_, dh}));
    splitHeads(dmerged, batch_, seq_, numHeads_, dcontext);

    // Context B-GEMM grads.
    Tensor dprobs_dropped(Shape({bh, seq_, seq_}));
    Tensor dv3d(Shape({bh, seq_, dh}));
    {
        ScopedKernel kern(rt_->profiler, "attn.context.dgrad_a",
                          OpKind::BatchedGemm, Phase::Bwd,
                          LayerScope::Transformer, SubLayer::AttnBGemm);
        kern.setStats(batchedGemm(dcontext, v3d_, dprobs_dropped, false,
                                  true));
    }
    {
        ScopedKernel kern(rt_->profiler, "attn.context.dgrad_v",
                          OpKind::BatchedGemm, Phase::Bwd,
                          LayerScope::Transformer, SubLayer::AttnBGemm);
        kern.setStats(batchedGemm(probsDropped_, dcontext, dv3d, true,
                                  false));
    }

    // Dropout, softmax, scale backward (mask add is pass-through).
    Tensor dprobs(dprobs_dropped.shape());
    {
        ScopedKernel kern(rt_->profiler, "attn.dropout.bwd",
                          OpKind::Elementwise, Phase::Bwd,
                          LayerScope::Transformer,
                          SubLayer::AttnScaleMaskDrSm);
        kern.setStats(dropoutBackward(dprobs_dropped, dropMask_, dprobs));
    }
    Tensor dscores(dprobs.shape());
    {
        ScopedKernel kern(rt_->profiler, "attn.softmax.bwd",
                          OpKind::Reduction, Phase::Bwd,
                          LayerScope::Transformer,
                          SubLayer::AttnScaleMaskDrSm);
        kern.setStats(softmaxBackward(probs_, dprobs, dscores));
    }
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
    {
        ScopedKernel kern(rt_->profiler, "attn.scale.bwd",
                          OpKind::Elementwise, Phase::Bwd,
                          LayerScope::Transformer,
                          SubLayer::AttnScaleMaskDrSm);
        kern.setStats(scaleForward(dscores, scale, dscores));
    }

    // Score B-GEMM grads.
    Tensor dq3d(Shape({bh, seq_, dh}));
    Tensor dk3d(Shape({bh, seq_, dh}));
    {
        ScopedKernel kern(rt_->profiler, "attn.score.dgrad_q",
                          OpKind::BatchedGemm, Phase::Bwd,
                          LayerScope::Transformer, SubLayer::AttnBGemm);
        kern.setStats(batchedGemm(dscores, k3d_, dq3d));
    }
    {
        ScopedKernel kern(rt_->profiler, "attn.score.dgrad_k",
                          OpKind::BatchedGemm, Phase::Bwd,
                          LayerScope::Transformer, SubLayer::AttnBGemm);
        kern.setStats(batchedGemm(dscores, q3d_, dk3d, true, false));
    }

    Tensor dq(Shape({batch_ * seq_, dModel_}));
    Tensor dk(Shape({batch_ * seq_, dModel_}));
    Tensor dv(Shape({batch_ * seq_, dModel_}));
    mergeHeads(dq3d, batch_, seq_, numHeads_, dq);
    mergeHeads(dk3d, batch_, seq_, numHeads_, dk);
    mergeHeads(dv3d, batch_, seq_, numHeads_, dv);

    if (usedFusedQkv_) {
        // Single concatenated-weight backward: one k=3H dgrad GEMM
        // and one wgrad GEMM over dqkv [T, 3H]; weight/bias grads are
        // bitwise vs three Linear backwards, dx is tolerance-only.
        Tensor dwq(wq_.weight().value.shape());
        Tensor dwk(wk_.weight().value.shape());
        Tensor dwv(wv_.weight().value.shape());
        Tensor dbq(wq_.bias().value.shape());
        Tensor dbk(wk_.bias().value.shape());
        Tensor dbv(wv_.bias().value.shape());
        Tensor dx(xSaved_.shape());
        {
            ScopedKernel kern(rt_->profiler, "attn.qkv.bwd", OpKind::Gemm,
                              Phase::Bwd, LayerScope::Transformer,
                              SubLayer::AttnLinear);
            kern.setStats(fusedQkvBackward(
                dq, dk, dv, xSaved_, wq_.weight().value,
                wk_.weight().value, wv_.weight().value, dwq, dwk, dwv,
                dbq, dbk, dbv, dx));
        }
        accumulate(wq_.weight().grad, dwq);
        accumulate(wk_.weight().grad, dwk);
        accumulate(wv_.weight().grad, dwv);
        accumulate(wq_.bias().grad, dbq);
        accumulate(wk_.bias().grad, dbk);
        accumulate(wv_.bias().grad, dbv);
        return dx;
    }

    Tensor dx = wq_.backward(dq);
    accumulate(dx, wk_.backward(dk));
    accumulate(dx, wv_.backward(dv));
    return dx;
}

void
MultiHeadAttention::collectParameters(std::vector<Parameter *> &out)
{
    wq_.collectParameters(out);
    wk_.collectParameters(out);
    wv_.collectParameters(out);
    wo_.collectParameters(out);
}

void
MultiHeadAttention::collectChildren(std::vector<Module *> &out)
{
    out.push_back(&wq_);
    out.push_back(&wk_);
    out.push_back(&wv_);
    out.push_back(&wo_);
}

} // namespace bertprof
