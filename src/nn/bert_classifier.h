/**
 * @file
 * BertClassifier: the fine-tuning counterpart of BertPretrainer — a
 * BERT encoder with a sequence-classification head (pooler + tanh +
 * classifier), as in GLUE fine-tuning (Sec. 7 of the paper: same
 * model with a simpler output layer).
 */

#ifndef BERTPROF_NN_BERT_CLASSIFIER_H
#define BERTPROF_NN_BERT_CLASSIFIER_H

#include <vector>

#include "nn/bert_model.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace bertprof {

/** One fine-tuning mini-batch. */
struct ClassificationBatch {
    std::vector<std::int64_t> tokenIds;   ///< B*n entries
    std::vector<std::int64_t> segmentIds; ///< B*n entries
    std::vector<std::int64_t> labels;     ///< B class labels
};

/** Loss and accuracy of one classification step. */
struct ClassificationStepResult {
    double loss = 0.0;
    double accuracy = 0.0;
};

/** BERT with a classification head; runs fine-tuning steps. */
class BertClassifier : public Module
{
  public:
    BertClassifier(const BertConfig &config, NnRuntime *rt);

    /** Forward + backward on a batch; leaves accumulated grads. */
    ClassificationStepResult forwardBackward(
        const ClassificationBatch &batch);

    /** Forward only; returns predicted class per sequence. */
    std::vector<std::int64_t> predict(const ClassificationBatch &batch);

    /**
     * Forward-only classifier logits over a dynamically-shaped
     * padded batch (the serving path): `batch` sequences of `seq`
     * tokens (seq <= maxPositions, independent of config.seqLen),
     * `lengths` masking each sequence's padded tail out of attention
     * (empty = all full). Requires eval mode (setTraining(false));
     * retains nothing and never touches the dropout RNG stream.
     * Returns logits [batch, numClasses].
     */
    Tensor forwardLogitsEval(const std::vector<std::int64_t> &token_ids,
                             const std::vector<std::int64_t> &segment_ids,
                             std::int64_t batch, std::int64_t seq,
                             const std::vector<std::int64_t> &lengths);

    void collectParameters(std::vector<Parameter *> &out) override;

    void initialize(Rng &rng, float stddev = 0.02f);

    BertModel &model() { return model_; }

    const BertConfig &config() const { return config_; }

  protected:
    void collectChildren(std::vector<Module *> &out) override;

  private:
    /** Shared forward: returns classifier logits [B, numClasses]. */
    Tensor forwardLogits(const ClassificationBatch &batch, Tensor &cls);

    BertConfig config_;
    NnRuntime *rt_;
    BertModel model_;
    Linear pooler_;
    Linear classifier_;
    Tensor savedPooled_; ///< tanh output, for backward
};

} // namespace bertprof

#endif // BERTPROF_NN_BERT_CLASSIFIER_H
