/**
 * @file
 * The BERT encoder: token/position/segment embeddings with LN and
 * dropout, followed by N Transformer encoder layers (Fig. 2(a) of the
 * paper). Produces the final hidden states; the pre-training heads
 * live in nn/bert_pretrainer.h.
 */

#ifndef BERTPROF_NN_BERT_MODEL_H
#define BERTPROF_NN_BERT_MODEL_H

#include <memory>
#include <vector>

#include "nn/encoder_layer.h"
#include "nn/layer_norm.h"
#include "nn/module.h"
#include "trace/bert_config.h"

namespace bertprof {

/** BERT encoder stack with embeddings. */
class BertModel : public Module
{
  public:
    BertModel(const BertConfig &config, NnRuntime *rt);

    /**
     * Forward: token and segment ids are flat [B*n] vectors;
     * positions are implicit (t mod n). Returns hidden [B*n, d].
     * Uses the config's batch/seqLen and the installed padding mask.
     */
    Tensor forward(const std::vector<std::int64_t> &token_ids,
                   const std::vector<std::int64_t> &segment_ids);

    /**
     * Forward-only encoder pass over a dynamically-shaped batch
     * (serving path): `batch` sequences of `seq` tokens each, with
     * seq <= maxPositions independent of the config's seqLen.
     * `lengths` (one entry per sequence, empty = all full) masks
     * padded key positions out of attention exactly like
     * setPaddingMask(). Requires eval mode (setTraining(false)):
     * nothing is retained, dropout is identity, and the RNG stream
     * is untouched, so repeated calls are bitwise identical.
     */
    Tensor forwardEval(const std::vector<std::int64_t> &token_ids,
                       const std::vector<std::int64_t> &segment_ids,
                       std::int64_t batch, std::int64_t seq,
                       const std::vector<std::int64_t> &lengths);

    /** Backward from dhidden [B*n, d]; accumulates all grads. */
    void backward(const Tensor &dhidden);

    void collectParameters(std::vector<Parameter *> &out) override;

    /** Random-initialize every parameter. */
    void initialize(Rng &rng, float stddev = 0.02f);

    /** The token embedding table (shared with the MLM decoder). */
    Parameter &tokenEmbedding() { return tokTable_; }

    /**
     * Install a per-sequence padding mask: positions at or beyond
     * lengths[b] become unattendable for sequence b (additive -1e9 on
     * their key columns). Pass one length per sequence in the batch.
     */
    void setPaddingMask(const std::vector<std::int64_t> &lengths);

    /** Back to the dense all-attend mask. */
    void clearPaddingMask();

    const BertConfig &config() const { return config_; }

  protected:
    void collectChildren(std::vector<Module *> &out) override;

  private:
    /** Shared forward body over an explicit shape and additive mask. */
    Tensor forwardImpl(const std::vector<std::int64_t> &token_ids,
                       const std::vector<std::int64_t> &segment_ids,
                       std::int64_t batch, std::int64_t seq,
                       const Tensor &mask);

    BertConfig config_;
    NnRuntime *rt_;
    Parameter tokTable_;
    Parameter posTable_;
    Parameter segTable_;
    LayerNorm embLn_;
    std::vector<std::unique_ptr<EncoderLayer>> layers_;

    // Saved forward state.
    Tensor attnMask_; ///< additive [n, n] mask (all zeros = attend all)
    Tensor embDropMask_;
    std::vector<std::int64_t> savedTokenIds_;
    std::vector<std::int64_t> savedSegmentIds_;
    std::vector<std::int64_t> savedPositionIds_;
};

} // namespace bertprof

#endif // BERTPROF_NN_BERT_MODEL_H
