/**
 * @file
 * Linear (fully-connected) layer: y = x W^T + b. Manifests as the
 * paper's "Linear" / "FC" GEMMs: one FWD GEMM plus two BWD GEMMs
 * (activation gradient and weight gradient) per Table 2b.
 */

#ifndef BERTPROF_NN_LINEAR_H
#define BERTPROF_NN_LINEAR_H

#include "nn/module.h"
#include "trace/taxonomy.h"

namespace bertprof {

/** Fully-connected layer over the last dimension. */
class Linear : public Module
{
  public:
    /**
     * @param name Parameter name prefix, e.g. "enc0.attn.wq".
     * @param in_dim Input feature count.
     * @param out_dim Output feature count.
     * @param rt Shared runtime context.
     * @param scope Profiling scope tag.
     * @param sub Profiling sub-layer tag.
     * @param layer Transformer layer index for tagging (-1 if none).
     */
    Linear(const std::string &name, std::int64_t in_dim,
           std::int64_t out_dim, NnRuntime *rt,
           LayerScope scope = LayerScope::Transformer,
           SubLayer sub = SubLayer::Other, int layer = -1);

    /** Forward: x is [rows, in_dim]; returns [rows, out_dim]. */
    Tensor forward(const Tensor &x);

    /**
     * GEMM-only forward: y = x W^T without the bias epilogue, for
     * callers that fuse the bias into the next kernel (FC1's fused
     * bias+GeLU). Saves the input for backward exactly as forward()
     * does; backward() stays valid because the bias gradient is read
     * off dout, which is the same tensor either way.
     */
    Tensor forwardGemm(const Tensor &x);

    /**
     * Backward: dout is [rows, out_dim]; accumulates weight and bias
     * gradients and returns dx [rows, in_dim]. Requires a training-
     * mode forward() to have been called (eval-mode forwards retain
     * no input).
     */
    Tensor backward(const Tensor &dout);

    void collectParameters(std::vector<Parameter *> &out) override;

    /** Kaiming-style random initialization. */
    void initialize(Rng &rng, float stddev = 0.02f);

    Parameter &weight() { return weight_; }
    Parameter &bias() { return bias_; }
    std::int64_t inDim() const { return inDim_; }
    std::int64_t outDim() const { return outDim_; }

  private:
    std::int64_t inDim_;
    std::int64_t outDim_;
    NnRuntime *rt_;
    LayerScope scope_;
    SubLayer sub_;
    int layer_;
    Parameter weight_; ///< [out_dim, in_dim]
    Parameter bias_;   ///< [out_dim]
    Tensor savedInput_;
    bool hasSavedInput_ = false;
};

} // namespace bertprof

#endif // BERTPROF_NN_LINEAR_H
