/**
 * @file
 * Dependency-inversion seam between nn and the graph executor. The
 * include-hygiene DAG forbids nn -> graph (graph sits above nn), so
 * nn declares this abstract interface and src/graph registers a
 * process-wide implementation via installEncoderGraphExec — the same
 * pattern runtime/profiler.h uses for KernelEventSink.
 *
 * EncoderLayer::forward consults the installed executor on the eval
 * path when BERTPROF_FUSION=on; when none is installed it falls back
 * to the eager fused kernels. Installation is explicit
 * (graph/encoder_exec.h's ensureEncoderGraphExecInstalled), never a
 * static initializer — those get dropped when linking static libs.
 */

#ifndef BERTPROF_NN_GRAPH_HOOK_H
#define BERTPROF_NN_GRAPH_HOOK_H

#include <cstdint>

#include "tensor/tensor.h"

namespace bertprof {

class EncoderLayer;

/** Graph-level encoder executor installed by src/graph. */
class EncoderGraphExec
{
  public:
    virtual ~EncoderGraphExec() = default;

    /**
     * Run one encoder layer forward in eval mode through the planned
     * graph. Semantics match EncoderLayer::forward (eval): x is
     * [B*n, d_model], mask is [n, n] or [B, n, n] additive.
     */
    virtual Tensor forwardEval(EncoderLayer &layer, const Tensor &x,
                               const Tensor &mask, std::int64_t batch,
                               std::int64_t seq) = 0;

    /** Arena high-water mark (bytes) across all executed plans. */
    virtual std::int64_t arenaPeakBytes() const = 0;

    /**
     * Sum of all arena-assigned tensor bytes in the most recent plan
     * — what a no-reuse allocator would need. The planner's win is
     * arenaPeakBytes() strictly below this.
     */
    virtual std::int64_t plannedSumBytes() const = 0;
};

/** Install (or clear, with nullptr) the process-wide executor. */
void installEncoderGraphExec(EncoderGraphExec *exec);

/** The installed executor, or nullptr. */
EncoderGraphExec *encoderGraphExec();

} // namespace bertprof

#endif // BERTPROF_NN_GRAPH_HOOK_H
