#include "nn/linear.h"

#include "ops/elementwise.h"
#include "ops/gemm.h"
#include "util/logging.h"

namespace bertprof {

Linear::Linear(const std::string &name, std::int64_t in_dim,
               std::int64_t out_dim, NnRuntime *rt, LayerScope scope,
               SubLayer sub, int layer)
    : inDim_(in_dim), outDim_(out_dim), rt_(rt), scope_(scope), sub_(sub),
      layer_(layer), weight_(name + ".w", Shape({out_dim, in_dim})),
      bias_(name + ".b", Shape({out_dim}), /*no_decay=*/true)
{
    BP_REQUIRE(rt_ != nullptr);
}

void
Linear::initialize(Rng &rng, float stddev)
{
    weight_.value.fillNormal(rng, 0.0f, stddev);
    bias_.value.fill(0.0f);
}

Tensor
Linear::forward(const Tensor &x)
{
    BP_REQUIRE(x.shape().rank() == 2 && x.shape().dim(1) == inDim_);
    if (isTraining()) {
        savedInput_ = x.clone();
        hasSavedInput_ = true;
    } else {
        // Forward-only: nothing retained, backward() must not follow.
        savedInput_ = Tensor();
        hasSavedInput_ = false;
    }

    Tensor y(Shape({x.shape().dim(0), outDim_}));
    {
        ScopedKernel k(rt_->profiler, weight_.name + ".fwd", OpKind::Gemm,
                       Phase::Fwd, scope_, sub_);
        k.setStats(gemm(x, weight_.value, y, false, true));
    }
    {
        ScopedKernel k(rt_->profiler, bias_.name + ".fwd",
                       OpKind::Elementwise, Phase::Fwd, scope_, sub_);
        k.setStats(biasForward(y, bias_.value, y));
    }
    return y;
}

Tensor
Linear::forwardGemm(const Tensor &x)
{
    BP_REQUIRE(x.shape().rank() == 2 && x.shape().dim(1) == inDim_);
    if (isTraining()) {
        savedInput_ = x.clone();
        hasSavedInput_ = true;
    } else {
        savedInput_ = Tensor();
        hasSavedInput_ = false;
    }
    Tensor y(Shape({x.shape().dim(0), outDim_}));
    {
        ScopedKernel k(rt_->profiler, weight_.name + ".fwd", OpKind::Gemm,
                       Phase::Fwd, scope_, sub_);
        k.setStats(gemm(x, weight_.value, y, false, true));
    }
    return y;
}

Tensor
Linear::backward(const Tensor &dout)
{
    BP_REQUIRE(hasSavedInput_);
    BP_REQUIRE(dout.shape().rank() == 2 && dout.shape().dim(1) == outDim_);
    BP_REQUIRE(dout.shape().dim(0) == savedInput_.shape().dim(0));

    {
        Tensor dbias(bias_.value.shape());
        ScopedKernel k(rt_->profiler, bias_.name + ".bwd",
                       OpKind::Reduction, Phase::Bwd, scope_, sub_);
        k.setStats(biasBackward(dout, dbias));
        accumulate(bias_.grad, dbias);
    }
    {
        // dW = dout^T * x  -> [out, in]
        Tensor dweight(weight_.value.shape());
        ScopedKernel k(rt_->profiler, weight_.name + ".wgrad",
                       OpKind::Gemm, Phase::Bwd, scope_, sub_);
        k.setStats(gemm(dout, savedInput_, dweight, true, false));
        accumulate(weight_.grad, dweight);
    }
    Tensor dx(savedInput_.shape());
    {
        // dx = dout * W -> [rows, in]
        ScopedKernel k(rt_->profiler, weight_.name + ".dgrad",
                       OpKind::Gemm, Phase::Bwd, scope_, sub_);
        k.setStats(gemm(dout, weight_.value, dx, false, false));
    }
    return dx;
}

void
Linear::collectParameters(std::vector<Parameter *> &out)
{
    out.push_back(&weight_);
    out.push_back(&bias_);
}

} // namespace bertprof
