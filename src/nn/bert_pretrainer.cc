#include "nn/bert_pretrainer.h"

#include <limits>

#include "runtime/fault_injection.h"

#include "ops/activation.h"
#include "ops/cross_entropy.h"
#include "ops/elementwise.h"
#include "ops/embedding.h"
#include "ops/gemm.h"
#include "util/logging.h"

namespace bertprof {

namespace {

/** Fraction of labeled rows whose argmax matches the label. */
double
argmaxAccuracy(const Tensor &logits,
               const std::vector<std::int64_t> &labels)
{
    const std::int64_t rows = logits.shape().dim(0);
    const std::int64_t cols = logits.shape().dim(1);
    std::int64_t counted = 0, correct = 0;
    for (std::int64_t r = 0; r < rows; ++r) {
        const std::int64_t label = labels[static_cast<std::size_t>(r)];
        if (label == kIgnoreIndex)
            continue;
        ++counted;
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < cols; ++c)
            if (logits.at(r, c) > logits.at(r, best))
                best = c;
        correct += best == label ? 1 : 0;
    }
    return counted > 0
               ? static_cast<double>(correct) / static_cast<double>(counted)
               : 0.0;
}

} // namespace

BertPretrainer::BertPretrainer(const BertConfig &config, NnRuntime *rt)
    : config_(config), rt_(rt), model_(config, rt),
      pooler_("pooler", config.dModel, config.dModel, rt,
              LayerScope::Output, SubLayer::OutputOps),
      mlmTransform_("mlm.transform", config.dModel, config.dModel, rt,
                    LayerScope::Output, SubLayer::OutputOps),
      mlmLn_("mlm.ln", config.dModel, rt, LayerScope::Output,
             SubLayer::OutputOps),
      mlmDecoderBias_("mlm.decoder.bias", Shape({config.vocabSize}),
                      /*no_decay=*/true),
      nsp_("nsp", config.dModel, 2, rt, LayerScope::Output,
           SubLayer::OutputOps)
{
}

void
BertPretrainer::initialize(Rng &rng, float stddev)
{
    model_.initialize(rng, stddev);
    pooler_.initialize(rng, stddev);
    mlmTransform_.initialize(rng, stddev);
    nsp_.initialize(rng, stddev);
}

PretrainStepResult
BertPretrainer::forwardBackward(const PretrainBatch &batch,
                                float loss_scale)
{
    BP_REQUIRE(loss_scale > 0.0f);
    const std::int64_t tokens = config_.tokens();
    const std::int64_t d = config_.dModel;
    const std::int64_t p =
        static_cast<std::int64_t>(batch.mlmPositions.size());
    BP_REQUIRE(batch.mlmLabels.size() == batch.mlmPositions.size());
    BP_REQUIRE(static_cast<std::int64_t>(batch.nspLabels.size()) ==
               config_.batch);

    if (batch.seqLengths.empty())
        model_.clearPaddingMask();
    else
        model_.setPaddingMask(batch.seqLengths);
    Tensor hidden =
        model_.forward(batch.tokenIds, batch.segmentIds);

    // Fault site: corrupt the encoder output the way a flaky kernel
    // or bad DMA would. The poison propagates into both losses, so
    // lossFinite() below reports the step unusable.
    switch (faultAt("nn.activations")) {
    case FaultKind::NaN:
        hidden.data()[0] = std::numeric_limits<float>::quiet_NaN();
        break;
    case FaultKind::Inf:
        hidden.data()[0] = std::numeric_limits<float>::infinity();
        break;
    default:
        break;
    }

    PretrainStepResult result;
    Tensor dhidden(hidden.shape());
    dhidden.fill(0.0f);

    // ---- Masked-LM head ----
    Tensor mlm_in(Shape({p, d}));
    {
        ScopedKernel k(rt_->profiler, "mlm.gather", OpKind::Gather,
                       Phase::Fwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(embeddingForward(hidden, batch.mlmPositions, mlm_in));
    }
    Tensor transformed = mlmTransform_.forward(mlm_in);
    Tensor activated(transformed.shape());
    {
        ScopedKernel k(rt_->profiler, "mlm.gelu", OpKind::Elementwise,
                       Phase::Fwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(geluForward(transformed, activated));
    }
    Tensor normed = mlmLn_.forward(activated);

    // Decoder tied to the token embedding table: logits = h * E^T + b.
    Parameter &tok_table = model_.tokenEmbedding();
    Tensor logits(Shape({p, config_.vocabSize}));
    {
        ScopedKernel k(rt_->profiler, "mlm.decoder.fwd", OpKind::Gemm,
                       Phase::Fwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(gemm(normed, tok_table.value, logits, false, true));
    }
    {
        ScopedKernel k(rt_->profiler, "mlm.decoder.bias",
                       OpKind::Elementwise, Phase::Fwd, LayerScope::Output,
                       SubLayer::OutputOps);
        k.setStats(biasForward(logits, mlmDecoderBias_.value, logits));
    }

    Tensor dlogits(logits.shape());
    {
        ScopedKernel k(rt_->profiler, "mlm.loss", OpKind::Reduction,
                       Phase::Fwd, LayerScope::Output, SubLayer::OutputOps);
        auto ce = softmaxCrossEntropy(logits, batch.mlmLabels, dlogits);
        k.setStats(ce.stats);
        result.mlmLoss = ce.loss;
        result.mlmAccuracy = argmaxAccuracy(logits, batch.mlmLabels);
    }
    if (loss_scale != 1.0f)
        scaleForward(dlogits, loss_scale, dlogits);

    // Decoder backward.
    {
        Tensor dbias(mlmDecoderBias_.value.shape());
        ScopedKernel k(rt_->profiler, "mlm.decoder.bias.bwd",
                       OpKind::Reduction, Phase::Bwd, LayerScope::Output,
                       SubLayer::OutputOps);
        k.setStats(biasBackward(dlogits, dbias));
        accumulate(mlmDecoderBias_.grad, dbias);
    }
    {
        Tensor dtable(tok_table.value.shape());
        ScopedKernel k(rt_->profiler, "mlm.decoder.wgrad", OpKind::Gemm,
                       Phase::Bwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(gemm(dlogits, normed, dtable, true, false));
        accumulate(tok_table.grad, dtable);
    }
    Tensor dnormed(normed.shape());
    {
        ScopedKernel k(rt_->profiler, "mlm.decoder.dgrad", OpKind::Gemm,
                       Phase::Bwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(gemm(dlogits, tok_table.value, dnormed, false, false));
    }
    Tensor dactivated = mlmLn_.backward(dnormed);
    Tensor dtransformed(transformed.shape());
    {
        ScopedKernel k(rt_->profiler, "mlm.gelu.bwd", OpKind::Elementwise,
                       Phase::Bwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(geluBackward(transformed, dactivated, dtransformed));
    }
    Tensor dmlm_in = mlmTransform_.backward(dtransformed);
    {
        ScopedKernel k(rt_->profiler, "mlm.scatter", OpKind::Gather,
                       Phase::Bwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(
            embeddingBackward(dmlm_in, batch.mlmPositions, dhidden));
    }

    // ---- Next-sentence-prediction head ----
    std::vector<std::int64_t> cls_positions(
        static_cast<std::size_t>(config_.batch));
    for (std::int64_t b = 0; b < config_.batch; ++b)
        cls_positions[static_cast<std::size_t>(b)] = b * config_.seqLen;

    Tensor cls(Shape({config_.batch, d}));
    {
        ScopedKernel k(rt_->profiler, "nsp.gather", OpKind::Gather,
                       Phase::Fwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(embeddingForward(hidden, cls_positions, cls));
    }
    Tensor pooled_pre = pooler_.forward(cls);
    Tensor pooled(pooled_pre.shape());
    {
        ScopedKernel k(rt_->profiler, "pooler.tanh", OpKind::Elementwise,
                       Phase::Fwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(tanhForward(pooled_pre, pooled));
    }
    Tensor nsp_logits = nsp_.forward(pooled);
    Tensor dnsp_logits(nsp_logits.shape());
    {
        ScopedKernel k(rt_->profiler, "nsp.loss", OpKind::Reduction,
                       Phase::Fwd, LayerScope::Output, SubLayer::OutputOps);
        auto ce =
            softmaxCrossEntropy(nsp_logits, batch.nspLabels, dnsp_logits);
        k.setStats(ce.stats);
        result.nspLoss = ce.loss;
        result.nspAccuracy = argmaxAccuracy(nsp_logits, batch.nspLabels);
    }
    if (loss_scale != 1.0f)
        scaleForward(dnsp_logits, loss_scale, dnsp_logits);
    Tensor dpooled = nsp_.backward(dnsp_logits);
    Tensor dpooled_pre(dpooled.shape());
    {
        ScopedKernel k(rt_->profiler, "pooler.tanh.bwd",
                       OpKind::Elementwise, Phase::Bwd, LayerScope::Output,
                       SubLayer::OutputOps);
        k.setStats(tanhBackward(pooled, dpooled, dpooled_pre));
    }
    Tensor dcls = pooler_.backward(dpooled_pre);
    {
        ScopedKernel k(rt_->profiler, "nsp.scatter", OpKind::Gather,
                       Phase::Bwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(embeddingBackward(dcls, cls_positions, dhidden));
    }

    // ---- Encoder backward ----
    // A non-finite loss means dhidden (and the head gradients) are
    // already poisoned; the encoder backward would only spread the
    // contamination (and trips BP_DCHECK_FINITE in debug builds).
    // The caller must skip the step — GradScaler::unscale zeroes the
    // partial head gradients it finds non-finite.
    if (result.lossFinite())
        model_.backward(dhidden);
    BP_ASSERT(tokens == hidden.shape().dim(0));
    return result;
}

Tensor
BertPretrainer::mlmLogitsEval(
    const std::vector<std::int64_t> &token_ids,
    const std::vector<std::int64_t> &segment_ids, std::int64_t batch,
    std::int64_t seq, const std::vector<std::int64_t> &lengths,
    const std::vector<std::int64_t> &mlm_positions)
{
    BP_REQUIRE(!isTraining());
    const std::int64_t d = config_.dModel;
    const std::int64_t p =
        static_cast<std::int64_t>(mlm_positions.size());
    BP_REQUIRE(p >= 1);
    for (std::int64_t pos : mlm_positions)
        BP_REQUIRE(pos >= 0 && pos < batch * seq);

    Tensor hidden =
        model_.forwardEval(token_ids, segment_ids, batch, seq, lengths);

    Tensor mlm_in(Shape({p, d}));
    {
        ScopedKernel k(rt_->profiler, "mlm.gather", OpKind::Gather,
                       Phase::Fwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(embeddingForward(hidden, mlm_positions, mlm_in));
    }
    Tensor transformed = mlmTransform_.forward(mlm_in);
    Tensor activated(transformed.shape());
    {
        ScopedKernel k(rt_->profiler, "mlm.gelu", OpKind::Elementwise,
                       Phase::Fwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(geluForward(transformed, activated));
    }
    Tensor normed = mlmLn_.forward(activated);

    Parameter &tok_table = model_.tokenEmbedding();
    Tensor logits(Shape({p, config_.vocabSize}));
    {
        ScopedKernel k(rt_->profiler, "mlm.decoder.fwd", OpKind::Gemm,
                       Phase::Fwd, LayerScope::Output, SubLayer::OutputOps);
        k.setStats(gemm(normed, tok_table.value, logits, false, true));
    }
    {
        ScopedKernel k(rt_->profiler, "mlm.decoder.bias",
                       OpKind::Elementwise, Phase::Fwd, LayerScope::Output,
                       SubLayer::OutputOps);
        k.setStats(biasForward(logits, mlmDecoderBias_.value, logits));
    }
    return logits;
}

void
BertPretrainer::collectParameters(std::vector<Parameter *> &out)
{
    model_.collectParameters(out);
    pooler_.collectParameters(out);
    mlmTransform_.collectParameters(out);
    mlmLn_.collectParameters(out);
    out.push_back(&mlmDecoderBias_);
    nsp_.collectParameters(out);
}

void
BertPretrainer::collectChildren(std::vector<Module *> &out)
{
    out.push_back(&model_);
    out.push_back(&pooler_);
    out.push_back(&mlmTransform_);
    out.push_back(&mlmLn_);
    out.push_back(&nsp_);
}

} // namespace bertprof
