/**
 * @file
 * One Transformer encoder layer (Fig. 2(b) of the paper): multi-head
 * attention and FC feed-forward sub-layers, each followed by dropout,
 * a residual connection, and layer normalization (post-LN, as BERT).
 */

#ifndef BERTPROF_NN_ENCODER_LAYER_H
#define BERTPROF_NN_ENCODER_LAYER_H

#include "nn/attention.h"
#include "nn/feedforward.h"
#include "nn/layer_norm.h"
#include "nn/module.h"

namespace bertprof {

/** BERT Transformer encoder layer. */
class EncoderLayer : public Module
{
  public:
    EncoderLayer(const std::string &name, std::int64_t d_model,
                 int num_heads, std::int64_t d_ff, NnRuntime *rt,
                 int layer = -1);

    /** Forward over [B*n, d_model] with an additive [n, n] mask. */
    Tensor forward(const Tensor &x, const Tensor &mask, std::int64_t batch,
                   std::int64_t seq);

    /** Backward; accumulates grads, returns dx. */
    Tensor backward(const Tensor &dout);

    void collectParameters(std::vector<Parameter *> &out) override;

    void initialize(Rng &rng, float stddev = 0.02f);

    // Sub-module access for the graph executor (src/graph builds its
    // op list out of these modules' parameters and kernels).
    MultiHeadAttention &attn() { return attn_; }
    LayerNorm &ln1() { return ln1_; }
    FeedForward &ff() { return ff_; }
    LayerNorm &ln2() { return ln2_; }
    NnRuntime *runtime() { return rt_; }

  protected:
    void collectChildren(std::vector<Module *> &out) override;

  private:
    NnRuntime *rt_;
    int layer_;
    MultiHeadAttention attn_;
    LayerNorm ln1_;
    FeedForward ff_;
    LayerNorm ln2_;

    // Saved dropout masks for the two DR+RC+LN blocks (training
    // forwards only; eval forwards retain nothing).
    Tensor attnDropMask_;
    Tensor ffDropMask_;
    bool hasForwardState_ = false;
};

} // namespace bertprof

#endif // BERTPROF_NN_ENCODER_LAYER_H
