#include "nn/layer_norm.h"

#include "ops/elementwise.h"
#include "ops/fused.h"
#include "ops/layernorm.h"
#include "util/logging.h"

namespace bertprof {

LayerNorm::LayerNorm(const std::string &name, std::int64_t dim,
                     NnRuntime *rt, LayerScope scope, SubLayer sub,
                     int layer)
    : dim_(dim), rt_(rt), scope_(scope), sub_(sub), layer_(layer),
      gamma_(name + ".gamma", Shape({dim}), /*no_decay=*/true),
      beta_(name + ".beta", Shape({dim}), /*no_decay=*/true)
{
    BP_REQUIRE(rt_ != nullptr);
    gamma_.value.fill(1.0f);
}

Tensor
LayerNorm::forward(const Tensor &x)
{
    BP_REQUIRE(x.shape().rank() == 2 && x.shape().dim(1) == dim_);
    const std::int64_t rows = x.shape().dim(0);
    Tensor mean(Shape({rows}));
    Tensor rstd(Shape({rows}));

    Tensor y(x.shape());
    {
        ScopedKernel k(rt_->profiler, gamma_.name + ".ln.fwd",
                       OpKind::Reduction, Phase::Fwd, scope_, sub_);
        k.setStats(
            layerNormForward(x, gamma_.value, beta_.value, y, mean, rstd));
    }
    if (isTraining()) {
        savedInput_ = x.clone();
        savedMean_ = std::move(mean);
        savedRstd_ = std::move(rstd);
        hasSaved_ = true;
    } else {
        savedInput_ = Tensor();
        savedMean_ = Tensor();
        savedRstd_ = Tensor();
        hasSaved_ = false;
    }
    return y;
}

Tensor
LayerNorm::forwardFusedResidual(const Tensor &a, const Tensor &b)
{
    BP_REQUIRE(a.shape().rank() == 2 && a.shape().dim(1) == dim_);
    const std::int64_t rows = a.shape().dim(0);
    Tensor mean(Shape({rows}));
    Tensor rstd(Shape({rows}));
    Tensor y(a.shape());
    if (isTraining())
        savedInput_ = Tensor(a.shape());
    {
        ScopedKernel k(rt_->profiler, gamma_.name + ".res_ln.fwd",
                       OpKind::Reduction, Phase::Fwd, scope_, sub_);
        if (isTraining()) {
            k.setStats(fusedResidualLayerNormForwardWithSum(
                a, b, gamma_.value, beta_.value, savedInput_, y, mean,
                rstd));
        } else {
            k.setStats(fusedResidualLayerNormForward(
                a, b, gamma_.value, beta_.value, y, mean, rstd));
        }
    }
    if (isTraining()) {
        savedMean_ = std::move(mean);
        savedRstd_ = std::move(rstd);
        hasSaved_ = true;
    } else {
        savedInput_ = Tensor();
        savedMean_ = Tensor();
        savedRstd_ = Tensor();
        hasSaved_ = false;
    }
    return y;
}

Tensor
LayerNorm::backward(const Tensor &dout)
{
    BP_REQUIRE(hasSaved_);
    Tensor dx(savedInput_.shape());
    Tensor dgamma(gamma_.value.shape());
    Tensor dbeta(beta_.value.shape());
    {
        ScopedKernel k(rt_->profiler, gamma_.name + ".ln.bwd",
                       OpKind::Reduction, Phase::Bwd, scope_, sub_);
        k.setStats(layerNormBackward(savedInput_, gamma_.value, savedMean_,
                                     savedRstd_, dout, dx, dgamma, dbeta));
    }
    accumulate(gamma_.grad, dgamma);
    accumulate(beta_.grad, dbeta);
    return dx;
}

void
LayerNorm::collectParameters(std::vector<Parameter *> &out)
{
    out.push_back(&gamma_);
    out.push_back(&beta_);
}

} // namespace bertprof
