/**
 * @file
 * LayerNorm module wrapping the ops/layernorm kernels with learnable
 * gamma/beta parameters and saved forward state.
 */

#ifndef BERTPROF_NN_LAYER_NORM_H
#define BERTPROF_NN_LAYER_NORM_H

#include "nn/module.h"
#include "trace/taxonomy.h"

namespace bertprof {

/** Layer normalization over the last dimension. */
class LayerNorm : public Module
{
  public:
    LayerNorm(const std::string &name, std::int64_t dim, NnRuntime *rt,
              LayerScope scope = LayerScope::Transformer,
              SubLayer sub = SubLayer::DrRcLn, int layer = -1);

    /** Forward over [rows, dim]; saves state for backward. */
    Tensor forward(const Tensor &x);

    /**
     * Fused residual + LayerNorm forward: returns LN(a + b) in one
     * kernel. Bitwise identical to addForward then forward(). In
     * training the sum is materialized and saved (backward needs the
     * LN input); in eval it never touches memory.
     */
    Tensor forwardFusedResidual(const Tensor &a, const Tensor &b);

    /** Backward; accumulates gamma/beta grads, returns dx. */
    Tensor backward(const Tensor &dout);

    void collectParameters(std::vector<Parameter *> &out) override;

    Parameter &gamma() { return gamma_; }
    Parameter &beta() { return beta_; }
    std::int64_t dim() const { return dim_; }

  private:
    std::int64_t dim_;
    NnRuntime *rt_;
    LayerScope scope_;
    SubLayer sub_;
    int layer_;
    Parameter gamma_;
    Parameter beta_;
    Tensor savedInput_;
    Tensor savedMean_;
    Tensor savedRstd_;
    bool hasSaved_ = false;
};

} // namespace bertprof

#endif // BERTPROF_NN_LAYER_NORM_H
