/**
 * @file
 * Multi-head self-attention exactly as Fig. 5 of the paper: Q/K/V
 * linear projections (GEMMs), per-head attention score and context
 * batched-GEMMs over B*h groups, the scale/mask/softmax/dropout
 * element-wise chain, and the output projection.
 */

#ifndef BERTPROF_NN_ATTENTION_H
#define BERTPROF_NN_ATTENTION_H

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace bertprof {

/** Multi-head self-attention over a [B*n, d_model] input. */
class MultiHeadAttention : public Module
{
  public:
    /**
     * @param name Parameter name prefix.
     * @param d_model Hidden dimension.
     * @param num_heads Head count h (d_model must divide evenly).
     * @param rt Shared runtime context.
     * @param layer Transformer layer index for profiling tags.
     */
    MultiHeadAttention(const std::string &name, std::int64_t d_model,
                       int num_heads, NnRuntime *rt, int layer = -1);

    /**
     * Forward. @param x [B*n, d_model]; @param mask additive
     * attention mask [n, n] (0 = attend, -inf = blocked), broadcast
     * over batch and heads; @param batch B; @param seq n.
     */
    Tensor forward(const Tensor &x, const Tensor &mask, std::int64_t batch,
                   std::int64_t seq);

    /** Backward; accumulates all projection grads, returns dx. */
    Tensor backward(const Tensor &dout);

    void collectParameters(std::vector<Parameter *> &out) override;

    /** Initialize all projection weights. */
    void initialize(Rng &rng, float stddev = 0.02f);

    Linear &wq() { return wq_; }
    Linear &wk() { return wk_; }
    Linear &wv() { return wv_; }
    Linear &wo() { return wo_; }
    int numHeads() const { return numHeads_; }
    std::int64_t dModel() const { return dModel_; }

  protected:
    void collectChildren(std::vector<Module *> &out) override;

  private:
    std::int64_t dModel_;
    int numHeads_;
    NnRuntime *rt_;
    int layer_;
    Linear wq_;
    Linear wk_;
    Linear wv_;
    Linear wo_;

    // Saved forward state.
    std::int64_t batch_ = 0;
    std::int64_t seq_ = 0;
    Tensor q3d_, k3d_, v3d_;   ///< [B*h, n, d/h]
    Tensor probs_;             ///< post-softmax scores [B*h, n, n]
    Tensor dropMask_;          ///< dropout mask on probs
    Tensor probsDropped_;      ///< probs after dropout

    // Fused-QKV training state: the projection input, kept so
    // backward can run the single concatenated-weight GEMM pair
    // instead of three Linear backwards.
    Tensor xSaved_;
    bool usedFusedQkv_ = false;
};

} // namespace bertprof

#endif // BERTPROF_NN_ATTENTION_H
