#include "nn/graph_hook.h"

#include <atomic>

namespace bertprof {

namespace {

std::atomic<EncoderGraphExec *> g_exec{nullptr};

} // namespace

void
installEncoderGraphExec(EncoderGraphExec *exec)
{
    g_exec.store(exec, std::memory_order_release);
}

EncoderGraphExec *
encoderGraphExec()
{
    return g_exec.load(std::memory_order_acquire);
}

} // namespace bertprof
