#include "nn/encoder_layer.h"

#include "nn/graph_hook.h"
#include "ops/dropout.h"
#include "ops/elementwise.h"
#include "runtime/config.h"
#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

EncoderLayer::EncoderLayer(const std::string &name, std::int64_t d_model,
                           int num_heads, std::int64_t d_ff, NnRuntime *rt,
                           int layer)
    : rt_(rt), layer_(layer),
      attn_(name + ".attn", d_model, num_heads, rt, layer),
      ln1_(name + ".ln1", d_model, rt, LayerScope::Transformer,
           SubLayer::DrRcLn, layer),
      ff_(name + ".ff", d_model, d_ff, rt, layer),
      ln2_(name + ".ln2", d_model, rt, LayerScope::Transformer,
           SubLayer::DrRcLn, layer)
{
}

void
EncoderLayer::initialize(Rng &rng, float stddev)
{
    attn_.initialize(rng, stddev);
    ff_.initialize(rng, stddev);
}

Tensor
EncoderLayer::forward(const Tensor &x, const Tensor &mask,
                      std::int64_t batch, std::int64_t seq)
{
    BP_REQUIRE(batch > 0 && seq > 0);
    BP_CHECK_RANK(x, 2);
    BP_REQUIRE(x.shape().dim(0) == batch * seq);
    const bool training = isTraining();
    hasForwardState_ = training;
    if (!training) {
        attnDropMask_ = Tensor();
        ffDropMask_ = Tensor();
    }
    const bool fused = fusionEnabled();

    // Eval + fusion: hand the whole layer to the graph executor when
    // one is installed — fusion becomes a scheduling decision (the
    // planner pattern-matches the chains and places intermediates in
    // an arena). Falls back to the eager fused kernels below.
    if (!training && fused) {
        if (EncoderGraphExec *exec = encoderGraphExec())
            return exec->forwardEval(*this, x, mask, batch, seq);
    }

    // Attention sub-layer + DR + RC + LN. Eval mode: the block
    // dropouts are exact identities (no RNG draw, no mask alloc), so
    // the residual adds read the sub-layer outputs directly.
    Tensor attn_out = attn_.forward(x, mask, batch, seq);
    const Tensor *residual_in = &attn_out;
    Tensor dropped;
    if (training) {
        dropped = Tensor(attn_out.shape());
        attnDropMask_ = Tensor(attn_out.shape());
        ScopedKernel k(rt_->profiler, "attn.block.dropout",
                       OpKind::Elementwise, Phase::Fwd,
                       LayerScope::Transformer, SubLayer::DrRcLn);
        k.setStats(dropoutForward(attn_out, rt_->effectiveDropout(),
                                  rt_->rng, dropped, attnDropMask_));
        residual_in = &dropped;
    }
    Tensor normed;
    if (fused) {
        normed = ln1_.forwardFusedResidual(*residual_in, x);
    } else {
        Tensor residual(attn_out.shape());
        {
            ScopedKernel k(rt_->profiler, "attn.block.residual",
                           OpKind::Elementwise, Phase::Fwd,
                           LayerScope::Transformer, SubLayer::DrRcLn);
            k.setStats(addForward(*residual_in, x, residual));
        }
        normed = ln1_.forward(residual);
    }

    // Feed-forward sub-layer + DR + RC + LN.
    Tensor ff_out = ff_.forward(normed);
    const Tensor *ff_residual_in = &ff_out;
    Tensor ff_dropped;
    if (training) {
        ff_dropped = Tensor(ff_out.shape());
        ffDropMask_ = Tensor(ff_out.shape());
        ScopedKernel k(rt_->profiler, "ff.block.dropout",
                       OpKind::Elementwise, Phase::Fwd,
                       LayerScope::Transformer, SubLayer::DrRcLn);
        k.setStats(dropoutForward(ff_out, rt_->effectiveDropout(), rt_->rng,
                                  ff_dropped, ffDropMask_));
        ff_residual_in = &ff_dropped;
    }
    if (fused)
        return ln2_.forwardFusedResidual(*ff_residual_in, normed);
    Tensor ff_residual(ff_out.shape());
    {
        ScopedKernel k(rt_->profiler, "ff.block.residual",
                       OpKind::Elementwise, Phase::Fwd,
                       LayerScope::Transformer, SubLayer::DrRcLn);
        k.setStats(addForward(*ff_residual_in, normed, ff_residual));
    }
    return ln2_.forward(ff_residual);
}

Tensor
EncoderLayer::backward(const Tensor &dout)
{
    BP_REQUIRE(hasForwardState_);
    BP_CHECK_RANK(dout, 2);
    BP_CHECK_SAME_SHAPE(dout, attnDropMask_);
    // LN2 -> residual split -> dropout -> FF.
    Tensor dff_residual = ln2_.backward(dout);
    Tensor dff_dropped(dff_residual.shape());
    {
        ScopedKernel k(rt_->profiler, "ff.block.dropout.bwd",
                       OpKind::Elementwise, Phase::Bwd,
                       LayerScope::Transformer, SubLayer::DrRcLn);
        k.setStats(
            dropoutBackward(dff_residual, ffDropMask_, dff_dropped));
    }
    Tensor dnormed = ff_.backward(dff_dropped);
    {
        // Residual branch: the LN input gradient also flows directly.
        ScopedKernel k(rt_->profiler, "ff.block.residual.bwd",
                       OpKind::Elementwise, Phase::Bwd,
                       LayerScope::Transformer, SubLayer::DrRcLn);
        k.setStats(accumulate(dnormed, dff_residual));
    }

    // LN1 -> residual split -> dropout -> attention.
    Tensor dresidual = ln1_.backward(dnormed);
    Tensor ddropped(dresidual.shape());
    {
        ScopedKernel k(rt_->profiler, "attn.block.dropout.bwd",
                       OpKind::Elementwise, Phase::Bwd,
                       LayerScope::Transformer, SubLayer::DrRcLn);
        k.setStats(dropoutBackward(dresidual, attnDropMask_, ddropped));
    }
    Tensor dx = attn_.backward(ddropped);
    {
        ScopedKernel k(rt_->profiler, "attn.block.residual.bwd",
                       OpKind::Elementwise, Phase::Bwd,
                       LayerScope::Transformer, SubLayer::DrRcLn);
        k.setStats(accumulate(dx, dresidual));
    }
    return dx;
}

void
EncoderLayer::collectParameters(std::vector<Parameter *> &out)
{
    attn_.collectParameters(out);
    ln1_.collectParameters(out);
    ff_.collectParameters(out);
    ln2_.collectParameters(out);
}

void
EncoderLayer::collectChildren(std::vector<Module *> &out)
{
    out.push_back(&attn_);
    out.push_back(&ln1_);
    out.push_back(&ff_);
    out.push_back(&ln2_);
}

} // namespace bertprof
