/**
 * @file
 * Module framework for the CPU substrate: named parameters with
 * gradients, a base class that exposes them to optimizers, and the
 * shared runtime context (profiler, dropout RNG, training mode) that
 * every layer sees.
 */

#ifndef BERTPROF_NN_MODULE_H
#define BERTPROF_NN_MODULE_H

#include <string>
#include <vector>

#include "io/checkpoint.h"
#include "runtime/profiler.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace bertprof {

/** A trainable tensor with its gradient accumulator. */
struct Parameter {
    std::string name;
    Tensor value;
    Tensor grad;
    /** Excluded from weight decay (biases, LayerNorm params). */
    bool noDecay = false;

    Parameter(std::string param_name, Shape shape, bool no_decay = false)
        : name(std::move(param_name)), value(shape), grad(shape),
          noDecay(no_decay)
    {
    }

    /** Zero the gradient accumulator. */
    void zeroGrad() { grad.fill(0.0f); }
};

/**
 * Shared per-run state threaded through every layer: the profiler
 * (may be null), the dropout RNG, the dropout probability, and
 * whether we are training (dropout on) or evaluating.
 */
struct NnRuntime {
    Profiler *profiler = nullptr;
    Rng rng;
    float dropoutP = 0.0f;
    bool training = true;

    /** Effective dropout probability (0 when evaluating). */
    float
    effectiveDropout() const
    {
        return training ? dropoutP : 0.0f;
    }
};

/** Base class for substrate layers. */
class Module
{
  public:
    virtual ~Module() = default;

    /** Append pointers to every owned parameter (recursive). */
    virtual void collectParameters(std::vector<Parameter *> &out) = 0;

    /**
     * Switch this module tree between training and evaluation mode
     * (recursive through collectChildren()). In eval mode forward
     * passes are forward-only: dropout is an exact identity (no RNG
     * draw, no mask allocation — the dropout RNG stream is not
     * advanced) and no activations are retained for backward, so
     * backward() after an eval forward is a contract violation. The
     * serving runtime (src/serve) runs models in eval mode.
     */
    void setTraining(bool training);

    /** True in training mode (the default). */
    bool isTraining() const { return training_; }

    /** All parameters of this module tree. */
    std::vector<Parameter *>
    parameters()
    {
        std::vector<Parameter *> out;
        collectParameters(out);
        return out;
    }

    /** Zero every parameter gradient. */
    void zeroGrad();

    /** Total trainable element count. */
    std::int64_t parameterCount();

    /**
     * Serialize every parameter value (name + shape + raw FP32 bits)
     * in collectParameters() order. Gradients are not saved — a
     * resumed step starts from zeroGrad() like any other.
     */
    void saveParameters(StateWriter &writer);

    /**
     * Restore parameters written by saveParameters() into this
     * module tree. Count, name, or shape mismatches are typed errors
     * (the tree may be partially loaded — reinitialize on failure).
     */
    IoStatus loadParameters(StateReader &reader);

  protected:
    /**
     * Append pointers to every direct child module (non-recursive).
     * Drives setTraining() propagation; leaf layers keep the empty
     * default.
     */
    virtual void collectChildren(std::vector<Module *> &out)
    {
        (void)out;
    }

  private:
    bool training_ = true;
};

} // namespace bertprof

#endif // BERTPROF_NN_MODULE_H
