/**
 * @file
 * BERT pre-training heads and the end-to-end forward/backward step:
 * the masked-LM head (transform + GeLU + LN + decoder tied to the
 * token embedding) and the next-sentence-prediction head (pooler +
 * classifier), exactly the two unsupervised tasks the paper's output
 * layer runs.
 */

#ifndef BERTPROF_NN_BERT_PRETRAINER_H
#define BERTPROF_NN_BERT_PRETRAINER_H

#include <cmath>
#include <vector>

#include "nn/bert_model.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace bertprof {

/** One pre-training mini-batch. */
struct PretrainBatch {
    /** Flat token ids, B*n entries. */
    std::vector<std::int64_t> tokenIds;
    /** Flat segment ids, B*n entries (0/1). */
    std::vector<std::int64_t> segmentIds;
    /** Flat positions (in [0, B*n)) of masked-LM predictions. */
    std::vector<std::int64_t> mlmPositions;
    /** Vocabulary labels for each masked position. */
    std::vector<std::int64_t> mlmLabels;
    /** NSP labels, B entries (0 = not next, 1 = is next). */
    std::vector<std::int64_t> nspLabels;
    /**
     * Real sequence lengths (B entries) for padded batches; empty
     * means every sequence uses the full seqLen. When set, padded
     * positions are masked out of attention.
     */
    std::vector<std::int64_t> seqLengths;
};

/** Losses and prediction accuracies of one forward/backward step. */
struct PretrainStepResult {
    double mlmLoss = 0.0;
    double nspLoss = 0.0;
    /** Fraction of masked positions predicted correctly (argmax). */
    double mlmAccuracy = 0.0;
    /** Fraction of NSP labels predicted correctly. */
    double nspAccuracy = 0.0;

    double totalLoss() const { return mlmLoss + nspLoss; }

    /**
     * False when either loss went NaN/Inf (overflow or corrupted
     * activations). The step must then be skipped: gradients are
     * unusable and the encoder backward pass was not run.
     */
    bool lossFinite() const { return std::isfinite(totalLoss()); }
};

/** BERT with both pre-training heads; runs full training steps. */
class BertPretrainer : public Module
{
  public:
    BertPretrainer(const BertConfig &config, NnRuntime *rt);

    /**
     * One forward + backward pass: computes both losses and leaves
     * accumulated gradients on every parameter (call zeroGrad()
     * first; the optimizer step is separate). With loss_scale != 1
     * every gradient is multiplied by it — pair with GradScaler for
     * mixed-precision-style dynamic loss scaling.
     */
    PretrainStepResult forwardBackward(const PretrainBatch &batch,
                                       float loss_scale = 1.0f);

    /**
     * Forward-only masked-LM logits over a dynamically-shaped padded
     * batch (the serving path): `batch` sequences of `seq` tokens
     * (seq <= maxPositions, independent of config.seqLen), `lengths`
     * masking padded tails out of attention (empty = all full), and
     * `mlm_positions` flat indices (in [0, batch*seq)) of the tokens
     * to decode. Requires eval mode (setTraining(false)); retains
     * nothing and never touches the dropout RNG stream. Returns
     * logits [|mlm_positions|, vocabSize].
     */
    Tensor mlmLogitsEval(const std::vector<std::int64_t> &token_ids,
                         const std::vector<std::int64_t> &segment_ids,
                         std::int64_t batch, std::int64_t seq,
                         const std::vector<std::int64_t> &lengths,
                         const std::vector<std::int64_t> &mlm_positions);

    void collectParameters(std::vector<Parameter *> &out) override;

    void initialize(Rng &rng, float stddev = 0.02f);

    BertModel &model() { return model_; }

    const BertConfig &config() const { return config_; }

  protected:
    void collectChildren(std::vector<Module *> &out) override;

  private:
    BertConfig config_;
    NnRuntime *rt_;
    BertModel model_;
    Linear pooler_;
    Linear mlmTransform_;
    LayerNorm mlmLn_;
    Parameter mlmDecoderBias_;
    Linear nsp_;
};

} // namespace bertprof

#endif // BERTPROF_NN_BERT_PRETRAINER_H
