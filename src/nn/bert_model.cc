#include "nn/bert_model.h"

#include <sstream>

#include "ops/dropout.h"
#include "ops/elementwise.h"
#include "ops/embedding.h"
#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

BertModel::BertModel(const BertConfig &config, NnRuntime *rt)
    : config_(config), rt_(rt),
      tokTable_("embeddings.token",
                Shape({config.vocabSize, config.dModel})),
      posTable_("embeddings.position",
                Shape({config.maxPositions, config.dModel})),
      segTable_("embeddings.segment",
                Shape({config.typeVocab, config.dModel})),
      embLn_("embeddings.ln", config.dModel, rt, LayerScope::Embedding,
             SubLayer::EmbeddingOps)
{
    BP_REQUIRE(rt_ != nullptr);
    BP_REQUIRE(config_.seqLen <= config_.maxPositions);
    for (int l = 0; l < config_.numLayers; ++l) {
        std::ostringstream name;
        name << "encoder." << l;
        layers_.push_back(std::make_unique<EncoderLayer>(
            name.str(), config_.dModel, config_.numHeads, config_.dFf, rt_,
            l));
    }
    attnMask_ = Tensor(Shape({config_.seqLen, config_.seqLen}));
}

void
BertModel::setPaddingMask(const std::vector<std::int64_t> &lengths)
{
    BP_REQUIRE(static_cast<std::int64_t>(lengths.size()) ==
               config_.batch);
    const std::int64_t n = config_.seqLen;
    attnMask_ = Tensor(Shape({config_.batch, n, n}));
    for (std::int64_t b = 0; b < config_.batch; ++b) {
        const std::int64_t len = lengths[static_cast<std::size_t>(b)];
        BP_REQUIRE(len >= 1 && len <= n);
        float *m = attnMask_.data() + b * n * n;
        for (std::int64_t i = 0; i < n; ++i)
            for (std::int64_t j = len; j < n; ++j)
                m[i * n + j] = -1e9f;
    }
}

void
BertModel::clearPaddingMask()
{
    attnMask_ = Tensor(Shape({config_.seqLen, config_.seqLen}));
}

void
BertModel::initialize(Rng &rng, float stddev)
{
    tokTable_.value.fillNormal(rng, 0.0f, stddev);
    posTable_.value.fillNormal(rng, 0.0f, stddev);
    segTable_.value.fillNormal(rng, 0.0f, stddev);
    for (auto &layer : layers_)
        layer->initialize(rng, stddev);
}

Tensor
BertModel::forward(const std::vector<std::int64_t> &token_ids,
                   const std::vector<std::int64_t> &segment_ids)
{
    return forwardImpl(token_ids, segment_ids, config_.batch,
                       config_.seqLen, attnMask_);
}

Tensor
BertModel::forwardEval(const std::vector<std::int64_t> &token_ids,
                       const std::vector<std::int64_t> &segment_ids,
                       std::int64_t batch, std::int64_t seq,
                       const std::vector<std::int64_t> &lengths)
{
    BP_REQUIRE(!isTraining());
    BP_REQUIRE(batch >= 1);
    BP_REQUIRE(seq >= 1 && seq <= config_.maxPositions);
    Tensor mask;
    if (lengths.empty()) {
        mask = Tensor(Shape({seq, seq}));
    } else {
        BP_REQUIRE(static_cast<std::int64_t>(lengths.size()) == batch);
        mask = Tensor(Shape({batch, seq, seq}));
        for (std::int64_t b = 0; b < batch; ++b) {
            const std::int64_t len =
                lengths[static_cast<std::size_t>(b)];
            BP_REQUIRE(len >= 1 && len <= seq);
            float *m = mask.data() + b * seq * seq;
            for (std::int64_t i = 0; i < seq; ++i)
                for (std::int64_t j = len; j < seq; ++j)
                    m[i * seq + j] = -1e9f;
        }
    }
    return forwardImpl(token_ids, segment_ids, batch, seq, mask);
}

Tensor
BertModel::forwardImpl(const std::vector<std::int64_t> &token_ids,
                       const std::vector<std::int64_t> &segment_ids,
                       std::int64_t batch, std::int64_t seq,
                       const Tensor &mask)
{
    const std::int64_t tokens = batch * seq;
    BP_REQUIRE(static_cast<std::int64_t>(token_ids.size()) == tokens);
    BP_REQUIRE(static_cast<std::int64_t>(segment_ids.size()) == tokens);
    const bool training = isTraining();
    std::vector<std::int64_t> position_ids(token_ids.size());
    for (std::int64_t t = 0; t < tokens; ++t)
        position_ids[static_cast<std::size_t>(t)] = t % seq;

    Tensor tok(Shape({tokens, config_.dModel}));
    Tensor pos(Shape({tokens, config_.dModel}));
    Tensor seg(Shape({tokens, config_.dModel}));
    {
        ScopedKernel k(rt_->profiler, "emb.token.gather", OpKind::Gather,
                       Phase::Fwd, LayerScope::Embedding,
                       SubLayer::EmbeddingOps);
        k.setStats(embeddingForward(tokTable_.value, token_ids, tok));
    }
    {
        ScopedKernel k(rt_->profiler, "emb.position.gather", OpKind::Gather,
                       Phase::Fwd, LayerScope::Embedding,
                       SubLayer::EmbeddingOps);
        k.setStats(embeddingForward(posTable_.value, position_ids, pos));
    }
    {
        ScopedKernel k(rt_->profiler, "emb.segment.gather", OpKind::Gather,
                       Phase::Fwd, LayerScope::Embedding,
                       SubLayer::EmbeddingOps);
        k.setStats(embeddingForward(segTable_.value, segment_ids, seg));
    }
    Tensor summed(tok.shape());
    {
        ScopedKernel k(rt_->profiler, "emb.add_pos", OpKind::Elementwise,
                       Phase::Fwd, LayerScope::Embedding,
                       SubLayer::EmbeddingOps);
        k.setStats(addForward(tok, pos, summed));
    }
    {
        ScopedKernel k(rt_->profiler, "emb.add_seg", OpKind::Elementwise,
                       Phase::Fwd, LayerScope::Embedding,
                       SubLayer::EmbeddingOps);
        k.setStats(addForward(summed, seg, summed));
    }
    Tensor normed = embLn_.forward(summed);
    Tensor hidden;
    if (training) {
        savedTokenIds_ = token_ids;
        savedSegmentIds_ = segment_ids;
        savedPositionIds_ = std::move(position_ids);
        hidden = Tensor(normed.shape());
        embDropMask_ = Tensor(normed.shape());
        ScopedKernel k(rt_->profiler, "emb.dropout", OpKind::Elementwise,
                       Phase::Fwd, LayerScope::Embedding,
                       SubLayer::EmbeddingOps);
        k.setStats(dropoutForward(normed, rt_->effectiveDropout(), rt_->rng,
                                  hidden, embDropMask_));
    } else {
        // Eval: the embedding dropout is an exact identity and the
        // backward bookkeeping (ids, dropout mask) is not retained.
        savedTokenIds_.clear();
        savedSegmentIds_.clear();
        savedPositionIds_.clear();
        embDropMask_ = Tensor();
        hidden = std::move(normed);
    }

    for (auto &layer : layers_)
        hidden = layer->forward(hidden, mask, batch, seq);
    return hidden;
}

void
BertModel::backward(const Tensor &dhidden)
{
    BP_CHECK_RANK(dhidden, 2);
    BP_CHECK_SAME_SHAPE(dhidden, embDropMask_);
    BP_DCHECK_FINITE(dhidden);
    Tensor grad = dhidden.clone();
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        grad = (*it)->backward(grad);

    Tensor dnormed(grad.shape());
    {
        ScopedKernel k(rt_->profiler, "emb.dropout.bwd",
                       OpKind::Elementwise, Phase::Bwd,
                       LayerScope::Embedding, SubLayer::EmbeddingOps);
        k.setStats(dropoutBackward(grad, embDropMask_, dnormed));
    }
    Tensor dsummed = embLn_.backward(dnormed);
    {
        ScopedKernel k(rt_->profiler, "emb.token.scatter", OpKind::Gather,
                       Phase::Bwd, LayerScope::Embedding,
                       SubLayer::EmbeddingOps);
        k.setStats(
            embeddingBackward(dsummed, savedTokenIds_, tokTable_.grad));
    }
    {
        ScopedKernel k(rt_->profiler, "emb.position.scatter",
                       OpKind::Gather, Phase::Bwd, LayerScope::Embedding,
                       SubLayer::EmbeddingOps);
        k.setStats(embeddingBackward(dsummed, savedPositionIds_,
                                     posTable_.grad));
    }
    {
        ScopedKernel k(rt_->profiler, "emb.segment.scatter", OpKind::Gather,
                       Phase::Bwd, LayerScope::Embedding,
                       SubLayer::EmbeddingOps);
        k.setStats(embeddingBackward(dsummed, savedSegmentIds_,
                                     segTable_.grad));
    }
}

void
BertModel::collectParameters(std::vector<Parameter *> &out)
{
    out.push_back(&tokTable_);
    out.push_back(&posTable_);
    out.push_back(&segTable_);
    embLn_.collectParameters(out);
    for (auto &layer : layers_)
        layer->collectParameters(out);
}

void
BertModel::collectChildren(std::vector<Module *> &out)
{
    out.push_back(&embLn_);
    for (auto &layer : layers_)
        out.push_back(layer.get());
}

} // namespace bertprof
