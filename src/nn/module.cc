#include "nn/module.h"

namespace bertprof {

void
Module::setTraining(bool training)
{
    training_ = training;
    std::vector<Module *> children;
    collectChildren(children);
    for (Module *child : children)
        child->setTraining(training);
}

void
Module::zeroGrad()
{
    for (Parameter *param : parameters())
        param->zeroGrad();
}

std::int64_t
Module::parameterCount()
{
    std::int64_t total = 0;
    for (Parameter *param : parameters())
        total += param->value.numel();
    return total;
}

void
Module::saveParameters(StateWriter &writer)
{
    const std::vector<Parameter *> params = parameters();
    writer.i64("model.params",
               static_cast<std::int64_t>(params.size()));
    for (const Parameter *param : params) {
        writer.str("model.name", param->name);
        writer.tensor(param->name, param->value);
    }
}

IoStatus
Module::loadParameters(StateReader &reader)
{
    const std::vector<Parameter *> params = parameters();
    std::int64_t count = 0;
    if (!reader.i64("model.params", count))
        return reader.status();
    if (count != static_cast<std::int64_t>(params.size())) {
        return IoStatus::failure(
            IoError::BadFormat,
            "checkpoint holds " + std::to_string(count) +
                " parameters, model has " +
                std::to_string(params.size()));
    }
    for (Parameter *param : params) {
        std::string name;
        if (!reader.str("model.name", name))
            return reader.status();
        if (name != param->name) {
            return IoStatus::failure(
                IoError::BadFormat,
                "checkpoint parameter '" + name +
                    "' does not match model parameter '" + param->name +
                    "' (layout changed?)");
        }
        if (!reader.tensor(param->name, param->value))
            return reader.status();
    }
    return IoStatus::success();
}

} // namespace bertprof
