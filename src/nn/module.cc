#include "nn/module.h"

namespace bertprof {

void
Module::zeroGrad()
{
    for (Parameter *param : parameters())
        param->zeroGrad();
}

std::int64_t
Module::parameterCount()
{
    std::int64_t total = 0;
    for (Parameter *param : parameters())
        total += param->value.numel();
    return total;
}

} // namespace bertprof
