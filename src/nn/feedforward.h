/**
 * @file
 * The FC feed-forward sub-layer of a transformer encoder: FC-1
 * (d_model -> d_ff), GeLU, FC-2 (d_ff -> d_model). These are the
 * paper's two big FC GEMMs plus the memory-bound GeLU kernels.
 */

#ifndef BERTPROF_NN_FEEDFORWARD_H
#define BERTPROF_NN_FEEDFORWARD_H

#include "nn/linear.h"
#include "nn/module.h"

namespace bertprof {

/** Position-wise feed-forward network. */
class FeedForward : public Module
{
  public:
    FeedForward(const std::string &name, std::int64_t d_model,
                std::int64_t d_ff, NnRuntime *rt, int layer = -1);

    /** Forward over [rows, d_model]. */
    Tensor forward(const Tensor &x);

    /** Backward; accumulates grads, returns dx. */
    Tensor backward(const Tensor &dout);

    void collectParameters(std::vector<Parameter *> &out) override;

    void initialize(Rng &rng, float stddev = 0.02f);

    Linear &fc1() { return fc1_; }
    Linear &fc2() { return fc2_; }

  protected:
    void collectChildren(std::vector<Module *> &out) override;

  private:
    NnRuntime *rt_;
    int layer_;
    Linear fc1_;
    Linear fc2_;
    Tensor savedPreGelu_;
    bool hasSaved_ = false;
};

} // namespace bertprof

#endif // BERTPROF_NN_FEEDFORWARD_H
