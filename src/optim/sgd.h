/**
 * @file
 * Plain stochastic gradient descent with optional momentum — the
 * simplest baseline optimizer, used by tests and comparisons.
 */

#ifndef BERTPROF_OPTIM_SGD_H
#define BERTPROF_OPTIM_SGD_H

#include <unordered_map>

#include "optim/optimizer.h"

namespace bertprof {

/** SGD with optional classical momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(OptimizerConfig config, float momentum = 0.0f,
        Profiler *profiler = nullptr)
        : Optimizer(config, profiler), momentum_(momentum)
    {
    }

    void step(const std::vector<Parameter *> &params) override;

    const char *kindName() const override { return "sgd"; }

    void saveState(const std::vector<Parameter *> &params,
                   StateWriter &writer) const override;
    IoStatus loadState(const std::vector<Parameter *> &params,
                       StateReader &reader) override;

  private:
    float momentum_;
    std::unordered_map<const Parameter *, Tensor> velocity_;
};

} // namespace bertprof

#endif // BERTPROF_OPTIM_SGD_H
