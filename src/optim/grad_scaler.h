/**
 * @file
 * Dynamic loss scaling for mixed-precision training (the mechanism
 * behind the paper's MP setup [62]: FWD/BWD run in FP16, so small
 * gradients underflow unless the loss — and therefore every gradient
 * — is scaled up; the scaler unscales before the FP32 optimizer step
 * and backs off when overflow produces non-finite gradients).
 */

#ifndef BERTPROF_OPTIM_GRAD_SCALER_H
#define BERTPROF_OPTIM_GRAD_SCALER_H

#include <cstdint>
#include <vector>

#include "io/checkpoint.h"
#include "nn/module.h"

namespace bertprof {

/** Dynamic loss scaler with growth/backoff, apex-amp style. */
class GradScaler
{
  public:
    /**
     * @param initial_scale Starting loss scale.
     * @param growth_factor Multiplier after a stable streak.
     * @param backoff_factor Multiplier on overflow.
     * @param growth_interval Steps without overflow before growing.
     */
    explicit GradScaler(float initial_scale = 65536.0f,
                        float growth_factor = 2.0f,
                        float backoff_factor = 0.5f,
                        std::int64_t growth_interval = 200);

    /** The scale to multiply the loss (or initial gradient) by. */
    float scale() const { return scale_; }

    /**
     * Divide every gradient by the current scale, checking for
     * non-finite values. @return true if all gradients are finite
     * (the optimizer step may proceed); false if overflow was found
     * (gradients are zeroed and the step must be skipped).
     */
    bool unscale(const std::vector<Parameter *> &params);

    /**
     * Advance the dynamic schedule after unscale(): on overflow the
     * scale backs off; after growth_interval clean steps it grows.
     */
    void update(bool grads_finite);

    /** Steps skipped because of overflow so far. */
    std::int64_t skippedSteps() const { return skipped_; }

    /** Clean steps since the last scale change (testing/resume). */
    std::int64_t stableSteps() const { return stableSteps_; }

    /**
     * Serialize the dynamic state (scale, stable-step streak, skip
     * count). The growth/backoff hyperparameters come from the
     * constructor, not the checkpoint.
     */
    void saveState(StateWriter &writer) const;

    /** Restore state written by saveState(); typed error on
     *  mismatch. */
    IoStatus loadState(StateReader &reader);

  private:
    float scale_;
    float growthFactor_;
    float backoffFactor_;
    std::int64_t growthInterval_;
    std::int64_t stableSteps_ = 0;
    std::int64_t skipped_ = 0;
};

} // namespace bertprof

#endif // BERTPROF_OPTIM_GRAD_SCALER_H
