/**
 * @file
 * Adam (Kingma & Ba) with decoupled weight decay — the alternative
 * optimizer the paper uses for its fusion study (Fig. 12a). State
 * (momentum m, velocity v) is FP32 regardless of training precision.
 */

#ifndef BERTPROF_OPTIM_ADAM_H
#define BERTPROF_OPTIM_ADAM_H

#include <unordered_map>

#include "optim/optimizer.h"

namespace bertprof {

/** Adam optimizer with per-parameter m/v state. */
class Adam : public Optimizer
{
  public:
    explicit Adam(OptimizerConfig config, Profiler *profiler = nullptr)
        : Optimizer(config, profiler)
    {
    }

    void step(const std::vector<Parameter *> &params) override;

    const char *kindName() const override { return "adam"; }

    void saveState(const std::vector<Parameter *> &params,
                   StateWriter &writer) const override;
    IoStatus loadState(const std::vector<Parameter *> &params,
                       StateReader &reader) override;

  private:
    struct State {
        Tensor m;
        Tensor v;
        State(const Shape &shape) : m(shape), v(shape) {}
    };
    std::unordered_map<const Parameter *, State> state_;
};

} // namespace bertprof

#endif // BERTPROF_OPTIM_ADAM_H
