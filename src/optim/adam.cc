#include "optim/adam.h"

#include <cmath>

#include "runtime/parallel_for.h"

namespace bertprof {

void
Adam::step(const std::vector<Parameter *> &params)
{
    checkParams(params);
    ++steps_;
    const float scale = globalGradScale(params);
    const double bc1 =
        1.0 - std::pow(config_.beta1, static_cast<double>(steps_));
    const double bc2 =
        1.0 - std::pow(config_.beta2, static_cast<double>(steps_));

    for (Parameter *param : params) {
        auto [it, inserted] =
            state_.try_emplace(param, param->value.shape());
        State &st = it->second;
        const std::int64_t n = param->value.numel();
        float *w = param->value.data();
        const float *g = param->grad.data();
        float *m = st.m.data();
        float *v = st.v.data();
        const float wd = param->noDecay ? 0.0f : config_.weightDecay;

        // Stage 1: update m/v, form the bias-corrected direction.
        Tensor update(param->value.shape());
        float *u = update.data();
        {
            ScopedKernel k(profiler_, param->name + ".adam.stage1",
                           OpKind::Elementwise, Phase::Update,
                           LayerScope::Optimizer, SubLayer::LambStage1);
            k.setStats(elementwiseStats(n, 4, 3, 12));
            // Every element's m/v/u update is independent, so the
            // parallel result is bitwise identical to serial.
            parallelFor(0, n, kElementwiseGrain, [&](std::int64_t lo,
                                                     std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) {
                    const float gi = g[i] * scale;
                    m[i] = config_.beta1 * m[i] +
                           (1.0f - config_.beta1) * gi;
                    v[i] = config_.beta2 * v[i] +
                           (1.0f - config_.beta2) * gi * gi;
                    const double mhat = m[i] / bc1;
                    const double vhat = v[i] / bc2;
                    u[i] = static_cast<float>(
                               mhat /
                               (std::sqrt(vhat) + config_.epsilon)) +
                           wd * w[i];
                }
            });
        }
        // Stage 2: apply the update.
        {
            ScopedKernel k(profiler_, param->name + ".adam.stage2",
                           OpKind::Elementwise, Phase::Update,
                           LayerScope::Optimizer, SubLayer::LambStage2);
            k.setStats(elementwiseStats(n, 2, 1, 2));
            parallelFor(0, n, kElementwiseGrain,
                        [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i)
                                w[i] -= config_.learningRate * u[i];
                        });
        }
    }
}

void
Adam::saveState(const std::vector<Parameter *> &params,
                StateWriter &writer) const
{
    Optimizer::saveState(params, writer);
    writer.i64("adam.params", static_cast<std::int64_t>(params.size()));
    for (const Parameter *param : params) {
        const auto it = state_.find(param);
        writer.i64(param->name + ".has", it != state_.end() ? 1 : 0);
        if (it != state_.end()) {
            writer.tensor(param->name + ".m", it->second.m);
            writer.tensor(param->name + ".v", it->second.v);
        }
    }
}

IoStatus
Adam::loadState(const std::vector<Parameter *> &params,
                StateReader &reader)
{
    IoStatus status = Optimizer::loadState(params, reader);
    if (!status.ok())
        return status;
    std::int64_t count = 0;
    if (!reader.i64("adam.params", count))
        return reader.status();
    if (count != static_cast<std::int64_t>(params.size())) {
        return IoStatus::failure(
            IoError::BadFormat,
            "checkpoint holds adam state for " + std::to_string(count) +
                " parameters, model has " +
                std::to_string(params.size()));
    }
    state_.clear();
    for (Parameter *param : params) {
        std::int64_t has = 0;
        if (!reader.i64(param->name + ".has", has))
            return reader.status();
        if (has == 0)
            continue;
        auto [it, inserted] =
            state_.try_emplace(param, param->value.shape());
        if (!reader.tensor(param->name + ".m", it->second.m) ||
            !reader.tensor(param->name + ".v", it->second.v)) {
            return reader.status();
        }
    }
    return IoStatus::success();
}

} // namespace bertprof
