#include "optim/sgd.h"

#include "runtime/parallel_for.h"

namespace bertprof {

void
Sgd::step(const std::vector<Parameter *> &params)
{
    checkParams(params);
    ++steps_;
    const float scale = globalGradScale(params);
    for (Parameter *param : params) {
        ScopedKernel k(profiler_, param->name + ".sgd",
                       OpKind::Elementwise, Phase::Update,
                       LayerScope::Optimizer, SubLayer::LambStage2);
        const std::int64_t n = param->value.numel();
        float *w = param->value.data();
        const float *g = param->grad.data();
        if (momentum_ > 0.0f) {
            auto [it, inserted] =
                velocity_.try_emplace(param, param->value.shape());
            float *v = it->second.data();
            parallelFor(0, n, kElementwiseGrain,
                        [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i) {
                                v[i] = momentum_ * v[i] + g[i] * scale;
                                w[i] -= config_.learningRate * v[i];
                            }
                        });
            k.setStats(elementwiseStats(n, 3, 2, 4));
        } else {
            parallelFor(0, n, kElementwiseGrain,
                        [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i)
                                w[i] -= config_.learningRate * g[i] *
                                        scale;
                        });
            k.setStats(elementwiseStats(n, 2, 1, 2));
        }
    }
}

} // namespace bertprof
