#include "optim/sgd.h"

#include "runtime/parallel_for.h"

namespace bertprof {

void
Sgd::step(const std::vector<Parameter *> &params)
{
    checkParams(params);
    ++steps_;
    const float scale = globalGradScale(params);
    for (Parameter *param : params) {
        ScopedKernel k(profiler_, param->name + ".sgd",
                       OpKind::Elementwise, Phase::Update,
                       LayerScope::Optimizer, SubLayer::LambStage2);
        const std::int64_t n = param->value.numel();
        float *w = param->value.data();
        const float *g = param->grad.data();
        if (momentum_ > 0.0f) {
            auto [it, inserted] =
                velocity_.try_emplace(param, param->value.shape());
            float *v = it->second.data();
            parallelFor(0, n, kElementwiseGrain,
                        [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i) {
                                v[i] = momentum_ * v[i] + g[i] * scale;
                                w[i] -= config_.learningRate * v[i];
                            }
                        });
            k.setStats(elementwiseStats(n, 3, 2, 4));
        } else {
            parallelFor(0, n, kElementwiseGrain,
                        [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i)
                                w[i] -= config_.learningRate * g[i] *
                                        scale;
                        });
            k.setStats(elementwiseStats(n, 2, 1, 2));
        }
    }
}

void
Sgd::saveState(const std::vector<Parameter *> &params,
               StateWriter &writer) const
{
    Optimizer::saveState(params, writer);
    writer.f32("sgd.momentum", momentum_);
    writer.i64("sgd.params", static_cast<std::int64_t>(params.size()));
    for (const Parameter *param : params) {
        const auto it = velocity_.find(param);
        writer.i64(param->name + ".has", it != velocity_.end() ? 1 : 0);
        if (it != velocity_.end())
            writer.tensor(param->name + ".vel", it->second);
    }
}

IoStatus
Sgd::loadState(const std::vector<Parameter *> &params,
               StateReader &reader)
{
    IoStatus status = Optimizer::loadState(params, reader);
    if (!status.ok())
        return status;
    float momentum = 0.0f;
    std::int64_t count = 0;
    if (!reader.f32("sgd.momentum", momentum) ||
        !reader.i64("sgd.params", count)) {
        return reader.status();
    }
    if (momentum != momentum_) {
        return IoStatus::failure(
            IoError::BadFormat,
            "checkpoint holds sgd state with momentum " +
                std::to_string(momentum) + ", optimizer uses " +
                std::to_string(momentum_));
    }
    if (count != static_cast<std::int64_t>(params.size())) {
        return IoStatus::failure(
            IoError::BadFormat,
            "checkpoint holds sgd state for " + std::to_string(count) +
                " parameters, model has " +
                std::to_string(params.size()));
    }
    velocity_.clear();
    for (Parameter *param : params) {
        std::int64_t has = 0;
        if (!reader.i64(param->name + ".has", has))
            return reader.status();
        if (has == 0)
            continue;
        auto [it, inserted] =
            velocity_.try_emplace(param, param->value.shape());
        if (!reader.tensor(param->name + ".vel", it->second))
            return reader.status();
    }
    return IoStatus::success();
}

} // namespace bertprof
