/**
 * @file
 * Optimizer interface for the CPU substrate. LAMB (the optimizer the
 * paper identifies as the second-largest runtime contributor) and
 * Adam are implemented on top; both execute as the two-stage
 * per-tensor structure of the paper's Fig. 7 (stage 1 computes the
 * update direction and statistics, stage 2 applies it), and both keep
 * FP32 state regardless of training precision.
 */

#ifndef BERTPROF_OPTIM_OPTIMIZER_H
#define BERTPROF_OPTIM_OPTIMIZER_H

#include <cstdint>
#include <vector>

#include "io/checkpoint.h"
#include "nn/module.h"
#include "runtime/profiler.h"

namespace bertprof {

/** Hyperparameters shared across the optimizers. */
struct OptimizerConfig {
    float learningRate = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-6f;
    /** Decoupled weight decay (skipped for noDecay parameters). */
    float weightDecay = 0.01f;
    /** Clip the global gradient L2 norm (0 disables clipping). */
    float maxGradNorm = 0.0f;
};

/** Base class: owns hyperparameters, step count, and profiling. */
class Optimizer
{
  public:
    explicit Optimizer(OptimizerConfig config, Profiler *profiler = nullptr)
        : config_(config), profiler_(profiler)
    {
    }
    virtual ~Optimizer() = default;

    /** Apply one update to every parameter using its .grad. */
    virtual void step(const std::vector<Parameter *> &params) = 0;

    /** Short kind tag ("adam", "lamb", ...) stamped into checkpoints
     *  so state is never loaded into the wrong update rule. */
    virtual const char *kindName() const = 0;

    /**
     * Serialize kind, step count, and all per-parameter state (Adam/
     * LAMB moments, SGD velocity) for `params` in order. A resumed
     * optimizer continues bitwise identically to an uninterrupted
     * one. `params` must be the same ordered set passed to step().
     */
    virtual void saveState(const std::vector<Parameter *> &params,
                           StateWriter &writer) const;

    /**
     * Restore state written by saveState() for the same parameter
     * ordering. Kind or shape mismatches are typed errors (the
     * optimizer is left partially loaded — discard it on failure).
     */
    virtual IoStatus loadState(const std::vector<Parameter *> &params,
                               StateReader &reader);

    /** Number of steps taken so far. */
    std::int64_t stepCount() const { return steps_; }

    /** Adjust the learning rate (e.g. for warmup schedules). */
    void setLearningRate(float lr) { config_.learningRate = lr; }

    const OptimizerConfig &config() const { return config_; }

  protected:
    /**
     * Compute the global gradient L2 norm and return the scale that
     * enforces maxGradNorm (1.0 when clipping is off or unneeded).
     * Records the GradNorm reduction kernel.
     */
    float globalGradScale(const std::vector<Parameter *> &params);

    /**
     * Entry contract shared by every step() implementation: no null
     * parameters, every gradient shaped like its value, and (debug
     * builds only) every gradient finite before it is consumed.
     */
    void checkParams(const std::vector<Parameter *> &params) const;

    OptimizerConfig config_;
    Profiler *profiler_;
    std::int64_t steps_ = 0;
};

} // namespace bertprof

#endif // BERTPROF_OPTIM_OPTIMIZER_H
