/**
 * @file
 * UnfusedAdam: the same update rule as Adam, executed the way an
 * eager framework without fused optimizers runs it — one separate
 * pass over memory per elementary operation, each with its own
 * profiler record and intermediate tensor. This is the real-execution
 * counterpart of the paper's Fig. 12a unfused-Adam bar: numerically
 * equivalent to Adam (up to fp rounding) but with ~16x the kernels
 * and several times the memory traffic.
 */

#ifndef BERTPROF_OPTIM_UNFUSED_ADAM_H
#define BERTPROF_OPTIM_UNFUSED_ADAM_H

#include <unordered_map>

#include "optim/optimizer.h"

namespace bertprof {

/** Eager-mode Adam: every elementary op is its own kernel. */
class UnfusedAdam : public Optimizer
{
  public:
    explicit UnfusedAdam(OptimizerConfig config,
                         Profiler *profiler = nullptr)
        : Optimizer(config, profiler)
    {
    }

    void step(const std::vector<Parameter *> &params) override;

    const char *kindName() const override { return "unfused_adam"; }

    void saveState(const std::vector<Parameter *> &params,
                   StateWriter &writer) const override;
    IoStatus loadState(const std::vector<Parameter *> &params,
                       StateReader &reader) override;

    /** Kernels this implementation launches per parameter tensor. */
    static constexpr int kKernelsPerTensor = 16;

  private:
    struct State {
        Tensor m;
        Tensor v;
        State(const Shape &shape) : m(shape), v(shape) {}
    };
    std::unordered_map<const Parameter *, State> state_;
};

} // namespace bertprof

#endif // BERTPROF_OPTIM_UNFUSED_ADAM_H
