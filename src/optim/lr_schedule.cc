#include "optim/lr_schedule.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace bertprof {

LrSchedule::LrSchedule(float peak_lr, std::int64_t warmup_steps,
                       std::int64_t total_steps, DecayKind decay,
                       double power)
    : peakLr_(peak_lr), warmupSteps_(warmup_steps),
      totalSteps_(total_steps), decay_(decay), power_(power)
{
    BP_REQUIRE(peak_lr >= 0.0f);
    BP_REQUIRE(warmup_steps >= 0);
    BP_REQUIRE(total_steps >= warmup_steps);
}

float
LrSchedule::at(std::int64_t step) const
{
    if (step < 0)
        step = 0;
    if (warmupSteps_ > 0 && step < warmupSteps_) {
        return peakLr_ * static_cast<float>(step + 1) /
               static_cast<float>(warmupSteps_);
    }
    if (decay_ == DecayKind::None || totalSteps_ == warmupSteps_)
        return peakLr_;
    const double span = static_cast<double>(totalSteps_ - warmupSteps_);
    const double progress =
        std::min(1.0, static_cast<double>(step - warmupSteps_) / span);
    switch (decay_) {
      case DecayKind::None:
        return peakLr_;
      case DecayKind::Linear:
        return peakLr_ * static_cast<float>(1.0 - progress);
      case DecayKind::Polynomial:
        return peakLr_ *
               static_cast<float>(std::pow(1.0 - progress, power_));
    }
    return peakLr_;
}

} // namespace bertprof
