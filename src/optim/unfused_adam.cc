#include "optim/unfused_adam.h"

#include <cmath>

#include "runtime/parallel_for.h"

namespace bertprof {

void
UnfusedAdam::step(const std::vector<Parameter *> &params)
{
    checkParams(params);
    ++steps_;
    const float scale = globalGradScale(params);
    const float bc1 = static_cast<float>(
        1.0 - std::pow(config_.beta1, static_cast<double>(steps_)));
    const float bc2 = static_cast<float>(
        1.0 - std::pow(config_.beta2, static_cast<double>(steps_)));

    for (Parameter *param : params) {
        auto [it, inserted] =
            state_.try_emplace(param, param->value.shape());
        State &st = it->second;
        const Shape &shape = param->value.shape();
        const std::int64_t n = param->value.numel();
        const float wd = param->noDecay ? 0.0f : config_.weightDecay;

        // Each lambda is one "kernel": a full pass over n elements
        // with its own profiler record — no fusion anywhere.
        auto unary = [&](const char *name, const Tensor &src, Tensor &dst,
                         auto fn, SubLayer sub) {
            ScopedKernel k(profiler_, param->name + ".uadam." + name,
                           OpKind::Elementwise, Phase::Update,
                           LayerScope::Optimizer, sub);
            k.setStats(elementwiseStats(n, 1, 1, 1));
            parallelFor(0, n, kElementwiseGrain,
                        [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i)
                                dst.at(i) = fn(src.at(i));
                        });
        };
        auto binary = [&](const char *name, const Tensor &a,
                          const Tensor &b, Tensor &dst, auto fn,
                          SubLayer sub) {
            ScopedKernel k(profiler_, param->name + ".uadam." + name,
                           OpKind::Elementwise, Phase::Update,
                           LayerScope::Optimizer, sub);
            k.setStats(elementwiseStats(n, 2, 1, 1));
            parallelFor(0, n, kElementwiseGrain,
                        [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i)
                                dst.at(i) = fn(a.at(i), b.at(i));
                        });
        };

        Tensor gs(shape), t1(shape), t2(shape), u(shape);
        const SubLayer s1 = SubLayer::LambStage1;
        const SubLayer s2 = SubLayer::LambStage2;

        // Moment updates (8 kernels).
        unary("g_scale", param->grad, gs,
              [&](float g) { return g * scale; }, s1);
        unary("m_decay", st.m, t1,
              [&](float m) { return m * config_.beta1; }, s1);
        unary("g_m", gs, t2,
              [&](float g) { return g * (1.0f - config_.beta1); }, s1);
        binary("m_add", t1, t2, st.m,
               [](float a, float b) { return a + b; }, s1);
        unary("v_decay", st.v, t1,
              [&](float v) { return v * config_.beta2; }, s1);
        binary("g_sq", gs, gs, t2,
               [](float a, float b) { return a * b; }, s1);
        unary("g_sq_scale", t2, t2,
              [&](float g) { return g * (1.0f - config_.beta2); }, s1);
        binary("v_add", t1, t2, st.v,
               [](float a, float b) { return a + b; }, s1);

        // Direction (5 kernels).
        unary("m_hat", st.m, t1, [&](float m) { return m / bc1; }, s1);
        unary("v_hat", st.v, t2, [&](float v) { return v / bc2; }, s1);
        unary("v_sqrt", t2, t2,
              [](float v) { return std::sqrt(v); }, s1);
        unary("v_eps", t2, t2,
              [&](float v) { return v + config_.epsilon; }, s1);
        binary("u_div", t1, t2, u,
               [](float a, float b) { return a / b; }, s1);

        // Weight decay + apply (3 kernels).
        unary("w_wd", param->value, t1,
              [&](float w) { return w * wd; }, s2);
        binary("u_wd", u, t1, u, [](float a, float b) { return a + b; },
               s2);
        binary("w_apply", param->value, u, param->value,
               [&](float w, float ui) {
                   return w - config_.learningRate * ui;
               },
               s2);
    }
}

void
UnfusedAdam::saveState(const std::vector<Parameter *> &params,
                       StateWriter &writer) const
{
    Optimizer::saveState(params, writer);
    writer.i64("uadam.params", static_cast<std::int64_t>(params.size()));
    for (const Parameter *param : params) {
        const auto it = state_.find(param);
        writer.i64(param->name + ".has", it != state_.end() ? 1 : 0);
        if (it != state_.end()) {
            writer.tensor(param->name + ".m", it->second.m);
            writer.tensor(param->name + ".v", it->second.v);
        }
    }
}

IoStatus
UnfusedAdam::loadState(const std::vector<Parameter *> &params,
                       StateReader &reader)
{
    IoStatus status = Optimizer::loadState(params, reader);
    if (!status.ok())
        return status;
    std::int64_t count = 0;
    if (!reader.i64("uadam.params", count))
        return reader.status();
    if (count != static_cast<std::int64_t>(params.size())) {
        return IoStatus::failure(
            IoError::BadFormat,
            "checkpoint holds unfused_adam state for " +
                std::to_string(count) + " parameters, model has " +
                std::to_string(params.size()));
    }
    state_.clear();
    for (Parameter *param : params) {
        std::int64_t has = 0;
        if (!reader.i64(param->name + ".has", has))
            return reader.status();
        if (has == 0)
            continue;
        auto [it, inserted] =
            state_.try_emplace(param, param->value.shape());
        if (!reader.tensor(param->name + ".m", it->second.m) ||
            !reader.tensor(param->name + ".v", it->second.v)) {
            return reader.status();
        }
    }
    return IoStatus::success();
}

} // namespace bertprof
