#include "optim/optimizer.h"

#include <cmath>

namespace bertprof {

float
Optimizer::globalGradScale(const std::vector<Parameter *> &params)
{
    ScopedKernel k(profiler_, "opt.grad_l2_norm", OpKind::Reduction,
                   Phase::Update, LayerScope::Optimizer,
                   SubLayer::GradNorm);
    double sum_sq = 0.0;
    std::int64_t total = 0;
    for (const Parameter *param : params) {
        const double norm = param->grad.l2Norm();
        sum_sq += norm * norm;
        total += param->grad.numel();
    }
    k.setStats(elementwiseStats(total, 1, 0, 2));
    const double global_norm = std::sqrt(sum_sq);
    if (config_.maxGradNorm <= 0.0f || global_norm <= config_.maxGradNorm ||
        global_norm == 0.0) {
        return 1.0f;
    }
    return static_cast<float>(config_.maxGradNorm / global_norm);
}

} // namespace bertprof
