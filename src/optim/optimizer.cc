#include "optim/optimizer.h"

#include <cmath>

#include "runtime/fault_injection.h"
#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

void
Optimizer::checkParams(const std::vector<Parameter *> &params) const
{
    // Fault site `optim.step`: a kill spec here simulates preemption
    // at optimizer-step entry — after backward, before any parameter
    // is touched — the worst moment short of a mid-update crash,
    // which the crash-safe checkpoint protocol makes unobservable.
    faultAt("optim.step");
    for (const Parameter *param : params) {
        BP_REQUIRE(param != nullptr);
        BP_CHECK_SAME_SHAPE(param->grad, param->value);
        BP_CHECK_NO_ALIAS(param->grad, param->value);
        BP_DCHECK_FINITE(param->grad);
    }
}

void
Optimizer::saveState(const std::vector<Parameter *> &params,
                     StateWriter &writer) const
{
    (void)params;
    writer.str("optim.kind", kindName());
    writer.i64("optim.steps", steps_);
}

IoStatus
Optimizer::loadState(const std::vector<Parameter *> &params,
                     StateReader &reader)
{
    (void)params;
    std::string kind;
    std::int64_t steps = 0;
    if (!reader.str("optim.kind", kind) ||
        !reader.i64("optim.steps", steps)) {
        return reader.status();
    }
    if (kind != kindName()) {
        return IoStatus::failure(
            IoError::BadFormat,
            "checkpoint holds state for optimizer '" + kind +
                "', cannot load into '" + kindName() + "'");
    }
    steps_ = steps;
    return IoStatus::success();
}

float
Optimizer::globalGradScale(const std::vector<Parameter *> &params)
{
    ScopedKernel k(profiler_, "opt.grad_l2_norm", OpKind::Reduction,
                   Phase::Update, LayerScope::Optimizer,
                   SubLayer::GradNorm);
    double sum_sq = 0.0;
    std::int64_t total = 0;
    for (const Parameter *param : params) {
        const double norm = param->grad.l2Norm();
        sum_sq += norm * norm;
        total += param->grad.numel();
    }
    k.setStats(elementwiseStats(total, 1, 0, 2));
    const double global_norm = std::sqrt(sum_sq);
    if (config_.maxGradNorm <= 0.0f || global_norm <= config_.maxGradNorm ||
        global_norm == 0.0) {
        return 1.0f;
    }
    return static_cast<float>(config_.maxGradNorm / global_norm);
}

} // namespace bertprof
