#include "optim/lamb.h"

#include <cmath>

#include "runtime/parallel_for.h"
#include "util/logging.h"

namespace bertprof {

void
Lamb::step(const std::vector<Parameter *> &params)
{
    checkParams(params);
    ++steps_;
    // LAMB's global pre-normalization: the L2 norm across all
    // gradients must complete before any parameter can update.
    const float scale = globalGradScale(params);
    const double bc1 =
        1.0 - std::pow(config_.beta1, static_cast<double>(steps_));
    const double bc2 =
        1.0 - std::pow(config_.beta2, static_cast<double>(steps_));

    for (Parameter *param : params) {
        auto [it, inserted] =
            state_.try_emplace(param, param->value.shape());
        State &st = it->second;
        const std::int64_t n = param->value.numel();
        float *w = param->value.data();
        const float *g = param->grad.data();
        float *m = st.m.data();
        float *v = st.v.data();
        const float wd = param->noDecay ? 0.0f : config_.weightDecay;

        // Stage 1 (the paper's LAMBStage1): moment updates, update
        // direction, and the two norms for the trust ratio. Reads
        // w, g, m, v — 4x the parameter footprint.
        Tensor update(param->value.shape());
        float *u = update.data();
        double w_sq = 0.0;
        double u_sq = 0.0;
        {
            ScopedKernel k(profiler_, param->name + ".lamb.stage1",
                           OpKind::Elementwise, Phase::Update,
                           LayerScope::Optimizer, SubLayer::LambStage1);
            k.setStats(elementwiseStats(n, 4, 3, 14));
            // Element-wise moment/direction updates parallelize with
            // bitwise-identical results; the two norm reductions use
            // ordered chunk merging (runtime/parallel_for.h), so any
            // parallel thread count produces the same bits and one
            // thread reproduces the sequential accumulation exactly.
            parallelFor(0, n, kElementwiseGrain, [&](std::int64_t lo,
                                                     std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) {
                    const float gi = g[i] * scale;
                    m[i] = config_.beta1 * m[i] +
                           (1.0f - config_.beta1) * gi;
                    v[i] = config_.beta2 * v[i] +
                           (1.0f - config_.beta2) * gi * gi;
                    const double mhat = m[i] / bc1;
                    const double vhat = v[i] / bc2;
                    u[i] = static_cast<float>(
                               mhat /
                               (std::sqrt(vhat) + config_.epsilon)) +
                           wd * w[i];
                }
            });
            w_sq = parallelReduceOrdered(
                0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    double acc = 0.0;
                    for (std::int64_t i = lo; i < hi; ++i)
                        acc += static_cast<double>(w[i]) * w[i];
                    return acc;
                });
            u_sq = parallelReduceOrdered(
                0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    double acc = 0.0;
                    for (std::int64_t i = lo; i < hi; ++i)
                        acc += static_cast<double>(u[i]) * u[i];
                    return acc;
                });
        }

        // Trust ratio: ||w|| / ||update||, defaulting to 1 when
        // either norm vanishes (You et al., Algorithm 2).
        const double w_norm = std::sqrt(w_sq);
        const double u_norm = std::sqrt(u_sq);
        const double trust =
            (w_norm > 0.0 && u_norm > 0.0) ? w_norm / u_norm : 1.0;
        st.lastTrust = trust;

        // Stage 2 (LAMBStage2): apply the rescaled update.
        {
            ScopedKernel k(profiler_, param->name + ".lamb.stage2",
                           OpKind::Elementwise, Phase::Update,
                           LayerScope::Optimizer, SubLayer::LambStage2);
            k.setStats(elementwiseStats(n, 2, 1, 2));
            const float step_size = static_cast<float>(
                config_.learningRate * trust);
            parallelFor(0, n, kElementwiseGrain,
                        [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i)
                                w[i] -= step_size * u[i];
                        });
        }
    }
}

double
Lamb::lastTrustRatio(const Parameter *param) const
{
    auto it = state_.find(param);
    BP_REQUIRE(it != state_.end());
    return it->second.lastTrust;
}

void
Lamb::saveState(const std::vector<Parameter *> &params,
                StateWriter &writer) const
{
    Optimizer::saveState(params, writer);
    writer.i64("lamb.params", static_cast<std::int64_t>(params.size()));
    for (const Parameter *param : params) {
        const auto it = state_.find(param);
        writer.i64(param->name + ".has", it != state_.end() ? 1 : 0);
        if (it != state_.end()) {
            writer.tensor(param->name + ".m", it->second.m);
            writer.tensor(param->name + ".v", it->second.v);
            writer.f64(param->name + ".trust", it->second.lastTrust);
        }
    }
}

IoStatus
Lamb::loadState(const std::vector<Parameter *> &params,
                StateReader &reader)
{
    IoStatus status = Optimizer::loadState(params, reader);
    if (!status.ok())
        return status;
    std::int64_t count = 0;
    if (!reader.i64("lamb.params", count))
        return reader.status();
    if (count != static_cast<std::int64_t>(params.size())) {
        return IoStatus::failure(
            IoError::BadFormat,
            "checkpoint holds lamb state for " + std::to_string(count) +
                " parameters, model has " +
                std::to_string(params.size()));
    }
    state_.clear();
    for (Parameter *param : params) {
        std::int64_t has = 0;
        if (!reader.i64(param->name + ".has", has))
            return reader.status();
        if (has == 0)
            continue;
        auto [it, inserted] =
            state_.try_emplace(param, param->value.shape());
        if (!reader.tensor(param->name + ".m", it->second.m) ||
            !reader.tensor(param->name + ".v", it->second.v) ||
            !reader.f64(param->name + ".trust", it->second.lastTrust)) {
            return reader.status();
        }
    }
    return IoStatus::success();
}

} // namespace bertprof
