#include "optim/grad_scaler.h"

#include <cmath>

#include "util/logging.h"

namespace bertprof {

GradScaler::GradScaler(float initial_scale, float growth_factor,
                       float backoff_factor, std::int64_t growth_interval)
    : scale_(initial_scale), growthFactor_(growth_factor),
      backoffFactor_(backoff_factor), growthInterval_(growth_interval)
{
    BP_REQUIRE(initial_scale > 0.0f);
    BP_REQUIRE(growth_factor > 1.0f);
    BP_REQUIRE(backoff_factor > 0.0f && backoff_factor < 1.0f);
    BP_REQUIRE(growth_interval >= 1);
}

bool
GradScaler::unscale(const std::vector<Parameter *> &params)
{
    const float inv = 1.0f / scale_;
    bool finite = true;
    for (Parameter *param : params) {
        float *g = param->grad.data();
        const std::int64_t n = param->grad.numel();
        for (std::int64_t i = 0; i < n; ++i) {
            if (!std::isfinite(g[i])) {
                finite = false;
                break;
            }
            g[i] *= inv;
        }
        if (!finite)
            break;
    }
    if (!finite) {
        // The step must be skipped; leave no stale scaled gradients.
        for (Parameter *param : params)
            param->zeroGrad();
    }
    return finite;
}

void
GradScaler::update(bool grads_finite)
{
    if (!grads_finite) {
        scale_ *= backoffFactor_;
        if (scale_ < 1.0f)
            scale_ = 1.0f;
        stableSteps_ = 0;
        ++skipped_;
        return;
    }
    if (++stableSteps_ >= growthInterval_) {
        scale_ *= growthFactor_;
        stableSteps_ = 0;
    }
}

void
GradScaler::saveState(StateWriter &writer) const
{
    writer.f32("scaler.scale", scale_);
    writer.i64("scaler.stable", stableSteps_);
    writer.i64("scaler.skipped", skipped_);
}

IoStatus
GradScaler::loadState(StateReader &reader)
{
    float scale = 0.0f;
    std::int64_t stable = 0, skipped = 0;
    if (!reader.f32("scaler.scale", scale) ||
        !reader.i64("scaler.stable", stable) ||
        !reader.i64("scaler.skipped", skipped)) {
        return reader.status();
    }
    if (!(scale > 0.0f)) {
        return IoStatus::failure(IoError::BadFormat,
                                 "checkpointed loss scale is not "
                                 "positive");
    }
    scale_ = scale;
    stableSteps_ = stable;
    skipped_ = skipped;
    return IoStatus::success();
}

} // namespace bertprof
