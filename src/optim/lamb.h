/**
 * @file
 * LAMB (You et al., "Reducing BERT Pre-Training Time from 3 Days to
 * 76 Minutes") — the layer-wise adaptive large-batch optimizer BERT
 * pre-training uses and the paper's Takeaway 1 target. Per tensor:
 * Adam-style moment updates, then the update is rescaled by the trust
 * ratio ||w|| / ||update||. A global gradient-norm pre-normalization
 * runs first, which serializes the update against the whole backprop
 * (Sec. 3.2.3 of the paper).
 */

#ifndef BERTPROF_OPTIM_LAMB_H
#define BERTPROF_OPTIM_LAMB_H

#include <unordered_map>

#include "optim/optimizer.h"

namespace bertprof {

/** LAMB optimizer with per-parameter m/v state and trust ratio. */
class Lamb : public Optimizer
{
  public:
    explicit Lamb(OptimizerConfig config, Profiler *profiler = nullptr)
        : Optimizer(config, profiler)
    {
    }

    void step(const std::vector<Parameter *> &params) override;

    const char *kindName() const override { return "lamb"; }

    void saveState(const std::vector<Parameter *> &params,
                   StateWriter &writer) const override;
    IoStatus loadState(const std::vector<Parameter *> &params,
                       StateReader &reader) override;

    /** The trust ratio applied on the most recent step (testing). */
    double lastTrustRatio(const Parameter *param) const;

  private:
    struct State {
        Tensor m;
        Tensor v;
        double lastTrust = 1.0;
        State(const Shape &shape) : m(shape), v(shape) {}
    };
    std::unordered_map<const Parameter *, State> state_;
};

} // namespace bertprof

#endif // BERTPROF_OPTIM_LAMB_H
