/**
 * @file
 * Learning-rate schedules used by BERT pre-training: linear warmup
 * followed by linear or polynomial decay (You et al. use warmup +
 * polynomial decay with LAMB). Pure functions of the step index so
 * they are trivially testable and resumable.
 */

#ifndef BERTPROF_OPTIM_LR_SCHEDULE_H
#define BERTPROF_OPTIM_LR_SCHEDULE_H

#include <cstdint>

namespace bertprof {

/** Shape of the post-warmup decay. */
enum class DecayKind {
    None,       ///< constant after warmup
    Linear,     ///< linear to zero at totalSteps
    Polynomial, ///< (1 - progress)^power
};

/** Warmup + decay schedule. */
class LrSchedule
{
  public:
    /**
     * @param peak_lr Learning rate at the end of warmup.
     * @param warmup_steps Steps of linear warmup from 0.
     * @param total_steps Step at which decay reaches zero.
     * @param decay Decay shape after warmup.
     * @param power Exponent for polynomial decay.
     */
    LrSchedule(float peak_lr, std::int64_t warmup_steps,
               std::int64_t total_steps,
               DecayKind decay = DecayKind::Linear, double power = 1.0);

    /** Learning rate at (0-based) step `step`. */
    float at(std::int64_t step) const;

    float peakLr() const { return peakLr_; }
    std::int64_t warmupSteps() const { return warmupSteps_; }
    std::int64_t totalSteps() const { return totalSteps_; }

  private:
    float peakLr_;
    std::int64_t warmupSteps_;
    std::int64_t totalSteps_;
    DecayKind decay_;
    double power_;
};

} // namespace bertprof

#endif // BERTPROF_OPTIM_LR_SCHEDULE_H
