#include "train/trainer.h"

#include <chrono>
#include <limits>

#include "runtime/fault_injection.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "util/logging.h"

namespace bertprof {

namespace {

/**
 * The architecture fields that determine parameter shapes and the
 * batch fields that determine the sample stream. A checkpoint from a
 * differently shaped run must be rejected, not partially loaded.
 */
struct ConfigField {
    const char *name;
    std::int64_t value;
};

std::vector<ConfigField>
fingerprint(const BertConfig &config)
{
    return {
        {"cfg.layers", config.numLayers},
        {"cfg.dmodel", config.dModel},
        {"cfg.heads", config.numHeads},
        {"cfg.dff", config.dFf},
        {"cfg.vocab", config.vocabSize},
        {"cfg.positions", config.maxPositions},
        {"cfg.batch", config.batch},
        {"cfg.seqlen", config.seqLen},
        {"cfg.maxpred", config.maxPredictions},
    };
}

} // namespace

const char *
stepStatusName(StepStatus status)
{
    switch (status) {
    case StepStatus::Applied:
        return "applied";
    case StepStatus::SkippedNonFiniteLoss:
        return "skipped-nonfinite-loss";
    case StepStatus::SkippedNonFiniteGrad:
        return "skipped-nonfinite-grad";
    }
    return "unknown";
}

Trainer::Trainer(BertPretrainer &model, Optimizer &optimizer,
                 GradScaler &scaler, const LrSchedule &schedule,
                 SyntheticDataset &dataset, NnRuntime &rt,
                 TrainerOptions options)
    : model_(model), optimizer_(optimizer), scaler_(scaler),
      schedule_(schedule), dataset_(dataset), rt_(rt),
      options_(std::move(options)), params_(model.parameters())
{
    if (options_.checkpointEvery > 0) {
        BP_REQUIRE(!options_.checkpointDir.empty());
        CheckpointManagerOptions mgr;
        mgr.dir = options_.checkpointDir;
        mgr.keepLast = options_.keepLast;
        mgr.ioRetries = options_.ioRetries;
        mgr.ioBackoffMs = options_.ioBackoffMs;
        manager_ = std::make_unique<CheckpointManager>(std::move(mgr));
    }
}

namespace {

std::int64_t
elapsedNs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

TrainStepResult
Trainer::trainStep()
{
    const auto stepStart = std::chrono::steady_clock::now();
    TrainStepResult result;
    result.lr = schedule_.at(iteration_);
    optimizer_.setLearningRate(result.lr);

    const PretrainBatch batch = dataset_.nextBatch();
    model_.zeroGrad();
    result.metrics = model_.forwardBackward(batch, scaler_.scale());

    if (!result.metrics.lossFinite()) {
        // The head gradients are partially written and poisoned;
        // discard them and back off the scale, exactly as a gradient
        // overflow would be handled.
        model_.zeroGrad();
        scaler_.update(false);
        result.status = StepStatus::SkippedNonFiniteLoss;
        BP_LOG(Warn) << "iter " << iteration_
                     << ": non-finite loss, step skipped (scale "
                        "backed off to "
                     << scaler_.scale() << ")";
    } else {
        // Fault site: contaminate one gradient the way FP16 overflow
        // would, so the scaler's skip-step path is exercised.
        switch (faultAt("train.grad")) {
        case FaultKind::NaN:
            params_.front()->grad.data()[0] =
                std::numeric_limits<float>::quiet_NaN();
            break;
        case FaultKind::Inf:
            params_.front()->grad.data()[0] =
                std::numeric_limits<float>::infinity();
            break;
        default:
            break;
        }

        const bool finite = scaler_.unscale(params_);
        scaler_.update(finite);
        if (finite) {
            optimizer_.step(params_);
            result.status = StepStatus::Applied;
        } else {
            result.status = StepStatus::SkippedNonFiniteGrad;
            BP_LOG(Warn) << "iter " << iteration_
                         << ": non-finite gradient, step skipped "
                            "(scale backed off to "
                         << scaler_.scale() << ")";
        }
    }

    ++iteration_;

    const std::int64_t stepNs = elapsedNs(stepStart);
    auto &metrics = MetricsRegistry::instance();
    metrics.counter("train.steps").add(1);
    if (result.status != StepStatus::Applied)
        metrics.counter("train.steps_skipped").add(1);
    metrics.histogram("train.step_seconds")
        .record(static_cast<double>(stepNs) * 1e-9);
    TraceRecorder::instance().onTrainStep(
        iteration_ - 1, static_cast<int>(result.status), stepNs,
        static_cast<float>(result.metrics.totalLoss()), result.lr);

    if (manager_ && iteration_ % options_.checkpointEvery == 0) {
        const auto ckptStart = std::chrono::steady_clock::now();
        result.checkpointStatus = saveCheckpoint();
        result.checkpointSaved = result.checkpointStatus.ok();
        const std::int64_t ckptNs = elapsedNs(ckptStart);
        metrics.counter("train.checkpoints").add(1);
        metrics.histogram("train.checkpoint_seconds")
            .record(static_cast<double>(ckptNs) * 1e-9);
        TraceRecorder::instance().onCheckpoint(
            iteration_, result.checkpointSaved, ckptNs);
        if (!result.checkpointSaved) {
            BP_LOG(Warn) << "iter " << iteration_
                         << ": checkpoint save failed: "
                         << result.checkpointStatus.toString();
        }
    }
    return result;
}

std::string
Trainer::buildPayload()
{
    StateWriter writer;
    writer.i64("trainer.iteration", iteration_);
    for (const ConfigField &field : fingerprint(model_.config()))
        writer.i64(field.name, field.value);
    model_.saveParameters(writer);
    optimizer_.saveState(params_, writer);
    scaler_.saveState(writer);
    writer.str("trainer.rng.dropout", rt_.rng.serialize());
    writer.str("trainer.rng.data", dataset_.rngState());
    return writer.payload();
}

IoStatus
Trainer::restorePayload(const std::string &payload, std::int64_t step)
{
    StateReader reader(payload);
    std::int64_t iteration = 0;
    if (!reader.i64("trainer.iteration", iteration))
        return reader.status();
    if (iteration != step) {
        return IoStatus::failure(
            IoError::BadFormat,
            "checkpoint file for step " + std::to_string(step) +
                " holds iteration " + std::to_string(iteration));
    }
    for (const ConfigField &field : fingerprint(model_.config())) {
        std::int64_t value = 0;
        if (!reader.i64(field.name, value))
            return reader.status();
        if (value != field.value) {
            return IoStatus::failure(
                IoError::BadFormat,
                std::string("checkpoint ") + field.name + "=" +
                    std::to_string(value) +
                    " does not match this run's " +
                    std::to_string(field.value));
        }
    }
    IoStatus status = model_.loadParameters(reader);
    if (!status.ok())
        return status;
    status = optimizer_.loadState(params_, reader);
    if (!status.ok())
        return status;
    status = scaler_.loadState(reader);
    if (!status.ok())
        return status;
    std::string dropout_rng, data_rng;
    if (!reader.str("trainer.rng.dropout", dropout_rng) ||
        !reader.str("trainer.rng.data", data_rng)) {
        return reader.status();
    }
    if (!rt_.rng.deserialize(dropout_rng)) {
        return IoStatus::failure(IoError::BadFormat,
                                 "malformed dropout RNG state");
    }
    if (!dataset_.restoreRngState(data_rng)) {
        return IoStatus::failure(IoError::BadFormat,
                                 "malformed dataset RNG state");
    }
    iteration_ = iteration;
    return IoStatus::success();
}

IoStatus
Trainer::saveCheckpoint()
{
    BP_REQUIRE(checkpointingEnabled());
    return manager_->save(iteration_, buildPayload());
}

IoStatus
Trainer::resumeLatest()
{
    BP_REQUIRE(checkpointingEnabled());
    std::string payload;
    std::int64_t step = 0;
    IoStatus status = manager_->loadLatest(payload, step);
    if (!status.ok())
        return status;
    status = restorePayload(payload, step);
    if (status.ok()) {
        BP_LOG(Info) << "resumed from checkpoint at iteration "
                     << step;
    }
    return status;
}

} // namespace bertprof
