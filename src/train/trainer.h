/**
 * @file
 * Crash-safe training-loop driver: one object that owns the step
 * sequence (schedule -> batch -> forward/backward -> unscale ->
 * optimizer) plus the robustness machinery around it — non-finite
 * loss/gradient skip-steps, cadenced checkpoints through the
 * crash-safe I/O layer, and bitwise-deterministic resume.
 *
 * A checkpoint captures *everything* the loop consumes: iteration
 * index, model parameters, optimizer moments, loss-scaler state, the
 * dropout RNG, and the dataset RNG. Resuming from step k therefore
 * replays the exact arithmetic (and the exact sample stream) the
 * uninterrupted run would have executed, at any thread count the
 * deterministic substrate supports.
 */

#ifndef BERTPROF_TRAIN_TRAINER_H
#define BERTPROF_TRAIN_TRAINER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "io/checkpoint.h"
#include "nn/bert_pretrainer.h"
#include "optim/grad_scaler.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"

namespace bertprof {

/** Checkpoint knobs for the training loop. */
struct TrainerOptions {
    /** Save every N completed iterations (0 disables checkpoints). */
    std::int64_t checkpointEvery = 0;
    /** Directory for `ckpt-<step>.bpck` (required when enabled). */
    std::string checkpointDir;
    /** Checkpoints retained after a successful save. */
    int keepLast = 3;
    /** Attempts per checkpoint I/O op on transient failure. */
    int ioRetries = 3;
    /** Base retry backoff in ms (doubles per attempt). */
    double ioBackoffMs = 1.0;
};

/** What one trainStep() did with the computed gradients. */
enum class StepStatus {
    /** Gradients were finite; the optimizer update was applied. */
    Applied,
    /** Loss went NaN/Inf; gradients discarded, scale backed off. */
    SkippedNonFiniteLoss,
    /** A gradient went NaN/Inf in unscale; step skipped, backoff. */
    SkippedNonFiniteGrad,
};

/** Human-readable tag for a StepStatus. */
const char *stepStatusName(StepStatus status);

/** Everything one trainStep() produced. */
struct TrainStepResult {
    PretrainStepResult metrics;
    StepStatus status = StepStatus::Applied;
    /** Learning rate the schedule assigned to this step. */
    float lr = 0.0f;
    /** True when this step's cadenced checkpoint save succeeded. */
    bool checkpointSaved = false;
    /** Status of the cadenced save (success() when none was due). */
    IoStatus checkpointStatus;
};

/**
 * Hardened pre-training loop over externally owned components (the
 * trainer borrows them; their lifetime must cover the trainer's).
 */
class Trainer
{
  public:
    Trainer(BertPretrainer &model, Optimizer &optimizer,
            GradScaler &scaler, const LrSchedule &schedule,
            SyntheticDataset &dataset, NnRuntime &rt,
            TrainerOptions options = {});

    /**
     * Run one training step: set the scheduled LR, draw a batch,
     * forward/backward with loss scaling, skip the update when the
     * loss or any gradient is non-finite (backing off the scale),
     * otherwise apply the optimizer; then save a checkpoint if the
     * cadence is due. A failed save is reported in the result but
     * never aborts training.
     */
    TrainStepResult trainStep();

    /** Completed iterations (checkpoint steps use this index). */
    std::int64_t iteration() const { return iteration_; }

    /** True when a checkpoint cadence/directory was configured. */
    bool checkpointingEnabled() const { return manager_ != nullptr; }

    /**
     * Persist the full training state for the current iteration
     * through the crash-safe store. Requires checkpointingEnabled().
     */
    IoStatus saveCheckpoint();

    /**
     * Restore the newest loadable checkpoint (walking past corrupt
     * or truncated files). NotFound means a fresh start — no usable
     * checkpoint in the directory. Any other error means a payload
     * from an incompatible model/optimizer/config; training state is
     * then unspecified and the run should be rebuilt from scratch.
     * Requires checkpointingEnabled().
     */
    IoStatus resumeLatest();

    const TrainerOptions &options() const { return options_; }

  private:
    /** Serialize iteration + config + model + optim + scaler + RNGs. */
    std::string buildPayload();
    /** Decode a payload produced by buildPayload(). */
    IoStatus restorePayload(const std::string &payload,
                            std::int64_t step);

    BertPretrainer &model_;
    Optimizer &optimizer_;
    GradScaler &scaler_;
    const LrSchedule &schedule_;
    SyntheticDataset &dataset_;
    NnRuntime &rt_;
    TrainerOptions options_;
    std::vector<Parameter *> params_;
    std::unique_ptr<CheckpointManager> manager_;
    std::int64_t iteration_ = 0;
};

} // namespace bertprof

#endif // BERTPROF_TRAIN_TRAINER_H
