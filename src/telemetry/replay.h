/**
 * @file
 * Replay a recorded container into the same in-memory shapes a live
 * run produces: kernel events become ProfileRecords (bit-identical
 * seconds, FLOPs, and bytes — the recorder stores the integer-ns
 * duration the live path derived its seconds from), step/checkpoint/
 * serve events become typed summaries. Feeding the replayed records
 * into a Profiler reproduces the live Fig. 3/4 breakdown aggregates
 * exactly; that equivalence is what makes the container a record of
 * the run rather than an approximation of it.
 */

#ifndef BERTPROF_TELEMETRY_REPLAY_H
#define BERTPROF_TELEMETRY_REPLAY_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "io/io_status.h"
#include "runtime/profiler.h"
#include "telemetry/trace_reader.h"

namespace bertprof {

/** One replayed Trainer::trainStep(). */
struct ReplayTrainStep {
    std::int64_t step = 0;
    int status = 0; ///< train::StepStatus numeric value
    double seconds = 0.0;
    float loss = 0.0f;
    float lr = 0.0f;
};

/** One replayed checkpoint save. */
struct ReplayCheckpoint {
    std::int64_t step = 0;
    bool ok = false;
    double seconds = 0.0;
};

/** One replayed serving batch. */
struct ReplayServeBatch {
    double queueSeconds = 0.0;
    double computeSeconds = 0.0;
    std::int64_t batchSize = 0;
    std::int64_t paddedLen = 0;
    std::int64_t queueDepth = 0;
};

/** Everything a container replays to. */
struct ReplaySummary {
    /** Kernel events in file order, live-identical field for field. */
    std::vector<ProfileRecord> kernels;
    /** Kernel end timestamps (ns), parallel to `kernels`. */
    std::vector<std::int64_t> kernelEndNs;
    std::vector<ReplayTrainStep> steps;
    std::vector<ReplayCheckpoint> checkpoints;
    std::vector<ReplayServeBatch> serveBatches;
    /** Counter totals and last-seen gauge values by name. */
    std::map<std::string, std::int64_t> counterTotals;
    std::map<std::string, double> gauges;
    std::int64_t markCount = 0;
    std::int64_t eventCount = 0;
    /** First/last event timestamps (ns); 0/0 when empty. */
    std::int64_t firstTsNs = 0;
    std::int64_t lastTsNs = 0;
    /** The container ended in a torn/corrupt chunk that was skipped. */
    bool truncatedTail = false;
    std::string tailMessage;

    /** Feed every kernel into `profiler` in replay order. */
    void fillProfiler(Profiler &profiler) const;
};

/** Decode one already-read event against a reader's name table. */
void replayEvent(const TraceReader &reader, const TraceEvent &event,
                 ReplaySummary &out);

/**
 * Open `path` and replay every valid chunk. Typed failure when the
 * file header is unreadable; a torn tail is reported in the summary,
 * not as a failure.
 */
IoStatus replayTrace(const std::string &path, ReplaySummary &out);

} // namespace bertprof

#endif // BERTPROF_TELEMETRY_REPLAY_H
