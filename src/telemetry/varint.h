/**
 * @file
 * LEB128 variable-length integers and ZigZag signed mapping — the
 * packing vocabulary of the trace container's event records. Small
 * values (taxonomy ids, short durations, delta timestamps) dominate a
 * trace, so one-byte encodings for values < 128 are where most of the
 * container's density comes from before block compression even runs.
 */

#ifndef BERTPROF_TELEMETRY_VARINT_H
#define BERTPROF_TELEMETRY_VARINT_H

#include <cstdint>
#include <string>

namespace bertprof {

/** Append `v` as LEB128 (1..10 bytes). */
inline void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

/** Map a signed value to an unsigned one with small absolute values
 *  staying small (0,-1,1,-2,... -> 0,1,2,3,...). */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode(). */
inline std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Append a signed value as ZigZag + LEB128. */
inline void
putZigzag(std::string &out, std::int64_t v)
{
    putVarint(out, zigzagEncode(v));
}

/**
 * Decode one LEB128 value from data[pos..size). Advances `pos` past
 * the encoding and returns true; returns false (leaving `pos`
 * unspecified) on truncation or an over-long (> 10 byte) encoding.
 */
inline bool
getVarint(const char *data, std::size_t size, std::size_t &pos,
          std::uint64_t &out)
{
    std::uint64_t v = 0;
    int shift = 0;
    while (pos < size && shift < 64) {
        const std::uint8_t byte = static_cast<std::uint8_t>(data[pos++]);
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            out = v;
            return true;
        }
        shift += 7;
    }
    return false;
}

/** Decode a ZigZag + LEB128 signed value; same contract as getVarint. */
inline bool
getZigzag(const char *data, std::size_t size, std::size_t &pos,
          std::int64_t &out)
{
    std::uint64_t raw = 0;
    if (!getVarint(data, size, pos, raw))
        return false;
    out = zigzagDecode(raw);
    return true;
}

} // namespace bertprof

#endif // BERTPROF_TELEMETRY_VARINT_H
