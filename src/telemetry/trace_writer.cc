#include "telemetry/trace_writer.h"

#include "io/crc32.h"
#include "telemetry/compress.h"
#include "telemetry/varint.h"
#include "util/logging.h"

namespace bertprof {

namespace {

void
putU32(std::string &out, std::uint32_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof v);
}

void
putU64(std::string &out, std::uint64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof v);
}

} // namespace

const char *
traceEventTypeName(TraceEventType type)
{
    switch (type) {
    case TraceEventType::Kernel:
        return "kernel";
    case TraceEventType::TrainStep:
        return "step";
    case TraceEventType::Checkpoint:
        return "checkpoint";
    case TraceEventType::ServeBatch:
        return "serve-batch";
    case TraceEventType::Counter:
        return "counter";
    case TraceEventType::Gauge:
        return "gauge";
    case TraceEventType::Mark:
        return "mark";
    }
    return "unknown";
}

void
encodeTraceEvent(std::string &out, const TraceEvent &event,
                 std::int64_t prevTsNs)
{
    out.push_back(static_cast<char>(event.type));
    putVarint(out, event.tid);
    putZigzag(out, event.tsNs - prevTsNs);
    putVarint(out, event.nameId);
    out.push_back(static_cast<char>(event.a));
    out.push_back(static_cast<char>(event.b));
    out.push_back(static_cast<char>(event.c));
    out.push_back(static_cast<char>(event.d));
    putZigzag(out, event.v0);
    putZigzag(out, event.v1);
    putZigzag(out, event.v2);
    putZigzag(out, event.v3);
}

bool
decodeTraceEvent(const char *data, std::size_t size, std::size_t &pos,
                 std::int64_t &prevTsNs, TraceEvent &out)
{
    if (pos >= size)
        return false;
    const std::uint8_t type = static_cast<std::uint8_t>(data[pos++]);
    if (type < static_cast<std::uint8_t>(TraceEventType::Kernel) ||
        type > static_cast<std::uint8_t>(TraceEventType::Mark)) {
        return false;
    }
    out.type = static_cast<TraceEventType>(type);
    std::uint64_t tid = 0, nameId = 0;
    std::int64_t delta = 0;
    if (!getVarint(data, size, pos, tid) ||
        !getZigzag(data, size, pos, delta) ||
        !getVarint(data, size, pos, nameId)) {
        return false;
    }
    if (tid > 0xff || nameId > 0xffffffffull)
        return false;
    if (pos + 4 > size)
        return false;
    out.tid = static_cast<std::uint8_t>(tid);
    out.tsNs = prevTsNs + delta;
    prevTsNs = out.tsNs;
    out.nameId = static_cast<std::uint32_t>(nameId);
    out.a = static_cast<std::uint8_t>(data[pos++]);
    out.b = static_cast<std::uint8_t>(data[pos++]);
    out.c = static_cast<std::uint8_t>(data[pos++]);
    out.d = static_cast<std::uint8_t>(data[pos++]);
    return getZigzag(data, size, pos, out.v0) &&
           getZigzag(data, size, pos, out.v1) &&
           getZigzag(data, size, pos, out.v2) &&
           getZigzag(data, size, pos, out.v3);
}

IoStatus
TraceWriter::open(const std::string &path)
{
    IoStatus status = file_.open(path);
    if (!status.ok())
        return status;
    namesEmitted_ = 0;
    chunksWritten_ = 0;
    eventsWritten_ = 0;
    rawPayloadBytes_ = 0;
    failed_ = false;

    std::string header;
    header.reserve(kTraceFileHeaderSize);
    putU32(header, kTraceMagic);
    putU32(header, kTraceFormatVersion);
    putU64(header, 0); // flags
    status = file_.append(header.data(), header.size());
    if (!status.ok()) {
        failed_ = true;
        // Cleanup after a failed header append: the first error is
        // the one worth reporting, not the close of a dead file.
        // bplint: allow(must-check-io)
        file_.close();
    }
    return status;
}

IoStatus
TraceWriter::appendChunk(const std::vector<TraceEvent> &events,
                         const std::vector<std::string> &names)
{
    if (failed_) {
        return IoStatus::failure(IoError::WriteFailed,
                                 "trace writer already failed; "
                                 "container tail is torn");
    }
    if (!file_.isOpen()) {
        return IoStatus::failure(IoError::OpenFailed,
                                 "trace writer is not open");
    }
    if (events.empty())
        return IoStatus::success();
    BP_REQUIRE(namesEmitted_ <= names.size());

    // Payload: new name-table entries, then packed events.
    std::string raw;
    raw.reserve(events.size() * 32);
    const std::size_t newNames = names.size() - namesEmitted_;
    putVarint(raw, newNames);
    for (std::size_t i = namesEmitted_; i < names.size(); ++i) {
        putVarint(raw, names[i].size());
        raw.append(names[i]);
    }
    const std::int64_t baseNs = events.front().tsNs;
    std::int64_t prev = baseNs;
    for (const TraceEvent &event : events) {
        BP_REQUIRE(event.nameId < names.size());
        encodeTraceEvent(raw, event, prev);
        prev = event.tsNs;
    }

    TraceCodec codec = TraceCodec::Raw;
    const std::string comp = compressBlockAuto(raw, codec);

    // Header: crc covers everything after the crc field itself.
    std::string chunk;
    chunk.reserve(kTraceChunkHeaderSize + comp.size());
    putU32(chunk, kTraceChunkMagic);
    putU32(chunk, 0); // crc placeholder
    putU32(chunk, static_cast<std::uint32_t>(codec));
    putU32(chunk, static_cast<std::uint32_t>(events.size()));
    putU32(chunk, static_cast<std::uint32_t>(newNames));
    putU32(chunk, 0); // reserved
    putU64(chunk, raw.size());
    putU64(chunk, comp.size());
    putU64(chunk, static_cast<std::uint64_t>(baseNs));
    chunk.append(comp);
    const std::uint32_t crc =
        crc32(chunk.data() + 8, chunk.size() - 8);
    chunk[4] = static_cast<char>(crc & 0xff);
    chunk[5] = static_cast<char>((crc >> 8) & 0xff);
    chunk[6] = static_cast<char>((crc >> 16) & 0xff);
    chunk[7] = static_cast<char>((crc >> 24) & 0xff);

    IoStatus status = file_.append(chunk.data(), chunk.size());
    if (status.ok() && options_.syncEachChunk)
        status = file_.sync();
    if (!status.ok()) {
        failed_ = true;
        return status;
    }
    namesEmitted_ = names.size();
    ++chunksWritten_;
    eventsWritten_ += static_cast<std::int64_t>(events.size());
    rawPayloadBytes_ += static_cast<std::int64_t>(raw.size());
    return IoStatus::success();
}

IoStatus
TraceWriter::close()
{
    if (!file_.isOpen())
        return IoStatus::success();
    IoStatus status = IoStatus::success();
    if (!failed_)
        status = file_.sync();
    const IoStatus closed = file_.close();
    return status.ok() ? closed : status;
}

} // namespace bertprof
