/**
 * @file
 * Append-side of the trace container: encodes batches of TraceEvents
 * into packed, delta-timestamped, block-compressed chunks and lands
 * them through the crash-safe io layer (AppendFile: unbuffered
 * append + per-chunk fsync, `io.write`/`io.commit` fault sites).
 * One appendChunk() that fails leaves the file with a torn tail the
 * reader skips; the writer then refuses further appends so at most
 * the open chunk is ever lost.
 */

#ifndef BERTPROF_TELEMETRY_TRACE_WRITER_H
#define BERTPROF_TELEMETRY_TRACE_WRITER_H

#include <cstdint>
#include <string>
#include <vector>

#include "io/append_file.h"
#include "telemetry/trace_format.h"

namespace bertprof {

/** Writer knobs. */
struct TraceWriterOptions {
    /** fsync after every sealed chunk (durability per chunk). */
    bool syncEachChunk = true;
};

/** Streams chunks of events into a container file. */
class TraceWriter
{
  public:
    explicit TraceWriter(TraceWriterOptions options = {})
        : options_(options)
    {
    }

    /** Create/truncate the container and write the file header. */
    IoStatus open(const std::string &path);

    /**
     * Seal `events` into one chunk. `names` is the full interned
     * name table (dense ids from 0, append-only across the whole
     * recording); the writer emits the entries not yet on disk into
     * this chunk's name section. Event nameIds must be < names.size().
     * After any failure the writer latches failed() and every later
     * append is refused (the tail of the file is no longer trusted).
     */
    IoStatus appendChunk(const std::vector<TraceEvent> &events,
                         const std::vector<std::string> &names);

    /** fsync and close. Idempotent. */
    IoStatus close();

    bool isOpen() const { return file_.isOpen(); }
    bool failed() const { return failed_; }

    std::int64_t chunksWritten() const { return chunksWritten_; }
    std::int64_t eventsWritten() const { return eventsWritten_; }
    /** Bytes of the container on disk (headers + payloads). */
    std::int64_t bytesWritten() const { return file_.bytesWritten(); }
    /** Payload bytes before compression (compression-ratio telemetry). */
    std::int64_t rawPayloadBytes() const { return rawPayloadBytes_; }

  private:
    TraceWriterOptions options_;
    AppendFile file_;
    std::size_t namesEmitted_ = 0;
    std::int64_t chunksWritten_ = 0;
    std::int64_t eventsWritten_ = 0;
    std::int64_t rawPayloadBytes_ = 0;
    bool failed_ = false;
};

/** Encode one event record (shared with tests for format pinning). */
void encodeTraceEvent(std::string &out, const TraceEvent &event,
                      std::int64_t prevTsNs);

/**
 * Decode one event record from data[pos..size); `prevTsNs` carries
 * the running timestamp. False on truncation/overrun.
 */
bool decodeTraceEvent(const char *data, std::size_t size,
                      std::size_t &pos, std::int64_t &prevTsNs,
                      TraceEvent &out);

} // namespace bertprof

#endif // BERTPROF_TELEMETRY_TRACE_WRITER_H
