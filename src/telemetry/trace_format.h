/**
 * @file
 * The binary run-trace container format (".bptr", format BPTR v1).
 *
 * A container is a 16-byte file header followed by independent,
 * individually checksummed chunks — the same chunked shape as
 * Slimmer's LZ4 trace files, with b2-style packed event records
 * (delta-encoded timestamps, interned name ids) inside each chunk:
 *
 *   file header (16 bytes):
 *     u32 magic    0x52545042 ("BPTR")
 *     u32 version  kTraceFormatVersion
 *     u64 flags    reserved, 0
 *
 *   chunk (repeated; header 48 bytes + compressed payload):
 *     u32 magic        0x43545042 ("BPTC")
 *     u32 crc32        over the header bytes after this field + payload
 *     u32 codec        TraceCodec (raw / rle / lz)
 *     u32 eventCount   events encoded in this chunk
 *     u32 newNameCount name-table entries introduced by this chunk
 *     u32 reserved     0
 *     u64 rawSize      decompressed payload bytes
 *     u64 compSize     payload bytes on disk
 *     i64 baseNs       timestamp base for delta decoding
 *     ... payload[compSize]
 *
 *   decompressed chunk payload:
 *     newNameCount x (varint length, bytes)   — ids are assigned
 *         densely in file order, so chunk k defines ids
 *         [#names-before-k, #names-before-k + newNameCount)
 *     eventCount x packed event record:
 *         u8      type        (TraceEventType)
 *         varint  tid         recorder thread slot
 *         zigzag  deltaNs     tsNs minus the previous record's tsNs
 *                             (minus baseNs for the first record)
 *         varint  nameId      index into the interned name table
 *         u8 x 4  a b c d     small per-type fields
 *         zigzag x 4 v0..v3   wide per-type fields
 *
 * Chunks are self-contained (own CRC, own timestamp base, name
 * *additions* only ever referenced by this chunk or later ones), so a
 * torn tail — the only corruption an append-only writer can produce —
 * costs exactly the open chunk: the reader validates chunks in file
 * order and stops at the first bad header or CRC.
 */

#ifndef BERTPROF_TELEMETRY_TRACE_FORMAT_H
#define BERTPROF_TELEMETRY_TRACE_FORMAT_H

#include <cstdint>

namespace bertprof {

/** File magic "BPTR" (little-endian). */
constexpr std::uint32_t kTraceMagic = 0x52545042u;
/** Chunk magic "BPTC" (little-endian). */
constexpr std::uint32_t kTraceChunkMagic = 0x43545042u;
/** Container format version. */
constexpr std::uint32_t kTraceFormatVersion = 1;
/** File header bytes. */
constexpr std::size_t kTraceFileHeaderSize = 16;
/** Chunk header bytes. */
constexpr std::size_t kTraceChunkHeaderSize = 48;
/** Sanity bound on a chunk's decompressed payload (64 MiB). */
constexpr std::uint64_t kTraceMaxChunkRawSize = 64ull << 20;

/** What an event record describes. */
enum class TraceEventType : std::uint8_t {
    Kernel = 1,     ///< one profiled kernel invocation
    TrainStep = 2,  ///< one Trainer::trainStep()
    Checkpoint = 3, ///< one cadenced checkpoint save
    ServeBatch = 4, ///< one coalesced serving batch execution
    Counter = 5,    ///< a named monotonic counter increment
    Gauge = 6,      ///< a named instantaneous value
    Mark = 7,       ///< a named point event
};

/** Display name: "kernel" / "step" / ... */
const char *traceEventTypeName(TraceEventType type);

/**
 * One decoded event record. The generic slots keep the codec
 * singular; the per-type meaning is:
 *
 *   Kernel:     a=OpKind b=Phase c=LayerScope d=SubLayer,
 *               v0=durationNs v1=flops v2=bytesRead v3=bytesWritten
 *   TrainStep:  a=StepStatus, v0=durationNs v1=step
 *               v2=f32 bits of loss v3=f32 bits of lr
 *   Checkpoint: a=ok, v0=durationNs v1=step
 *   ServeBatch: a..d=queue depth at dispatch (little-endian u32),
 *               v0=queueNs v1=computeNs v2=batchSize v3=paddedLen
 *   Counter:    v0=increment
 *   Gauge:      v0=f64 bits of the value
 *   Mark:       v0 free
 *
 * tsNs is nanoseconds of steady clock since the recording epoch; for
 * Kernel events it stamps the kernel's *end* (start = tsNs - v0).
 */
struct TraceEvent {
    std::int64_t tsNs = 0;
    std::uint32_t nameId = 0;
    TraceEventType type = TraceEventType::Mark;
    std::uint8_t tid = 0;
    std::uint8_t a = 0;
    std::uint8_t b = 0;
    std::uint8_t c = 0;
    std::uint8_t d = 0;
    std::int64_t v0 = 0;
    std::int64_t v1 = 0;
    std::int64_t v2 = 0;
    std::int64_t v3 = 0;

    bool
    operator==(const TraceEvent &o) const
    {
        return tsNs == o.tsNs && nameId == o.nameId && type == o.type &&
               tid == o.tid && a == o.a && b == o.b && c == o.c &&
               d == o.d && v0 == o.v0 && v1 == o.v1 && v2 == o.v2 &&
               v3 == o.v3;
    }
};

} // namespace bertprof

#endif // BERTPROF_TELEMETRY_TRACE_FORMAT_H
