#include "telemetry/metrics.h"

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "io/binary_io.h"

namespace bertprof {

namespace {

void
countIoRetry(std::int64_t retries)
{
    MetricsRegistry::instance().counter("io.retry.attempts").add(retries);
}

/**
 * Dependency inversion: io (below telemetry in the include DAG)
 * exposes a retry sink; linking telemetry points it at the metrics
 * registry so every backoff retry lands in `io.retry.attempts`.
 * Installed at static-init time from this TU — any binary that pulls
 * in the registry gets the wiring for free.
 */
struct IoRetrySinkInstaller {
    IoRetrySinkInstaller() { installIoRetrySink(&countIoRetry); }
};
const IoRetrySinkInstaller g_ioRetrySinkInstaller;

void
atomicMinDouble(std::atomic<std::int64_t> &bits, double v)
{
    std::int64_t cur = bits.load(std::memory_order_relaxed);
    while (v < std::bit_cast<double>(cur) &&
           !bits.compare_exchange_weak(cur,
                                       std::bit_cast<std::int64_t>(v),
                                       std::memory_order_relaxed)) {
    }
}

void
atomicMaxDouble(std::atomic<std::int64_t> &bits, double v)
{
    std::int64_t cur = bits.load(std::memory_order_relaxed);
    while (v > std::bit_cast<double>(cur) &&
           !bits.compare_exchange_weak(cur,
                                       std::bit_cast<std::int64_t>(v),
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

int
Histogram::bucketOf(double v)
{
    if (!(v > 0.0))
        return 0;
    int e = 0;
    std::frexp(v, &e); // v = m * 2^e, m in [0.5, 1)
    const int b = e + 40;
    if (b < 0)
        return 0;
    if (b >= kBuckets)
        return kBuckets - 1;
    return b;
}

double
Histogram::bucketMid(int b)
{
    return std::ldexp(0.75, b - 40);
}

void
Histogram::record(double v)
{
    if (std::isnan(v))
        return;
    counts_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumNanos_.fetch_add(static_cast<std::int64_t>(
                            std::llround(v * 1e9)),
                        std::memory_order_relaxed);
    atomicMinDouble(minBits_, v);
    atomicMaxDouble(maxBits_, v);
}

std::int64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return static_cast<double>(
               sumNanos_.load(std::memory_order_relaxed)) *
           1e-9;
}

double
Histogram::mean() const
{
    const std::int64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double
Histogram::min() const
{
    if (count() == 0)
        return 0.0;
    return std::bit_cast<double>(
        minBits_.load(std::memory_order_relaxed));
}

double
Histogram::max() const
{
    if (count() == 0)
        return 0.0;
    return std::bit_cast<double>(
        maxBits_.load(std::memory_order_relaxed));
}

double
Histogram::quantile(double q) const
{
    const std::int64_t n = count();
    if (n == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::int64_t rank = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    std::int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += counts_[b].load(std::memory_order_relaxed);
        if (seen >= rank)
            return bucketMid(b);
    }
    return max();
}

std::int64_t
Histogram::bucketCount(int b) const
{
    if (b < 0 || b >= kBuckets)
        return 0;
    return counts_[b].load(std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::string
MetricsRegistry::snapshotText() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    for (const auto &[name, c] : counters_)
        os << name << " counter " << c->value() << "\n";
    for (const auto &[name, g] : gauges_)
        os << name << " gauge " << g->value() << "\n";
    for (const auto &[name, h] : histograms_) {
        os << name << " histogram count=" << h->count()
           << " mean=" << h->mean() << " p50=" << h->quantile(0.5)
           << " p99=" << h->quantile(0.99) << " min=" << h->min()
           << " max=" << h->max() << "\n";
    }
    return os.str();
}

void
MetricsRegistry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

} // namespace bertprof
