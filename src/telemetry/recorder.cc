#include "telemetry/recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "runtime/env.h"
#include "util/logging.h"

namespace bertprof {

namespace {

std::int64_t
nowSteadyNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::int64_t
floatBits(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return static_cast<std::int64_t>(bits);
}

std::int64_t
doubleBits(double v)
{
    std::int64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

void
stopAtExit()
{
    // atexit context: no caller left to receive a flush failure.
    // bplint: allow(must-check-io)
    (void)TraceRecorder::instance().stop();
}

/** A ring may hold this many multiples of ringEvents before drops. */
constexpr std::size_t kRingHardCapFactor = 8;

} // namespace

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

TraceRecorder::~TraceRecorder()
{
    // Destructor has nowhere to surface a flush failure; stop() is
    // the checked path and runs via stopAtExit or explicit calls.
    // bplint: allow(must-check-io)
    (void)stop();
}

IoStatus
TraceRecorder::start(const RecorderOptions &options)
{
    std::lock_guard<std::mutex> lock(stateMu_);
    if (recording_.load(std::memory_order_acquire)) {
        return IoStatus::failure(IoError::OpenFailed,
                                 "trace recorder is already recording");
    }
    if (options.path.empty()) {
        return IoStatus::failure(IoError::OpenFailed,
                                 "trace recorder needs a non-empty path");
    }
    auto writer = std::make_unique<TraceWriter>(
        TraceWriterOptions{options.syncEachChunk});
    IoStatus status = writer->open(options.path);
    if (!status.ok())
        return status;
    writer_ = std::move(writer);
    options_ = options;
    if (options_.ringEvents == 0)
        options_.ringEvents = 1;
    eventsRecorded_.store(0, std::memory_order_relaxed);
    eventsDropped_.store(0, std::memory_order_relaxed);
    chunksSealed_.store(0, std::memory_order_relaxed);
    {
        // Fresh container: the full name table must be re-emitted, so
        // restart interning from id 0.
        std::lock_guard<std::mutex> nameLock(namesMu_);
        nameIds_.clear();
        names_.clear();
    }
    {
        // Stale events from a previous session reference the old name
        // table — they must not leak into this container.
        std::lock_guard<std::mutex> bufsLock(bufsMu_);
        for (auto &buf : bufs_) {
            std::lock_guard<std::mutex> bufLock(buf->mu);
            buf->events.clear();
        }
    }
    stopFlusher_ = false;
    flusher_ = std::thread([this] { flusherLoop(); });
    recording_.store(true, std::memory_order_release);
    installKernelSink(this);
    static std::atomic<bool> atexitRegistered{false};
    if (!atexitRegistered.exchange(true))
        std::atexit(stopAtExit);
    return IoStatus::success();
}

IoStatus
TraceRecorder::stop()
{
    std::lock_guard<std::mutex> lock(stateMu_);
    if (!recording_.load(std::memory_order_acquire))
        return IoStatus::success();
    installKernelSink(nullptr);
    recording_.store(false, std::memory_order_release);
    {
        std::lock_guard<std::mutex> flushLock(flushMu_);
        stopFlusher_ = true;
    }
    flushCv_.notify_all();
    if (flusher_.joinable())
        flusher_.join();
    // The flusher sealed what it saw; catch producers that raced the
    // recording_ flip.
    std::vector<TraceEvent> staging;
    const std::size_t producers = drainAll(staging);
    sealChunk(staging, producers);
    IoStatus status = writer_->close();
    writer_.reset();
    return status;
}

void
TraceRecorder::maybeStartFromEnv()
{
    if (envChecked_.exchange(true))
        return;
    const std::string path = envString("BERTPROF_TRACE", "");
    if (path.empty())
        return;
    static std::atomic<bool> chunkWarned{false};
    static std::atomic<bool> ringWarned{false};
    RecorderOptions options;
    options.path = path;
    options.chunkBytes = static_cast<std::size_t>(
        envInt("BERTPROF_TRACE_CHUNK_KB", 4, 1 << 20, 256,
               chunkWarned) *
        1024);
    options.ringEvents = static_cast<std::size_t>(
        envInt("BERTPROF_TRACE_RING", 64, 1 << 20, 4096, ringWarned));
    IoStatus status = start(options);
    if (!status.ok()) {
        BP_LOG(Warn) << "BERTPROF_TRACE=" << path
                     << " could not start recording: "
                     << status.message;
    }
}

TraceRecorder::ThreadBuf &
TraceRecorder::localBuf()
{
    thread_local ThreadBuf *buf = nullptr;
    if (!buf) {
        auto owned = std::make_unique<ThreadBuf>();
        std::lock_guard<std::mutex> lock(bufsMu_);
        owned->tid = static_cast<std::uint8_t>(
            std::min<std::size_t>(bufs_.size(), 255));
        buf = owned.get();
        bufs_.push_back(std::move(owned));
    }
    return *buf;
}

void
TraceRecorder::emit(const TraceEvent &event)
{
    ThreadBuf &buf = localBuf();
    bool wake = false;
    {
        std::lock_guard<std::mutex> lock(buf.mu);
        if (buf.events.size() >=
            options_.ringEvents * kRingHardCapFactor) {
            eventsDropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        TraceEvent e = event;
        e.tid = buf.tid;
        buf.events.push_back(e);
        // Wake the flusher only on the threshold *crossing*: waking
        // it per event would context-switch on every kernel while a
        // ring sits above the threshold.
        wake = buf.events.size() == options_.ringEvents;
    }
    eventsRecorded_.fetch_add(1, std::memory_order_relaxed);
    if (wake) {
        {
            std::lock_guard<std::mutex> lock(flushMu_);
            drainRequested_ = true;
        }
        flushCv_.notify_one();
    }
}

std::uint32_t
TraceRecorder::internName(const std::string &name)
{
    std::lock_guard<std::mutex> lock(namesMu_);
    auto [it, inserted] = nameIds_.emplace(
        name, static_cast<std::uint32_t>(names_.size()));
    if (inserted)
        names_.push_back(name);
    return it->second;
}

void
TraceRecorder::flusherLoop()
{
    std::vector<TraceEvent> staging;
    std::size_t producers = 0;
    for (;;) {
        bool stopping = false;
        {
            std::unique_lock<std::mutex> lock(flushMu_);
            flushCv_.wait_for(lock, std::chrono::milliseconds(50),
                              [this] {
                                  return stopFlusher_ ||
                                         drainRequested_;
                              });
            stopping = stopFlusher_;
            drainRequested_ = false;
        }
        producers += drainAll(staging);
        const std::size_t approxBytes =
            staging.size() * sizeof(TraceEvent);
        if (stopping || approxBytes >= options_.chunkBytes) {
            sealChunk(staging, producers);
            producers = 0;
        }
        if (stopping)
            return;
    }
}

std::size_t
TraceRecorder::drainAll(std::vector<TraceEvent> &staging)
{
    std::size_t producers = 0;
    std::lock_guard<std::mutex> lock(bufsMu_);
    for (auto &buf : bufs_) {
        std::lock_guard<std::mutex> bufLock(buf->mu);
        if (buf->events.empty())
            continue;
        staging.insert(staging.end(), buf->events.begin(),
                       buf->events.end());
        buf->events.clear();
        ++producers;
    }
    return producers;
}

void
TraceRecorder::sealChunk(std::vector<TraceEvent> &staging,
                         std::size_t producers)
{
    if (staging.empty() || !writer_ || writer_->failed()) {
        staging.clear();
        return;
    }
    // A single producer's events arrive in timestamp order already;
    // only interleaved multi-thread drains need the sort.
    if (producers > 1) {
        std::stable_sort(staging.begin(), staging.end(),
                         [](const TraceEvent &a, const TraceEvent &b) {
                             return a.tsNs < b.tsNs;
                         });
    }
    std::vector<std::string> namesSnapshot;
    {
        std::lock_guard<std::mutex> lock(namesMu_);
        namesSnapshot = names_;
    }
    IoStatus status = writer_->appendChunk(staging, namesSnapshot);
    if (!status.ok()) {
        BP_LOG(Warn) << "trace chunk append failed (recording "
                        "continues without persistence): "
                     << status.message;
    } else {
        chunksSealed_.fetch_add(1, std::memory_order_relaxed);
    }
    staging.clear();
}

void
TraceRecorder::onKernel(const ProfileRecord &rec,
                        std::int64_t endSteadyNs, std::int64_t durNs)
{
    if (!recording())
        return;
    TraceEvent event;
    event.type = TraceEventType::Kernel;
    event.tsNs = endSteadyNs;
    event.nameId = internName(rec.name);
    event.a = static_cast<std::uint8_t>(rec.kind);
    event.b = static_cast<std::uint8_t>(rec.phase);
    event.c = static_cast<std::uint8_t>(rec.scope);
    event.d = static_cast<std::uint8_t>(rec.sub);
    event.v0 = durNs;
    event.v1 = rec.stats.flops;
    event.v2 = rec.stats.bytesRead;
    event.v3 = rec.stats.bytesWritten;
    emit(event);
}

void
TraceRecorder::onTrainStep(std::int64_t step, int status,
                           std::int64_t durNs, float loss, float lr)
{
    if (!recording())
        return;
    TraceEvent event;
    event.type = TraceEventType::TrainStep;
    event.tsNs = nowSteadyNs();
    event.nameId = internName("train.step");
    event.a = static_cast<std::uint8_t>(status);
    event.v0 = durNs;
    event.v1 = step;
    event.v2 = floatBits(loss);
    event.v3 = floatBits(lr);
    emit(event);
}

void
TraceRecorder::onCheckpoint(std::int64_t step, bool ok,
                            std::int64_t durNs)
{
    if (!recording())
        return;
    TraceEvent event;
    event.type = TraceEventType::Checkpoint;
    event.tsNs = nowSteadyNs();
    event.nameId = internName("train.checkpoint");
    event.a = ok ? 1 : 0;
    event.v0 = durNs;
    event.v1 = step;
    emit(event);
}

void
TraceRecorder::onServeBatch(std::int64_t queueNs, std::int64_t computeNs,
                            std::int64_t batchSize,
                            std::int64_t paddedLen,
                            std::int64_t queueDepth)
{
    if (!recording())
        return;
    TraceEvent event;
    event.type = TraceEventType::ServeBatch;
    event.tsNs = nowSteadyNs();
    event.nameId = internName("serve.batch");
    event.v0 = queueNs;
    event.v1 = computeNs;
    event.v2 = batchSize;
    event.v3 = paddedLen;
    // Queue depth rides the four byte lanes as a little-endian u32.
    const std::uint32_t depth = static_cast<std::uint32_t>(
        std::min<std::int64_t>(std::max<std::int64_t>(queueDepth, 0),
                               0xffffffffLL));
    event.a = static_cast<std::uint8_t>(depth & 0xff);
    event.b = static_cast<std::uint8_t>((depth >> 8) & 0xff);
    event.c = static_cast<std::uint8_t>((depth >> 16) & 0xff);
    event.d = static_cast<std::uint8_t>((depth >> 24) & 0xff);
    emit(event);
}

void
TraceRecorder::counter(const std::string &name, std::int64_t delta)
{
    if (!recording())
        return;
    TraceEvent event;
    event.type = TraceEventType::Counter;
    event.tsNs = nowSteadyNs();
    event.nameId = internName(name);
    event.v0 = delta;
    emit(event);
}

void
TraceRecorder::gauge(const std::string &name, double value)
{
    if (!recording())
        return;
    TraceEvent event;
    event.type = TraceEventType::Gauge;
    event.tsNs = nowSteadyNs();
    event.nameId = internName(name);
    event.v0 = doubleBits(value);
    emit(event);
}

void
TraceRecorder::mark(const std::string &name)
{
    if (!recording())
        return;
    TraceEvent event;
    event.type = TraceEventType::Mark;
    event.tsNs = nowSteadyNs();
    event.nameId = internName(name);
    emit(event);
}

namespace {

/** Arms recording at startup when BERTPROF_TRACE is set. */
struct TraceEnvAutostart {
    TraceEnvAutostart()
    {
        TraceRecorder::instance().maybeStartFromEnv();
    }
};

TraceEnvAutostart g_traceEnvAutostart;

} // namespace

} // namespace bertprof
