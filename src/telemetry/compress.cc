#include "telemetry/compress.h"

#include <vector>

namespace bertprof {

namespace {

// --- RLE ------------------------------------------------------------
//
// Token stream: control byte c.
//   c in [0x00, 0x7f]: literal run — copy the next c+1 bytes.
//   c in [0x80, 0xff]: byte run — repeat the next byte (c - 0x80) + 3
//                      times (runs of 3..130).

constexpr std::size_t kRleMinRun = 3;
constexpr std::size_t kRleMaxRun = 130;
constexpr std::size_t kMaxLiteralRun = 128;

void
rleFlushLiterals(std::string &out, const char *data, std::size_t begin,
                 std::size_t end)
{
    while (begin < end) {
        const std::size_t n =
            std::min(end - begin, kMaxLiteralRun);
        out.push_back(static_cast<char>(n - 1));
        out.append(data + begin, n);
        begin += n;
    }
}

std::string
rleCompress(const std::string &input)
{
    std::string out;
    out.reserve(input.size() / 2 + 16);
    const char *data = input.data();
    const std::size_t n = input.size();
    std::size_t lit = 0; // start of pending literal run
    std::size_t i = 0;
    while (i < n) {
        std::size_t run = 1;
        while (i + run < n && data[i + run] == data[i] &&
               run < kRleMaxRun) {
            ++run;
        }
        if (run >= kRleMinRun) {
            rleFlushLiterals(out, data, lit, i);
            out.push_back(
                static_cast<char>(0x80 + (run - kRleMinRun)));
            out.push_back(data[i]);
            i += run;
            lit = i;
        } else {
            i += run;
        }
    }
    rleFlushLiterals(out, data, lit, n);
    return out;
}

bool
rleDecompress(const char *data, std::size_t size, std::size_t rawSize,
              std::string &out)
{
    std::size_t i = 0;
    while (i < size) {
        const std::uint8_t c = static_cast<std::uint8_t>(data[i++]);
        if (c < 0x80) {
            const std::size_t n = static_cast<std::size_t>(c) + 1;
            if (i + n > size || out.size() + n > rawSize)
                return false;
            out.append(data + i, n);
            i += n;
        } else {
            const std::size_t n =
                static_cast<std::size_t>(c - 0x80) + kRleMinRun;
            if (i >= size || out.size() + n > rawSize)
                return false;
            out.append(n, data[i++]);
        }
    }
    return out.size() == rawSize;
}

// --- LZ (LZ4-style greedy window matcher) ---------------------------
//
// Token stream: control byte t.
//   t in [0x00, 0x7f]: literal run — copy the next t+1 bytes.
//   t in [0x80, 0xff]: match — length (t & 0x7f) + 4 (4..131), then a
//                      little-endian u16 back-distance (1..65535)
//                      into the bytes decoded so far. Overlapping
//                      copies are legal (that is how it encodes runs).

constexpr std::size_t kLzMinMatch = 4;
constexpr std::size_t kLzMaxMatch = 131;
constexpr std::size_t kLzWindow = 65535;
constexpr std::size_t kLzHashBits = 13;

std::uint32_t
lzHash(const char *p)
{
    std::uint32_t v;
    __builtin_memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kLzHashBits);
}

std::string
lzCompress(const std::string &input)
{
    std::string out;
    out.reserve(input.size() / 2 + 16);
    const char *data = input.data();
    const std::size_t n = input.size();
    std::vector<std::size_t> table(std::size_t(1) << kLzHashBits,
                                   static_cast<std::size_t>(-1));
    std::size_t lit = 0;
    std::size_t i = 0;
    while (i < n) {
        std::size_t matchLen = 0;
        std::size_t matchDist = 0;
        if (i + kLzMinMatch <= n) {
            const std::uint32_t h = lzHash(data + i);
            const std::size_t cand = table[h];
            table[h] = i;
            if (cand != static_cast<std::size_t>(-1) && cand < i &&
                i - cand <= kLzWindow &&
                __builtin_memcmp(data + cand, data + i, kLzMinMatch) ==
                    0) {
                std::size_t len = kLzMinMatch;
                const std::size_t maxLen =
                    std::min(kLzMaxMatch, n - i);
                while (len < maxLen &&
                       data[cand + len] == data[i + len]) {
                    ++len;
                }
                matchLen = len;
                matchDist = i - cand;
            }
        }
        if (matchLen >= kLzMinMatch) {
            rleFlushLiterals(out, data, lit, i); // same literal framing
            out.push_back(static_cast<char>(
                0x80 + (matchLen - kLzMinMatch)));
            out.push_back(static_cast<char>(matchDist & 0xff));
            out.push_back(static_cast<char>((matchDist >> 8) & 0xff));
            // Seed the table through the matched region so immediately
            // repeating patterns keep matching.
            const std::size_t end = i + matchLen;
            for (std::size_t j = i + 1;
                 j + kLzMinMatch <= n && j < end; ++j) {
                table[lzHash(data + j)] = j;
            }
            i = end;
            lit = i;
        } else {
            ++i;
        }
    }
    rleFlushLiterals(out, data, lit, n);
    return out;
}

bool
lzDecompress(const char *data, std::size_t size, std::size_t rawSize,
             std::string &out)
{
    std::size_t i = 0;
    while (i < size) {
        const std::uint8_t t = static_cast<std::uint8_t>(data[i++]);
        if (t < 0x80) {
            const std::size_t n = static_cast<std::size_t>(t) + 1;
            if (i + n > size || out.size() + n > rawSize)
                return false;
            out.append(data + i, n);
            i += n;
        } else {
            const std::size_t len =
                static_cast<std::size_t>(t - 0x80) + kLzMinMatch;
            if (i + 2 > size)
                return false;
            const std::size_t dist =
                static_cast<std::uint8_t>(data[i]) |
                (static_cast<std::size_t>(
                     static_cast<std::uint8_t>(data[i + 1]))
                 << 8);
            i += 2;
            if (dist == 0 || dist > out.size() ||
                out.size() + len > rawSize) {
                return false;
            }
            // Byte-by-byte so overlapping matches replicate runs.
            std::size_t src = out.size() - dist;
            for (std::size_t k = 0; k < len; ++k)
                out.push_back(out[src + k]);
        }
    }
    return out.size() == rawSize;
}

} // namespace

const char *
traceCodecName(TraceCodec codec)
{
    switch (codec) {
    case TraceCodec::Raw:
        return "raw";
    case TraceCodec::Rle:
        return "rle";
    case TraceCodec::Lz:
        return "lz";
    }
    return "unknown";
}

std::string
compressBlock(const std::string &input, TraceCodec codec)
{
    switch (codec) {
    case TraceCodec::Raw:
        return input;
    case TraceCodec::Rle:
        return rleCompress(input);
    case TraceCodec::Lz:
        return lzCompress(input);
    }
    return input;
}

std::string
compressBlockAuto(const std::string &input, TraceCodec &codecOut)
{
    std::string lz = lzCompress(input);
    if (lz.size() < input.size()) {
        codecOut = TraceCodec::Lz;
        return lz;
    }
    std::string rle = rleCompress(input);
    if (rle.size() < input.size()) {
        codecOut = TraceCodec::Rle;
        return rle;
    }
    codecOut = TraceCodec::Raw;
    return input;
}

bool
decompressBlock(const char *data, std::size_t size, TraceCodec codec,
                std::size_t rawSize, std::string &out)
{
    out.clear();
    out.reserve(rawSize);
    switch (codec) {
    case TraceCodec::Raw:
        if (size != rawSize)
            return false;
        out.assign(data, size);
        return true;
    case TraceCodec::Rle:
        return rleDecompress(data, size, rawSize, out);
    case TraceCodec::Lz:
        return lzDecompress(data, size, rawSize, out);
    }
    return false;
}

} // namespace bertprof
