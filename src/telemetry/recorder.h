/**
 * @file
 * Low-overhead recording path from the running process into the trace
 * container. Producer threads (kernel scopes, the trainer step loop,
 * the serving executor) append TraceEvents to thread-local ring
 * buffers; a background flusher drains them, time-sorts, and seals
 * compressed chunks through TraceWriter — so the hot path never takes
 * a global lock or touches the filesystem.
 *
 * The recorder installs itself as the runtime's KernelEventSink, which
 * is how kernel records reach it without the runtime layer depending
 * on telemetry. Setting BERTPROF_TRACE=<path> arms recording for the
 * whole process at startup; programs can also start/stop explicitly.
 */

#ifndef BERTPROF_TELEMETRY_RECORDER_H
#define BERTPROF_TELEMETRY_RECORDER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "io/io_status.h"
#include "runtime/profiler.h"
#include "telemetry/trace_format.h"
#include "telemetry/trace_writer.h"

namespace bertprof {

/** Tuning for one recording session. */
struct RecorderOptions {
    std::string path;                ///< container file to write
    std::size_t chunkBytes = 256 * 1024; ///< seal threshold (raw bytes)
    std::size_t ringEvents = 4096;   ///< per-thread buffer capacity
    bool syncEachChunk = true;       ///< fsync after every sealed chunk
};

/**
 * Process-wide trace recorder. One recording session at a time;
 * start() installs the kernel sink and spawns the flusher, stop()
 * drains every thread buffer, seals the final chunk, and closes the
 * container. All emit calls are safe from any thread and are cheap
 * no-ops while recording is off.
 */
class TraceRecorder : public KernelEventSink
{
  public:
    /** The process-wide recorder. */
    static TraceRecorder &instance();

    /**
     * Begin recording to options.path. Fails if already recording or
     * the container cannot be opened. On success installs this
     * recorder as the runtime kernel sink.
     */
    IoStatus start(const RecorderOptions &options);

    /**
     * Stop recording: uninstall the sink, drain all buffers, seal the
     * final chunk, fsync, and close. Returns the writer's final
     * status (a latched mid-run write failure surfaces here). Safe to
     * call when not recording (no-op success).
     */
    IoStatus stop();

    /** True between a successful start() and the matching stop(). */
    bool recording() const
    {
        return recording_.load(std::memory_order_acquire);
    }

    /**
     * Start from BERTPROF_TRACE if set and not already recording.
     * Called once from a static initializer; exposed for tests.
     */
    void maybeStartFromEnv();

    // KernelEventSink
    void onKernel(const ProfileRecord &rec, std::int64_t endSteadyNs,
                  std::int64_t durNs) override;

    /** One finished training step. */
    void onTrainStep(std::int64_t step, int status, std::int64_t durNs,
                     float loss, float lr);
    /** One checkpoint save attempt. */
    void onCheckpoint(std::int64_t step, bool ok, std::int64_t durNs);
    /** One executed serving batch. */
    void onServeBatch(std::int64_t queueNs, std::int64_t computeNs,
                      std::int64_t batchSize, std::int64_t paddedLen,
                      std::int64_t queueDepth);
    /** Named counter increment, recorded in the trace stream. */
    void counter(const std::string &name, std::int64_t delta);
    /** Named gauge sample, recorded in the trace stream. */
    void gauge(const std::string &name, double value);
    /** Free-form instant marker. */
    void mark(const std::string &name);

    /** Events accepted since start() (drops excluded). */
    std::int64_t eventsRecorded() const
    {
        return eventsRecorded_.load(std::memory_order_relaxed);
    }
    /** Events dropped because a ring was full during a flush stall. */
    std::int64_t eventsDropped() const
    {
        return eventsDropped_.load(std::memory_order_relaxed);
    }
    /** Chunks sealed so far. */
    std::int64_t chunksSealed() const
    {
        return chunksSealed_.load(std::memory_order_relaxed);
    }

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

  private:
    TraceRecorder() = default;
    ~TraceRecorder() override;

    /** Per-producer-thread buffer; lives for the process. */
    struct ThreadBuf {
        std::mutex mu;
        std::vector<TraceEvent> events;
        std::uint8_t tid = 0;
    };

    ThreadBuf &localBuf();
    void emit(const TraceEvent &event);
    std::uint32_t internName(const std::string &name);
    void flusherLoop();
    /**
     * Move every thread buffer's contents into `staging`. Returns the
     * number of buffers that contributed events.
     */
    std::size_t drainAll(std::vector<TraceEvent> &staging);
    /**
     * Seal staging into one chunk (if non-empty). `producers` is
     * drainAll's return: with more than one, staging is time-sorted
     * first; a single producer's events are already in order.
     */
    void sealChunk(std::vector<TraceEvent> &staging,
                   std::size_t producers);

    std::atomic<bool> recording_{false};
    std::atomic<std::int64_t> eventsRecorded_{0};
    std::atomic<std::int64_t> eventsDropped_{0};
    std::atomic<std::int64_t> chunksSealed_{0};

    std::mutex bufsMu_; ///< guards bufs_ (registration + drain sweep)
    std::vector<std::unique_ptr<ThreadBuf>> bufs_;

    std::mutex namesMu_;
    std::unordered_map<std::string, std::uint32_t> nameIds_;
    std::vector<std::string> names_;

    /**
     * Serializes start()/stop() and the flusher's sleep/wake; the
     * writer itself is only touched by start() before the flusher
     * exists, the flusher while it runs, and stop() after the join,
     * so it needs no lock of its own. options_ is written in start()
     * and read-only while recording.
     */
    std::mutex stateMu_;
    std::unique_ptr<TraceWriter> writer_; ///< fresh per session
    RecorderOptions options_;
    std::thread flusher_;
    std::mutex flushMu_; ///< guards the two flags under flushCv_
    std::condition_variable flushCv_;
    bool stopFlusher_ = false;
    bool drainRequested_ = false; ///< a ring crossed its threshold

    std::atomic<bool> envChecked_{false};
};

} // namespace bertprof

#endif // BERTPROF_TELEMETRY_RECORDER_H
