#include "telemetry/replay.h"

#include <cstring>

namespace bertprof {

namespace {

float
bitsToFloat(std::int64_t bits)
{
    const std::uint32_t u = static_cast<std::uint32_t>(bits);
    float v;
    std::memcpy(&v, &u, sizeof v);
    return v;
}

double
bitsToDouble(std::int64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

template <typename E>
E
clampedEnum(std::uint8_t raw, E last)
{
    if (raw > static_cast<std::uint8_t>(last))
        return last;
    return static_cast<E>(raw);
}

} // namespace

void
ReplaySummary::fillProfiler(Profiler &profiler) const
{
    for (const ProfileRecord &rec : kernels)
        profiler.record(rec);
}

void
replayEvent(const TraceReader &reader, const TraceEvent &event,
            ReplaySummary &out)
{
    ++out.eventCount;
    if (out.eventCount == 1 || event.tsNs < out.firstTsNs)
        out.firstTsNs = event.tsNs;
    if (event.tsNs > out.lastTsNs)
        out.lastTsNs = event.tsNs;
    switch (event.type) {
    case TraceEventType::Kernel: {
        ProfileRecord rec;
        rec.name = reader.name(event.nameId);
        rec.kind = clampedEnum(event.a, OpKind::Comm);
        rec.phase = clampedEnum(event.b, Phase::Comm);
        rec.scope = clampedEnum(event.c, LayerScope::Network);
        rec.sub = clampedEnum(event.d, SubLayer::Other);
        rec.stats.flops = event.v1;
        rec.stats.bytesRead = event.v2;
        rec.stats.bytesWritten = event.v3;
        // Identical expression to ScopedKernel's destructor, so the
        // replayed double is bit-identical to the live one.
        rec.seconds = static_cast<double>(event.v0) * 1e-9;
        out.kernels.push_back(std::move(rec));
        out.kernelEndNs.push_back(event.tsNs);
        break;
    }
    case TraceEventType::TrainStep: {
        ReplayTrainStep step;
        step.step = event.v1;
        step.status = event.a;
        step.seconds = static_cast<double>(event.v0) * 1e-9;
        step.loss = bitsToFloat(event.v2);
        step.lr = bitsToFloat(event.v3);
        out.steps.push_back(step);
        break;
    }
    case TraceEventType::Checkpoint: {
        ReplayCheckpoint ckpt;
        ckpt.step = event.v1;
        ckpt.ok = event.a != 0;
        ckpt.seconds = static_cast<double>(event.v0) * 1e-9;
        out.checkpoints.push_back(ckpt);
        break;
    }
    case TraceEventType::ServeBatch: {
        ReplayServeBatch batch;
        batch.queueSeconds = static_cast<double>(event.v0) * 1e-9;
        batch.computeSeconds = static_cast<double>(event.v1) * 1e-9;
        batch.batchSize = event.v2;
        batch.paddedLen = event.v3;
        batch.queueDepth =
            static_cast<std::int64_t>(event.a) |
            (static_cast<std::int64_t>(event.b) << 8) |
            (static_cast<std::int64_t>(event.c) << 16) |
            (static_cast<std::int64_t>(event.d) << 24);
        out.serveBatches.push_back(batch);
        break;
    }
    case TraceEventType::Counter:
        out.counterTotals[reader.name(event.nameId)] += event.v0;
        break;
    case TraceEventType::Gauge:
        out.gauges[reader.name(event.nameId)] = bitsToDouble(event.v0);
        break;
    case TraceEventType::Mark:
        ++out.markCount;
        break;
    }
}

IoStatus
replayTrace(const std::string &path, ReplaySummary &out)
{
    out = ReplaySummary{};
    TraceReader reader;
    IoStatus status = reader.open(path);
    if (!status.ok())
        return status;
    TraceForwardIter iter(reader);
    TraceEvent event;
    while (iter.next(event))
        replayEvent(reader, event, out);
    out.truncatedTail = reader.truncatedTail();
    out.tailMessage = reader.tailStatus().message;
    return IoStatus::success();
}

} // namespace bertprof
