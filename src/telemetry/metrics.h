/**
 * @file
 * Process-wide live telemetry: counters, gauges, and log-bucketed
 * histograms behind a small registry. The trace container is the
 * *record* of a run; the metrics registry is the *now* — cheap
 * lock-free instruments the training loop, the serving runtime, and
 * the recorder itself update on every operation, snapshot-able at any
 * moment without stopping anything.
 *
 * All instruments are plain atomics: updates are wait-free and safe
 * from any thread (TSan-clean at full pool width), and a snapshot is
 * a relaxed read — monotonic counters may be mid-update, which is
 * fine for monitoring.
 */

#ifndef BERTPROF_TELEMETRY_METRICS_H
#define BERTPROF_TELEMETRY_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace bertprof {

/** Monotonic event count. */
class Counter
{
  public:
    void
    add(std::int64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        std::int64_t bits;
        static_assert(sizeof bits == sizeof v);
        __builtin_memcpy(&bits, &v, sizeof bits);
        bits_.store(bits, std::memory_order_relaxed);
    }

    double
    value() const
    {
        const std::int64_t bits =
            bits_.load(std::memory_order_relaxed);
        double v;
        __builtin_memcpy(&v, &bits, sizeof v);
        return v;
    }

  private:
    std::atomic<std::int64_t> bits_{0};
};

/**
 * Geometric histogram for positive samples (latencies in seconds,
 * batch sizes, ...): power-of-two buckets spanning ~1e-12 .. ~3e16,
 * nearest-rank quantiles answered from bucket midpoints (exact
 * count/sum/min/max, quantiles within a factor of 2 — the right
 * trade for an always-on instrument). Non-positive samples clamp
 * into the lowest bucket.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 96;

    void record(double v);

    std::int64_t count() const;
    double sum() const;
    double mean() const;
    double min() const; ///< 0 when empty
    double max() const; ///< 0 when empty

    /** Nearest-rank quantile from bucket midpoints; 0 when empty. */
    double quantile(double q) const;

    /** Observations in bucket `b` (diagnostic / rendering). */
    std::int64_t bucketCount(int b) const;
    /** Geometric midpoint of bucket `b`. */
    static double bucketMid(int b);

  private:
    static int bucketOf(double v);

    std::atomic<std::int64_t> counts_[kBuckets] = {};
    std::atomic<std::int64_t> count_{0};
    std::atomic<std::int64_t> sumNanos_{0}; ///< sum in 1e-9 units
    /** Bit patterns of +inf / -inf so the first sample always wins. */
    std::atomic<std::int64_t> minBits_{0x7FF0000000000000LL};
    std::atomic<std::int64_t> maxBits_{
        static_cast<std::int64_t>(0xFFF0000000000000ULL)};
};

/**
 * Name -> instrument registry. Instruments are created on first use
 * and live for the process (returned references are stable), so hot
 * paths look a metric up once and keep the pointer.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry. */
    static MetricsRegistry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Human-readable snapshot, one `name kind value...` line per
     * instrument, sorted by name.
     */
    std::string snapshotText() const;

    /** Drop every instrument (tests only — invalidates references). */
    void resetForTest();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace bertprof

#endif // BERTPROF_TELEMETRY_METRICS_H
