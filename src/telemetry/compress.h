/**
 * @file
 * Dependency-free block compression for trace chunks, in the shape of
 * Slimmer's LZ4-chunked trace files but without the LZ4 dependency:
 * an LZ77-style byte-window codec (greedy 4-byte hash matcher over a
 * 64 KiB window — the "LZ4-style" path) plus a run-length fallback
 * and raw passthrough. The chunk header records which codec each
 * chunk used, so files mixing all three decode fine.
 *
 * Both codecs are exact round-trips and the decoders are fully
 * bounds-checked: a corrupt or truncated payload returns false
 * instead of reading or writing out of bounds (the CRC normally
 * catches corruption first; the decoder must still never trust a
 * length field).
 */

#ifndef BERTPROF_TELEMETRY_COMPRESS_H
#define BERTPROF_TELEMETRY_COMPRESS_H

#include <cstdint>
#include <string>

namespace bertprof {

/** Block codec identifiers stamped into chunk headers. */
enum class TraceCodec : std::uint32_t {
    Raw = 0, ///< stored uncompressed
    Rle = 1, ///< byte run-length encoding
    Lz = 2,  ///< LZ77 window matcher (LZ4-style tokens)
};

/** Display name: "raw" / "rle" / "lz". */
const char *traceCodecName(TraceCodec codec);

/** Compress `input` with the given codec (Raw copies). */
std::string compressBlock(const std::string &input, TraceCodec codec);

/**
 * Compress with Lz, fall back to Rle, fall back to Raw — whichever
 * is smallest. `codecOut` reports the winner.
 */
std::string compressBlockAuto(const std::string &input,
                              TraceCodec &codecOut);

/**
 * Decompress `size` bytes at `data` into `out` (cleared first),
 * expecting exactly `rawSize` decoded bytes. Returns false on any
 * malformed token, overrun, or size mismatch.
 */
bool decompressBlock(const char *data, std::size_t size,
                     TraceCodec codec, std::size_t rawSize,
                     std::string &out);

} // namespace bertprof

#endif // BERTPROF_TELEMETRY_COMPRESS_H
