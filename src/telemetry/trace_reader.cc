#include "telemetry/trace_reader.h"

#include <cstring>

#include "io/crc32.h"
#include "telemetry/trace_writer.h"
#include "telemetry/varint.h"

namespace bertprof {

namespace {

std::uint32_t
getU32(const char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

std::uint64_t
getU64(const char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

const std::string kUnknownName = "<unknown>";

/**
 * Decode the name section at the head of a decompressed payload.
 * Returns false on overrun; `pos` ends past the section.
 */
bool
decodeNames(const std::string &raw, std::uint32_t count,
            std::size_t &pos, std::vector<std::string> *out)
{
    std::uint64_t declared = 0;
    if (!getVarint(raw.data(), raw.size(), pos, declared))
        return false;
    if (declared != count)
        return false;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t len = 0;
        if (!getVarint(raw.data(), raw.size(), pos, len))
            return false;
        if (pos + len > raw.size())
            return false;
        if (out)
            out->emplace_back(raw.data() + pos,
                              static_cast<std::size_t>(len));
        pos += static_cast<std::size_t>(len);
    }
    return true;
}

} // namespace

IoStatus
TraceReader::open(const std::string &path)
{
    chunks_.clear();
    names_.clear();
    eventCount_ = 0;
    tailStatus_ = IoStatus::success();

    IoStatus status = file_.open(path);
    if (!status.ok())
        return status;
    if (file_.size() < kTraceFileHeaderSize) {
        return IoStatus::failure(IoError::Truncated,
                                 path + " is shorter than the trace "
                                        "file header");
    }
    const char *data = file_.data();
    if (getU32(data) != kTraceMagic) {
        return IoStatus::failure(IoError::BadMagic,
                                 path + " is not a bertprof trace "
                                        "container (bad magic)");
    }
    const std::uint32_t version = getU32(data + 4);
    if (version != kTraceFormatVersion) {
        return IoStatus::failure(
            IoError::BadVersion,
            path + " has trace format version " +
                std::to_string(version) + ", expected " +
                std::to_string(kTraceFormatVersion));
    }
    return indexChunks();
}

IoStatus
TraceReader::indexChunks()
{
    const char *data = file_.data();
    const std::size_t size = file_.size();
    std::size_t pos = kTraceFileHeaderSize;
    while (pos < size) {
        if (pos + kTraceChunkHeaderSize > size) {
            tailStatus_ = IoStatus::failure(
                IoError::Truncated,
                "torn chunk header at offset " + std::to_string(pos));
            break;
        }
        const char *h = data + pos;
        if (getU32(h) != kTraceChunkMagic) {
            tailStatus_ = IoStatus::failure(
                IoError::BadMagic,
                "bad chunk magic at offset " + std::to_string(pos));
            break;
        }
        TraceChunkInfo info;
        info.offset = pos;
        const std::uint32_t crc = getU32(h + 4);
        const std::uint32_t codec = getU32(h + 8);
        info.eventCount = getU32(h + 12);
        info.newNameCount = getU32(h + 16);
        info.rawSize = getU64(h + 24);
        info.compSize = getU64(h + 32);
        info.baseNs = static_cast<std::int64_t>(getU64(h + 40));
        if (codec > static_cast<std::uint32_t>(TraceCodec::Lz) ||
            info.rawSize > kTraceMaxChunkRawSize) {
            tailStatus_ = IoStatus::failure(
                IoError::BadFormat,
                "implausible chunk header at offset " +
                    std::to_string(pos));
            break;
        }
        info.codec = static_cast<TraceCodec>(codec);
        if (pos + kTraceChunkHeaderSize + info.compSize > size) {
            tailStatus_ = IoStatus::failure(
                IoError::Truncated,
                "torn chunk payload at offset " + std::to_string(pos));
            break;
        }
        const std::size_t covered =
            kTraceChunkHeaderSize - 8 +
            static_cast<std::size_t>(info.compSize);
        if (crc32(h + 8, covered) != crc) {
            tailStatus_ = IoStatus::failure(
                IoError::BadChecksum,
                "chunk CRC mismatch at offset " + std::to_string(pos));
            break;
        }
        info.firstNameId = static_cast<std::uint32_t>(names_.size());
        if (info.newNameCount > 0) {
            // Harvest the chunk's name additions now so backward
            // iteration and random chunk access see the full table.
            std::string raw;
            if (!decompressBlock(h + kTraceChunkHeaderSize,
                                 static_cast<std::size_t>(info.compSize),
                                 info.codec,
                                 static_cast<std::size_t>(info.rawSize),
                                 raw)) {
                tailStatus_ = IoStatus::failure(
                    IoError::BadFormat,
                    "undecodable chunk payload at offset " +
                        std::to_string(pos));
                break;
            }
            std::size_t rp = 0;
            const std::size_t before = names_.size();
            if (!decodeNames(raw, info.newNameCount, rp, &names_)) {
                names_.resize(before);
                tailStatus_ = IoStatus::failure(
                    IoError::BadFormat,
                    "undecodable name table at offset " +
                        std::to_string(pos));
                break;
            }
        }
        chunks_.push_back(info);
        eventCount_ += info.eventCount;
        pos += kTraceChunkHeaderSize +
               static_cast<std::size_t>(info.compSize);
    }
    return IoStatus::success();
}

const std::string &
TraceReader::name(std::uint32_t id) const
{
    if (id < names_.size())
        return names_[id];
    return kUnknownName;
}

IoStatus
TraceReader::readChunk(std::size_t i, std::vector<TraceEvent> &out) const
{
    out.clear();
    if (i >= chunks_.size()) {
        return IoStatus::failure(IoError::BadFormat,
                                 "chunk index out of range");
    }
    const TraceChunkInfo &info = chunks_[i];
    const char *payload =
        file_.data() + info.offset + kTraceChunkHeaderSize;
    std::string raw;
    if (!decompressBlock(payload,
                         static_cast<std::size_t>(info.compSize),
                         info.codec,
                         static_cast<std::size_t>(info.rawSize), raw)) {
        return IoStatus::failure(IoError::BadChecksum,
                                 "chunk payload failed to decompress");
    }
    std::size_t pos = 0;
    if (!decodeNames(raw, info.newNameCount, pos, nullptr)) {
        return IoStatus::failure(IoError::BadFormat,
                                 "chunk name table failed to decode");
    }
    out.reserve(info.eventCount);
    std::int64_t prev = info.baseNs;
    for (std::uint32_t e = 0; e < info.eventCount; ++e) {
        TraceEvent event;
        if (!decodeTraceEvent(raw.data(), raw.size(), pos, prev,
                              event)) {
            out.clear();
            return IoStatus::failure(
                IoError::BadFormat,
                "chunk event " + std::to_string(e) +
                    " failed to decode");
        }
        out.push_back(event);
    }
    return IoStatus::success();
}

bool
TraceForwardIter::next(TraceEvent &out)
{
    while (index_ >= buffer_.size()) {
        if (chunk_ >= reader_.chunkCount())
            return false;
        // A chunk that validated at open but fails now is dropped —
        // same skip-the-tail semantics, never an abort mid-replay.
        if (!reader_.readChunk(chunk_++, buffer_).ok())
            buffer_.clear();
        index_ = 0;
    }
    out = buffer_[index_++];
    return true;
}

bool
TraceBackwardIter::prev(TraceEvent &out)
{
    while (index_ == 0) {
        if (chunk_ == 0)
            return false;
        if (!reader_.readChunk(--chunk_, buffer_).ok())
            buffer_.clear();
        index_ = buffer_.size();
    }
    out = buffer_[--index_];
    return true;
}

} // namespace bertprof
