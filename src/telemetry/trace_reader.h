/**
 * @file
 * Replay-side of the trace container: an mmap-backed reader that
 * validates the file header, indexes chunk headers (never touching
 * payload pages it does not need), and hands out forward *and*
 * backward event iterators — Slimmer's TraceIter/TraceBackwardIter
 * pattern. Both iterators decode one chunk at a time, so replaying a
 * multi-gigabyte container costs one chunk of working memory.
 *
 * Torn tails are expected, not fatal: the index stops at the first
 * chunk whose header, bounds, or CRC fails, records why in
 * tailStatus(), and everything before it replays normally — the
 * crash-tolerance contract of the append protocol.
 */

#ifndef BERTPROF_TELEMETRY_TRACE_READER_H
#define BERTPROF_TELEMETRY_TRACE_READER_H

#include <cstdint>
#include <string>
#include <vector>

#include "io/mmap_file.h"
#include "telemetry/compress.h"
#include "telemetry/trace_format.h"

namespace bertprof {

/** Index entry for one validated chunk. */
struct TraceChunkInfo {
    std::size_t offset = 0; ///< file offset of the chunk header
    TraceCodec codec = TraceCodec::Raw;
    std::uint32_t eventCount = 0;
    std::uint32_t newNameCount = 0;
    std::uint64_t rawSize = 0;
    std::uint64_t compSize = 0;
    std::int64_t baseNs = 0;
    std::uint32_t firstNameId = 0; ///< id of its first new name
};

/** Validating random-access view over a container file. */
class TraceReader
{
  public:
    /**
     * Map and index `path`. Fails (typed) when the file header is
     * missing, has the wrong magic, or an unsupported version. A
     * valid header with a corrupt/torn chunk tail still opens: the
     * bad tail is dropped and described by tailStatus().
     */
    IoStatus open(const std::string &path);

    std::size_t chunkCount() const { return chunks_.size(); }
    const TraceChunkInfo &chunk(std::size_t i) const
    {
        return chunks_[i];
    }

    /** Events across all valid chunks. */
    std::int64_t eventCount() const { return eventCount_; }

    /** True when the file ends in an invalid/torn chunk. */
    bool truncatedTail() const { return !tailStatus_.ok(); }
    /** Why indexing stopped (success() when the tail is clean). */
    const IoStatus &tailStatus() const { return tailStatus_; }

    /** The full interned name table across all valid chunks. */
    const std::vector<std::string> &names() const { return names_; }

    /** Name for an id ("<unknown>" when out of range). */
    const std::string &name(std::uint32_t id) const;

    /**
     * Decompress and decode chunk `i` into `out` (cleared first).
     * BadChecksum/BadFormat on payloads that fail to decode — can
     * only happen for in-place corruption after open() validated the
     * CRC, but the decoder still never trusts a length field.
     */
    IoStatus readChunk(std::size_t i, std::vector<TraceEvent> &out) const;

    /** Container bytes on disk. */
    std::size_t fileSize() const { return file_.size(); }

  private:
    IoStatus indexChunks();

    MappedFile file_;
    std::vector<TraceChunkInfo> chunks_;
    std::vector<std::string> names_;
    std::int64_t eventCount_ = 0;
    IoStatus tailStatus_;
};

/**
 * Streaming forward iterator: events in file order, one chunk of
 * working memory. The reader must outlive the iterator.
 */
class TraceForwardIter
{
  public:
    explicit TraceForwardIter(const TraceReader &reader)
        : reader_(reader)
    {
    }

    /** False once the container is exhausted. */
    bool next(TraceEvent &out);

  private:
    const TraceReader &reader_;
    std::vector<TraceEvent> buffer_;
    std::size_t chunk_ = 0;
    std::size_t index_ = 0;
};

/**
 * Streaming backward iterator: events in exact reverse file order —
 * the "what led up to the crash/stall" view, reading the newest
 * chunks first without decoding the whole container.
 */
class TraceBackwardIter
{
  public:
    explicit TraceBackwardIter(const TraceReader &reader)
        : reader_(reader), chunk_(reader.chunkCount())
    {
    }

    /** False once the container start is reached. */
    bool prev(TraceEvent &out);

  private:
    const TraceReader &reader_;
    std::vector<TraceEvent> buffer_;
    std::size_t chunk_; ///< chunks [chunk_, count) already consumed
    std::size_t index_ = 0; ///< events left in buffer_
};

} // namespace bertprof

#endif // BERTPROF_TELEMETRY_TRACE_READER_H
