#include "ops/embedding.h"

#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

KernelStats
embeddingForward(const Tensor &table, const std::vector<std::int64_t> &ids,
                 Tensor &out)
{
    BP_CHECK_RANK(table, 2);
    BP_CHECK_RANK(out, 2);
    BP_CHECK_NO_ALIAS(out, table);
    const std::int64_t vocab = table.shape().dim(0);
    const std::int64_t dim = table.shape().dim(1);
    BP_REQUIRE(out.shape().dim(0) ==
               static_cast<std::int64_t>(ids.size()));
    BP_REQUIRE(out.shape().dim(1) == dim);

    for (std::size_t t = 0; t < ids.size(); ++t) {
        const std::int64_t id = ids[t];
        BP_REQUIRE(id >= 0 && id < vocab);
        const float *src = table.data() + id * dim;
        float *dst = out.data() + static_cast<std::int64_t>(t) * dim;
        for (std::int64_t c = 0; c < dim; ++c)
            dst[c] = src[c];
    }
    KernelStats s;
    s.bytesRead = out.numel() * dtypeBytes(table.dtype()) +
                  static_cast<std::int64_t>(ids.size()) * 8;
    s.bytesWritten = out.storageBytes();
    return s;
}

KernelStats
embeddingBackward(const Tensor &dout, const std::vector<std::int64_t> &ids,
                  Tensor &dtable)
{
    BP_CHECK_RANK(dtable, 2);
    BP_CHECK_RANK(dout, 2);
    BP_CHECK_NO_ALIAS(dtable, dout);
    const std::int64_t vocab = dtable.shape().dim(0);
    const std::int64_t dim = dtable.shape().dim(1);
    BP_REQUIRE(dout.shape().dim(0) ==
               static_cast<std::int64_t>(ids.size()));
    BP_REQUIRE(dout.shape().dim(1) == dim);

    for (std::size_t t = 0; t < ids.size(); ++t) {
        const std::int64_t id = ids[t];
        BP_REQUIRE(id >= 0 && id < vocab);
        const float *src = dout.data() + static_cast<std::int64_t>(t) * dim;
        float *dst = dtable.data() + id * dim;
        for (std::int64_t c = 0; c < dim; ++c)
            dst[c] += src[c];
    }
    KernelStats s;
    s.flops = dout.numel();
    s.bytesRead = dout.storageBytes() +
                  dout.numel() * dtypeBytes(dtable.dtype()) +
                  static_cast<std::int64_t>(ids.size()) * 8;
    s.bytesWritten = dout.numel() * dtypeBytes(dtable.dtype());
    return s;
}

} // namespace bertprof
