/**
 * @file
 * Packed, register-blocked GEMM engine for the CPU substrate — the
 * BLIS decomposition of C = alpha * op(A) op(B) + beta * C:
 *
 *   jc-loop over N in NC panels        (B panel -> L3)
 *     pc-loop over K in KC blocks      (packed B block -> L2/L3)
 *       pack op(B)[pc, jc] into NR-wide micro-panels
 *       ic-loop over M in MC blocks    (packed A block -> L2)
 *         pack op(A)[ic, pc] into MR-tall micro-panels
 *         ir/jr-loops over MR x NR register tiles -> microkernel
 *
 * The microkernel accumulates an MR x NR tile in a local register
 * block with unit-stride loads from both packed panels; the inner
 * loop is written so the compiler auto-vectorizes it into FMA
 * sequences (build with -DBERTPROF_NATIVE=ON for the host's widest
 * vector ISA). Packing absorbs all four transpose combinations, so
 * the transposed-operand GEMMs (attention K^T, every backward
 * weight gradient) run the same contiguous hot loop as the
 * non-transposed ones.
 *
 * Determinism: each output element's accumulation order is a pure
 * function of (n, k) — KC blocks in ascending pc order, products in
 * ascending p order within a block — and never of the row partition
 * executing it. Row-sliced parallel execution is therefore bitwise
 * identical to one serial call for every thread count. (Bits may
 * differ from the reference kernel and across ISAs/builds; the
 * contract is per-build thread-count invariance, as with the rest of
 * the runtime.)
 */

#ifndef BERTPROF_OPS_GEMM_MICROKERNEL_H
#define BERTPROF_OPS_GEMM_MICROKERNEL_H

#include <cstdint>

namespace bertprof {

/**
 * Register-tile geometry. Chosen per ISA so the MR x NR accumulator
 * block fits the architectural register file with room for operand
 * loads; tile shape affects only performance, never results (each
 * element's accumulation order is independent of it).
 */
#if defined(__AVX512F__)
inline constexpr std::int64_t kGemmMR = 8;
inline constexpr std::int64_t kGemmNR = 32;
#elif defined(__AVX__)
inline constexpr std::int64_t kGemmMR = 6;
inline constexpr std::int64_t kGemmNR = 16;
#else
inline constexpr std::int64_t kGemmMR = 4;
inline constexpr std::int64_t kGemmNR = 8;
#endif

/** K extent of a packed block: an MR x KC A-panel plus an NR x KC
 * B-panel stay L1-resident. Fixed across ISAs — KC is the one
 * blocking parameter that shapes accumulation order. */
inline constexpr std::int64_t kGemmKC = 256;

/** M extent of a packed A block (L2-resident; multiple of every
 * kGemmMR above, so edge handling is ISA-independent). */
inline constexpr std::int64_t kGemmMC = 96;

/** N extent of a packed B block (multiple of every kGemmNR). */
inline constexpr std::int64_t kGemmNC = 1024;

/**
 * Packed GEMM restricted to output rows [row_begin, row_end) of a
 * row-major MxN C: C = alpha * op(A) op(B) + beta * C. op(A) is MxK
 * (A stored KxM when trans_a), op(B) is KxN (B stored NxK when
 * trans_b). Uses thread-local packing buffers — safe to call
 * concurrently on disjoint row ranges, e.g. from parallelFor with a
 * kGemmMC grain.
 */
void gemmPackedRows(const float *a, const float *b, float *c, std::int64_t m,
                    std::int64_t n, std::int64_t k, bool trans_a,
                    bool trans_b, float alpha, float beta,
                    std::int64_t row_begin, std::int64_t row_end);

} // namespace bertprof

#endif // BERTPROF_OPS_GEMM_MICROKERNEL_H
