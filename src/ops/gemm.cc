#include "ops/gemm.h"

#include <algorithm>

#include "util/logging.h"

namespace bertprof {

namespace {

/**
 * Core MxNxK kernel on raw pointers with row-major storage and
 * logical transposes handled via strides. Blocked on K and N to keep
 * the working set cache resident.
 */
void
gemmKernel(const float *a, const float *b, float *c, std::int64_t m,
           std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
           float alpha, float beta)
{
    // Element (i, p) of op(A): A is MxK or (transposed) KxM.
    const std::int64_t a_rs = trans_a ? 1 : k; // row stride
    const std::int64_t a_cs = trans_a ? m : 1; // col stride
    const std::int64_t b_rs = trans_b ? 1 : n;
    const std::int64_t b_cs = trans_b ? k : 1;

    for (std::int64_t i = 0; i < m * n; ++i)
        c[i] = beta == 0.0f ? 0.0f : c[i] * beta;

    constexpr std::int64_t kBlockK = 64;
    constexpr std::int64_t kBlockN = 128;
    for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
        const std::int64_t p1 = std::min(p0 + kBlockK, k);
        for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
            const std::int64_t j1 = std::min(j0 + kBlockN, n);
            for (std::int64_t i = 0; i < m; ++i) {
                float *crow = c + i * n;
                for (std::int64_t p = p0; p < p1; ++p) {
                    const float av = alpha * a[i * a_rs + p * a_cs];
                    const float *brow = b + p * b_rs;
                    for (std::int64_t j = j0; j < j1; ++j)
                        crow[j] += av * brow[j * b_cs];
                }
            }
        }
    }
}

} // namespace

KernelStats
gemm(const Tensor &a, const Tensor &b, Tensor &c, bool trans_a, bool trans_b,
     float alpha, float beta)
{
    BP_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2 &&
               c.shape().rank() == 2);
    const std::int64_t m = trans_a ? a.shape().dim(1) : a.shape().dim(0);
    const std::int64_t k = trans_a ? a.shape().dim(0) : a.shape().dim(1);
    const std::int64_t kb = trans_b ? b.shape().dim(1) : b.shape().dim(0);
    const std::int64_t n = trans_b ? b.shape().dim(0) : b.shape().dim(1);
    BP_REQUIRE(k == kb);
    BP_REQUIRE(c.shape().dim(0) == m && c.shape().dim(1) == n);

    gemmKernel(a.data(), b.data(), c.data(), m, n, k, trans_a, trans_b,
               alpha, beta);
    return gemmStats(m, n, k, 1, dtypeBytes(a.dtype()));
}

KernelStats
batchedGemm(const Tensor &a, const Tensor &b, Tensor &c, bool trans_a,
            bool trans_b, float alpha, float beta)
{
    BP_REQUIRE(a.shape().rank() == 3 && b.shape().rank() == 3 &&
               c.shape().rank() == 3);
    const std::int64_t batch = a.shape().dim(0);
    BP_REQUIRE(b.shape().dim(0) == batch && c.shape().dim(0) == batch);

    const std::int64_t m = trans_a ? a.shape().dim(2) : a.shape().dim(1);
    const std::int64_t k = trans_a ? a.shape().dim(1) : a.shape().dim(2);
    const std::int64_t kb = trans_b ? b.shape().dim(2) : b.shape().dim(1);
    const std::int64_t n = trans_b ? b.shape().dim(1) : b.shape().dim(2);
    BP_REQUIRE(k == kb);
    BP_REQUIRE(c.shape().dim(1) == m && c.shape().dim(2) == n);

    const std::int64_t a_step = a.shape().dim(1) * a.shape().dim(2);
    const std::int64_t b_step = b.shape().dim(1) * b.shape().dim(2);
    const std::int64_t c_step = m * n;
    for (std::int64_t g = 0; g < batch; ++g) {
        gemmKernel(a.data() + g * a_step, b.data() + g * b_step,
                   c.data() + g * c_step, m, n, k, trans_a, trans_b, alpha,
                   beta);
    }
    return gemmStats(m, n, k, batch, dtypeBytes(a.dtype()));
}

} // namespace bertprof
