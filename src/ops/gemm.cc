#include "ops/gemm.h"

#include <algorithm>

#include "ops/gemm_microkernel.h"
#include "runtime/config.h"
#include "tensor/contracts.h"
#include "runtime/parallel_for.h"
#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

namespace {

/** Chunk granularity over the M dimension for the reference kernel:
 * rows are heavyweight (n*k MACs each), so chunk finely and let the
 * chunk cap bound overhead. The packed engine chunks at its MC block
 * instead, so each chunk packs each A panel exactly once. */
constexpr std::int64_t kGemmRowGrain = 4;

/**
 * Core MxNxK kernel on raw pointers with row-major storage and
 * logical transposes handled via strides, restricted to output rows
 * [row_begin, row_end). Blocked on K and N to keep the working set
 * cache resident. Each output row's accumulation order is independent
 * of the row range, so row-partitioned parallel execution is bitwise
 * identical to one serial call over [0, m).
 */
void
gemmKernelRows(const float *a, const float *b, float *c, std::int64_t m,
               std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
               float alpha, float beta, std::int64_t row_begin,
               std::int64_t row_end)
{
    // Element (i, p) of op(A): A is MxK or (transposed) KxM.
    const std::int64_t a_rs = trans_a ? 1 : k; // row stride
    const std::int64_t a_cs = trans_a ? m : 1; // col stride
    const std::int64_t b_rs = trans_b ? 1 : n;
    const std::int64_t b_cs = trans_b ? k : 1;

    for (std::int64_t i = row_begin * n; i < row_end * n; ++i)
        c[i] = beta == 0.0f ? 0.0f : c[i] * beta;

    constexpr std::int64_t kBlockK = 64;
    constexpr std::int64_t kBlockN = 128;
    for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
        const std::int64_t p1 = std::min(p0 + kBlockK, k);
        for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
            const std::int64_t j1 = std::min(j0 + kBlockN, n);
            for (std::int64_t i = row_begin; i < row_end; ++i) {
                float *crow = c + i * n;
                for (std::int64_t p = p0; p < p1; ++p) {
                    const float av = alpha * a[i * a_rs + p * a_cs];
                    const float *brow = b + p * b_rs;
                    for (std::int64_t j = j0; j < j1; ++j)
                        crow[j] += av * brow[j * b_cs];
                }
            }
        }
    }
}

} // namespace

KernelStats
gemm(const Tensor &a, const Tensor &b, Tensor &c, bool trans_a, bool trans_b,
     float alpha, float beta)
{
    BP_CHECK_RANK(a, 2);
    BP_CHECK_RANK(b, 2);
    BP_CHECK_RANK(c, 2);
    const std::int64_t m = trans_a ? a.shape().dim(1) : a.shape().dim(0);
    const std::int64_t k = trans_a ? a.shape().dim(0) : a.shape().dim(1);
    const std::int64_t kb = trans_b ? b.shape().dim(1) : b.shape().dim(0);
    const std::int64_t n = trans_b ? b.shape().dim(0) : b.shape().dim(1);
    BP_REQUIRE(k == kb);
    BP_REQUIRE(c.shape().dim(0) == m && c.shape().dim(1) == n);
    // The packed engine reads whole operand panels while writing C,
    // so any storage overlap silently corrupts results.
    BP_CHECK_NO_ALIAS(c, a);
    BP_CHECK_NO_ALIAS(c, b);

    if (configuredGemmImpl() == GemmImpl::Packed) {
        parallelFor(0, m, kGemmMC,
                    [&](std::int64_t row_begin, std::int64_t row_end) {
                        gemmPackedRows(a.data(), b.data(), c.data(), m, n, k,
                                       trans_a, trans_b, alpha, beta,
                                       row_begin, row_end);
                    });
    } else {
        parallelFor(0, m, kGemmRowGrain,
                    [&](std::int64_t row_begin, std::int64_t row_end) {
                        gemmKernelRows(a.data(), b.data(), c.data(), m, n, k,
                                       trans_a, trans_b, alpha, beta,
                                       row_begin, row_end);
                    });
    }
    return gemmStats(m, n, k, 1, dtypeBytes(a.dtype()));
}

KernelStats
batchedGemm(const Tensor &a, const Tensor &b, Tensor &c, bool trans_a,
            bool trans_b, float alpha, float beta)
{
    BP_CHECK_RANK(a, 3);
    BP_CHECK_RANK(b, 3);
    BP_CHECK_RANK(c, 3);
    const std::int64_t batch = a.shape().dim(0);
    BP_REQUIRE(b.shape().dim(0) == batch && c.shape().dim(0) == batch);

    const std::int64_t m = trans_a ? a.shape().dim(2) : a.shape().dim(1);
    const std::int64_t k = trans_a ? a.shape().dim(1) : a.shape().dim(2);
    const std::int64_t kb = trans_b ? b.shape().dim(2) : b.shape().dim(1);
    const std::int64_t n = trans_b ? b.shape().dim(1) : b.shape().dim(2);
    BP_REQUIRE(k == kb);
    BP_REQUIRE(c.shape().dim(1) == m && c.shape().dim(2) == n);
    BP_CHECK_NO_ALIAS(c, a);
    BP_CHECK_NO_ALIAS(c, b);

    const std::int64_t a_step = a.shape().dim(1) * a.shape().dim(2);
    const std::int64_t b_step = b.shape().dim(1) * b.shape().dim(2);
    const std::int64_t c_step = m * n;
    // The B*h attention GEMMs are embarrassingly parallel over the
    // batch dimension; chunk over rows too so a few large batches
    // still spread across every lane.
    if (configuredGemmImpl() == GemmImpl::Packed) {
        parallelFor2d(batch, m, 1, kGemmMC,
                      [&](std::int64_t g_begin, std::int64_t g_end,
                          std::int64_t row_begin, std::int64_t row_end) {
                          for (std::int64_t g = g_begin; g < g_end; ++g) {
                              gemmPackedRows(a.data() + g * a_step,
                                             b.data() + g * b_step,
                                             c.data() + g * c_step, m, n, k,
                                             trans_a, trans_b, alpha, beta,
                                             row_begin, row_end);
                          }
                      });
    } else {
        parallelFor2d(batch, m, 1, kGemmRowGrain,
                      [&](std::int64_t g_begin, std::int64_t g_end,
                          std::int64_t row_begin, std::int64_t row_end) {
                          for (std::int64_t g = g_begin; g < g_end; ++g) {
                              gemmKernelRows(a.data() + g * a_step,
                                             b.data() + g * b_step,
                                             c.data() + g * c_step, m, n, k,
                                             trans_a, trans_b, alpha, beta,
                                             row_begin, row_end);
                          }
                      });
    }
    return gemmStats(m, n, k, batch, dtypeBytes(a.dtype()));
}

} // namespace bertprof
