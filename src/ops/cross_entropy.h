/**
 * @file
 * Softmax cross-entropy with logits, supporting ignored positions —
 * the loss behind BERT's masked-LM head (only ~15% of positions carry
 * a label) and the next-sentence-prediction head.
 */

#ifndef BERTPROF_OPS_CROSS_ENTROPY_H
#define BERTPROF_OPS_CROSS_ENTROPY_H

#include <cstdint>
#include <vector>

#include "ops/kernel_stats.h"
#include "tensor/tensor.h"

namespace bertprof {

/** Marks a position that does not contribute to the loss. */
constexpr std::int64_t kIgnoreIndex = -1;

/** Result of a cross-entropy evaluation. */
struct CrossEntropyResult {
    /** Mean negative log-likelihood over counted positions. */
    double loss = 0.0;
    /** Number of positions that carried a label. */
    std::int64_t count = 0;
    /** Kernel accounting. */
    KernelStats stats;
};

/**
 * Forward + backward in one pass: given logits [T, C] and labels
 * (size T, kIgnoreIndex entries skipped), computes the mean loss and
 * writes dlogits = (softmax - onehot) / count for labeled rows and 0
 * for ignored rows.
 */
CrossEntropyResult softmaxCrossEntropy(const Tensor &logits,
                                       const std::vector<std::int64_t>
                                           &labels,
                                       Tensor &dlogits);

} // namespace bertprof

#endif // BERTPROF_OPS_CROSS_ENTROPY_H
