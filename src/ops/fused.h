/**
 * @file
 * Fused CPU kernels for the paper's Sec. 6.1 software optimizations,
 * implemented for real (the analytical model in src/perf only
 * predicts their effect; bench_fig12a/b compare the two):
 *
 *  - bias + GeLU          (the FC1 epilogue, one pass instead of two)
 *  - residual + LayerNorm (the DR+RC+LN tail, sum never materialized
 *                          unless training needs it for backward)
 *  - score->softmax->context attention (eval only: one pass over each
 *                          score row, no [B*h, n, n] probs tensor)
 *  - packed QKV projection (one GEMM over a 3H-wide concatenated
 *                          weight: pack(A) amortized across Q, K, V)
 *
 * Parity contract versus the unfused kernel chain (the oracle):
 *
 *  - fusedBiasGeluForward:        bitwise (same per-element floats in
 *                                 the same order as bias then GeLU).
 *  - fusedResidualLayerNorm*:     bitwise (the residual sum is the
 *                                 same float the unfused addForward
 *                                 writes; LN row math is identical).
 *  - fusedQkvForward:             bitwise per GEMM engine (each output
 *                                 element's accumulation order depends
 *                                 only on k and the K-blocking, which
 *                                 a 3x wider N does not change).
 *  - fusedQkvBackward:            wgrad and bias grads bitwise (same
 *                                 per-element reduction order); dgrad
 *                                 tolerance-only (one k=3H GEMM
 *                                 replaces three k=H GEMMs + adds, a
 *                                 different accumulation association).
 *  - fusedAttentionEvalForward:   tolerance-only (row-dot accumulation
 *                                 replaces the blocked batched-GEMM
 *                                 association).
 *
 * Every kernel reports KernelStats with flops summed from the
 * constituent unfused ops and bytes counted at the *fused* traffic,
 * so Fig. 3/4 breakdowns stay meaningful and the traffic savings are
 * visible to the profiler.
 */

#ifndef BERTPROF_OPS_FUSED_H
#define BERTPROF_OPS_FUSED_H

#include "ops/kernel_stats.h"
#include "tensor/tensor.h"

namespace bertprof {

/**
 * out = GeLU(in + bias) in one pass. `in` is [rows, cols] (the raw
 * FC GEMM output, pre-bias), bias is [cols]. Bitwise identical to
 * biasForward followed by geluForward.
 */
KernelStats fusedBiasGeluForward(const Tensor &in, const Tensor &bias,
                                 Tensor &out);

/**
 * Training variant: also materializes pre = in + bias (the tensor the
 * unfused path hands to geluBackward). `pre` must be disjoint from
 * `out`.
 */
KernelStats fusedBiasGeluForwardWithPre(const Tensor &in,
                                        const Tensor &bias, Tensor &pre,
                                        Tensor &out);

/**
 * out = LayerNorm(a + b) in one pass; the residual sum lives in a
 * per-thread row buffer and is never written to memory. Bitwise
 * identical to addForward followed by layerNormForward. mean/rstd are
 * per-row [rows] outputs (layerNormBackward needs them).
 */
KernelStats fusedResidualLayerNormForward(const Tensor &a, const Tensor &b,
                                          const Tensor &gamma,
                                          const Tensor &beta, Tensor &out,
                                          Tensor &mean, Tensor &rstd,
                                          float eps = 1e-5f);

/**
 * Training variant: also materializes sum = a + b (the LN input the
 * unfused path saves for layerNormBackward).
 */
KernelStats fusedResidualLayerNormForwardWithSum(
    const Tensor &a, const Tensor &b, const Tensor &gamma,
    const Tensor &beta, Tensor &sum, Tensor &out, Tensor &mean,
    Tensor &rstd, float eps = 1e-5f);

/**
 * Fused Q/K/V projection: one [T, H] x [H, 3H] GEMM over the row-wise
 * concatenation [Wq; Wk; Wv], then a fused bias-add + split-heads
 * epilogue writing the three [B*h, n, d/h] operands the attention
 * batched GEMMs consume. x is [T, H] with T = batch*seq; wq/wk/wv are
 * [H, H]; bq/bk/bv are [H].
 */
KernelStats fusedQkvForward(const Tensor &x, const Tensor &wq,
                            const Tensor &wk, const Tensor &wv,
                            const Tensor &bq, const Tensor &bk,
                            const Tensor &bv, std::int64_t batch,
                            std::int64_t seq, std::int64_t heads,
                            Tensor &q3d, Tensor &k3d, Tensor &v3d);

/**
 * Backward of fusedQkvForward. dq/dk/dv are the merged-head [T, H]
 * projection-output grads; x is the saved forward input. Produces
 * fresh (non-accumulated) weight/bias grads and dx. The weight and
 * bias grads are bitwise identical to three separate backwards; dx is
 * tolerance-only (single k=3H GEMM versus three k=H GEMMs + adds).
 */
KernelStats fusedQkvBackward(const Tensor &dq, const Tensor &dk,
                             const Tensor &dv, const Tensor &x,
                             const Tensor &wq, const Tensor &wk,
                             const Tensor &wv, Tensor &dwq, Tensor &dwk,
                             Tensor &dwv, Tensor &dbq, Tensor &dbk,
                             Tensor &dbv, Tensor &dx);

/**
 * Eval-only fused attention: per head-group, a packed-microkernel
 * q k^T GEMM (scale in alpha) lands in a per-worker cache-resident
 * [n, n] score block, mask+softmax run over its rows in place, and a
 * packed P v GEMM produces the context — the [B*h, n, n] score/probs
 * tensors are never materialized (tolerance parity vs the unfused
 * chain). q3d/k3d/v3d are [B*h, n, d/h]; mask is either [n, n]
 * (broadcast) or [B, n, n] (per-sequence, group g uses row g/heads);
 * context is [B*h, n, d/h]; scale is 1/sqrt(d/h).
 */
KernelStats fusedAttentionEvalForward(const Tensor &q3d, const Tensor &k3d,
                                      const Tensor &v3d, const Tensor &mask,
                                      std::int64_t heads, float scale,
                                      Tensor &context);

} // namespace bertprof

#endif // BERTPROF_OPS_FUSED_H
