/**
 * @file
 * General matrix multiply (GEMM) and batched GEMM on Tensors. These
 * are the kernels the paper's Table 2b shapes manifest as. Two
 * engines sit behind the same entry points, selected by
 * BERTPROF_GEMM_IMPL / setGemmImpl (runtime/config.h):
 *
 *  - "packed" (default): the BLIS-style packed, register-blocked
 *    microkernel in ops/gemm_microkernel.h.
 *  - "reference": the original cache-blocked triple loop — the
 *    cross-check oracle, exactly the pre-microkernel code path.
 *
 * Both are parallelized over output rows (and the batch dimension
 * for batchedGemm) via runtime/parallel_for.h, and each is bitwise
 * identical to itself at every thread count (rows partition the
 * output; each element's accumulation order is fixed). The two
 * engines associate differently, so they agree only to rounding.
 * C must not alias either input (enforced).
 */

#ifndef BERTPROF_OPS_GEMM_H
#define BERTPROF_OPS_GEMM_H

#include "ops/kernel_stats.h"
#include "tensor/tensor.h"

namespace bertprof {

/**
 * C = alpha * op(A) * op(B) + beta * C for rank-2 tensors.
 *
 * @param a Left operand; MxK, or KxM when trans_a.
 * @param b Right operand; KxN, or NxK when trans_b.
 * @param c Output, MxN; must be pre-shaped.
 * @param trans_a Whether to use A^T.
 * @param trans_b Whether to use B^T.
 * @param alpha Scale on the product.
 * @param beta Scale on the existing C (0 overwrites).
 * @return FLOP/byte stats of the invocation.
 */
KernelStats gemm(const Tensor &a, const Tensor &b, Tensor &c,
                 bool trans_a = false, bool trans_b = false,
                 float alpha = 1.0f, float beta = 0.0f);

/**
 * Batched GEMM over rank-3 tensors [batch, M, K] x [batch, K, N] ->
 * [batch, M, N], with the same transpose/scale semantics as gemm().
 * This is the kernel the attention score / attention output
 * computations invoke (B*h independent small GEMMs).
 */
KernelStats batchedGemm(const Tensor &a, const Tensor &b, Tensor &c,
                        bool trans_a = false, bool trans_b = false,
                        float alpha = 1.0f, float beta = 0.0f);

} // namespace bertprof

#endif // BERTPROF_OPS_GEMM_H
