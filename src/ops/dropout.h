/**
 * @file
 * Inverted dropout with an explicit mask tensor, matching the paper's
 * DR kernel (an element-wise multiply of the activation with a mask).
 */

#ifndef BERTPROF_OPS_DROPOUT_H
#define BERTPROF_OPS_DROPOUT_H

#include "ops/kernel_stats.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace bertprof {

/**
 * Forward: draws a Bernoulli(1-p) mask scaled by 1/(1-p) into `mask`
 * and writes out = in * mask. With p == 0 the mask is all ones
 * (useful for deterministic tests).
 */
KernelStats dropoutForward(const Tensor &in, float p, Rng &rng, Tensor &out,
                           Tensor &mask);

/** Backward: din = dout * mask (the saved forward mask). */
KernelStats dropoutBackward(const Tensor &dout, const Tensor &mask,
                            Tensor &din);

/**
 * Eval-mode dropout: an exact identity copy. Draws nothing from any
 * RNG stream and allocates no mask, so interleaving eval forwards
 * with training steps leaves the training dropout sequence bitwise
 * unchanged. Inference callers that can reuse `in` directly should;
 * this exists for sites that need a distinct output buffer.
 */
KernelStats dropoutEvalForward(const Tensor &in, Tensor &out);

} // namespace bertprof

#endif // BERTPROF_OPS_DROPOUT_H
