#include "ops/dropout.h"

#include "util/logging.h"

namespace bertprof {

KernelStats
dropoutForward(const Tensor &in, float p, Rng &rng, Tensor &out,
               Tensor &mask)
{
    BP_REQUIRE(in.shape() == out.shape() && in.shape() == mask.shape());
    BP_REQUIRE(p >= 0.0f && p < 1.0f);
    const std::int64_t n = in.numel();
    const float keep_scale = 1.0f / (1.0f - p);
    for (std::int64_t i = 0; i < n; ++i) {
        const float m = (p == 0.0f || !rng.bernoulli(p)) ? keep_scale : 0.0f;
        mask.data()[i] = m;
        out.data()[i] = in.data()[i] * m;
    }
    return elementwiseStats(n, 1, 2, 2, dtypeBytes(in.dtype()));
}

KernelStats
dropoutBackward(const Tensor &dout, const Tensor &mask, Tensor &din)
{
    BP_REQUIRE(dout.shape() == mask.shape() && dout.shape() == din.shape());
    const std::int64_t n = dout.numel();
    for (std::int64_t i = 0; i < n; ++i)
        din.data()[i] = dout.data()[i] * mask.data()[i];
    return elementwiseStats(n, 2, 1, 1, dtypeBytes(dout.dtype()));
}

} // namespace bertprof
