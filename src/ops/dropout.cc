#include "ops/dropout.h"

#include "runtime/parallel_for.h"
#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

KernelStats
dropoutForward(const Tensor &in, float p, Rng &rng, Tensor &out,
               Tensor &mask)
{
    BP_CHECK_SAME_SHAPE(in, out);
    BP_CHECK_SAME_SHAPE(in, mask);
    BP_CHECK_NO_PARTIAL_ALIAS(out, in);
    BP_CHECK_NO_ALIAS(mask, in);
    BP_CHECK_NO_ALIAS(mask, out);
    BP_REQUIRE(p >= 0.0f && p < 1.0f);
    const std::int64_t n = in.numel();
    const float keep_scale = 1.0f / (1.0f - p);
    // The mask draws consume the sequential RNG stream and must stay
    // serial (and in element order) to keep the stream deterministic;
    // only the apply pass parallelizes.
    for (std::int64_t i = 0; i < n; ++i) {
        const float m = (p == 0.0f || !rng.bernoulli(p)) ? keep_scale : 0.0f;
        mask.data()[i] = m;
    }
    parallelFor(0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        out.data()[i] = in.data()[i] * mask.data()[i];
                });
    return elementwiseStats(n, 1, 2, 2, dtypeBytes(in.dtype()));
}

KernelStats
dropoutBackward(const Tensor &dout, const Tensor &mask, Tensor &din)
{
    BP_CHECK_SAME_SHAPE(dout, mask);
    BP_CHECK_SAME_SHAPE(dout, din);
    BP_CHECK_NO_PARTIAL_ALIAS(din, dout);
    BP_CHECK_NO_ALIAS(din, mask);
    const std::int64_t n = dout.numel();
    parallelFor(0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        din.data()[i] = dout.data()[i] * mask.data()[i];
                });
    return elementwiseStats(n, 2, 1, 1, dtypeBytes(dout.dtype()));
}

KernelStats
dropoutEvalForward(const Tensor &in, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(in, out);
    BP_CHECK_NO_PARTIAL_ALIAS(out, in);
    const std::int64_t n = in.numel();
    parallelFor(0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        out.data()[i] = in.data()[i];
                });
    return elementwiseStats(n, 1, 1, 1, dtypeBytes(in.dtype()));
}

} // namespace bertprof
