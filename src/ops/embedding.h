/**
 * @file
 * Embedding lookup (gather) and its scatter-add backward. BERT's
 * input embedding layer sums token, position, and segment embeddings;
 * each is one gather here.
 */

#ifndef BERTPROF_OPS_EMBEDDING_H
#define BERTPROF_OPS_EMBEDDING_H

#include <cstdint>
#include <vector>

#include "ops/kernel_stats.h"
#include "tensor/tensor.h"

namespace bertprof {

/**
 * out[t, :] = table[ids[t], :] for each of the T ids. `table` is
 * [vocab, dim]; `out` is [T, dim].
 */
KernelStats embeddingForward(const Tensor &table,
                             const std::vector<std::int64_t> &ids,
                             Tensor &out);

/**
 * dtable[ids[t], :] += dout[t, :] (scatter-add). `dtable` must be
 * pre-zeroed or hold accumulated gradients.
 */
KernelStats embeddingBackward(const Tensor &dout,
                              const std::vector<std::int64_t> &ids,
                              Tensor &dtable);

} // namespace bertprof

#endif // BERTPROF_OPS_EMBEDDING_H
