#include "ops/reshape.h"

#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

KernelStats
transpose2d(const Tensor &in, Tensor &out)
{
    BP_CHECK_RANK(in, 2);
    BP_CHECK_RANK(out, 2);
    BP_CHECK_NO_ALIAS(out, in);
    const std::int64_t rows = in.shape().dim(0);
    const std::int64_t cols = in.shape().dim(1);
    BP_REQUIRE(out.shape().dim(0) == cols && out.shape().dim(1) == rows);
    for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t c = 0; c < cols; ++c)
            out.data()[c * rows + r] = in.data()[r * cols + c];
    return elementwiseStats(in.numel(), 1, 1, 0, dtypeBytes(in.dtype()));
}

KernelStats
splitHeads(const Tensor &in, std::int64_t batch, std::int64_t seq,
           std::int64_t heads, Tensor &out)
{
    BP_CHECK_RANK(in, 2);
    BP_CHECK_NO_ALIAS(out, in);
    const std::int64_t d_model = in.shape().dim(1);
    BP_REQUIRE(in.shape().dim(0) == batch * seq);
    BP_REQUIRE(d_model % heads == 0);
    const std::int64_t dh = d_model / heads;
    BP_REQUIRE(out.shape() == Shape({batch * heads, seq, dh}));

    for (std::int64_t b = 0; b < batch; ++b) {
        for (std::int64_t t = 0; t < seq; ++t) {
            const float *src = in.data() + (b * seq + t) * d_model;
            for (std::int64_t h = 0; h < heads; ++h) {
                float *dst =
                    out.data() + ((b * heads + h) * seq + t) * dh;
                for (std::int64_t j = 0; j < dh; ++j)
                    dst[j] = src[h * dh + j];
            }
        }
    }
    return elementwiseStats(in.numel(), 1, 1, 0, dtypeBytes(in.dtype()));
}

KernelStats
mergeHeads(const Tensor &in, std::int64_t batch, std::int64_t seq,
           std::int64_t heads, Tensor &out)
{
    BP_CHECK_RANK(in, 3);
    BP_CHECK_NO_ALIAS(out, in);
    const std::int64_t dh = in.shape().dim(2);
    const std::int64_t d_model = dh * heads;
    BP_REQUIRE(in.shape() == Shape({batch * heads, seq, dh}));
    BP_REQUIRE(out.shape() == Shape({batch * seq, d_model}));

    for (std::int64_t b = 0; b < batch; ++b) {
        for (std::int64_t t = 0; t < seq; ++t) {
            float *dst = out.data() + (b * seq + t) * d_model;
            for (std::int64_t h = 0; h < heads; ++h) {
                const float *src =
                    in.data() + ((b * heads + h) * seq + t) * dh;
                for (std::int64_t j = 0; j < dh; ++j)
                    dst[h * dh + j] = src[j];
            }
        }
    }
    return elementwiseStats(in.numel(), 1, 1, 0, dtypeBytes(in.dtype()));
}

} // namespace bertprof
