#include "ops/softmax.h"

#include <cmath>

#include "runtime/parallel_for.h"
#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

KernelStats
softmaxForward(const Tensor &in, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(in, out);
    BP_CHECK_NO_PARTIAL_ALIAS(out, in);
    BP_REQUIRE(in.shape().rank() >= 1);
    const std::int64_t cols = in.shape().dim(-1);
    const std::int64_t rows = in.numel() / cols;

    // Each softmax row (max, exp, sum, scale) is self-contained, so
    // row-partitioned execution is bitwise identical to the serial
    // loop for any thread count.
    parallelFor(0, rows, rowGrain(cols), [&](std::int64_t r_lo,
                                             std::int64_t r_hi) {
        for (std::int64_t r = r_lo; r < r_hi; ++r) {
            const float *x = in.data() + r * cols;
            float *y = out.data() + r * cols;
            float mx = x[0];
            for (std::int64_t c = 1; c < cols; ++c)
                mx = std::max(mx, x[c]);
            double denom = 0.0;
            for (std::int64_t c = 0; c < cols; ++c) {
                y[c] = std::exp(x[c] - mx);
                denom += y[c];
            }
            const float inv = static_cast<float>(1.0 / denom);
            for (std::int64_t c = 0; c < cols; ++c)
                y[c] *= inv;
        }
    });
    // max + exp + sum + div: ~4 passes of arithmetic per element.
    return elementwiseStats(in.numel(), 1, 1, 4, dtypeBytes(in.dtype()));
}

KernelStats
softmaxBackward(const Tensor &out, const Tensor &dout, Tensor &din)
{
    BP_CHECK_SAME_SHAPE(out, dout);
    BP_CHECK_SAME_SHAPE(out, din);
    BP_CHECK_NO_PARTIAL_ALIAS(din, out);
    BP_CHECK_NO_PARTIAL_ALIAS(din, dout);
    const std::int64_t cols = out.shape().dim(-1);
    const std::int64_t rows = out.numel() / cols;

    parallelFor(0, rows, rowGrain(cols), [&](std::int64_t r_lo,
                                             std::int64_t r_hi) {
        for (std::int64_t r = r_lo; r < r_hi; ++r) {
            const float *y = out.data() + r * cols;
            const float *dy = dout.data() + r * cols;
            float *dx = din.data() + r * cols;
            double dot = 0.0;
            for (std::int64_t c = 0; c < cols; ++c)
                dot += static_cast<double>(y[c]) * dy[c];
            for (std::int64_t c = 0; c < cols; ++c)
                dx[c] = y[c] * (dy[c] - static_cast<float>(dot));
        }
    });
    return elementwiseStats(out.numel(), 2, 1, 4, dtypeBytes(out.dtype()));
}

} // namespace bertprof
