#include "ops/softmax.h"

#include <cmath>

#include "util/logging.h"

namespace bertprof {

KernelStats
softmaxForward(const Tensor &in, Tensor &out)
{
    BP_REQUIRE(in.shape() == out.shape());
    BP_REQUIRE(in.shape().rank() >= 1);
    const std::int64_t cols = in.shape().dim(-1);
    const std::int64_t rows = in.numel() / cols;

    for (std::int64_t r = 0; r < rows; ++r) {
        const float *x = in.data() + r * cols;
        float *y = out.data() + r * cols;
        float mx = x[0];
        for (std::int64_t c = 1; c < cols; ++c)
            mx = std::max(mx, x[c]);
        double denom = 0.0;
        for (std::int64_t c = 0; c < cols; ++c) {
            y[c] = std::exp(x[c] - mx);
            denom += y[c];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (std::int64_t c = 0; c < cols; ++c)
            y[c] *= inv;
    }
    // max + exp + sum + div: ~4 passes of arithmetic per element.
    return elementwiseStats(in.numel(), 1, 1, 4, dtypeBytes(in.dtype()));
}

KernelStats
softmaxBackward(const Tensor &out, const Tensor &dout, Tensor &din)
{
    BP_REQUIRE(out.shape() == dout.shape() && out.shape() == din.shape());
    const std::int64_t cols = out.shape().dim(-1);
    const std::int64_t rows = out.numel() / cols;

    for (std::int64_t r = 0; r < rows; ++r) {
        const float *y = out.data() + r * cols;
        const float *dy = dout.data() + r * cols;
        float *dx = din.data() + r * cols;
        double dot = 0.0;
        for (std::int64_t c = 0; c < cols; ++c)
            dot += static_cast<double>(y[c]) * dy[c];
        for (std::int64_t c = 0; c < cols; ++c)
            dx[c] = y[c] * (dy[c] - static_cast<float>(dot));
    }
    return elementwiseStats(out.numel(), 2, 1, 4, dtypeBytes(out.dtype()));
}

} // namespace bertprof
