#include "ops/gemm_microkernel.h"

#include <algorithm>
#include <vector>

#include "ops/pack.h"

namespace bertprof {

namespace {

constexpr std::int64_t MR = kGemmMR;
constexpr std::int64_t NR = kGemmNR;

static_assert(kGemmMC % kGemmMR == 0, "MC must be a multiple of MR");
static_assert(kGemmNC % kGemmNR == 0, "NC must be a multiple of NR");

/**
 * Rank-kc update of one MR x NR register tile from packed panels:
 * acc[r][j] = sum_p ap[p*MR + r] * bp[p*NR + j]. Fixed trip counts
 * and unit-stride loads let the compiler hold `acc` in vector
 * registers and fuse the multiply-add.
 */
inline void
microkernelAccumulate(const float *ap, const float *bp, std::int64_t kc,
                      float *acc)
{
    for (std::int64_t p = 0; p < kc; ++p) {
        const float *arow = ap + p * MR;
        const float *brow = bp + p * NR;
        for (std::int64_t r = 0; r < MR; ++r) {
            const float av = arow[r];
            float *accrow = acc + r * NR;
            for (std::int64_t j = 0; j < NR; ++j)
                accrow[j] += av * brow[j];
        }
    }
}

/**
 * Fold one tile's rank-kc accumulation into C[0..mr, 0..nr] (leading
 * dimension ldc). The first KC block applies alpha/beta (beta == 0
 * overwrites, matching the reference kernel's NaN-safe semantics);
 * later blocks accumulate alpha * acc on top.
 */
inline void
microkernelStore(const float *acc, float *c, std::int64_t ldc,
                 std::int64_t mr, std::int64_t nr, float alpha, float beta,
                 bool first_block)
{
    if (mr == MR && nr == NR && !first_block) {
        // Hot full-tile path: fixed trip counts vectorize cleanly.
        for (std::int64_t r = 0; r < MR; ++r) {
            float *crow = c + r * ldc;
            const float *accrow = acc + r * NR;
            for (std::int64_t j = 0; j < NR; ++j)
                crow[j] += alpha * accrow[j];
        }
        return;
    }
    for (std::int64_t r = 0; r < mr; ++r) {
        float *crow = c + r * ldc;
        const float *accrow = acc + r * NR;
        for (std::int64_t j = 0; j < nr; ++j) {
            const float scaled = alpha * accrow[j];
            if (!first_block)
                crow[j] += scaled;
            else if (beta == 0.0f)
                crow[j] = scaled;
            else
                crow[j] = scaled + beta * crow[j];
        }
    }
}

} // namespace

void
gemmPackedRows(const float *a, const float *b, float *c, std::int64_t m,
               std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
               float alpha, float beta, std::int64_t row_begin,
               std::int64_t row_end)
{
    // Strides describing op(A)(i, p) and op(B)(p, j) over the
    // row-major storage; packing absorbs them into contiguous panels.
    const std::int64_t a_rs = trans_a ? 1 : k;
    const std::int64_t a_cs = trans_a ? m : 1;
    const std::int64_t b_rs = trans_b ? 1 : n;
    const std::int64_t b_cs = trans_b ? k : 1;

    // Reusable per-thread packing buffers: sized once to the fixed
    // block extents, so steady-state calls allocate nothing.
    thread_local std::vector<float> a_packed(
        static_cast<std::size_t>(kGemmMC * kGemmKC));
    thread_local std::vector<float> b_packed(
        static_cast<std::size_t>(kGemmNC * kGemmKC));

    // Degenerate k == 0: no product terms, but beta must still apply.
    if (k == 0) {
        for (std::int64_t i = row_begin * n; i < row_end * n; ++i)
            c[i] = beta == 0.0f ? 0.0f : c[i] * beta;
        return;
    }

    for (std::int64_t jc = 0; jc < n; jc += kGemmNC) {
        const std::int64_t nc = std::min(kGemmNC, n - jc);
        for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
            const std::int64_t kc = std::min(kGemmKC, k - pc);
            const bool first_block = pc == 0;
            packB(b + pc * b_rs + jc * b_cs, b_rs, b_cs, kc, nc, NR,
                  b_packed.data());
            for (std::int64_t ic = row_begin; ic < row_end; ic += kGemmMC) {
                const std::int64_t mc = std::min(kGemmMC, row_end - ic);
                packA(a + ic * a_rs + pc * a_cs, a_rs, a_cs, mc, kc, MR,
                      a_packed.data());
                for (std::int64_t ir = 0; ir < mc; ir += MR) {
                    const std::int64_t mr = std::min(MR, mc - ir);
                    const float *ap = a_packed.data() + (ir / MR) * MR * kc;
                    float *crow = c + (ic + ir) * n + jc;
                    for (std::int64_t jr = 0; jr < nc; jr += NR) {
                        const std::int64_t nr = std::min(NR, nc - jr);
                        const float *bp =
                            b_packed.data() + (jr / NR) * NR * kc;
                        alignas(64) float acc[MR * NR] = {};
                        microkernelAccumulate(ap, bp, kc, acc);
                        microkernelStore(acc, crow + jr, n, mr, nr, alpha,
                                         beta, first_block);
                    }
                }
            }
        }
    }
}

} // namespace bertprof
