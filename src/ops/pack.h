/**
 * @file
 * Operand packing for the blocked GEMM engine (ops/gemm_microkernel.h).
 *
 * The packed layout is the BLIS one: an operand block is split into
 * fixed-width micro-panels stored contiguously so the microkernel's
 * inner loop reads both operands with unit stride, regardless of how
 * the source matrix was stored or transposed. Logical transposition
 * is absorbed here — callers describe op(A)/op(B) with a (row, col)
 * stride pair and packing walks the source accordingly, so all four
 * trans_a/trans_b combinations feed the exact same microkernel.
 *
 * Ragged edges are zero-padded to the full panel width. The pad
 * contributes exact zeros to the accumulators, so the microkernel
 * never needs a remainder loop and every valid output element sees
 * the same arithmetic it would in a full tile.
 */

#ifndef BERTPROF_OPS_PACK_H
#define BERTPROF_OPS_PACK_H

#include <cstdint>

namespace bertprof {

/**
 * Pack an mc x kc block of op(A) into mr-row micro-panels.
 *
 * Element op(A)(i, p) of the block is a[i * row_stride + p * col_stride].
 * Output layout: ceil(mc/mr) panels, each kc runs of mr contiguous
 * values (rows i0..i0+mr of column p); rows past mc are zero-filled.
 * dst must hold ceil(mc/mr) * mr * kc floats.
 */
void packA(const float *a, std::int64_t row_stride, std::int64_t col_stride,
           std::int64_t mc, std::int64_t kc, std::int64_t mr, float *dst);

/**
 * Pack a kc x nc block of op(B) into nr-column micro-panels.
 *
 * Element op(B)(p, j) of the block is b[p * row_stride + j * col_stride].
 * Output layout: ceil(nc/nr) panels, each kc runs of nr contiguous
 * values (columns j0..j0+nr of row p); columns past nc are
 * zero-filled. dst must hold ceil(nc/nr) * nr * kc floats.
 */
void packB(const float *b, std::int64_t row_stride, std::int64_t col_stride,
           std::int64_t kc, std::int64_t nc, std::int64_t nr, float *dst);

} // namespace bertprof

#endif // BERTPROF_OPS_PACK_H
