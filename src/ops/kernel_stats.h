/**
 * @file
 * KernelStats: the FLOP and byte accounting every CPU kernel reports.
 * The same quantities drive the analytical device model (src/perf), so
 * a single definition keeps the substrate and the model consistent.
 */

#ifndef BERTPROF_OPS_KERNEL_STATS_H
#define BERTPROF_OPS_KERNEL_STATS_H

#include <cstdint>

namespace bertprof {

/** Work and traffic performed by one kernel invocation. */
struct KernelStats {
    /** Floating-point operations (multiply-add counts as 2). */
    std::int64_t flops = 0;
    /** Bytes read from memory (at storage precision). */
    std::int64_t bytesRead = 0;
    /** Bytes written to memory (at storage precision). */
    std::int64_t bytesWritten = 0;

    /** Total bytes moved. */
    std::int64_t bytesTotal() const { return bytesRead + bytesWritten; }

    /** Arithmetic intensity in FLOP per byte (0 if no traffic). */
    double
    opsPerByte() const
    {
        auto b = bytesTotal();
        return b > 0 ? static_cast<double>(flops) / static_cast<double>(b)
                     : 0.0;
    }

    KernelStats &
    operator+=(const KernelStats &other)
    {
        flops += other.flops;
        bytesRead += other.bytesRead;
        bytesWritten += other.bytesWritten;
        return *this;
    }
};

inline KernelStats
operator+(KernelStats a, const KernelStats &b)
{
    a += b;
    return a;
}

/**
 * Stats of an MxNxK GEMM (C[MxN] = A[MxK] * B[KxN]), batched
 * `batch` times, with `elem_bytes`-wide elements. Assumes each
 * operand is read once and C written once (ideal cache behaviour,
 * matching how the paper computes arithmetic intensity).
 */
inline KernelStats
gemmStats(std::int64_t m, std::int64_t n, std::int64_t k,
          std::int64_t batch = 1, std::int64_t elem_bytes = 4)
{
    KernelStats s;
    s.flops = 2 * m * n * k * batch;
    s.bytesRead = (m * k + k * n) * batch * elem_bytes;
    s.bytesWritten = m * n * batch * elem_bytes;
    return s;
}

/**
 * Stats of an element-wise kernel over `numel` elements reading
 * `reads` input tensors and writing `writes` output tensors, with
 * `flops_per_elem` operations per element.
 */
inline KernelStats
elementwiseStats(std::int64_t numel, std::int64_t reads = 1,
                 std::int64_t writes = 1, std::int64_t flops_per_elem = 1,
                 std::int64_t elem_bytes = 4)
{
    KernelStats s;
    s.flops = numel * flops_per_elem;
    s.bytesRead = numel * reads * elem_bytes;
    s.bytesWritten = numel * writes * elem_bytes;
    return s;
}

} // namespace bertprof

#endif // BERTPROF_OPS_KERNEL_STATS_H
