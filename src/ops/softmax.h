/**
 * @file
 * Numerically stable softmax over the last dimension, with backward.
 * Invoked on the attention score matrices (the paper's SM kernel in
 * the Scale+Mask+DR+SM group).
 */

#ifndef BERTPROF_OPS_SOFTMAX_H
#define BERTPROF_OPS_SOFTMAX_H

#include "ops/kernel_stats.h"
#include "tensor/tensor.h"

namespace bertprof {

/**
 * Row-wise softmax over the last dimension of `in` (any rank >= 1;
 * leading dims are flattened into rows).
 */
KernelStats softmaxForward(const Tensor &in, Tensor &out);

/**
 * Softmax backward using the saved forward output:
 * din = out * (dout - sum(dout * out, lastdim)).
 */
KernelStats softmaxBackward(const Tensor &out, const Tensor &dout,
                            Tensor &din);

} // namespace bertprof

#endif // BERTPROF_OPS_SOFTMAX_H
