#include "ops/cross_entropy.h"

#include <cmath>

#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

CrossEntropyResult
softmaxCrossEntropy(const Tensor &logits,
                    const std::vector<std::int64_t> &labels, Tensor &dlogits)
{
    BP_CHECK_RANK(logits, 2);
    BP_CHECK_SAME_SHAPE(logits, dlogits);
    BP_CHECK_NO_ALIAS(dlogits, logits);
    const std::int64_t rows = logits.shape().dim(0);
    const std::int64_t cols = logits.shape().dim(1);
    BP_REQUIRE(static_cast<std::int64_t>(labels.size()) == rows);

    CrossEntropyResult result;
    for (std::int64_t r = 0; r < rows; ++r)
        if (labels[static_cast<std::size_t>(r)] != kIgnoreIndex)
            ++result.count;

    dlogits.fill(0.0f);
    if (result.count == 0)
        return result;

    const double inv_count = 1.0 / static_cast<double>(result.count);
    double total = 0.0;
    for (std::int64_t r = 0; r < rows; ++r) {
        const std::int64_t label = labels[static_cast<std::size_t>(r)];
        if (label == kIgnoreIndex)
            continue;
        BP_REQUIRE(label >= 0 && label < cols);
        const float *x = logits.data() + r * cols;
        float *dx = dlogits.data() + r * cols;

        float mx = x[0];
        for (std::int64_t c = 1; c < cols; ++c)
            mx = std::max(mx, x[c]);
        double denom = 0.0;
        for (std::int64_t c = 0; c < cols; ++c)
            denom += std::exp(static_cast<double>(x[c]) - mx);
        const double log_denom = std::log(denom);
        total += log_denom - (static_cast<double>(x[label]) - mx);
        for (std::int64_t c = 0; c < cols; ++c) {
            const double p =
                std::exp(static_cast<double>(x[c]) - mx) / denom;
            dx[c] = static_cast<float>(p * inv_count);
        }
        dx[label] -= static_cast<float>(inv_count);
    }
    result.loss = total * inv_count;
    result.stats = elementwiseStats(result.count * cols, 1, 1, 6,
                                    dtypeBytes(logits.dtype()));
    return result;
}

} // namespace bertprof
