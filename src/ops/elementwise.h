/**
 * @file
 * Element-wise kernels: the memory-bound operations the paper shows
 * make up a large share of BERT's runtime (scale, add, multiply, bias,
 * residual connections). Each returns KernelStats so profiles and the
 * analytical model agree on traffic.
 */

#ifndef BERTPROF_OPS_ELEMENTWISE_H
#define BERTPROF_OPS_ELEMENTWISE_H

#include "ops/kernel_stats.h"
#include "tensor/tensor.h"

namespace bertprof {

/** out = a + b (same shape). */
KernelStats addForward(const Tensor &a, const Tensor &b, Tensor &out);

/** out = a * b (same shape; Hadamard product). */
KernelStats mulForward(const Tensor &a, const Tensor &b, Tensor &out);

/** out = a * scalar. */
KernelStats scaleForward(const Tensor &a, float scalar, Tensor &out);

/** a += b in place (gradient accumulation / residual backward). */
KernelStats accumulate(Tensor &a, const Tensor &b);

/**
 * out[r, :] = in[r, :] + bias for a [rows, cols] input and a [cols]
 * bias (broadcast add after every GEMM).
 */
KernelStats biasForward(const Tensor &in, const Tensor &bias, Tensor &out);

/**
 * Bias gradient: dbias[c] = sum_r dout[r, c] — the column reduction
 * paired with biasForward.
 */
KernelStats biasBackward(const Tensor &dout, Tensor &dbias);

/**
 * out = a + mask where mask is [rows_mask, cols] broadcast over the
 * leading dims of `a` ([groups, rows_mask, cols] flattened). Used for
 * the attention mask addition.
 */
KernelStats maskAddForward(const Tensor &a, const Tensor &mask, Tensor &out);

/**
 * Per-sequence attention mask: a is [B*heads, n, n] score matrices,
 * mask is [B, n, n]; group g uses mask row g / heads. This is how
 * BERT applies padding masks to variable-length batches.
 */
KernelStats batchMaskAddForward(const Tensor &a, const Tensor &mask,
                                std::int64_t heads, Tensor &out);

} // namespace bertprof

#endif // BERTPROF_OPS_ELEMENTWISE_H
