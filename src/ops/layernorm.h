/**
 * @file
 * Layer normalization (Ba et al.) over the last dimension, with the
 * full backward pass (input, gamma, beta gradients). This is the LN
 * kernel of the paper's DR+RC+LN group: a reduction (mean/variance)
 * followed by a few element-wise ops, hence low arithmetic intensity.
 */

#ifndef BERTPROF_OPS_LAYERNORM_H
#define BERTPROF_OPS_LAYERNORM_H

#include "ops/kernel_stats.h"
#include "tensor/tensor.h"

namespace bertprof {

/**
 * Forward: out = (in - mean) / sqrt(var + eps) * gamma + beta over
 * the last dim. Saves per-row mean and reciprocal stddev into the
 * provided [rows] tensors for the backward pass.
 */
KernelStats layerNormForward(const Tensor &in, const Tensor &gamma,
                             const Tensor &beta, Tensor &out, Tensor &mean,
                             Tensor &rstd, float eps = 1e-5f);

/**
 * Backward: given saved mean/rstd and the forward input, computes
 * din, dgamma, dbeta.
 */
KernelStats layerNormBackward(const Tensor &in, const Tensor &gamma,
                              const Tensor &mean, const Tensor &rstd,
                              const Tensor &dout, Tensor &din,
                              Tensor &dgamma, Tensor &dbeta);

} // namespace bertprof

#endif // BERTPROF_OPS_LAYERNORM_H
