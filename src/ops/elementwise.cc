#include "ops/elementwise.h"

#include "runtime/parallel_for.h"
#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

KernelStats
addForward(const Tensor &a, const Tensor &b, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(a, b);
    BP_CHECK_SAME_SHAPE(a, out);
    BP_CHECK_NO_PARTIAL_ALIAS(out, a);
    BP_CHECK_NO_PARTIAL_ALIAS(out, b);
    const std::int64_t n = a.numel();
    parallelFor(0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        out.data()[i] = a.data()[i] + b.data()[i];
                });
    return elementwiseStats(n, 2, 1, 1, dtypeBytes(a.dtype()));
}

KernelStats
mulForward(const Tensor &a, const Tensor &b, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(a, b);
    BP_CHECK_SAME_SHAPE(a, out);
    BP_CHECK_NO_PARTIAL_ALIAS(out, a);
    BP_CHECK_NO_PARTIAL_ALIAS(out, b);
    const std::int64_t n = a.numel();
    parallelFor(0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        out.data()[i] = a.data()[i] * b.data()[i];
                });
    return elementwiseStats(n, 2, 1, 1, dtypeBytes(a.dtype()));
}

KernelStats
scaleForward(const Tensor &a, float scalar, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(a, out);
    BP_CHECK_NO_PARTIAL_ALIAS(out, a);
    const std::int64_t n = a.numel();
    parallelFor(0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        out.data()[i] = a.data()[i] * scalar;
                });
    return elementwiseStats(n, 1, 1, 1, dtypeBytes(a.dtype()));
}

KernelStats
accumulate(Tensor &a, const Tensor &b)
{
    BP_CHECK_SAME_SHAPE(a, b);
    BP_CHECK_NO_PARTIAL_ALIAS(a, b);
    const std::int64_t n = a.numel();
    parallelFor(0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        a.data()[i] += b.data()[i];
                });
    return elementwiseStats(n, 2, 1, 1, dtypeBytes(a.dtype()));
}

KernelStats
biasForward(const Tensor &in, const Tensor &bias, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(in, out);
    BP_CHECK_RANK(bias, 1);
    BP_CHECK_NO_PARTIAL_ALIAS(out, in);
    BP_CHECK_NO_ALIAS(out, bias);
    const std::int64_t cols = bias.shape().dim(0);
    BP_REQUIRE(in.numel() % cols == 0);
    const std::int64_t rows = in.numel() / cols;
    parallelFor(0, rows, rowGrain(cols),
                [&](std::int64_t r_lo, std::int64_t r_hi) {
                    for (std::int64_t r = r_lo; r < r_hi; ++r)
                        for (std::int64_t c = 0; c < cols; ++c)
                            out.data()[r * cols + c] =
                                in.data()[r * cols + c] + bias.data()[c];
                });
    KernelStats s = elementwiseStats(in.numel(), 1, 1, 1,
                                     dtypeBytes(in.dtype()));
    s.bytesRead += bias.storageBytes();
    return s;
}

KernelStats
biasBackward(const Tensor &dout, Tensor &dbias)
{
    BP_CHECK_RANK(dbias, 1);
    BP_CHECK_NO_ALIAS(dbias, dout);
    const std::int64_t cols = dbias.shape().dim(0);
    BP_REQUIRE(dout.numel() % cols == 0);
    const std::int64_t rows = dout.numel() / cols;
    dbias.fill(0.0f);
    // Parallel over columns, serial over the row (reduction) axis:
    // each dbias[c] accumulates rows in the same ascending order as
    // the serial loop, so the result is bitwise identical for any
    // thread count.
    parallelFor(0, cols, 64,
                [&](std::int64_t c_lo, std::int64_t c_hi) {
                    for (std::int64_t c = c_lo; c < c_hi; ++c)
                        for (std::int64_t r = 0; r < rows; ++r)
                            dbias.data()[c] += dout.data()[r * cols + c];
                });
    KernelStats s = elementwiseStats(dout.numel(), 1, 0, 1,
                                     dtypeBytes(dout.dtype()));
    s.bytesWritten += dbias.storageBytes();
    return s;
}

KernelStats
batchMaskAddForward(const Tensor &a, const Tensor &mask,
                    std::int64_t heads, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(a, out);
    BP_CHECK_RANK(a, 3);
    BP_CHECK_RANK(mask, 3);
    BP_CHECK_NO_PARTIAL_ALIAS(out, a);
    BP_CHECK_NO_ALIAS(out, mask);
    BP_REQUIRE(heads > 0);
    const std::int64_t groups = a.shape().dim(0);
    BP_REQUIRE(groups % heads == 0);
    BP_REQUIRE(mask.shape().dim(0) == groups / heads);
    BP_REQUIRE(mask.shape().dim(1) == a.shape().dim(1));
    BP_REQUIRE(mask.shape().dim(2) == a.shape().dim(2));
    const std::int64_t per_group = a.shape().dim(1) * a.shape().dim(2);

    parallelFor(0, groups, rowGrain(per_group),
                [&](std::int64_t g_lo, std::int64_t g_hi) {
                    for (std::int64_t g = g_lo; g < g_hi; ++g) {
                        const float *m =
                            mask.data() + (g / heads) * per_group;
                        const float *src = a.data() + g * per_group;
                        float *dst = out.data() + g * per_group;
                        for (std::int64_t i = 0; i < per_group; ++i)
                            dst[i] = src[i] + m[i];
                    }
                });
    KernelStats s = elementwiseStats(a.numel(), 1, 1, 1,
                                     dtypeBytes(a.dtype()));
    s.bytesRead += mask.storageBytes();
    return s;
}

KernelStats
maskAddForward(const Tensor &a, const Tensor &mask, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(a, out);
    BP_CHECK_NO_PARTIAL_ALIAS(out, a);
    BP_CHECK_NO_ALIAS(out, mask);
    const std::int64_t mask_n = mask.numel();
    BP_REQUIRE(mask_n > 0 && a.numel() % mask_n == 0);
    const std::int64_t groups = a.numel() / mask_n;
    parallelFor(0, groups, rowGrain(mask_n),
                [&](std::int64_t g_lo, std::int64_t g_hi) {
                    for (std::int64_t g = g_lo; g < g_hi; ++g)
                        for (std::int64_t i = 0; i < mask_n; ++i)
                            out.data()[g * mask_n + i] =
                                a.data()[g * mask_n + i] + mask.data()[i];
                });
    KernelStats s = elementwiseStats(a.numel(), 1, 1, 1,
                                     dtypeBytes(a.dtype()));
    s.bytesRead += mask.storageBytes();
    return s;
}

} // namespace bertprof
