#include "ops/activation.h"

#include <cmath>

#include "runtime/parallel_for.h"
#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

namespace {

constexpr double kInvSqrt2 = 0.7071067811865475244;
constexpr double kInvSqrt2Pi = 0.3989422804014326779;

} // namespace

KernelStats
geluForward(const Tensor &in, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(in, out);
    BP_CHECK_NO_PARTIAL_ALIAS(out, in);
    const std::int64_t n = in.numel();
    parallelFor(0, n, kElementwiseGrain, [&](std::int64_t lo,
                                             std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
            const double x = in.data()[i];
            out.data()[i] = static_cast<float>(
                x * 0.5 * (1.0 + std::erf(x * kInvSqrt2)));
        }
    });
    // The paper decomposes unfused GeLU into ~5 EW ops (mul, add,
    // div, erf, mul); we count the fused arithmetic here.
    return elementwiseStats(n, 1, 1, 5, dtypeBytes(in.dtype()));
}

KernelStats
geluBackward(const Tensor &in, const Tensor &dout, Tensor &din)
{
    BP_CHECK_SAME_SHAPE(in, dout);
    BP_CHECK_SAME_SHAPE(in, din);
    BP_CHECK_NO_PARTIAL_ALIAS(din, in);
    BP_CHECK_NO_PARTIAL_ALIAS(din, dout);
    const std::int64_t n = in.numel();
    parallelFor(0, n, kElementwiseGrain, [&](std::int64_t lo,
                                             std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
            const double x = in.data()[i];
            const double cdf = 0.5 * (1.0 + std::erf(x * kInvSqrt2));
            const double pdf = kInvSqrt2Pi * std::exp(-0.5 * x * x);
            din.data()[i] =
                static_cast<float>(dout.data()[i] * (cdf + x * pdf));
        }
    });
    return elementwiseStats(n, 2, 1, 8, dtypeBytes(in.dtype()));
}

KernelStats
reluForward(const Tensor &in, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(in, out);
    BP_CHECK_NO_PARTIAL_ALIAS(out, in);
    const std::int64_t n = in.numel();
    parallelFor(0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        out.data()[i] =
                            in.data()[i] > 0.0f ? in.data()[i] : 0.0f;
                });
    return elementwiseStats(n, 1, 1, 1, dtypeBytes(in.dtype()));
}

KernelStats
reluBackward(const Tensor &in, const Tensor &dout, Tensor &din)
{
    BP_CHECK_SAME_SHAPE(in, dout);
    BP_CHECK_SAME_SHAPE(in, din);
    BP_CHECK_NO_PARTIAL_ALIAS(din, in);
    BP_CHECK_NO_PARTIAL_ALIAS(din, dout);
    const std::int64_t n = in.numel();
    parallelFor(0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        din.data()[i] =
                            in.data()[i] > 0.0f ? dout.data()[i] : 0.0f;
                });
    return elementwiseStats(n, 2, 1, 1, dtypeBytes(in.dtype()));
}

KernelStats
tanhForward(const Tensor &in, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(in, out);
    BP_CHECK_NO_PARTIAL_ALIAS(out, in);
    const std::int64_t n = in.numel();
    parallelFor(0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        out.data()[i] = std::tanh(in.data()[i]);
                });
    return elementwiseStats(n, 1, 1, 4, dtypeBytes(in.dtype()));
}

KernelStats
tanhBackward(const Tensor &out, const Tensor &dout, Tensor &din)
{
    BP_CHECK_SAME_SHAPE(out, dout);
    BP_CHECK_SAME_SHAPE(out, din);
    BP_CHECK_NO_PARTIAL_ALIAS(din, out);
    BP_CHECK_NO_PARTIAL_ALIAS(din, dout);
    const std::int64_t n = out.numel();
    parallelFor(0, n, kElementwiseGrain,
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i) {
                        const float y = out.data()[i];
                        din.data()[i] = dout.data()[i] * (1.0f - y * y);
                    }
                });
    return elementwiseStats(n, 2, 1, 3, dtypeBytes(out.dtype()));
}

} // namespace bertprof
