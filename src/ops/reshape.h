/**
 * @file
 * Layout kernels: 2-D transpose and the split-heads / merge-heads
 * permutations that feed the attention batched GEMMs. These move data
 * without arithmetic — pure bandwidth, like the paper's layout ops.
 */

#ifndef BERTPROF_OPS_RESHAPE_H
#define BERTPROF_OPS_RESHAPE_H

#include "ops/kernel_stats.h"
#include "tensor/tensor.h"

namespace bertprof {

/** out = in^T for rank-2 tensors. */
KernelStats transpose2d(const Tensor &in, Tensor &out);

/**
 * Rearrange a [B*n, d_model] projection output into per-head batches
 * [B*h, n, d_model/h] so attention runs as a batched GEMM over B*h
 * groups (the manifestation Fig. 5 of the paper illustrates).
 */
KernelStats splitHeads(const Tensor &in, std::int64_t batch,
                       std::int64_t seq, std::int64_t heads, Tensor &out);

/** Inverse of splitHeads: [B*h, n, d/h] -> [B*n, d_model]. */
KernelStats mergeHeads(const Tensor &in, std::int64_t batch,
                       std::int64_t seq, std::int64_t heads, Tensor &out);

} // namespace bertprof

#endif // BERTPROF_OPS_RESHAPE_H
