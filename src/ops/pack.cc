#include "ops/pack.h"

#include <algorithm>

namespace bertprof {

void
packA(const float *a, std::int64_t row_stride, std::int64_t col_stride,
      std::int64_t mc, std::int64_t kc, std::int64_t mr, float *dst)
{
    for (std::int64_t i0 = 0; i0 < mc; i0 += mr) {
        const std::int64_t rows = std::min(mr, mc - i0);
        const float *panel = a + i0 * row_stride;
        for (std::int64_t p = 0; p < kc; ++p) {
            const float *col = panel + p * col_stride;
            std::int64_t r = 0;
            for (; r < rows; ++r)
                dst[r] = col[r * row_stride];
            for (; r < mr; ++r)
                dst[r] = 0.0f;
            dst += mr;
        }
    }
}

void
packB(const float *b, std::int64_t row_stride, std::int64_t col_stride,
      std::int64_t kc, std::int64_t nc, std::int64_t nr, float *dst)
{
    for (std::int64_t j0 = 0; j0 < nc; j0 += nr) {
        const std::int64_t cols = std::min(nr, nc - j0);
        const float *panel = b + j0 * col_stride;
        if (cols == nr && col_stride == 1) {
            // Full panel of a row-major (non-transposed) B: each run
            // is a straight contiguous copy.
            for (std::int64_t p = 0; p < kc; ++p) {
                const float *row = panel + p * row_stride;
                for (std::int64_t j = 0; j < nr; ++j)
                    dst[j] = row[j];
                dst += nr;
            }
        } else {
            for (std::int64_t p = 0; p < kc; ++p) {
                const float *row = panel + p * row_stride;
                std::int64_t j = 0;
                for (; j < cols; ++j)
                    dst[j] = row[j * col_stride];
                for (; j < nr; ++j)
                    dst[j] = 0.0f;
                dst += nr;
            }
        }
    }
}

} // namespace bertprof
