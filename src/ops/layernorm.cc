#include "ops/layernorm.h"

#include <cmath>

#include "runtime/parallel_for.h"
#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

KernelStats
layerNormForward(const Tensor &in, const Tensor &gamma, const Tensor &beta,
                 Tensor &out, Tensor &mean, Tensor &rstd, float eps)
{
    BP_CHECK_SAME_SHAPE(in, out);
    BP_CHECK_RANK(gamma, 1);
    BP_CHECK_SAME_SHAPE(beta, gamma);
    BP_CHECK_NO_PARTIAL_ALIAS(out, in);
    BP_CHECK_NO_ALIAS(out, gamma);
    BP_CHECK_NO_ALIAS(out, beta);
    BP_CHECK_NO_ALIAS(mean, in);
    BP_CHECK_NO_ALIAS(mean, out);
    BP_CHECK_NO_ALIAS(rstd, in);
    BP_CHECK_NO_ALIAS(rstd, out);
    const std::int64_t cols = gamma.shape().dim(0);
    BP_REQUIRE(in.shape().dim(-1) == cols);
    const std::int64_t rows = in.numel() / cols;
    BP_REQUIRE(mean.numel() == rows && rstd.numel() == rows);

    // Rows are fully independent: statistics and normalization for a
    // row touch only that row, so row-partitioned execution is
    // bitwise identical to the serial loop.
    parallelFor(0, rows, rowGrain(cols), [&](std::int64_t r_lo,
                                             std::int64_t r_hi) {
        for (std::int64_t r = r_lo; r < r_hi; ++r) {
            const float *x = in.data() + r * cols;
            float *y = out.data() + r * cols;
            double mu = 0.0;
            for (std::int64_t c = 0; c < cols; ++c)
                mu += x[c];
            mu /= static_cast<double>(cols);
            double var = 0.0;
            for (std::int64_t c = 0; c < cols; ++c) {
                const double d = x[c] - mu;
                var += d * d;
            }
            var /= static_cast<double>(cols);
            const double rs = 1.0 / std::sqrt(var + eps);
            mean.data()[r] = static_cast<float>(mu);
            rstd.data()[r] = static_cast<float>(rs);
            for (std::int64_t c = 0; c < cols; ++c) {
                y[c] = static_cast<float>((x[c] - mu) * rs) *
                           gamma.data()[c] +
                       beta.data()[c];
            }
        }
    });
    KernelStats s = elementwiseStats(in.numel(), 1, 1, 6,
                                     dtypeBytes(in.dtype()));
    s.bytesRead += gamma.storageBytes() + beta.storageBytes();
    s.bytesWritten += mean.storageBytes() + rstd.storageBytes();
    return s;
}

KernelStats
layerNormBackward(const Tensor &in, const Tensor &gamma, const Tensor &mean,
                  const Tensor &rstd, const Tensor &dout, Tensor &din,
                  Tensor &dgamma, Tensor &dbeta)
{
    BP_CHECK_RANK(gamma, 1);
    const std::int64_t cols = gamma.shape().dim(0);
    const std::int64_t rows = in.numel() / cols;
    BP_CHECK_SAME_SHAPE(in, dout);
    BP_CHECK_SAME_SHAPE(in, din);
    BP_CHECK_SAME_SHAPE(dgamma, gamma);
    BP_CHECK_SAME_SHAPE(dbeta, gamma);
    // Pass 2 re-reads in/dout after pass 1 wrote din, so even exact
    // in-place aliasing would corrupt dgamma/dbeta: require disjoint.
    BP_CHECK_NO_ALIAS(din, dout);
    BP_CHECK_NO_ALIAS(din, in);
    BP_CHECK_NO_ALIAS(dgamma, in);
    BP_CHECK_NO_ALIAS(dgamma, dout);
    BP_CHECK_NO_ALIAS(dbeta, in);
    BP_CHECK_NO_ALIAS(dbeta, dout);
    BP_REQUIRE(mean.numel() == rows && rstd.numel() == rows);

    dgamma.fill(0.0f);
    dbeta.fill(0.0f);
    // Pass 1 — din, parallel over rows. Each row's reductions
    // (sum_gdy, sum_gdy_xhat) stay inside the row, so partitioning
    // rows does not change any accumulation order.
    parallelFor(0, rows, rowGrain(cols), [&](std::int64_t r_lo,
                                             std::int64_t r_hi) {
        for (std::int64_t r = r_lo; r < r_hi; ++r) {
            const float *x = in.data() + r * cols;
            const float *dy = dout.data() + r * cols;
            float *dx = din.data() + r * cols;
            const double mu = mean.data()[r];
            const double rs = rstd.data()[r];

            // xhat = (x - mu) * rs; din follows the standard LN
            // backward:
            // dx = rs/C * (C*g*dy - sum(g*dy) - xhat * sum(g*dy*xhat))
            double sum_gdy = 0.0;
            double sum_gdy_xhat = 0.0;
            for (std::int64_t c = 0; c < cols; ++c) {
                const double xhat = (x[c] - mu) * rs;
                const double gdy =
                    static_cast<double>(gamma.data()[c]) * dy[c];
                sum_gdy += gdy;
                sum_gdy_xhat += gdy * xhat;
            }
            const double inv_c = 1.0 / static_cast<double>(cols);
            for (std::int64_t c = 0; c < cols; ++c) {
                const double xhat = (x[c] - mu) * rs;
                const double gdy =
                    static_cast<double>(gamma.data()[c]) * dy[c];
                dx[c] = static_cast<float>(
                    rs * (gdy - inv_c * (sum_gdy + xhat * sum_gdy_xhat)));
            }
        }
    });
    // Pass 2 — dgamma/dbeta, parallel over columns with the row
    // (reduction) axis kept serial in ascending order: bitwise
    // identical to the serial interleaved loop for any thread count.
    parallelFor(0, cols, 64, [&](std::int64_t c_lo, std::int64_t c_hi) {
        for (std::int64_t c = c_lo; c < c_hi; ++c) {
            float dg = 0.0f;
            float db = 0.0f;
            for (std::int64_t r = 0; r < rows; ++r) {
                const double mu = mean.data()[r];
                const double rs = rstd.data()[r];
                const float xv = in.data()[r * cols + c];
                const float dyv = dout.data()[r * cols + c];
                const double xhat = (xv - mu) * rs;
                dg += static_cast<float>(dyv * xhat);
                db += dyv;
            }
            dgamma.data()[c] = dg;
            dbeta.data()[c] = db;
        }
    });
    KernelStats s = elementwiseStats(in.numel(), 2, 1, 9,
                                     dtypeBytes(in.dtype()));
    s.bytesRead += gamma.storageBytes() + mean.storageBytes() +
                   rstd.storageBytes();
    s.bytesWritten += dgamma.storageBytes() + dbeta.storageBytes();
    return s;
}

} // namespace bertprof
