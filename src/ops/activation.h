/**
 * @file
 * Activation kernels. BERT's FC sub-layer uses the exact (erf-based)
 * GeLU of Hendrycks & Gimpel, Eq. 1 of the paper:
 * GELU(x) = x * 0.5 * (1 + erf(x / sqrt(2))).
 */

#ifndef BERTPROF_OPS_ACTIVATION_H
#define BERTPROF_OPS_ACTIVATION_H

#include "ops/kernel_stats.h"
#include "tensor/tensor.h"

namespace bertprof {

/** out = GELU(in), element-wise, exact erf formulation. */
KernelStats geluForward(const Tensor &in, Tensor &out);

/**
 * din = dout * dGELU/dx evaluated at the saved forward input.
 * dGELU/dx = Phi(x) + x * phi(x), with Phi/phi the standard normal
 * CDF and PDF.
 */
KernelStats geluBackward(const Tensor &in, const Tensor &dout, Tensor &din);

/** out = max(in, 0) (used by baseline configs in tests). */
KernelStats reluForward(const Tensor &in, Tensor &out);

/** din = dout where in > 0 else 0. */
KernelStats reluBackward(const Tensor &in, const Tensor &dout, Tensor &din);

/** out = tanh(in) (BERT pooler activation). */
KernelStats tanhForward(const Tensor &in, Tensor &out);

/** din = dout * (1 - out^2), using the saved forward output. */
KernelStats tanhBackward(const Tensor &out, const Tensor &dout, Tensor &din);

} // namespace bertprof

#endif // BERTPROF_OPS_ACTIVATION_H
