#include "ops/fused.h"

#include <cmath>
#include <vector>

#include "ops/gemm.h"
#include "ops/gemm_microkernel.h"
#include "runtime/parallel_for.h"
#include "tensor/contracts.h"
#include "util/logging.h"

namespace bertprof {

namespace {

constexpr double kInvSqrt2 = 0.7071067811865475244;

/** Same per-element arithmetic as geluForward (ops/activation.cc). */
inline float
geluScalar(float v)
{
    const double x = v;
    return static_cast<float>(x * 0.5 * (1.0 + std::erf(x * kInvSqrt2)));
}

/**
 * Normalize one row exactly as layerNormForward does: double mean and
 * variance over the float inputs, then the identical output
 * expression. Factoring the row math keeps the fused kernels bitwise
 * against the unfused oracle by construction.
 */
inline void
layerNormRow(const float *x, const float *g, const float *b,
             std::int64_t cols, float eps, float *y, float *mean_out,
             float *rstd_out)
{
    double mu = 0.0;
    for (std::int64_t c = 0; c < cols; ++c)
        mu += x[c];
    mu /= static_cast<double>(cols);
    double var = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
        const double d = x[c] - mu;
        var += d * d;
    }
    var /= static_cast<double>(cols);
    const double rs = 1.0 / std::sqrt(var + eps);
    *mean_out = static_cast<float>(mu);
    *rstd_out = static_cast<float>(rs);
    for (std::int64_t c = 0; c < cols; ++c)
        y[c] = static_cast<float>((x[c] - mu) * rs) * g[c] + b[c];
}

/** Per-worker scratch row for kernels that keep an intermediate row
 * (residual sum, attention scores) out of memory. */
float *
scratchRow(std::int64_t cols)
{
    static thread_local std::vector<float> buf;
    if (static_cast<std::int64_t>(buf.size()) < cols)
        buf.resize(static_cast<std::size_t>(cols));
    return buf.data();
}

/** Concatenate three [H, H] weights row-wise into wqkv [3H, H]. */
void
concatQkvWeights(const Tensor &wq, const Tensor &wk, const Tensor &wv,
                 Tensor &wqkv)
{
    const std::int64_t per = wq.numel();
    float *dst = wqkv.data();
    const float *srcs[3] = {wq.data(), wk.data(), wv.data()};
    for (int s = 0; s < 3; ++s)
        for (std::int64_t i = 0; i < per; ++i)
            dst[s * per + i] = srcs[s][i];
}

} // namespace

KernelStats
fusedBiasGeluForward(const Tensor &in, const Tensor &bias, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(in, out);
    BP_CHECK_RANK(bias, 1);
    BP_CHECK_NO_PARTIAL_ALIAS(out, in);
    BP_CHECK_NO_ALIAS(out, bias);
    const std::int64_t cols = bias.shape().dim(0);
    BP_REQUIRE(in.numel() % cols == 0);
    const std::int64_t rows = in.numel() / cols;

    parallelFor(0, rows, rowGrain(cols),
                [&](std::int64_t r_lo, std::int64_t r_hi) {
                    for (std::int64_t r = r_lo; r < r_hi; ++r) {
                        const float *src = in.data() + r * cols;
                        const float *bv = bias.data();
                        float *dst = out.data() + r * cols;
                        for (std::int64_t c = 0; c < cols; ++c)
                            dst[c] = geluScalar(src[c] + bv[c]);
                    }
                });
    // Flops: 1 (bias add) + 5 (GeLU) per element, as the unfused pair
    // reports. Traffic: one read and one write instead of the unfused
    // two reads and two writes (the bias pass's round trip is gone).
    KernelStats s = elementwiseStats(in.numel(), 1, 1, 6,
                                     dtypeBytes(in.dtype()));
    s.bytesRead += bias.storageBytes();
    return s;
}

KernelStats
fusedBiasGeluForwardWithPre(const Tensor &in, const Tensor &bias,
                            Tensor &pre, Tensor &out)
{
    BP_CHECK_SAME_SHAPE(in, out);
    BP_CHECK_SAME_SHAPE(in, pre);
    BP_CHECK_RANK(bias, 1);
    BP_CHECK_NO_PARTIAL_ALIAS(pre, in);
    BP_CHECK_NO_ALIAS(out, pre);
    BP_CHECK_NO_ALIAS(out, in);
    BP_CHECK_NO_ALIAS(out, bias);
    const std::int64_t cols = bias.shape().dim(0);
    BP_REQUIRE(in.numel() % cols == 0);
    const std::int64_t rows = in.numel() / cols;

    parallelFor(0, rows, rowGrain(cols),
                [&](std::int64_t r_lo, std::int64_t r_hi) {
                    for (std::int64_t r = r_lo; r < r_hi; ++r) {
                        const float *src = in.data() + r * cols;
                        const float *bv = bias.data();
                        float *prow = pre.data() + r * cols;
                        float *dst = out.data() + r * cols;
                        for (std::int64_t c = 0; c < cols; ++c) {
                            const float p = src[c] + bv[c];
                            prow[c] = p;
                            dst[c] = geluScalar(p);
                        }
                    }
                });
    KernelStats s = elementwiseStats(in.numel(), 1, 2, 6,
                                     dtypeBytes(in.dtype()));
    s.bytesRead += bias.storageBytes();
    return s;
}

KernelStats
fusedResidualLayerNormForward(const Tensor &a, const Tensor &b,
                              const Tensor &gamma, const Tensor &beta,
                              Tensor &out, Tensor &mean, Tensor &rstd,
                              float eps)
{
    BP_CHECK_SAME_SHAPE(a, b);
    BP_CHECK_SAME_SHAPE(a, out);
    BP_CHECK_RANK(gamma, 1);
    BP_CHECK_SAME_SHAPE(beta, gamma);
    BP_CHECK_NO_ALIAS(out, a);
    BP_CHECK_NO_ALIAS(out, b);
    BP_CHECK_NO_ALIAS(out, gamma);
    BP_CHECK_NO_ALIAS(out, beta);
    const std::int64_t cols = gamma.shape().dim(0);
    BP_REQUIRE(a.shape().dim(-1) == cols);
    const std::int64_t rows = a.numel() / cols;
    BP_REQUIRE(mean.numel() == rows && rstd.numel() == rows);

    parallelFor(0, rows, rowGrain(cols),
                [&](std::int64_t r_lo, std::int64_t r_hi) {
                    float *srow = scratchRow(cols);
                    for (std::int64_t r = r_lo; r < r_hi; ++r) {
                        const float *av = a.data() + r * cols;
                        const float *bv = b.data() + r * cols;
                        for (std::int64_t c = 0; c < cols; ++c)
                            srow[c] = av[c] + bv[c];
                        layerNormRow(srow, gamma.data(), beta.data(),
                                     cols, eps, out.data() + r * cols,
                                     mean.data() + r, rstd.data() + r);
                    }
                });
    // Flops: 1 (add) + 6 (LN) per element. Traffic: reads a and b,
    // writes out — the unfused residual's extra write and the LN's
    // re-read of the sum never happen.
    KernelStats s = elementwiseStats(a.numel(), 2, 1, 7,
                                     dtypeBytes(a.dtype()));
    s.bytesRead += gamma.storageBytes() + beta.storageBytes();
    s.bytesWritten += mean.storageBytes() + rstd.storageBytes();
    return s;
}

KernelStats
fusedResidualLayerNormForwardWithSum(const Tensor &a, const Tensor &b,
                                     const Tensor &gamma,
                                     const Tensor &beta, Tensor &sum,
                                     Tensor &out, Tensor &mean,
                                     Tensor &rstd, float eps)
{
    BP_CHECK_SAME_SHAPE(a, b);
    BP_CHECK_SAME_SHAPE(a, sum);
    BP_CHECK_SAME_SHAPE(a, out);
    BP_CHECK_RANK(gamma, 1);
    BP_CHECK_SAME_SHAPE(beta, gamma);
    BP_CHECK_NO_ALIAS(sum, a);
    BP_CHECK_NO_ALIAS(sum, b);
    BP_CHECK_NO_ALIAS(out, sum);
    BP_CHECK_NO_ALIAS(out, a);
    BP_CHECK_NO_ALIAS(out, b);
    const std::int64_t cols = gamma.shape().dim(0);
    BP_REQUIRE(a.shape().dim(-1) == cols);
    const std::int64_t rows = a.numel() / cols;
    BP_REQUIRE(mean.numel() == rows && rstd.numel() == rows);

    parallelFor(0, rows, rowGrain(cols),
                [&](std::int64_t r_lo, std::int64_t r_hi) {
                    for (std::int64_t r = r_lo; r < r_hi; ++r) {
                        const float *av = a.data() + r * cols;
                        const float *bv = b.data() + r * cols;
                        float *srow = sum.data() + r * cols;
                        for (std::int64_t c = 0; c < cols; ++c)
                            srow[c] = av[c] + bv[c];
                        layerNormRow(srow, gamma.data(), beta.data(),
                                     cols, eps, out.data() + r * cols,
                                     mean.data() + r, rstd.data() + r);
                    }
                });
    KernelStats s = elementwiseStats(a.numel(), 2, 2, 7,
                                     dtypeBytes(a.dtype()));
    s.bytesRead += gamma.storageBytes() + beta.storageBytes();
    s.bytesWritten += mean.storageBytes() + rstd.storageBytes();
    return s;
}

KernelStats
fusedQkvForward(const Tensor &x, const Tensor &wq, const Tensor &wk,
                const Tensor &wv, const Tensor &bq, const Tensor &bk,
                const Tensor &bv, std::int64_t batch, std::int64_t seq,
                std::int64_t heads, Tensor &q3d, Tensor &k3d, Tensor &v3d)
{
    BP_CHECK_RANK(x, 2);
    const std::int64_t d_model = x.shape().dim(1);
    const std::int64_t rows = x.shape().dim(0);
    BP_REQUIRE(rows == batch * seq);
    BP_REQUIRE(heads > 0 && d_model % heads == 0);
    const std::int64_t dh = d_model / heads;
    BP_REQUIRE(wq.shape() == Shape({d_model, d_model}));
    BP_CHECK_SAME_SHAPE(wk, wq);
    BP_CHECK_SAME_SHAPE(wv, wq);
    BP_REQUIRE(bq.shape() == Shape({d_model}));
    BP_CHECK_SAME_SHAPE(bk, bq);
    BP_CHECK_SAME_SHAPE(bv, bq);
    const Shape out_shape({batch * heads, seq, dh});
    BP_REQUIRE(q3d.shape() == out_shape);
    BP_REQUIRE(k3d.shape() == out_shape);
    BP_REQUIRE(v3d.shape() == out_shape);
    BP_CHECK_NO_ALIAS(q3d, x);
    BP_CHECK_NO_ALIAS(k3d, x);
    BP_CHECK_NO_ALIAS(v3d, x);

    // Concatenated weight is rebuilt on every call (never cached) so
    // an optimizer step can't leave a stale copy behind; the copy is
    // O(3H^2) against the GEMM's O(2*T*3H^2) flops.
    Tensor wqkv(Shape({3 * d_model, d_model}));
    concatQkvWeights(wq, wk, wv, wqkv);

    // One pack(A) for x amortized over the 3H-wide packed B panel —
    // the Fig. 12b fusion, on the real packed engine.
    Tensor qkv(Shape({rows, 3 * d_model}));
    gemm(x, wqkv, qkv, false, true);

    // Fused epilogue: bias add + split-heads in one pass over qkv.
    // Adding bias before the head permutation is the same float add
    // the unfused biasForward does, so the result stays bitwise.
    const float *biases[3] = {bq.data(), bk.data(), bv.data()};
    Tensor *outs[3] = {&q3d, &k3d, &v3d};
    parallelFor(0, rows, rowGrain(3 * d_model), [&](std::int64_t r_lo,
                                                    std::int64_t r_hi) {
        for (std::int64_t r = r_lo; r < r_hi; ++r) {
            const std::int64_t b_idx = r / seq;
            const std::int64_t t = r % seq;
            const float *src = qkv.data() + r * 3 * d_model;
            for (int s = 0; s < 3; ++s) {
                const float *bias_v = biases[s];
                float *base = outs[s]->data();
                for (std::int64_t h = 0; h < heads; ++h) {
                    float *dst =
                        base + ((b_idx * heads + h) * seq + t) * dh;
                    const float *seg = src + s * d_model + h * dh;
                    const float *bseg = bias_v + h * dh;
                    for (std::int64_t j = 0; j < dh; ++j)
                        dst[j] = seg[j] + bseg[j];
                }
            }
        }
    });

    // Flops: the GEMM plus one bias add per output element (the
    // unfused split-heads moves data without arithmetic). Traffic:
    // the concat copy, the GEMM, and one fused epilogue pass instead
    // of separate bias and split passes.
    KernelStats s = gemmStats(rows, 3 * d_model, d_model, 1,
                              dtypeBytes(x.dtype()));
    s.bytesRead += wqkv.storageBytes();          // concat copy in
    s.bytesWritten += wqkv.storageBytes();       // concat copy out
    KernelStats epi = elementwiseStats(qkv.numel(), 1, 1, 1,
                                       dtypeBytes(x.dtype()));
    epi.bytesRead +=
        bq.storageBytes() + bk.storageBytes() + bv.storageBytes();
    s += epi;
    return s;
}

KernelStats
fusedQkvBackward(const Tensor &dq, const Tensor &dk, const Tensor &dv,
                 const Tensor &x, const Tensor &wq, const Tensor &wk,
                 const Tensor &wv, Tensor &dwq, Tensor &dwk, Tensor &dwv,
                 Tensor &dbq, Tensor &dbk, Tensor &dbv, Tensor &dx)
{
    BP_CHECK_RANK(x, 2);
    const std::int64_t rows = x.shape().dim(0);
    const std::int64_t d_model = x.shape().dim(1);
    BP_CHECK_SAME_SHAPE(dq, x);
    BP_CHECK_SAME_SHAPE(dk, x);
    BP_CHECK_SAME_SHAPE(dv, x);
    BP_CHECK_SAME_SHAPE(dx, x);
    BP_REQUIRE(wq.shape() == Shape({d_model, d_model}));
    BP_CHECK_SAME_SHAPE(wk, wq);
    BP_CHECK_SAME_SHAPE(wv, wq);
    BP_CHECK_SAME_SHAPE(dwq, wq);
    BP_CHECK_SAME_SHAPE(dwk, wq);
    BP_CHECK_SAME_SHAPE(dwv, wq);
    BP_REQUIRE(dbq.shape() == Shape({d_model}));
    BP_CHECK_SAME_SHAPE(dbk, dbq);
    BP_CHECK_SAME_SHAPE(dbv, dbq);
    BP_CHECK_NO_ALIAS(dx, dq);
    BP_CHECK_NO_ALIAS(dx, dk);
    BP_CHECK_NO_ALIAS(dx, dv);
    BP_CHECK_NO_ALIAS(dx, x);

    // Column-concatenate the three output grads: dqkv [T, 3H].
    Tensor dqkv(Shape({rows, 3 * d_model}));
    const float *grads[3] = {dq.data(), dk.data(), dv.data()};
    parallelFor(0, rows, rowGrain(3 * d_model),
                [&](std::int64_t r_lo, std::int64_t r_hi) {
                    for (std::int64_t r = r_lo; r < r_hi; ++r) {
                        float *dst = dqkv.data() + r * 3 * d_model;
                        for (int s = 0; s < 3; ++s) {
                            const float *src = grads[s] + r * d_model;
                            for (std::int64_t c = 0; c < d_model; ++c)
                                dst[s * d_model + c] = src[c];
                        }
                    }
                });

    // Fused weight grad: dWqkv = dqkv^T x -> [3H, H]. Each output
    // element reduces over the same T rows in the same order as the
    // per-projection GEMMs, so the row-split results are bitwise.
    Tensor dwqkv(Shape({3 * d_model, d_model}));
    gemm(dqkv, x, dwqkv, true, false);
    const std::int64_t w_per = d_model * d_model;
    Tensor *dws[3] = {&dwq, &dwk, &dwv};
    for (int s = 0; s < 3; ++s) {
        const float *src = dwqkv.data() + s * w_per;
        float *dst = dws[s]->data();
        for (std::int64_t i = 0; i < w_per; ++i)
            dst[i] = src[i];
    }

    // Fused bias grad: column sums of dqkv with the row axis kept
    // serial ascending — bitwise identical to three biasBackward
    // calls (ops/elementwise.cc uses the same order).
    float *dbs[3] = {dbq.data(), dbk.data(), dbv.data()};
    parallelFor(0, 3 * d_model, 64,
                [&](std::int64_t c_lo, std::int64_t c_hi) {
                    for (std::int64_t c = c_lo; c < c_hi; ++c) {
                        float acc = 0.0f;
                        for (std::int64_t r = 0; r < rows; ++r)
                            acc += dqkv.data()[r * 3 * d_model + c];
                        dbs[c / d_model][c % d_model] = acc;
                    }
                });

    // Fused input grad: dx = dqkv [Wq; Wk; Wv] — one k=3H GEMM
    // replacing three k=H GEMMs plus two adds. The accumulation
    // association differs, so this output is tolerance-only.
    Tensor wqkv(Shape({3 * d_model, d_model}));
    concatQkvWeights(wq, wk, wv, wqkv);
    gemm(dqkv, wqkv, dx, false, false);

    KernelStats s = gemmStats(3 * d_model, d_model, rows, 1,
                              dtypeBytes(x.dtype())); // wgrad
    s += gemmStats(rows, d_model, 3 * d_model, 1,
                   dtypeBytes(x.dtype())); // dgrad
    KernelStats bias_s = elementwiseStats(dqkv.numel(), 1, 0, 1,
                                          dtypeBytes(x.dtype()));
    bias_s.bytesWritten +=
        dbq.storageBytes() + dbk.storageBytes() + dbv.storageBytes();
    s += bias_s;
    // Concat copies (dqkv gather + wqkv build + dwqkv scatter).
    s.bytesRead += dqkv.storageBytes() + wqkv.storageBytes() +
                   dwqkv.storageBytes();
    s.bytesWritten += dqkv.storageBytes() + wqkv.storageBytes() +
                      dwqkv.storageBytes();
    return s;
}

KernelStats
fusedAttentionEvalForward(const Tensor &q3d, const Tensor &k3d,
                          const Tensor &v3d, const Tensor &mask,
                          std::int64_t heads, float scale, Tensor &context)
{
    BP_CHECK_RANK(q3d, 3);
    BP_CHECK_SAME_SHAPE(k3d, q3d);
    BP_CHECK_SAME_SHAPE(v3d, q3d);
    BP_CHECK_SAME_SHAPE(context, q3d);
    BP_CHECK_NO_ALIAS(context, q3d);
    BP_CHECK_NO_ALIAS(context, k3d);
    BP_CHECK_NO_ALIAS(context, v3d);
    BP_CHECK_NO_ALIAS(context, mask);
    const std::int64_t groups = q3d.shape().dim(0);
    const std::int64_t n = q3d.shape().dim(1);
    const std::int64_t dh = q3d.shape().dim(2);
    BP_REQUIRE(heads > 0 && groups % heads == 0);
    const bool per_sequence =
        mask.shape() == Shape({groups / heads, n, n});
    BP_REQUIRE(per_sequence || mask.shape() == Shape({n, n}));

    parallelFor(0, groups, 1, [&](std::int64_t g_lo, std::int64_t g_hi) {
        // Per-worker scratch: one [n, n] score block, reused for every
        // group this worker owns. The block cycles through the cache
        // instead of the [B*h, n, n] tensor the unfused chain
        // materializes (and round-trips twice); flash-attention-style,
        // the tile is the thing fusion keeps on chip. Both GEMMs run
        // on the packed microkernel (thread-local packing buffers —
        // concurrency-safe), with the score scale folded into alpha.
        float *sblk = scratchRow(n * n);
        for (std::int64_t g = g_lo; g < g_hi; ++g) {
            const float *qg = q3d.data() + g * n * dh;
            const float *kg = k3d.data() + g * n * dh;
            const float *vg = v3d.data() + g * n * dh;
            const float *mg = per_sequence
                                  ? mask.data() + (g / heads) * n * n
                                  : mask.data();
            float *og = context.data() + g * n * dh;
            // S = scale * q_g k_g^T  ([n, dh] x [n, dh]^T -> [n, n]).
            gemmPackedRows(qg, kg, sblk, n, n, dh, false, true, scale,
                           0.0f, 0, n);
            // Rows: mask add + the exact row algorithm of
            // softmaxForward (max, exp, double-accumulated
            // denominator, multiply by the float inverse), in place.
            for (std::int64_t i = 0; i < n; ++i) {
                float *srow = sblk + i * n;
                const float *mi = mg + i * n;
                float mx = srow[0] + mi[0];
                for (std::int64_t j = 0; j < n; ++j) {
                    srow[j] += mi[j];
                    mx = std::max(mx, srow[j]);
                }
                double denom = 0.0;
                for (std::int64_t j = 0; j < n; ++j) {
                    srow[j] = std::exp(srow[j] - mx);
                    denom += srow[j];
                }
                const float inv = static_cast<float>(1.0 / denom);
                for (std::int64_t j = 0; j < n; ++j)
                    srow[j] *= inv;
            }
            // context_g = P v_g  ([n, n] x [n, dh] -> [n, dh]).
            gemmPackedRows(sblk, vg, og, n, dh, n, false, false, 1.0f,
                           0.0f, 0, n);
        }
    });

    // Flops summed from the constituent unfused ops: the score
    // batched GEMM, scale, mask add, softmax (~4/elem), and the
    // context batched GEMM. Traffic is what the fused kernel moves at
    // the memory level: q/k/v read, mask read per group, context
    // written. The per-worker score block is cache-resident scratch
    // and excluded, exactly like an accelerator fusion excludes
    // on-chip tiles — no score or probs DRAM round trips.
    const std::int64_t score_elems = groups * n * n;
    KernelStats s;
    s.flops = gemmStats(n, n, dh, groups).flops       // scores
              + score_elems                            // scale
              + score_elems                            // mask add
              + 4 * score_elems                        // softmax
              + gemmStats(n, dh, n, groups).flops;     // context
    const std::int64_t eb = dtypeBytes(q3d.dtype());
    s.bytesRead = (q3d.numel() + k3d.numel() + v3d.numel()) * eb +
                  mask.storageBytes() *
                      (per_sequence ? heads : groups);
    s.bytesWritten = context.numel() * eb;
    return s;
}

} // namespace bertprof
