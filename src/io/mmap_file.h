/**
 * @file
 * Read-only memory-mapped file view. The trace replay path iterates
 * containers that can reach production step counts (gigabytes); mmap
 * lets forward *and* backward iterators touch only the pages of the
 * chunk they are decoding instead of slurping the file, the same
 * shape as Slimmer's mapped_file_source-backed TraceIter.
 */

#ifndef BERTPROF_IO_MMAP_FILE_H
#define BERTPROF_IO_MMAP_FILE_H

#include <cstddef>
#include <string>

#include "io/io_status.h"

namespace bertprof {

/** A whole file mapped read-only; unmapped on close/destruction. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Map `path` read-only. An empty file maps successfully with
     * size() == 0 and data() == nullptr. Fault site: `io.read`
     * (ioerr) — the same retry hook checkpoint reads use.
     */
    IoStatus open(const std::string &path);

    /** Unmap. Idempotent. */
    void close();

    bool isOpen() const { return open_; }

    /** First mapped byte (nullptr when empty or closed). */
    const char *data() const { return data_; }

    /** Mapped length in bytes. */
    std::size_t size() const { return size_; }

  private:
    const char *data_ = nullptr;
    std::size_t size_ = 0;
    bool open_ = false;
};

} // namespace bertprof

#endif // BERTPROF_IO_MMAP_FILE_H
