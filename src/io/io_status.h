/**
 * @file
 * Typed I/O error results for the durability layer. Checkpoint save
 * and restore must never abort the training process — a corrupt file,
 * a transient write failure, or a version mismatch is an expected
 * runtime condition, reported as a value the caller can route through
 * retry / fallback logic (contrast BP_REQUIRE, which is for caller
 * bugs).
 */

#ifndef BERTPROF_IO_IO_STATUS_H
#define BERTPROF_IO_IO_STATUS_H

#include <string>

namespace bertprof {

/** Failure class of an I/O operation. */
enum class IoError {
    None,         ///< success
    OpenFailed,   ///< could not open the file
    WriteFailed,  ///< short or failed write (includes torn writes)
    RenameFailed, ///< atomic-commit rename failed
    Transient,    ///< retryable failure (injected or EINTR-like)
    NotFound,     ///< no such file / no checkpoint in the directory
    Truncated,    ///< file shorter than its header claims
    BadMagic,     ///< not a bertprof checkpoint file
    BadVersion,   ///< written by an incompatible format version
    BadChecksum,  ///< CRC32 mismatch — corrupt payload
    BadFormat,    ///< payload structure/type/name mismatch
};

/** Short kebab-case name, e.g. "bad-checksum". */
const char *ioErrorName(IoError error);

/** Outcome of an I/O operation: an error class plus context. */
struct IoStatus {
    IoError error = IoError::None;
    std::string message;

    bool ok() const { return error == IoError::None; }

    static IoStatus success() { return IoStatus{}; }

    static IoStatus
    failure(IoError error, std::string message)
    {
        return IoStatus{error, std::move(message)};
    }

    /** "bad-checksum: payload CRC mismatch in ..." (or "ok"). */
    std::string toString() const;
};

} // namespace bertprof

#endif // BERTPROF_IO_IO_STATUS_H
