/**
 * @file
 * Append-oriented file writer for the telemetry trace container.
 *
 * writeFileAtomic() (binary_io.h) replaces a whole file per commit —
 * right for checkpoints, hopeless for a trace that grows by one chunk
 * every few milliseconds. AppendFile is the complementary primitive:
 * an unbuffered POSIX append stream whose durability unit is the
 * *chunk*, not the file. Each append() lands via ::write(2) (no
 * stdio buffering, so bytes already appended survive a hard
 * std::_Exit the way the fault injector's `kill` preemption models),
 * and sync() fsyncs for machine-crash durability. A torn append
 * corrupts only the bytes of the open chunk; everything before it
 * stays replayable, which is the contract the trace reader's
 * CRC-per-chunk validation depends on.
 *
 * Fault-injection sites (runtime/fault_injection.h) mirror the
 * atomic-write path so the same BERTPROF_FAULT specs cover both:
 * `io.write` (torn = half the bytes reach disk, ioerr = transient,
 * kill = preemption mid-append) fires on append(), `io.commit`
 * (torn) on sync().
 */

#ifndef BERTPROF_IO_APPEND_FILE_H
#define BERTPROF_IO_APPEND_FILE_H

#include <cstdint>
#include <string>

#include "io/io_status.h"

namespace bertprof {

/** Unbuffered append-only file handle with typed errors. */
class AppendFile
{
  public:
    AppendFile() = default;
    ~AppendFile();

    AppendFile(const AppendFile &) = delete;
    AppendFile &operator=(const AppendFile &) = delete;

    /**
     * Create (or truncate) `path` for appending. Fails with
     * OpenFailed when the file cannot be created.
     */
    IoStatus open(const std::string &path);

    /**
     * Append `size` bytes. On a torn write (injected or a genuine
     * short ::write) the file keeps the partial prefix — the caller
     * must treat the tail as lost and stop appending. Fault site:
     * `io.write`.
     */
    IoStatus append(const void *data, std::size_t size);

    /** fsync what has been appended so far. Fault site: `io.commit`. */
    IoStatus sync();

    /** Close the handle (without implicit sync). Idempotent. */
    IoStatus close();

    bool isOpen() const { return fd_ >= 0; }

    /** Bytes successfully appended since open(). */
    std::int64_t bytesWritten() const { return bytesWritten_; }

    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    std::int64_t bytesWritten_ = 0;
    std::string path_;
};

} // namespace bertprof

#endif // BERTPROF_IO_APPEND_FILE_H
