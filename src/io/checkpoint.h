/**
 * @file
 * Versioned checkpoint payloads and the on-disk checkpoint store.
 *
 * StateWriter / StateReader put a self-describing, named-field layer
 * on top of the binary container: every field carries a type tag and
 * its name, and the reader verifies both before decoding, so a
 * checkpoint written by a different code revision fails with a
 * precise BadFormat message ("expected field 'adam.m' ...") instead
 * of silently misreading bytes. Tensors round-trip bitwise (raw FP32
 * bit patterns), which is what makes resumed runs exactly equal to
 * uninterrupted ones.
 *
 * CheckpointManager owns a directory of `ckpt-<step>.bpck` files:
 * cadenced saves go through the crash-safe writer (with bounded
 * retry-with-backoff on transient failures), old checkpoints are
 * pruned to `keepLast`, and loadLatest() walks newest -> oldest until
 * a file validates — the last-good fallback that makes a torn or
 * corrupt newest checkpoint a warning, not a lost run.
 */

#ifndef BERTPROF_IO_CHECKPOINT_H
#define BERTPROF_IO_CHECKPOINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "io/binary_io.h"
#include "io/io_status.h"
#include "tensor/tensor.h"

namespace bertprof {

/** Builds a checkpoint payload of named, typed fields. */
class StateWriter
{
  public:
    void i64(const std::string &name, std::int64_t v);
    void f32(const std::string &name, float v);
    void f64(const std::string &name, double v);
    void str(const std::string &name, const std::string &v);
    /** Shape + dtype + raw FP32 bit patterns (bitwise round-trip). */
    void tensor(const std::string &name, const Tensor &t);

    /** The serialized payload (feed to writeFileAtomic / manager). */
    const std::string &payload() const { return writer_.buffer(); }

  private:
    BinaryWriter writer_;
};

/**
 * Decodes a payload written by StateWriter. Fields must be read in
 * the order they were written; the first name/type/shape mismatch or
 * underrun latches a typed error and every later read returns false,
 * so call sites may decode a whole section and check status() once.
 */
class StateReader
{
  public:
    explicit StateReader(std::string payload);

    bool i64(const std::string &name, std::int64_t &out);
    bool f32(const std::string &name, float &out);
    bool f64(const std::string &name, double &out);
    bool str(const std::string &name, std::string &out);
    /** `out` must already have the expected shape; a checkpointed
     *  shape mismatch is a BadFormat error, not a resize. */
    bool tensor(const std::string &name, Tensor &out);

    const IoStatus &status() const { return status_; }

  private:
    bool readHeader(const std::string &name, std::uint8_t tag);
    void fail(IoError error, const std::string &message);

    BinaryReader reader_;
    IoStatus status_;
};

/** Knobs for the on-disk checkpoint store. */
struct CheckpointManagerOptions {
    /** Directory the `ckpt-<step>.bpck` files live in (created). */
    std::string dir;
    /** Checkpoints retained after a successful save (>= 1). */
    int keepLast = 3;
    /** Attempts per save/load on transient I/O failure (>= 1). */
    int ioRetries = 3;
    /** Base backoff between retries; doubles per attempt (jittered
     *  per RetryPolicy, capped at ioMaxBackoffMs). */
    double ioBackoffMs = 1.0;
    /** Cap on the exponential backoff growth. */
    double ioMaxBackoffMs = 1000.0;
    /** Seed for the deterministic retry jitter stream. */
    std::uint64_t ioRetrySeed = 0;

    /** The equivalent withRetries() policy. */
    RetryPolicy retryPolicy() const;
};

/** Crash-safe store of step-indexed checkpoints in one directory. */
class CheckpointManager
{
  public:
    explicit CheckpointManager(CheckpointManagerOptions options);

    /**
     * Persist `payload` as the checkpoint for `step` (crash-safe,
     * retried on transient failure) and prune old checkpoints. On
     * failure the store is unchanged and training can continue.
     */
    IoStatus save(std::int64_t step, const std::string &payload);

    /**
     * Load the newest checkpoint that validates, falling back to
     * older ones past corrupt/truncated files (each skip logged).
     * NotFound when the directory holds no loadable checkpoint.
     */
    IoStatus loadLatest(std::string &payloadOut, std::int64_t &stepOut);

    /** Steps with a checkpoint file present, ascending. */
    std::vector<std::int64_t> listSteps() const;

    /** `dir/ckpt-<step>.bpck`. */
    std::string pathForStep(std::int64_t step) const;

    const CheckpointManagerOptions &options() const { return options_; }

  private:
    CheckpointManagerOptions options_;
};

} // namespace bertprof

#endif // BERTPROF_IO_CHECKPOINT_H
