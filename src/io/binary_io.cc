// Raw fopen/fwrite/fread live here by design: src/io is the one layer
// allowed to touch files directly (bplint rule unchecked-io), and the
// C stdio API gives us the explicit fflush + fsync + rename sequence
// crash safety needs.

#include "io/binary_io.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "io/crc32.h"
#include "runtime/fault_injection.h"
#include "util/logging.h"

namespace bertprof {

namespace {

constexpr std::uint32_t kMagic = 0x314B5042u; // "BPK1" little-endian

void
putLe(std::string &buf, const void *data, std::size_t size)
{
    // Host is assumed little-endian (x86/ARM Linux); the magic check
    // on read rejects cross-endian files outright rather than
    // misreading them.
    buf.append(static_cast<const char *>(data), size);
}

/** fsync the directory containing `path` so the rename is durable. */
void
syncParentDir(const std::string &path)
{
    std::string dir = ".";
    const std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos)
        dir = path.substr(0, slash == 0 ? 1 : slash);
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

} // namespace

void
BinaryWriter::u8(std::uint8_t v)
{
    putLe(buf_, &v, sizeof v);
}

void
BinaryWriter::u32(std::uint32_t v)
{
    putLe(buf_, &v, sizeof v);
}

void
BinaryWriter::u64(std::uint64_t v)
{
    putLe(buf_, &v, sizeof v);
}

void
BinaryWriter::i64(std::int64_t v)
{
    putLe(buf_, &v, sizeof v);
}

void
BinaryWriter::f32(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u32(bits);
}

void
BinaryWriter::f64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void
BinaryWriter::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
}

void
BinaryWriter::bytes(const void *data, std::size_t size)
{
    buf_.append(static_cast<const char *>(data), size);
}

bool
BinaryReader::take(void *out, std::size_t size)
{
    if (failed_ || pos_ + size > data_.size()) {
        failed_ = true;
        std::memset(out, 0, size);
        return false;
    }
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return true;
}

std::uint8_t
BinaryReader::u8()
{
    std::uint8_t v = 0;
    take(&v, sizeof v);
    return v;
}

std::uint32_t
BinaryReader::u32()
{
    std::uint32_t v = 0;
    take(&v, sizeof v);
    return v;
}

std::uint64_t
BinaryReader::u64()
{
    std::uint64_t v = 0;
    take(&v, sizeof v);
    return v;
}

std::int64_t
BinaryReader::i64()
{
    std::int64_t v = 0;
    take(&v, sizeof v);
    return v;
}

float
BinaryReader::f32()
{
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

double
BinaryReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
BinaryReader::str()
{
    const std::uint32_t size = u32();
    if (failed_ || pos_ + size > data_.size()) {
        failed_ = true;
        return "";
    }
    std::string s = data_.substr(pos_, size);
    pos_ += size;
    return s;
}

void
BinaryReader::bytes(void *out, std::size_t size)
{
    take(out, size);
}

IoStatus
writeFileAtomic(const std::string &path, const std::string &payload,
                std::uint32_t version)
{
    const FaultKind fault = faultAt("io.write");
    if (fault == FaultKind::IoError) {
        return IoStatus::failure(
            IoError::Transient,
            "transient write failure injected for " + path);
    }

    std::string file;
    file.reserve(20 + payload.size());
    const std::uint32_t magic = kMagic;
    const std::uint64_t size = payload.size();
    const std::uint32_t crc = crc32(payload);
    putLe(file, &magic, sizeof magic);
    putLe(file, &version, sizeof version);
    putLe(file, &size, sizeof size);
    putLe(file, &crc, sizeof crc);
    file.append(payload);

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        return IoStatus::failure(IoError::OpenFailed,
                                 "cannot open " + tmp + " for writing");
    }
    // A torn write models dying mid-flush: only half the bytes reach
    // the temp file and the commit rename never happens, so the
    // previously committed checkpoint (if any) stays intact.
    const std::size_t to_write =
        fault == FaultKind::TornWrite ? file.size() / 2 : file.size();
    const std::size_t wrote =
        to_write == 0 ? 0 : std::fwrite(file.data(), 1, to_write, f);
    if (fault == FaultKind::TornWrite) {
        std::fclose(f);
        return IoStatus::failure(IoError::WriteFailed,
                                 "torn write injected for " + tmp +
                                     " (file left truncated)");
    }
    if (wrote != file.size()) {
        std::fclose(f);
        std::remove(tmp.c_str());
        return IoStatus::failure(IoError::WriteFailed,
                                 "short write to " + tmp);
    }
    if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
        std::fclose(f);
        std::remove(tmp.c_str());
        return IoStatus::failure(IoError::WriteFailed,
                                 "flush/fsync failed for " + tmp);
    }
    std::fclose(f);

    if (faultAt("io.commit") == FaultKind::TornWrite) {
        return IoStatus::failure(IoError::WriteFailed,
                                 "crash injected between write and "
                                 "rename for " +
                                     path);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return IoStatus::failure(IoError::RenameFailed,
                                 "rename " + tmp + " -> " + path +
                                     " failed");
    }
    syncParentDir(path);
    return IoStatus::success();
}

IoStatus
readFileValidated(const std::string &path, std::string &payloadOut,
                  std::uint32_t version)
{
    payloadOut.clear();
    if (faultAt("io.read") == FaultKind::IoError) {
        return IoStatus::failure(
            IoError::Transient,
            "transient read failure injected for " + path);
    }

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return IoStatus::failure(IoError::NotFound, "cannot open " + path);

    unsigned char header[20];
    const std::size_t got = std::fread(header, 1, sizeof header, f);
    if (got != sizeof header) {
        std::fclose(f);
        return IoStatus::failure(IoError::Truncated,
                                 path + " is shorter than the "
                                        "checkpoint header");
    }
    std::uint32_t magic, file_version, crc;
    std::uint64_t size;
    std::memcpy(&magic, header, 4);
    std::memcpy(&file_version, header + 4, 4);
    std::memcpy(&size, header + 8, 8);
    std::memcpy(&crc, header + 16, 4);
    if (magic != kMagic) {
        std::fclose(f);
        return IoStatus::failure(IoError::BadMagic,
                                 path + " is not a bertprof "
                                        "checkpoint (bad magic)");
    }
    if (file_version != version) {
        std::fclose(f);
        return IoStatus::failure(
            IoError::BadVersion,
            path + " has format version " +
                std::to_string(file_version) + ", expected " +
                std::to_string(version));
    }

    std::string payload(size, '\0');
    const std::size_t read =
        size == 0 ? 0 : std::fread(payload.data(), 1, size, f);
    std::fclose(f);
    if (read != size) {
        return IoStatus::failure(
            IoError::Truncated,
            path + " payload truncated (" + std::to_string(read) +
                " of " + std::to_string(size) + " bytes)");
    }
    if (crc32(payload) != crc) {
        return IoStatus::failure(IoError::BadChecksum,
                                 "payload CRC mismatch in " + path);
    }
    payloadOut = std::move(payload);
    return IoStatus::success();
}

IoStatus
writeTextFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        return IoStatus::failure(IoError::OpenFailed,
                                 "cannot open " + path + " for writing");
    }
    const std::size_t wrote = content.empty()
                                  ? 0
                                  : std::fwrite(content.data(), 1,
                                                content.size(), f);
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (wrote != content.size() || !flushed)
        return IoStatus::failure(IoError::WriteFailed,
                                 "short write to " + path);
    return IoStatus::success();
}

namespace {

std::atomic<IoRetrySink> g_io_retry_sink{nullptr};

/** splitmix64: the standard 64-bit finalizing mixer. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Deterministic u in [0, 1) for retry `attempt` under `seed`. */
double
jitterUnit(std::uint64_t seed, int attempt)
{
    const std::uint64_t h =
        splitmix64(seed ^ (static_cast<std::uint64_t>(attempt) *
                           0xd1342543de82ef95ULL));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

void
installIoRetrySink(IoRetrySink sink)
{
    g_io_retry_sink.store(sink, std::memory_order_release);
}

IoStatus
withRetries(const RetryPolicy &policy,
            const std::function<IoStatus()> &op)
{
    BP_REQUIRE(policy.attempts >= 1);
    BP_REQUIRE(policy.backoffMs >= 0.0);
    BP_REQUIRE(policy.jitter >= 0.0 && policy.jitter <= 1.0);
    IoStatus status;
    for (int attempt = 0; attempt < policy.attempts; ++attempt) {
        if (attempt > 0) {
            double ms = policy.backoffMs *
                        static_cast<double>(1ULL << (attempt - 1 < 62
                                                         ? attempt - 1
                                                         : 62));
            if (ms > policy.maxBackoffMs)
                ms = policy.maxBackoffMs;
            if (policy.jitter > 0.0)
                ms *= 1.0 - policy.jitter / 2.0 +
                      policy.jitter * jitterUnit(policy.seed, attempt);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(ms));
            if (IoRetrySink sink =
                    g_io_retry_sink.load(std::memory_order_acquire))
                sink(1);
            BP_LOG(Warn) << "io retry " << attempt << "/"
                         << policy.attempts - 1
                         << " after transient failure: "
                         << status.message;
        }
        status = op();
        if (status.error != IoError::Transient)
            return status;
    }
    return status;
}

IoStatus
withRetries(int attempts, double backoffMs,
            const std::function<IoStatus()> &op)
{
    RetryPolicy policy;
    policy.attempts = attempts;
    policy.backoffMs = backoffMs;
    return withRetries(policy, op);
}

const char *
ioErrorName(IoError error)
{
    switch (error) {
    case IoError::None:
        return "ok";
    case IoError::OpenFailed:
        return "open-failed";
    case IoError::WriteFailed:
        return "write-failed";
    case IoError::RenameFailed:
        return "rename-failed";
    case IoError::Transient:
        return "transient";
    case IoError::NotFound:
        return "not-found";
    case IoError::Truncated:
        return "truncated";
    case IoError::BadMagic:
        return "bad-magic";
    case IoError::BadVersion:
        return "bad-version";
    case IoError::BadChecksum:
        return "bad-checksum";
    case IoError::BadFormat:
        return "bad-format";
    }
    return "unknown";
}

std::string
IoStatus::toString() const
{
    if (ok())
        return "ok";
    std::string out = ioErrorName(error);
    if (!message.empty()) {
        out += ": ";
        out += message;
    }
    return out;
}

} // namespace bertprof
