/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to checksum
 * checkpoint payloads. Table-driven, incremental-friendly: feed
 * chunks by passing the previous return value as `seed`.
 */

#ifndef BERTPROF_IO_CRC32_H
#define BERTPROF_IO_CRC32_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace bertprof {

/** CRC-32 of `size` bytes, continuing from `seed` (0 to start). */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

/** CRC-32 of a whole string. */
inline std::uint32_t
crc32(const std::string &data)
{
    return crc32(data.data(), data.size());
}

} // namespace bertprof

#endif // BERTPROF_IO_CRC32_H
