// Raw POSIX I/O lives here by design: src/io is the one layer allowed
// to touch files directly (bplint rule unchecked-io), and ::write(2)
// without stdio buffering is what makes already-appended chunks
// survive a std::_Exit-style preemption.

#include "io/append_file.h"

#include <fcntl.h>
#include <unistd.h>

#include "runtime/fault_injection.h"

namespace bertprof {

AppendFile::~AppendFile()
{
    // Destructor has nowhere to surface a close failure; callers who
    // care must close() explicitly before destruction.
    // bplint: allow(must-check-io)
    close();
}

IoStatus
AppendFile::open(const std::string &path)
{
    // Reopening: the previous handle's fate cannot affect the new
    // file, and open() reports its own status.
    // bplint: allow(must-check-io)
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) {
        return IoStatus::failure(IoError::OpenFailed,
                                 "cannot open " + path +
                                     " for appending");
    }
    path_ = path;
    bytesWritten_ = 0;
    return IoStatus::success();
}

IoStatus
AppendFile::append(const void *data, std::size_t size)
{
    if (fd_ < 0) {
        return IoStatus::failure(IoError::OpenFailed,
                                 "append on a closed file");
    }
    const FaultKind fault = faultAt("io.write");
    if (fault == FaultKind::IoError) {
        return IoStatus::failure(
            IoError::Transient,
            "transient append failure injected for " + path_);
    }
    // A torn append models dying mid-chunk: half the bytes land and
    // the caller never sees success, so the reader's per-chunk CRC
    // rejects the tail while every sealed chunk stays replayable.
    const std::size_t to_write =
        fault == FaultKind::TornWrite ? size / 2 : size;
    const char *p = static_cast<const char *>(data);
    std::size_t done = 0;
    while (done < to_write) {
        const ::ssize_t n = ::write(fd_, p + done, to_write - done);
        if (n < 0) {
            return IoStatus::failure(IoError::WriteFailed,
                                     "write failed for " + path_);
        }
        done += static_cast<std::size_t>(n);
        bytesWritten_ += n;
    }
    if (fault == FaultKind::TornWrite) {
        return IoStatus::failure(IoError::WriteFailed,
                                 "torn append injected for " + path_ +
                                     " (chunk left truncated)");
    }
    return IoStatus::success();
}

IoStatus
AppendFile::sync()
{
    if (fd_ < 0) {
        return IoStatus::failure(IoError::OpenFailed,
                                 "sync on a closed file");
    }
    if (faultAt("io.commit") == FaultKind::TornWrite) {
        return IoStatus::failure(IoError::WriteFailed,
                                 "crash injected before fsync for " +
                                     path_);
    }
    if (::fsync(fd_) != 0) {
        return IoStatus::failure(IoError::WriteFailed,
                                 "fsync failed for " + path_);
    }
    return IoStatus::success();
}

IoStatus
AppendFile::close()
{
    if (fd_ < 0)
        return IoStatus::success();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) {
        return IoStatus::failure(IoError::WriteFailed,
                                 "close failed for " + path_);
    }
    return IoStatus::success();
}

} // namespace bertprof
