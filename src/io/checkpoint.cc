#include "io/checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "util/logging.h"

namespace fs = std::filesystem;

namespace bertprof {

namespace {

// Field type tags. A tag/name pair precedes every field so the reader
// can diagnose exactly where a stale or foreign payload diverges.
constexpr std::uint8_t kTagI64 = 1;
constexpr std::uint8_t kTagF32 = 2;
constexpr std::uint8_t kTagF64 = 3;
constexpr std::uint8_t kTagStr = 4;
constexpr std::uint8_t kTagTensor = 5;

const char *
tagName(std::uint8_t tag)
{
    switch (tag) {
    case kTagI64:
        return "i64";
    case kTagF32:
        return "f32";
    case kTagF64:
        return "f64";
    case kTagStr:
        return "str";
    case kTagTensor:
        return "tensor";
    default:
        return "?";
    }
}

} // namespace

void
StateWriter::i64(const std::string &name, std::int64_t v)
{
    writer_.u8(kTagI64);
    writer_.str(name);
    writer_.i64(v);
}

void
StateWriter::f32(const std::string &name, float v)
{
    writer_.u8(kTagF32);
    writer_.str(name);
    writer_.f32(v);
}

void
StateWriter::f64(const std::string &name, double v)
{
    writer_.u8(kTagF64);
    writer_.str(name);
    writer_.f64(v);
}

void
StateWriter::str(const std::string &name, const std::string &v)
{
    writer_.u8(kTagStr);
    writer_.str(name);
    writer_.str(v);
}

void
StateWriter::tensor(const std::string &name, const Tensor &t)
{
    writer_.u8(kTagTensor);
    writer_.str(name);
    const Shape &shape = t.shape();
    writer_.u32(static_cast<std::uint32_t>(shape.rank()));
    for (int d = 0; d < shape.rank(); ++d)
        writer_.i64(shape.dim(d));
    writer_.u8(t.dtype() == DType::F16 ? 1 : 0);
    writer_.bytes(t.data(),
                  static_cast<std::size_t>(t.numel()) * sizeof(float));
}

StateReader::StateReader(std::string payload)
    : reader_(std::move(payload))
{
}

void
StateReader::fail(IoError error, const std::string &message)
{
    if (status_.ok())
        status_ = IoStatus::failure(error, message);
}

bool
StateReader::readHeader(const std::string &name, std::uint8_t tag)
{
    if (!status_.ok())
        return false;
    const std::uint8_t got_tag = reader_.u8();
    const std::string got_name = reader_.str();
    if (reader_.failed()) {
        fail(IoError::BadFormat,
             "payload ended while expecting field '" + name + "'");
        return false;
    }
    if (got_tag != tag || got_name != name) {
        fail(IoError::BadFormat,
             "expected field '" + name + "' (" + tagName(tag) +
                 "), found '" + got_name + "' (" + tagName(got_tag) +
                 ")");
        return false;
    }
    return true;
}

bool
StateReader::i64(const std::string &name, std::int64_t &out)
{
    if (!readHeader(name, kTagI64))
        return false;
    out = reader_.i64();
    if (reader_.failed()) {
        fail(IoError::BadFormat, "truncated i64 field '" + name + "'");
        return false;
    }
    return true;
}

bool
StateReader::f32(const std::string &name, float &out)
{
    if (!readHeader(name, kTagF32))
        return false;
    out = reader_.f32();
    if (reader_.failed()) {
        fail(IoError::BadFormat, "truncated f32 field '" + name + "'");
        return false;
    }
    return true;
}

bool
StateReader::f64(const std::string &name, double &out)
{
    if (!readHeader(name, kTagF64))
        return false;
    out = reader_.f64();
    if (reader_.failed()) {
        fail(IoError::BadFormat, "truncated f64 field '" + name + "'");
        return false;
    }
    return true;
}

bool
StateReader::str(const std::string &name, std::string &out)
{
    if (!readHeader(name, kTagStr))
        return false;
    out = reader_.str();
    if (reader_.failed()) {
        fail(IoError::BadFormat, "truncated str field '" + name + "'");
        return false;
    }
    return true;
}

bool
StateReader::tensor(const std::string &name, Tensor &out)
{
    if (!readHeader(name, kTagTensor))
        return false;
    const std::uint32_t rank = reader_.u32();
    std::vector<std::int64_t> dims(rank);
    for (std::uint32_t d = 0; d < rank; ++d)
        dims[d] = reader_.i64();
    const std::uint8_t half = reader_.u8();
    if (reader_.failed()) {
        fail(IoError::BadFormat,
             "truncated tensor header for field '" + name + "'");
        return false;
    }
    const Shape &expect = out.shape();
    bool same = static_cast<int>(rank) == expect.rank();
    for (int d = 0; same && d < expect.rank(); ++d)
        same = dims[static_cast<std::size_t>(d)] == expect.dim(d);
    if (!same) {
        fail(IoError::BadFormat,
             "tensor field '" + name +
                 "' has a checkpointed shape incompatible with " +
                 out.toString());
        return false;
    }
    reader_.bytes(out.data(),
                  static_cast<std::size_t>(out.numel()) * sizeof(float));
    if (reader_.failed()) {
        fail(IoError::BadFormat,
             "truncated tensor data for field '" + name + "'");
        return false;
    }
    if (half != 0)
        out.castToHalfStorage();
    return true;
}

CheckpointManager::CheckpointManager(CheckpointManagerOptions options)
    : options_(std::move(options))
{
    BP_REQUIRE(!options_.dir.empty());
    BP_REQUIRE(options_.keepLast >= 1);
    BP_REQUIRE(options_.ioRetries >= 1);
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
}

std::string
CheckpointManager::pathForStep(std::int64_t step) const
{
    return options_.dir + "/ckpt-" + std::to_string(step) + ".bpck";
}

std::vector<std::int64_t>
CheckpointManager::listSteps() const
{
    std::vector<std::int64_t> steps;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(options_.dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("ckpt-", 0) != 0 ||
            name.size() <= 10 ||
            name.compare(name.size() - 5, 5, ".bpck") != 0) {
            continue;
        }
        const std::string digits = name.substr(5, name.size() - 10);
        char *end = nullptr;
        const long long step = std::strtoll(digits.c_str(), &end, 10);
        if (end != nullptr && *end == '\0')
            steps.push_back(step);
    }
    std::sort(steps.begin(), steps.end());
    return steps;
}

RetryPolicy
CheckpointManagerOptions::retryPolicy() const
{
    RetryPolicy policy;
    policy.attempts = ioRetries;
    policy.backoffMs = ioBackoffMs;
    policy.maxBackoffMs = ioMaxBackoffMs;
    policy.seed = ioRetrySeed;
    return policy;
}

IoStatus
CheckpointManager::save(std::int64_t step, const std::string &payload)
{
    const std::string path = pathForStep(step);
    const IoStatus status =
        withRetries(options_.retryPolicy(),
                    [&] { return writeFileAtomic(path, payload); });
    if (!status.ok())
        return status;

    // Prune beyond keepLast only after the new checkpoint is durable,
    // so a failed save never reduces the recovery options.
    const std::vector<std::int64_t> steps = listSteps();
    const std::size_t keep = static_cast<std::size_t>(options_.keepLast);
    if (steps.size() > keep) {
        for (std::size_t i = 0; i < steps.size() - keep; ++i) {
            std::error_code ec;
            fs::remove(pathForStep(steps[i]), ec);
        }
    }
    return status;
}

IoStatus
CheckpointManager::loadLatest(std::string &payloadOut,
                              std::int64_t &stepOut)
{
    const std::vector<std::int64_t> steps = listSteps();
    IoStatus last = IoStatus::failure(
        IoError::NotFound, "no checkpoint found in " + options_.dir);
    for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
        const std::string path = pathForStep(*it);
        const IoStatus status =
            withRetries(options_.retryPolicy(), [&] {
                return readFileValidated(path, payloadOut);
            });
        if (status.ok()) {
            stepOut = *it;
            return status;
        }
        BP_LOG(Warn) << "checkpoint " << path
                     << " unusable, falling back to an older one ("
                     << status.toString() << ")";
        last = status;
    }
    payloadOut.clear();
    return last;
}

} // namespace bertprof
