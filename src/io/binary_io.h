/**
 * @file
 * Little-endian binary serialization plus the crash-safe file
 * container every checkpoint rides in.
 *
 * Container layout (all integers little-endian):
 *
 *   u32  magic   0x314B5042 ("BPK1")
 *   u32  version format version of the payload
 *   u64  payload size in bytes
 *   u32  crc32   CRC-32 of the payload bytes
 *   ...  payload
 *
 * writeFileAtomic() follows the standard crash-safe protocol: write
 * to `<path>.tmp`, fflush + fsync, then rename(2) over `path` — a
 * reader never observes a half-written file under POSIX rename
 * atomicity, and a crash at any instant leaves either the old file or
 * the new one, never a blend. readFileValidated() checks magic,
 * version, length, and CRC before a single payload byte is trusted,
 * returning typed IoStatus errors instead of aborting.
 *
 * Fault-injection sites (runtime/fault_injection.h): `io.write`
 * (torn / ioerr), `io.commit` (torn = crash before rename), and
 * `io.read` (ioerr) — the hooks the robustness tests use to prove
 * the recovery paths.
 */

#ifndef BERTPROF_IO_BINARY_IO_H
#define BERTPROF_IO_BINARY_IO_H

#include <cstdint>
#include <functional>
#include <string>

#include "io/io_status.h"

namespace bertprof {

/** Growable little-endian binary buffer. */
class BinaryWriter
{
  public:
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    /** Exact bit pattern — round-trips are bitwise. */
    void f32(float v);
    /** Exact bit pattern — round-trips are bitwise. */
    void f64(double v);
    /** Length-prefixed (u32) byte string. */
    void str(const std::string &s);
    /** Raw bytes, no length prefix. */
    void bytes(const void *data, std::size_t size);

    const std::string &buffer() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * Sequential reader over an in-memory payload. The first underrun
 * latches failed(); every later read returns zero values, so callers
 * may decode a whole record and check once.
 */
class BinaryReader
{
  public:
    explicit BinaryReader(std::string data) : data_(std::move(data)) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    float f32();
    double f64();
    std::string str();
    /** Copy `size` raw bytes into `out`. */
    void bytes(void *out, std::size_t size);

    bool failed() const { return failed_; }
    std::size_t remaining() const { return data_.size() - pos_; }

  private:
    bool take(void *out, std::size_t size);

    std::string data_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/** Format version stamped into the container header. */
constexpr std::uint32_t kCheckpointFormatVersion = 1;

/**
 * Crash-safely replace `path` with header + payload (temp file,
 * flush, fsync, atomic rename). Returns typed errors; on failure the
 * previous contents of `path` are untouched.
 */
IoStatus writeFileAtomic(const std::string &path,
                         const std::string &payload,
                         std::uint32_t version = kCheckpointFormatVersion);

/**
 * Read and validate a container written by writeFileAtomic(),
 * leaving the payload in `payloadOut`. Magic, version, declared
 * length, and CRC are all checked first; any mismatch is a typed
 * error and `payloadOut` is left empty.
 */
IoStatus readFileValidated(const std::string &path,
                           std::string &payloadOut,
                           std::uint32_t version = kCheckpointFormatVersion);

/**
 * Checked whole-file text write for exporters (CSV, traces): builds
 * on the same error taxonomy but without the binary container or the
 * temp-file dance (reports are not crash-critical).
 */
IoStatus writeTextFile(const std::string &path, const std::string &content);

/**
 * Bounded retry-with-backoff policy for flaky storage. The delay
 * before retry i (1-based) is
 *
 *   min(backoffMs * 2^(i-1), maxBackoffMs) * (1 - jitter/2 + jitter*u)
 *
 * where u in [0, 1) is drawn from a splitmix64 stream keyed by
 * (seed, i) — deterministic and wall-clock-free, so two processes
 * started with different seeds decorrelate their retry storms while
 * any single run replays identically.
 */
struct RetryPolicy {
    /** Total tries, including the first (>= 1). */
    int attempts = 3;
    /** Base delay before the first retry, in milliseconds. */
    double backoffMs = 1.0;
    /** Cap on the exponential growth, in milliseconds. */
    double maxBackoffMs = 1000.0;
    /** Multiplicative jitter width in [0, 1]; 0 = pure exponential. */
    double jitter = 0.5;
    /** Seed for the deterministic jitter stream. */
    std::uint64_t seed = 0;
};

/**
 * Retry-attempt observer, installed by the telemetry layer (which
 * sits above io in the include DAG) so retries show up as the
 * `io.retry.attempts` counter without io depending on telemetry.
 * Called once per *retry* (not per first try) with count 1; nullptr
 * uninstalls. The installed sink must be thread-safe.
 */
using IoRetrySink = void (*)(std::int64_t retries);
void installIoRetrySink(IoRetrySink sink);

/**
 * Run `op` up to policy.attempts times, backing off per `policy`, as
 * long as it keeps failing with IoError::Transient. Any other outcome
 * (success or a permanent error) returns immediately. Each retry is
 * reported to the installed IoRetrySink, if any.
 */
IoStatus withRetries(const RetryPolicy &policy,
                     const std::function<IoStatus()> &op);

/** Legacy form: attempts + base backoff, defaults for the rest. */
IoStatus withRetries(int attempts, double backoffMs,
                     const std::function<IoStatus()> &op);

} // namespace bertprof

#endif // BERTPROF_IO_BINARY_IO_H
