// Raw POSIX I/O lives here by design: src/io is the one layer allowed
// to touch files directly (bplint rule unchecked-io).

#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "runtime/fault_injection.h"

namespace bertprof {

MappedFile::~MappedFile()
{
    close();
}

IoStatus
MappedFile::open(const std::string &path)
{
    close();
    if (faultAt("io.read") == FaultKind::IoError) {
        return IoStatus::failure(
            IoError::Transient,
            "transient mmap failure injected for " + path);
    }
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return IoStatus::failure(IoError::NotFound, "cannot open " + path);
    struct ::stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return IoStatus::failure(IoError::OpenFailed,
                                 "fstat failed for " + path);
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ == 0) {
        // mmap(2) rejects zero-length mappings; an empty trace is a
        // valid (if useless) container, reported as size() == 0.
        ::close(fd);
        data_ = nullptr;
        open_ = true;
        return IoStatus::success();
    }
    void *p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) {
        size_ = 0;
        return IoStatus::failure(IoError::OpenFailed,
                                 "mmap failed for " + path);
    }
    data_ = static_cast<const char *>(p);
    open_ = true;
    return IoStatus::success();
}

void
MappedFile::close()
{
    if (data_ != nullptr)
        ::munmap(const_cast<char *>(data_), size_);
    data_ = nullptr;
    size_ = 0;
    open_ = false;
}

} // namespace bertprof
