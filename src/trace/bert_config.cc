#include "trace/bert_config.h"

#include <sstream>

#include "util/logging.h"

namespace bertprof {

std::vector<ParamTensorDesc>
BertConfig::parameterTensors() const
{
    std::vector<ParamTensorDesc> params;
    auto add = [&](const std::string &name, std::int64_t numel,
                   int layer = -1) {
        params.push_back({name, numel, layer});
    };

    // Embedding layer.
    add("embeddings.token", vocabSize * dModel);
    add("embeddings.position", maxPositions * dModel);
    add("embeddings.segment", typeVocab * dModel);
    add("embeddings.ln.gamma", dModel);
    add("embeddings.ln.beta", dModel);

    // Transformer layers.
    for (int l = 0; l < numLayers; ++l) {
        std::ostringstream prefix;
        prefix << "encoder." << l << '.';
        const std::string p = prefix.str();
        add(p + "attn.wq", dModel * dModel, l);
        add(p + "attn.bq", dModel, l);
        add(p + "attn.wk", dModel * dModel, l);
        add(p + "attn.bk", dModel, l);
        add(p + "attn.wv", dModel * dModel, l);
        add(p + "attn.bv", dModel, l);
        add(p + "attn.wo", dModel * dModel, l);
        add(p + "attn.bo", dModel, l);
        add(p + "attn.ln.gamma", dModel, l);
        add(p + "attn.ln.beta", dModel, l);
        add(p + "fc1.w", dFf * dModel, l);
        add(p + "fc1.b", dFf, l);
        add(p + "fc2.w", dModel * dFf, l);
        add(p + "fc2.b", dModel, l);
        add(p + "fc.ln.gamma", dModel, l);
        add(p + "fc.ln.beta", dModel, l);
    }

    // Output heads depend on the task (fine-tuning replaces the
    // pre-training heads with a simpler one, Sec. 7).
    switch (taskHead) {
      case TaskHead::Pretrain:
        // Pooler + MLM transform + decoder bias (decoder weight is
        // tied to the token embedding) + NSP classifier.
        add("pooler.w", dModel * dModel);
        add("pooler.b", dModel);
        add("mlm.transform.w", dModel * dModel);
        add("mlm.transform.b", dModel);
        add("mlm.ln.gamma", dModel);
        add("mlm.ln.beta", dModel);
        add("mlm.decoder.bias", vocabSize);
        add("nsp.w", 2 * dModel);
        add("nsp.b", 2);
        break;
      case TaskHead::SequenceClassification:
        add("pooler.w", dModel * dModel);
        add("pooler.b", dModel);
        add("classifier.w", numClasses * dModel);
        add("classifier.b", numClasses);
        break;
      case TaskHead::SpanPrediction:
        add("qa.w", 2 * dModel);
        add("qa.b", 2);
        break;
    }
    return params;
}

std::int64_t
BertConfig::parameterCount() const
{
    std::int64_t total = 0;
    for (const auto &p : parameterTensors())
        total += p.numel;
    return total;
}

std::string
BertConfig::validate() const
{
    std::ostringstream os;
    if (numLayers <= 0) {
        os << "numLayers must be positive (got " << numLayers << ")";
    } else if (dModel <= 0 || dFf <= 0) {
        os << "hidden dims must be positive";
    } else if (numHeads <= 0 || dModel % numHeads != 0) {
        os << "numHeads (" << numHeads << ") must divide d_model ("
           << dModel << ")";
    } else if (batch <= 0 || seqLen <= 0) {
        os << "batch and seqLen must be positive";
    } else if (seqLen > maxPositions) {
        os << "seqLen (" << seqLen << ") exceeds maxPositions ("
           << maxPositions << ")";
    } else if (maxPredictions < 0 || maxPredictions > seqLen) {
        os << "maxPredictions (" << maxPredictions
           << ") must be in [0, seqLen]";
    } else if (vocabSize <= 4) {
        os << "vocabSize must exceed the special-token count";
    } else if (checkpointEvery < 0 ||
               (checkpointEvery > 0 &&
                numLayers % checkpointEvery != 0)) {
        os << "checkpointEvery (" << checkpointEvery
           << ") must divide numLayers (" << numLayers << ")";
    } else if (taskHead == TaskHead::SequenceClassification &&
               numClasses < 2) {
        os << "numClasses must be >= 2";
    } else if (gradAccumulationSteps < 1) {
        os << "gradAccumulationSteps must be >= 1";
    }
    return os.str();
}

std::string
BertConfig::tag() const
{
    std::ostringstream os;
    os << (seqLen == 512 ? "Ph2" : "Ph1") << "-B" << batch << "-"
       << (precision == Precision::Mixed ? "FP16" : "FP32");
    return os.str();
}

BertConfig
bertBase()
{
    BertConfig config;
    config.name = "bert-base";
    config.numLayers = 12;
    config.dModel = 768;
    config.numHeads = 12;
    config.dFf = 3072;
    return config;
}

BertConfig
bertLarge()
{
    BertConfig config;
    config.name = "bert-large";
    config.numLayers = 24;
    config.dModel = 1024;
    config.numHeads = 16;
    config.dFf = 4096;
    return config;
}

BertConfig
scalingC1()
{
    BertConfig config = bertLarge();
    config.name = "C1";
    config.dModel = 512;
    config.numHeads = 8;
    config.dFf = 2048;
    return config;
}

BertConfig
scalingC2()
{
    BertConfig config = bertLarge();
    config.name = "C2";
    return config;
}

BertConfig
scalingC3()
{
    BertConfig config = bertLarge();
    config.name = "C3";
    config.dModel = 2048;
    config.numHeads = 32;
    config.dFf = 8192;
    return config;
}

BertConfig
withPhase1(BertConfig config, std::int64_t batch)
{
    config.seqLen = 128;
    config.batch = batch;
    config.maxPredictions = 20;
    return config;
}

BertConfig
withPhase2(BertConfig config, std::int64_t batch)
{
    config.seqLen = 512;
    config.batch = batch;
    config.maxPredictions = 80;
    return config;
}

BertConfig
gpt2MediumLike()
{
    // GPT-2 Medium: 24 decoder layers, d=1024, h=16 — structurally a
    // BERT-Large with a causal mask and a pure-LM head.
    BertConfig config = bertLarge();
    config.name = "gpt2-medium-like";
    config.vocabSize = 50257;
    config.maxPositions = 1024;
    config.typeVocab = 1;
    config.seqLen = 1024;
    config.batch = 4;
    // Every position is a prediction target in causal LM.
    config.maxPredictions = config.seqLen;
    return config;
}

BertConfig
withSquadFineTune(BertConfig config, std::int64_t batch)
{
    config.seqLen = 384;
    config.batch = batch;
    config.taskHead = TaskHead::SpanPrediction;
    config.optimizer = OptimizerKind::Adam;
    return config;
}

BertConfig
withClassificationFineTune(BertConfig config, std::int64_t batch,
                           std::int64_t num_classes)
{
    config.seqLen = 128;
    config.batch = batch;
    config.taskHead = TaskHead::SequenceClassification;
    config.numClasses = num_classes;
    config.optimizer = OptimizerKind::Adam;
    return config;
}

} // namespace bertprof
