#include "trace/bert_trace_builder.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <sstream>

#include "util/logging.h"

namespace bertprof {

namespace {

/** Elements per chunk of a multi-tensor-apply optimizer kernel. */
constexpr std::int64_t kMultiTensorChunkElems = 1 << 24;

/** Append a (batched) GEMM op. */
void
emitGemm(OpTrace &trace, const BertConfig &cfg, std::string name,
         Phase phase, LayerScope scope, SubLayer sub, int layer,
         bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
         std::int64_t k, std::int64_t batch = 1)
{
    OpDesc op;
    op.name = std::move(name);
    op.kind = batch > 1 ? OpKind::BatchedGemm : OpKind::Gemm;
    op.phase = phase;
    op.scope = scope;
    op.sub = sub;
    op.layerIndex = layer;
    op.gemm = {trans_a, trans_b, m, n, k, batch};
    op.dtype = cfg.precision == Precision::Mixed ? DType::F16 : DType::F32;
    op.stats = gemmStats(m, n, k, batch, cfg.activationBytes());
    trace.add(std::move(op));
}

/** Append an element-wise / reduction / gather op. */
void
emitEw(OpTrace &trace, const BertConfig &cfg, std::string name, OpKind kind,
       Phase phase, LayerScope scope, SubLayer sub, int layer,
       std::int64_t numel, std::int64_t reads, std::int64_t writes,
       std::int64_t flops_per_elem, std::int64_t extra_bytes_read = 0,
       bool fp32_override = false)
{
    OpDesc op;
    op.name = std::move(name);
    op.kind = kind;
    op.phase = phase;
    op.scope = scope;
    op.sub = sub;
    op.layerIndex = layer;
    op.numel = numel;
    const bool fp16 = cfg.precision == Precision::Mixed && !fp32_override;
    op.dtype = fp16 ? DType::F16 : DType::F32;
    op.stats = elementwiseStats(numel, reads, writes, flops_per_elem,
                                fp16 ? 2 : 4);
    op.stats.bytesRead += extra_bytes_read;
    trace.add(std::move(op));
}

/** Name helper: "enc{l}.{suffix}". */
std::string
layerName(int layer, const std::string &suffix)
{
    std::ostringstream os;
    os << "enc" << layer << '.' << suffix;
    return os.str();
}

/**
 * One element-wise micro-op of an unfused optimizer implementation:
 * how many same-sized tensors it reads/writes and its per-element
 * arithmetic.
 */
struct OptimMicroOp {
    const char *name;
    int reads;
    int writes;
    int flops;
    bool reduction = false;
};

/** Eager (unfused) Adam as a sequence of out-of-place EW kernels. */
const OptimMicroOp kAdamUnfused[] = {
    {"wd_scale", 1, 1, 1},   {"wd_add", 2, 1, 1},
    {"m_scale", 1, 1, 1},    {"g_scale", 1, 1, 1},
    {"m_add", 2, 1, 1},      {"v_scale", 1, 1, 1},
    {"g_sq", 1, 1, 1},       {"g_sq_scale", 1, 1, 1},
    {"v_add", 2, 1, 1},      {"denom_sqrt", 1, 1, 1},
    {"denom_eps", 1, 1, 1},  {"upd_div", 2, 1, 1},
    {"upd_lr", 1, 1, 1},     {"w_sub", 2, 1, 1},
};

/** Eager (unfused) LAMB: Adam's direction plus trust-ratio norms. */
const OptimMicroOp kLambUnfused[] = {
    {"m_scale", 1, 1, 1},    {"g_scale", 1, 1, 1},
    {"m_add", 2, 1, 1},      {"v_scale", 1, 1, 1},
    {"g_sq", 1, 1, 1},       {"g_sq_scale", 1, 1, 1},
    {"v_add", 2, 1, 1},      {"denom_sqrt", 1, 1, 1},
    {"denom_eps", 1, 1, 1},  {"upd_div", 2, 1, 1},
    {"wd_scale", 1, 1, 1},   {"upd_wd", 2, 1, 1},
    {"w_norm", 1, 0, 2, true},
    {"u_norm", 1, 0, 2, true},
    {"upd_trust", 1, 1, 1},  {"w_sub", 2, 1, 1},
};

} // namespace

BertTraceBuilder::BertTraceBuilder(BertConfig config, TraceOptions options)
    : config_(std::move(config)), options_(options)
{
    BP_REQUIRE(config_.dModel % config_.numHeads == 0);
    BP_REQUIRE(config_.numLayers > 0);
    BP_REQUIRE(config_.batch > 0 && config_.seqLen > 0);
    BP_REQUIRE(config_.gradAccumulationSteps >= 1);
    if (config_.checkpointEvery > 0)
        BP_REQUIRE(config_.numLayers % config_.checkpointEvery == 0);
}

void
BertTraceBuilder::emitLayerNormFwd(OpTrace &trace, const std::string &name,
                                   int layer, std::int64_t rows,
                                   std::int64_t cols, Phase phase,
                                   LayerScope scope, SubLayer sub) const
{
    const std::int64_t numel = rows * cols;
    if (!options_.unfuseLayerNorm) {
        emitEw(trace, config_, name, OpKind::Reduction, phase, scope, sub,
               layer, numel, 1, 1, 6);
        return;
    }
    // Unfused LayerNorm (Fig. 12a): every intermediate round-trips
    // through memory.
    emitEw(trace, config_, name + ".mean", OpKind::Reduction, phase, scope,
           sub, layer, numel, 1, 0, 1);
    emitEw(trace, config_, name + ".center", OpKind::Elementwise, phase,
           scope, sub, layer, numel, 1, 1, 1);
    emitEw(trace, config_, name + ".square", OpKind::Elementwise, phase,
           scope, sub, layer, numel, 1, 1, 1);
    emitEw(trace, config_, name + ".var", OpKind::Reduction, phase, scope,
           sub, layer, numel, 1, 0, 1);
    emitEw(trace, config_, name + ".rstd_mul", OpKind::Elementwise, phase,
           scope, sub, layer, numel, 1, 1, 1);
    emitEw(trace, config_, name + ".gamma_mul", OpKind::Elementwise, phase,
           scope, sub, layer, numel, 1, 1, 1);
    emitEw(trace, config_, name + ".beta_add", OpKind::Elementwise, phase,
           scope, sub, layer, numel, 1, 1, 1);
}

void
BertTraceBuilder::emitDrRcLnFwd(OpTrace &trace, const std::string &prefix,
                                int layer, std::int64_t rows,
                                Phase phase) const
{
    const std::int64_t numel = rows * config_.dModel;
    if (options_.fuseDrRcLn) {
        emitEw(trace, config_, prefix + ".dr_rc_ln", OpKind::Reduction,
               phase, LayerScope::Transformer, SubLayer::DrRcLn, layer,
               numel, 2, 2, 8);
        return;
    }
    // Dropout reads the sub-layer output, writes output + mask.
    emitEw(trace, config_, prefix + ".dropout", OpKind::Elementwise, phase,
           LayerScope::Transformer, SubLayer::DrRcLn, layer, numel, 1, 2,
           2);
    // Residual connection adds the sub-layer input.
    emitEw(trace, config_, prefix + ".residual", OpKind::Elementwise, phase,
           LayerScope::Transformer, SubLayer::DrRcLn, layer, numel, 2, 1,
           1);
    emitLayerNormFwd(trace, prefix + ".ln", layer, rows, config_.dModel,
                     phase, LayerScope::Transformer, SubLayer::DrRcLn);
}

void
BertTraceBuilder::emitDrRcLnBwd(OpTrace &trace, const std::string &prefix,
                                int layer) const
{
    const std::int64_t numel = config_.tokens() * config_.dModel;
    if (options_.fuseDrRcLn) {
        emitEw(trace, config_, prefix + ".dr_rc_ln.bwd", OpKind::Reduction,
               Phase::Bwd, LayerScope::Transformer, SubLayer::DrRcLn, layer,
               numel, 3, 2, 10);
        return;
    }
    emitEw(trace, config_, prefix + ".ln.bwd", OpKind::Reduction, Phase::Bwd,
           LayerScope::Transformer, SubLayer::DrRcLn, layer, numel, 2, 1,
           9);
    emitEw(trace, config_, prefix + ".residual.bwd", OpKind::Elementwise,
           Phase::Bwd, LayerScope::Transformer, SubLayer::DrRcLn, layer,
           numel, 2, 1, 1);
    emitEw(trace, config_, prefix + ".dropout.bwd", OpKind::Elementwise,
           Phase::Bwd, LayerScope::Transformer, SubLayer::DrRcLn, layer,
           numel, 2, 1, 1);
}

void
BertTraceBuilder::emitEmbeddingFwd(OpTrace &trace) const
{
    const std::int64_t tokens = config_.tokens();
    const std::int64_t numel = tokens * config_.dModel;
    for (const char *table : {"token", "position", "segment"}) {
        emitEw(trace, config_, std::string("emb.") + table + ".gather",
               OpKind::Gather, Phase::Fwd, LayerScope::Embedding,
               SubLayer::EmbeddingOps, -1, numel, 1, 1, 0);
    }
    emitEw(trace, config_, "emb.add_pos", OpKind::Elementwise, Phase::Fwd,
           LayerScope::Embedding, SubLayer::EmbeddingOps, -1, numel, 2, 1,
           1);
    emitEw(trace, config_, "emb.add_seg", OpKind::Elementwise, Phase::Fwd,
           LayerScope::Embedding, SubLayer::EmbeddingOps, -1, numel, 2, 1,
           1);
    emitLayerNormFwd(trace, "emb.ln", -1, tokens, config_.dModel,
                     Phase::Fwd, LayerScope::Embedding,
                     SubLayer::EmbeddingOps);
    emitEw(trace, config_, "emb.dropout", OpKind::Elementwise, Phase::Fwd,
           LayerScope::Embedding, SubLayer::EmbeddingOps, -1, numel, 1, 2,
           2);
}

void
BertTraceBuilder::emitEmbeddingBwd(OpTrace &trace) const
{
    const std::int64_t tokens = config_.tokens();
    const std::int64_t numel = tokens * config_.dModel;
    emitEw(trace, config_, "emb.dropout.bwd", OpKind::Elementwise,
           Phase::Bwd, LayerScope::Embedding, SubLayer::EmbeddingOps, -1,
           numel, 2, 1, 1);
    emitEw(trace, config_, "emb.ln.bwd", OpKind::Reduction, Phase::Bwd,
           LayerScope::Embedding, SubLayer::EmbeddingOps, -1, numel, 2, 1,
           9);
    for (const char *table : {"token", "position", "segment"}) {
        emitEw(trace, config_, std::string("emb.") + table + ".scatter",
               OpKind::Gather, Phase::Bwd, LayerScope::Embedding,
               SubLayer::EmbeddingOps, -1, numel, 2, 1, 1);
    }
}

void
BertTraceBuilder::emitLayerFwd(OpTrace &trace, int layer, Phase phase) const
{
    const std::int64_t d = config_.dModel;
    const std::int64_t f = config_.dFf;
    const std::int64_t n = config_.seqLen;
    const std::int64_t t = config_.tokens();
    const std::int64_t dh = config_.headDim();
    const std::int64_t bh = config_.batch * config_.numHeads;
    const std::int64_t scores = bh * n * n;
    const LayerScope scope = LayerScope::Transformer;

    // -- Attention: linear projections (Table 2b "Linear", FWD) --
    if (options_.fuseQkvGemm) {
        emitGemm(trace, config_, layerName(layer, "attn.qkv.fwd"), phase,
                 scope, SubLayer::AttnLinear, layer, false, true, 3 * d, t,
                 d);
        emitEw(trace, config_, layerName(layer, "attn.qkv.bias"),
               OpKind::Elementwise, phase, scope, SubLayer::AttnLinear,
               layer, 3 * t * d, 1, 1, 1);
    } else {
        for (const char *which : {"q", "k", "v"}) {
            emitGemm(trace, config_,
                     layerName(layer, std::string("attn.") + which +
                               ".fwd"),
                     phase, scope, SubLayer::AttnLinear, layer, false, true,
                     d, t, d);
            emitEw(trace, config_,
                   layerName(layer, std::string("attn.") + which + ".bias"),
                   OpKind::Elementwise, phase, scope, SubLayer::AttnLinear,
                   layer, t * d, 1, 1, 1);
        }
    }

    // -- Attention scores (Table 2b "Attn. Score", FWD): B*h small
    //    GEMMs invoked as one batched-GEMM kernel --
    emitGemm(trace, config_, layerName(layer, "attn.score.fwd"), phase,
             scope, SubLayer::AttnBGemm, layer, false, true, n, n, dh, bh);

    // -- Scale + Mask + Dropout + Softmax on the score matrix --
    if (options_.fuseScaleMaskDrSm) {
        emitEw(trace, config_, layerName(layer, "attn.smds.fused"),
               OpKind::Reduction, phase, scope,
               SubLayer::AttnScaleMaskDrSm, layer, scores, 1, 2, 7,
               config_.batch * n * n * config_.activationBytes());
    } else {
        emitEw(trace, config_, layerName(layer, "attn.scale"),
               OpKind::Elementwise, phase, scope,
               SubLayer::AttnScaleMaskDrSm, layer, scores, 1, 1, 1);
        emitEw(trace, config_, layerName(layer, "attn.mask"),
               OpKind::Elementwise, phase, scope,
               SubLayer::AttnScaleMaskDrSm, layer, scores, 1, 1, 1,
               config_.batch * n * n * config_.activationBytes());
        emitEw(trace, config_, layerName(layer, "attn.softmax"),
               OpKind::Reduction, phase, scope,
               SubLayer::AttnScaleMaskDrSm, layer, scores, 1, 1, 4);
        emitEw(trace, config_, layerName(layer, "attn.dropout"),
               OpKind::Elementwise, phase, scope,
               SubLayer::AttnScaleMaskDrSm, layer, scores, 1, 2, 2);
    }

    // -- Attention output (Table 2b "Attn. O/p", FWD) --
    emitGemm(trace, config_, layerName(layer, "attn.context.fwd"), phase,
             scope, SubLayer::AttnBGemm, layer, false, false, dh, n, n, bh);

    // -- Output projection (another "Linear" GEMM) --
    emitGemm(trace, config_, layerName(layer, "attn.out.fwd"), phase, scope,
             SubLayer::AttnLinear, layer, false, true, d, t, d);
    emitEw(trace, config_, layerName(layer, "attn.out.bias"),
           OpKind::Elementwise, phase, scope, SubLayer::AttnLinear, layer,
           t * d, 1, 1, 1);

    emitDrRcLnFwd(trace, layerName(layer, "attn"), layer, t, phase);

    // -- Feed-forward: FC-1, GeLU, FC-2 (Table 2b "FC-1"/"FC-2") --
    emitGemm(trace, config_, layerName(layer, "fc1.fwd"), phase, scope,
             SubLayer::FcGemm, layer, false, true, f, t, d);
    emitEw(trace, config_, layerName(layer, "fc1.bias"),
           OpKind::Elementwise, phase, scope, SubLayer::FcGemm, layer,
           t * f, 1, 1, 1);

    if (options_.fuseGelu) {
        emitEw(trace, config_, layerName(layer, "gelu.fused"),
               OpKind::Elementwise, phase, scope, SubLayer::FcGelu, layer,
               t * f, 1, 1, 5);
    } else {
        // Eq. 1 as separate EW kernels: x/sqrt(2), erf, 1+, x*, *0.5.
        for (const char *step : {"div", "erf", "add", "mul", "scale"}) {
            emitEw(trace, config_,
                   layerName(layer, std::string("gelu.") + step),
                   OpKind::Elementwise, phase, scope, SubLayer::FcGelu,
                   layer, t * f, step == std::string("mul") ? 2 : 1, 1, 1);
        }
    }

    emitGemm(trace, config_, layerName(layer, "fc2.fwd"), phase, scope,
             SubLayer::FcGemm, layer, false, true, d, t, f);
    emitEw(trace, config_, layerName(layer, "fc2.bias"),
           OpKind::Elementwise, phase, scope, SubLayer::FcGemm, layer,
           t * d, 1, 1, 1);

    emitDrRcLnFwd(trace, layerName(layer, "fc"), layer, t, phase);
}

void
BertTraceBuilder::emitLayerBwd(OpTrace &trace, int layer) const
{
    const std::int64_t d = config_.dModel;
    const std::int64_t f = config_.dFf;
    const std::int64_t n = config_.seqLen;
    const std::int64_t t = config_.tokens();
    const std::int64_t dh = config_.headDim();
    const std::int64_t bh = config_.batch * config_.numHeads;
    const std::int64_t scores = bh * n * n;
    const LayerScope scope = LayerScope::Transformer;

    // Reverse of the forward order.
    emitDrRcLnBwd(trace, layerName(layer, "fc"), layer);

    // FC-2 (Table 2b BWD rows): dgrad f x T x d, wgrad f x d x T.
    emitEw(trace, config_, layerName(layer, "fc2.bias.bwd"),
           OpKind::Reduction, Phase::Bwd, scope, SubLayer::FcGemm, layer,
           t * d, 1, 0, 1);
    emitGemm(trace, config_, layerName(layer, "fc2.dgrad"), Phase::Bwd,
             scope, SubLayer::FcGemm, layer, false, false, f, t, d);
    emitGemm(trace, config_, layerName(layer, "fc2.wgrad"), Phase::Bwd,
             scope, SubLayer::FcGemm, layer, false, true, f, d, t);

    if (options_.fuseGelu) {
        emitEw(trace, config_, layerName(layer, "gelu.bwd.fused"),
               OpKind::Elementwise, Phase::Bwd, scope, SubLayer::FcGelu,
               layer, t * f, 2, 1, 8);
    } else {
        // Autograd of the 5 composed forward primitives: the CDF
        // recompute, the PDF term, and the product-rule combination
        // each round-trip through memory.
        emitEw(trace, config_, layerName(layer, "gelu.bwd.cdf"),
               OpKind::Elementwise, Phase::Bwd, scope, SubLayer::FcGelu,
               layer, t * f, 1, 1, 3);
        emitEw(trace, config_, layerName(layer, "gelu.bwd.pdf"),
               OpKind::Elementwise, Phase::Bwd, scope, SubLayer::FcGelu,
               layer, t * f, 1, 1, 3);
        emitEw(trace, config_, layerName(layer, "gelu.bwd.combine"),
               OpKind::Elementwise, Phase::Bwd, scope, SubLayer::FcGelu,
               layer, t * f, 3, 1, 3);
        emitEw(trace, config_, layerName(layer, "gelu.bwd.mul"),
               OpKind::Elementwise, Phase::Bwd, scope, SubLayer::FcGelu,
               layer, t * f, 2, 1, 1);
    }

    // FC-1: dgrad d x T x f, wgrad d x f x T.
    emitEw(trace, config_, layerName(layer, "fc1.bias.bwd"),
           OpKind::Reduction, Phase::Bwd, scope, SubLayer::FcGemm, layer,
           t * f, 1, 0, 1);
    emitGemm(trace, config_, layerName(layer, "fc1.dgrad"), Phase::Bwd,
             scope, SubLayer::FcGemm, layer, false, false, d, t, f);
    emitGemm(trace, config_, layerName(layer, "fc1.wgrad"), Phase::Bwd,
             scope, SubLayer::FcGemm, layer, false, true, d, f, t);

    emitDrRcLnBwd(trace, layerName(layer, "attn"), layer);

    // Output projection linear.
    emitEw(trace, config_, layerName(layer, "attn.out.bias.bwd"),
           OpKind::Reduction, Phase::Bwd, scope, SubLayer::AttnLinear,
           layer, t * d, 1, 0, 1);
    emitGemm(trace, config_, layerName(layer, "attn.out.dgrad"), Phase::Bwd,
             scope, SubLayer::AttnLinear, layer, false, false, d, t, d);
    emitGemm(trace, config_, layerName(layer, "attn.out.wgrad"), Phase::Bwd,
             scope, SubLayer::AttnLinear, layer, false, true, d, d, t);

    // Attention output B-GEMM grads (Table 2b "Attn. O/p" BWD rows).
    emitGemm(trace, config_, layerName(layer, "attn.context.dgrad_a"),
             Phase::Bwd, scope, SubLayer::AttnBGemm, layer, false, true, n,
             n, dh, bh);
    emitGemm(trace, config_, layerName(layer, "attn.context.dgrad_v"),
             Phase::Bwd, scope, SubLayer::AttnBGemm, layer, true, false, dh,
             n, n, bh);

    // Scale+Mask+DR+SM backward.
    if (options_.fuseScaleMaskDrSm) {
        emitEw(trace, config_, layerName(layer, "attn.smds.bwd.fused"),
               OpKind::Reduction, Phase::Bwd, scope,
               SubLayer::AttnScaleMaskDrSm, layer, scores, 3, 1, 7);
    } else {
        emitEw(trace, config_, layerName(layer, "attn.dropout.bwd"),
               OpKind::Elementwise, Phase::Bwd, scope,
               SubLayer::AttnScaleMaskDrSm, layer, scores, 2, 1, 1);
        emitEw(trace, config_, layerName(layer, "attn.softmax.bwd"),
               OpKind::Reduction, Phase::Bwd, scope,
               SubLayer::AttnScaleMaskDrSm, layer, scores, 2, 1, 4);
        emitEw(trace, config_, layerName(layer, "attn.scale.bwd"),
               OpKind::Elementwise, Phase::Bwd, scope,
               SubLayer::AttnScaleMaskDrSm, layer, scores, 1, 1, 1);
    }

    // Attention score B-GEMM grads (Table 2b "Attn. Score" BWD rows).
    emitGemm(trace, config_, layerName(layer, "attn.score.dgrad_q"),
             Phase::Bwd, scope, SubLayer::AttnBGemm, layer, false, false, n,
             dh, n, bh);
    emitGemm(trace, config_, layerName(layer, "attn.score.dgrad_k"),
             Phase::Bwd, scope, SubLayer::AttnBGemm, layer, true, false, dh,
             n, n, bh);

    // Q/K/V projections.
    if (options_.fuseQkvGemm) {
        emitEw(trace, config_, layerName(layer, "attn.qkv.bias.bwd"),
               OpKind::Reduction, Phase::Bwd, scope, SubLayer::AttnLinear,
               layer, 3 * t * d, 1, 0, 1);
        emitGemm(trace, config_, layerName(layer, "attn.qkv.dgrad"),
                 Phase::Bwd, scope, SubLayer::AttnLinear, layer, false,
                 false, d, t, 3 * d);
        emitGemm(trace, config_, layerName(layer, "attn.qkv.wgrad"),
                 Phase::Bwd, scope, SubLayer::AttnLinear, layer, false,
                 true, 3 * d, d, t);
    } else {
        for (const char *which : {"v", "k", "q"}) {
            const std::string base = std::string("attn.") + which;
            emitEw(trace, config_, layerName(layer, base + ".bias.bwd"),
                   OpKind::Reduction, Phase::Bwd, scope,
                   SubLayer::AttnLinear, layer, t * d, 1, 0, 1);
            emitGemm(trace, config_, layerName(layer, base + ".dgrad"),
                     Phase::Bwd, scope, SubLayer::AttnLinear, layer, false,
                     false, d, t, d);
            emitGemm(trace, config_, layerName(layer, base + ".wgrad"),
                     Phase::Bwd, scope, SubLayer::AttnLinear, layer, false,
                     true, d, d, t);
        }
    }
}

void
BertTraceBuilder::emitOutputFwd(OpTrace &trace) const
{
    const std::int64_t d = config_.dModel;
    const std::int64_t v = config_.vocabSize;
    const std::int64_t p = config_.maskedTokens();
    const std::int64_t b = config_.batch;
    const std::int64_t t = config_.tokens();
    const LayerScope scope = LayerScope::Output;
    const SubLayer sub = SubLayer::OutputOps;

    // Fine-tuning heads (Sec. 7) are far simpler than pre-training's.
    if (config_.taskHead == TaskHead::SequenceClassification) {
        emitGemm(trace, config_, "pooler.fwd", Phase::Fwd, scope, sub, -1,
                 false, true, d, b, d);
        emitEw(trace, config_, "pooler.tanh", OpKind::Elementwise,
               Phase::Fwd, scope, sub, -1, b * d, 1, 1, 4);
        emitGemm(trace, config_, "classifier.fwd", Phase::Fwd, scope, sub,
                 -1, false, true, config_.numClasses, b, d);
        emitEw(trace, config_, "classifier.loss", OpKind::Reduction,
               Phase::Fwd, scope, sub, -1, b * config_.numClasses, 1, 0,
               6);
        return;
    }
    if (config_.taskHead == TaskHead::SpanPrediction) {
        emitGemm(trace, config_, "qa.fwd", Phase::Fwd, scope, sub, -1,
                 false, true, 2, t, d);
        emitEw(trace, config_, "qa.loss", OpKind::Reduction, Phase::Fwd,
               scope, sub, -1, t * 2, 1, 0, 6);
        return;
    }

    // Masked-LM head: gather masked positions (or keep every
    // position, per options), transform, decode.
    const std::int64_t rows = options_.denseMlmLogits ? t : p;
    if (!options_.denseMlmLogits) {
        emitEw(trace, config_, "mlm.gather", OpKind::Gather, Phase::Fwd,
               scope, sub, -1, p * d, 1, 1, 0);
    }
    emitGemm(trace, config_, "mlm.transform.fwd", Phase::Fwd, scope, sub,
             -1, false, true, d, rows, d);
    emitEw(trace, config_, "mlm.transform.bias", OpKind::Elementwise,
           Phase::Fwd, scope, sub, -1, rows * d, 1, 1, 1);
    emitEw(trace, config_, "mlm.gelu", OpKind::Elementwise, Phase::Fwd,
           scope, sub, -1, rows * d, 1, 1, 5);
    emitEw(trace, config_, "mlm.ln", OpKind::Reduction, Phase::Fwd, scope,
           sub, -1, rows * d, 1, 1, 6);
    emitGemm(trace, config_, "mlm.decoder.fwd", Phase::Fwd, scope, sub, -1,
             false, true, v, rows, d);
    emitEw(trace, config_, "mlm.decoder.bias", OpKind::Elementwise,
           Phase::Fwd, scope, sub, -1, rows * v, 1, 1, 1);
    emitEw(trace, config_, "mlm.loss", OpKind::Reduction, Phase::Fwd, scope,
           sub, -1, rows * v, 1, 0, 6);

    // Next-sentence-prediction head on the pooled [CLS] token.
    emitGemm(trace, config_, "pooler.fwd", Phase::Fwd, scope, sub, -1,
             false, true, d, b, d);
    emitEw(trace, config_, "pooler.tanh", OpKind::Elementwise, Phase::Fwd,
           scope, sub, -1, b * d, 1, 1, 4);
    emitGemm(trace, config_, "nsp.fwd", Phase::Fwd, scope, sub, -1, false,
             true, 2, b, d);
    emitEw(trace, config_, "nsp.loss", OpKind::Reduction, Phase::Fwd, scope,
           sub, -1, b * 2, 1, 0, 6);
}

void
BertTraceBuilder::emitOutputBwd(OpTrace &trace) const
{
    const std::int64_t d = config_.dModel;
    const std::int64_t v = config_.vocabSize;
    const std::int64_t p = config_.maskedTokens();
    const std::int64_t b = config_.batch;
    const std::int64_t t = config_.tokens();
    const LayerScope scope = LayerScope::Output;
    const SubLayer sub = SubLayer::OutputOps;

    if (config_.taskHead == TaskHead::SequenceClassification) {
        emitEw(trace, config_, "classifier.loss.bwd", OpKind::Elementwise,
               Phase::Bwd, scope, sub, -1, b * config_.numClasses, 1, 1,
               2);
        emitGemm(trace, config_, "classifier.dgrad", Phase::Bwd, scope,
                 sub, -1, false, false, d, b, config_.numClasses);
        emitGemm(trace, config_, "classifier.wgrad", Phase::Bwd, scope,
                 sub, -1, false, true, config_.numClasses, d, b);
        emitEw(trace, config_, "pooler.tanh.bwd", OpKind::Elementwise,
               Phase::Bwd, scope, sub, -1, b * d, 2, 1, 3);
        emitGemm(trace, config_, "pooler.dgrad", Phase::Bwd, scope, sub,
                 -1, false, false, d, b, d);
        emitGemm(trace, config_, "pooler.wgrad", Phase::Bwd, scope, sub,
                 -1, false, true, d, d, b);
        return;
    }
    if (config_.taskHead == TaskHead::SpanPrediction) {
        emitEw(trace, config_, "qa.loss.bwd", OpKind::Elementwise,
               Phase::Bwd, scope, sub, -1, t * 2, 1, 1, 2);
        emitGemm(trace, config_, "qa.dgrad", Phase::Bwd, scope, sub, -1,
                 false, false, d, t, 2);
        emitGemm(trace, config_, "qa.wgrad", Phase::Bwd, scope, sub, -1,
                 false, true, 2, d, t);
        return;
    }

    // NSP head backward.
    emitEw(trace, config_, "nsp.loss.bwd", OpKind::Elementwise, Phase::Bwd,
           scope, sub, -1, b * 2, 1, 1, 2);
    emitGemm(trace, config_, "nsp.dgrad", Phase::Bwd, scope, sub, -1, false,
             false, d, b, 2);
    emitGemm(trace, config_, "nsp.wgrad", Phase::Bwd, scope, sub, -1, false,
             true, 2, d, b);
    emitEw(trace, config_, "pooler.tanh.bwd", OpKind::Elementwise,
           Phase::Bwd, scope, sub, -1, b * d, 2, 1, 3);
    emitGemm(trace, config_, "pooler.dgrad", Phase::Bwd, scope, sub, -1,
             false, false, d, b, d);
    emitGemm(trace, config_, "pooler.wgrad", Phase::Bwd, scope, sub, -1,
             false, true, d, d, b);

    // Masked-LM head backward.
    const std::int64_t rows = options_.denseMlmLogits ? t : p;
    emitEw(trace, config_, "mlm.loss.bwd", OpKind::Elementwise, Phase::Bwd,
           scope, sub, -1, rows * v, 1, 1, 2);
    emitEw(trace, config_, "mlm.decoder.bias.bwd", OpKind::Reduction,
           Phase::Bwd, scope, sub, -1, rows * v, 1, 0, 1);
    emitGemm(trace, config_, "mlm.decoder.dgrad", Phase::Bwd, scope, sub,
             -1, false, false, d, rows, v);
    emitGemm(trace, config_, "mlm.decoder.wgrad", Phase::Bwd, scope, sub,
             -1, false, true, v, d, rows);
    emitEw(trace, config_, "mlm.ln.bwd", OpKind::Reduction, Phase::Bwd,
           scope, sub, -1, rows * d, 2, 1, 9);
    emitEw(trace, config_, "mlm.gelu.bwd", OpKind::Elementwise, Phase::Bwd,
           scope, sub, -1, rows * d, 2, 1, 8);
    emitEw(trace, config_, "mlm.transform.bias.bwd", OpKind::Reduction,
           Phase::Bwd, scope, sub, -1, rows * d, 1, 0, 1);
    emitGemm(trace, config_, "mlm.transform.dgrad", Phase::Bwd, scope, sub,
             -1, false, false, d, rows, d);
    emitGemm(trace, config_, "mlm.transform.wgrad", Phase::Bwd, scope, sub,
             -1, false, true, d, d, rows);
    if (!options_.denseMlmLogits) {
        emitEw(trace, config_, "mlm.scatter", OpKind::Gather, Phase::Bwd,
               scope, sub, -1, p * d, 2, 1, 1);
    }
}

void
BertTraceBuilder::emitOptimizer(OpTrace &trace) const
{
    if (config_.optimizer == OptimizerKind::Sgd) {
        for (const auto &param : config_.parameterTensors()) {
            emitEw(trace, config_, param.name + ".sgd", OpKind::Elementwise,
                   Phase::Update, LayerScope::Optimizer,
                   SubLayer::LambStage2, param.layerIndex, param.numel, 2,
                   1, 2, 0, /*fp32_override=*/true);
        }
        return;
    }

    const bool is_lamb = config_.optimizer == OptimizerKind::Lamb;
    const auto params = config_.parameterTensors();

    // LAMB first reduces the global L2 norm over every gradient,
    // serializing the update against the entire backprop (Sec. 3.2.3).
    if (is_lamb) {
        emitEw(trace, config_, "opt.grad_l2_norm", OpKind::Reduction,
               Phase::Update, LayerScope::Optimizer, SubLayer::GradNorm, -1,
               config_.parameterCount(), 1, 0, 2, 0,
               /*fp32_override=*/true);
    }

    switch (options_.optimizerFusion) {
      case OptimizerFusion::Unfused: {
        const OptimMicroOp *micro_ops =
            is_lamb ? kLambUnfused : kAdamUnfused;
        const std::size_t count = is_lamb
                                      ? std::size(kLambUnfused)
                                      : std::size(kAdamUnfused);
        for (const auto &param : params) {
            for (std::size_t i = 0; i < count; ++i) {
                const auto &mop = micro_ops[i];
                emitEw(trace, config_,
                       param.name + ".opt." + mop.name,
                       mop.reduction ? OpKind::Reduction
                                     : OpKind::Elementwise,
                       Phase::Update, LayerScope::Optimizer,
                       i < count / 2 ? SubLayer::LambStage1
                                     : SubLayer::LambStage2,
                       param.layerIndex, param.numel, mop.reads,
                       mop.writes, mop.flops, 0, /*fp32_override=*/true);
            }
        }
        break;
      }
      case OptimizerFusion::PerTensorStages: {
        // The paper's default [62]: two fused kernels per tensor.
        // Stage 1 reads w, g, m, v (4x model size) and writes m, v,
        // and the update direction; stage 2 applies the update.
        for (const auto &param : params) {
            emitEw(trace, config_, param.name + ".opt.stage1",
                   OpKind::Elementwise, Phase::Update,
                   LayerScope::Optimizer, SubLayer::LambStage1,
                   param.layerIndex, param.numel, 4, 3, is_lamb ? 14 : 12,
                   0, /*fp32_override=*/true);
            emitEw(trace, config_, param.name + ".opt.stage2",
                   OpKind::Elementwise, Phase::Update,
                   LayerScope::Optimizer, SubLayer::LambStage2,
                   param.layerIndex, param.numel, 2, 1, 2, 0,
                   /*fp32_override=*/true);
        }
        break;
      }
      case OptimizerFusion::MultiTensor: {
        // Apex-style multi-tensor apply: the whole model is processed
        // in large chunks regardless of tensor boundaries.
        const std::int64_t total = config_.parameterCount();
        std::int64_t remaining = total;
        int chunk_index = 0;
        while (remaining > 0) {
            const std::int64_t elems =
                std::min(remaining, kMultiTensorChunkElems);
            std::ostringstream name;
            name << "opt.multi_tensor.chunk" << chunk_index++;
            if (is_lamb) {
                emitEw(trace, config_, name.str() + ".stage1",
                       OpKind::Elementwise, Phase::Update,
                       LayerScope::Optimizer, SubLayer::LambStage1, -1,
                       elems, 4, 3, 14, 0, /*fp32_override=*/true);
                emitEw(trace, config_, name.str() + ".stage2",
                       OpKind::Elementwise, Phase::Update,
                       LayerScope::Optimizer, SubLayer::LambStage2, -1,
                       elems, 2, 1, 2, 0, /*fp32_override=*/true);
            } else {
                emitEw(trace, config_, name.str(), OpKind::Elementwise,
                       Phase::Update, LayerScope::Optimizer,
                       SubLayer::LambStage1, -1, elems, 4, 3, 12, 0,
                       /*fp32_override=*/true);
            }
            remaining -= elems;
        }
        break;
      }
    }
}

OpTrace
BertTraceBuilder::buildForward() const
{
    OpTrace trace;
    emitEmbeddingFwd(trace);
    for (int l = 0; l < config_.numLayers; ++l)
        emitLayerFwd(trace, l, Phase::Fwd);
    emitOutputFwd(trace);
    return trace;
}

OpTrace
BertTraceBuilder::buildBackward() const
{
    OpTrace trace;
    emitOutputBwd(trace);
    if (config_.checkpointEvery > 0) {
        // Activation checkpointing (Sec. 4): activations are saved
        // only at segment boundaries; before backpropagating a
        // segment its forward is re-executed from the checkpoint.
        const int seg = config_.checkpointEvery;
        for (int start = config_.numLayers - seg; start >= 0;
             start -= seg) {
            for (int l = start; l < start + seg; ++l)
                emitLayerFwd(trace, l, Phase::Recompute);
            for (int l = start + seg - 1; l >= start; --l)
                emitLayerBwd(trace, l);
        }
    } else {
        for (int l = config_.numLayers - 1; l >= 0; --l)
            emitLayerBwd(trace, l);
    }
    emitEmbeddingBwd(trace);
    return trace;
}

OpTrace
BertTraceBuilder::buildUpdate() const
{
    OpTrace trace;
    emitOptimizer(trace);
    return trace;
}

OpTrace
BertTraceBuilder::buildIteration() const
{
    OpTrace trace;
    for (int micro = 0; micro < config_.gradAccumulationSteps; ++micro) {
        trace.append(buildForward());
        trace.append(buildBackward());
    }
    trace.append(buildUpdate());
    return trace;
}

OpTrace
BertTraceBuilder::buildInference() const
{
    // Inference skips dropout and the training-only output heads but
    // keeps the same GEMM manifestations (Sec. 7 of the paper).
    BertConfig cfg = config_;
    BertTraceBuilder fwd_only(cfg, options_);
    OpTrace full = fwd_only.buildForward();
    OpTrace trace;
    for (auto &op : full.ops) {
        if (op.name.find("dropout") != std::string::npos)
            continue;
        if (op.name.find(".loss") != std::string::npos)
            continue;
        trace.add(op);
    }
    return trace;
}

} // namespace bertprof
