/**
 * @file
 * BertConfig: the hyperparameters of Table 2a plus training options,
 * with the paper's named presets (BERT Base/Large; the C1/C2/C3
 * layer-size sweep of Fig. 9), and the enumeration of every parameter
 * tensor in the model (which drives LAMB kernel counts and sizes).
 */

#ifndef BERTPROF_TRACE_BERT_CONFIG_H
#define BERTPROF_TRACE_BERT_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/taxonomy.h"

namespace bertprof {

/** Which optimizer the update phase runs. */
enum class OptimizerKind {
    Lamb,
    Adam,
    Sgd,
};

/** Training numeric precision per the paper's FP32 / MP settings. */
enum class Precision {
    FP32,  ///< everything in FP32
    Mixed, ///< FWD/BWD in FP16, optimizer state and update in FP32
};

/**
 * Which output head sits on the encoder (Sec. 7: fine-tuning swaps
 * the pre-training heads for a task head, usually a simpler one).
 */
enum class TaskHead {
    Pretrain,               ///< masked-LM + next-sentence prediction
    SequenceClassification, ///< pooler + classifier (GLUE-style)
    SpanPrediction,         ///< per-token start/end logits (SQuAD)
};

/** One named parameter tensor of the model. */
struct ParamTensorDesc {
    std::string name;
    std::int64_t numel = 0;
    /** Transformer layer index, or -1 for embeddings/output. */
    int layerIndex = -1;
};

/** Hyperparameters (Table 2a) and training options for one run. */
struct BertConfig {
    std::string name = "bert";

    // -- Model architecture --
    int numLayers = 24;          ///< N
    std::int64_t dModel = 1024;  ///< d_model (hidden dim)
    int numHeads = 16;           ///< h
    std::int64_t dFf = 4096;     ///< d_ff (intermediate dim)
    std::int64_t vocabSize = 30522;
    std::int64_t maxPositions = 512;
    std::int64_t typeVocab = 2;

    // -- Input size --
    std::int64_t batch = 32;     ///< B (mini-batch)
    std::int64_t seqLen = 128;   ///< n (sequence length)
    /** Masked-LM predictions per sequence (BERT uses ~15% of n). */
    std::int64_t maxPredictions = 20;

    // -- Training options --
    Precision precision = Precision::FP32;
    OptimizerKind optimizer = OptimizerKind::Lamb;
    /** Recompute activations every `checkpointEvery` layers (0=off). */
    int checkpointEvery = 0;
    /** Output head (pre-training vs fine-tuning tasks). */
    TaskHead taskHead = TaskHead::Pretrain;
    /** Class count for SequenceClassification heads. */
    std::int64_t numClasses = 2;
    /**
     * Micro-batches accumulated per optimizer step (Sec. 2.4: LAMB
     * "updates model weights once every (few) iteration(s)"). The
     * iteration trace contains this many FWD+BWD passes per update.
     */
    int gradAccumulationSteps = 1;

    /** d_model / h. */
    std::int64_t headDim() const { return dModel / numHeads; }

    /** Tokens per iteration: B * n. */
    std::int64_t tokens() const { return batch * seqLen; }

    /** Masked positions per iteration: maxPredictions * B. */
    std::int64_t maskedTokens() const { return maxPredictions * batch; }

    /** Bytes per activation/weight element in FWD/BWD. */
    std::int64_t activationBytes() const
    {
        return precision == Precision::Mixed ? 2 : 4;
    }

    /** Total trainable parameter count. */
    std::int64_t parameterCount() const;

    /** Every parameter tensor, in model order. */
    std::vector<ParamTensorDesc> parameterTensors() const;

    /** Short config tag like "Ph1-B32-FP32" (Fig. 3 labels). */
    std::string tag() const;

    /**
     * Check the configuration for inconsistencies; returns an empty
     * string if valid, else a human-readable description of the
     * first problem (heads not dividing d_model, sequence longer
     * than the position table, bad checkpoint interval, ...).
     */
    std::string validate() const;
};

/** BERT Base: N=12, d=768, h=12, d_ff=3072. */
BertConfig bertBase();

/** BERT Large: N=24, d=1024, h=16, d_ff=4096 (the paper's focus). */
BertConfig bertLarge();

/** Fig. 9 C1: half BERT-Large width (d=512, d_ff=2048, h=8). */
BertConfig scalingC1();

/** Fig. 9 C2: BERT-Large width. */
BertConfig scalingC2();

/** Fig. 9 C3: Megatron-like 2x BERT-Large width (d=2048, d_ff=8192). */
BertConfig scalingC3();

/** Pre-training Phase-1 input shape: n=128 with the given B. */
BertConfig withPhase1(BertConfig config, std::int64_t batch = 32);

/** Pre-training Phase-2 input shape: n=512 with the given B. */
BertConfig withPhase2(BertConfig config, std::int64_t batch = 4);

/**
 * SQuAD-style fine-tuning setup (Sec. 7): n=384, span-prediction
 * head, Adam optimizer.
 */
BertConfig withSquadFineTune(BertConfig config, std::int64_t batch = 8);

/** GLUE-style fine-tuning: classification head, Adam optimizer. */
BertConfig withClassificationFineTune(BertConfig config,
                                      std::int64_t batch = 16,
                                      std::int64_t num_classes = 2);

/**
 * GPT-2-Medium-like decoder configuration (Sec. 2.3: decoders match
 * encoders during training — the causal mask only zeroes matrix
 * elements, so the kernel trace is identical in shape).
 */
BertConfig gpt2MediumLike();

} // namespace bertprof

#endif // BERTPROF_TRACE_BERT_CONFIG_H
