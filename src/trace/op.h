/**
 * @file
 * OpDesc and OpTrace: the architecture-agnostic record of every kernel
 * in a BERT training iteration. An OpDesc carries exactly what the
 * paper's methodology needs — manifestation (GEMM vs element-wise vs
 * reduction), size (GEMM dims / element counts), precision, and the
 * FLOP/byte accounting that determines arithmetic intensity. Device-
 * specific cost comes later (src/perf), so a single trace can be
 * evaluated against any device model.
 */

#ifndef BERTPROF_TRACE_OP_H
#define BERTPROF_TRACE_OP_H

#include <cstdint>
#include <string>
#include <vector>

#include "ops/kernel_stats.h"
#include "tensor/tensor.h"
#include "trace/taxonomy.h"

namespace bertprof {

/** Dimensions of a (possibly batched, possibly transposed) GEMM. */
struct GemmDims {
    bool transA = false;
    bool transB = false;
    std::int64_t m = 0;
    std::int64_t n = 0;
    std::int64_t k = 0;
    std::int64_t batch = 1;

    /** FLOPs of the batched GEMM (2*M*N*K*batch). */
    std::int64_t flops() const { return 2 * m * n * k * batch; }

    /** Label in the paper's Fig. 6 format: "T,N,M,N,K,[batch]". */
    std::string label() const;
};

/** One kernel invocation in the iteration trace. */
struct OpDesc {
    /** Human-readable kernel name, e.g. "linear_q.fwd". */
    std::string name;
    /** What kind of kernel this is (selects the cost model). */
    OpKind kind = OpKind::Elementwise;
    /** Training phase. */
    Phase phase = Phase::Fwd;
    /** Top-level scope for Fig. 3-style breakdowns. */
    LayerScope scope = LayerScope::Transformer;
    /** Sub-layer group for Fig. 4-style breakdowns. */
    SubLayer sub = SubLayer::Other;
    /** Transformer layer index, or -1 when not applicable. */
    int layerIndex = -1;
    /** GEMM dims; only meaningful for Gemm/BatchedGemm kinds. */
    GemmDims gemm;
    /** Element count for EW/reduction kernels. */
    std::int64_t numel = 0;
    /** Storage precision the kernel operates at. */
    DType dtype = DType::F32;
    /** FLOP/byte accounting. */
    KernelStats stats;
    /** Bytes moved over the network (Comm kind only). */
    std::int64_t commBytes = 0;

    /** Arithmetic intensity (FLOP/byte). */
    double opsPerByte() const { return stats.opsPerByte(); }
};

/** An ordered sequence of kernels forming one training iteration. */
struct OpTrace {
    std::vector<OpDesc> ops;

    /** Number of kernels. */
    std::size_t size() const { return ops.size(); }

    /** Sum of FLOPs over all kernels. */
    std::int64_t totalFlops() const;

    /** Sum of bytes moved over all kernels. */
    std::int64_t totalBytes() const;

    /** Append an op. */
    void add(OpDesc op) { ops.push_back(std::move(op)); }

    /** Append every op of another trace. */
    void append(const OpTrace &other);

    /** Kernels matching a predicate. */
    template <typename Pred>
    std::vector<const OpDesc *>
    select(Pred pred) const
    {
        std::vector<const OpDesc *> out;
        for (const auto &op : ops)
            if (pred(op))
                out.push_back(&op);
        return out;
    }
};

} // namespace bertprof

#endif // BERTPROF_TRACE_OP_H
