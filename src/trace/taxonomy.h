/**
 * @file
 * The breakdown taxonomy of the paper: every kernel in a BERT
 * training iteration is tagged with a training phase, a top-level
 * layer scope (Fig. 3's categories), and a transformer sub-layer
 * group (Fig. 4's categories). Both the CPU profiler and the
 * analytical device model aggregate along these axes, so the figures
 * they produce are directly comparable.
 */

#ifndef BERTPROF_TRACE_TAXONOMY_H
#define BERTPROF_TRACE_TAXONOMY_H

namespace bertprof {

/** Which part of a training iteration a kernel belongs to. */
enum class Phase {
    Fwd,       ///< forward pass
    Bwd,       ///< backprop (activation + weight gradients)
    Recompute, ///< forward recomputation under activation checkpointing
    Update,    ///< optimizer (LAMB/Adam) weight update
    Comm,      ///< inter-device communication (AllReduce)
};

/** Top-level layer scope: the categories of the paper's Fig. 3. */
enum class LayerScope {
    Embedding,   ///< input embedding layer
    Transformer, ///< the N transformer encoder layers
    Output,      ///< MLM + NSP output/classification layers
    Optimizer,   ///< LAMB / Adam update kernels
    Network,     ///< communication (multi-device only)
};

/**
 * Sub-layer groups within (and around) a transformer layer: the
 * categories of the paper's Fig. 4 plus the optimizer stages of
 * Fig. 7.
 */
enum class SubLayer {
    AttnLinear,       ///< Q/K/V/output linear-projection GEMMs
    AttnBGemm,        ///< attention score + attention output B-GEMMs
    AttnScaleMaskDrSm,///< scale, mask, dropout, softmax EW kernels
    FcGemm,           ///< FC-1 / FC-2 GEMMs (+ their grad GEMMs)
    FcGelu,           ///< GeLU activation kernels
    DrRcLn,           ///< dropout + residual connection + layernorm
    EmbeddingOps,     ///< embedding gathers/scatters + their LN/DR
    OutputOps,        ///< output-head GEMMs and losses
    LambStage1,       ///< LAMB stage 1 (update direction + trust ratio)
    LambStage2,       ///< LAMB stage 2 (apply update)
    GradNorm,         ///< global gradient L2 norm reduction
    AllReduce,        ///< gradient/activation AllReduce
    Other,            ///< anything not in the paper's groups
};

/** Kind of kernel; decides which cost model applies. */
enum class OpKind {
    Gemm,        ///< single GEMM
    BatchedGemm, ///< batched GEMM (B*h small GEMMs)
    Elementwise, ///< pure element-wise streaming kernel
    Reduction,   ///< row/column/global reduction
    Gather,      ///< embedding gather / scatter
    Comm,        ///< network transfer
};

/** Short display names used by reports. */
const char *phaseName(Phase phase);
const char *layerScopeName(LayerScope scope);
const char *subLayerName(SubLayer sub);
const char *opKindName(OpKind kind);

} // namespace bertprof

#endif // BERTPROF_TRACE_TAXONOMY_H
