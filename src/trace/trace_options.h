/**
 * @file
 * TraceOptions: software-level execution variants the paper studies —
 * kernel fusion of the memory-bound groups (Sec. 6.1.1), GEMM fusion
 * of the attention linear projections (Sec. 6.1.2), and fused vs.
 * unfused optimizer execution (Fig. 12a).
 */

#ifndef BERTPROF_TRACE_TRACE_OPTIONS_H
#define BERTPROF_TRACE_TRACE_OPTIONS_H

namespace bertprof {

/** How optimizer element-wise work maps onto kernels. */
enum class OptimizerFusion {
    /**
     * One kernel per tensor per element-wise operation (eager
     * PyTorch): hundreds of tiny kernels, every intermediate spilled
     * to memory.
     */
    Unfused,
    /**
     * Two fused kernels (stage 1 / stage 2) per parameter tensor —
     * the paper's default LAMB implementation [62].
     */
    PerTensorStages,
    /**
     * Multi-tensor apply: stage kernels batched over all tensors in
     * large chunks (apex-style FusedAdam/FusedLAMB).
     */
    MultiTensor,
};

/** Kernel-mapping choices for one trace. */
struct TraceOptions {
    /** Emit GeLU as one fused kernel instead of 5 EW kernels. */
    bool fuseGelu = false;
    /** Emit scale+mask+dropout+softmax as one fused kernel. */
    bool fuseScaleMaskDrSm = false;
    /** Emit dropout+residual+layernorm as one fused kernel. */
    bool fuseDrRcLn = false;
    /** Fuse the Q/K/V projections into one 3*d_model GEMM. */
    bool fuseQkvGemm = false;
    /**
     * Emit LayerNorm as ~8 unfused EW/reduction kernels instead of
     * one fused kernel (Fig. 12a's unfused LayerNorm).
     */
    bool unfuseLayerNorm = false;
    /** Optimizer kernel mapping. */
    OptimizerFusion optimizerFusion = OptimizerFusion::PerTensorStages;
    /**
     * Compute masked-LM logits over every position instead of
     * gathering the ~15% masked ones first. Several production BERT
     * stacks do this (it avoids a gather/scatter); it makes the
     * output layer several times more expensive — the likely source
     * of the paper's 3-7% output-layer share vs the ~1.5% a gathered
     * implementation shows.
     */
    bool denseMlmLogits = false;
};

} // namespace bertprof

#endif // BERTPROF_TRACE_TRACE_OPTIONS_H
