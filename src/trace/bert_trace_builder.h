/**
 * @file
 * BertTraceBuilder: emits the complete, ordered kernel trace of one
 * BERT pre-training iteration — forward, backward, and optimizer
 * update — with the exact GEMM manifestations and sizes of the
 * paper's Table 2b and all the non-GEMM kernels of Sec. 3.2.3. The
 * trace is architecture-agnostic; src/perf turns it into time.
 */

#ifndef BERTPROF_TRACE_BERT_TRACE_BUILDER_H
#define BERTPROF_TRACE_BERT_TRACE_BUILDER_H

#include "trace/bert_config.h"
#include "trace/op.h"
#include "trace/trace_options.h"

namespace bertprof {

/** Builds kernel traces for a given BERT configuration. */
class BertTraceBuilder
{
  public:
    explicit BertTraceBuilder(BertConfig config, TraceOptions options = {});

    /** The full training iteration: FWD + BWD (+recompute) + update. */
    OpTrace buildIteration() const;

    /** Forward pass only (embedding + N layers + output heads). */
    OpTrace buildForward() const;

    /** Backward pass only (with recompute segments if configured). */
    OpTrace buildBackward() const;

    /** Optimizer update phase only. */
    OpTrace buildUpdate() const;

    /** An inference pass: forward only, no dropout-state writes. */
    OpTrace buildInference() const;

    /** The configuration the builder was constructed with. */
    const BertConfig &config() const { return config_; }

    /** The kernel-mapping options in effect. */
    const TraceOptions &options() const { return options_; }

  private:
    /** Append the embedding layer's forward kernels. */
    void emitEmbeddingFwd(OpTrace &trace) const;
    /** Append the embedding layer's backward kernels. */
    void emitEmbeddingBwd(OpTrace &trace) const;
    /** Append transformer layer `layer`'s forward kernels. */
    void emitLayerFwd(OpTrace &trace, int layer, Phase phase) const;
    /** Append transformer layer `layer`'s backward kernels. */
    void emitLayerBwd(OpTrace &trace, int layer) const;
    /** Append the output-head (MLM + NSP) forward kernels. */
    void emitOutputFwd(OpTrace &trace) const;
    /** Append the output-head backward kernels. */
    void emitOutputBwd(OpTrace &trace) const;
    /** Append the optimizer update kernels for every param tensor. */
    void emitOptimizer(OpTrace &trace) const;

    /** Append the DR+RC+LN block (forward). */
    void emitDrRcLnFwd(OpTrace &trace, const std::string &prefix, int layer,
                       std::int64_t rows, Phase phase) const;
    /** Append the DR+RC+LN block (backward). */
    void emitDrRcLnBwd(OpTrace &trace, const std::string &prefix,
                       int layer) const;
    /** Append a LayerNorm forward (fused or unfused per options). */
    void emitLayerNormFwd(OpTrace &trace, const std::string &name,
                          int layer, std::int64_t rows, std::int64_t cols,
                          Phase phase, LayerScope scope, SubLayer sub) const;

    BertConfig config_;
    TraceOptions options_;
};

} // namespace bertprof

#endif // BERTPROF_TRACE_BERT_TRACE_BUILDER_H
