#include "trace/op.h"

#include <sstream>

namespace bertprof {

std::string
GemmDims::label() const
{
    std::ostringstream os;
    os << (transA ? "T" : "N") << (transB ? "T" : "N") << "," << m << ","
       << n << "," << k;
    if (batch > 1)
        os << ",[" << batch << "]";
    return os.str();
}

std::int64_t
OpTrace::totalFlops() const
{
    std::int64_t total = 0;
    for (const auto &op : ops)
        total += op.stats.flops;
    return total;
}

std::int64_t
OpTrace::totalBytes() const
{
    std::int64_t total = 0;
    for (const auto &op : ops)
        total += op.stats.bytesTotal();
    return total;
}

void
OpTrace::append(const OpTrace &other)
{
    ops.insert(ops.end(), other.ops.begin(), other.ops.end());
}

} // namespace bertprof
