#include "trace/taxonomy.h"

namespace bertprof {

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Fwd: return "FWD";
      case Phase::Bwd: return "BWD";
      case Phase::Recompute: return "RECOMP";
      case Phase::Update: return "UPDATE";
      case Phase::Comm: return "COMM";
    }
    return "?";
}

const char *
layerScopeName(LayerScope scope)
{
    switch (scope) {
      case LayerScope::Embedding: return "Embedding";
      case LayerScope::Transformer: return "Transformer";
      case LayerScope::Output: return "Output";
      case LayerScope::Optimizer: return "Optimizer";
      case LayerScope::Network: return "Network";
    }
    return "?";
}

const char *
subLayerName(SubLayer sub)
{
    switch (sub) {
      case SubLayer::AttnLinear: return "Attn Linear";
      case SubLayer::AttnBGemm: return "Attn B-GEMM";
      case SubLayer::AttnScaleMaskDrSm: return "Scale+Mask+DR+SM";
      case SubLayer::FcGemm: return "FC GEMM";
      case SubLayer::FcGelu: return "GeLU";
      case SubLayer::DrRcLn: return "DR+RC+LN";
      case SubLayer::EmbeddingOps: return "Embedding ops";
      case SubLayer::OutputOps: return "Output ops";
      case SubLayer::LambStage1: return "LAMB stage 1";
      case SubLayer::LambStage2: return "LAMB stage 2";
      case SubLayer::GradNorm: return "Grad L2 norm";
      case SubLayer::AllReduce: return "AllReduce";
      case SubLayer::Other: return "Other";
    }
    return "?";
}

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Gemm: return "GEMM";
      case OpKind::BatchedGemm: return "B-GEMM";
      case OpKind::Elementwise: return "EW";
      case OpKind::Reduction: return "Reduce";
      case OpKind::Gather: return "Gather";
      case OpKind::Comm: return "Comm";
    }
    return "?";
}

} // namespace bertprof
