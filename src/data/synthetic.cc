#include "data/synthetic.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace bertprof {

SyntheticDataset::SyntheticDataset(const BertConfig &config,
                                   std::uint64_t seed)
    : config_(config), rng_(seed)
{
    BP_REQUIRE(config_.vocabSize > 4);
    BP_REQUIRE(config_.maxPredictions <= config_.seqLen);
}

PretrainBatch
SyntheticDataset::nextBatch()
{
    const std::int64_t b = config_.batch;
    const std::int64_t n = config_.seqLen;
    const std::int64_t v = config_.vocabSize;
    const std::int64_t first_regular = 4; // after CLS/SEP/MASK/PAD

    PretrainBatch batch;
    batch.tokenIds.resize(static_cast<std::size_t>(b * n));
    batch.segmentIds.resize(static_cast<std::size_t>(b * n));

    for (std::int64_t s = 0; s < b; ++s) {
        const std::int64_t base = s * n;
        // Layout: [CLS] tok... [SEP] tok... — segment flips halfway.
        batch.tokenIds[static_cast<std::size_t>(base)] = clsId();
        batch.segmentIds[static_cast<std::size_t>(base)] = 0;
        // Markov-ish token stream: next token correlates with the
        // previous one so masked prediction is learnable.
        std::int64_t prev = rng_.uniformInt(first_regular, v - 1);
        for (std::int64_t t = 1; t < n; ++t) {
            std::int64_t tok;
            if (t == n / 2) {
                tok = sepId();
            } else if (rng_.bernoulli(0.7)) {
                tok = first_regular +
                      (prev - first_regular + 1) % (v - first_regular);
            } else {
                tok = rng_.uniformInt(first_regular, v - 1);
            }
            batch.tokenIds[static_cast<std::size_t>(base + t)] = tok;
            batch.segmentIds[static_cast<std::size_t>(base + t)] =
                t >= n / 2 ? 1 : 0;
            prev = tok;
        }

        // Choose maxPredictions distinct maskable positions.
        std::vector<std::int64_t> candidates;
        for (std::int64_t t = 1; t < n; ++t) {
            if (t != n / 2)
                candidates.push_back(t);
        }
        std::shuffle(candidates.begin(), candidates.end(), rng_.engine());
        for (std::int64_t i = 0; i < config_.maxPredictions; ++i) {
            const std::int64_t t = candidates[static_cast<std::size_t>(i)];
            const std::size_t flat = static_cast<std::size_t>(base + t);
            batch.mlmPositions.push_back(base + t);
            batch.mlmLabels.push_back(batch.tokenIds[flat]);
            batch.tokenIds[flat] = maskId();
        }
        batch.nspLabels.push_back(rng_.bernoulli(0.5) ? 1 : 0);
    }
    return batch;
}

PretrainBatch
SyntheticDataset::nextPaddedBatch()
{
    const std::int64_t b = config_.batch;
    const std::int64_t n = config_.seqLen;
    const std::int64_t v = config_.vocabSize;
    const std::int64_t first_regular = 4;
    const std::int64_t min_len = std::max<std::int64_t>(8, n / 2);
    BP_REQUIRE(min_len <= n);

    PretrainBatch batch;
    batch.tokenIds.assign(static_cast<std::size_t>(b * n), padId());
    batch.segmentIds.assign(static_cast<std::size_t>(b * n), 0);

    for (std::int64_t s = 0; s < b; ++s) {
        const std::int64_t base = s * n;
        const std::int64_t len = rng_.uniformInt(min_len, n);
        batch.seqLengths.push_back(len);
        batch.tokenIds[static_cast<std::size_t>(base)] = clsId();

        std::int64_t prev = rng_.uniformInt(first_regular, v - 1);
        for (std::int64_t t = 1; t < len; ++t) {
            std::int64_t tok;
            if (t == len / 2) {
                tok = sepId();
            } else if (rng_.bernoulli(0.7)) {
                tok = first_regular +
                      (prev - first_regular + 1) % (v - first_regular);
            } else {
                tok = rng_.uniformInt(first_regular, v - 1);
            }
            batch.tokenIds[static_cast<std::size_t>(base + t)] = tok;
            batch.segmentIds[static_cast<std::size_t>(base + t)] =
                t >= len / 2 ? 1 : 0;
            prev = tok;
        }

        // Mask only within the real content.
        std::vector<std::int64_t> candidates;
        for (std::int64_t t = 1; t < len; ++t)
            if (t != len / 2)
                candidates.push_back(t);
        std::shuffle(candidates.begin(), candidates.end(), rng_.engine());
        const std::int64_t predictions = std::min<std::int64_t>(
            config_.maxPredictions,
            static_cast<std::int64_t>(candidates.size()));
        for (std::int64_t i = 0; i < predictions; ++i) {
            const std::int64_t t = candidates[static_cast<std::size_t>(i)];
            const std::size_t flat = static_cast<std::size_t>(base + t);
            batch.mlmPositions.push_back(base + t);
            batch.mlmLabels.push_back(batch.tokenIds[flat]);
            batch.tokenIds[flat] = maskId();
        }
        batch.nspLabels.push_back(rng_.bernoulli(0.5) ? 1 : 0);
    }
    return batch;
}

ClassificationBatch
SyntheticDataset::nextClassificationBatch()
{
    const std::int64_t b = config_.batch;
    const std::int64_t n = config_.seqLen;
    const std::int64_t v = config_.vocabSize;
    const std::int64_t classes = config_.numClasses;
    const std::int64_t first_regular = 4; // after CLS/SEP/MASK/PAD
    const std::int64_t stripe = (v - first_regular) / classes;
    BP_REQUIRE(stripe >= 1);

    ClassificationBatch batch;
    batch.tokenIds.resize(static_cast<std::size_t>(b * n));
    batch.segmentIds.assign(static_cast<std::size_t>(b * n), 0);

    for (std::int64_t s = 0; s < b; ++s) {
        const std::int64_t base = s * n;
        batch.tokenIds[static_cast<std::size_t>(base)] = clsId();
        // Bias token draws toward one vocabulary stripe; that stripe
        // is the label, so the task is learnable from token identity.
        const std::int64_t target = rng_.uniformInt(0, classes - 1);
        for (std::int64_t t = 1; t < n; ++t) {
            std::int64_t tok;
            if (rng_.bernoulli(0.7)) {
                tok = first_regular + target * stripe +
                      rng_.uniformInt(0, stripe - 1);
            } else {
                tok = rng_.uniformInt(first_regular, v - 1);
            }
            batch.tokenIds[static_cast<std::size_t>(base + t)] = tok;
        }
        batch.labels.push_back(target);
    }
    return batch;
}

} // namespace bertprof
