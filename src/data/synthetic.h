/**
 * @file
 * Synthetic masked-LM data generator. The paper profiles fixed-shape
 * iterations of Wikipedia pre-training; token *content* never affects
 * kernel shapes or timing, so a synthetic corpus with the same shape
 * distribution (n tokens per sequence, ~15% masked, NSP pairs) is a
 * faithful substitute (see DESIGN.md substitution table).
 */

#ifndef BERTPROF_DATA_SYNTHETIC_H
#define BERTPROF_DATA_SYNTHETIC_H

#include "nn/bert_classifier.h"
#include "nn/bert_pretrainer.h"
#include "trace/bert_config.h"
#include "util/rng.h"

namespace bertprof {

/** Generates reproducible synthetic pre-training batches. */
class SyntheticDataset
{
  public:
    /**
     * @param config Model/input configuration (vocab, B, n, masks).
     * @param seed RNG seed for reproducibility.
     */
    explicit SyntheticDataset(const BertConfig &config,
                              std::uint64_t seed = 42);

    /**
     * Draw the next batch: random token/segment ids, a random subset
     * of maxPredictions positions per sequence masked (replaced with
     * the [MASK] id) with their original ids as labels, and random
     * NSP labels. A learnable structure is injected so training has
     * signal: label tokens are drawn from a skewed distribution
     * correlated with their neighbors.
     */
    PretrainBatch nextBatch();

    /**
     * Draw a classification batch: token streams as in nextBatch()
     * but with a *learnable* label — class = whether tokens from the
     * lower half of the vocabulary outnumber those from the upper
     * half (for numClasses == 2; generally, the majority vocab
     * stripe). A linear probe over token identities can solve it, so
     * fine-tuning must drive the loss down.
     */
    ClassificationBatch nextClassificationBatch();

    /**
     * Draw a variable-length batch: each sequence gets a random real
     * length in [seqLen/2, seqLen], the tail is filled with [PAD],
     * batch.seqLengths is set, and masked positions stay inside the
     * real content. Exercises the padding-mask path.
     */
    PretrainBatch nextPaddedBatch();

    /** Special token ids (within the configured vocab). */
    std::int64_t clsId() const { return 0; }
    std::int64_t sepId() const { return 1; }
    std::int64_t maskId() const { return 2; }
    std::int64_t padId() const { return 3; }

    /**
     * The generator's RNG position as text (for checkpoints). A
     * dataset restored with restoreRngState() emits exactly the same
     * remaining sample stream, so a resumed run consumes the batches
     * the interrupted run would have seen.
     */
    std::string rngState() const { return rng_.serialize(); }

    /** Restore a position captured by rngState(); false (state
     *  untouched) on a malformed string. */
    bool restoreRngState(const std::string &state)
    {
        return rng_.deserialize(state);
    }

  private:
    BertConfig config_;
    Rng rng_;
};

} // namespace bertprof

#endif // BERTPROF_DATA_SYNTHETIC_H
