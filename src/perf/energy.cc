#include "perf/energy.h"

namespace bertprof {

EnergyBreakdown
EnergyModel::kernelEnergy(const TimedOp &timed) const
{
    EnergyBreakdown energy;
    const OpDesc &op = timed.op;
    const bool matrix =
        op.kind == OpKind::Gemm || op.kind == OpKind::BatchedGemm;
    const double pj_flop =
        matrix ? spec_.pjPerMatrixFlop : spec_.pjPerVectorFlop;
    energy.computeJoules =
        static_cast<double>(op.stats.flops) * pj_flop * 1e-12;
    energy.memoryJoules = static_cast<double>(op.stats.bytesTotal()) *
                          spec_.pjPerExternalByte * 1e-12;
    energy.staticJoules = spec_.staticWatts * timed.time.total();
    return energy;
}

EnergyBreakdown
EnergyModel::traceEnergy(const TimedTrace &timed) const
{
    EnergyBreakdown total;
    for (const auto &op : timed.ops) {
        const EnergyBreakdown e = kernelEnergy(op);
        total.computeJoules += e.computeJoules;
        total.memoryJoules += e.memoryJoules;
        total.staticJoules += e.staticJoules;
    }
    return total;
}

EnergyBreakdown
EnergyModel::nmcKernelEnergy(const OpDesc &op, Seconds nmc_seconds) const
{
    EnergyBreakdown energy;
    energy.computeJoules = static_cast<double>(op.stats.flops) *
                           spec_.pjPerVectorFlop * 1e-12;
    energy.memoryJoules = static_cast<double>(op.stats.bytesTotal()) *
                          spec_.pjPerNmcByte * 1e-12;
    energy.staticJoules = spec_.staticWatts * nmc_seconds;
    return energy;
}

} // namespace bertprof
