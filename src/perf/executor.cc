#include "perf/executor.h"

namespace bertprof {

Seconds
TimedTrace::totalSeconds() const
{
    Seconds total = 0.0;
    for (const auto &timed : ops)
        total += timed.time.total();
    return total;
}

Seconds
TimedTrace::sumWhere(
    const std::function<bool(const TimedOp &)> &pred) const
{
    Seconds total = 0.0;
    for (const auto &timed : ops)
        if (pred(timed))
            total += timed.time.total();
    return total;
}

double
TimedTrace::shareWhere(
    const std::function<bool(const TimedOp &)> &pred) const
{
    const Seconds total = totalSeconds();
    return total > 0.0 ? sumWhere(pred) / total : 0.0;
}

namespace {

template <typename KeyFn>
std::map<std::string, TraceAggregate>
aggregateBy(const std::vector<TimedOp> &ops, KeyFn key_fn)
{
    std::map<std::string, TraceAggregate> agg;
    for (const auto &timed : ops)
        agg[key_fn(timed)].add(timed);
    return agg;
}

} // namespace

std::map<std::string, TraceAggregate>
TimedTrace::byScope() const
{
    return aggregateBy(ops, [](const TimedOp &timed) {
        return std::string(layerScopeName(timed.op.scope));
    });
}

std::map<std::string, TraceAggregate>
TimedTrace::bySubLayer() const
{
    return aggregateBy(ops, [](const TimedOp &timed) {
        return std::string(subLayerName(timed.op.sub));
    });
}

std::map<std::string, TraceAggregate>
TimedTrace::byPhase() const
{
    return aggregateBy(ops, [](const TimedOp &timed) {
        return std::string(phaseName(timed.op.phase));
    });
}

std::map<std::string, TraceAggregate>
TimedTrace::byKind() const
{
    return aggregateBy(ops, [](const TimedOp &timed) {
        return std::string(opKindName(timed.op.kind));
    });
}

TimedTrace
TraceExecutor::execute(const OpTrace &trace) const
{
    TimedTrace timed;
    timed.ops.reserve(trace.ops.size());
    for (const auto &op : trace.ops)
        timed.ops.push_back({op, costModel_.evaluate(op)});
    return timed;
}

} // namespace bertprof
