/**
 * @file
 * Analytical GEMM throughput model: tile selection, wave quantization
 * over the device's compute units, padding waste, and K-depth pipeline
 * ramp. This is what makes "not all GEMMs equal" (the paper's
 * Takeaway 6) fall out of the model: the small, skinny attention
 * B-GEMMs select small tiles, under-fill waves, and never reach the
 * MAC pipeline's steady state, while the big FC GEMMs do.
 */

#ifndef BERTPROF_PERF_GEMM_MODEL_H
#define BERTPROF_PERF_GEMM_MODEL_H

#include "perf/device.h"
#include "trace/op.h"

namespace bertprof {

/** Diagnostic breakdown of a GEMM's modeled efficiency. */
struct GemmEfficiency {
    std::int64_t tileM = 0;    ///< selected macro-tile M
    std::int64_t tileN = 0;    ///< selected macro-tile N
    std::int64_t tiles = 0;    ///< total work-groups (incl. batch)
    double waveUtilization = 0.0; ///< CU occupancy of the last wave
    double padUtilization = 0.0;  ///< useful fraction of padded tiles
    double kUtilization = 0.0;    ///< pipeline ramp vs. K depth
    double tilePeakFraction = 0.0;///< density loss of small tiles
    double efficiency = 0.0;      ///< product incl. library peak frac
    double achievedFlops = 0.0;   ///< efficiency * matrix peak
};

/** Model the achieved throughput of one (batched) GEMM. */
class GemmModel
{
  public:
    explicit GemmModel(const DeviceSpec &spec) : spec_(spec) {}

    /** Full efficiency breakdown for the given dims and precision. */
    GemmEfficiency evaluate(const GemmDims &dims, DType dtype) const;

    /** Achieved FLOP/s only. */
    double
    achievedFlops(const GemmDims &dims, DType dtype) const
    {
        return evaluate(dims, dtype).achievedFlops;
    }

    /** Pick the macro-tile edge for a matrix dimension. */
    static std::int64_t selectTile(std::int64_t dim);

  private:
    DeviceSpec spec_;
};

} // namespace bertprof

#endif // BERTPROF_PERF_GEMM_MODEL_H
