#include "perf/cost_model.h"

#include <algorithm>

#include "util/logging.h"

namespace bertprof {

double
KernelCostModel::achievedBandwidth(std::int64_t bytes) const
{
    const double peak = spec_.memBandwidth * spec_.streamBwFraction;
    const double b = static_cast<double>(bytes);
    return peak * (b / (b + spec_.bwRampBytes));
}

KernelTime
KernelCostModel::evaluate(const OpDesc &op) const
{
    KernelTime time;
    time.overhead = spec_.kernelLaunchOverhead;

    switch (op.kind) {
      case OpKind::Gemm:
      case OpKind::BatchedGemm: {
        const double achieved = gemmModel_.achievedFlops(op.gemm, op.dtype);
        time.compute = static_cast<double>(op.stats.flops) / achieved;
        const std::int64_t bytes = op.stats.bytesTotal();
        time.memory = bytes > 0 ? static_cast<double>(bytes) /
                                      achievedBandwidth(bytes)
                                : 0.0;
        break;
      }
      case OpKind::Elementwise:
      case OpKind::Reduction:
      case OpKind::Gather: {
        time.compute = static_cast<double>(op.stats.flops) /
                       spec_.vectorFlops(op.dtype);
        const std::int64_t bytes = op.stats.bytesTotal();
        time.memory = bytes > 0 ? static_cast<double>(bytes) /
                                      achievedBandwidth(bytes)
                                : 0.0;
        break;
      }
      case OpKind::Comm: {
        time.link = spec_.linkLatency +
                    static_cast<double>(op.commBytes) /
                        spec_.linkBandwidth;
        time.overhead = 0.0;
        break;
      }
    }
    return time;
}

double
KernelCostModel::bandwidthDemand(const OpDesc &op) const
{
    const KernelTime time = evaluate(op);
    const Seconds busy = std::max(time.compute, time.memory);
    if (busy <= 0.0)
        return 0.0;
    const double achieved_bw =
        static_cast<double>(op.stats.bytesTotal()) / busy;
    return achieved_bw / (spec_.memBandwidth * spec_.streamBwFraction);
}

} // namespace bertprof
