#include "perf/footprint.h"

#include <sstream>

#include "util/logging.h"
#include "util/units.h"

namespace bertprof {

namespace {

/**
 * Live activation bytes for one transformer layer's backward pass:
 * ~10 [T, d] tensors (projections, residuals, norms, masks), two
 * [T, d_ff] tensors (FC-1 output and GeLU output), and three
 * [B*h, n, n] score-shaped tensors (probs, dropout mask, dropped).
 */
std::int64_t
activationsPerLayer(const BertConfig &config)
{
    const std::int64_t t = config.tokens();
    const std::int64_t scores =
        config.batch * config.numHeads * config.seqLen * config.seqLen;
    return (10 * t * config.dModel + 2 * t * config.dFf + 3 * scores) *
           config.activationBytes();
}

std::int64_t
workspaceBytes(const BertConfig &config)
{
    const std::int64_t scores =
        config.batch * config.numHeads * config.seqLen * config.seqLen;
    std::int64_t logits = 0;
    if (config.taskHead == TaskHead::Pretrain)
        logits = config.maskedTokens() * config.vocabSize;
    return (scores + logits) * config.activationBytes();
}

} // namespace

MemoryFootprint
trainingFootprint(const BertConfig &config)
{
    MemoryFootprint fp;
    const std::int64_t params = config.parameterCount();
    const bool mixed = config.precision == Precision::Mixed;

    // Weights and gradients at training precision; MP additionally
    // keeps an FP32 master copy with the optimizer state.
    fp.weights = params * config.activationBytes();
    fp.gradients = params * config.activationBytes();
    std::int64_t state_per_param = 0;
    switch (config.optimizer) {
      case OptimizerKind::Sgd:
        state_per_param = 0;
        break;
      case OptimizerKind::Adam:
      case OptimizerKind::Lamb:
        state_per_param = 8; // FP32 m + v
        break;
    }
    fp.optimizerState =
        params * (state_per_param + (mixed ? 4 : 0)); // + master copy

    const std::int64_t per_layer = activationsPerLayer(config);
    if (config.checkpointEvery > 0) {
        // Only sqrt-N style checkpoints plus one live segment.
        const std::int64_t segments =
            config.numLayers / config.checkpointEvery;
        fp.activations = segments * config.tokens() * config.dModel *
                             config.activationBytes() +
                         config.checkpointEvery * per_layer;
    } else {
        fp.activations = config.numLayers * per_layer;
    }
    fp.workspace = workspaceBytes(config);
    return fp;
}

MemoryFootprint
inferenceFootprint(const BertConfig &config)
{
    MemoryFootprint fp;
    fp.weights = config.parameterCount() * config.activationBytes();
    // Working set only (nothing is saved for backprop): ping-pong
    // [T, d] buffers, one [T, d_ff] intermediate, one score matrix.
    const std::int64_t t = config.tokens();
    const std::int64_t scores =
        config.batch * config.numHeads * config.seqLen * config.seqLen;
    fp.activations = (2 * t * config.dModel + t * config.dFf + scores) *
                     config.activationBytes();
    fp.workspace = workspaceBytes(config);
    return fp;
}

MemoryFootprint
tensorSlicedFootprint(const BertConfig &config, int ways)
{
    BP_REQUIRE(ways >= 1);
    MemoryFootprint fp = trainingFootprint(config);
    if (ways == 1)
        return fp;

    // Parameters: per-layer tensors sliced, shared tensors replicated.
    std::int64_t sliced = 0, replicated = 0;
    for (const auto &param : config.parameterTensors()) {
        if (param.layerIndex >= 0)
            sliced += param.numel;
        else
            replicated += param.numel;
    }
    const std::int64_t params_per_device = sliced / ways + replicated;
    const double param_scale =
        static_cast<double>(params_per_device) /
        static_cast<double>(config.parameterCount());
    fp.weights = static_cast<std::int64_t>(fp.weights * param_scale);
    fp.gradients = static_cast<std::int64_t>(fp.gradients * param_scale);
    fp.optimizerState =
        static_cast<std::int64_t>(fp.optimizerState * param_scale);

    // Activations: the [T, d] tensors are replicated; the per-head
    // score tensors and the [T, d_ff] tensors are sliced.
    const std::int64_t t = config.tokens();
    const std::int64_t scores =
        config.batch * config.numHeads * config.seqLen * config.seqLen;
    const std::int64_t per_layer =
        (10 * t * config.dModel + (2 * t * config.dFf + 3 * scores) / ways) *
        config.activationBytes();
    fp.activations = config.numLayers * per_layer;
    fp.workspace = workspaceBytes(config) / ways;
    return fp;
}

std::int64_t
maxBatchThatFits(BertConfig config, std::int64_t capacity_bytes)
{
    auto fits = [&](std::int64_t batch) {
        config.batch = batch;
        return trainingFootprint(config).total() <= capacity_bytes;
    };
    if (!fits(1))
        return 0;
    std::int64_t lo = 1, hi = 2;
    while (fits(hi) && hi < (1 << 20))
        hi *= 2;
    while (lo + 1 < hi) {
        const std::int64_t mid = (lo + hi) / 2;
        (fits(mid) ? lo : hi) = mid;
    }
    return lo;
}

std::string
describeFootprint(const MemoryFootprint &footprint)
{
    std::ostringstream os;
    os << "w " << formatBytes(static_cast<double>(footprint.weights))
       << " + g " << formatBytes(static_cast<double>(footprint.gradients))
       << " + opt "
       << formatBytes(static_cast<double>(footprint.optimizerState))
       << " + act "
       << formatBytes(static_cast<double>(footprint.activations))
       << " + ws "
       << formatBytes(static_cast<double>(footprint.workspace)) << " = "
       << formatBytes(static_cast<double>(footprint.total()));
    return os.str();
}

} // namespace bertprof
