/**
 * @file
 * KernelCostModel: assigns a device time to every OpDesc via a
 * roofline — max(compute time at modeled efficiency, memory time at
 * achieved bandwidth) plus launch overhead. Communication ops use the
 * link model. This is the step that turns the architecture-agnostic
 * trace into the runtime breakdowns of the paper's figures.
 */

#ifndef BERTPROF_PERF_COST_MODEL_H
#define BERTPROF_PERF_COST_MODEL_H

#include "perf/device.h"
#include "perf/gemm_model.h"
#include "trace/op.h"

namespace bertprof {

/** Time decomposition of one kernel. */
struct KernelTime {
    Seconds compute = 0.0;  ///< FLOP-limited time
    Seconds memory = 0.0;   ///< bandwidth-limited time
    Seconds overhead = 0.0; ///< launch/dispatch overhead
    Seconds link = 0.0;     ///< network time (Comm ops)

    /** Roofline total: max(compute, memory) + overhead + link. */
    Seconds
    total() const
    {
        return (compute > memory ? compute : memory) + overhead + link;
    }

    /** True if the kernel is limited by memory bandwidth. */
    bool memoryBound() const { return memory >= compute; }
};

/** Roofline-style cost model over a DeviceSpec. */
class KernelCostModel
{
  public:
    explicit KernelCostModel(const DeviceSpec &spec)
        : spec_(spec), gemmModel_(spec)
    {
    }

    /** Time decomposition for one op. */
    KernelTime evaluate(const OpDesc &op) const;

    /** Achieved bandwidth of a streaming kernel moving `bytes`. */
    double achievedBandwidth(std::int64_t bytes) const;

    /**
     * Bandwidth demand of an op normalized to the best streaming
     * bandwidth (the paper's Fig. 7 normalization): bytes moved per
     * second of modeled runtime over the achievable peak.
     */
    double bandwidthDemand(const OpDesc &op) const;

    const DeviceSpec &spec() const { return spec_; }
    const GemmModel &gemmModel() const { return gemmModel_; }

  private:
    DeviceSpec spec_;
    GemmModel gemmModel_;
};

} // namespace bertprof

#endif // BERTPROF_PERF_COST_MODEL_H
