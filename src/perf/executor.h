/**
 * @file
 * TraceExecutor: evaluates an OpTrace against a device model,
 * producing a TimedTrace with per-kernel times and breakdown
 * aggregations along the paper's axes (layer scope, sub-layer,
 * phase, op kind).
 */

#ifndef BERTPROF_PERF_EXECUTOR_H
#define BERTPROF_PERF_EXECUTOR_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "perf/cost_model.h"
#include "trace/op.h"

namespace bertprof {

/** One op plus its modeled time. */
struct TimedOp {
    OpDesc op;
    KernelTime time;
};

/** Aggregate over a group of timed ops. */
struct TraceAggregate {
    Seconds seconds = 0.0;
    KernelStats stats;
    std::int64_t kernelCount = 0;

    void
    add(const TimedOp &timed)
    {
        seconds += timed.time.total();
        stats += timed.op.stats;
        ++kernelCount;
    }
};

/** A fully timed iteration trace. */
struct TimedTrace {
    std::vector<TimedOp> ops;

    /** Total modeled time. */
    Seconds totalSeconds() const;

    /** Number of kernels. */
    std::size_t kernelCount() const { return ops.size(); }

    /** Sum of time over ops matching a predicate. */
    Seconds sumWhere(
        const std::function<bool(const TimedOp &)> &pred) const;

    /** Fraction of total time in ops matching a predicate. */
    double shareWhere(
        const std::function<bool(const TimedOp &)> &pred) const;

    /** Aggregate by top-level layer scope (Fig. 3 axis). */
    std::map<std::string, TraceAggregate> byScope() const;

    /** Aggregate by sub-layer group (Fig. 4 axis). */
    std::map<std::string, TraceAggregate> bySubLayer() const;

    /** Aggregate by training phase. */
    std::map<std::string, TraceAggregate> byPhase() const;

    /** Aggregate by op kind (GEMM vs EW vs reduction ...). */
    std::map<std::string, TraceAggregate> byKind() const;
};

/** Evaluates traces against a device model. */
class TraceExecutor
{
  public:
    explicit TraceExecutor(const DeviceSpec &spec) : costModel_(spec) {}

    /** Time every op of the trace. */
    TimedTrace execute(const OpTrace &trace) const;

    const KernelCostModel &costModel() const { return costModel_; }

  private:
    KernelCostModel costModel_;
};

} // namespace bertprof

#endif // BERTPROF_PERF_EXECUTOR_H
