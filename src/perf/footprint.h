/**
 * @file
 * Device-memory footprint model: weights, gradients, optimizer state,
 * and live activations for a BERT configuration. This quantifies the
 * pressures behind two of the paper's topics — activation
 * checkpointing (Sec. 4 trades recompute for activation memory) and
 * model parallelism (Sec. 2.5: tensor slicing exists because larger
 * models stop fitting on one device).
 */

#ifndef BERTPROF_PERF_FOOTPRINT_H
#define BERTPROF_PERF_FOOTPRINT_H

#include <cstdint>
#include <string>

#include "trace/bert_config.h"

namespace bertprof {

/** Bytes by category for one training replica. */
struct MemoryFootprint {
    std::int64_t weights = 0;        ///< model parameters
    std::int64_t gradients = 0;      ///< parameter gradients
    std::int64_t optimizerState = 0; ///< m/v (+FP32 master weights in MP)
    std::int64_t activations = 0;    ///< live activations for backprop
    std::int64_t workspace = 0;      ///< score matrices & scratch

    std::int64_t
    total() const
    {
        return weights + gradients + optimizerState + activations +
               workspace;
    }
};

/**
 * Footprint of one training iteration on a single device.
 * Honors precision (FP16 weights/grads + FP32 master copies under MP)
 * and activation checkpointing (only sqrt-N checkpoints plus one
 * segment stay live).
 */
MemoryFootprint trainingFootprint(const BertConfig &config);

/** Footprint of a forward-only (inference) pass. */
MemoryFootprint inferenceFootprint(const BertConfig &config);

/**
 * Per-device footprint under m-way tensor slicing: sliced weights,
 * gradients, and optimizer state; replicated LN/embedding; full
 * activations (every device sees all tokens).
 */
MemoryFootprint tensorSlicedFootprint(const BertConfig &config, int ways);

/**
 * Largest mini-batch B whose training footprint fits in
 * `capacity_bytes` (0 if even B=1 does not fit).
 */
std::int64_t maxBatchThatFits(BertConfig config,
                              std::int64_t capacity_bytes);

/** Render like "w 1.2 GiB + g 1.2 GiB + opt 2.5 GiB + act 3.0 GiB". */
std::string describeFootprint(const MemoryFootprint &footprint);

} // namespace bertprof

#endif // BERTPROF_PERF_FOOTPRINT_H
