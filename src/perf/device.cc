#include "perf/device.h"

namespace bertprof {

DeviceSpec
mi100()
{
    return DeviceSpec{};
}

DeviceSpec
mi100HalfBandwidth()
{
    DeviceSpec spec;
    spec.name = "mi100-half-bw";
    spec.memBandwidth /= 2.0;
    return spec;
}

DeviceSpec
a100Like()
{
    DeviceSpec spec;
    spec.name = "a100-like";
    spec.matrixFlopsFp32 = 19.5e12;  // no FP32 tensor path (TF32 aside)
    spec.matrixFlopsFp16 = 312e12;
    spec.vectorFlopsFp32 = 19.5e12;
    spec.vectorFlopsFp16 = 39e12;
    spec.memBandwidth = 2.0e12;
    spec.computeUnits = 108; // SMs
    spec.linkBandwidth = 300e9; // NVLink-class
    return spec;
}

DeviceSpec
mi250Like()
{
    DeviceSpec spec;
    spec.name = "mi250-gcd-like";
    spec.matrixFlopsFp32 = 47.9e12;
    spec.matrixFlopsFp16 = 191.5e12;
    spec.vectorFlopsFp32 = 23.95e12;
    spec.vectorFlopsFp16 = 47.9e12;
    spec.memBandwidth = 1.6e12;
    spec.computeUnits = 110;
    spec.linkBandwidth = 100e9; // Infinity Fabric-class
    return spec;
}

DeviceSpec
futureDoubleCompute()
{
    DeviceSpec spec;
    spec.name = "future-2x-compute";
    spec.matrixFlopsFp32 *= 2.0;
    spec.matrixFlopsFp16 *= 2.0;
    spec.vectorFlopsFp32 *= 2.0;
    spec.vectorFlopsFp16 *= 2.0;
    return spec;
}

} // namespace bertprof
