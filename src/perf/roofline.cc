#include "perf/roofline.h"

#include <algorithm>

namespace bertprof {

namespace {

double
enginePeak(const DeviceSpec &spec, OpKind kind, DType dtype)
{
    const bool matrix =
        kind == OpKind::Gemm || kind == OpKind::BatchedGemm;
    return matrix ? spec.matrixFlops(dtype) : spec.vectorFlops(dtype);
}

} // namespace

double
ridgePoint(const DeviceSpec &spec, OpKind kind, DType dtype)
{
    return enginePeak(spec, kind, dtype) / spec.memBandwidth;
}

bool
memoryBoundAtPeak(const DeviceSpec &spec, const OpDesc &op)
{
    return op.opsPerByte() < ridgePoint(spec, op.kind, op.dtype);
}

double
attainableFlops(const DeviceSpec &spec, OpKind kind, DType dtype,
                double ops_per_byte)
{
    return std::min(enginePeak(spec, kind, dtype),
                    ops_per_byte * spec.memBandwidth);
}

} // namespace bertprof
