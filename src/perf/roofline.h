/**
 * @file
 * Roofline helpers: ridge points and boundedness classification
 * (Sec. 2.6 of the paper — arithmetic intensity decides whether an
 * op benefits from more compute or more bandwidth).
 */

#ifndef BERTPROF_PERF_ROOFLINE_H
#define BERTPROF_PERF_ROOFLINE_H

#include "perf/device.h"
#include "trace/op.h"

namespace bertprof {

/**
 * The ridge point (FLOP/byte) of the device for the given engine and
 * precision: intensities below it are memory bound at peak.
 */
double ridgePoint(const DeviceSpec &spec, OpKind kind, DType dtype);

/** True if the op's arithmetic intensity puts it below the ridge. */
bool memoryBoundAtPeak(const DeviceSpec &spec, const OpDesc &op);

/**
 * Attainable FLOP/s at the given arithmetic intensity (the classic
 * roofline: min(peak, intensity * bandwidth)).
 */
double attainableFlops(const DeviceSpec &spec, OpKind kind, DType dtype,
                       double ops_per_byte);

} // namespace bertprof

#endif // BERTPROF_PERF_ROOFLINE_H
