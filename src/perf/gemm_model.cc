#include "perf/gemm_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace bertprof {

std::int64_t
GemmModel::selectTile(std::int64_t dim)
{
    // Libraries pick the largest tile the problem can fill; below
    // 3/4 of a tile edge they step down to the next power of two.
    if (dim >= 96)
        return 128;
    if (dim >= 48)
        return 64;
    if (dim >= 24)
        return 32;
    return 16;
}

GemmEfficiency
GemmModel::evaluate(const GemmDims &dims, DType dtype) const
{
    BP_REQUIRE(dims.m > 0 && dims.n > 0 && dims.k > 0 && dims.batch > 0);
    GemmEfficiency eff;
    eff.tileM = selectTile(dims.m);
    eff.tileN = selectTile(dims.n);

    const std::int64_t tiles_m = (dims.m + eff.tileM - 1) / eff.tileM;
    const std::int64_t tiles_n = (dims.n + eff.tileN - 1) / eff.tileN;
    eff.tiles = tiles_m * tiles_n * dims.batch;

    // Split-K: libraries split deep-K tall/skinny GEMMs across CUs
    // when there are too few output tiles to fill the device (e.g.
    // weight-gradient GEMMs with K = n*B). Each doubling halves the
    // per-split K and costs a small reduction penalty.
    const std::int64_t cus = spec_.computeUnits;
    std::int64_t k_split = 1;
    double split_penalty = 1.0;
    std::int64_t split_k = dims.k;
    while (eff.tiles * k_split * 2 <= cus && split_k / 2 >= 128) {
        k_split *= 2;
        split_k /= 2;
        split_penalty *= 0.95;
    }
    eff.tiles *= k_split;

    // Wave quantization: the last wave may not fill every CU.
    const std::int64_t waves = (eff.tiles + cus - 1) / cus;
    eff.waveUtilization = static_cast<double>(eff.tiles) /
                          static_cast<double>(waves * cus) * split_penalty;

    // Padding: edge tiles do useless work.
    eff.padUtilization =
        static_cast<double>(dims.m * dims.n) /
        static_cast<double>(tiles_m * eff.tileM * tiles_n * eff.tileN);

    // Pipeline ramp with (per-split) K depth; small tiles saturate
    // with less K but cannot feed the matrix engine densely.
    const double k_sat = spec_.gemmKSaturation *
                         (static_cast<double>(std::min(eff.tileM,
                                                       eff.tileN)) /
                          128.0);
    eff.kUtilization = static_cast<double>(split_k) /
                       (static_cast<double>(split_k) + k_sat);

    // Compute density loss of small macro-tiles: a full tile keeps
    // the MACs fully fed; smaller tiles lose reuse quadratically-ish.
    const double tile_norm =
        spec_.gemmTileDensityNorm * spec_.gemmTileDensityNorm;
    eff.tilePeakFraction =
        std::min(1.0, static_cast<double>(eff.tileM * eff.tileN) /
                          tile_norm);

    eff.efficiency = spec_.gemmPeakFraction(dtype) * eff.waveUtilization *
                     eff.padUtilization * eff.kUtilization *
                     eff.tilePeakFraction;
    eff.achievedFlops = eff.efficiency * spec_.matrixFlops(dtype);
    return eff;
}

} // namespace bertprof
