/**
 * @file
 * First-order energy model: per-op dynamic energy from FLOPs and
 * memory traffic plus static power over modeled time. Supports the
 * paper's Sec. 6.2.1 claim that near-memory compute "improves
 * performance *and energy efficiency*": NMC accesses skip the DRAM
 * interface, so their per-byte energy is a fraction of an external
 * HBM access.
 */

#ifndef BERTPROF_PERF_ENERGY_H
#define BERTPROF_PERF_ENERGY_H

#include "perf/executor.h"
#include "trace/op.h"

namespace bertprof {

/** Energy coefficients (picojoules), defaults 7nm-accelerator-like. */
struct EnergySpec {
    /** pJ per FLOP on the matrix engines. */
    double pjPerMatrixFlop = 0.4;
    /** pJ per FLOP on the vector units. */
    double pjPerVectorFlop = 1.2;
    /** pJ per byte moved over the external HBM interface. */
    double pjPerExternalByte = 56.0; // ~7 pJ/bit
    /** pJ per byte accessed by an in-bank NMC ALU (no interface). */
    double pjPerNmcByte = 18.0;
    /** Static/leakage power of the accelerator package. */
    double staticWatts = 90.0;
};

/** Joules split by source. */
struct EnergyBreakdown {
    double computeJoules = 0.0;
    double memoryJoules = 0.0;
    double staticJoules = 0.0;

    double
    total() const
    {
        return computeJoules + memoryJoules + staticJoules;
    }
};

/** Evaluates trace energy under an EnergySpec. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergySpec spec = {}) : spec_(spec) {}

    /** Dynamic + static energy of one timed kernel on the device. */
    EnergyBreakdown kernelEnergy(const TimedOp &timed) const;

    /** Energy of a whole timed trace. */
    EnergyBreakdown traceEnergy(const TimedTrace &timed) const;

    /**
     * Energy of one offloadable kernel executed on NMC units in
     * `nmc_seconds`: same FLOPs at vector cost, bytes at the cheaper
     * in-bank rate, static power for the (shorter) duration.
     */
    EnergyBreakdown nmcKernelEnergy(const OpDesc &op,
                                    Seconds nmc_seconds) const;

    const EnergySpec &spec() const { return spec_; }

  private:
    EnergySpec spec_;
};

} // namespace bertprof

#endif // BERTPROF_PERF_ENERGY_H
