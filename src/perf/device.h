/**
 * @file
 * DeviceSpec: the parameterization of a compute-intensive accelerator
 * used by the analytical performance model. Defaults approximate an
 * AMD Instinct MI100 (the paper's platform): public peak throughput
 * and bandwidth figures plus a small set of achievable-fraction knobs
 * that are calibrated once (documented in EXPERIMENTS.md) and shared
 * by every experiment.
 *
 * The paper's takeaways depend only on op manifestation/size and the
 * device's compute-to-bandwidth ratio (Sec. 7), which is exactly what
 * this struct captures — so other accelerators can be modeled by
 * swapping the numbers.
 */

#ifndef BERTPROF_PERF_DEVICE_H
#define BERTPROF_PERF_DEVICE_H

#include <string>

#include "tensor/tensor.h"
#include "util/units.h"

namespace bertprof {

/** Accelerator model parameters. */
struct DeviceSpec {
    std::string name = "mi100-like";

    /** Peak matrix-engine FLOP/s by precision. */
    double matrixFlopsFp32 = 46.1e12;
    double matrixFlopsFp16 = 184.6e12;

    /** Peak vector (SIMD) FLOP/s by precision. */
    double vectorFlopsFp32 = 23.1e12;
    double vectorFlopsFp16 = 46.1e12;

    /** Peak DRAM bandwidth (HBM2 on MI100). */
    double memBandwidth = 1.23e12;

    /**
     * Fraction of peak bandwidth large streaming kernels achieve
     * relative to their *ideal* traffic (the "max achieved by any
     * BERT operation" of the paper's Fig. 7 normalization). This is
     * deliberately below raw STREAM numbers: the trace counts ideal
     * bytes, while real kernels move extra traffic (masks, strides,
     * partial lines).
     */
    double streamBwFraction = 0.50;

    /** Per-kernel launch/dispatch overhead. */
    Seconds kernelLaunchOverhead = 8e-6;

    /** Compute units (MI100: 120 CUs). */
    int computeUnits = 120;

    /**
     * Best-case fraction of matrix peak a well-shaped GEMM achieves
     * (library + dataflow losses), by precision. FP16 GEMMs have
     * more headroom to lose, so their achievable fraction is lower —
     * this is what makes MP GEMM speedups ~2x rather than 4x.
     */
    double gemmPeakFractionFp32 = 0.85;
    double gemmPeakFractionFp16 = 0.60;

    /**
     * GEMM K-depth at which the MAC pipeline reaches steady state;
     * utilization ramps as k / (k + kSaturation).
     */
    double gemmKSaturation = 256.0;

    /**
     * Macro-tile edge (elements) needed to feed the matrix engine at
     * full density; smaller tiles lose throughput quadratically.
     * Devices without wide matrix engines (CPUs) should set this to
     * a small value.
     */
    double gemmTileDensityNorm = 96.0;

    /**
     * Bytes at which a streaming kernel reaches full bandwidth;
     * achieved bandwidth ramps as b / (b + rampBytes). Models the
     * poor bandwidth of tiny kernels (e.g. per-tensor optimizer
     * kernels on bias vectors).
     */
    double bwRampBytes = 4.0 * kMiB;

    /** Host-to-device / inter-device link bandwidth (PCIe 4.0 x16). */
    double linkBandwidth = 32e9;

    /** Per-message link latency. */
    Seconds linkLatency = 5e-6;

    /** Matrix peak for the given precision. */
    double
    matrixFlops(DType dtype) const
    {
        return dtype == DType::F16 ? matrixFlopsFp16 : matrixFlopsFp32;
    }

    /** Vector peak for the given precision. */
    double
    vectorFlops(DType dtype) const
    {
        return dtype == DType::F16 ? vectorFlopsFp16 : vectorFlopsFp32;
    }

    /** Best-case GEMM fraction for the given precision. */
    double
    gemmPeakFraction(DType dtype) const
    {
        return dtype == DType::F16 ? gemmPeakFractionFp16
                                   : gemmPeakFractionFp32;
    }
};

/** The MI100-like default device. */
DeviceSpec mi100();

/** A bandwidth-starved variant (for roofline sensitivity studies). */
DeviceSpec mi100HalfBandwidth();

/** A compute-doubled future device (Sec. 7: compute scales faster). */
DeviceSpec futureDoubleCompute();

/**
 * An NVIDIA-A100-like device (public specs: 19.5 TFLOP/s FP32,
 * 312 TFLOP/s FP16 tensor, ~2.0 TB/s HBM2e) — Sec. 7 argues the
 * breakdown extrapolates to devices like this via the
 * compute/bandwidth ratio.
 */
DeviceSpec a100Like();

/** An AMD-MI250X-GCD-like device (~1.6 TB/s and ~191 TF FP16/GCD). */
DeviceSpec mi250Like();

} // namespace bertprof

#endif // BERTPROF_PERF_DEVICE_H
