/**
 * @file
 * Umbrella header: include this to get the whole bertprof public API.
 *
 * Library map:
 *  - trace/   architecture-agnostic kernel traces of BERT training
 *  - perf/    analytical accelerator model (roofline + GEMM tiling)
 *  - dist/    data-parallel and tensor-slicing multi-device models
 *  - nmc/     near-memory-compute offload model
 *  - nn/ ops/ optim/ data/  the executable CPU substrate
 *  - io/      crash-safe checkpoint store
 *  - train/   hardened training loop (checkpoints + resume)
 *  - runtime/ CPU kernel profiler and fault injector
 *  - telemetry/ binary run-trace container, recorder, live metrics
 *  - core/    facade (Characterizer) and report rendering
 */

#ifndef BERTPROF_CORE_BERTPROF_H
#define BERTPROF_CORE_BERTPROF_H

#include "core/characterizer.h"
#include "core/report.h"
#include "core/trace_export.h"
#include "data/synthetic.h"
#include "dist/comm_model.h"
#include "dist/data_parallel.h"
#include "dist/tensor_slicing.h"
#include "dist/hierarchical_comm.h"
#include "dist/hybrid.h"
#include "dist/pipeline.h"
#include "dist/zero_sharding.h"
#include "io/checkpoint.h"
#include "nmc/dram.h"
#include "nmc/nmc_model.h"
#include "nn/bert_classifier.h"
#include "nn/bert_pretrainer.h"
#include "optim/adam.h"
#include "optim/grad_scaler.h"
#include "optim/lamb.h"
#include "optim/lr_schedule.h"
#include "optim/sgd.h"
#include "optim/unfused_adam.h"
#include "perf/energy.h"
#include "perf/footprint.h"
#include "perf/roofline.h"
#include "runtime/fault_injection.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "telemetry/replay.h"
#include "trace/bert_trace_builder.h"
#include "train/trainer.h"
#include "util/csv.h"
#include "util/table.h"

#endif // BERTPROF_CORE_BERTPROF_H
