#include "core/characterizer.h"

namespace bertprof {

double
CharacterizationResult::scopeShare(const std::string &scope) const
{
    auto it = byScope.find(scope);
    if (it == byScope.end() || totalSeconds <= 0.0)
        return 0.0;
    return it->second.seconds / totalSeconds;
}

double
CharacterizationResult::subLayerShare(const std::string &sub) const
{
    auto it = bySubLayer.find(sub);
    if (it == bySubLayer.end() || totalSeconds <= 0.0)
        return 0.0;
    return it->second.seconds / totalSeconds;
}

double
CharacterizationResult::gemmShare() const
{
    if (totalSeconds <= 0.0)
        return 0.0;
    double gemm = 0.0;
    for (const char *kind : {"GEMM", "B-GEMM"}) {
        auto it = byKind.find(kind);
        if (it != byKind.end())
            gemm += it->second.seconds;
    }
    return gemm / totalSeconds;
}

CharacterizationResult
Characterizer::run(const BertConfig &config, TraceOptions options) const
{
    BertTraceBuilder builder(config, options);
    return runTrace(config, builder.buildIteration(), options);
}

CharacterizationResult
Characterizer::runTrace(const BertConfig &config, const OpTrace &trace,
                        TraceOptions options) const
{
    TraceExecutor executor(spec_);
    CharacterizationResult result;
    result.config = config;
    result.options = options;
    result.timed = executor.execute(trace);
    result.totalSeconds = result.timed.totalSeconds();
    result.kernelCount = result.timed.kernelCount();
    result.byScope = result.timed.byScope();
    result.bySubLayer = result.timed.bySubLayer();
    result.byPhase = result.timed.byPhase();
    result.byKind = result.timed.byKind();
    return result;
}

} // namespace bertprof
