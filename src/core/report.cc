#include "core/report.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <vector>

#include "perf/cost_model.h"
#include "perf/gemm_model.h"
#include "perf/roofline.h"
#include "util/units.h"

namespace bertprof {

Seconds
aggregateTotal(const std::map<std::string, TraceAggregate> &agg)
{
    Seconds total = 0.0;
    for (const auto &[name, a] : agg)
        total += a.seconds;
    return total;
}

Table
breakdownTable(const std::map<std::string, TraceAggregate> &agg,
               Seconds total_seconds, const std::string &title)
{
    Table table(title);
    table.setHeader({"Group", "Kernels", "Time", "Share", "FLOPs", "Bytes",
                     "FLOP/B"});
    for (const auto &[name, a] : agg) {
        char intensity[32];
        std::snprintf(intensity, sizeof(intensity), "%.2f",
                      a.stats.opsPerByte());
        table.addRow({name, std::to_string(a.kernelCount),
                      formatSeconds(a.seconds),
                      formatPercent(total_seconds > 0.0
                                        ? a.seconds / total_seconds
                                        : 0.0),
                      formatFlops(static_cast<double>(a.stats.flops)),
                      formatBytes(static_cast<double>(a.stats.bytesTotal())),
                      intensity});
    }
    return table;
}

std::vector<std::string>
scopeShareRow(const CharacterizationResult &result,
              const std::vector<std::string> &scopes)
{
    std::vector<std::string> row;
    row.push_back(result.config.tag());
    for (const auto &scope : scopes)
        row.push_back(formatPercent(result.scopeShare(scope)));
    return row;
}

namespace {

/** Strip the leading "encN." layer index from a kernel name. */
std::string
canonicalKernelName(const std::string &name)
{
    if (name.rfind("enc", 0) != 0)
        return name;
    const std::size_t dot = name.find('.');
    if (dot == std::string::npos)
        return name;
    // Verify the part between "enc" and '.' is numeric.
    for (std::size_t i = 3; i < dot; ++i)
        if (!std::isdigit(static_cast<unsigned char>(name[i])))
            return name;
    return "enc*." + name.substr(dot + 1);
}

} // namespace

Table
topKernelsTable(const TimedTrace &timed, std::size_t top_k)
{
    struct Agg {
        Seconds seconds = 0.0;
        std::int64_t count = 0;
        KernelStats stats;
    };
    std::map<std::string, Agg> by_name;
    for (const auto &op : timed.ops) {
        Agg &agg = by_name[canonicalKernelName(op.op.name)];
        agg.seconds += op.time.total();
        ++agg.count;
        agg.stats += op.op.stats;
    }
    std::vector<std::pair<std::string, Agg>> sorted(by_name.begin(),
                                                    by_name.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.second.seconds > b.second.seconds;
              });
    const Seconds total = timed.totalSeconds();

    Table table("Top kernels by aggregate time");
    table.setHeader({"Kernel", "Calls", "Time", "Share", "FLOP/B"});
    for (std::size_t i = 0; i < sorted.size() && i < top_k; ++i) {
        const auto &[name, agg] = sorted[i];
        char intensity[32];
        std::snprintf(intensity, sizeof(intensity), "%.2f",
                      agg.stats.opsPerByte());
        table.addRow({name, std::to_string(agg.count),
                      formatSeconds(agg.seconds),
                      formatPercent(total > 0 ? agg.seconds / total : 0),
                      intensity});
    }
    return table;
}

CsvWriter
rooflineScatterCsv(const TimedTrace &timed, const DeviceSpec &spec)
{
    CsvWriter csv;
    csv.setHeader({"kernel", "kind", "sublayer", "ops_per_byte",
                   "achieved_flops", "attainable_flops", "peak_flops"});
    KernelCostModel cost(spec);
    for (const auto &timed_op : timed.ops) {
        const OpDesc &op = timed_op.op;
        if (op.stats.flops == 0)
            continue;
        const Seconds busy =
            std::max(timed_op.time.compute, timed_op.time.memory);
        const double achieved =
            busy > 0 ? static_cast<double>(op.stats.flops) / busy : 0.0;
        const bool matrix = op.kind == OpKind::Gemm ||
                            op.kind == OpKind::BatchedGemm;
        csv.addRow({op.name, opKindName(op.kind), subLayerName(op.sub),
                    std::to_string(op.opsPerByte()),
                    std::to_string(achieved),
                    std::to_string(attainableFlops(
                        spec, op.kind, op.dtype, op.opsPerByte())),
                    std::to_string(matrix ? spec.matrixFlops(op.dtype)
                                          : spec.vectorFlops(op.dtype))});
    }
    return csv;
}

Table
gemmIntensityTable(const CharacterizationResult &result,
                   const DeviceSpec &spec, int layer_index)
{
    KernelCostModel cost(spec);
    GemmModel gemm_model(spec);
    Table table("GEMMs of transformer layer " +
                std::to_string(layer_index) + " (" + result.config.tag() +
                ")");
    table.setHeader({"Kernel", "Dims (tA,tB,M,N,K,[b])", "FLOPs", "Bytes",
                     "FLOP/B", "Eff", "BW demand", "Bound"});
    for (const auto &timed : result.timed.ops) {
        const OpDesc &op = timed.op;
        if (op.layerIndex != layer_index || op.phase != Phase::Fwd)
            continue;
        if (op.kind != OpKind::Gemm && op.kind != OpKind::BatchedGemm)
            continue;
        const auto eff = gemm_model.evaluate(op.gemm, op.dtype);
        char intensity[32], eff_str[32];
        std::snprintf(intensity, sizeof(intensity), "%.2f",
                      op.opsPerByte());
        std::snprintf(eff_str, sizeof(eff_str), "%.2f", eff.efficiency);
        table.addRow({op.name, op.gemm.label(),
                      formatFlops(static_cast<double>(op.stats.flops)),
                      formatBytes(static_cast<double>(
                          op.stats.bytesTotal())),
                      intensity, eff_str,
                      formatPercent(cost.bandwidthDemand(op)),
                      timed.time.memoryBound() ? "memory" : "compute"});
    }
    return table;
}

} // namespace bertprof
