#include "core/trace_export.h"

#include <sstream>

#include "io/binary_io.h"

namespace bertprof {

namespace {

std::string
toStr(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

/** Minimal JSON string escaping for kernel names. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

int
phaseTrack(Phase phase)
{
    switch (phase) {
      case Phase::Fwd: return 0;
      case Phase::Recompute: return 1;
      case Phase::Bwd: return 2;
      case Phase::Update: return 3;
      case Phase::Comm: return 4;
    }
    return 5;
}

} // namespace

CsvWriter
traceToCsv(const TimedTrace &timed)
{
    CsvWriter csv;
    csv.setHeader({"index", "name", "kind", "phase", "scope", "sublayer",
                   "layer", "dims", "flops", "bytes_read",
                   "bytes_written", "ops_per_byte", "compute_s",
                   "memory_s", "overhead_s", "link_s", "total_s",
                   "memory_bound"});
    for (std::size_t i = 0; i < timed.ops.size(); ++i) {
        const auto &[op, time] = timed.ops[i];
        const bool is_gemm = op.kind == OpKind::Gemm ||
                             op.kind == OpKind::BatchedGemm;
        csv.addRow({std::to_string(i), op.name, opKindName(op.kind),
                    phaseName(op.phase), layerScopeName(op.scope),
                    subLayerName(op.sub), std::to_string(op.layerIndex),
                    is_gemm ? op.gemm.label() : std::to_string(op.numel),
                    std::to_string(op.stats.flops),
                    std::to_string(op.stats.bytesRead),
                    std::to_string(op.stats.bytesWritten),
                    toStr(op.opsPerByte()), toStr(time.compute),
                    toStr(time.memory), toStr(time.overhead),
                    toStr(time.link), toStr(time.total()),
                    time.memoryBound() ? "1" : "0"});
    }
    return csv;
}

bool
writeTraceCsv(const TimedTrace &timed, const std::string &path)
{
    return traceToCsv(timed).writeFile(path);
}

std::string
traceToChromeJson(const TimedTrace &timed)
{
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    double cursor_us = 0.0;
    for (std::size_t i = 0; i < timed.ops.size(); ++i) {
        const auto &[op, time] = timed.ops[i];
        const double duration_us = time.total() * 1e6;
        if (i)
            os << ',';
        os << "{\"name\":\"" << jsonEscape(op.name)
           << "\",\"cat\":\"" << layerScopeName(op.scope)
           << "\",\"ph\":\"X\",\"ts\":" << toStr(cursor_us)
           << ",\"dur\":" << toStr(duration_us)
           << ",\"pid\":0,\"tid\":" << phaseTrack(op.phase)
           << ",\"args\":{\"sublayer\":\"" << subLayerName(op.sub)
           << "\",\"flops\":" << op.stats.flops
           << ",\"bytes\":" << op.stats.bytesTotal() << "}}";
        cursor_us += duration_us;
    }
    os << "]}";
    return os.str();
}

bool
writeChromeTrace(const TimedTrace &timed, const std::string &path)
{
    return writeTextFile(path, traceToChromeJson(timed)).ok();
}

} // namespace bertprof
