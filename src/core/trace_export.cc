#include "core/trace_export.h"

#include <sstream>

#include "io/binary_io.h"

namespace bertprof {

namespace {

std::string
toStr(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

/** Minimal JSON string escaping for kernel names. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

int
phaseTrack(Phase phase)
{
    switch (phase) {
      case Phase::Fwd: return 0;
      case Phase::Recompute: return 1;
      case Phase::Bwd: return 2;
      case Phase::Update: return 3;
      case Phase::Comm: return 4;
    }
    return 5;
}

std::string
chromeEventsJson(const std::vector<ChromeEvent> &events)
{
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const ChromeEvent &e = events[i];
        if (i)
            os << ',';
        os << "{\"name\":\"" << jsonEscape(e.name)
           << "\",\"cat\":\"" << e.cat
           << "\",\"ph\":\"X\",\"ts\":" << toStr(e.tsUs)
           << ",\"dur\":" << toStr(e.durUs)
           << ",\"pid\":0,\"tid\":" << e.tid
           << ",\"args\":{\"sublayer\":\"" << e.sublayer
           << "\",\"flops\":" << e.flops
           << ",\"bytes\":" << e.bytes << "}}";
    }
    os << "]}";
    return os.str();
}

CsvWriter
traceToCsv(const TimedTrace &timed)
{
    CsvWriter csv;
    csv.setHeader({"index", "name", "kind", "phase", "scope", "sublayer",
                   "layer", "dims", "flops", "bytes_read",
                   "bytes_written", "ops_per_byte", "compute_s",
                   "memory_s", "overhead_s", "link_s", "total_s",
                   "memory_bound"});
    for (std::size_t i = 0; i < timed.ops.size(); ++i) {
        const auto &[op, time] = timed.ops[i];
        const bool is_gemm = op.kind == OpKind::Gemm ||
                             op.kind == OpKind::BatchedGemm;
        csv.addRow({std::to_string(i), op.name, opKindName(op.kind),
                    phaseName(op.phase), layerScopeName(op.scope),
                    subLayerName(op.sub), std::to_string(op.layerIndex),
                    is_gemm ? op.gemm.label() : std::to_string(op.numel),
                    std::to_string(op.stats.flops),
                    std::to_string(op.stats.bytesRead),
                    std::to_string(op.stats.bytesWritten),
                    toStr(op.opsPerByte()), toStr(time.compute),
                    toStr(time.memory), toStr(time.overhead),
                    toStr(time.link), toStr(time.total()),
                    time.memoryBound() ? "1" : "0"});
    }
    return csv;
}

bool
writeTraceCsv(const TimedTrace &timed, const std::string &path)
{
    return traceToCsv(timed).writeFile(path);
}

std::string
traceToChromeJson(const TimedTrace &timed)
{
    std::vector<ChromeEvent> events;
    events.reserve(timed.ops.size());
    double cursor_us = 0.0;
    for (const auto &[op, time] : timed.ops) {
        ChromeEvent e;
        e.name = op.name;
        e.cat = layerScopeName(op.scope);
        e.sublayer = subLayerName(op.sub);
        e.tsUs = cursor_us;
        e.durUs = time.total() * 1e6;
        e.tid = phaseTrack(op.phase);
        e.flops = op.stats.flops;
        e.bytes = op.stats.bytesTotal();
        events.push_back(std::move(e));
        cursor_us += events.back().durUs;
    }
    return chromeEventsJson(events);
}

bool
writeChromeTrace(const TimedTrace &timed, const std::string &path)
{
    return writeTextFile(path, traceToChromeJson(timed)).ok();
}

std::string
profileToChromeJson(const std::vector<ProfileRecord> &records)
{
    std::vector<ChromeEvent> events;
    events.reserve(records.size());
    double cursor_us = 0.0;
    for (const ProfileRecord &rec : records) {
        ChromeEvent e;
        e.name = rec.name;
        e.cat = layerScopeName(rec.scope);
        e.sublayer = subLayerName(rec.sub);
        e.tsUs = cursor_us;
        e.durUs = rec.seconds * 1e6;
        e.tid = phaseTrack(rec.phase);
        e.flops = rec.stats.flops;
        e.bytes = rec.stats.bytesTotal();
        events.push_back(std::move(e));
        cursor_us += events.back().durUs;
    }
    return chromeEventsJson(events);
}

bool
writeProfileChromeTrace(const std::vector<ProfileRecord> &records,
                        const std::string &path)
{
    return writeTextFile(path, profileToChromeJson(records)).ok();
}

CsvWriter
profileToCsv(const std::vector<ProfileRecord> &records)
{
    CsvWriter csv;
    csv.setHeader({"index", "name", "kind", "phase", "scope",
                   "sublayer", "flops", "bytes_read", "bytes_written",
                   "ops_per_byte", "seconds"});
    for (std::size_t i = 0; i < records.size(); ++i) {
        const ProfileRecord &rec = records[i];
        csv.addRow({std::to_string(i), rec.name, opKindName(rec.kind),
                    phaseName(rec.phase), layerScopeName(rec.scope),
                    subLayerName(rec.sub),
                    std::to_string(rec.stats.flops),
                    std::to_string(rec.stats.bytesRead),
                    std::to_string(rec.stats.bytesWritten),
                    toStr(rec.stats.opsPerByte()),
                    toStr(rec.seconds)});
    }
    return csv;
}

bool
writeProfileCsv(const std::vector<ProfileRecord> &records,
                const std::string &path)
{
    return profileToCsv(records).writeFile(path);
}

} // namespace bertprof
