/**
 * @file
 * Characterizer: the library's top-level entry point. Wires the trace
 * builder, device model, and aggregators together and returns the
 * runtime breakdowns the paper's figures are built from. See
 * examples/quickstart.cpp for typical use.
 */

#ifndef BERTPROF_CORE_CHARACTERIZER_H
#define BERTPROF_CORE_CHARACTERIZER_H

#include <map>
#include <string>

#include "perf/executor.h"
#include "trace/bert_config.h"
#include "trace/bert_trace_builder.h"
#include "trace/trace_options.h"

namespace bertprof {

/** Everything the model produces for one training configuration. */
struct CharacterizationResult {
    BertConfig config;
    TraceOptions options;
    TimedTrace timed;
    Seconds totalSeconds = 0.0;
    std::size_t kernelCount = 0;
    /** Fig. 3 axis: Embedding / Transformer / Output / Optimizer. */
    std::map<std::string, TraceAggregate> byScope;
    /** Fig. 4 axis: sub-layer groups. */
    std::map<std::string, TraceAggregate> bySubLayer;
    /** FWD / BWD / UPDATE split. */
    std::map<std::string, TraceAggregate> byPhase;
    /** GEMM / B-GEMM / EW / Reduce / Gather split. */
    std::map<std::string, TraceAggregate> byKind;

    /** Share of total time for a scope ("Transformer", ...). */
    double scopeShare(const std::string &scope) const;

    /** Share of total time for a sub-layer group. */
    double subLayerShare(const std::string &sub) const;

    /** Share of total time spent in (batched) GEMM kernels. */
    double gemmShare() const;
};

/** Facade over trace building and device-model evaluation. */
class Characterizer
{
  public:
    explicit Characterizer(DeviceSpec spec = {}) : spec_(std::move(spec)) {}

    /** Characterize one full training iteration. */
    CharacterizationResult run(const BertConfig &config,
                               TraceOptions options = {}) const;

    /** Characterize an arbitrary pre-built trace. */
    CharacterizationResult runTrace(const BertConfig &config,
                                    const OpTrace &trace,
                                    TraceOptions options = {}) const;

    const DeviceSpec &spec() const { return spec_; }

  private:
    DeviceSpec spec_;
};

} // namespace bertprof

#endif // BERTPROF_CORE_CHARACTERIZER_H
