/**
 * @file
 * Report builders: render the paper's figures/tables from
 * characterization results (breakdown tables, GEMM intensity tables,
 * stacked-share rows). Shared by bench/ binaries and examples.
 */

#ifndef BERTPROF_CORE_REPORT_H
#define BERTPROF_CORE_REPORT_H

#include <map>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "util/csv.h"
#include "util/table.h"

namespace bertprof {

/** Render a share table from an aggregation map. */
Table breakdownTable(const std::map<std::string, TraceAggregate> &agg,
                     Seconds total_seconds, const std::string &title);

/**
 * Render one stacked-bar row (Fig. 3/8/9 style): shares of the given
 * groups (in order) as percentages of the result's total.
 */
std::vector<std::string> scopeShareRow(const CharacterizationResult &result,
                                       const std::vector<std::string>
                                           &scopes);

/**
 * Render the per-GEMM table of Fig. 6: the label in the paper's
 * "transA,transB,M,N,K,[batch]" format, FLOPs, bytes, arithmetic
 * intensity, and modeled efficiency/bandwidth demand.
 */
Table gemmIntensityTable(const CharacterizationResult &result,
                         const DeviceSpec &spec, int layer_index = 0);

/** Sum the seconds of an aggregation map. */
Seconds aggregateTotal(const std::map<std::string, TraceAggregate> &agg);

/**
 * The classic profiler view: the top-k kernels by aggregate time,
 * grouped by kernel name with per-layer indices stripped (so all 24
 * "encN.fc1.fwd" instances aggregate into one row).
 */
Table topKernelsTable(const TimedTrace &timed, std::size_t top_k = 15);

/**
 * Roofline scatter data: one row per op class with arithmetic
 * intensity and modeled achieved FLOP/s — ready to plot against the
 * device's rooflines.
 */
CsvWriter rooflineScatterCsv(const TimedTrace &timed,
                             const DeviceSpec &spec);

} // namespace bertprof

#endif // BERTPROF_CORE_REPORT_H
