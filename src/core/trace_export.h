/**
 * @file
 * Trace export: dump a timed kernel trace as CSV (one row per kernel:
 * name, taxonomy tags, dims, FLOPs, bytes, modeled times) or as
 * Chrome trace-event JSON (open in chrome://tracing or Perfetto to
 * see the iteration as a timeline with one track per phase).
 */

#ifndef BERTPROF_CORE_TRACE_EXPORT_H
#define BERTPROF_CORE_TRACE_EXPORT_H

#include <string>

#include "perf/executor.h"
#include "util/csv.h"

namespace bertprof {

/** Build a CSV table of every kernel in the timed trace. */
CsvWriter traceToCsv(const TimedTrace &timed);

/** Write the CSV to a file; returns false on I/O error. */
bool writeTraceCsv(const TimedTrace &timed, const std::string &path);

/**
 * Render Chrome trace-event JSON ("traceEvents" array of complete
 * events). Kernels are laid out back-to-back in issue order; each
 * phase gets its own thread id so FWD/BWD/UPDATE/COMM appear as
 * separate tracks.
 */
std::string traceToChromeJson(const TimedTrace &timed);

/** Write the Chrome trace JSON to a file. */
bool writeChromeTrace(const TimedTrace &timed, const std::string &path);

} // namespace bertprof

#endif // BERTPROF_CORE_TRACE_EXPORT_H
