/**
 * @file
 * Trace export: dump a kernel trace as CSV (one row per kernel: name,
 * taxonomy tags, dims, FLOPs, bytes, modeled times) or as Chrome
 * trace-event JSON (open in chrome://tracing or Perfetto to see the
 * iteration as a timeline with one track per phase).
 *
 * Two sources feed one renderer: the analytical model's TimedTrace
 * and measured ProfileRecords — either live from a Profiler or
 * replayed from a run-trace container (telemetry/replay.h). Because
 * both measured paths share chromeEventsJson(), a recorded run
 * exports byte-identical Chrome JSON to the live run it captured.
 */

#ifndef BERTPROF_CORE_TRACE_EXPORT_H
#define BERTPROF_CORE_TRACE_EXPORT_H

#include <string>
#include <vector>

#include "perf/executor.h"
#include "runtime/profiler.h"
#include "util/csv.h"

namespace bertprof {

/** One complete ("ph":"X") Chrome trace event, ready to render. */
struct ChromeEvent {
    std::string name;
    std::string cat;      ///< category (layer scope)
    std::string sublayer; ///< args.sublayer
    double tsUs = 0.0;
    double durUs = 0.0;
    int tid = 0; ///< phase track
    std::int64_t flops = 0;
    std::int64_t bytes = 0;
};

/** Phase -> timeline track id (one Chrome "thread" per phase). */
int phaseTrack(Phase phase);

/** Render events as a {"traceEvents":[...]} document. */
std::string chromeEventsJson(const std::vector<ChromeEvent> &events);

/** Build a CSV table of every kernel in the timed trace. */
CsvWriter traceToCsv(const TimedTrace &timed);

/** Write the CSV to a file; returns false on I/O error. */
bool writeTraceCsv(const TimedTrace &timed, const std::string &path);

/**
 * Render Chrome trace-event JSON ("traceEvents" array of complete
 * events). Kernels are laid out back-to-back in issue order; each
 * phase gets its own thread id so FWD/BWD/UPDATE/COMM appear as
 * separate tracks.
 */
std::string traceToChromeJson(const TimedTrace &timed);

/** Write the Chrome trace JSON to a file. */
bool writeChromeTrace(const TimedTrace &timed, const std::string &path);

/**
 * Chrome trace-event JSON for measured profiler records (live or
 * replayed), laid out back-to-back like the modeled trace.
 */
std::string profileToChromeJson(const std::vector<ProfileRecord> &records);

/** Write profiler-record Chrome JSON to a file. */
bool writeProfileChromeTrace(const std::vector<ProfileRecord> &records,
                             const std::string &path);

/** CSV table of measured profiler records (live or replayed). */
CsvWriter profileToCsv(const std::vector<ProfileRecord> &records);

/** Write the profiler-record CSV; returns false on I/O error. */
bool writeProfileCsv(const std::vector<ProfileRecord> &records,
                     const std::string &path);

} // namespace bertprof

#endif // BERTPROF_CORE_TRACE_EXPORT_H
