#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy — bugprone-*, performance-*,
# concurrency-*) over the library and tools sources using a
# compile_commands.json produced in build-tidy/.
#
# Usage: scripts/run_clang_tidy.sh [--strict] [path-filter-regex]
#   Default: skips gracefully (exit 0) when clang-tidy is not
#   installed, so the static-analysis driver works on minimal
#   containers. --strict makes a missing binary a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

STRICT=0
FILTER=""
for arg in "$@"; do
    case "${arg}" in
        --strict) STRICT=1 ;;
        *) FILTER="${arg}" ;;
    esac
done

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY}" >/dev/null 2>&1; then
    if [[ "${STRICT}" == 1 ]]; then
        echo "run_clang_tidy: ${TIDY} not found (--strict)" >&2
        exit 1
    fi
    echo "run_clang_tidy: ${TIDY} not found; skipping (install LLVM or set CLANG_TIDY)."
    exit 0
fi

BUILD_DIR=build-tidy
cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

FILES=$(find src tools -name '*.cc' | sort)
if [[ -n "${FILTER}" ]]; then
    FILES=$(echo "${FILES}" | grep -E "${FILTER}" || true)
fi

STATUS=0
for f in ${FILES}; do
    echo "== clang-tidy ${f}"
    "${TIDY}" -p "${BUILD_DIR}" --quiet "${f}" || STATUS=1
done
exit "${STATUS}"
