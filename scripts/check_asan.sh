#!/usr/bin/env bash
# Build the tree under AddressSanitizer and run the tier-1 test suite,
# so heap/stack out-of-bounds and use-after-free in the kernels (and
# the thread pool's lifetime handling) surface deterministically.
#
# Usage: scripts/check_asan.sh [ctest-label-regex]
#   With no argument the full suite runs; pass e.g. "gemm" to restrict
#   to the GEMM tests, "robust" for the checkpoint/fault-injection
#   suites, or "serve" for the serving runtime. The full run and the
#   "robust" run also execute the kill-and-resume smoke
#   (scripts/check_resume.sh) against this sanitized build.
#
# Env passthrough (defaults in parentheses):
#   BERTPROF_NUM_THREADS (8)  pool width while testing
#   BERTPROF_GEMM_IMPL (packed)  GEMM engine: packed | reference
#   BERTPROF_FUSION (off)  fused kernels + graph executor: on | off
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-asan
LABEL="${1:-}"

cmake -B "${BUILD_DIR}" -S . -DBERTPROF_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)"

export BERTPROF_NUM_THREADS="${BERTPROF_NUM_THREADS:-8}"
export BERTPROF_GEMM_IMPL="${BERTPROF_GEMM_IMPL:-packed}"
export BERTPROF_FUSION="${BERTPROF_FUSION:-off}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 abort_on_error=0 exitcode=66}"

if [[ -n "${LABEL}" ]]; then
    ctest --test-dir "${BUILD_DIR}" -L "${LABEL}" --output-on-failure
else
    ctest --test-dir "${BUILD_DIR}" --output-on-failure
fi
if [[ -z "${LABEL}" || "${LABEL}" == "robust" ]]; then
    scripts/check_resume.sh "${BUILD_DIR}"
fi
echo "AddressSanitizer run clean (GEMM_IMPL=${BERTPROF_GEMM_IMPL}," \
     "FUSION=${BERTPROF_FUSION})."
