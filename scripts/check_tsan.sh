#!/usr/bin/env bash
# Build the tree under ThreadSanitizer and run the tier-1 test suite
# with the thread pool forced wide, so races in src/runtime and the
# parallelized ops surface even on small machines.
#
# Usage: scripts/check_tsan.sh [ctest-label-regex]
#   With no argument the full suite runs; pass e.g. "parallel" to
#   restrict to the runtime/ops parallelism tests, "robust" for the
#   checkpoint/fault-injection suites, "serve" for the serving
#   runtime (dynamic batcher + 8 concurrent client threads — the
#   serving suite must be TSan-clean at this width), or "telemetry"
#   for the trace recorder (8 producer threads + the background
#   flusher against one container). The full run and
#   the "robust" run also execute the kill-and-resume smoke
#   (scripts/check_resume.sh) against this sanitized build.
#
# Env passthrough (defaults in parentheses):
#   BERTPROF_NUM_THREADS (8)  pool width while testing
#   BERTPROF_GEMM_IMPL (packed)  GEMM engine: packed | reference —
#     sweep both so the sanitizer matrix covers the reference engine's
#     row partition as well as the packed engine's thread-local
#     packing buffers.
#   BERTPROF_FUSION (off)  fused kernels + graph executor: on | off —
#     sweep both so the matrix also covers the fused kernels'
#     thread-local scratch rows and the arena-backed executor.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
LABEL="${1:-}"

cmake -B "${BUILD_DIR}" -S . -DBERTPROF_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# Force real parallelism regardless of the host's core count: races
# only exist when multiple workers touch the kernels. The packed GEMM
# engine is the default code under test (thread-local packing buffers,
# row-sliced writes); override BERTPROF_GEMM_IMPL=reference to sweep
# the other engine.
export BERTPROF_NUM_THREADS="${BERTPROF_NUM_THREADS:-8}"
export BERTPROF_GEMM_IMPL="${BERTPROF_GEMM_IMPL:-packed}"
export BERTPROF_FUSION="${BERTPROF_FUSION:-off}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=0 exitcode=66}"

if [[ -n "${LABEL}" ]]; then
    ctest --test-dir "${BUILD_DIR}" -L "${LABEL}" --output-on-failure
else
    ctest --test-dir "${BUILD_DIR}" --output-on-failure
fi
if [[ -z "${LABEL}" || "${LABEL}" == "robust" ]]; then
    scripts/check_resume.sh "${BUILD_DIR}"
fi
# The overload chaos smoke under TSan: 8 client threads + the
# executor with submit/batch/compute faults armed is exactly the
# interleaving soup where a shedding-path race would hide.
if [[ -z "${LABEL}" || "${LABEL}" == "serve" ]]; then
    scripts/check_chaos.sh "${BUILD_DIR}"
fi
echo "ThreadSanitizer run clean (GEMM_IMPL=${BERTPROF_GEMM_IMPL}," \
     "FUSION=${BERTPROF_FUSION})."
