#!/usr/bin/env bash
# Build the tree under UndefinedBehaviorSanitizer and run the tier-1
# test suite: signed overflow, misaligned access, bad shifts, and
# float-cast overflow in the kernels become hard failures.
#
# Usage: scripts/check_ubsan.sh [ctest-label-regex]
#   With no argument the full suite runs; pass e.g. "gemm" to restrict
#   to the GEMM tests, "robust" for the checkpoint/fault-injection
#   suites, or "serve" for the serving runtime. The full run and the
#   "robust" run also execute the kill-and-resume smoke
#   (scripts/check_resume.sh) against this sanitized build.
#
# Env passthrough (defaults in parentheses):
#   BERTPROF_NUM_THREADS (8)  pool width while testing
#   BERTPROF_GEMM_IMPL (packed)  GEMM engine: packed | reference
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-ubsan
LABEL="${1:-}"

cmake -B "${BUILD_DIR}" -S . -DBERTPROF_SANITIZE=undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)"

export BERTPROF_NUM_THREADS="${BERTPROF_NUM_THREADS:-8}"
export BERTPROF_GEMM_IMPL="${BERTPROF_GEMM_IMPL:-packed}"
# halt_on_error makes every UB report fail the owning test instead of
# scrolling past as a warning.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1 exitcode=66}"

if [[ -n "${LABEL}" ]]; then
    ctest --test-dir "${BUILD_DIR}" -L "${LABEL}" --output-on-failure
else
    ctest --test-dir "${BUILD_DIR}" --output-on-failure
fi
if [[ -z "${LABEL}" || "${LABEL}" == "robust" ]]; then
    scripts/check_resume.sh "${BUILD_DIR}"
fi
echo "UndefinedBehaviorSanitizer run clean (GEMM_IMPL=${BERTPROF_GEMM_IMPL})."
