#!/usr/bin/env bash
# Build, test, and regenerate every paper figure/table into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Crash-safety coverage beyond what in-process tests can show: the
# `robust` label re-runs the checkpoint/fault-injection/resume suites
# explicitly, and check_resume.sh kills a real training process inside
# the optimizer step and verifies the resumed run's final checkpoint
# is byte-identical to an uninterrupted one.
ctest --test-dir build -L robust --output-on-failure
scripts/check_resume.sh build

# Serving-runtime smoke: eval-mode determinism, padding invariance,
# batcher policy, admission control / shedding / degradation ladder,
# and the end-to-end server (the `serve` label also covers the
# bench_serving --quick naive-vs-bucketed comparison).
ctest --test-dir build -L serve --output-on-failure

# Overload chaos smoke: serve_chaos out-of-process at 4x capacity
# with serve.submit/serve.batch/serve.compute faults armed — clean
# shutdown and zero unresolved futures under every plan.
scripts/check_chaos.sh build

# Fusion smoke: fused-kernel / graph-executor parity suites plus the
# measured fused-vs-unfused quick bench (BERTPROF_FUSION defaults off,
# so everything above ran the unfused oracle path).
ctest --test-dir build -L fusion --output-on-failure
build/bench/bench_fusion --quick | tail -3

# Telemetry smoke: record a real (quick) train+eval run into a trace
# container, then replay it with bptrace — the breakdown aggregates
# and stats must come back out of the file the run just wrote. The
# `telemetry` label covers the container/recorder/metrics unit suites.
ctest --test-dir build -L telemetry --output-on-failure
mkdir -p results
build/bench/bench_trace_overhead --quick \
    --record results/run_all_smoke.bptr >/dev/null
build/tools/bptrace/bptrace results/run_all_smoke.bptr \
    --breakdown all --stats | tee results/bptrace_replay.txt
rm -f results/run_all_smoke.bptr

# Cheap static-analysis stages (bplint + -Werror build + clang-tidy);
# run the full sanitizer matrix separately via
# scripts/run_static_analysis.sh when touching kernels or the runtime.
scripts/run_static_analysis.sh --quick

mkdir -p results
for bench in build/bench/bench_*; do
    name="$(basename "$bench")"
    echo "== ${name} =="
    "$bench" | tee "results/${name}.txt"
done
echo "All experiment outputs are in results/."
