#!/usr/bin/env bash
# The full static-analysis and hardening matrix, in increasing cost
# order:
#   1. bplint        — repo-invariant lint (sub-second)
#   2. -Werror build — -Wall -Wextra promoted to errors
#   3. clang-tidy    — bugprone/performance/concurrency (skips if the
#                      binary is absent)
#   4. ASan, UBSan, TSan tier-1 runs (unless --quick)
#
# Usage: scripts/run_static_analysis.sh [--quick] [ctest-label-regex]
#   --quick runs only the cheap stages (1-3); the label regex, when
#   given, restricts the sanitizer suites (e.g. "gemm|parallel").
#   BERTPROF_GEMM_IMPL/BERTPROF_NUM_THREADS pass through to the
#   sanitizer harnesses so both GEMM engines can be swept.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
LABEL=""
for arg in "$@"; do
    case "${arg}" in
        --quick) QUICK=1 ;;
        *) LABEL="${arg}" ;;
    esac
done

echo "=== [1/4] bplint invariant checks ==="
BUILD_DIR=build-lint
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" --target bplint -j "$(nproc)" >/dev/null
mkdir -p results
"${BUILD_DIR}/tools/bplint/bplint" \
    --env-doc README.md --sarif results/bplint.sarif \
    src bench tests tools examples

echo "=== [2/4] -Werror hardened build ==="
cmake -B build-werror -S . -DBERTPROF_WERROR=ON >/dev/null
cmake --build build-werror -j "$(nproc)"

echo "=== [3/4] clang-tidy ==="
scripts/run_clang_tidy.sh

if [[ "${QUICK}" == 1 ]]; then
    echo "=== --quick: skipping sanitizer suites ==="
    echo "Static analysis clean."
    exit 0
fi

echo "=== [4/4] sanitizer matrix (ASan, UBSan, TSan) ==="
scripts/check_asan.sh "${LABEL}"
scripts/check_ubsan.sh "${LABEL}"
scripts/check_tsan.sh "${LABEL}"
echo "Static analysis and sanitizer matrix clean."
