#!/usr/bin/env bash
# Build Release and capture the perf-trajectory benchmarks: the GEMM
# engine comparison (packed microkernel vs reference, Table 2b
# BERT-Large shapes), the parallel-scaling sweep, and the serving
# runtime's naive-vs-bucketed load sweep. Text goes to results/ as
# the human-readable snapshot; results/BENCH_gemm.json,
# results/BENCH_serving.json, and results/BENCH_trace.json are the
# machine-readable records successive PRs can diff for the perf
# trajectory (BENCH_trace.json guards the telemetry recorder's
# <5% overhead budget).
#
# Usage: scripts/run_bench.sh [--native]
#   --native configures with -DBERTPROF_NATIVE=ON (-march=native) so
#   the microkernel vectorizes to the host's widest FMA ISA. Results
#   captured this way are only comparable to other --native runs.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"
NATIVE=OFF
if [[ "${1:-}" == "--native" ]]; then
    NATIVE=ON
    BUILD_DIR="${BUILD_DIR}-native"
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release \
    -DBERTPROF_NATIVE="${NATIVE}"
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
    --target bench_gemm_microkernel bench_cpu_parallel_scaling \
    bench_serving bench_trace_overhead bench_fusion bench_bplint

mkdir -p results
"${BUILD_DIR}/bench/bench_gemm_microkernel" \
    --json results/BENCH_gemm.json \
    | tee results/bench_gemm_microkernel.txt
"${BUILD_DIR}/bench/bench_cpu_parallel_scaling" \
    | tee results/bench_cpu_parallel_scaling.txt
"${BUILD_DIR}/bench/bench_serving" \
    --json results/BENCH_serving.json \
    | tee results/bench_serving.txt
"${BUILD_DIR}/bench/bench_serving" --overload \
    --json results/BENCH_serving_overload.json \
    | tee results/bench_serving_overload.txt
"${BUILD_DIR}/bench/bench_trace_overhead" \
    --json results/BENCH_trace.json \
    --record results/bench_trace_overhead.bptr \
    | tee results/bench_trace_overhead.txt
"${BUILD_DIR}/bench/bench_fusion" \
    --json results/BENCH_fusion.json \
    | tee results/bench_fusion.txt
"${BUILD_DIR}/bench/bench_bplint" \
    --json results/BENCH_lint.json \
    | tee results/bench_bplint.txt

echo "snapshots: results/bench_gemm_microkernel.txt," \
     "results/BENCH_gemm.json, results/bench_cpu_parallel_scaling.txt," \
     "results/bench_serving.txt, results/BENCH_serving.json," \
     "results/bench_serving_overload.txt," \
     "results/BENCH_serving_overload.json," \
     "results/bench_trace_overhead.txt, results/BENCH_trace.json," \
     "results/bench_fusion.txt, results/BENCH_fusion.json," \
     "results/bench_bplint.txt, results/BENCH_lint.json"
