#!/usr/bin/env bash
# Out-of-process chaos smoke for the serving runtime's overload
# tentpole: run examples/serve_chaos (8 client threads, open-loop
# Poisson traffic at 4x the measured capacity) with BERTPROF_FAULT
# arming the serve.submit / serve.batch / serve.compute sites, and
# assert the resilience contract — clean exit, no deadlock (a
# watchdog bounds the whole run), and "unresolved futures: 0" (every
# submission resolved exactly once, with logits or a typed
# rejection).
#
# Usage: scripts/check_chaos.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BIN="${BUILD_DIR}/examples/serve_chaos"
if [[ ! -x "${BIN}" ]]; then
    cmake --build "${BUILD_DIR}" --target serve_chaos
fi

run_plan() {
    local name="$1" faults="$2"
    echo "== chaos plan: ${name} (${faults}) =="
    local out
    # timeout(1) is the deadlock watchdog: a hung executor or an
    # unresolved future parks a client thread forever, and the run
    # must die loudly instead.
    out="$(BERTPROF_FAULT="${faults}" timeout 120 "${BIN}" \
        --load 4 --requests 16 2>&1)" || {
        echo "${out}"
        echo "check_chaos: plan '${name}' FAILED (exit or watchdog)"
        exit 1
    }
    echo "${out}" | tail -3
    if ! grep -q "unresolved futures: 0" <<<"${out}"; then
        echo "check_chaos: plan '${name}' leaked futures"
        exit 1
    fi
}

# Stalled compute + refused admissions: the ISSUE's reference plan.
run_plan "slow-compute+reject-submit" \
    "slow=5000@serve.compute:2+6;reject@serve.submit:3+10"
# Batch-forming rejections while compute also poisons some logits.
run_plan "reject-batch+nan-compute" \
    "reject@serve.batch:2+4;nan@serve.compute:1+3"
# Everything at once, repeating.
run_plan "combined" \
    "slow=2000@serve.submit:5+4;slow=4000@serve.compute:1+8;reject@serve.batch:6+2"

echo "check_chaos: all plans clean (no deadlock, zero unresolved futures)."
