#!/usr/bin/env bash
# Kill-and-resume smoke test for the checkpoint/restore subsystem.
#
# Drives examples/train_tiny_bert end-to-end from the outside, the way
# a preempted job actually dies: one uninterrupted run to step 2k, one
# run killed *inside* the optimizer step via the fault injector
# (BERTPROF_FAULT=kill@optim.step:N -> std::_Exit(137)) and resumed
# with --resume. The final checkpoints of both runs must be
# byte-identical (the format holds no timestamps), which cmp(1)
# verifies without trusting any in-process comparison.
#
# Usage: scripts/check_resume.sh [build-dir]
#   Default build dir: build. The example binary must already be
#   built there (scripts/run_all.sh does this).
#
# Env passthrough (defaults in parentheses):
#   BERTPROF_NUM_THREADS (8)  pool width; resume equivalence must
#     hold at every fixed thread count, so sweep 1 and 8 if in doubt.
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BIN="${BUILD_DIR}/examples/train_tiny_bert"
ITERS=10
EVERY=5
KILL_AT=7 # between the step-5 checkpoint and step 10

if [[ ! -x "${BIN}" ]]; then
    echo "check_resume: ${BIN} not built" >&2
    exit 1
fi

export BERTPROF_NUM_THREADS="${BERTPROF_NUM_THREADS:-8}"

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

echo "== uninterrupted run (${ITERS} steps, checkpoint every ${EVERY}) =="
"${BIN}" --iters "${ITERS}" --checkpoint-every "${EVERY}" \
    --checkpoint-dir "${WORK}/full" >"${WORK}/full.log" || {
    echo "check_resume: uninterrupted run failed" >&2
    cat "${WORK}/full.log" >&2
    exit 1
}

echo "== victim run: killed inside optimizer step ${KILL_AT} =="
BERTPROF_FAULT="kill@optim.step:${KILL_AT}" \
    "${BIN}" --iters "${ITERS}" --checkpoint-every "${EVERY}" \
    --checkpoint-dir "${WORK}/killed" >"${WORK}/killed.log"
status=$?
if [[ "${status}" -ne 137 ]]; then
    echo "check_resume: expected the injected kill (exit 137)," \
        "got exit ${status}" >&2
    exit 1
fi
if [[ -f "${WORK}/killed/ckpt-${ITERS}.bpck" ]]; then
    echo "check_resume: victim should have died before step ${ITERS}" >&2
    exit 1
fi

echo "== resume from the step-${EVERY} checkpoint =="
"${BIN}" --iters "${ITERS}" --checkpoint-every "${EVERY}" \
    --checkpoint-dir "${WORK}/killed" --resume \
    >"${WORK}/resume.log" || {
    echo "check_resume: resume run failed" >&2
    cat "${WORK}/resume.log" >&2
    exit 1
}

if ! cmp "${WORK}/full/ckpt-${ITERS}.bpck" \
    "${WORK}/killed/ckpt-${ITERS}.bpck"; then
    echo "check_resume: resumed run diverged from the uninterrupted" \
        "run at step ${ITERS}" >&2
    exit 1
fi
echo "Kill-and-resume smoke passed: step-${ITERS} checkpoints are" \
    "byte-identical (threads=${BERTPROF_NUM_THREADS})."
