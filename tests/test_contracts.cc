/**
 * @file
 * Death tests for the contract layer: shape mismatches, aliasing
 * violations, and (debug builds) out-of-range Tensor access must all
 * fail loudly at the op boundary instead of corrupting results.
 * BP_CHECK_* contracts exit(1) with a "... contract failed" message;
 * the debug BP_ASSERT tier aborts.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <limits>

#include "ops/activation.h"
#include "ops/cross_entropy.h"
#include "ops/dropout.h"
#include "ops/elementwise.h"
#include "ops/embedding.h"
#include "ops/layernorm.h"
#include "ops/reshape.h"
#include "ops/softmax.h"
#include "optim/adam.h"
#include "tensor/contracts.h"
#include "util/rng.h"

namespace bertprof {
namespace {

using ::testing::ExitedWithCode;

// --------------------------------------------------------------------
// Aliasing predicate sanity (non-death).
// --------------------------------------------------------------------

TEST(ContractPredicates, StorageRelations)
{
    Tensor a(Shape({4, 4})), b(Shape({4, 4}));
    EXPECT_TRUE(contracts::sameStorage(a, a));
    EXPECT_FALSE(contracts::sameStorage(a, b));
    EXPECT_TRUE(contracts::storageDisjoint(a, b));
    EXPECT_FALSE(contracts::storageDisjoint(a, a));
    EXPECT_TRUE(contracts::exactAliasOrDisjoint(a, a));
    EXPECT_TRUE(contracts::exactAliasOrDisjoint(a, b));
}

TEST(ContractPredicates, AllFinite)
{
    Tensor t(Shape({8}));
    EXPECT_TRUE(contracts::allFinite(t));
    t.data()[3] = std::numeric_limits<float>::infinity();
    EXPECT_FALSE(contracts::allFinite(t));
    t.data()[3] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(contracts::allFinite(t));
}

// --------------------------------------------------------------------
// In-place (exact alias) stays legal where the kernels support it.
// --------------------------------------------------------------------

TEST(ContractAlias, ExactAliasIsAllowedForElementwise)
{
    Tensor a(Shape({8}), std::vector<float>(8, 2.0f));
    Tensor b(Shape({8}), std::vector<float>(8, 3.0f));
    addForward(a, b, a); // out == a in place
    EXPECT_FLOAT_EQ(a.at(0), 5.0f);
    geluForward(a, a);
    softmaxForward(a, a);
    EXPECT_NEAR(a.sum(), 1.0, 1e-5);
}

// --------------------------------------------------------------------
// Shape contracts.
// --------------------------------------------------------------------

TEST(ContractShapeDeath, ElementwiseMismatch)
{
    Tensor a(Shape({4})), b(Shape({5})), out(Shape({4}));
    EXPECT_EXIT(addForward(a, b, out), ExitedWithCode(1),
                "shape contract failed");
    EXPECT_EXIT(mulForward(a, b, out), ExitedWithCode(1),
                "shape contract failed");
    Tensor out5(Shape({5}));
    EXPECT_EXIT(scaleForward(a, 2.0f, out5), ExitedWithCode(1),
                "shape contract failed");
}

TEST(ContractShapeDeath, RankContractNamesTheTensor)
{
    Tensor bias(Shape({2, 2})); // bias must be rank 1
    Tensor in(Shape({4, 4})), out(Shape({4, 4}));
    EXPECT_EXIT(biasForward(in, bias, out), ExitedWithCode(1),
                "rank contract failed");
}

TEST(ContractShapeDeath, SoftmaxBackwardMismatch)
{
    Tensor y(Shape({2, 4})), dy(Shape({2, 5})), dx(Shape({2, 4}));
    EXPECT_EXIT(softmaxBackward(y, dy, dx), ExitedWithCode(1),
                "shape contract failed");
}

TEST(ContractShapeDeath, CrossEntropyMismatch)
{
    Tensor logits(Shape({2, 4})), dlogits(Shape({2, 5}));
    std::vector<std::int64_t> labels = {0, 1};
    EXPECT_EXIT(softmaxCrossEntropy(logits, labels, dlogits),
                ExitedWithCode(1), "shape contract failed");
}

// --------------------------------------------------------------------
// Aliasing contracts at op entry points.
// --------------------------------------------------------------------

/** A tensor whose storage partially overlaps another's cannot be
 * built from the public API (Tensor owns its buffer), so partial
 * overlap is exercised where it matters most: exact-alias bans. */
TEST(ContractAliasDeath, LayerNormBackwardRejectsInPlace)
{
    const std::int64_t rows = 2, cols = 4;
    Tensor in(Shape({rows, cols})), gamma(Shape({cols}));
    Tensor beta(Shape({cols})), out(in.shape());
    Tensor mean(Shape({rows})), rstd(Shape({rows}));
    Rng rng(7);
    in.fillNormal(rng);
    gamma.fill(1.0f);
    layerNormForward(in, gamma, beta, out, mean, rstd);

    Tensor dout(in.shape()), dgamma(Shape({cols})), dbeta(Shape({cols}));
    dout.fill(1.0f);
    // din == dout: pass 2 re-reads dout after pass 1 wrote din.
    EXPECT_EXIT(layerNormBackward(in, gamma, mean, rstd, dout, dout,
                                  dgamma, dbeta),
                ExitedWithCode(1), "alias contract failed");
    // din == in: same hazard against the saved activations.
    EXPECT_EXIT(layerNormBackward(in, gamma, mean, rstd, dout, in,
                                  dgamma, dbeta),
                ExitedWithCode(1), "alias contract failed");
}

TEST(ContractAliasDeath, LayerNormForwardRejectsStatsAliasing)
{
    const std::int64_t rows = 4, cols = 4;
    Tensor in(Shape({rows, cols})), gamma(Shape({cols}));
    Tensor beta(Shape({cols})), out(in.shape());
    Tensor mean(Shape({rows})), rstd(Shape({rows}));
    // mean aliasing the output corrupts rows as they are written.
    EXPECT_EXIT(layerNormForward(in, gamma, beta, out, mean, out, 1e-5f),
                ExitedWithCode(1), "alias contract failed");
}

TEST(ContractAliasDeath, DropoutRejectsMaskAliasing)
{
    Tensor in(Shape({8})), out(Shape({8}));
    Rng rng(3);
    // mask == in: the serial mask pass would clobber the input.
    EXPECT_EXIT(dropoutForward(in, 0.5f, rng, out, in), ExitedWithCode(1),
                "alias contract failed");
    // mask == out: applying the mask would destroy it for backward.
    EXPECT_EXIT(dropoutForward(in, 0.5f, rng, out, out),
                ExitedWithCode(1), "alias contract failed");
    Tensor mask(Shape({8})), din(Shape({8}));
    EXPECT_EXIT(dropoutBackward(out, mask, mask), ExitedWithCode(1),
                "alias contract failed");
}

TEST(ContractAliasDeath, TransposeAndHeadReshapesRejectInPlace)
{
    Tensor sq(Shape({4, 4}));
    EXPECT_EXIT(transpose2d(sq, sq), ExitedWithCode(1),
                "alias contract failed");
    Tensor flat(Shape({4, 8})), packed(Shape({8, 2, 2}));
    EXPECT_EXIT(splitHeads(flat, 2, 2, 4, flat), ExitedWithCode(1),
                "contract failed");
    EXPECT_EXIT(mergeHeads(packed, 2, 2, 4, packed), ExitedWithCode(1),
                "contract failed");
}

TEST(ContractAliasDeath, EmbeddingRejectsTableAliasing)
{
    Tensor table(Shape({4, 4}));
    std::vector<std::int64_t> ids = {0, 1, 2, 3};
    EXPECT_EXIT(embeddingForward(table, ids, table), ExitedWithCode(1),
                "alias contract failed");
    EXPECT_EXIT(embeddingBackward(table, ids, table), ExitedWithCode(1),
                "alias contract failed");
}

TEST(ContractAliasDeath, CrossEntropyRejectsLogitGradAliasing)
{
    Tensor logits(Shape({2, 4}));
    std::vector<std::int64_t> labels = {0, 1};
    // dlogits is zero-filled before logits are read.
    EXPECT_EXIT(softmaxCrossEntropy(logits, labels, logits),
                ExitedWithCode(1), "alias contract failed");
}

TEST(ContractAliasDeath, ResidualAddRejectsMaskAliasing)
{
    Tensor a(Shape({2, 4, 4})), mask(Shape({1, 4, 4}));
    EXPECT_EXIT(batchMaskAddForward(a, mask, 2, mask), ExitedWithCode(1),
                "shape contract failed");
    Tensor out(a.shape());
    EXPECT_EXIT(maskAddForward(a, out, out), ExitedWithCode(1),
                "alias contract failed");
}

// --------------------------------------------------------------------
// Optimizer entry contract.
// --------------------------------------------------------------------

TEST(ContractOptimizerDeath, StepRejectsMisshapenGrad)
{
    Parameter p("w", Shape({4, 4}));
    p.grad = Tensor(Shape({2, 2}));
    Adam adam(OptimizerConfig{});
    std::vector<Parameter *> params = {&p};
    EXPECT_EXIT(adam.step(params), ExitedWithCode(1),
                "shape contract failed");
}

TEST(ContractOptimizerDeath, StepRejectsNullParameter)
{
    Adam adam(OptimizerConfig{});
    std::vector<Parameter *> params = {nullptr};
    EXPECT_EXIT(adam.step(params), ExitedWithCode(1),
                "requirement failed");
}

// --------------------------------------------------------------------
// Debug bounds tier (BP_ASSERT): active only without NDEBUG.
// --------------------------------------------------------------------

#ifndef NDEBUG
TEST(ContractBoundsDeath, TensorAtOutOfRangeAborts)
{
    Tensor t(Shape({2, 3}));
    EXPECT_EXIT({ t.at(6); }, ::testing::KilledBySignal(SIGABRT),
                "assertion failed");
    EXPECT_EXIT({ t.at(-1); }, ::testing::KilledBySignal(SIGABRT),
                "assertion failed");
    EXPECT_EXIT({ t.at(2, 0); }, ::testing::KilledBySignal(SIGABRT),
                "assertion failed");
    EXPECT_EXIT({ t(0, 3); }, ::testing::KilledBySignal(SIGABRT),
                "assertion failed");
}
#else
TEST(ContractBounds, ReleaseTierCompilesOut)
{
    // In NDEBUG builds the bounds tier must cost nothing: operator()
    // on a valid index still works, and BP_ASSERT conditions are
    // never evaluated (see test_util.cc for the direct check).
    Tensor t(Shape({2, 3}));
    t(1, 2) = 7.0f;
    EXPECT_FLOAT_EQ(t(1, 2), 7.0f);
    EXPECT_FLOAT_EQ(t(5), 7.0f);
}
#endif

} // namespace
} // namespace bertprof
