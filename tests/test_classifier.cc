/** Tests for the substrate fine-tuning classifier and gradient
 *  accumulation. */

#include <cmath>

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "data/synthetic.h"
#include "nn/bert_classifier.h"
#include "optim/adam.h"
#include "test_helpers.h"
#include "trace/bert_trace_builder.h"

namespace bertprof {
namespace {

BertConfig
tinyClassifierConfig()
{
    BertConfig config = testing::tinyBertConfig();
    config.taskHead = TaskHead::SequenceClassification;
    config.numClasses = 2;
    config.optimizer = OptimizerKind::Adam;
    return config;
}

TEST(BertClassifier, LossStartsNearLogClasses)
{
    const BertConfig config = tinyClassifierConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;
    BertClassifier classifier(config, &rt);
    Rng init(31);
    classifier.initialize(init);
    SyntheticDataset dataset(config, 41);
    const auto result =
        classifier.forwardBackward(dataset.nextClassificationBatch());
    EXPECT_NEAR(result.loss, std::log(2.0), 0.5);
    EXPECT_GE(result.accuracy, 0.0);
    EXPECT_LE(result.accuracy, 1.0);
}

TEST(BertClassifier, FineTuningLearnsTheStripeTask)
{
    const BertConfig config = tinyClassifierConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;
    BertClassifier classifier(config, &rt);
    Rng init(32);
    classifier.initialize(init);
    SyntheticDataset dataset(config, 42);

    OptimizerConfig opt_config;
    opt_config.learningRate = 2e-3f;
    opt_config.weightDecay = 0.0f;
    Adam adam(opt_config);
    auto params = classifier.parameters();

    double first = 0.0, last = 0.0;
    const int iters = 30;
    for (int it = 0; it < iters; ++it) {
        classifier.zeroGrad();
        const auto result = classifier.forwardBackward(
            dataset.nextClassificationBatch());
        if (it < 5)
            first += result.loss;
        if (it >= iters - 5)
            last += result.loss;
        adam.step(params);
    }
    EXPECT_LT(last, first) << "classification fine-tuning did not learn";
}

TEST(BertClassifier, PredictIsConsistentWithLogits)
{
    const BertConfig config = tinyClassifierConfig();
    NnRuntime rt;
    BertClassifier classifier(config, &rt);
    Rng init(33);
    classifier.initialize(init);
    SyntheticDataset dataset(config, 43);
    const auto batch = dataset.nextClassificationBatch();
    const auto predictions = classifier.predict(batch);
    ASSERT_EQ(predictions.size(),
              static_cast<std::size_t>(config.batch));
    for (auto p : predictions) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, config.numClasses);
    }
}

TEST(BertClassifier, ParameterCountMatchesConfig)
{
    const BertConfig config = tinyClassifierConfig();
    NnRuntime rt;
    BertClassifier classifier(config, &rt);
    EXPECT_EQ(classifier.parameterCount(), config.parameterCount());
}

TEST(BertClassifier, GemmFlopsMatchTraceBuilder)
{
    // Cross-validation for the fine-tuning head too.
    const BertConfig config = tinyClassifierConfig();
    NnRuntime rt;
    Profiler profiler;
    rt.profiler = &profiler;
    rt.dropoutP = 0.0f;
    BertClassifier classifier(config, &rt);
    Rng init(34);
    classifier.initialize(init);
    SyntheticDataset dataset(config, 44);
    classifier.zeroGrad();
    classifier.forwardBackward(dataset.nextClassificationBatch());

    std::int64_t substrate = 0;
    for (const auto &rec : profiler.records())
        if (rec.scope == LayerScope::Output &&
            (rec.kind == OpKind::Gemm ||
             rec.kind == OpKind::BatchedGemm))
            substrate += rec.stats.flops;
    BertTraceBuilder builder(config);
    std::int64_t modeled = 0;
    OpTrace trace = builder.buildForward();
    trace.append(builder.buildBackward());
    for (const auto &op : trace.ops)
        if (op.scope == LayerScope::Output &&
            (op.kind == OpKind::Gemm || op.kind == OpKind::BatchedGemm))
            modeled += op.stats.flops;
    EXPECT_EQ(substrate, modeled);
}

TEST(ClassificationData, LabelsWithinRangeAndBalancedish)
{
    BertConfig config = tinyClassifierConfig();
    config.numClasses = 3;
    SyntheticDataset dataset(config, 45);
    std::vector<int> histogram(3, 0);
    for (int i = 0; i < 60; ++i) {
        const auto batch = dataset.nextClassificationBatch();
        for (auto label : batch.labels) {
            ASSERT_GE(label, 0);
            ASSERT_LT(label, 3);
            ++histogram[static_cast<std::size_t>(label)];
        }
    }
    for (int count : histogram)
        EXPECT_GT(count, 10);
}

TEST(GradAccumulation, TraceRepeatsFwdBwdButNotUpdate)
{
    BertConfig config = withPhase1(bertLarge(), 8);
    BertConfig accum = config;
    accum.gradAccumulationSteps = 4;
    BertTraceBuilder base(config);
    BertTraceBuilder acc(accum);
    const OpTrace base_trace = base.buildIteration();
    const OpTrace acc_trace = acc.buildIteration();

    auto count_phase = [](const OpTrace &trace, Phase phase) {
        std::int64_t n = 0;
        for (const auto &op : trace.ops)
            n += op.phase == phase ? 1 : 0;
        return n;
    };
    EXPECT_EQ(count_phase(acc_trace, Phase::Fwd),
              4 * count_phase(base_trace, Phase::Fwd));
    EXPECT_EQ(count_phase(acc_trace, Phase::Update),
              count_phase(base_trace, Phase::Update));
}

TEST(GradAccumulation, LambShareShrinksWithAccumulation)
{
    // The paper's Takeaway 1 mechanism in reverse: more tokens per
    // update -> smaller LAMB share.
    Characterizer characterizer(mi100());
    BertConfig base = withPhase1(bertLarge(), 4);
    BertConfig accum = base;
    accum.gradAccumulationSteps = 8;
    const double lamb_base =
        characterizer.run(base).scopeShare("Optimizer");
    const double lamb_accum =
        characterizer.run(accum).scopeShare("Optimizer");
    EXPECT_LT(lamb_accum, 0.25 * lamb_base);
}

} // namespace
} // namespace bertprof
