/** Tests for Shape and Tensor. */

#include <gtest/gtest.h>

#include "tensor/shape.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace bertprof {
namespace {

TEST(Shape, RankAndNumel)
{
    Shape s({2, 3, 4});
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s.numel(), 24);
    EXPECT_EQ(Shape{}.rank(), 0);
    EXPECT_EQ(Shape{}.numel(), 1);
}

TEST(Shape, NegativeDimIndexCountsFromBack)
{
    Shape s({2, 3, 4});
    EXPECT_EQ(s.dim(-1), 4);
    EXPECT_EQ(s.dim(-3), 2);
    EXPECT_EQ(s.dim(0), 2);
}

TEST(Shape, RowMajorStrides)
{
    Shape s({2, 3, 4});
    const auto strides = s.strides();
    ASSERT_EQ(strides.size(), 3u);
    EXPECT_EQ(strides[0], 12);
    EXPECT_EQ(strides[1], 4);
    EXPECT_EQ(strides[2], 1);
}

TEST(Shape, EqualityAndToString)
{
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
    EXPECT_EQ(Shape({2, 3}).toString(), "[2, 3]");
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t(Shape({3, 3}));
    for (std::int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, FillAndSum)
{
    Tensor t(Shape({4, 5}));
    t.fill(0.5f);
    EXPECT_DOUBLE_EQ(t.sum(), 10.0);
}

TEST(Tensor, TwoDimensionalAccess)
{
    Tensor t(Shape({2, 3}));
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t.at(1 * 3 + 2), 7.0f);
    EXPECT_EQ(t.at(1, 2), 7.0f);
}

TEST(Tensor, CloneIsDeep)
{
    Tensor a(Shape({2}));
    a.fill(1.0f);
    Tensor b = a.clone();
    b.at(0) = 9.0f;
    EXPECT_EQ(a.at(0), 1.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor a(Shape({2, 6}), std::vector<float>(12, 3.0f));
    Tensor b = a.reshaped(Shape({3, 4}));
    EXPECT_EQ(b.shape(), Shape({3, 4}));
    EXPECT_DOUBLE_EQ(b.sum(), 36.0);
}

TEST(Tensor, L2NormAndAbsMax)
{
    Tensor t(Shape({2}), {3.0f, -4.0f});
    EXPECT_DOUBLE_EQ(t.l2Norm(), 5.0);
    EXPECT_EQ(t.absMax(), 4.0f);
}

TEST(Tensor, StorageBytesReflectDtype)
{
    Tensor t(Shape({10}));
    EXPECT_EQ(t.storageBytes(), 40);
    t.castToHalfStorage();
    EXPECT_EQ(t.storageBytes(), 20);
    EXPECT_EQ(t.dtype(), DType::F16);
    t.castToFloatStorage();
    EXPECT_EQ(t.storageBytes(), 40);
}

TEST(Tensor, HalfStorageRoundsValues)
{
    // 0.1f is not representable in binary16; rounding must change it.
    Tensor t(Shape({1}), {0.1f});
    t.castToHalfStorage();
    EXPECT_NE(t.at(0), 0.1f);
    EXPECT_NEAR(t.at(0), 0.1f, 1e-3f);
}

TEST(Tensor, FillNormalProducesRequestedMoments)
{
    Rng rng(3);
    Tensor t(Shape({20000}));
    t.fillNormal(rng, 1.0f, 2.0f);
    const double mean = t.sum() / t.numel();
    EXPECT_NEAR(mean, 1.0, 0.1);
}

TEST(Tensor, MaxAbsDiff)
{
    Tensor a(Shape({3}), {1.0f, 2.0f, 3.0f});
    Tensor b(Shape({3}), {1.0f, 2.5f, 2.0f});
    EXPECT_FLOAT_EQ(maxAbsDiff(a, b), 1.0f);
}

TEST(Tensor, ToStringMentionsShapeAndDtype)
{
    Tensor t(Shape({2, 3}));
    EXPECT_EQ(t.toString(), "Tensor[2, 3] fp32");
}

} // namespace
} // namespace bertprof
