/** Tests for multi-head attention: math and gradients. */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "ops/gemm.h"
#include "ops/softmax.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

struct AttentionFixture : public ::testing::Test {
    static constexpr std::int64_t kBatch = 2;
    static constexpr std::int64_t kSeq = 4;
    static constexpr std::int64_t kDim = 8;
    static constexpr int kHeads = 2;

    NnRuntime rt; // dropout defaults to 0 for determinism
    MultiHeadAttention attn{"attn", kDim, kHeads, &rt};
    Tensor x{Shape({kBatch * kSeq, kDim})};
    Tensor mask{Shape({kSeq, kSeq})};

    void
    SetUp() override
    {
        Rng rng(3);
        attn.initialize(rng, 0.3f);
        x.fillNormal(rng);
    }
};

TEST_F(AttentionFixture, OutputShape)
{
    Tensor y = attn.forward(x, mask, kBatch, kSeq);
    EXPECT_EQ(y.shape(), Shape({kBatch * kSeq, kDim}));
}

TEST_F(AttentionFixture, RowsAreConvexCombinationsWhenValuesConstant)
{
    // If every token has the same value projection input, attention's
    // weighted sum must reproduce it regardless of the scores.
    Tensor same(Shape({kBatch * kSeq, kDim}));
    Rng rng(4);
    std::vector<float> row(kDim);
    for (auto &v : row)
        v = static_cast<float>(rng.normal());
    for (std::int64_t t = 0; t < kBatch * kSeq; ++t)
        for (std::int64_t c = 0; c < kDim; ++c)
            same.at(t * kDim + c) = row[static_cast<std::size_t>(c)];

    Tensor y = attn.forward(same, mask, kBatch, kSeq);
    // All output rows must be identical.
    for (std::int64_t t = 1; t < kBatch * kSeq; ++t)
        for (std::int64_t c = 0; c < kDim; ++c)
            EXPECT_NEAR(y.at(t * kDim + c), y.at(c), 1e-4f);
}

TEST_F(AttentionFixture, MaskBlocksAttention)
{
    // A strong negative mask on column 0 must make outputs
    // independent of token 0's value content.
    Tensor blocking(Shape({kSeq, kSeq}));
    for (std::int64_t i = 0; i < kSeq; ++i)
        blocking.at(i * kSeq + 0) = -1e9f;

    Tensor y1 = attn.forward(x, blocking, kBatch, kSeq);
    Tensor x2 = x.clone();
    for (std::int64_t c = 0; c < kDim; ++c)
        x2.at(0 * kDim + c) += 5.0f; // perturb token 0 of sequence 0

    // Token 0's own query changes its own output row, so compare
    // only rows 1..n-1 of sequence 0 (they can't see token 0).
    Tensor y2 = attn.forward(x2, blocking, kBatch, kSeq);
    for (std::int64_t t = 1; t < kSeq; ++t)
        for (std::int64_t c = 0; c < kDim; ++c)
            EXPECT_NEAR(y1.at(t * kDim + c), y2.at(t * kDim + c), 1e-3f);
}

TEST_F(AttentionFixture, InputGradientMatchesFiniteDifference)
{
    auto loss = [&]() {
        Tensor y = attn.forward(x, mask, kBatch, kSeq);
        double total = 0.0;
        for (std::int64_t i = 0; i < y.numel(); ++i)
            total += static_cast<double>(y.at(i)) * (0.1 * (i % 3) - 0.1);
        return total;
    };
    Tensor y = attn.forward(x, mask, kBatch, kSeq);
    Tensor dout(y.shape());
    for (std::int64_t i = 0; i < dout.numel(); ++i)
        dout.at(i) = static_cast<float>(0.1 * (i % 3) - 0.1);
    attn.zeroGrad();
    Tensor dx = attn.backward(dout);
    testing::expectGradientsMatch(x, loss, dx, 1e-3, 2e-2);
}

TEST_F(AttentionFixture, WeightGradientsMatchFiniteDifference)
{
    auto loss = [&]() {
        Tensor y = attn.forward(x, mask, kBatch, kSeq);
        double total = 0.0;
        for (std::int64_t i = 0; i < y.numel(); ++i)
            total += static_cast<double>(y.at(i)) * (0.1 * (i % 3) - 0.1);
        return total;
    };
    Tensor y = attn.forward(x, mask, kBatch, kSeq);
    Tensor dout(y.shape());
    for (std::int64_t i = 0; i < dout.numel(); ++i)
        dout.at(i) = static_cast<float>(0.1 * (i % 3) - 0.1);
    attn.zeroGrad();
    attn.backward(dout);

    auto params = attn.parameters();
    // Spot-check a weight and bias from each projection (full sweep
    // over 4 d^2 weights is slow; sample the first 16 of each).
    for (Parameter *param : params) {
        Tensor analytic_sample(Shape({16}));
        Tensor value_view(Shape({16}));
        const std::int64_t count = std::min<std::int64_t>(
            16, param->value.numel());
        for (std::int64_t i = 0; i < count; ++i) {
            const float saved = param->value.at(i);
            const double eps = 1e-3;
            param->value.at(i) = static_cast<float>(saved + eps);
            const double up = loss();
            param->value.at(i) = static_cast<float>(saved - eps);
            const double down = loss();
            param->value.at(i) = saved;
            const double numeric = (up - down) / (2.0 * eps);
            EXPECT_NEAR(param->grad.at(i), numeric,
                        2e-2 * std::max(1.0, std::fabs(numeric)))
                << param->name << " index " << i;
        }
        (void)analytic_sample;
        (void)value_view;
    }
}

TEST_F(AttentionFixture, SingleHeadMatchesManualAttention)
{
    // With h=1 the module must equal the textbook computation.
    MultiHeadAttention single("single", kDim, 1, &rt);
    Rng rng(9);
    single.initialize(rng, 0.3f);
    Tensor y = single.forward(x, mask, kBatch, kSeq);

    // Manual: q = x Wq^T + bq etc.; scores = q k^T / sqrt(d); softmax;
    // out = (probs v) Wo^T + bo, per sequence.
    auto params = single.parameters();
    const Tensor &wq = params[0]->value, &bq = params[1]->value;
    const Tensor &wk = params[2]->value, &bk = params[3]->value;
    const Tensor &wv = params[4]->value, &bv = params[5]->value;
    const Tensor &wo = params[6]->value, &bo = params[7]->value;

    auto project = [&](const Tensor &w, const Tensor &b) {
        Tensor out(Shape({kBatch * kSeq, kDim}));
        gemm(x, w, out, false, true);
        for (std::int64_t r = 0; r < kBatch * kSeq; ++r)
            for (std::int64_t c = 0; c < kDim; ++c)
                out.at(r, c) += b.at(c);
        return out;
    };
    Tensor q = project(wq, bq), k = project(wk, bk), v = project(wv, bv);

    Tensor expected(Shape({kBatch * kSeq, kDim}));
    for (std::int64_t s = 0; s < kBatch; ++s) {
        Tensor scores(Shape({kSeq, kSeq}));
        for (std::int64_t i = 0; i < kSeq; ++i)
            for (std::int64_t j = 0; j < kSeq; ++j) {
                double acc = 0.0;
                for (std::int64_t c = 0; c < kDim; ++c)
                    acc += static_cast<double>(
                               q.at((s * kSeq + i) * kDim + c)) *
                           k.at((s * kSeq + j) * kDim + c);
                scores.at(i, j) = static_cast<float>(
                    acc / std::sqrt(static_cast<double>(kDim)));
            }
        Tensor probs(scores.shape());
        softmaxForward(scores, probs);
        for (std::int64_t i = 0; i < kSeq; ++i)
            for (std::int64_t c = 0; c < kDim; ++c) {
                double acc = 0.0;
                for (std::int64_t j = 0; j < kSeq; ++j)
                    acc += static_cast<double>(probs.at(i, j)) *
                           v.at((s * kSeq + j) * kDim + c);
                expected.at((s * kSeq + i) * kDim + c) =
                    static_cast<float>(acc);
            }
    }
    // Apply output projection.
    Tensor projected(Shape({kBatch * kSeq, kDim}));
    gemm(expected, wo, projected, false, true);
    for (std::int64_t r = 0; r < kBatch * kSeq; ++r)
        for (std::int64_t c = 0; c < kDim; ++c)
            projected.at(r, c) += bo.at(c);

    EXPECT_LT(maxAbsDiff(y, projected), 1e-4f);
}

} // namespace
} // namespace bertprof
