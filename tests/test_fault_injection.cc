/**
 * @file
 * Fault injector tests: spec parsing, deterministic occurrence
 * counting, and each fault class end-to-end through the I/O layer —
 * torn writes leave the last-good file intact, transient errors
 * exercise the bounded retry-with-backoff path, NaN/Inf contamination
 * triggers the training loop's skip-step handling, and kill specs
 * terminate the process with code 137 (covered by the EXPECT_EXIT
 * death test in test_resume.cc and scripts/check_resume.sh).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/bertprof.h"

namespace bertprof {
namespace {

namespace fs = std::filesystem;

/** RAII: disarm the process-wide injector on scope exit. */
struct InjectorGuard {
    ~InjectorGuard() { FaultInjector::instance().reset(); }
};

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "bp_fault_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Tiny training setup shared by the contamination tests. */
struct TinyRun {
    BertConfig config;
    NnRuntime rt;
    BertPretrainer model;
    SyntheticDataset dataset;
    Lamb lamb;
    GradScaler scaler;
    LrSchedule schedule;
    Trainer trainer;

    explicit TinyRun(TrainerOptions options = {})
        : config(tinyConfig()), rt(), model(config, &rt),
          dataset(config, 77), lamb(OptimizerConfig{}),
          scaler(1024.0f),
          schedule(1e-3f, 2, 100, DecayKind::Linear),
          trainer(model, lamb, scaler, schedule, dataset, rt, options)
    {
        Rng init(1234);
        model.initialize(init);
    }

    static BertConfig
    tinyConfig()
    {
        BertConfig c;
        c.name = "bert-nano";
        c.numLayers = 1;
        c.dModel = 16;
        c.numHeads = 2;
        c.dFf = 32;
        c.vocabSize = 64;
        c.maxPositions = 16;
        c.batch = 2;
        c.seqLen = 8;
        c.maxPredictions = 2;
        return c;
    }
};

// --------------------------------------------------------------------
// Spec parsing
// --------------------------------------------------------------------

TEST(FaultSpecParse, AcceptsTheFullGrammar)
{
    bool ok = false;
    FaultSpec s = FaultInjector::parseClause("torn@io.write:3", &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(s.kind, FaultKind::TornWrite);
    EXPECT_EQ(s.site, "io.write");
    EXPECT_EQ(s.first, 3);
    EXPECT_EQ(s.count, 1);

    s = FaultInjector::parseClause("ioerr@io.read:2+4", &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(s.kind, FaultKind::IoError);
    EXPECT_EQ(s.first, 2);
    EXPECT_EQ(s.count, 4);

    s = FaultInjector::parseClause(" kill@optim.step:10 ", &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(s.kind, FaultKind::Kill);

    s = FaultInjector::parseClause("nan@nn.activations:1", &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(s.kind, FaultKind::NaN);

    s = FaultInjector::parseClause("inf@train.grad:1", &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(s.kind, FaultKind::Inf);

    s = FaultInjector::parseClause("reject@serve.submit:1+5", &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(s.kind, FaultKind::Reject);
    EXPECT_EQ(s.first, 1);
    EXPECT_EQ(s.count, 5);

    // Parameterless slow keeps the default stall.
    s = FaultInjector::parseClause("slow@serve.compute:2", &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(s.kind, FaultKind::Slow);
    EXPECT_EQ(s.slowUs, 1000);

    s = FaultInjector::parseClause("slow=2500@serve.batch:1+3", &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(s.kind, FaultKind::Slow);
    EXPECT_EQ(s.slowUs, 2500);
}

TEST(FaultSpecParse, SlowParameterValidation)
{
    bool ok = true;
    for (const char *bad : {"slow=@site:1", "slow=0@site:1",
                            "slow=abc@site:1", "torn=5@site:1"}) {
        (void)FaultInjector::parseClause(bad, &ok);
        EXPECT_FALSE(ok) << "accepted malformed clause: " << bad;
    }
}

TEST(FaultInjection, SlowReportsStallThroughCheck)
{
    InjectorGuard guard;
    FaultInjector &fi = FaultInjector::instance();
    fi.configure("slow=750@test.slow:1+2");
    std::int64_t us = 0;
    EXPECT_EQ(faultAt("test.slow", &us), FaultKind::Slow);
    EXPECT_EQ(us, 750);
    us = 0;
    EXPECT_EQ(faultAt("test.slow", &us), FaultKind::Slow);
    EXPECT_EQ(us, 750);
    EXPECT_EQ(faultAt("test.slow", &us), FaultKind::None);
}

TEST(FaultSpecParse, RejectsMalformedClauses)
{
    bool ok = true;
    for (const char *bad :
         {"torn", "torn@", "torn@site", "torn@site:", "torn@site:0",
          "torn@site:-1", "torn@site:1+0", "bogus@site:1",
          "torn@site:abc", "@site:1"}) {
        (void)FaultInjector::parseClause(bad, &ok);
        EXPECT_FALSE(ok) << "accepted malformed clause: " << bad;
    }
}

// --------------------------------------------------------------------
// Occurrence counting
// --------------------------------------------------------------------

TEST(FaultInjection, FiresAtExactlyTheConfiguredOccurrences)
{
    InjectorGuard guard;
    FaultInjector &fi = FaultInjector::instance();
    fi.configure("nan@test.site:3+2");

    EXPECT_EQ(faultAt("test.site"), FaultKind::None); // 1
    EXPECT_EQ(faultAt("test.site"), FaultKind::None); // 2
    EXPECT_EQ(faultAt("test.site"), FaultKind::NaN);  // 3
    EXPECT_EQ(faultAt("test.site"), FaultKind::NaN);  // 4
    EXPECT_EQ(faultAt("test.site"), FaultKind::None); // 5
    EXPECT_EQ(fi.hits("test.site"), 5);
    EXPECT_EQ(fi.injectedCount(), 2);
    // An unrelated site never fires.
    EXPECT_EQ(faultAt("other.site"), FaultKind::None);
}

TEST(FaultInjection, SitesCountIndependentlyAndResetRearms)
{
    InjectorGuard guard;
    FaultInjector &fi = FaultInjector::instance();
    fi.configure("inf@site.a:1;nan@site.b:2");

    EXPECT_EQ(faultAt("site.a"), FaultKind::Inf);
    EXPECT_EQ(faultAt("site.b"), FaultKind::None);
    EXPECT_EQ(faultAt("site.b"), FaultKind::NaN);

    fi.configure("inf@site.a:1"); // reconfigure resets counters
    EXPECT_EQ(faultAt("site.a"), FaultKind::Inf);

    fi.reset();
    EXPECT_FALSE(fi.enabled());
    EXPECT_EQ(faultAt("site.a"), FaultKind::None);
}

TEST(FaultInjection, DisabledInjectorIsInvisible)
{
    InjectorGuard guard;
    FaultInjector::instance().reset();
    EXPECT_FALSE(FaultInjector::instance().enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(faultAt("any.site"), FaultKind::None);
}

// --------------------------------------------------------------------
// I/O faults through the real write/read paths
// --------------------------------------------------------------------

TEST(IoFaults, TornWriteLeavesTheOldFileIntact)
{
    InjectorGuard guard;
    const std::string dir = freshDir("torn");
    const std::string path = dir + "/file.bpck";
    ASSERT_TRUE(writeFileAtomic(path, "committed").ok());

    FaultInjector::instance().configure("torn@io.write:1");
    const IoStatus s = writeFileAtomic(path, "torn-away");
    EXPECT_EQ(s.error, IoError::WriteFailed);

    // The committed file still validates and holds the old payload.
    std::string got;
    ASSERT_TRUE(readFileValidated(path, got).ok());
    EXPECT_EQ(got, "committed");
}

TEST(IoFaults, TornCommitNeverExposesAPartialFile)
{
    InjectorGuard guard;
    const std::string dir = freshDir("torn_commit");
    const std::string path = dir + "/file.bpck";
    ASSERT_TRUE(writeFileAtomic(path, "committed").ok());

    FaultInjector::instance().configure("torn@io.commit:1");
    EXPECT_EQ(writeFileAtomic(path, "lost").error, IoError::WriteFailed);

    std::string got;
    ASSERT_TRUE(readFileValidated(path, got).ok());
    EXPECT_EQ(got, "committed");
}

TEST(IoFaults, TransientWriteErrorsAreRetriedToSuccess)
{
    InjectorGuard guard;
    const std::string dir = freshDir("retry_write");
    const std::string path = dir + "/file.bpck";

    // Two transient failures, then clean: a 3-attempt budget wins.
    FaultInjector::instance().configure("ioerr@io.write:1+2");
    const IoStatus s = withRetries(3, 0.01, [&]() {
        return writeFileAtomic(path, "eventually");
    });
    EXPECT_TRUE(s.ok()) << s.toString();
    std::string got;
    ASSERT_TRUE(readFileValidated(path, got).ok());
    EXPECT_EQ(got, "eventually");
}

TEST(IoFaults, TransientReadErrorsExhaustTheBudget)
{
    InjectorGuard guard;
    const std::string dir = freshDir("retry_read");
    const std::string path = dir + "/file.bpck";
    ASSERT_TRUE(writeFileAtomic(path, "payload").ok());

    FaultInjector::instance().configure("ioerr@io.read:1+10");
    std::string got;
    const IoStatus s = withRetries(3, 0.01, [&]() {
        return readFileValidated(path, got);
    });
    EXPECT_EQ(s.error, IoError::Transient);
    EXPECT_EQ(FaultInjector::instance().hits("io.read"), 3);
}

TEST(IoFaults, ManagerSurvivesATornSaveAndKeepsTheLastGood)
{
    InjectorGuard guard;
    CheckpointManagerOptions opt;
    opt.dir = freshDir("mgr_torn");
    opt.ioRetries = 2;
    opt.ioBackoffMs = 0.01;
    CheckpointManager mgr(opt);
    ASSERT_TRUE(mgr.save(5, "step-five").ok());

    // Torn writes are permanent (not retried): the save fails but the
    // store still serves step 5.
    FaultInjector::instance().configure("torn@io.write:1");
    EXPECT_FALSE(mgr.save(10, "step-ten").ok());

    std::string payload;
    std::int64_t step = 0;
    ASSERT_TRUE(mgr.loadLatest(payload, step).ok());
    EXPECT_EQ(step, 5);
    EXPECT_EQ(payload, "step-five");
}

// --------------------------------------------------------------------
// Numeric contamination through the training loop
// --------------------------------------------------------------------

TEST(NumericFaults, NanActivationsSkipTheStepAndRecover)
{
    InjectorGuard guard;
    TinyRun run;
    const float scale_before = run.scaler.scale();

    FaultInjector::instance().configure("nan@nn.activations:2");
    TrainStepResult r1 = run.trainer.trainStep();
    EXPECT_EQ(r1.status, StepStatus::Applied);

    TrainStepResult r2 = run.trainer.trainStep();
    EXPECT_EQ(r2.status, StepStatus::SkippedNonFiniteLoss);
    EXPECT_FALSE(r2.metrics.lossFinite());
    EXPECT_LT(run.scaler.scale(), scale_before); // backed off
    EXPECT_EQ(run.scaler.skippedSteps(), 1);

    // The contamination must not persist: the next step is clean.
    TrainStepResult r3 = run.trainer.trainStep();
    EXPECT_EQ(r3.status, StepStatus::Applied);
    EXPECT_TRUE(r3.metrics.lossFinite());
    EXPECT_EQ(run.trainer.iteration(), 3);
}

TEST(NumericFaults, InfActivationsAreCaughtBeforeTheOptimizerStep)
{
    InjectorGuard guard;
    TinyRun run;
    const std::int64_t optim_steps_before = run.lamb.stepCount();

    // Unlike NaN, an Inf activation can still yield a *finite* loss
    // (softmax saturates to probability 1), so the loss check alone
    // may not fire — but the backward pass turns it into non-finite
    // gradients, and the unscale check catches those. Either skip
    // path is acceptable; what matters is that the optimizer never
    // consumes the contamination.
    FaultInjector::instance().configure("inf@nn.activations:1");
    TrainStepResult r = run.trainer.trainStep();
    EXPECT_NE(r.status, StepStatus::Applied);
    EXPECT_EQ(run.lamb.stepCount(), optim_steps_before);
    EXPECT_EQ(run.trainer.iteration(), 1); // skipped steps still count

    // The next step is clean again.
    TrainStepResult r2 = run.trainer.trainStep();
    EXPECT_EQ(r2.status, StepStatus::Applied);
}

TEST(NumericFaults, GradientContaminationHitsTheScalerSkipPath)
{
    InjectorGuard guard;
    TinyRun run;
    const float scale_before = run.scaler.scale();
    const std::int64_t optim_steps_before = run.lamb.stepCount();

    FaultInjector::instance().configure("nan@train.grad:1;inf@train.grad:2");
    TrainStepResult r1 = run.trainer.trainStep();
    EXPECT_EQ(r1.status, StepStatus::SkippedNonFiniteGrad);
    EXPECT_TRUE(r1.metrics.lossFinite()); // loss was fine; grads were not

    TrainStepResult r2 = run.trainer.trainStep();
    EXPECT_EQ(r2.status, StepStatus::SkippedNonFiniteGrad);

    EXPECT_EQ(run.lamb.stepCount(), optim_steps_before); // no updates
    EXPECT_EQ(run.scaler.skippedSteps(), 2);
    EXPECT_LT(run.scaler.scale(), scale_before);

    // Gradients were zeroed by the skip path, and training proceeds.
    TrainStepResult r3 = run.trainer.trainStep();
    EXPECT_EQ(r3.status, StepStatus::Applied);
    EXPECT_EQ(run.lamb.stepCount(), optim_steps_before + 1);
}

TEST(NumericFaults, SkippedStepsNeverCorruptParameters)
{
    InjectorGuard guard;
    // The invariant: a skipped step leaves every parameter exactly
    // as it was before the contaminated batch.
    TinyRun run;
    run.trainer.trainStep();
    auto params = run.model.parameters();
    std::vector<std::vector<float>> before;
    for (Parameter *p : params) {
        before.emplace_back(p->value.data(),
                            p->value.data() + p->value.numel());
    }

    FaultInjector::instance().configure("nan@train.grad:1");
    TrainStepResult r = run.trainer.trainStep();
    ASSERT_EQ(r.status, StepStatus::SkippedNonFiniteGrad);
    for (std::size_t i = 0; i < params.size(); ++i) {
        EXPECT_EQ(std::memcmp(before[i].data(), params[i]->value.data(),
                              before[i].size() * sizeof(float)),
                  0)
            << "parameter " << params[i]->name
            << " changed during a skipped step";
    }
}

} // namespace
} // namespace bertprof
