/**
 * @file
 * End-to-end serving tests: lifecycle (start, drain, shutdown),
 * concurrent submission from 8 client threads (the TSan target),
 * reply correctness against direct solo eval forwards, MLM serving,
 * rejection paths, and latency accounting.
 */

#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "runtime/config.h"
#include "serve/server.h"
#include "serve/traffic.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using ::bertprof::testing::tinyBertConfig;

constexpr std::int64_t kPadId = 3;

TEST(InferenceServerTest, ServesAndMatchesSoloEval)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertClassifier clf(config, &rt);
    Rng init(41);
    clf.initialize(init);
    clf.setTraining(false);
    ClassifierEngine engine(clf, kPadId);

    const BucketSpec buckets({8, 16, 32});
    ServeOptions options;
    options.maxBatch = 4;
    options.maxWaitUs = 200;
    // This test asserts completion and bitwise-correct replies, not
    // latency: a roomy deadline keeps the shedding machinery out of
    // the picture even under sanitizer-slowed compute.
    options.defaultDeadlineUs = 60'000'000;

    Rng body(42);
    std::vector<InferRequest> requests;
    std::vector<std::future<InferReply>> futures;
    {
        InferenceServer server(engine, buckets, options);
        for (std::uint64_t id = 0; id < 12; ++id) {
            const std::int64_t len = 4 + static_cast<std::int64_t>(id);
            requests.push_back(
                syntheticRequest(body, id, len, config.vocabSize));
            futures.push_back(server.submit(requests.back()));
        }
        for (auto &f : futures)
            f.wait();
        EXPECT_EQ(server.completedCount(), 12);
        const LatencySummary s = server.latencySummary();
        EXPECT_EQ(s.count, 12);
        EXPECT_GT(s.p50Seconds, 0.0);
        EXPECT_LE(s.p50Seconds, s.p99Seconds);
        EXPECT_LE(s.p99Seconds, s.maxSeconds);
    }

    // Every reply matches the same request run solo, bitwise: the
    // server's batching/bucketing must be invisible in the numbers.
    for (std::size_t i = 0; i < requests.size(); ++i) {
        InferReply reply = futures[i].get();
        ASSERT_TRUE(reply.ok);
        EXPECT_EQ(reply.id, requests[i].id);
        ASSERT_EQ(reply.rows, 1);
        ASSERT_EQ(reply.cols, config.numClasses);
        EXPECT_GE(reply.batchSize, 1);
        EXPECT_GE(reply.paddedLen,
                  static_cast<std::int64_t>(requests[i].tokenIds.size()));
        EXPECT_GE(reply.totalSeconds, 0.0);
        EXPECT_GE(reply.queueSeconds, 0.0);
        EXPECT_GT(reply.computeSeconds, 0.0);

        const std::vector<std::int64_t> lengths = {
            static_cast<std::int64_t>(requests[i].tokenIds.size())};
        const int bucket = BucketSpec({8, 16, 32})
                               .bucketFor(lengths[0]);
        ASSERT_GE(bucket, 0);
        std::vector<std::int64_t> tokens(
            static_cast<std::size_t>(BucketSpec({8, 16, 32})
                                         .boundary(bucket)),
            kPadId);
        std::vector<std::int64_t> segments(tokens.size(), 0);
        for (std::size_t t = 0; t < requests[i].tokenIds.size(); ++t) {
            tokens[t] = requests[i].tokenIds[t];
            segments[t] = requests[i].segmentIds[t];
        }
        Tensor solo = clf.forwardLogitsEval(
            tokens, segments, 1,
            static_cast<std::int64_t>(tokens.size()), lengths);
        EXPECT_EQ(std::memcmp(reply.logits.data(), solo.data(),
                              reply.logits.size() * sizeof(float)),
                  0)
            << "server reply diverged from solo eval for id " << reply.id;
    }
}

TEST(InferenceServerTest, EightClientThreadsAllResolve)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertClassifier clf(config, &rt);
    Rng init(51);
    clf.initialize(init);
    clf.setTraining(false);
    ClassifierEngine engine(clf, kPadId);

    ServeOptions options;
    options.maxBatch = 8;
    options.maxWaitUs = 100;
    // All 64 requests must complete — deadline slack for sanitizer
    // builds, where a tiny forward still takes tens of milliseconds.
    options.defaultDeadlineUs = 60'000'000;
    InferenceServer server(engine, BucketSpec({8, 16, 32}), options);

    constexpr int kThreads = 8;
    constexpr int kPerThread = 8;
    std::vector<std::thread> clients;
    std::vector<int> ok_counts(kThreads, 0);
    for (int c = 0; c < kThreads; ++c) {
        clients.emplace_back([&, c] {
            Rng body(static_cast<std::uint64_t>(100 + c));
            for (int i = 0; i < kPerThread; ++i) {
                const std::int64_t len = body.uniformInt(1, 32);
                InferRequest req = syntheticRequest(
                    body,
                    static_cast<std::uint64_t>(c * kPerThread + i), len,
                    config.vocabSize);
                InferReply reply = server.submit(std::move(req)).get();
                if (reply.ok && reply.rows == 1)
                    ++ok_counts[static_cast<std::size_t>(c)];
            }
        });
    }
    for (auto &t : clients)
        t.join();
    server.shutdown();
    for (int c = 0; c < kThreads; ++c)
        EXPECT_EQ(ok_counts[static_cast<std::size_t>(c)], kPerThread)
            << "client " << c;
    EXPECT_EQ(server.completedCount(), kThreads * kPerThread);
}

TEST(InferenceServerTest, MlmServingMatchesSoloEval)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertPretrainer pretrainer(config, &rt);
    Rng init(61);
    pretrainer.initialize(init);
    pretrainer.setTraining(false);
    MlmEngine engine(pretrainer, kPadId);

    ServeOptions options;
    options.maxBatch = 4;
    options.maxWaitUs = 100;
    options.defaultDeadlineUs = 60'000'000; // sanitizer-build slack
    InferenceServer server(engine, BucketSpec({8, 16, 32}), options);

    Rng body(62);
    InferRequest req = syntheticRequest(body, 9, /*len=*/10,
                                        config.vocabSize);
    req.mlmPositions = {0, 4, 9};
    InferRequest copy = req;
    InferReply reply = server.submit(std::move(req)).get();
    server.shutdown();

    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.rows, 3);
    EXPECT_EQ(reply.cols, config.vocabSize);

    // Solo check at the same bucket (16).
    std::vector<std::int64_t> tokens(16, kPadId);
    std::vector<std::int64_t> segments(16, 0);
    for (std::size_t t = 0; t < copy.tokenIds.size(); ++t) {
        tokens[t] = copy.tokenIds[t];
        segments[t] = copy.segmentIds[t];
    }
    Tensor solo = pretrainer.mlmLogitsEval(tokens, segments, 1, 16, {10},
                                           copy.mlmPositions);
    EXPECT_EQ(std::memcmp(reply.logits.data(), solo.data(),
                          reply.logits.size() * sizeof(float)),
              0);
}

TEST(InferenceServerTest, RejectsOverlongAndAfterShutdown)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertClassifier clf(config, &rt);
    Rng init(71);
    clf.initialize(init);
    clf.setTraining(false);
    ClassifierEngine engine(clf, kPadId);

    InferenceServer server(engine, BucketSpec({8, 16}));
    Rng body(72);
    // Longer than the top bucket: rejected, future still resolves.
    InferRequest too_long =
        syntheticRequest(body, 1, /*len=*/17, config.vocabSize);
    InferReply rejected = server.submit(std::move(too_long)).get();
    EXPECT_FALSE(rejected.ok);
    EXPECT_EQ(rejected.id, 1u);
    EXPECT_EQ(rejected.reject, RejectReason::Overlong);

    InferRequest fine = syntheticRequest(body, 2, 8, config.vocabSize);
    {
        const InferReply reply = server.submit(std::move(fine)).get();
        EXPECT_TRUE(reply.ok);
        EXPECT_EQ(reply.reject, RejectReason::None);
    }

    // An explicitly-past deadline is refused at submit, typed Expired
    // — the server must not queue provably-dead work.
    InferRequest dead = syntheticRequest(body, 4, 8, config.vocabSize);
    dead.deadline = monoAddMicros(monoNow(), -1000000);
    InferReply expired = server.submit(std::move(dead)).get();
    EXPECT_FALSE(expired.ok);
    EXPECT_EQ(expired.id, 4u);
    EXPECT_EQ(expired.reject, RejectReason::Expired);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.rejectedOverlong, 1);
    EXPECT_EQ(stats.rejectedExpired, 1);

    server.shutdown();
    InferRequest late = syntheticRequest(body, 3, 8, config.vocabSize);
    InferReply after = server.submit(std::move(late)).get();
    EXPECT_FALSE(after.ok);
    EXPECT_EQ(after.id, 3u);
    EXPECT_EQ(after.reject, RejectReason::Shutdown);
    // Idempotent.
    server.shutdown();
}

TEST(InferenceServerTest, BucketGridWiderThanModelDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertClassifier clf(config, &rt);
    clf.setTraining(false);
    ClassifierEngine engine(clf, kPadId);
    // Top bucket 64 > maxPositions 32: constructing the server must
    // die rather than accept requests the model cannot run.
    EXPECT_EXIT(InferenceServer(engine, BucketSpec({32, 64})),
                ::testing::ExitedWithCode(1), "requirement failed");
}

} // namespace
} // namespace bertprof
