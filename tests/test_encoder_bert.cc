/** Tests for the encoder layer, BertModel, and pre-training heads. */

#include <cmath>

#include <gtest/gtest.h>

#include "nn/bert_pretrainer.h"
#include "nn/encoder_layer.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using testing::tinyBertConfig;

TEST(EncoderLayer, ForwardShapeAndFiniteness)
{
    NnRuntime rt;
    EncoderLayer layer("enc", 16, 2, 32, &rt);
    Rng rng(1);
    layer.initialize(rng);
    Tensor x(Shape({2 * 4, 16}));
    x.fillNormal(rng);
    Tensor mask(Shape({4, 4}));
    Tensor y = layer.forward(x, mask, 2, 4);
    EXPECT_EQ(y.shape(), x.shape());
    for (std::int64_t i = 0; i < y.numel(); ++i)
        EXPECT_TRUE(std::isfinite(y.at(i)));
}

TEST(EncoderLayer, OutputIsLayerNormalized)
{
    NnRuntime rt;
    EncoderLayer layer("enc", 16, 2, 32, &rt);
    Rng rng(2);
    layer.initialize(rng);
    Tensor x(Shape({4, 16}));
    x.fillNormal(rng);
    Tensor mask(Shape({2, 2}));
    Tensor y = layer.forward(x, mask, 2, 2);
    // With default gamma=1 beta=0 every row has ~zero mean, unit var.
    for (std::int64_t r = 0; r < 4; ++r) {
        double mu = 0.0;
        for (std::int64_t c = 0; c < 16; ++c)
            mu += y.at(r, c);
        EXPECT_NEAR(mu / 16.0, 0.0, 1e-4);
    }
}

TEST(EncoderLayer, InputGradientMatchesFiniteDifference)
{
    NnRuntime rt;
    EncoderLayer layer("enc", 8, 2, 16, &rt);
    Rng rng(3);
    layer.initialize(rng, 0.4f);
    Tensor x(Shape({4, 8}));
    x.fillNormal(rng);
    Tensor mask(Shape({4, 4}));

    auto loss = [&]() {
        Tensor y = layer.forward(x, mask, 1, 4);
        double total = 0.0;
        for (std::int64_t i = 0; i < y.numel(); ++i)
            total += static_cast<double>(y.at(i)) * (0.2 * (i % 3) - 0.2);
        return total;
    };
    Tensor y = layer.forward(x, mask, 1, 4);
    Tensor dout(y.shape());
    for (std::int64_t i = 0; i < dout.numel(); ++i)
        dout.at(i) = static_cast<float>(0.2 * (i % 3) - 0.2);
    layer.zeroGrad();
    Tensor dx = layer.backward(dout);
    testing::expectGradientsMatch(x, loss, dx, 1e-3, 3e-2);
}

TEST(BertModel, ParameterCountMatchesConfigFormula)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertModel model(config, &rt);
    EXPECT_EQ(model.parameterCount(),
              config.parameterCount() -
                  // Model-side params exclude the output heads
                  // (pooler, MLM transform/LN/bias, NSP).
                  (config.dModel * config.dModel + config.dModel +
                   config.dModel * config.dModel + config.dModel +
                   2 * config.dModel + config.vocabSize +
                   2 * config.dModel + 2));
}

TEST(BertModel, ForwardShapeAndDeterminism)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertModel model(config, &rt);
    Rng rng(4);
    model.initialize(rng);

    std::vector<std::int64_t> tokens(
        static_cast<std::size_t>(config.tokens()));
    std::vector<std::int64_t> segments(tokens.size(), 0);
    for (std::size_t i = 0; i < tokens.size(); ++i)
        tokens[i] = static_cast<std::int64_t>(i) % config.vocabSize;

    Tensor h1 = model.forward(tokens, segments);
    Tensor h2 = model.forward(tokens, segments);
    EXPECT_EQ(h1.shape(), Shape({config.tokens(), config.dModel}));
    EXPECT_LT(maxAbsDiff(h1, h2), 1e-7f);
}

TEST(BertModel, BackwardPopulatesEmbeddingGradients)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertModel model(config, &rt);
    Rng rng(5);
    model.initialize(rng);

    std::vector<std::int64_t> tokens(
        static_cast<std::size_t>(config.tokens()), 5);
    std::vector<std::int64_t> segments(tokens.size(), 1);
    Tensor h = model.forward(tokens, segments);
    Tensor dh(h.shape());
    dh.fill(1e-2f);
    model.zeroGrad();
    model.backward(dh);
    EXPECT_GT(model.tokenEmbedding().grad.l2Norm(), 0.0);
}

TEST(BertPretrainer, LossesAreFiniteAndPositive)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertPretrainer trainer(config, &rt);
    Rng rng(6);
    trainer.initialize(rng);

    PretrainBatch batch;
    batch.tokenIds.resize(static_cast<std::size_t>(config.tokens()));
    batch.segmentIds.resize(batch.tokenIds.size(), 0);
    for (std::size_t i = 0; i < batch.tokenIds.size(); ++i)
        batch.tokenIds[i] = static_cast<std::int64_t>(i * 7 + 3) %
                            config.vocabSize;
    batch.mlmPositions = {1, 5, 20};
    batch.mlmLabels = {4, 9, 17};
    batch.nspLabels = {0, 1};

    trainer.zeroGrad();
    const auto result = trainer.forwardBackward(batch);
    EXPECT_TRUE(std::isfinite(result.mlmLoss));
    EXPECT_TRUE(std::isfinite(result.nspLoss));
    EXPECT_GT(result.mlmLoss, 0.0);
    EXPECT_GT(result.nspLoss, 0.0);
    // An untrained model's MLM loss should be near log(vocab).
    EXPECT_NEAR(result.mlmLoss, std::log(config.vocabSize), 1.5);
}

TEST(BertPretrainer, GradientsFlowToEveryParameter)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;
    BertPretrainer trainer(config, &rt);
    Rng rng(7);
    trainer.initialize(rng);

    PretrainBatch batch;
    batch.tokenIds.resize(static_cast<std::size_t>(config.tokens()));
    batch.segmentIds.resize(batch.tokenIds.size(), 0);
    for (std::size_t i = 0; i < batch.tokenIds.size(); ++i)
        batch.tokenIds[i] = static_cast<std::int64_t>(i * 5 + 1) %
                            config.vocabSize;
    batch.mlmPositions = {2, 9, 30};
    batch.mlmLabels = {1, 2, 3};
    batch.nspLabels = {1, 0};

    trainer.zeroGrad();
    trainer.forwardBackward(batch);
    int zero_grads = 0;
    for (Parameter *param : trainer.parameters())
        if (param->grad.l2Norm() == 0.0)
            ++zero_grads;
    // Position/segment embeddings for unused rows legitimately have
    // zero rows but nonzero overall; allow no fully-zero tensors.
    EXPECT_EQ(zero_grads, 0);
}

TEST(BertPretrainer, ParameterCountMatchesConfig)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertPretrainer trainer(config, &rt);
    EXPECT_EQ(trainer.parameterCount(), config.parameterCount());
}

TEST(BertPretrainer, BertLargeParameterCountIsAbout334M)
{
    // The paper quotes "110-340 million parameters" for BERT; the
    // Large preset must land in the canonical ~334-345M band (the
    // decoder is tied to the token embedding).
    const std::int64_t count = bertLarge().parameterCount();
    EXPECT_GT(count, 330'000'000);
    EXPECT_LT(count, 345'000'000);
}

} // namespace
} // namespace bertprof
