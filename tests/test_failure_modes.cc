/**
 * Failure-injection tests: API misuse must fail loudly (BP_REQUIRE
 * exits with a diagnostic) instead of corrupting results. Uses gtest
 * death tests.
 */

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "ops/elementwise.h"
#include "ops/gemm.h"
#include "ops/layernorm.h"
#include "trace/bert_trace_builder.h"
#include "util/rng.h"

namespace bertprof {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, GemmRejectsMismatchedInnerDims)
{
    Tensor a(Shape({2, 3})), b(Shape({4, 5})), c(Shape({2, 5}));
    EXPECT_EXIT(gemm(a, b, c), ::testing::ExitedWithCode(1),
                "requirement failed|contract failed");
}

TEST(DeathTest, GemmRejectsWrongOutputShape)
{
    Tensor a(Shape({2, 3})), b(Shape({3, 5})), c(Shape({2, 4}));
    EXPECT_EXIT(gemm(a, b, c), ::testing::ExitedWithCode(1),
                "requirement failed|contract failed");
}

TEST(DeathTest, BatchedGemmRejectsBatchMismatch)
{
    Tensor a(Shape({2, 3, 4})), b(Shape({3, 4, 5})), c(Shape({2, 3, 5}));
    EXPECT_EXIT(batchedGemm(a, b, c), ::testing::ExitedWithCode(1),
                "requirement failed|contract failed");
}

TEST(DeathTest, AddForwardRejectsShapeMismatch)
{
    Tensor a(Shape({4})), b(Shape({5})), out(Shape({4}));
    EXPECT_EXIT(addForward(a, b, out), ::testing::ExitedWithCode(1),
                "requirement failed|contract failed");
}

TEST(DeathTest, LayerNormRejectsWrongGammaLength)
{
    Tensor in(Shape({2, 8})), gamma(Shape({4})), beta(Shape({4}));
    Tensor out(in.shape()), mean(Shape({2})), rstd(Shape({2}));
    EXPECT_EXIT(layerNormForward(in, gamma, beta, out, mean, rstd),
                ::testing::ExitedWithCode(1), "requirement failed|contract failed");
}

TEST(DeathTest, LinearBackwardBeforeForwardRejected)
{
    NnRuntime rt;
    Linear layer("fc", 4, 3, &rt);
    Tensor dout(Shape({2, 3}));
    EXPECT_EXIT(layer.backward(dout), ::testing::ExitedWithCode(1),
                "requirement failed|contract failed");
}

TEST(DeathTest, LinearForwardRejectsWrongInputWidth)
{
    NnRuntime rt;
    Linear layer("fc", 4, 3, &rt);
    Tensor x(Shape({2, 5}));
    EXPECT_EXIT(layer.forward(x), ::testing::ExitedWithCode(1),
                "requirement failed|contract failed");
}

TEST(DeathTest, TraceBuilderRejectsIndivisibleHeads)
{
    BertConfig config = withPhase1(bertLarge(), 4);
    config.numHeads = 7; // 1024 % 7 != 0
    EXPECT_EXIT(BertTraceBuilder builder(config),
                ::testing::ExitedWithCode(1), "requirement failed|contract failed");
}

TEST(DeathTest, TraceBuilderRejectsBadCheckpointInterval)
{
    BertConfig config = withPhase1(bertLarge(), 4);
    config.checkpointEvery = 7; // 24 % 7 != 0
    EXPECT_EXIT(BertTraceBuilder builder(config),
                ::testing::ExitedWithCode(1), "requirement failed|contract failed");
}

TEST(DeathTest, ShapeRejectsNegativeDims)
{
    EXPECT_EXIT(Shape({2, -3}), ::testing::ExitedWithCode(1),
                "requirement failed|contract failed");
}

TEST(DeathTest, TensorRejectsWrongInitializerSize)
{
    EXPECT_EXIT(Tensor(Shape({3}), {1.0f, 2.0f}),
                ::testing::ExitedWithCode(1), "requirement failed|contract failed");
}

} // namespace
} // namespace bertprof
