/** Tests for the learning-rate schedules. */

#include <gtest/gtest.h>

#include "optim/lr_schedule.h"

namespace bertprof {
namespace {

TEST(LrSchedule, LinearWarmupReachesPeak)
{
    LrSchedule schedule(1.0f, 10, 100, DecayKind::None);
    EXPECT_NEAR(schedule.at(0), 0.1f, 1e-6f);
    EXPECT_NEAR(schedule.at(4), 0.5f, 1e-6f);
    EXPECT_NEAR(schedule.at(9), 1.0f, 1e-6f);
    EXPECT_FLOAT_EQ(schedule.at(50), 1.0f);
}

TEST(LrSchedule, LinearDecayHitsZeroAtTotal)
{
    LrSchedule schedule(2.0f, 10, 110, DecayKind::Linear);
    EXPECT_NEAR(schedule.at(10), 2.0f, 1e-6f);
    EXPECT_NEAR(schedule.at(60), 1.0f, 1e-6f);
    EXPECT_NEAR(schedule.at(110), 0.0f, 1e-6f);
    // Past the end: clamped at zero.
    EXPECT_NEAR(schedule.at(500), 0.0f, 1e-6f);
}

TEST(LrSchedule, PolynomialDecay)
{
    LrSchedule schedule(1.0f, 0, 100, DecayKind::Polynomial, 2.0);
    EXPECT_NEAR(schedule.at(50), 0.25f, 1e-5f);
    EXPECT_NEAR(schedule.at(100), 0.0f, 1e-6f);
}

TEST(LrSchedule, NoWarmupStartsAtPeak)
{
    LrSchedule schedule(0.5f, 0, 100, DecayKind::None);
    EXPECT_FLOAT_EQ(schedule.at(0), 0.5f);
}

TEST(LrSchedule, MonotoneUpThenDown)
{
    LrSchedule schedule(1.0f, 20, 200, DecayKind::Linear);
    for (int s = 1; s < 20; ++s)
        EXPECT_GE(schedule.at(s), schedule.at(s - 1));
    for (int s = 21; s <= 200; ++s)
        EXPECT_LE(schedule.at(s), schedule.at(s - 1));
}

TEST(LrSchedule, NegativeStepClamped)
{
    LrSchedule schedule(1.0f, 10, 100, DecayKind::Linear);
    EXPECT_FLOAT_EQ(schedule.at(-5), schedule.at(0));
}

} // namespace
} // namespace bertprof
