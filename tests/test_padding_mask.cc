/** Tests for variable-length batches and per-sequence padding masks. */

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/attention.h"
#include "nn/bert_pretrainer.h"
#include "ops/elementwise.h"
#include "optim/lamb.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using testing::tinyBertConfig;

TEST(BatchMaskAdd, AppliesPerSequenceMask)
{
    // 2 sequences, 2 heads, n=2.
    Tensor scores(Shape({4, 2, 2}));
    scores.fill(1.0f);
    Tensor mask(Shape({2, 2, 2}));
    mask.at(0 * 4 + 1) = -5.0f; // sequence 0, (0,1)
    mask.at(1 * 4 + 2) = -7.0f; // sequence 1, (1,0)
    Tensor out(scores.shape());
    batchMaskAddForward(scores, mask, 2, out);
    // Heads 0 and 1 belong to sequence 0.
    EXPECT_FLOAT_EQ(out.at(0 * 4 + 1), -4.0f);
    EXPECT_FLOAT_EQ(out.at(1 * 4 + 1), -4.0f);
    // Heads 2 and 3 belong to sequence 1.
    EXPECT_FLOAT_EQ(out.at(2 * 4 + 2), -6.0f);
    EXPECT_FLOAT_EQ(out.at(3 * 4 + 2), -6.0f);
    // Unmasked entries pass through.
    EXPECT_FLOAT_EQ(out.at(0), 1.0f);
}

TEST(BatchMaskAdd, RejectsBadGrouping)
{
    Tensor scores(Shape({4, 2, 2})), mask(Shape({3, 2, 2}));
    Tensor out(scores.shape());
    EXPECT_EXIT(batchMaskAddForward(scores, mask, 2, out),
                ::testing::ExitedWithCode(1), "requirement failed");
}

TEST(PaddingMask, PaddedTokensDoNotAffectRealOutputs)
{
    // Two identical sequences except one has garbage in its padded
    // tail; with the padding mask their real-position outputs match.
    const std::int64_t batch = 2, seq = 8, dim = 16;
    NnRuntime rt;
    MultiHeadAttention attn("attn", dim, 2, &rt);
    Rng rng(5);
    attn.initialize(rng);

    Tensor x(Shape({batch * seq, dim}));
    x.fillNormal(rng);
    // Make sequence 1 = sequence 0 but corrupt its last 3 positions.
    for (std::int64_t t = 0; t < seq; ++t)
        for (std::int64_t c = 0; c < dim; ++c)
            x.at((seq + t) * dim + c) = x.at(t * dim + c);
    for (std::int64_t t = 5; t < seq; ++t)
        for (std::int64_t c = 0; c < dim; ++c)
            x.at((seq + t) * dim + c) += 42.0f;

    // Mask positions >= 5 for both sequences.
    Tensor mask(Shape({batch, seq, seq}));
    for (std::int64_t b = 0; b < batch; ++b)
        for (std::int64_t i = 0; i < seq; ++i)
            for (std::int64_t j = 5; j < seq; ++j)
                mask.at((b * seq + i) * seq + j) = -1e9f;

    Tensor y = attn.forward(x, mask, batch, seq);
    for (std::int64_t t = 0; t < 5; ++t)
        for (std::int64_t c = 0; c < dim; ++c)
            EXPECT_NEAR(y.at(t * dim + c), y.at((seq + t) * dim + c),
                        1e-4f)
                << "t=" << t << " c=" << c;
}

TEST(PaddingMask, BertModelMaskShapesSwitch)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertModel model(config, &rt);
    Rng rng(6);
    model.initialize(rng);

    std::vector<std::int64_t> tokens(
        static_cast<std::size_t>(config.tokens()), 7);
    std::vector<std::int64_t> segments(tokens.size(), 0);

    std::vector<std::int64_t> lengths(
        static_cast<std::size_t>(config.batch), config.seqLen / 2);
    model.setPaddingMask(lengths);
    Tensor h1 = model.forward(tokens, segments);
    model.clearPaddingMask();
    Tensor h2 = model.forward(tokens, segments);
    EXPECT_EQ(h1.shape(), h2.shape());
    // With half the positions masked, the outputs must differ.
    EXPECT_GT(maxAbsDiff(h1, h2), 1e-4f);
}

TEST(PaddingMask, SetPaddingMaskRejectsBadLengths)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertModel model(config, &rt);
    std::vector<std::int64_t> too_long(
        static_cast<std::size_t>(config.batch), config.seqLen + 1);
    EXPECT_EXIT(model.setPaddingMask(too_long),
                ::testing::ExitedWithCode(1), "requirement failed");
}

TEST(PaddedBatch, ShapesAndContentsAreConsistent)
{
    const BertConfig config = tinyBertConfig();
    SyntheticDataset dataset(config, 77);
    const PretrainBatch batch = dataset.nextPaddedBatch();
    ASSERT_EQ(batch.seqLengths.size(),
              static_cast<std::size_t>(config.batch));
    for (std::int64_t s = 0; s < config.batch; ++s) {
        const std::int64_t len =
            batch.seqLengths[static_cast<std::size_t>(s)];
        EXPECT_GE(len, config.seqLen / 2);
        EXPECT_LE(len, config.seqLen);
        // Tail is [PAD].
        for (std::int64_t t = len; t < config.seqLen; ++t)
            EXPECT_EQ(batch.tokenIds[static_cast<std::size_t>(
                          s * config.seqLen + t)],
                      dataset.padId());
    }
    // Every masked position lives inside its sequence's real content.
    for (std::size_t i = 0; i < batch.mlmPositions.size(); ++i) {
        const std::int64_t pos = batch.mlmPositions[i];
        const std::int64_t s = pos / config.seqLen;
        const std::int64_t t = pos % config.seqLen;
        EXPECT_LT(t, batch.seqLengths[static_cast<std::size_t>(s)]);
    }
}

TEST(PaddingMask, FullLengthMaskEqualsNoMask)
{
    // lengths == seqLen must behave exactly like the dense mask.
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertModel model(config, &rt);
    Rng rng(7);
    model.initialize(rng);
    std::vector<std::int64_t> tokens(
        static_cast<std::size_t>(config.tokens()), 9);
    std::vector<std::int64_t> segments(tokens.size(), 0);

    model.clearPaddingMask();
    Tensor dense = model.forward(tokens, segments);
    std::vector<std::int64_t> full(
        static_cast<std::size_t>(config.batch), config.seqLen);
    model.setPaddingMask(full);
    Tensor masked = model.forward(tokens, segments);
    EXPECT_LT(maxAbsDiff(dense, masked), 1e-6f);
}

TEST(PaddedBatch, TrainingWithPaddingReducesLoss)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;
    BertPretrainer trainer(config, &rt);
    Rng init(88);
    trainer.initialize(init);
    SyntheticDataset dataset(config, 78);
    OptimizerConfig opt_config;
    opt_config.learningRate = 5e-3f;
    opt_config.weightDecay = 0.0f;
    Lamb lamb(opt_config);
    auto params = trainer.parameters();

    double first = 0.0, last = 0.0;
    const int iters = 20;
    for (int it = 0; it < iters; ++it) {
        trainer.zeroGrad();
        const auto result =
            trainer.forwardBackward(dataset.nextPaddedBatch());
        EXPECT_TRUE(std::isfinite(result.totalLoss()));
        if (it < 5)
            first += result.totalLoss();
        if (it >= iters - 5)
            last += result.totalLoss();
        lamb.step(params);
    }
    EXPECT_LT(last, first);
}

} // namespace
} // namespace bertprof
