/** Tests for the ZeRO-style sharded-optimizer DP model. */

#include <gtest/gtest.h>

#include "dist/data_parallel.h"
#include "dist/zero_sharding.h"

namespace bertprof {
namespace {

class ZeroFixture : public ::testing::Test
{
  protected:
    DeviceSpec spec_ = mi100();
    CommModel comm_{spec_, AllReduceAlgo::Ring};
    ZeroShardingModel zero_{spec_, comm_};
    DataParallelModel dp_{spec_, comm_};
    BertConfig config_ = withPhase1(bertLarge(), 16);
};

TEST_F(ZeroFixture, SingleDeviceIsPlainTraining)
{
    const auto profile = zero_.evaluate(config_, 1);
    EXPECT_EQ(profile.exposedCommSeconds, 0.0);
    EXPECT_EQ(profile.totalCommSeconds, 0.0);
}

TEST_F(ZeroFixture, OptimizerWorkShrinksWithDevices)
{
    const auto single = zero_.evaluate(config_, 1);
    const auto sharded = zero_.evaluate(config_, 16);
    auto update_time = [](const DistributedProfile &profile) {
        const auto phases = profile.timed.byPhase();
        auto it = phases.find("UPDATE");
        return it == phases.end() ? 0.0 : it->second.seconds;
    };
    // Traffic shrinks 16x but per-tensor launch overhead does not,
    // so the time reduction saturates well short of 16x.
    EXPECT_LT(update_time(sharded), 0.55 * update_time(single));
}

TEST_F(ZeroFixture, GradNormStaysFullSize)
{
    // The paper's caveat: LAMB's global norm still touches every
    // gradient, so the GradNorm reduction does not shrink.
    const auto single = zero_.evaluate(config_, 1);
    const auto sharded = zero_.evaluate(config_, 16);
    auto norm_bytes = [](const DistributedProfile &profile) {
        std::int64_t total = 0;
        for (const auto &timed : profile.timed.ops)
            if (timed.op.sub == SubLayer::GradNorm)
                total += timed.op.stats.bytesTotal();
        return total;
    };
    EXPECT_EQ(norm_bytes(single), norm_bytes(sharded));
}

TEST_F(ZeroFixture, ShardCollectiveIsHalfARingAllReduce)
{
    const std::int64_t bytes = 1 << 30;
    const Seconds half = zero_.shardCollectiveTime(bytes, 8);
    CommModel ring(spec_, AllReduceAlgo::Ring);
    EXPECT_NEAR(2.0 * half, ring.allReduceTime(bytes, 8), 1e-4);
}

TEST_F(ZeroFixture, FasterThanSerialDpForLargeModels)
{
    // ZeRO hides the reduce-scatter; serial DP exposes a full
    // all-reduce. Per-device iteration should be faster than D1.
    const auto zero = zero_.evaluate(config_, 64);
    const auto d1 = dp_.evaluate(config_, 64, /*overlap=*/false);
    EXPECT_LT(zero.timed.totalSeconds(), d1.timed.totalSeconds());
}

TEST_F(ZeroFixture, ExposedCommIncludesAllGather)
{
    const auto profile = zero_.evaluate(config_, 16);
    const std::int64_t grad_bytes =
        config_.parameterCount() * config_.activationBytes();
    EXPECT_GE(profile.exposedCommSeconds,
              zero_.shardCollectiveTime(grad_bytes, 16));
}

TEST_F(ZeroFixture, NetworkOpAppearsInBreakdown)
{
    const auto profile = zero_.evaluate(config_, 16);
    const auto scopes = profile.timed.byScope();
    ASSERT_TRUE(scopes.count("Network"));
    EXPECT_GT(scopes.at("Network").seconds, 0.0);
}

} // namespace
} // namespace bertprof
