/** Tests for the near-memory-compute model. */

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "nmc/dram.h"
#include "nmc/nmc_model.h"

namespace bertprof {
namespace {

TEST(DramSpec, AggregateBandwidthExceedsExternal)
{
    const DramSpec dram = hbm2BankNmc();
    EXPECT_GT(dram.internalBandwidth(), 2.0 * dram.externalBandwidth);
    EXPECT_EQ(dram.totalBanks(), dram.channels * dram.banksPerChannel);
}

TEST(DramSpec, SharedAluDesignHasLessThroughput)
{
    EXPECT_LT(hbm2SharedAluNmc().internalBandwidth(),
              hbm2BankNmc().internalBandwidth());
}

TEST(NmcModel, OnlyStreamingOpsOffloadable)
{
    OpDesc ew;
    ew.kind = OpKind::Elementwise;
    EXPECT_TRUE(NmcModel::offloadable(ew));
    OpDesc red;
    red.kind = OpKind::Reduction;
    EXPECT_TRUE(NmcModel::offloadable(red));
    OpDesc gemm_op;
    gemm_op.kind = OpKind::Gemm;
    EXPECT_FALSE(NmcModel::offloadable(gemm_op));
    OpDesc comm;
    comm.kind = OpKind::Comm;
    EXPECT_FALSE(NmcModel::offloadable(comm));
}

TEST(NmcModel, TimeScalesWithBytes)
{
    NmcModel nmc(hbm2BankNmc());
    OpDesc small;
    small.kind = OpKind::Elementwise;
    small.stats = elementwiseStats(1 << 20, 4, 3, 2);
    OpDesc large;
    large.kind = OpKind::Elementwise;
    large.stats = elementwiseStats(1 << 26, 4, 3, 2);
    EXPECT_GT(nmc.timeFor(large), 10.0 * nmc.timeFor(small));
}

TEST(NmcModel, StreamingStaysBandwidthBound)
{
    // LAMB-like arithmetic (14 flops/elem) must not be ALU-limited.
    const DramSpec dram = hbm2BankNmc();
    NmcModel nmc(dram);
    OpDesc op;
    op.kind = OpKind::Elementwise;
    op.stats = elementwiseStats(1 << 26, 4, 3, 14);
    const Seconds stream_time =
        static_cast<double>(op.stats.bytesTotal()) /
        dram.internalBandwidth();
    EXPECT_NEAR(nmc.timeFor(op), stream_time + dram.commandOverhead,
                stream_time * 0.01);
}

class NmcOffloadTest : public ::testing::Test
{
  protected:
    Characterizer characterizer_{mi100()};
    NmcOffloadEvaluator evaluator_{hbm2BankNmc(), mi100()};
};

TEST_F(NmcOffloadTest, LambSpeedupNearPaperValue)
{
    const auto result = characterizer_.run(withPhase1(bertLarge(), 32));
    const auto offload = evaluator_.evaluate(result.timed);
    // Paper: ~3.8x vs the optimistic GPU bound.
    EXPECT_GT(offload.optimizerSpeedup(), 2.5);
    EXPECT_LT(offload.optimizerSpeedup(), 5.5);
}

TEST_F(NmcOffloadTest, EndToEndGainWithinPaperBand)
{
    // Paper: 5-22% across configurations.
    const auto b32 = evaluator_.evaluate(
        characterizer_.run(withPhase1(bertLarge(), 32)).timed);
    EXPECT_GT(b32.endToEndImprovement(), 0.03);
    EXPECT_LT(b32.endToEndImprovement(), 0.12);

    BertConfig mp = withPhase1(bertLarge(), 32);
    mp.precision = Precision::Mixed;
    const auto b32mp = evaluator_.evaluate(characterizer_.run(mp).timed);
    EXPECT_GT(b32mp.endToEndImprovement(), b32.endToEndImprovement());
    EXPECT_LT(b32mp.endToEndImprovement(), 0.30);
}

TEST_F(NmcOffloadTest, GainBoundedByOptimizerShare)
{
    const auto result = characterizer_.run(withPhase1(bertLarge(), 4));
    const auto offload = evaluator_.evaluate(result.timed);
    EXPECT_LT(offload.endToEndImprovement(),
              result.scopeShare("Optimizer"));
    EXPECT_GT(offload.endToEndImprovement(), 0.0);
}

TEST_F(NmcOffloadTest, NonUpdateTimeUnchanged)
{
    const auto result = characterizer_.run(withPhase1(bertLarge(), 8));
    const auto offload = evaluator_.evaluate(result.timed);
    const Seconds non_update =
        result.totalSeconds - offload.gpuModeledSeconds;
    EXPECT_NEAR(offload.iterationNmcSeconds - offload.nmcSeconds,
                non_update, 1e-9);
}

TEST_F(NmcOffloadTest, SharedAluDesignIsSlower)
{
    NmcOffloadEvaluator shared(hbm2SharedAluNmc(), mi100());
    const auto result = characterizer_.run(withPhase1(bertLarge(), 32));
    EXPECT_GT(shared.evaluate(result.timed).nmcSeconds,
              evaluator_.evaluate(result.timed).nmcSeconds);
}

} // namespace
} // namespace bertprof
