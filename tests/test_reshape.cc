/** Tests for transpose and head split/merge layout kernels. */

#include <gtest/gtest.h>

#include "ops/reshape.h"
#include "util/rng.h"

namespace bertprof {
namespace {

TEST(Transpose2d, Basic)
{
    Tensor in(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
    Tensor out(Shape({3, 2}));
    transpose2d(in, out);
    EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 4.0f);
    EXPECT_FLOAT_EQ(out.at(2, 1), 6.0f);
}

TEST(Transpose2d, DoubleTransposeIsIdentity)
{
    Rng rng(1);
    Tensor in(Shape({5, 7}));
    in.fillNormal(rng);
    Tensor t(Shape({7, 5})), back(Shape({5, 7}));
    transpose2d(in, t);
    transpose2d(t, back);
    EXPECT_LT(maxAbsDiff(in, back), 1e-7f);
}

TEST(SplitHeads, LayoutMatchesDefinition)
{
    // batch=1, seq=2, heads=2, d_model=4 (dh=2).
    Tensor in(Shape({2, 4}), {0, 1, 2, 3, 10, 11, 12, 13});
    Tensor out(Shape({2, 2, 2}));
    splitHeads(in, 1, 2, 2, out);
    // Head 0 gets cols 0..1; head 1 gets cols 2..3.
    EXPECT_FLOAT_EQ(out.at(0 * 4 + 0 * 2 + 0), 0.0f);  // h0 t0 j0
    EXPECT_FLOAT_EQ(out.at(0 * 4 + 1 * 2 + 1), 11.0f); // h0 t1 j1
    EXPECT_FLOAT_EQ(out.at(1 * 4 + 0 * 2 + 0), 2.0f);  // h1 t0 j0
    EXPECT_FLOAT_EQ(out.at(1 * 4 + 1 * 2 + 1), 13.0f); // h1 t1 j1
}

TEST(SplitMergeHeads, RoundTrip)
{
    Rng rng(2);
    const std::int64_t batch = 3, seq = 5, heads = 4, d = 16;
    Tensor in(Shape({batch * seq, d}));
    in.fillNormal(rng);
    Tensor split(Shape({batch * heads, seq, d / heads}));
    splitHeads(in, batch, seq, heads, split);
    Tensor merged(in.shape());
    mergeHeads(split, batch, seq, heads, merged);
    EXPECT_LT(maxAbsDiff(in, merged), 1e-7f);
}

TEST(SplitHeads, StatsArePureTraffic)
{
    Tensor in(Shape({4, 8}));
    Tensor out(Shape({4, 2, 4}));
    const KernelStats stats = splitHeads(in, 2, 2, 2, out);
    EXPECT_EQ(stats.flops, 0);
    EXPECT_EQ(stats.bytesRead, 32 * 4);
    EXPECT_EQ(stats.bytesWritten, 32 * 4);
}

} // namespace
} // namespace bertprof
