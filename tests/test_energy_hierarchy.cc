/** Tests for the energy model and the hierarchical network model. */

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "dist/comm_model.h"
#include "dist/hierarchical_comm.h"
#include "nmc/nmc_model.h"
#include "perf/energy.h"

namespace bertprof {
namespace {

TEST(EnergyModel, GemmKernelsPayComputeEnergy)
{
    EnergyModel energy;
    TimedOp timed;
    timed.op.kind = OpKind::Gemm;
    timed.op.stats = gemmStats(1024, 1024, 1024);
    timed.time.compute = 1e-4;
    const auto e = energy.kernelEnergy(timed);
    EXPECT_GT(e.computeJoules, 0.0);
    EXPECT_GT(e.memoryJoules, 0.0);
    EXPECT_NEAR(e.staticJoules, 90.0 * timed.time.total(), 1e-9);
}

TEST(EnergyModel, ElementwiseKernelsAreMemoryEnergyDominated)
{
    EnergyModel energy;
    TimedOp timed;
    timed.op.kind = OpKind::Elementwise;
    timed.op.stats = elementwiseStats(1 << 22, 2, 1, 1);
    const auto e = energy.kernelEnergy(timed);
    EXPECT_GT(e.memoryJoules, 5.0 * e.computeJoules);
}

TEST(EnergyModel, TraceEnergyIsSumOfKernels)
{
    Characterizer characterizer(mi100());
    const auto result = characterizer.run(withPhase1(bertLarge(), 4));
    EnergyModel energy;
    const auto total = energy.traceEnergy(result.timed);
    double manual = 0.0;
    for (const auto &timed : result.timed.ops)
        manual += energy.kernelEnergy(timed).total();
    EXPECT_NEAR(total.total(), manual, manual * 1e-9);
    EXPECT_GT(total.total(), 0.0);
}

TEST(EnergyModel, NmcBeatsGpuOnMemoryEnergyForLamb)
{
    // The Sec. 6.2.1 energy-efficiency claim: same bytes at the
    // cheaper in-bank rate, less static energy (shorter runtime).
    EnergyModel energy;
    NmcModel nmc(hbm2BankNmc());
    OpDesc lamb_op;
    lamb_op.kind = OpKind::Elementwise;
    lamb_op.stats = elementwiseStats(1 << 24, 4, 3, 14);
    TimedOp gpu_timed;
    gpu_timed.op = lamb_op;
    gpu_timed.time.memory = 1e-3;
    const auto gpu = energy.kernelEnergy(gpu_timed);
    const auto offloaded =
        energy.nmcKernelEnergy(lamb_op, nmc.timeFor(lamb_op));
    EXPECT_LT(offloaded.memoryJoules, 0.5 * gpu.memoryJoules);
    EXPECT_LT(offloaded.total(), gpu.total());
}

TEST(EnergyModel, MixedPrecisionIterationUsesLessEnergy)
{
    Characterizer characterizer(mi100());
    EnergyModel energy;
    BertConfig fp32 = withPhase1(bertLarge(), 8);
    BertConfig mp = fp32;
    mp.precision = Precision::Mixed;
    const auto e32 = energy.traceEnergy(characterizer.run(fp32).timed);
    const auto e16 = energy.traceEnergy(characterizer.run(mp).timed);
    EXPECT_LT(e16.total(), e32.total());
}

TEST(HierarchicalComm, SingleNodeMatchesPureIntraRing)
{
    HierarchicalCommModel hier(200e9, 25e9, 8, 0.0);
    const std::int64_t bytes = 1 << 30;
    // 8 devices in one node: inter phase is free.
    EXPECT_EQ(hier.interNodeTime(bytes, 8), 0.0);
    const double expected =
        2.0 * (7.0 / 8.0) * static_cast<double>(bytes) / 200e9;
    EXPECT_NEAR(hier.allReduceTime(bytes, 8), expected, 1e-9);
}

TEST(HierarchicalComm, SlowInterLinkDominatesAtScale)
{
    HierarchicalCommModel hier(400e9, 25e9, 8, 0.0);
    const std::int64_t bytes = 1 << 30;
    const Seconds t64 = hier.allReduceTime(bytes, 64);
    EXPECT_GT(hier.interNodeTime(bytes, 64),
              hier.intraNodeTime(bytes, 64));
    // More nodes -> more inter time, monotonically.
    EXPECT_GT(hier.allReduceTime(bytes, 128), t64);
}

TEST(HierarchicalComm, FasterIntraLinkHelpsOnlyIntraPhase)
{
    const std::int64_t bytes = 1 << 28;
    HierarchicalCommModel slow(100e9, 25e9, 8, 0.0);
    HierarchicalCommModel fast(400e9, 25e9, 8, 0.0);
    EXPECT_EQ(slow.interNodeTime(bytes, 64),
              fast.interNodeTime(bytes, 64));
    EXPECT_GT(slow.intraNodeTime(bytes, 64),
              fast.intraNodeTime(bytes, 64));
}

TEST(HierarchicalComm, TrendsMatchFlatRingQualitatively)
{
    // Sec. 5.2's robustness claim: the "cost grows with devices"
    // trend holds for both flat and hierarchical networks.
    CommModel flat(25e9, 0.0, AllReduceAlgo::Ring);
    HierarchicalCommModel hier(200e9, 25e9, 8, 0.0);
    const std::int64_t bytes = 1 << 28;
    Seconds prev_flat = 0.0, prev_hier = 0.0;
    for (int devices : {8, 16, 32, 64}) {
        const Seconds f = flat.allReduceTime(bytes, devices);
        const Seconds h = hier.allReduceTime(bytes, devices);
        EXPECT_GE(f, prev_flat);
        EXPECT_GE(h, prev_hier);
        prev_flat = f;
        prev_hier = h;
    }
}

} // namespace
} // namespace bertprof
