/**
 * @file
 * Overload-resilience suite: monoAddMicros saturation, the pending
 * queue's EDF edge cases (equal deadlines, the MonoTime{} sentinel)
 * and shedding primitives, admission-control policies (reject-new vs
 * drop-oldest, EWMA-based unmeetable-deadline refusal), the
 * hysteretic degradation ladder, and an in-process chaos run — 8
 * client threads against a server with serve.submit/serve.compute
 * faults armed, where every future must resolve exactly once.
 */

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>

#include <gtest/gtest.h>

#include "runtime/fault_injection.h"
#include "serve/batcher.h"
#include "serve/server.h"
#include "serve/traffic.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using ::bertprof::testing::tinyBertConfig;

constexpr std::int64_t kPadId = 3;

/** Configure the process-wide injector for one test, reset after. */
struct InjectorGuard {
    ~InjectorGuard() { FaultInjector::instance().reset(); }
};

PendingRequest
makePending(std::uint64_t id, std::int64_t len, MonoTime arrival,
            std::int64_t deadline_us)
{
    PendingRequest p;
    p.request.id = id;
    p.request.tokenIds.assign(static_cast<std::size_t>(len), 5);
    p.request.segmentIds.assign(static_cast<std::size_t>(len), 0);
    p.request.arrival = arrival;
    p.request.deadline = monoAddMicros(arrival, deadline_us);
    return p;
}

ResolvedServePolicy
makePolicy(int max_batch, std::int64_t max_wait_us)
{
    ResolvedServePolicy policy;
    policy.maxBatch = max_batch;
    policy.maxWaitUs = max_wait_us;
    return policy;
}

// --------------------------------------------------------------------
// monoAddMicros saturation
// --------------------------------------------------------------------

TEST(MonoAddMicros, SaturatesInsteadOfOverflowing)
{
    const MonoTime now = monoNow();
    // An extreme defaultDeadlineUs must clamp to the clock's end of
    // time, not wrap into the past.
    EXPECT_EQ(monoAddMicros(now, std::numeric_limits<std::int64_t>::max()),
              MonoTime::max());
    EXPECT_EQ(monoAddMicros(now, std::numeric_limits<std::int64_t>::min()),
              MonoTime::min());
    // Saturated values still order correctly against real deadlines.
    EXPECT_LT(monoAddMicros(now, 1000),
              monoAddMicros(now,
                            std::numeric_limits<std::int64_t>::max()));
    // Ordinary arithmetic is untouched.
    EXPECT_EQ(monoAddMicros(now, 1500) - now,
              std::chrono::microseconds(1500));
    EXPECT_EQ(monoAddMicros(now, -1500) - now,
              -std::chrono::microseconds(1500));
}

// --------------------------------------------------------------------
// PendingQueue EDF edge cases and shedding primitives
// --------------------------------------------------------------------

TEST(PendingQueueEdf, EqualDeadlinesAndArrivalsPickLowestBucket)
{
    PendingQueue queue(3);
    const MonoTime t0 = monoNow();
    // Identical deadline AND arrival in buckets 2 and 1: the scan
    // order makes the lowest-index bucket the stable winner.
    queue.push(2, makePending(1, 20, t0, 1000));
    queue.push(1, makePending(2, 12, t0, 1000));
    EXPECT_EQ(queue.leadBucket(), 1);
    // A strictly earlier arrival at the same deadline wins the tie.
    queue.push(2, makePending(3, 20, monoAddMicros(t0, -10), 1010));
    EXPECT_EQ(queue.leadBucket(), 1); // head of 2 is still id=1
}

TEST(PendingQueueEdf, DefaultMonoTimeSentinelLeadsEverything)
{
    PendingQueue queue(2);
    const MonoTime t0 = monoNow();
    queue.push(0, makePending(1, 4, t0, 50));
    // A request whose deadline was never stamped (MonoTime{} — the
    // clock's epoch, long before now) sorts as maximally urgent; the
    // server always stamps deadlines, but the queue must stay total
    // -ordered even on the sentinel.
    PendingRequest unstamped;
    unstamped.request.id = 2;
    unstamped.request.tokenIds.assign(12, 5);
    unstamped.request.segmentIds.assign(12, 0);
    unstamped.request.arrival = t0;
    ASSERT_EQ(unstamped.request.deadline, MonoTime{});
    queue.push(1, std::move(unstamped));
    EXPECT_EQ(queue.leadBucket(), 1);
    // And dropExpired treats the sentinel as already past.
    const auto dead = queue.dropExpired(monoNow());
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0].request.id, 2u);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(PendingQueueShed, DropExpiredRemovesAcrossBuckets)
{
    PendingQueue queue(2);
    const MonoTime t0 = monoNow();
    queue.push(0, makePending(1, 4, t0, -100)); // already dead
    queue.push(0, makePending(2, 4, t0, 60000000));
    queue.push(1, makePending(3, 12, t0, -50)); // already dead
    const auto dead = queue.dropExpired(monoNow());
    EXPECT_EQ(dead.size(), 2u);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue.head(0).id, 2u);
}

TEST(PendingQueueShed, ShedLowestUrgencyDropsLatestDeadlinesFirst)
{
    PendingQueue queue(2);
    const MonoTime t0 = monoNow();
    queue.push(0, makePending(1, 4, t0, 1000));
    queue.push(0, makePending(2, 4, t0, 90000000)); // least urgent
    queue.push(1, makePending(3, 12, t0, 5000));
    queue.push(1, makePending(4, 12, t0, 60000000));
    const auto shed = queue.shedLowestUrgency(2);
    ASSERT_EQ(shed.size(), 2u);
    EXPECT_EQ(shed[0].request.id, 2u);
    EXPECT_EQ(shed[1].request.id, 4u);
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.head(0).id, 1u);
    EXPECT_EQ(queue.head(1).id, 3u);
}

// --------------------------------------------------------------------
// Admission control
// --------------------------------------------------------------------

TEST(Admission, RejectNewRefusesAtCap)
{
    ResolvedServePolicy policy = makePolicy(8, 60000000);
    policy.queueCap = 2;
    policy.queuePolicy = QueuePolicy::RejectNew;
    policy.degrade = false;
    DynamicBatcher batcher(BucketSpec({8}), policy);
    const MonoTime t0 = monoNow();
    for (std::uint64_t id = 1; id <= 2; ++id) {
        PendingRequest p = makePending(id, 4, t0, 60000000);
        EXPECT_EQ(batcher.submit(p), RejectReason::None);
    }
    PendingRequest third = makePending(3, 4, t0, 60000000);
    EXPECT_EQ(batcher.submit(third), RejectReason::QueueFull);
    EXPECT_EQ(batcher.pendingCount(), 2u);
}

TEST(Admission, DropOldestEvictsAndResolvesTheVictim)
{
    ResolvedServePolicy policy = makePolicy(8, 60000000);
    policy.queueCap = 1;
    policy.queuePolicy = QueuePolicy::DropOldest;
    policy.degrade = false;
    DynamicBatcher batcher(BucketSpec({8}), policy);
    const MonoTime t0 = monoNow();

    PendingRequest first = makePending(1, 4, t0, 60000000);
    std::future<InferReply> victim = first.promise.get_future();
    EXPECT_EQ(batcher.submit(first), RejectReason::None);
    PendingRequest second = makePending(2, 4, t0, 60000000);
    EXPECT_EQ(batcher.submit(second), RejectReason::None);

    // The evicted oldest resolved QueueFull; the newcomer queued.
    const InferReply evicted = victim.get();
    EXPECT_FALSE(evicted.ok);
    EXPECT_EQ(evicted.id, 1u);
    EXPECT_EQ(evicted.reject, RejectReason::QueueFull);
    EXPECT_EQ(batcher.pendingCount(), 1u);
    EXPECT_EQ(batcher.rejectedCount(RejectReason::QueueFull), 1);
}

TEST(Admission, EwmaRejectsUnmeetableDeadlines)
{
    DynamicBatcher batcher(BucketSpec({8}), makePolicy(8, 60000000));
    // Before any measurement the gate is open: 1ms deadline admits.
    {
        PendingRequest p = makePending(1, 4, monoNow(), 1000);
        EXPECT_EQ(batcher.submit(p), RejectReason::None);
    }
    batcher.recordServiceTime(0, 0.1); // 100ms measured service
    EXPECT_NEAR(batcher.serviceEwmaSeconds(0), 0.1, 1e-9);
    // Now a 1ms deadline is provably unmeetable. Submit-path refusals
    // leave the request with the caller, who funnels it through
    // resolveRejected — the server contract.
    {
        PendingRequest p = makePending(2, 4, monoNow(), 1000);
        std::future<InferReply> f = p.promise.get_future();
        const RejectReason reason = batcher.submit(p);
        EXPECT_EQ(reason, RejectReason::Expired);
        batcher.resolveRejected(p, reason);
        const InferReply reply = f.get();
        EXPECT_FALSE(reply.ok);
        EXPECT_EQ(reply.reject, RejectReason::Expired);
    }
    // A roomy deadline still admits.
    {
        PendingRequest p = makePending(3, 4, monoNow(), 60000000);
        EXPECT_EQ(batcher.submit(p), RejectReason::None);
    }
    EXPECT_EQ(batcher.rejectedCount(RejectReason::Expired), 1);
}

TEST(Admission, DeadOnArrivalIsExpiredNotQueued)
{
    DynamicBatcher batcher(BucketSpec({8}), makePolicy(8, 1000));
    PendingRequest p = makePending(1, 4, monoNow(), -1000);
    EXPECT_EQ(batcher.submit(p), RejectReason::Expired);
    EXPECT_EQ(batcher.pendingCount(), 0u);
}

// --------------------------------------------------------------------
// Degradation ladder
// --------------------------------------------------------------------

TEST(DegradeLadder, RisesWithDepthAndShedsAtLevelThree)
{
    ResolvedServePolicy policy = makePolicy(/*max_batch=*/8,
                                            /*max_wait_us=*/60000000);
    policy.queueCap = 4; // one bucket: thresholds 2 / 3 / 4
    DynamicBatcher batcher(BucketSpec({8}), policy);
    const MonoTime t0 = monoNow();

    std::vector<std::future<InferReply>> futures;
    for (std::uint64_t id = 1; id <= 4; ++id) {
        PendingRequest p = makePending(id, 4, t0, 60000000);
        futures.push_back(p.promise.get_future());
        ASSERT_EQ(batcher.submit(p), RejectReason::None);
    }
    EXPECT_EQ(batcher.degradeLevel(), 3);

    // At level 3 the executor sheds down to the entry threshold - 1
    // (3), then flushes with the halved fan-out cap (4): one request
    // resolves QueueFull, three ship, and the drained ladder resets.
    Batch batch;
    ASSERT_TRUE(batcher.nextBatch(batch));
    EXPECT_EQ(batch.requests.size(), 3u);
    EXPECT_EQ(batcher.rejectedCount(RejectReason::QueueFull), 1);
    EXPECT_EQ(batcher.degradeLevel(), 0);

    // The shed future resolved typed; id 4 (newest = least urgent
    // tail) was the victim.
    const InferReply shed = futures[3].get();
    EXPECT_FALSE(shed.ok);
    EXPECT_EQ(shed.reject, RejectReason::QueueFull);
}

TEST(DegradeLadder, HysteresisHoldsTheLevelUntilHalfThreshold)
{
    // maxBatch 1 drains one request per nextBatch, stepping the depth
    // down 4 -> 3 -> 2 so the exit boundary is observable.
    ResolvedServePolicy policy = makePolicy(/*max_batch=*/1,
                                            /*max_wait_us=*/1000);
    policy.queueCap = 8; // one bucket: enter 4 / 6 / 7, exit 2 / 3 / 3
    DynamicBatcher batcher(BucketSpec({8}), policy);
    const MonoTime t0 = monoNow();
    for (std::uint64_t id = 1; id <= 4; ++id) {
        PendingRequest p = makePending(id, 4, t0, 60000000);
        ASSERT_EQ(batcher.submit(p), RejectReason::None);
    }
    EXPECT_EQ(batcher.degradeLevel(), 1);
    Batch batch;
    // Depth 3 after one drain: above the exit boundary (2), so the
    // ladder holds level 1 even though depth is below the entry (4).
    ASSERT_TRUE(batcher.nextBatch(batch));
    EXPECT_EQ(batcher.degradeLevel(), 1);
    // Depth 2 reaches the exit boundary: now it steps down.
    ASSERT_TRUE(batcher.nextBatch(batch));
    EXPECT_EQ(batcher.degradeLevel(), 0);
}

TEST(DegradeLadder, DisabledLadderNeverEngages)
{
    ResolvedServePolicy policy = makePolicy(8, 60000000);
    policy.queueCap = 4;
    policy.degrade = false;
    DynamicBatcher batcher(BucketSpec({8}), policy);
    const MonoTime t0 = monoNow();
    for (std::uint64_t id = 1; id <= 4; ++id) {
        PendingRequest p = makePending(id, 4, t0, 60000000);
        ASSERT_EQ(batcher.submit(p), RejectReason::None);
    }
    EXPECT_EQ(batcher.degradeLevel(), 0);
}

// --------------------------------------------------------------------
// In-process chaos: 8 client threads, faults armed, every future
// resolves exactly once with a typed outcome.
// --------------------------------------------------------------------

TEST(ServeChaos, EightThreadsEveryFutureResolvesUnderFaults)
{
    InjectorGuard guard;
    FaultInjector::instance().configure(
        "slow=2000@serve.compute:1+3;reject@serve.submit:2+5;"
        "reject@serve.batch:3+2");

    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertClassifier clf(config, &rt);
    Rng init(81);
    clf.initialize(init);
    clf.setTraining(false);
    ClassifierEngine engine(clf, kPadId);

    ServeOptions options;
    options.maxBatch = 4;
    options.maxWaitUs = 200;
    options.queueCap = 4;
    options.defaultDeadlineUs = 50000; // tight: sheds under the stalls
    InferenceServer server(engine, BucketSpec({8, 16, 32}), options);

    constexpr int kThreads = 8;
    constexpr int kPerThread = 8;
    std::atomic<int> resolved{0};
    std::atomic<int> ok_count{0};
    std::atomic<int> typed_rejects{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kThreads; ++c) {
        clients.emplace_back([&, c] {
            Rng body(static_cast<std::uint64_t>(900 + c));
            for (int i = 0; i < kPerThread; ++i) {
                const std::int64_t len = body.uniformInt(1, 32);
                InferRequest req = syntheticRequest(
                    body,
                    static_cast<std::uint64_t>(c * kPerThread + i), len,
                    config.vocabSize);
                const InferReply reply =
                    server.submit(std::move(req)).get();
                ++resolved;
                if (reply.ok) {
                    EXPECT_EQ(reply.reject, RejectReason::None);
                    ++ok_count;
                } else {
                    EXPECT_NE(reply.reject, RejectReason::None);
                    ++typed_rejects;
                }
            }
        });
    }
    for (auto &t : clients)
        t.join();
    server.shutdown();

    // Every submission came back, each with a definite outcome.
    EXPECT_EQ(resolved.load(), kThreads * kPerThread);
    EXPECT_EQ(ok_count.load() + typed_rejects.load(),
              kThreads * kPerThread);
    // The armed faults guarantee at least the injected rejections.
    EXPECT_GE(typed_rejects.load(), 5);
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed + stats.rejectedTotal(),
              kThreads * kPerThread);
}

} // namespace
} // namespace bertprof
