/** Tests for the element-wise kernels. */

#include <gtest/gtest.h>

#include "ops/elementwise.h"
#include "util/rng.h"

namespace bertprof {
namespace {

TEST(Elementwise, AddForward)
{
    Tensor a(Shape({3}), {1, 2, 3});
    Tensor b(Shape({3}), {10, 20, 30});
    Tensor out(Shape({3}));
    const KernelStats stats = addForward(a, b, out);
    EXPECT_FLOAT_EQ(out.at(0), 11.0f);
    EXPECT_FLOAT_EQ(out.at(2), 33.0f);
    EXPECT_EQ(stats.bytesRead, 3 * 2 * 4);
    EXPECT_EQ(stats.bytesWritten, 3 * 4);
}

TEST(Elementwise, MulForward)
{
    Tensor a(Shape({2}), {2, -3});
    Tensor b(Shape({2}), {4, 5});
    Tensor out(Shape({2}));
    mulForward(a, b, out);
    EXPECT_FLOAT_EQ(out.at(0), 8.0f);
    EXPECT_FLOAT_EQ(out.at(1), -15.0f);
}

TEST(Elementwise, ScaleForwardInPlaceSafe)
{
    Tensor a(Shape({2}), {2, 4});
    scaleForward(a, 0.5f, a);
    EXPECT_FLOAT_EQ(a.at(0), 1.0f);
    EXPECT_FLOAT_EQ(a.at(1), 2.0f);
}

TEST(Elementwise, Accumulate)
{
    Tensor a(Shape({2}), {1, 1});
    Tensor b(Shape({2}), {2, 3});
    accumulate(a, b);
    EXPECT_FLOAT_EQ(a.at(0), 3.0f);
    EXPECT_FLOAT_EQ(a.at(1), 4.0f);
}

TEST(Elementwise, BiasForwardBroadcastsOverRows)
{
    Tensor in(Shape({2, 3}), {0, 0, 0, 1, 1, 1});
    Tensor bias(Shape({3}), {10, 20, 30});
    Tensor out(Shape({2, 3}));
    const KernelStats stats = biasForward(in, bias, out);
    EXPECT_FLOAT_EQ(out.at(0, 1), 20.0f);
    EXPECT_FLOAT_EQ(out.at(1, 2), 31.0f);
    EXPECT_EQ(stats.bytesRead, 6 * 4 + 3 * 4);
}

TEST(Elementwise, BiasBackwardSumsColumns)
{
    Tensor dout(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
    Tensor dbias(Shape({2}));
    biasBackward(dout, dbias);
    EXPECT_FLOAT_EQ(dbias.at(0), 9.0f);
    EXPECT_FLOAT_EQ(dbias.at(1), 12.0f);
}

TEST(Elementwise, BiasRoundTripGradientIdentity)
{
    // d(sum(out))/d(bias[c]) must equal row count.
    Tensor in(Shape({4, 3}));
    Tensor bias(Shape({3}));
    Tensor out(Shape({4, 3}));
    biasForward(in, bias, out);
    Tensor dout(Shape({4, 3}));
    dout.fill(1.0f);
    Tensor dbias(Shape({3}));
    biasBackward(dout, dbias);
    for (int c = 0; c < 3; ++c)
        EXPECT_FLOAT_EQ(dbias.at(c), 4.0f);
}

TEST(Elementwise, MaskAddBroadcastsOverGroups)
{
    Tensor a(Shape({2, 2, 2}));
    a.fill(1.0f);
    Tensor mask(Shape({2, 2}), {0, -10, -10, 0});
    Tensor out(a.shape());
    maskAddForward(a, mask, out);
    for (int g = 0; g < 2; ++g) {
        EXPECT_FLOAT_EQ(out.at(g * 4 + 0), 1.0f);
        EXPECT_FLOAT_EQ(out.at(g * 4 + 1), -9.0f);
        EXPECT_FLOAT_EQ(out.at(g * 4 + 2), -9.0f);
        EXPECT_FLOAT_EQ(out.at(g * 4 + 3), 1.0f);
    }
}

TEST(ElementwiseStats, ArithmeticIntensity)
{
    const KernelStats stats = elementwiseStats(100, 2, 1, 1);
    EXPECT_DOUBLE_EQ(stats.opsPerByte(), 100.0 / (300 * 4));
}

TEST(KernelStats, AdditionAccumulates)
{
    KernelStats a{10, 100, 50};
    KernelStats b{1, 2, 3};
    const KernelStats c = a + b;
    EXPECT_EQ(c.flops, 11);
    EXPECT_EQ(c.bytesRead, 102);
    EXPECT_EQ(c.bytesWritten, 53);
    EXPECT_EQ(c.bytesTotal(), 155);
}

} // namespace
} // namespace bertprof
