/**
 * Tests for the parallel execution runtime: coverage and exactly-once
 * execution of parallelFor/parallelFor2d chunks, serial task
 * ordering, exception propagation out of the pool, the
 * nested-parallel_for serial fallback, pool teardown/resize, and the
 * ordered-reduction determinism policy.
 */

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace bertprof {
namespace {

/** Restore the configured thread count when a test exits. */
class ThreadCountGuard
{
  public:
    explicit ThreadCountGuard(int n) { setNumThreads(n); }
    ~ThreadCountGuard() { setNumThreads(0); }
};

TEST(ThreadPool, RunExecutesEveryTaskExactlyOnce)
{
    ThreadCountGuard guard(4);
    constexpr std::int64_t kTasks = 1000;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto &h : hits)
        h.store(0);
    ThreadPool::instance().run(kTasks, [&](std::int64_t i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "task " << i;
}

TEST(ThreadPool, SerialModeRunsTasksInIndexOrder)
{
    ThreadCountGuard guard(1);
    std::vector<std::int64_t> order;
    ThreadPool::instance().run(64,
                               [&](std::int64_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 64u);
    for (std::int64_t i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ParallelForCoversRangeWithDisjointChunks)
{
    ThreadCountGuard guard(4);
    constexpr std::int64_t kN = 100000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto &h : hits)
        h.store(0);
    parallelFor(0, kN, 1024, [&](std::int64_t lo, std::int64_t hi) {
        EXPECT_LT(lo, hi);
        for (std::int64_t i = lo; i < hi; ++i)
            hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "index " << i;
}

TEST(ThreadPool, ParallelFor2dCoversGridExactlyOnce)
{
    ThreadCountGuard guard(4);
    constexpr std::int64_t kRows = 300, kCols = 170;
    std::vector<std::atomic<int>> hits(kRows * kCols);
    for (auto &h : hits)
        h.store(0);
    parallelFor2d(kRows, kCols, 7, 13,
                  [&](std::int64_t r_lo, std::int64_t r_hi,
                      std::int64_t c_lo, std::int64_t c_hi) {
                      for (std::int64_t r = r_lo; r < r_hi; ++r)
                          for (std::int64_t c = c_lo; c < c_hi; ++c)
                              hits[static_cast<std::size_t>(r * kCols + c)]
                                  .fetch_add(1);
                  });
    for (std::int64_t i = 0; i < kRows * kCols; ++i)
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "cell " << i;
}

TEST(ThreadPool, EmptyAndNegativeRangesAreNoOps)
{
    ThreadCountGuard guard(4);
    int calls = 0;
    // The ranges below are empty, so the bodies never execute; the
    // unsynchronized counter is exactly what proves that.
    // bplint: allow(parallel-capture-race)
    parallelFor(0, 0, 8, [&](std::int64_t, std::int64_t) { ++calls; });
    // bplint: allow(parallel-capture-race)
    parallelFor(5, 5, 8, [&](std::int64_t, std::int64_t) { ++calls; });
    // bplint: allow(parallel-capture-race)
    parallelFor(9, 3, 8, [&](std::int64_t, std::int64_t) { ++calls; });
    parallelFor2d(0, 10, 1, 1,
                  [&](std::int64_t, std::int64_t, std::int64_t,
                      // bplint: allow(parallel-capture-race)
                      std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(parallelReduceOrdered(
                  3, 3, 8,
                  [](std::int64_t, std::int64_t) { return 1.0; }),
              0.0);
}

TEST(ThreadPool, ExceptionPropagatesFromParallelBody)
{
    ThreadCountGuard guard(4);
    EXPECT_THROW(
        parallelFor(0, 10000, 16,
                    [&](std::int64_t lo, std::int64_t) {
                        if (lo >= 5000)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool must remain usable after an exceptional region.
    std::atomic<std::int64_t> sum{0};
    parallelFor(0, 100, 10, [&](std::int64_t lo, std::int64_t hi) {
        sum.fetch_add(hi - lo);
    });
    EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPool, ExceptionPropagatesInSerialMode)
{
    ThreadCountGuard guard(1);
    EXPECT_THROW(parallelFor(0, 10, 1,
                             [](std::int64_t, std::int64_t) {
                                 throw std::runtime_error("serial boom");
                             }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedParallelForFallsBackToSerial)
{
    ThreadCountGuard guard(4);
    std::atomic<int> outer_chunks{0};
    std::atomic<int> inner_cross_thread{0};
    std::atomic<std::int64_t> inner_total{0};
    parallelFor(0, 64, 1, [&](std::int64_t, std::int64_t) {
        outer_chunks.fetch_add(1);
        const std::thread::id outer_thread = std::this_thread::get_id();
        // Inside a pool task every thread reports inWorker(), so the
        // inner loop must execute inline on the same thread.
        EXPECT_TRUE(ThreadPool::inWorker());
        parallelFor(0, 1000, 10, [&](std::int64_t lo, std::int64_t hi) {
            if (std::this_thread::get_id() != outer_thread)
                inner_cross_thread.fetch_add(1);
            inner_total.fetch_add(hi - lo);
        });
    });
    EXPECT_EQ(outer_chunks.load(), 64);
    EXPECT_EQ(inner_cross_thread.load(), 0);
    EXPECT_EQ(inner_total.load(), 64 * 1000);
    // Outside any region the calling thread is not a pool context.
    EXPECT_FALSE(ThreadPool::inWorker());
}

TEST(ThreadPool, ResizeTearsDownAndRespawnsWorkers)
{
    ThreadCountGuard guard(4);
    for (const int n : {1, 2, 8, 1, 4}) {
        setNumThreads(n);
        EXPECT_EQ(ThreadPool::instance().numThreads(), n);
        std::atomic<std::int64_t> sum{0};
        parallelFor(0, 4096, 64, [&](std::int64_t lo, std::int64_t hi) {
            sum.fetch_add(hi - lo);
        });
        EXPECT_EQ(sum.load(), 4096) << "threads=" << n;
    }
}

TEST(ThreadPool, ParallelRunsUseMultipleThreadsWhenConfigured)
{
    ThreadCountGuard guard(4);
    std::mutex m;
    std::set<std::thread::id> seen;
    // Many more chunks than lanes plus a touch of work per chunk so
    // sleeping workers have time to wake and participate.
    parallelFor(0, 1 << 18, 256, [&](std::int64_t lo, std::int64_t hi) {
        volatile double sink = 0.0;
        for (std::int64_t i = lo; i < hi; ++i)
            sink = sink + static_cast<double>(i);
        std::lock_guard<std::mutex> lock(m);
        // The shared set is guarded by the mutex acquired above.
        // bplint: allow(parallel-capture-race)
        seen.insert(std::this_thread::get_id());
    });
    // With work stealing at least the caller participates; on any
    // multi-core box workers join too. Never more than the lane count.
    EXPECT_GE(seen.size(), 1u);
    EXPECT_LE(seen.size(), 4u);
}

TEST(ThreadPool, ReduceOrderedMatchesSerialSumExactly)
{
    // Pseudo-random values whose flat sum depends on association
    // order in general; the ordered merge must agree across thread
    // counts because the chunk grid is thread-count independent.
    constexpr std::int64_t kN = 300000;
    std::vector<double> values(kN);
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (auto &value : values) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        value = static_cast<double>(state >> 11) * 0x1.0p-53 - 0.5;
    }
    const auto chunk_sum = [&](std::int64_t lo, std::int64_t hi) {
        double acc = 0.0;
        for (std::int64_t i = lo; i < hi; ++i)
            acc += values[static_cast<std::size_t>(i)];
        return acc;
    };
    setNumThreads(2);
    const double sum2 = parallelReduceOrdered(0, kN, 1024, chunk_sum);
    setNumThreads(8);
    const double sum8 = parallelReduceOrdered(0, kN, 1024, chunk_sum);
    setNumThreads(0);
    EXPECT_EQ(sum2, sum8); // bitwise: same chunk grid, same merge order
}

} // namespace
} // namespace bertprof
