/**
 * Cross-validation between the two halves of the library: the CPU
 * substrate's *measured* kernel accounting must agree with the trace
 * builder's *emitted* accounting for the same configuration. GEMM
 * FLOPs use identical formulas on both sides, so they must match
 * exactly; kernel counts match structurally per taxonomy group.
 */

#include <map>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/bert_pretrainer.h"
#include "optim/lamb.h"
#include "runtime/config.h"
#include "test_helpers.h"
#include "trace/bert_trace_builder.h"

namespace bertprof {
namespace {

using testing::tinyBertConfig;

struct CrossValidation : public ::testing::Test {
    BertConfig config_ = tinyBertConfig();
    Profiler profiler_;

    // The trace builder emits the *unfused* op decomposition, so the
    // substrate must run the unfused oracle path regardless of any
    // ambient BERTPROF_FUSION setting (the fused kernels merge GEMMs
    // and change the per-kernel taxonomy by design).
    void SetUp() override { setFusionMode(FusionMode::Off); }
    void TearDown() override { clearFusionModeOverride(); }

    void
    runSubstrateIteration()
    {
        NnRuntime rt;
        rt.profiler = &profiler_;
        rt.dropoutP = 0.0f;
        BertPretrainer trainer(config_, &rt);
        Rng init(3);
        trainer.initialize(init);
        SyntheticDataset dataset(config_, 5);
        OptimizerConfig opt_config;
        Lamb lamb(opt_config, &profiler_);
        trainer.zeroGrad();
        trainer.forwardBackward(dataset.nextBatch());
        lamb.step(trainer.parameters());
    }

    std::int64_t
    substrateGemmFlops(LayerScope scope)
    {
        std::int64_t total = 0;
        for (const auto &rec : profiler_.records())
            if (rec.scope == scope &&
                (rec.kind == OpKind::Gemm ||
                 rec.kind == OpKind::BatchedGemm))
                total += rec.stats.flops;
        return total;
    }

    std::int64_t
    traceGemmFlops(const OpTrace &trace, LayerScope scope)
    {
        std::int64_t total = 0;
        for (const auto &op : trace.ops)
            if (op.scope == scope &&
                (op.kind == OpKind::Gemm ||
                 op.kind == OpKind::BatchedGemm))
                total += op.stats.flops;
        return total;
    }
};

TEST_F(CrossValidation, TransformerGemmFlopsMatchExactly)
{
    runSubstrateIteration();
    BertTraceBuilder builder(config_);
    const OpTrace trace = builder.buildIteration();
    EXPECT_EQ(substrateGemmFlops(LayerScope::Transformer),
              traceGemmFlops(trace, LayerScope::Transformer));
}

TEST_F(CrossValidation, OutputHeadGemmFlopsMatchExactly)
{
    runSubstrateIteration();
    BertTraceBuilder builder(config_);
    const OpTrace trace = builder.buildIteration();
    EXPECT_EQ(substrateGemmFlops(LayerScope::Output),
              traceGemmFlops(trace, LayerScope::Output));
}

TEST_F(CrossValidation, GemmKernelCountsMatch)
{
    runSubstrateIteration();
    BertTraceBuilder builder(config_);
    const OpTrace trace = builder.buildIteration();
    auto count = [](auto &&records, auto get_kind, auto get_scope) {
        std::int64_t n = 0;
        for (const auto &r : records) {
            const OpKind kind = get_kind(r);
            if ((kind == OpKind::Gemm || kind == OpKind::BatchedGemm) &&
                get_scope(r) == LayerScope::Transformer)
                ++n;
        }
        return n;
    };
    const std::int64_t substrate = count(
        profiler_.records(),
        [](const ProfileRecord &r) { return r.kind; },
        [](const ProfileRecord &r) { return r.scope; });
    const std::int64_t modeled = count(
        trace.ops, [](const OpDesc &op) { return op.kind; },
        [](const OpDesc &op) { return op.scope; });
    EXPECT_EQ(substrate, modeled);
}

TEST_F(CrossValidation, LambUpdateBytesMatchWithinTolerance)
{
    runSubstrateIteration();
    BertTraceBuilder builder(config_);
    const OpTrace trace = builder.buildUpdate();
    std::int64_t substrate = 0;
    for (const auto &rec : profiler_.records())
        if (rec.phase == Phase::Update)
            substrate += rec.stats.bytesTotal();
    std::int64_t modeled = 0;
    for (const auto &op : trace.ops)
        modeled += op.stats.bytesTotal();
    // Same structure (grad-norm + 2 stages x tensors); both count
    // identical reads/writes per element.
    EXPECT_EQ(substrate, modeled);
}

TEST_F(CrossValidation, LambKernelCountMatches)
{
    runSubstrateIteration();
    BertTraceBuilder builder(config_);
    std::int64_t substrate = 0;
    for (const auto &rec : profiler_.records())
        if (rec.phase == Phase::Update)
            ++substrate;
    EXPECT_EQ(substrate,
              static_cast<std::int64_t>(builder.buildUpdate().size()));
}

} // namespace
} // namespace bertprof
