/**
 * Graph-executor unit tests: liveness intervals, arena planning
 * (reuse, non-aliasing, alignment, peak-below-sum), the fusion
 * pattern pass over the encoder eval graph, and graph-interpreter
 * versus eager-fused bitwise parity on a real EncoderLayer.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "graph/arena.h"
#include "graph/encoder_exec.h"
#include "graph/graph.h"
#include "nn/encoder_layer.h"
#include "nn/graph_hook.h"
#include "runtime/config.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using namespace bertprof::graph;

struct FusionGuard {
    ~FusionGuard() { clearFusionModeOverride(); }
};

TEST(GraphLiveness, IntervalsFollowDefUseWithConservativeEnd)
{
    GraphDef g;
    const int x = g.addValue("x", Shape({4, 4}), /*external=*/true);
    const int t1 = g.addValue("t1", Shape({4, 4}));
    const int t2 = g.addValue("t2", Shape({4, 4}));
    const int out = g.addValue("out", Shape({4, 4}), /*external=*/true);
    g.addOp(OpTag::Gelu, "a", SubLayer::Other, {x}, {t1});
    g.addOp(OpTag::Gelu, "b", SubLayer::Other, {t1}, {t2});
    g.addOp(OpTag::Gelu, "c", SubLayer::Other, {t2}, {out});

    const std::vector<Interval> live = computeLiveness(g);
    ASSERT_EQ(live.size(), 4u);
    // Externals are never arena candidates.
    EXPECT_EQ(live[x].start, -1);
    EXPECT_EQ(live[x].end, -1);
    EXPECT_EQ(live[out].start, -1);
    EXPECT_EQ(live[out].end, -1);
    // t1 defined by op 0, last read by op 1 -> [0, 2): the +1 keeps
    // it alive while op 1 runs so op 1's output can never alias it.
    EXPECT_EQ(live[t1].start, 0);
    EXPECT_EQ(live[t1].end, 2);
    EXPECT_EQ(live[t2].start, 1);
    EXPECT_EQ(live[t2].end, 3);
}

TEST(GraphLiveness, InPlaceOpExtendsTheSameInterval)
{
    GraphDef g;
    const int x = g.addValue("x", Shape({4}), /*external=*/true);
    const int t = g.addValue("t", Shape({4}));
    const int out = g.addValue("out", Shape({4}), /*external=*/true);
    g.addOp(OpTag::Gelu, "def", SubLayer::Other, {x}, {t});
    g.addOp(OpTag::Scale, "inplace", SubLayer::Other, {t}, {t});
    g.addOp(OpTag::Gelu, "use", SubLayer::Other, {t}, {out});
    const std::vector<Interval> live = computeLiveness(g);
    EXPECT_EQ(live[t].start, 0);
    EXPECT_EQ(live[t].end, 3);
}

TEST(GraphLiveness, OnlyReadWithinDetectsEscapes)
{
    GraphDef g;
    const int x = g.addValue("x", Shape({4}), /*external=*/true);
    const int t = g.addValue("t", Shape({4}));
    const int u = g.addValue("u", Shape({4}));
    const int out = g.addValue("out", Shape({4}), /*external=*/true);
    g.addOp(OpTag::Gelu, "def", SubLayer::Other, {x}, {t});
    g.addOp(OpTag::Gelu, "mid", SubLayer::Other, {t}, {u});
    g.addOp(OpTag::Add, "late", SubLayer::Other, {u, t}, {out});
    // t is read by op 2, outside [0, 1] -> escapes; u is not.
    EXPECT_FALSE(onlyReadWithin(g, t, 0, 1));
    EXPECT_TRUE(onlyReadWithin(g, u, 1, 2));
}

TEST(ArenaPlanner, DisjointIntervalsShareStorage)
{
    // v0 dies exactly when v1 is defined: best-fit hands v1 the same
    // block, so the peak is one tensor, not two.
    const std::vector<Interval> live = {{0, 1}, {1, 2}};
    const std::vector<std::int64_t> sizes = {256, 256};
    const ArenaPlan plan = planArena(live, sizes);
    EXPECT_EQ(plan.offsets[0], plan.offsets[1]);
    EXPECT_EQ(plan.peakBytes, 256);
    EXPECT_EQ(plan.sumBytes, 512);
}

TEST(ArenaPlanner, OverlappingIntervalsDoNotAlias)
{
    const std::vector<Interval> live = {{0, 3}, {1, 3}, {2, 3}};
    const std::vector<std::int64_t> sizes = {100, 100, 100};
    const ArenaPlan plan = planArena(live, sizes);
    for (int i = 0; i < 3; ++i) {
        ASSERT_GE(plan.offsets[i], 0);
        EXPECT_EQ(plan.offsets[i] % kArenaAlign, 0);
        for (int j = i + 1; j < 3; ++j) {
            const bool disjoint =
                plan.offsets[i] + sizes[i] <= plan.offsets[j] ||
                plan.offsets[j] + sizes[j] <= plan.offsets[i];
            EXPECT_TRUE(disjoint) << "values " << i << " and " << j;
        }
    }
    EXPECT_GE(plan.peakBytes, 3 * 100);
}

TEST(ArenaPlanner, FreedBlocksMergeForLargerLaterTensors)
{
    // Two small tensors die; a larger one defined next must fit in
    // their merged block rather than growing the arena top.
    const std::vector<Interval> live = {{0, 2}, {0, 2}, {2, 3}};
    const std::vector<std::int64_t> sizes = {64, 64, 128};
    const ArenaPlan plan = planArena(live, sizes);
    EXPECT_EQ(plan.peakBytes, 128);
}

TEST(GraphFusion, EncoderGraphRewritesFiveChains)
{
    GraphDef g = buildEncoderEvalGraph(32, 4, 64, 2, 16,
                                       /*per_seq_mask=*/false,
                                       /*fused=*/false);
    EXPECT_EQ(g.ops.size(), 26u);
    const int rewritten = fuseEncoderPatterns(g);
    EXPECT_EQ(rewritten, 5); // QKV, attention, bias+GeLU, res+LN x2
    ASSERT_EQ(g.ops.size(), 11u);

    const OpTag expected[] = {
        OpTag::FusedQkv,       OpTag::FusedAttention,
        OpTag::MergeHeads,     OpTag::Gemm, // wo
        OpTag::BiasAdd,        OpTag::FusedResidualLayerNorm,
        OpTag::Gemm,           OpTag::FusedBiasGelu, // fc1
        OpTag::Gemm,           OpTag::BiasAdd,       // fc2
        OpTag::FusedResidualLayerNorm,
    };
    for (std::size_t i = 0; i < g.ops.size(); ++i)
        EXPECT_EQ(static_cast<int>(g.ops[i].tag),
                  static_cast<int>(expected[i]))
            << "op " << i << " (" << g.ops[i].name << ")";
}

TEST(GraphFusion, BuilderWithFusedFlagMatchesManualPass)
{
    GraphDef manual = buildEncoderEvalGraph(32, 4, 64, 2, 16, true,
                                            /*fused=*/false);
    fuseEncoderPatterns(manual);
    const GraphDef built = buildEncoderEvalGraph(32, 4, 64, 2, 16, true,
                                                 /*fused=*/true);
    ASSERT_EQ(built.ops.size(), manual.ops.size());
    for (std::size_t i = 0; i < built.ops.size(); ++i) {
        EXPECT_EQ(built.ops[i].name, manual.ops[i].name);
        EXPECT_EQ(built.ops[i].reads, manual.ops[i].reads);
        EXPECT_EQ(built.ops[i].writes, manual.ops[i].writes);
    }
}

/** Plan the arena for a graph; returns the plan plus per-value sizes. */
ArenaPlan
planFor(const GraphDef &g, std::vector<std::int64_t> *sizes_out = nullptr)
{
    std::vector<std::int64_t> sizes;
    for (const ValueDesc &v : g.values)
        sizes.push_back(v.shape.numel() *
                        static_cast<std::int64_t>(sizeof(float)));
    if (sizes_out != nullptr)
        *sizes_out = sizes;
    return planArena(computeLiveness(g), sizes);
}

TEST(GraphFusion, FusedPlanNeverAliasesConcurrentlyLiveValues)
{
    const GraphDef g = buildEncoderEvalGraph(32, 4, 64, 2, 16, true, true);
    std::vector<std::int64_t> sizes;
    const ArenaPlan plan = planFor(g, &sizes);
    const std::vector<Interval> live = computeLiveness(g);
    for (std::size_t i = 0; i < g.values.size(); ++i) {
        if (plan.offsets[i] < 0)
            continue;
        EXPECT_EQ(plan.offsets[i] % kArenaAlign, 0);
        for (std::size_t j = i + 1; j < g.values.size(); ++j) {
            if (plan.offsets[j] < 0)
                continue;
            const bool overlap_live = live[i].start < live[j].end &&
                                      live[j].start < live[i].end;
            if (!overlap_live)
                continue;
            const bool disjoint =
                plan.offsets[i] + sizes[i] <= plan.offsets[j] ||
                plan.offsets[j] + sizes[j] <= plan.offsets[i];
            EXPECT_TRUE(disjoint)
                << g.values[i].name << " aliases " << g.values[j].name;
        }
    }
}

TEST(GraphArena, PeakStrictlyBelowSumForBertBaseLayer)
{
    // BERT-Base encoder layer at serving shape: the acceptance bar is
    // peak strictly below the no-reuse sum-of-live-tensors footprint.
    for (bool fused : {false, true}) {
        const GraphDef g = buildEncoderEvalGraph(768, 12, 3072, 1, 128,
                                                 true, fused);
        const ArenaPlan plan = planFor(g);
        EXPECT_GT(plan.peakBytes, 0) << "fused=" << fused;
        EXPECT_LT(plan.peakBytes, plan.sumBytes) << "fused=" << fused;
    }
}

TEST(GraphExec, MatchesEagerFusedBitwise)
{
    FusionGuard guard;
    setFusionMode(FusionMode::On);
    NnRuntime rt;
    EncoderLayer layer("enc", 32, 4, 64, &rt);
    Rng init(61);
    layer.initialize(init);
    layer.setTraining(false);

    Rng data(62);
    Tensor x(Shape({2 * 16, 32}));
    x.fillNormal(data);
    Tensor mask2(Shape({16, 16}));
    Tensor mask3(Shape({2, 16, 16}));
    for (std::int64_t i = 0; i < mask3.numel(); ++i)
        mask3.at(i) = (i % 7 == 0) ? -1e9f : 0.0f;

    for (const Tensor *mask : {&mask2, &mask3}) {
        // Eager fused (no executor installed)...
        installEncoderGraphExec(nullptr);
        Tensor eager = layer.forward(x, *mask, 2, 16);
        // ...versus the graph interpreter running the same fused
        // kernels in the same order out of arena-backed views.
        EncoderExec *exec = ensureEncoderGraphExecInstalled();
        exec->clearPlanCache();
        Tensor graphed = layer.forward(x, *mask, 2, 16);
        ASSERT_EQ(graphed.shape(), eager.shape());
        EXPECT_EQ(std::memcmp(graphed.data(), eager.data(),
                              static_cast<std::size_t>(eager.numel()) *
                                  sizeof(float)),
                  0)
            << (mask->shape().rank() == 3 ? "per-seq" : "broadcast")
            << " mask";
        EXPECT_GT(exec->arenaPeakBytes(), 0);
        EXPECT_LT(exec->arenaPeakBytes(), exec->plannedSumBytes());
    }
}

} // namespace
} // namespace bertprof
