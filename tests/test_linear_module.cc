/** Tests for the Linear module: math and full gradient checks. */

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using testing::expectGradientsMatch;

struct LinearFixture : public ::testing::Test {
    NnRuntime rt;
    Linear layer{"fc", 4, 3, &rt};
    Tensor x{Shape({5, 4})};

    void
    SetUp() override
    {
        Rng rng(1);
        layer.initialize(rng, 0.5f);
        layer.bias().value.fillNormal(rng, 0.0f, 0.5f);
        x.fillNormal(rng);
    }

    double
    weightedLoss()
    {
        Tensor y = layer.forward(x);
        double total = 0.0;
        for (std::int64_t i = 0; i < y.numel(); ++i)
            total += static_cast<double>(y.at(i)) * (0.2 * (i % 5) - 0.4);
        return total;
    }

    Tensor
    lossGradient(const Tensor &y)
    {
        Tensor dout(y.shape());
        for (std::int64_t i = 0; i < dout.numel(); ++i)
            dout.at(i) = static_cast<float>(0.2 * (i % 5) - 0.4);
        return dout;
    }
};

TEST_F(LinearFixture, ForwardMatchesManualComputation)
{
    Tensor y = layer.forward(x);
    ASSERT_EQ(y.shape(), Shape({5, 3}));
    // y[r, o] = sum_i x[r, i] * W[o, i] + b[o]
    for (std::int64_t r = 0; r < 5; ++r) {
        for (std::int64_t o = 0; o < 3; ++o) {
            double acc = layer.bias().value.at(o);
            for (std::int64_t i = 0; i < 4; ++i)
                acc += static_cast<double>(x.at(r, i)) *
                       layer.weight().value.at(o, i);
            EXPECT_NEAR(y.at(r, o), acc, 1e-5);
        }
    }
}

TEST_F(LinearFixture, InputGradientMatchesFiniteDifference)
{
    Tensor y = layer.forward(x);
    layer.zeroGrad();
    Tensor dx = layer.backward(lossGradient(y));
    auto loss = [&]() { return weightedLoss(); };
    expectGradientsMatch(x, loss, dx, 1e-3, 1e-2);
}

TEST_F(LinearFixture, WeightGradientMatchesFiniteDifference)
{
    Tensor y = layer.forward(x);
    layer.zeroGrad();
    layer.backward(lossGradient(y));
    auto loss = [&]() { return weightedLoss(); };
    expectGradientsMatch(layer.weight().value, loss, layer.weight().grad,
                         1e-3, 1e-2);
    expectGradientsMatch(layer.bias().value, loss, layer.bias().grad, 1e-3,
                         1e-2);
}

TEST_F(LinearFixture, GradientsAccumulateAcrossBackwardCalls)
{
    Tensor y = layer.forward(x);
    layer.zeroGrad();
    layer.backward(lossGradient(y));
    const Tensor once = layer.weight().grad.clone();
    layer.forward(x);
    layer.backward(lossGradient(y));
    for (std::int64_t i = 0; i < once.numel(); ++i)
        EXPECT_NEAR(layer.weight().grad.at(i), 2.0f * once.at(i), 1e-4f);
}

TEST_F(LinearFixture, ParametersExposedWithNames)
{
    auto params = layer.parameters();
    ASSERT_EQ(params.size(), 2u);
    EXPECT_EQ(params[0]->name, "fc.w");
    EXPECT_EQ(params[1]->name, "fc.b");
    EXPECT_FALSE(params[0]->noDecay);
    EXPECT_TRUE(params[1]->noDecay);
    EXPECT_EQ(layer.parameterCount(), 4 * 3 + 3);
}

TEST_F(LinearFixture, ProfilerRecordsKernels)
{
    Profiler profiler;
    rt.profiler = &profiler;
    layer.forward(x);
    // GEMM + bias.
    EXPECT_EQ(profiler.records().size(), 2u);
    EXPECT_EQ(profiler.records()[0].kind, OpKind::Gemm);
    rt.profiler = nullptr;
}

} // namespace
} // namespace bertprof
