/**
 * Tests for the GEMM kernels: parameterized over transpose modes and
 * sizes against a naive reference, batched consistency, alpha/beta
 * semantics, and stats accounting.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "ops/gemm.h"
#include "runtime/config.h"
#include "util/rng.h"

namespace bertprof {
namespace {

/** Naive reference: C = alpha * op(A) op(B) + beta * C. */
void
referenceGemm(const Tensor &a, const Tensor &b, Tensor &c, bool trans_a,
              bool trans_b, float alpha, float beta)
{
    const std::int64_t m = trans_a ? a.shape().dim(1) : a.shape().dim(0);
    const std::int64_t k = trans_a ? a.shape().dim(0) : a.shape().dim(1);
    const std::int64_t n = trans_b ? b.shape().dim(0) : b.shape().dim(1);
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t p = 0; p < k; ++p) {
                const float av = trans_a ? a.at(p, i) : a.at(i, p);
                const float bv = trans_b ? b.at(j, p) : b.at(p, j);
                acc += static_cast<double>(av) * bv;
            }
            c.at(i, j) = alpha * static_cast<float>(acc) +
                         beta * c.at(i, j);
        }
    }
}

using GemmCase = std::tuple<int, int, int, bool, bool>;

class GemmParamTest : public ::testing::TestWithParam<GemmCase>
{
};

TEST_P(GemmParamTest, MatchesNaiveReference)
{
    const auto [m, n, k, trans_a, trans_b] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + k));
    Tensor a(trans_a ? Shape({k, m}) : Shape({m, k}));
    Tensor b(trans_b ? Shape({n, k}) : Shape({k, n}));
    a.fillNormal(rng);
    b.fillNormal(rng);

    Tensor c(Shape({m, n})), ref(Shape({m, n}));
    gemm(a, b, c, trans_a, trans_b);
    referenceGemm(a, b, ref, trans_a, trans_b, 1.0f, 0.0f);
    EXPECT_LT(maxAbsDiff(c, ref), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposeAndSizeCombos, GemmParamTest,
    ::testing::Values(
        GemmCase{1, 1, 1, false, false}, GemmCase{3, 5, 7, false, false},
        GemmCase{3, 5, 7, true, false}, GemmCase{3, 5, 7, false, true},
        GemmCase{3, 5, 7, true, true}, GemmCase{16, 16, 16, false, false},
        GemmCase{33, 65, 17, false, true},
        GemmCase{65, 33, 129, true, false},
        GemmCase{128, 1, 64, false, false},
        GemmCase{1, 128, 64, true, true}));

TEST(Gemm, AlphaScalesProduct)
{
    Tensor a(Shape({2, 2}), {1, 2, 3, 4});
    Tensor b(Shape({2, 2}), {1, 0, 0, 1});
    Tensor c(Shape({2, 2}));
    gemm(a, b, c, false, false, 2.0f);
    EXPECT_FLOAT_EQ(c.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 8.0f);
}

TEST(Gemm, BetaAccumulatesIntoC)
{
    Tensor a(Shape({2, 2}), {1, 0, 0, 1});
    Tensor b(Shape({2, 2}), {5, 6, 7, 8});
    Tensor c(Shape({2, 2}), {1, 1, 1, 1});
    gemm(a, b, c, false, false, 1.0f, 1.0f);
    EXPECT_FLOAT_EQ(c.at(0, 0), 6.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 7.0f);
}

TEST(Gemm, StatsCountFlopsAndBytes)
{
    Tensor a(Shape({4, 8})), b(Shape({8, 2})), c(Shape({4, 2}));
    const KernelStats stats = gemm(a, b, c);
    EXPECT_EQ(stats.flops, 2 * 4 * 2 * 8);
    EXPECT_EQ(stats.bytesRead, (4 * 8 + 8 * 2) * 4);
    EXPECT_EQ(stats.bytesWritten, 4 * 2 * 4);
}

TEST(BatchedGemm, MatchesPerBatchGemm)
{
    Rng rng(5);
    const std::int64_t batch = 6, m = 9, n = 7, k = 11;
    Tensor a(Shape({batch, m, k})), b(Shape({batch, k, n}));
    a.fillNormal(rng);
    b.fillNormal(rng);
    Tensor c(Shape({batch, m, n}));
    batchedGemm(a, b, c);

    for (std::int64_t g = 0; g < batch; ++g) {
        Tensor ag(Shape({m, k})), bg(Shape({k, n})), cg(Shape({m, n}));
        for (std::int64_t i = 0; i < m * k; ++i)
            ag.at(i) = a.at(g * m * k + i);
        for (std::int64_t i = 0; i < k * n; ++i)
            bg.at(i) = b.at(g * k * n + i);
        gemm(ag, bg, cg);
        for (std::int64_t i = 0; i < m * n; ++i)
            EXPECT_NEAR(c.at(g * m * n + i), cg.at(i), 1e-4f);
    }
}

TEST(BatchedGemm, TransposedOperands)
{
    Rng rng(9);
    const std::int64_t batch = 3, m = 4, n = 5, k = 6;
    Tensor a(Shape({batch, k, m})), b(Shape({batch, n, k}));
    a.fillNormal(rng);
    b.fillNormal(rng);
    Tensor c(Shape({batch, m, n}));
    batchedGemm(a, b, c, true, true);

    // Check one element against a hand computation.
    double acc = 0.0;
    const std::int64_t g = 2, i = 1, j = 3;
    for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a.at(g * k * m + p * m + i)) *
               b.at(g * n * k + j * k + p);
    EXPECT_NEAR(c.at(g * m * n + i * n + j), acc, 1e-4);
}

TEST(BatchedGemm, StatsScaleWithBatch)
{
    Tensor a(Shape({5, 2, 3})), b(Shape({5, 3, 4})), c(Shape({5, 2, 4}));
    const KernelStats stats = batchedGemm(a, b, c);
    EXPECT_EQ(stats.flops, 2 * 2 * 4 * 3 * 5);
}

TEST(GemmStats, ParallelExecutionReportsSerialCounts)
{
    // KernelStats model ideal FLOP/byte counts of the *operation*;
    // splitting it across threads must not change what is reported.
    Tensor a(Shape({64, 48})), b(Shape({48, 32})), c(Shape({64, 32}));
    Tensor ba(Shape({6, 16, 8})), bb(Shape({6, 8, 12})),
        bc(Shape({6, 16, 12}));

    setNumThreads(1);
    const KernelStats serial = gemm(a, b, c);
    const KernelStats serial_batched = batchedGemm(ba, bb, bc);

    setNumThreads(8);
    const KernelStats parallel = gemm(a, b, c);
    const KernelStats parallel_batched = batchedGemm(ba, bb, bc);
    setNumThreads(0);

    EXPECT_EQ(parallel.flops, serial.flops);
    EXPECT_EQ(parallel.bytesRead, serial.bytesRead);
    EXPECT_EQ(parallel.bytesWritten, serial.bytesWritten);
    EXPECT_EQ(parallel_batched.flops, serial_batched.flops);
    EXPECT_EQ(parallel_batched.bytesRead, serial_batched.bytesRead);
    EXPECT_EQ(parallel_batched.bytesWritten, serial_batched.bytesWritten);
    // And both match the analytical formula the perf model uses.
    EXPECT_EQ(parallel.flops, 2 * 64 * 32 * 48);
    EXPECT_EQ(parallel_batched.flops, 2 * 16 * 12 * 8 * 6);
}

TEST(GemmStats, Fp16HalvesBytes)
{
    const KernelStats s32 = gemmStats(8, 8, 8, 1, 4);
    const KernelStats s16 = gemmStats(8, 8, 8, 1, 2);
    EXPECT_EQ(s32.flops, s16.flops);
    EXPECT_EQ(s32.bytesTotal(), 2 * s16.bytesTotal());
}

} // namespace
} // namespace bertprof
