/** Tests for dynamic loss scaling and scaled training steps. */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/bert_pretrainer.h"
#include "optim/grad_scaler.h"
#include "optim/lamb.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

Parameter
paramWithGrad(float grad_value)
{
    Parameter param("w", Shape({4}));
    param.grad.fill(grad_value);
    return param;
}

TEST(GradScaler, UnscaleDividesByScale)
{
    GradScaler scaler(8.0f);
    Parameter p = paramWithGrad(16.0f);
    std::vector<Parameter *> params{&p};
    EXPECT_TRUE(scaler.unscale(params));
    EXPECT_FLOAT_EQ(p.grad.at(0), 2.0f);
}

TEST(GradScaler, OverflowZerosGradsAndBacksOff)
{
    GradScaler scaler(1024.0f);
    Parameter p = paramWithGrad(1.0f);
    p.grad.at(2) = std::numeric_limits<float>::infinity();
    std::vector<Parameter *> params{&p};
    EXPECT_FALSE(scaler.unscale(params));
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(p.grad.at(i), 0.0f);
    scaler.update(false);
    EXPECT_FLOAT_EQ(scaler.scale(), 512.0f);
    EXPECT_EQ(scaler.skippedSteps(), 1);
}

TEST(GradScaler, NanAlsoDetected)
{
    GradScaler scaler;
    Parameter p = paramWithGrad(std::nanf(""));
    std::vector<Parameter *> params{&p};
    EXPECT_FALSE(scaler.unscale(params));
}

TEST(GradScaler, GrowsAfterStableInterval)
{
    GradScaler scaler(2.0f, 2.0f, 0.5f, /*growth_interval=*/3);
    for (int i = 0; i < 3; ++i)
        scaler.update(true);
    EXPECT_FLOAT_EQ(scaler.scale(), 4.0f);
    // Streak resets after growth.
    scaler.update(true);
    EXPECT_FLOAT_EQ(scaler.scale(), 4.0f);
}

TEST(GradScaler, BackoffClampsAtOne)
{
    GradScaler scaler(1.5f);
    scaler.update(false);
    EXPECT_FLOAT_EQ(scaler.scale(), 1.0f);
    scaler.update(false);
    EXPECT_FLOAT_EQ(scaler.scale(), 1.0f);
}

TEST(GradScaler, ScaledStepEqualsUnscaledStep)
{
    // forwardBackward(scale) followed by unscale must leave exactly
    // the gradients an unscaled pass produces.
    const BertConfig config = testing::tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;

    BertPretrainer plain(config, &rt);
    BertPretrainer scaled(config, &rt);
    Rng init_a(1), init_b(1);
    plain.initialize(init_a);
    scaled.initialize(init_b);

    SyntheticDataset data_a(config, 9), data_b(config, 9);
    const PretrainBatch batch_a = data_a.nextBatch();
    const PretrainBatch batch_b = data_b.nextBatch();

    plain.zeroGrad();
    plain.forwardBackward(batch_a);

    scaled.zeroGrad();
    scaled.forwardBackward(batch_b, /*loss_scale=*/1024.0f);
    GradScaler scaler(1024.0f);
    auto scaled_params = scaled.parameters();
    ASSERT_TRUE(scaler.unscale(scaled_params));

    auto plain_params = plain.parameters();
    ASSERT_EQ(plain_params.size(), scaled_params.size());
    for (std::size_t i = 0; i < plain_params.size(); ++i) {
        const float diff = maxAbsDiff(plain_params[i]->grad,
                                      scaled_params[i]->grad);
        const float magnitude = plain_params[i]->grad.absMax();
        EXPECT_LE(diff, 1e-5f + 1e-3f * magnitude)
            << plain_params[i]->name;
    }
}

TEST(GradScaler, TrainingLoopSkipsOverflowSteps)
{
    // Inject an overflow every few steps; training must survive and
    // still reduce the loss.
    const BertConfig config = testing::tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;
    BertPretrainer trainer(config, &rt);
    Rng init(2);
    trainer.initialize(init);
    SyntheticDataset dataset(config, 10);
    OptimizerConfig opt_config;
    opt_config.learningRate = 5e-3f;
    opt_config.weightDecay = 0.0f;
    Lamb lamb(opt_config);
    GradScaler scaler(256.0f, 2.0f, 0.5f, 100);
    auto params = trainer.parameters();

    double first = 0.0, last = 0.0;
    const int iters = 32;
    for (int it = 0; it < iters; ++it) {
        trainer.zeroGrad();
        const auto result =
            trainer.forwardBackward(dataset.nextBatch(), scaler.scale());
        if (it % 10 == 3) // simulated FP16 overflow
            params[0]->grad.at(0) =
                std::numeric_limits<float>::infinity();
        const bool finite = scaler.unscale(params);
        scaler.update(finite);
        if (finite)
            lamb.step(params);
        if (it < 8)
            first += result.totalLoss();
        if (it >= iters - 8)
            last += result.totalLoss();
    }
    EXPECT_GT(scaler.skippedSteps(), 0);
    EXPECT_LT(last, first);
}

} // namespace
} // namespace bertprof
