/**
 * @file
 * Shared test utilities: central finite-difference gradient checking
 * against the substrate's analytic backward passes, and tiny model
 * configurations.
 */

#ifndef BERTPROF_TESTS_TEST_HELPERS_H
#define BERTPROF_TESTS_TEST_HELPERS_H

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "trace/bert_config.h"

namespace bertprof {
namespace testing {

/**
 * Check an analytic gradient against central finite differences.
 *
 * @param params The tensor being differentiated (perturbed in place).
 * @param loss A scalar function of the current tensor contents.
 * @param analytic The gradient to verify, same shape as params.
 * @param eps Perturbation step.
 * @param tol Max allowed |analytic - numeric| (absolute+relative mix).
 */
inline void
expectGradientsMatch(Tensor &params,
                     const std::function<double()> &loss,
                     const Tensor &analytic, double eps = 1e-3,
                     double tol = 2e-2)
{
    ASSERT_EQ(params.shape(), analytic.shape());
    for (std::int64_t i = 0; i < params.numel(); ++i) {
        const float saved = params.at(i);
        params.at(i) = static_cast<float>(saved + eps);
        const double up = loss();
        params.at(i) = static_cast<float>(saved - eps);
        const double down = loss();
        params.at(i) = saved;
        const double numeric = (up - down) / (2.0 * eps);
        const double a = analytic.at(i);
        const double scale = std::max({1.0, std::fabs(a),
                                       std::fabs(numeric)});
        EXPECT_NEAR(a, numeric, tol * scale)
            << "gradient mismatch at flat index " << i;
    }
}

/** A deliberately tiny BERT config for CPU-speed tests. */
inline BertConfig
tinyBertConfig()
{
    BertConfig config;
    config.name = "bert-test-tiny";
    config.numLayers = 2;
    config.dModel = 32;
    config.numHeads = 4;
    config.dFf = 64;
    config.vocabSize = 97;
    config.maxPositions = 32;
    config.typeVocab = 2;
    config.batch = 2;
    config.seqLen = 16;
    config.maxPredictions = 3;
    return config;
}

} // namespace testing
} // namespace bertprof

#endif // BERTPROF_TESTS_TEST_HELPERS_H
