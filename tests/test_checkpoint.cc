/**
 * @file
 * Checkpoint layer tests: CRC vectors, binary round trips, the
 * crash-safe container's rejection taxonomy (truncated / bad magic /
 * bad version / bad checksum), the CheckpointManager's pruning and
 * last-good fallback, and bitwise state round trips for all four
 * optimizers, the grad scaler, the RNG, and whole module trees.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/bertprof.h"
#include "io/crc32.h"

namespace bertprof {
namespace {

namespace fs = std::filesystem;

/** A fresh (empty) per-test scratch directory under TempDir. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "bp_ckpt_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

bool
bitsEqual(const Tensor &a, const Tensor &b)
{
    if (a.numel() != b.numel())
        return false;
    return std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

/** Overwrite one byte of a file at `offset`. */
void
corruptByte(const std::string &path, std::int64_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(offset);
    char c = 0;
    f.read(&c, 1);
    f.seekp(offset);
    c = static_cast<char>(c ^ 0x5a);
    f.write(&c, 1);
}

// --------------------------------------------------------------------
// CRC-32
// --------------------------------------------------------------------

TEST(Crc32, MatchesTheCheckVector)
{
    // The canonical IEEE 802.3 check value for "123456789".
    EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string("")), 0u);
}

TEST(Crc32, IncrementalEqualsWholeBuffer)
{
    const std::string data = "the quick brown fox jumps over";
    const std::uint32_t whole = crc32(data);
    std::uint32_t inc = 0;
    inc = crc32(data.data(), 10, inc);
    inc = crc32(data.data() + 10, data.size() - 10, inc);
    EXPECT_EQ(inc, whole);
}

// --------------------------------------------------------------------
// BinaryWriter / BinaryReader
// --------------------------------------------------------------------

TEST(BinaryIo, RoundTripsEveryScalarType)
{
    BinaryWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.i64(-42);
    w.f32(-0.0f);
    w.f64(1.0 / 3.0);
    w.str("hello");

    BinaryReader r(w.buffer());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i64(), -42);
    const float f = r.f32();
    EXPECT_EQ(std::memcmp(&f, "\x00\x00\x00\x80", 4), 0); // -0.0 bits
    EXPECT_EQ(r.f64(), 1.0 / 3.0);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_FALSE(r.failed());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryIo, UnderrunLatchesFailure)
{
    BinaryWriter w;
    w.u32(7);
    BinaryReader r(w.buffer());
    (void)r.u64(); // asks for more than is there
    EXPECT_TRUE(r.failed());
    EXPECT_EQ(r.u32(), 0u); // every later read is zero
    EXPECT_TRUE(r.failed());
}

// --------------------------------------------------------------------
// Crash-safe container
// --------------------------------------------------------------------

TEST(Container, WriteReadRoundTrip)
{
    const std::string dir = freshDir("container_rt");
    const std::string path = dir + "/file.bpck";
    std::string payload = "arbitrary bytes: ";
    payload.push_back('\0'); // embedded NULs must survive
    payload.push_back('\x01');
    payload.push_back('\xff');

    ASSERT_TRUE(writeFileAtomic(path, payload).ok());
    std::string got;
    ASSERT_TRUE(readFileValidated(path, got).ok());
    EXPECT_EQ(got, payload);
    // No temp file left behind.
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(Container, MissingFileIsNotFound)
{
    const std::string dir = freshDir("container_missing");
    std::string got;
    const IoStatus s = readFileValidated(dir + "/nope.bpck", got);
    EXPECT_EQ(s.error, IoError::NotFound);
}

TEST(Container, TruncatedFileIsRejected)
{
    const std::string dir = freshDir("container_trunc");
    const std::string path = dir + "/file.bpck";
    ASSERT_TRUE(writeFileAtomic(path, std::string(256, 'x')).ok());
    fs::resize_file(path, fs::file_size(path) / 2);
    std::string got;
    const IoStatus s = readFileValidated(path, got);
    EXPECT_EQ(s.error, IoError::Truncated) << s.toString();
    EXPECT_TRUE(got.empty());
}

TEST(Container, HeaderOnlyTruncationIsRejected)
{
    const std::string dir = freshDir("container_header");
    const std::string path = dir + "/file.bpck";
    std::ofstream(path, std::ios::binary) << "BPK";
    std::string got;
    EXPECT_EQ(readFileValidated(path, got).error, IoError::Truncated);
}

TEST(Container, ForeignFileIsBadMagic)
{
    const std::string dir = freshDir("container_magic");
    const std::string path = dir + "/file.bpck";
    std::ofstream(path, std::ios::binary)
        << std::string(64, '\x7f'); // wrong magic, plausible length
    std::string got;
    EXPECT_EQ(readFileValidated(path, got).error, IoError::BadMagic);
}

TEST(Container, VersionMismatchIsRejected)
{
    const std::string dir = freshDir("container_version");
    const std::string path = dir + "/file.bpck";
    ASSERT_TRUE(
        writeFileAtomic(path, "payload", kCheckpointFormatVersion + 9)
            .ok());
    std::string got;
    const IoStatus s = readFileValidated(path, got);
    EXPECT_EQ(s.error, IoError::BadVersion);
    // Reading at the writer's version succeeds.
    EXPECT_TRUE(
        readFileValidated(path, got, kCheckpointFormatVersion + 9).ok());
}

TEST(Container, PayloadCorruptionIsBadChecksum)
{
    const std::string dir = freshDir("container_crc");
    const std::string path = dir + "/file.bpck";
    ASSERT_TRUE(writeFileAtomic(path, std::string(128, 'y')).ok());
    corruptByte(path, 40); // inside the payload, past the 20B header
    std::string got;
    EXPECT_EQ(readFileValidated(path, got).error, IoError::BadChecksum);
}

TEST(Container, RewriteIsAtomicReplacement)
{
    const std::string dir = freshDir("container_replace");
    const std::string path = dir + "/file.bpck";
    ASSERT_TRUE(writeFileAtomic(path, "old").ok());
    ASSERT_TRUE(writeFileAtomic(path, "new").ok());
    std::string got;
    ASSERT_TRUE(readFileValidated(path, got).ok());
    EXPECT_EQ(got, "new");
}

// --------------------------------------------------------------------
// withRetries
// --------------------------------------------------------------------

TEST(WithRetries, RetriesOnlyTransientFailures)
{
    int calls = 0;
    const IoStatus s = withRetries(5, 0.01, [&]() {
        ++calls;
        if (calls < 3)
            return IoStatus::failure(IoError::Transient, "flaky");
        return IoStatus::success();
    });
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(calls, 3);

    calls = 0;
    const IoStatus p = withRetries(5, 0.01, [&]() {
        ++calls;
        return IoStatus::failure(IoError::BadChecksum, "permanent");
    });
    EXPECT_EQ(p.error, IoError::BadChecksum);
    EXPECT_EQ(calls, 1); // permanent errors are not retried
}

TEST(WithRetries, GivesUpAfterTheAttemptBudget)
{
    int calls = 0;
    const IoStatus s = withRetries(3, 0.01, [&]() {
        ++calls;
        return IoStatus::failure(IoError::Transient, "always");
    });
    EXPECT_EQ(s.error, IoError::Transient);
    EXPECT_EQ(calls, 3);
}

namespace {
std::int64_t g_retrySinkTotal = 0;
void countRetrySink(std::int64_t retries) { g_retrySinkTotal += retries; }
} // namespace

TEST(WithRetries, PolicyFormReportsEachRetryToTheInstalledSink)
{
    g_retrySinkTotal = 0;
    installIoRetrySink(&countRetrySink);
    RetryPolicy policy;
    policy.attempts = 4;
    policy.backoffMs = 0.01;

    int calls = 0;
    const IoStatus s = withRetries(policy, [&]() {
        ++calls;
        if (calls < 3)
            return IoStatus::failure(IoError::Transient, "flaky");
        return IoStatus::success();
    });
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(g_retrySinkTotal, 2); // one report per retry, not per try

    // Permanent failures return without retrying or reporting.
    g_retrySinkTotal = 0;
    const IoStatus p = withRetries(policy, [&]() {
        return IoStatus::failure(IoError::BadChecksum, "permanent");
    });
    EXPECT_EQ(p.error, IoError::BadChecksum);
    EXPECT_EQ(g_retrySinkTotal, 0);
    installIoRetrySink(nullptr);
}

TEST(WithRetries, PolicyBackoffIsDeterministicAndWallClockFree)
{
    // Zero base backoff: the jitter stream is still consulted, but
    // every delay collapses to zero — the run's outcome (attempt
    // count, final status) must be identical on every execution and
    // independent of elapsed wall time.
    RetryPolicy policy;
    policy.attempts = 5;
    policy.backoffMs = 0.0;
    policy.jitter = 1.0;
    policy.seed = 42;
    for (int run = 0; run < 3; ++run) {
        int calls = 0;
        const IoStatus s = withRetries(policy, [&]() {
            ++calls;
            return IoStatus::failure(IoError::Transient, "always");
        });
        EXPECT_EQ(s.error, IoError::Transient);
        EXPECT_EQ(calls, 5);
    }
}

TEST(WithRetries, CheckpointManagerOptionsExposeTheRetryPolicy)
{
    CheckpointManagerOptions opts;
    opts.ioRetries = 7;
    opts.ioBackoffMs = 2.5;
    opts.ioMaxBackoffMs = 40.0;
    opts.ioRetrySeed = 99;
    const RetryPolicy policy = opts.retryPolicy();
    EXPECT_EQ(policy.attempts, 7);
    EXPECT_DOUBLE_EQ(policy.backoffMs, 2.5);
    EXPECT_DOUBLE_EQ(policy.maxBackoffMs, 40.0);
    EXPECT_EQ(policy.seed, 99u);
}

// --------------------------------------------------------------------
// StateWriter / StateReader
// --------------------------------------------------------------------

TEST(State, NamedFieldsRoundTrip)
{
    Tensor t(Shape({2, 3}));
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.data()[i] = 0.5f * static_cast<float>(i) - 1.0f;

    StateWriter w;
    w.i64("alpha", -7);
    w.f32("beta", 2.5f);
    w.f64("gamma", 1e-300);
    w.str("delta", "text");
    w.tensor("epsilon", t);

    StateReader r(w.payload());
    std::int64_t a = 0;
    float b = 0.0f;
    double g = 0.0;
    std::string d;
    Tensor out(Shape({2, 3}));
    EXPECT_TRUE(r.i64("alpha", a));
    EXPECT_TRUE(r.f32("beta", b));
    EXPECT_TRUE(r.f64("gamma", g));
    EXPECT_TRUE(r.str("delta", d));
    EXPECT_TRUE(r.tensor("epsilon", out));
    EXPECT_TRUE(r.status().ok());
    EXPECT_EQ(a, -7);
    EXPECT_EQ(b, 2.5f);
    EXPECT_EQ(g, 1e-300);
    EXPECT_EQ(d, "text");
    EXPECT_TRUE(bitsEqual(t, out));
}

TEST(State, WrongNameOrTypeIsDiagnosedAndLatched)
{
    StateWriter w;
    w.i64("expected", 1);
    w.i64("later", 2);

    StateReader r(w.payload());
    std::int64_t v = 0;
    EXPECT_FALSE(r.i64("unexpected", v));
    EXPECT_EQ(r.status().error, IoError::BadFormat);
    EXPECT_NE(r.status().message.find("expected field 'unexpected'"),
              std::string::npos)
        << r.status().message;
    // The error latches: even the field that *is* next now fails.
    EXPECT_FALSE(r.i64("later", v));

    StateReader r2(w.payload());
    float f = 0.0f;
    EXPECT_FALSE(r2.f32("expected", f)); // right name, wrong type
    EXPECT_EQ(r2.status().error, IoError::BadFormat);
}

TEST(State, TensorShapeMismatchIsBadFormat)
{
    Tensor t(Shape({4}));
    t.fill(1.0f);
    StateWriter w;
    w.tensor("weights", t);

    StateReader r(w.payload());
    Tensor wrong(Shape({2, 2}));
    EXPECT_FALSE(r.tensor("weights", wrong));
    EXPECT_EQ(r.status().error, IoError::BadFormat);
}

// --------------------------------------------------------------------
// CheckpointManager
// --------------------------------------------------------------------

TEST(Manager, SavesListsAndPrunesToKeepLast)
{
    CheckpointManagerOptions opt;
    opt.dir = freshDir("mgr_prune");
    opt.keepLast = 2;
    CheckpointManager mgr(opt);

    for (std::int64_t step : {5, 10, 15, 20})
        ASSERT_TRUE(mgr.save(step, "payload-" + std::to_string(step)).ok());

    const std::vector<std::int64_t> steps = mgr.listSteps();
    ASSERT_EQ(steps.size(), 2u);
    EXPECT_EQ(steps[0], 15);
    EXPECT_EQ(steps[1], 20);
    EXPECT_FALSE(fs::exists(mgr.pathForStep(5)));
    EXPECT_FALSE(fs::exists(mgr.pathForStep(10)));
}

TEST(Manager, LoadLatestReturnsNewest)
{
    CheckpointManagerOptions opt;
    opt.dir = freshDir("mgr_latest");
    CheckpointManager mgr(opt);
    ASSERT_TRUE(mgr.save(3, "three").ok());
    ASSERT_TRUE(mgr.save(7, "seven").ok());

    std::string payload;
    std::int64_t step = 0;
    ASSERT_TRUE(mgr.loadLatest(payload, step).ok());
    EXPECT_EQ(step, 7);
    EXPECT_EQ(payload, "seven");
}

TEST(Manager, FallsBackPastACorruptNewestCheckpoint)
{
    CheckpointManagerOptions opt;
    opt.dir = freshDir("mgr_fallback");
    CheckpointManager mgr(opt);
    ASSERT_TRUE(mgr.save(3, "good-three").ok());
    ASSERT_TRUE(mgr.save(7, "bad-seven").ok());
    const std::string newest = mgr.pathForStep(7);
    corruptByte(newest,
                static_cast<std::int64_t>(fs::file_size(newest)) - 1);

    std::string payload;
    std::int64_t step = 0;
    ASSERT_TRUE(mgr.loadLatest(payload, step).ok());
    EXPECT_EQ(step, 3);
    EXPECT_EQ(payload, "good-three");
}

TEST(Manager, EmptyDirectoryIsNotFound)
{
    CheckpointManagerOptions opt;
    opt.dir = freshDir("mgr_empty");
    CheckpointManager mgr(opt);
    std::string payload;
    std::int64_t step = 0;
    EXPECT_EQ(mgr.loadLatest(payload, step).error, IoError::NotFound);
}

TEST(Manager, IgnoresForeignFilenames)
{
    CheckpointManagerOptions opt;
    opt.dir = freshDir("mgr_foreign");
    CheckpointManager mgr(opt);
    std::ofstream(opt.dir + "/notes.txt") << "not a checkpoint";
    std::ofstream(opt.dir + "/ckpt-abc.bpck") << "bad step";
    ASSERT_TRUE(mgr.save(4, "real").ok());
    const auto steps = mgr.listSteps();
    ASSERT_EQ(steps.size(), 1u);
    EXPECT_EQ(steps[0], 4);
}

// --------------------------------------------------------------------
// Optimizer state round trips (all four optimizers, bitwise)
// --------------------------------------------------------------------

/** Small parameter set with deterministic values and gradients. */
std::vector<Parameter>
makeParams(std::uint64_t seed)
{
    std::vector<Parameter> params;
    params.reserve(3);
    params.emplace_back("w0", Shape({4, 3}));
    params.emplace_back("b0", Shape({3}), /*no_decay=*/true);
    params.emplace_back("w1", Shape({6}));
    Rng rng(seed);
    for (Parameter &p : params) {
        for (std::int64_t i = 0; i < p.value.numel(); ++i)
            p.value.data()[i] =
                static_cast<float>(rng.normal(0.0, 0.1));
    }
    return params;
}

std::vector<Parameter *>
ptrs(std::vector<Parameter> &params)
{
    std::vector<Parameter *> out;
    for (Parameter &p : params)
        out.push_back(&p);
    return out;
}

void
fillGrads(std::vector<Parameter> &params, std::uint64_t seed)
{
    Rng rng(seed);
    for (Parameter &p : params) {
        for (std::int64_t i = 0; i < p.grad.numel(); ++i)
            p.grad.data()[i] =
                static_cast<float>(rng.normal(0.0, 0.01));
    }
}

/**
 * Steps `opt_a` twice, checkpoints it, restores into `opt_b` over a
 * copy of the parameters, then runs three more identical steps on
 * both sides and requires bitwise-equal parameters throughout.
 */
template <typename Opt>
void
roundTripOptimizer(Opt &opt_a, Opt &opt_b)
{
    std::vector<Parameter> params_a = makeParams(11);
    std::vector<Parameter> params_b = makeParams(11);
    auto pa = ptrs(params_a);
    auto pb = ptrs(params_b);

    for (int step = 0; step < 2; ++step) {
        fillGrads(params_a, 100 + static_cast<std::uint64_t>(step));
        opt_a.step(pa);
    }

    StateWriter w;
    opt_a.saveState(pa, w);

    // Bring the b-side parameters to the a-side values (a real resume
    // restores them from the model section of the same payload).
    for (std::size_t i = 0; i < params_a.size(); ++i) {
        std::memcpy(params_b[i].value.data(), params_a[i].value.data(),
                    static_cast<std::size_t>(params_a[i].value.numel()) *
                        sizeof(float));
    }
    StateReader r(w.payload());
    ASSERT_TRUE(opt_b.loadState(pb, r).ok());
    EXPECT_EQ(opt_b.stepCount(), opt_a.stepCount());

    for (int step = 0; step < 3; ++step) {
        fillGrads(params_a, 200 + static_cast<std::uint64_t>(step));
        fillGrads(params_b, 200 + static_cast<std::uint64_t>(step));
        opt_a.step(pa);
        opt_b.step(pb);
        for (std::size_t i = 0; i < params_a.size(); ++i) {
            EXPECT_TRUE(
                bitsEqual(params_a[i].value, params_b[i].value))
                << "param " << params_a[i].name << " diverged at step "
                << step;
        }
    }
}

TEST(OptimizerState, AdamRoundTripsBitwise)
{
    OptimizerConfig cfg;
    Adam a(cfg), b(cfg);
    roundTripOptimizer(a, b);
}

TEST(OptimizerState, UnfusedAdamRoundTripsBitwise)
{
    OptimizerConfig cfg;
    UnfusedAdam a(cfg), b(cfg);
    roundTripOptimizer(a, b);
}

TEST(OptimizerState, LambRoundTripsBitwise)
{
    OptimizerConfig cfg;
    cfg.weightDecay = 0.01f;
    Lamb a(cfg), b(cfg);
    roundTripOptimizer(a, b);
}

TEST(OptimizerState, SgdWithMomentumRoundTripsBitwise)
{
    OptimizerConfig cfg;
    Sgd a(cfg, 0.9f), b(cfg, 0.9f);
    roundTripOptimizer(a, b);
}

TEST(OptimizerState, KindMismatchIsRejected)
{
    std::vector<Parameter> params = makeParams(3);
    auto p = ptrs(params);
    OptimizerConfig cfg;
    Adam adam(cfg);
    StateWriter w;
    adam.saveState(p, w);

    Sgd sgd(cfg, 0.9f);
    StateReader r(w.payload());
    const IoStatus s = sgd.loadState(p, r);
    EXPECT_EQ(s.error, IoError::BadFormat);
    EXPECT_NE(s.message.find("adam"), std::string::npos);
}

TEST(OptimizerState, ParamCountMismatchIsRejected)
{
    std::vector<Parameter> params = makeParams(3);
    auto p = ptrs(params);
    OptimizerConfig cfg;
    Adam adam(cfg);
    fillGrads(params, 1);
    adam.step(p);
    StateWriter w;
    adam.saveState(p, w);

    Adam other(cfg);
    auto fewer = p;
    fewer.pop_back();
    StateReader r(w.payload());
    EXPECT_EQ(other.loadState(fewer, r).error, IoError::BadFormat);
}

// --------------------------------------------------------------------
// GradScaler / Rng / Module state
// --------------------------------------------------------------------

TEST(ScalerState, RoundTripsAndRejectsNonPositiveScale)
{
    GradScaler a(512.0f);
    std::vector<Parameter> params = makeParams(5);
    auto p = ptrs(params);
    // One overflow so the dynamic state is non-trivial.
    params[0].grad.fill(std::numeric_limits<float>::infinity());
    ASSERT_FALSE(a.unscale(p));
    a.update(false);

    StateWriter w;
    a.saveState(w);
    GradScaler b(512.0f);
    StateReader r(w.payload());
    ASSERT_TRUE(b.loadState(r).ok());
    EXPECT_EQ(b.scale(), a.scale());
    EXPECT_EQ(b.skippedSteps(), a.skippedSteps());
    EXPECT_EQ(b.stableSteps(), a.stableSteps());

    StateWriter bad;
    bad.f32("scaler.scale", -1.0f);
    bad.i64("scaler.stable", 0);
    bad.i64("scaler.skipped", 0);
    GradScaler c(512.0f);
    StateReader rb(bad.payload());
    EXPECT_EQ(c.loadState(rb).error, IoError::BadFormat);
}

TEST(RngState, SerializeRestoresTheExactStream)
{
    Rng a(99);
    (void)a.uniform();
    (void)a.normal();
    const std::string state = a.serialize();

    Rng b(1); // different seed; state restore must win
    ASSERT_TRUE(b.deserialize(state));
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.engine()(), b.engine()());

    Rng c(1);
    EXPECT_FALSE(c.deserialize("not an mt19937_64 state"));
}

TEST(ModuleState, ParameterTreeRoundTripsBitwise)
{
    BertConfig config;
    config.numLayers = 1;
    config.dModel = 16;
    config.numHeads = 2;
    config.dFf = 32;
    config.vocabSize = 50;
    config.maxPositions = 16;
    config.batch = 2;
    config.seqLen = 8;
    config.maxPredictions = 2;

    NnRuntime rt;
    BertPretrainer model_a(config, &rt);
    BertPretrainer model_b(config, &rt);
    Rng init_a(7), init_b(8);
    model_a.initialize(init_a);
    model_b.initialize(init_b);

    StateWriter w;
    model_a.saveParameters(w);
    StateReader r(w.payload());
    ASSERT_TRUE(model_b.loadParameters(r).ok());

    auto pa = model_a.parameters();
    auto pb = model_b.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_TRUE(bitsEqual(pa[i]->value, pb[i]->value))
            << pa[i]->name;
}

TEST(ModuleState, NameMismatchIsRejected)
{
    // Serialize a hand-built record whose second parameter name is
    // wrong; loading into a real model must produce BadFormat.
    BertConfig config;
    config.numLayers = 1;
    config.dModel = 16;
    config.numHeads = 2;
    config.dFf = 32;
    config.vocabSize = 50;
    config.maxPositions = 16;
    config.batch = 2;
    config.seqLen = 8;
    config.maxPredictions = 2;
    NnRuntime rt;
    BertPretrainer model(config, &rt);
    auto params = model.parameters();

    StateWriter w;
    w.i64("model.params", static_cast<std::int64_t>(params.size()));
    w.str("model.name", "someone.else");
    w.tensor("someone.else", params[0]->value);

    StateReader r(w.payload());
    const IoStatus s = model.loadParameters(r);
    EXPECT_EQ(s.error, IoError::BadFormat);
    EXPECT_NE(s.message.find("someone.else"), std::string::npos);
}

} // namespace
} // namespace bertprof
