/**
 * @file
 * Fixture suite for the bplint rules: each feeds a known-bad source
 * snippet to lintSource() and asserts the expected rule fires at the
 * expected line — and that clean equivalents and suppression
 * directives do not fire. The snippets live in string literals, which
 * is also a regression test for the linter's own literal stripping
 * (bplint scans this file in the tree-wide lint run and must not
 * flag the rule names quoted here).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "lint.h"

namespace {

using bplint::Finding;
using bplint::lintSource;

/** Findings for `rule` only. */
std::vector<Finding>
byRule(const std::vector<Finding> &all, const std::string &rule)
{
    std::vector<Finding> out;
    for (const Finding &f : all)
        if (f.rule == rule)
            out.push_back(f);
    return out;
}

bool
firesAtLine(const std::vector<Finding> &all, const std::string &rule,
            int line)
{
    return std::any_of(all.begin(), all.end(), [&](const Finding &f) {
        return f.rule == rule && f.line == line;
    });
}

// --------------------------------------------------------------------
// Rule inventory and infrastructure.
// --------------------------------------------------------------------

TEST(BplintMeta, AllEightRulesAreRegistered)
{
    const std::vector<std::string> rules = bplint::ruleNames();
    const char *expected[] = {"wall-clock",         "libc-rand",
                              "kernel-stats",       "op-entry-contract",
                              "parallel-shared-accum", "include-hygiene",
                              "unchecked-io",       "arena-escape"};
    for (const char *rule : expected) {
        EXPECT_NE(std::find(rules.begin(), rules.end(), rule), rules.end())
            << "missing rule " << rule;
    }
}

TEST(BplintMeta, StripPreservesLineNumbersAndCode)
{
    const std::string text = "int a; // trailing\n"
                             "/* block\n   spanning */ int b;\n"
                             "const char *s = \"rand();\";\n";
    const std::string stripped = bplint::stripCommentsAndStrings(text);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
              std::count(stripped.begin(), stripped.end(), '\n'));
    EXPECT_NE(stripped.find("int a;"), std::string::npos);
    EXPECT_NE(stripped.find("int b;"), std::string::npos);
    // The literal's contents must be gone: no token scanner may see it.
    EXPECT_EQ(stripped.find("rand"), std::string::npos);
    EXPECT_EQ(stripped.find("trailing"), std::string::npos);
    EXPECT_EQ(stripped.find("spanning"), std::string::npos);
}

TEST(BplintMeta, FormattersIncludeRuleAndLocation)
{
    const std::vector<Finding> one = {
        {"src/ops/x.cc", 12, "wall-clock", "boom"}};
    const std::string text = bplint::formatText(one);
    EXPECT_NE(text.find("src/ops/x.cc:12"), std::string::npos);
    EXPECT_NE(text.find("[wall-clock]"), std::string::npos);
    const std::string json = bplint::formatJson(one);
    EXPECT_NE(json.find("\"rule\""), std::string::npos);
    EXPECT_NE(json.find("\"line\": 12"), std::string::npos);
}

// --------------------------------------------------------------------
// wall-clock
// --------------------------------------------------------------------

TEST(BplintWallClock, FiresOnNonMonotonicClocks)
{
    const std::string bad = "#include <chrono>\n"
                            "double now() {\n"
                            "  auto t = std::chrono::system_clock::now();\n"
                            "  return 0;\n"
                            "}\n";
    const auto findings = lintSource("src/perf/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "wall-clock", 3));

    const std::string hires =
        "auto t = std::chrono::high_resolution_clock::now();\n";
    EXPECT_FALSE(byRule(lintSource("src/a.cc", hires), "wall-clock").empty());
}

TEST(BplintWallClock, SteadyClockIsClean)
{
    const std::string good =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_TRUE(byRule(lintSource("src/a.cc", good), "wall-clock").empty());
}

TEST(BplintWallClock, MentionInCommentOrStringIsClean)
{
    const std::string good =
        "// never use system_clock here\n"
        "const char *s = \"system_clock\";\n";
    EXPECT_TRUE(byRule(lintSource("src/a.cc", good), "wall-clock").empty());
}

// --------------------------------------------------------------------
// libc-rand
// --------------------------------------------------------------------

TEST(BplintLibcRand, FiresOnRandAndSrand)
{
    const std::string bad = "int noise() {\n"
                            "  srand(42);\n"
                            "  return rand();\n"
                            "}\n";
    const auto findings = lintSource("src/util/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "libc-rand", 2));
    EXPECT_TRUE(firesAtLine(findings, "libc-rand", 3));
}

TEST(BplintLibcRand, MemberAndNamedFunctionsAreClean)
{
    const std::string good = "float draw(Rng &rng) {\n"
                             "  auto x = rng.rand();\n"
                             "  auto y = gen->rand();\n"
                             "  return quasirand();\n"
                             "}\n";
    EXPECT_TRUE(byRule(lintSource("src/a.cc", good), "libc-rand").empty());
}

// --------------------------------------------------------------------
// kernel-stats
// --------------------------------------------------------------------

TEST(BplintKernelStats, FiresOnVoidTensorKernelInOps)
{
    const std::string bad =
        "#include \"tensor/tensor.h\"\n"
        "namespace bertprof {\n"
        "void scaleInPlace(Tensor &t, float s) {\n"
        "  BP_REQUIRE(s != 0.0f);\n"
        "}\n"
        "} // namespace bertprof\n";
    const auto findings = lintSource("src/ops/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "kernel-stats", 3));
}

TEST(BplintKernelStats, ScopedToOpsOnly)
{
    const std::string text = "namespace bertprof {\n"
                             "void helper(Tensor &t) { BP_REQUIRE(true); }\n"
                             "}\n";
    EXPECT_FALSE(
        byRule(lintSource("src/ops/x.cc", text), "kernel-stats").empty());
    EXPECT_TRUE(
        byRule(lintSource("src/nn/x.cc", text), "kernel-stats").empty());
}

TEST(BplintKernelStats, StatsBearingReturnsAreClean)
{
    const std::string good =
        "namespace bertprof {\n"
        "KernelStats addForward(const Tensor &a, Tensor &out) {\n"
        "  BP_CHECK_SAME_SHAPE(a, out);\n"
        "  return KernelStats{};\n"
        "}\n"
        "CrossEntropyResult loss(const Tensor &l, Tensor &d) {\n"
        "  BP_CHECK_SAME_SHAPE(l, d);\n"
        "  return {};\n"
        "}\n"
        "static void localHelper(Tensor &t) {}\n"
        "namespace { void anonHelper(Tensor &t) {} }\n"
        "}\n";
    EXPECT_TRUE(
        byRule(lintSource("src/ops/good.cc", good), "kernel-stats").empty());
}

// --------------------------------------------------------------------
// op-entry-contract
// --------------------------------------------------------------------

TEST(BplintOpEntryContract, FiresWhenNoPreconditionIsStated)
{
    const std::string bad =
        "namespace bertprof {\n"
        "KernelStats mulForward(const Tensor &a, Tensor &out) {\n"
        "  out = a;\n"
        "  return KernelStats{};\n"
        "}\n"
        "}\n";
    const auto findings = lintSource("src/ops/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "op-entry-contract", 2));
}

TEST(BplintOpEntryContract, AnyContractMacroSatisfiesIt)
{
    const std::string good =
        "namespace bertprof {\n"
        "KernelStats f(const Tensor &a, Tensor &out) {\n"
        "  BP_CHECK_NO_ALIAS(out, a);\n"
        "  return KernelStats{};\n"
        "}\n"
        "}\n";
    EXPECT_TRUE(byRule(lintSource("src/ops/good.cc", good),
                       "op-entry-contract")
                    .empty());
}

// --------------------------------------------------------------------
// parallel-shared-accum
// --------------------------------------------------------------------

TEST(BplintParallelAccum, FiresOnCapturedCompoundAssign)
{
    const std::string bad =
        "void f(ThreadPool &pool) {\n"
        "  double total = 0.0;\n"
        "  parallelFor(pool, 0, n, [&](std::int64_t b, std::int64_t e) {\n"
        "    total += work(b, e);\n"
        "  });\n"
        "}\n";
    const auto findings = lintSource("src/runtime/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "parallel-shared-accum", 4));
}

TEST(BplintParallelAccum, LocalAndSubscriptedWritesAreClean)
{
    const std::string good =
        "void f(ThreadPool &pool) {\n"
        "  parallelFor(pool, 0, n, [&](std::int64_t b, std::int64_t e) {\n"
        "    double local = 0.0;\n"
        "    for (std::int64_t i = b; i < e; ++i) local += x[i];\n"
        "    partial[b] += local;\n"
        "    out[i] *= 2.0f;\n"
        "  });\n"
        "}\n";
    EXPECT_TRUE(byRule(lintSource("src/runtime/good.cc", good),
                       "parallel-shared-accum")
                    .empty());
}

TEST(BplintParallelAccum, OutsideParallelForIsClean)
{
    const std::string good = "void f() {\n"
                             "  double total = 0.0;\n"
                             "  total += 1.0;\n"
                             "}\n";
    EXPECT_TRUE(byRule(lintSource("src/runtime/good.cc", good),
                       "parallel-shared-accum")
                    .empty());
}

// --------------------------------------------------------------------
// include-hygiene
// --------------------------------------------------------------------

TEST(BplintIncludeHygiene, FiresOnUpwardInclude)
{
    const std::string bad = "#include \"nn/module.h\"\n";
    const auto findings = lintSource("src/ops/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "include-hygiene", 1));
}

TEST(BplintIncludeHygiene, DownwardAndExemptIncludesAreClean)
{
    const std::string good = "#include \"ops/kernel_stats.h\"\n"
                             "#include \"tensor/tensor.h\"\n"
                             "#include \"util/logging.h\"\n"
                             "#include <vector>\n";
    EXPECT_TRUE(byRule(lintSource("src/trace/good.cc", good),
                       "include-hygiene")
                    .empty());
    // Only core may include core.
    const std::string core = "#include \"core/substrate.h\"\n";
    EXPECT_FALSE(byRule(lintSource("src/nn/x.cc", core),
                        "include-hygiene")
                     .empty());
    EXPECT_TRUE(byRule(lintSource("src/core/x.cc", core),
                       "include-hygiene")
                    .empty());
}

TEST(BplintIncludeHygiene, OnlyAppliesUnderSrc)
{
    const std::string text = "#include \"nn/module.h\"\n";
    EXPECT_TRUE(byRule(lintSource("bench/bench_model.cc", text),
                       "include-hygiene")
                    .empty());
}

TEST(BplintIncludeHygiene, ServeMayUseModelAndRuntimeLayers)
{
    const std::string good = "#include \"serve/batcher.h\"\n"
                             "#include \"nn/bert_classifier.h\"\n"
                             "#include \"ops/dropout.h\"\n"
                             "#include \"runtime/config.h\"\n"
                             "#include \"util/stopwatch.h\"\n";
    EXPECT_TRUE(byRule(lintSource("src/serve/good.cc", good),
                       "include-hygiene")
                    .empty());
    // serve sits beside core, not under it.
    const std::string core = "#include \"core/bertprof.h\"\n";
    EXPECT_FALSE(byRule(lintSource("src/serve/bad.cc", core),
                        "include-hygiene")
                     .empty());
}

TEST(BplintIncludeHygiene, NothingUnderSrcMayDependOnServe)
{
    // Only bench/tests (outside src/) may pull the serving runtime
    // in; the model layers and core must stay serving-free.
    const std::string text = "#include \"serve/server.h\"\n";
    EXPECT_FALSE(byRule(lintSource("src/core/bad.cc", text),
                        "include-hygiene")
                     .empty());
    EXPECT_FALSE(byRule(lintSource("src/nn/bad.cc", text),
                        "include-hygiene")
                     .empty());
    EXPECT_TRUE(byRule(lintSource("bench/bench_serving.cc", text),
                       "include-hygiene")
                    .empty());
}

TEST(BplintIncludeHygiene, GraphMayUseNnButNnMayNotUseGraph)
{
    const auto up = lintSource("src/nn/encoder_layer.cc",
                               "#include \"graph/encoder_exec.h\"\n");
    EXPECT_TRUE(firesAtLine(up, "include-hygiene", 1));

    const auto down = lintSource("src/graph/encoder_exec.cc",
                                 "#include \"nn/encoder_layer.h\"\n"
                                 "#include \"ops/fused.h\"\n"
                                 "#include \"runtime/profiler.h\"\n");
    EXPECT_TRUE(byRule(down, "include-hygiene").empty());

    // serve may reach the executor to install it.
    const auto serve = lintSource("src/serve/engine.cc",
                                  "#include \"graph/encoder_exec.h\"\n");
    EXPECT_TRUE(byRule(serve, "include-hygiene").empty());
}

// --------------------------------------------------------------------
// arena-escape: Tensor::borrow is confined to the graph executor.
// --------------------------------------------------------------------

TEST(BplintArenaEscape, FiresOnBorrowOutsideGraph)
{
    const char *src =
        "void f(float *p) {\n"
        "    Tensor t = Tensor::borrow(p, Shape({4}));\n"
        "}\n";
    const auto in_nn = lintSource("src/nn/attention.cc", src);
    EXPECT_TRUE(firesAtLine(in_nn, "arena-escape", 2));
    const auto in_ops = lintSource("src/ops/fused.cc", src);
    EXPECT_TRUE(firesAtLine(in_ops, "arena-escape", 2));
}

TEST(BplintArenaEscape, GraphTensorAndNonSrcAreExempt)
{
    const char *src = "Tensor t = Tensor::borrow(p, Shape({4}));\n";
    EXPECT_TRUE(
        byRule(lintSource("src/graph/encoder_exec.cc", src),
               "arena-escape")
            .empty());
    EXPECT_TRUE(
        byRule(lintSource("src/tensor/tensor.cc", src), "arena-escape")
            .empty());
    EXPECT_TRUE(
        byRule(lintSource("tests/test_graph.cc", src), "arena-escape")
            .empty());
}

TEST(BplintArenaEscape, MentionInCommentIsClean)
{
    const auto res = lintSource(
        "src/nn/module.cc",
        "// views come from Tensor::borrow in the executor\n");
    EXPECT_TRUE(byRule(res, "arena-escape").empty());
}

TEST(BplintIncludeHygiene, TelemetryMayUseIoAndRuntimeLayers)
{
    const std::string good = "#include \"telemetry/trace_writer.h\"\n"
                             "#include \"io/append_file.h\"\n"
                             "#include \"runtime/profiler.h\"\n"
                             "#include \"trace/taxonomy.h\"\n"
                             "#include \"util/logging.h\"\n";
    EXPECT_TRUE(byRule(lintSource("src/telemetry/good.cc", good),
                       "include-hygiene")
                    .empty());
    // Telemetry records the substrate; it must not depend on it.
    const std::string bad = "#include \"nn/module.h\"\n"
                            "#include \"ops/gemm.h\"\n";
    const auto findings = lintSource("src/telemetry/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "include-hygiene", 1));
    EXPECT_TRUE(firesAtLine(findings, "include-hygiene", 2));
}

TEST(BplintIncludeHygiene, ComputeLayersMayNotDependOnTelemetry)
{
    // Kernel events reach the recorder through the runtime
    // profiler's sink, never by the compute layers including
    // telemetry directly.
    const std::string text = "#include \"telemetry/recorder.h\"\n";
    EXPECT_FALSE(byRule(lintSource("src/ops/bad.cc", text),
                        "include-hygiene")
                     .empty());
    EXPECT_FALSE(byRule(lintSource("src/nn/bad.cc", text),
                        "include-hygiene")
                     .empty());
    EXPECT_FALSE(byRule(lintSource("src/runtime/bad.cc", text),
                        "include-hygiene")
                     .empty());
    EXPECT_TRUE(byRule(lintSource("src/train/trainer.cc", text),
                       "include-hygiene")
                    .empty());
    EXPECT_TRUE(byRule(lintSource("src/serve/server.cc", text),
                       "include-hygiene")
                    .empty());
    EXPECT_TRUE(byRule(lintSource("src/core/report.cc", text),
                       "include-hygiene")
                    .empty());
}

// --------------------------------------------------------------------
// unchecked-io
// --------------------------------------------------------------------

TEST(BplintUncheckedIo, FiresOnRawPrimitivesOutsideIoLayer)
{
    const std::string bad = "void f() {\n"
                            "  FILE *fp = fopen(p, \"wb\");\n"
                            "  fwrite(buf, 1, n, fp);\n"
                            "  fread(buf, 1, n, fp);\n"
                            "  std::ofstream out(p);\n"
                            "  std::fstream both(p);\n"
                            "}\n";
    const auto findings = lintSource("src/core/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "unchecked-io", 2));
    EXPECT_TRUE(firesAtLine(findings, "unchecked-io", 3));
    EXPECT_TRUE(firesAtLine(findings, "unchecked-io", 4));
    EXPECT_TRUE(firesAtLine(findings, "unchecked-io", 5));
    EXPECT_TRUE(firesAtLine(findings, "unchecked-io", 6));
}

TEST(BplintUncheckedIo, IoLayerAndNonSrcTreesAreExempt)
{
    const std::string text = "void f() { fwrite(buf, 1, n, fp); }\n";
    EXPECT_TRUE(byRule(lintSource("src/io/binary_io.cc", text),
                       "unchecked-io")
                    .empty());
    EXPECT_TRUE(byRule(lintSource("tests/test_x.cc", text),
                       "unchecked-io")
                    .empty());
    EXPECT_TRUE(byRule(lintSource("tools/bplint/main.cc", text),
                       "unchecked-io")
                    .empty());
}

TEST(BplintUncheckedIo, CheckedWrappersAndMentionsInCommentsAreClean)
{
    const std::string good =
        "#include \"io/binary_io.h\"\n"
        "// fwrite would be flagged here if not in a comment\n"
        "IoStatus f() { return writeTextFile(p, body); }\n"
        "const char *doc = \"uses fopen internally\";\n";
    EXPECT_TRUE(byRule(lintSource("src/core/good.cc", good),
                       "unchecked-io")
                    .empty());
}

TEST(BplintUncheckedIo, AllowFileSuppressionWorks)
{
    const std::string text = "// bplint: allow-file(unchecked-io)\n"
                             "void f() { std::ofstream out(p); }\n";
    EXPECT_TRUE(byRule(lintSource("src/util/x.cc", text),
                       "unchecked-io")
                    .empty());
}

// --------------------------------------------------------------------
// Suppressions
// --------------------------------------------------------------------

TEST(BplintSuppression, SameLineAllowSilencesOneRule)
{
    // A directive covers its own line and the one after it, so the
    // unsuppressed violation sits two lines below.
    const std::string text =
        "auto t = std::chrono::system_clock::now();"
        " // bplint: allow(wall-clock)\n"
        "\n"
        "auto u = std::chrono::system_clock::now();\n";
    const auto findings = byRule(lintSource("src/a.cc", text), "wall-clock");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 3);
}

TEST(BplintSuppression, PrecedingLineAllowWorks)
{
    const std::string text = "// bplint: allow(libc-rand)\n"
                             "int x = rand();\n";
    EXPECT_TRUE(byRule(lintSource("src/a.cc", text), "libc-rand").empty());
}

TEST(BplintSuppression, AllowFileSilencesWholeFileForThatRuleOnly)
{
    const std::string text = "// bplint: allow-file(wall-clock)\n"
                             "auto t = std::chrono::system_clock::now();\n"
                             "auto u = std::chrono::system_clock::now();\n"
                             "int y = rand();\n";
    const auto findings = lintSource("src/a.cc", text);
    EXPECT_TRUE(byRule(findings, "wall-clock").empty());
    EXPECT_TRUE(firesAtLine(findings, "libc-rand", 4));
}

TEST(BplintSuppression, AllowForWrongRuleDoesNotSilence)
{
    const std::string text =
        "int x = rand(); // bplint: allow(wall-clock)\n";
    EXPECT_FALSE(byRule(lintSource("src/a.cc", text), "libc-rand").empty());
}

} // namespace
